// Ablation (paper §5.2, "Resilience to Mining Power Variation").
//
// Difficulty is retargeted for the current hash rate; then most of the
// mining power leaves. Key blocks crawl until the next retarget, but
// Bitcoin-NG keeps serializing transactions in microblocks at an unchanged
// cadence — the core liveness claim of §5.2. For contrast, the same drop is
// applied to Bitcoin, where transaction processing stalls with the blocks.
//
// Thin wrapper over the registered "ablation_power_drop" scenario, whose
// custom run hook drives the two phases and reports per-phase rates.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: 90% mining-power drop after retarget (paper §5.2)");

  const auto result = bench::run_registered("ablation_power_drop");

  std::printf("\n%-10s | %-28s | %-28s\n", "", "before drop", "after drop");
  std::printf("%-10s | %13s %14s | %13s %14s\n", "protocol", "PoW blk/min", "txs/min",
              "PoW blk/min", "txs/min");
  for (const auto& point : result.points) {
    std::printf("%-10s | %13.2f %14.1f | %13.2f %14.1f\n",
                runner::point_label(point).c_str(),
                runner::aggregate_mean(point, "pow_per_min_before"),
                runner::aggregate_mean(point, "txs_per_min_before"),
                runner::aggregate_mean(point, "pow_per_min_after"),
                runner::aggregate_mean(point, "txs_per_min_after"));
  }

  std::printf(
      "\nexpected: PoW block rate collapses ~10x for both protocols until\n"
      "retargets catch up; Bitcoin's txs/min collapses with it, while NG's\n"
      "microblock cadence keeps txs/min near its pre-drop value (§5.2).\n");
  return 0;
}
