// Ablation (paper §5.2, "Resilience to Mining Power Variation").
//
// Difficulty is retargeted for the current hash rate; then most of the
// mining power leaves. Key blocks crawl until the next retarget, but
// Bitcoin-NG keeps serializing transactions in microblocks at an unchanged
// cadence — the core liveness claim of §5.2. For contrast, the same drop is
// applied to Bitcoin, where transaction processing stalls with the blocks.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/miner_distribution.hpp"

namespace {

struct Phase {
  double blocks_per_min = 0;
  double txs_per_min = 0;
};

/// Runs `protocol` with a 90% power drop at t=T/2; returns per-phase rates.
std::pair<Phase, Phase> run_drop(bng::chain::Protocol protocol, std::uint64_t seed) {
  using namespace bng;
  sim::ExperimentConfig cfg;
  cfg.params = protocol == chain::Protocol::kBitcoinNG ? chain::Params::bitcoin_ng()
                                                       : chain::Params::bitcoin();
  cfg.params.block_interval = 30;
  cfg.params.microblock_interval = 5;
  cfg.params.max_block_size = 8000;
  cfg.params.max_microblock_size = 8000;
  cfg.num_nodes = std::min(bench::nodes(), 200u);
  cfg.tx_size = bench::kTxSize;
  cfg.target_blocks = 1'000'000;  // stop by time, not count
  cfg.retarget = chain::RetargetRule{50, 30.0, 4.0};
  cfg.seed = seed;

  sim::Experiment exp(cfg);
  exp.build();
  exp.scheduler().start();

  const Seconds phase_len = 1800;
  exp.queue().run_until(phase_len);
  const auto pow_1 = exp.trace().pow_blocks();
  const auto tx_1 = exp.global_tree().best_entry().chain_tx_count;

  // 90% of hash power leaves (paper: miners flee to another chain).
  const auto& powers = exp.powers();
  for (std::uint32_t i = 0; i < cfg.num_nodes; ++i)
    exp.scheduler().set_power(i, powers[i] * 0.1);

  exp.queue().run_until(2 * phase_len);
  exp.scheduler().stop();
  const auto pow_2 = exp.trace().pow_blocks() - pow_1;
  const auto tx_2 = exp.global_tree().best_entry().chain_tx_count - tx_1;

  const double mins = phase_len / 60.0;
  return {{pow_1 / mins, static_cast<double>(tx_1) / mins},
          {pow_2 / mins, static_cast<double>(tx_2) / mins}};
}

}  // namespace

int main() {
  using namespace bng;
  bench::print_header("Ablation: 90% mining-power drop after retarget (paper §5.2)");

  std::printf("%-10s | %-28s | %-28s\n", "", "before drop", "after drop");
  std::printf("%-10s | %13s %14s | %13s %14s\n", "protocol", "PoW blk/min", "txs/min",
              "PoW blk/min", "txs/min");
  for (auto protocol : {chain::Protocol::kBitcoin, chain::Protocol::kBitcoinNG}) {
    auto [before, after] = run_drop(protocol, 8400);
    std::printf("%-10s | %13.2f %14.1f | %13.2f %14.1f\n",
                protocol == chain::Protocol::kBitcoin ? "bitcoin" : "ng",
                before.blocks_per_min, before.txs_per_min, after.blocks_per_min,
                after.txs_per_min);
  }
  std::printf(
      "\nexpected: PoW block rate collapses ~10x for both protocols until\n"
      "retargets catch up; Bitcoin's txs/min collapses with it, while NG's\n"
      "microblock cadence keeps txs/min near its pre-drop value (§5.2).\n");
  return 0;
}
