// Figure 7: block propagation latency vs block size.
//
// Paper §7 ("Network"): experiments with different block sizes at constant
// transaction-per-second load show propagation time growing linearly with
// size, matching Decker & Wattenhofer's measurements of the operational
// network. We reproduce the 25/50/75th percentiles and the linearity check.
//
// Thin wrapper over the registered "fig7" scenario (src/runner/): the sweep
// engine runs (size × seed) jobs in parallel and aggregates per-seed
// propagation percentiles.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"

int main() {
  using namespace bng;
  bench::print_header("Figure 7: propagation latency vs block size (Bitcoin)");

  const auto result = bench::run_registered("fig7");

  // Multi-seed note: these columns are the seed-balanced mean of per-seed
  // percentiles (each seed weighs equally); the paper pooled all (block,
  // node) samples before taking percentiles, which overweights seeds that
  // generated more blocks. Identical at REPRO_SEEDS=1.
  std::printf("\n%-12s %10s %10s %10s  (mean over seeds of per-seed percentiles)\n",
              "size[B]", "p25[s]", "p50[s]", "p75[s]");
  std::vector<double> xs, medians;
  for (const auto& point : result.points) {
    const double p50 = runner::aggregate_mean(point, "prop_p50_s");
    std::printf("%-12.0f %10.2f %10.2f %10.2f\n", point.x,
                runner::aggregate_mean(point, "prop_p25_s"), p50,
                runner::aggregate_mean(point, "prop_p75_s"));
    xs.push_back(point.x);
    medians.push_back(p50);
  }

  auto fit = linear_fit(xs, medians);
  std::printf("\nlinear fit of median vs size: R^2=%.3f (paper: qualitatively linear, "
              "cf. Decker-Wattenhofer)\n",
              fit.r2);
  std::printf("slope=%.2f us/KB intercept=%.2f s\n", fit.slope * 1e9 / 1000.0,
              fit.intercept);
  return 0;
}
