// Figure 7: block propagation latency vs block size.
//
// Paper §7 ("Network"): experiments with different block sizes at constant
// transaction-per-second load show propagation time growing linearly with
// size, matching Decker & Wattenhofer's measurements of the operational
// network. We reproduce the 25/50/75th percentiles and the linearity check.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Figure 7: propagation latency vs block size (Bitcoin)");

  const std::vector<std::size_t> sizes = {20'000, 40'000, 60'000, 80'000, 100'000};
  std::printf("%-12s %10s %10s %10s\n", "size[B]", "p25[s]", "p50[s]", "p75[s]");

  std::vector<double> xs, medians;
  for (std::size_t size : sizes) {
    std::vector<double> pooled;
    for (std::uint32_t seed = 1; seed <= bench::seeds(); ++seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin();
      cfg.params.max_block_size = size;
      // Constant payload load: bigger blocks arrive proportionally rarer.
      cfg.params.block_interval = static_cast<double>(size) / bench::kPayloadBytesPerSecond;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = std::max(20u, bench::blocks() / 2);
      cfg.seed = 700 + seed;
      sim::Experiment exp(cfg);
      exp.run();
      auto delays = metrics::propagation_delays(exp);
      pooled.insert(pooled.end(), delays.begin(), delays.end());
    }
    const double p25 = percentile(pooled, 25);
    const double p50 = percentile(pooled, 50);
    const double p75 = percentile(pooled, 75);
    std::printf("%-12zu %10.2f %10.2f %10.2f\n", size, p25, p50, p75);
    xs.push_back(static_cast<double>(size));
    medians.push_back(p50);
  }

  auto fit = linear_fit(xs, medians);
  std::printf("\nlinear fit of median vs size: R^2=%.3f (paper: qualitatively linear, "
              "cf. Decker-Wattenhofer)\n",
              fit.r2);
  std::printf("slope=%.2f us/KB intercept=%.2f s\n", fit.slope * 1e9 / 1000.0,
              fit.intercept);
  return 0;
}
