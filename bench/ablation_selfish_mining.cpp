// Ablation: selfish mining revenue vs attacker size (Eyal-Sirer).
//
// The paper bounds the adversary at 1/4 of the mining power because
// "proof-of-work blockchains, Bitcoin-NG included, are vulnerable to selfish
// mining by attackers larger than 1/4 of the network" (§2) under random
// tie-breaking (gamma ~= 0.5). This sweep runs the SM1 attacker against an
// honest Bitcoin network and reports its main-chain revenue share: the
// crossover where revenue exceeds the power share should sit near 25%.
#include <cstdio>

#include "bench_common.hpp"
#include "bitcoin/selfish_miner.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: selfish mining (SM1) revenue vs attacker power");

  const std::uint32_t n = std::min(bench::nodes(), 100u);
  const std::uint32_t target = std::max(bench::blocks() * 5, 300u);
  std::printf("%-8s %14s %14s %10s\n", "alpha", "revenue share", "advantage",
              "abandoned");

  for (double alpha : {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}) {
    double revenue_sum = 0;
    std::uint64_t abandoned = 0;
    for (std::uint32_t seed = 1; seed <= bench::seeds(); ++seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin();
      cfg.params.block_interval = 10;
      cfg.params.max_block_size = 4000;
      cfg.num_nodes = n;
      cfg.target_blocks = target;
      cfg.drain_time = 60;
      cfg.seed = 8600 + seed;
      std::vector<double> powers(n, (1.0 - alpha) / (n - 1));
      powers[0] = alpha;
      cfg.custom_powers = powers;
      cfg.node_factory = [](NodeId id, net::Network& net, chain::BlockPtr genesis,
                            const protocol::NodeConfig& ncfg, Rng rng,
                            protocol::IBlockObserver* obs)
          -> std::unique_ptr<protocol::BaseNode> {
        if (id != 0) return nullptr;
        return std::make_unique<bitcoin::SelfishMiner>(id, net, std::move(genesis), ncfg,
                                                       rng, obs);
      };
      sim::Experiment exp(cfg);
      exp.run();
      const auto& g = exp.global_tree();
      std::uint32_t attacker_main = 0, total_main = 0;
      for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
        if (idx == chain::BlockTree::kGenesisIndex) continue;
        ++total_main;
        if (g.entry(idx).block->miner() == 0) ++attacker_main;
      }
      revenue_sum += total_main > 0 ? static_cast<double>(attacker_main) / total_main : 0;
      abandoned +=
          static_cast<const bitcoin::SelfishMiner&>(*exp.nodes()[0]).branches_abandoned();
    }
    const double revenue = revenue_sum / bench::seeds();
    std::printf("%-8.2f %13.1f%% %+13.1f%% %10llu\n", alpha, 100 * revenue,
                100 * (revenue - alpha), static_cast<unsigned long long>(abandoned));
  }

  std::printf(
      "\nexpected: advantage <= 0 below ~25%% power and grows past it — the\n"
      "origin of the paper's 1/4 adversary bound (and why NG refuses to give\n"
      "microblocks any chain weight, §5.1).\n");
  return 0;
}
