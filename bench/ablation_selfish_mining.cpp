// Ablation: selfish mining revenue vs attacker size (Eyal-Sirer).
//
// The paper bounds the adversary at 1/4 of the mining power because
// "proof-of-work blockchains, Bitcoin-NG included, are vulnerable to selfish
// mining by attackers larger than 1/4 of the network" (§2) under random
// tie-breaking (gamma ~= 0.5). This sweep runs the SM1 attacker against an
// honest Bitcoin network and reports its main-chain revenue share: the
// crossover where revenue exceeds the power share should sit near 25%.
//
// Thin wrapper over the registered "ablation_selfish_mining" scenario,
// which since PR 4 is expressed through the declarative sim::AdversarySpec
// (kind=selfish, alpha axis) instead of a node_factory lambda — the numbers
// are bit-identical to the lambda version. The full alpha x gamma x protocol
// grid lives in the "selfish_threshold" scenario.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: selfish mining (SM1) revenue vs attacker power");

  const auto result = bench::run_registered("ablation_selfish_mining");

  std::printf("\n%-8s %14s %14s %10s\n", "alpha", "revenue share", "advantage",
              "abandoned");
  for (const auto& point : result.points) {
    std::printf("%-8.2f %13.1f%% %+13.1f%% %10.1f\n", point.x,
                100 * runner::aggregate_mean(point, "revenue_share"),
                100 * runner::aggregate_mean(point, "advantage"),
                runner::aggregate_mean(point, "branches_abandoned"));
  }

  std::printf(
      "\nexpected: advantage <= 0 below ~25%% power and grows past it — the\n"
      "origin of the paper's 1/4 adversary bound (and why NG refuses to give\n"
      "microblocks any chain weight, §5.1).\n");
  return 0;
}
