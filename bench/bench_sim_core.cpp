// Simulation-core benchmark harness.
//
// Measures the primitives that bound experiment throughput (event queue,
// network fast path) plus a fig7-style end-to-end run, and emits the results
// as machine-readable JSON so the perf trajectory is recorded PR over PR.
//
// A determinism digest (FNV-1a over the generated-block trace and the final
// metrics) is included: core refactors must keep it bit-identical for a
// given seed, or they changed simulation semantics, not just speed.
//
// Benchmark shapes mirror the simulator's real queue profile: during a
// paper-scale run the pending-event working set stays in the thousands
// (in-flight messages bounded by links x link queue depth), so the headline
// queue metric is steady-state churn at a bounded working set, not a bulk
// preload. The bulk case is kept as a stress metric.
//
// Knobs (environment):
//   REPRO_NODES       - node count for the end-to-end run    (default 200)
//   REPRO_BLOCKS      - counted blocks for the end-to-end    (default 20)
//   CORE_BENCH_EVENTS - op count for queue/network benches   (default 1000000)
//   CORE_BENCH_OUT    - output path                          (default bench_core_out.json)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core_bench_util.hpp"
#include "metrics/metrics.hpp"
#include "net/event_queue.hpp"
#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/trace.hpp"

namespace {

using namespace bng;
using bench::BenchMessage;
using bench::BenchSink;
using bench::lcg_next;

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = std::strtoul(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::uint32_t>(parsed) : fallback;
}

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// FNV-1a, the digest accumulator for the determinism check.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

struct Result {
  std::string name;
  double wall_s = 0;
  double items_per_sec = 0;
  const char* unit = "items/s";
  std::string extra;  // pre-formatted JSON fields, may be empty
};

// --- Event queue micro-benchmarks -------------------------------------------

/// Steady-state churn: a bounded working set of self-rescheduling events,
/// the shape of a live simulation (every fire schedules a successor). The
/// callback carries a 32-byte capture like Network's delivery lambda
/// (this + from + to + a shared_ptr), the dominant callback of a real run.
Result bench_event_queue_steady(std::uint32_t working_set, std::uint32_t n_events) {
  struct State {
    net::EventQueue q;
    std::uint64_t lcg = 12345;
    std::uint64_t fired = 0;
  };
  struct Tick {
    State* st;
    std::shared_ptr<const int> payload;  // mimics the MessagePtr capture
    std::uint64_t msg_tag;
    void operator()() const {
      st->fired += 1 + (msg_tag & 0);
      const double delay = 1.0 + static_cast<double>(lcg_next(st->lcg) >> 52);
      st->q.schedule_in(delay, Tick{st, payload, msg_tag + 1});
    }
  };

  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    State st;
    const auto payload = std::make_shared<const int>(7);
    for (std::uint32_t i = 0; i < working_set; ++i) {
      const double at = static_cast<double>(lcg_next(st.lcg) >> 52);
      st.q.schedule_at(at, Tick{&st, payload, i});
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (st.fired < n_events) st.q.run_until(st.q.now() + 4096.0);
    const double wall = wall_seconds(t0);
    best = std::min(best, wall / static_cast<double>(st.fired));
  }
  return {"event_queue_steady", best * n_events, 1.0 / best, "events/s", ""};
}

/// Schedule/cancel pairs plus the deferred cost of draining the tombstones:
/// the full lifecycle of a cancelled timer (protocol timer-reset pattern).
Result bench_event_queue_cancel(std::uint32_t working_set, std::uint32_t n_pairs) {
  const std::uint32_t rounds = n_pairs / working_set;
  double best = 1e100;
  std::uint64_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    net::EventQueue q;
    std::vector<std::uint64_t> ids(working_set);
    std::uint64_t fired = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t r = 0; r < rounds; ++r) {
      const double base = static_cast<double>(r + 1) * 10.0;
      for (std::uint32_t i = 0; i < working_set; ++i)
        ids[i] = q.schedule_at(base + static_cast<double>(i % 7), [&fired] { ++fired; });
      for (std::uint32_t i = 0; i < working_set; ++i) q.cancel(ids[i]);
    }
    q.run_all();  // all tombstones: measures lazy-deletion drain too
    best = std::min(best, wall_seconds(t0));
    sink += fired;
  }
  if (sink != 0) std::abort();  // every event was cancelled
  const double pairs = static_cast<double>(rounds) * working_set;
  return {"event_queue_cancel", best, pairs / best, "pairs/s", ""};
}

/// Bulk preload stress: the whole event population scheduled before any pop.
/// Dominated by deep heap sifts on a cache-cold array; kept as the worst-case
/// bound, not the representative number.
Result bench_event_queue_bulk(std::uint32_t n_events) {
  double best = 1e100;
  std::uint64_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    net::EventQueue q;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t fired = 0;
    std::uint64_t acc = 0;
    for (std::uint32_t i = 0; i < n_events; ++i) {
      const double at = static_cast<double>((i * 2654435761u) % 100000);
      q.schedule_at(at, [&fired, &acc, i] {
        ++fired;
        acc += i;
      });
    }
    q.run_all();
    best = std::min(best, wall_seconds(t0));
    sink += fired + acc;
  }
  if (sink == 0) std::abort();
  return {"event_queue_bulk", best, n_events / best, "events/s", ""};
}

// --- Network micro-benchmarks ------------------------------------------------

/// Timed send() only, on the paper-scale 1000-node overlay: edge resolution,
/// link-serialization bookkeeping, delivery scheduling. Sends run in bursts
/// with an untimed drain between them, the interleaving a live simulation
/// exhibits (pop cost is the queue benches' job).
Result bench_network_send(std::uint32_t n_sends) {
  constexpr std::uint32_t kNodes = 1000;
  constexpr std::uint32_t kBurst = 4096;
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(42);
    net::EventQueue q;
    net::Topology topo = net::Topology::random(kNodes, 5, rng);
    net::Network net(q, topo, net::LatencyModel::constant(0.05),
                     net::LinkParams{100'000.0, 40}, rng);
    std::vector<BenchSink> sinks(kNodes);
    for (NodeId i = 0; i < kNodes; ++i) net.attach(i, &sinks[i]);
    const auto msg = std::make_shared<BenchMessage>();

    double timed = 0;
    std::uint32_t sent = 0;
    NodeId a = 0;
    std::size_t k = 0;
    while (sent < n_sends) {
      const auto t0 = std::chrono::steady_clock::now();
      std::uint32_t burst = 0;
      while (burst < kBurst && sent < n_sends) {
        const auto& peers = net.peers(a);
        if (k < peers.size()) {
          net.send(a, peers[k], msg);
          ++sent;
          ++burst;
          ++k;
        } else {
          k = 0;
          a = (a + 1) % kNodes;
        }
      }
      timed += wall_seconds(t0);
      q.run_all();  // untimed drain
    }
    best = std::min(best, timed);
  }
  return {"network_send", best, static_cast<double>(n_sends) / best, "sends/s", ""};
}

/// Gossip burst: every node sends one inv-sized message to each neighbour,
/// then the queue drains. End-to-end cost of a broadcast wave.
Result bench_network_flood(std::uint32_t n_nodes, std::uint32_t rounds) {
  const std::uint32_t degree = std::min(5u, n_nodes > 1 ? n_nodes - 1 : 1u);
  double best = 1e100;
  std::uint64_t total_msgs = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Rng rng(42);
    net::EventQueue q;
    net::Topology topo = net::Topology::random(n_nodes, degree, rng);
    net::Network net(q, topo, net::LatencyModel::constant(0.05),
                     net::LinkParams{100'000.0, 40}, rng);
    std::vector<BenchSink> sinks(n_nodes);
    for (NodeId i = 0; i < n_nodes; ++i) net.attach(i, &sinks[i]);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t r = 0; r < rounds; ++r) {
      for (NodeId a = 0; a < n_nodes; ++a) {
        auto msg = std::make_shared<BenchMessage>();
        for (NodeId b : net.peers(a)) net.send(a, b, msg);
      }
      q.run_all();
    }
    best = std::min(best, wall_seconds(t0));
    total_msgs = net.messages_sent();
  }
  return {"network_flood", best, static_cast<double>(total_msgs) / best, "messages/s", ""};
}

// --- End-to-end: fig7-style propagation run ---------------------------------

Result bench_fig7_e2e(std::uint32_t n_nodes, std::uint32_t n_blocks) {
  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin();
  cfg.params.max_block_size = 60'000;
  cfg.params.block_interval = 60'000.0 / (1'000'000.0 / 600.0);  // fig7 load
  cfg.num_nodes = n_nodes;
  cfg.min_degree = std::min(cfg.min_degree, n_nodes > 1 ? n_nodes - 1 : 1u);
  cfg.tx_size = 476;
  cfg.target_blocks = n_blocks;
  cfg.seed = 701;

  const auto t0 = std::chrono::steady_clock::now();
  sim::Experiment exp(cfg);
  exp.run();
  const double wall = wall_seconds(t0);

  const auto m = metrics::compute_metrics(exp);
  const auto delays = metrics::propagation_delays(exp);

  Digest d;
  for (const auto& g : exp.trace().generated()) {
    d.bytes(g.block->id().bytes.data(), g.block->id().bytes.size());
    d.u64(g.miner);
    d.f64(g.at);
  }
  for (double v : delays) d.f64(v);
  d.f64(m.consensus_delay_s);
  d.f64(m.fairness);
  d.f64(m.mining_power_utilization);
  d.f64(m.time_to_prune_p90_s);
  d.f64(m.time_to_win_p90_s);
  d.f64(m.tx_per_sec);
  d.u64(m.total_pow_blocks);
  d.u64(m.main_chain_pow_blocks);

  const double events_per_sec = static_cast<double>(exp.queue().events_executed()) / wall;
  char extra[512];
  std::snprintf(extra, sizeof extra,
                "\"events_executed\": %" PRIu64 ", \"messages_sent\": %" PRIu64
                ", \"bytes_sent\": %" PRIu64 ", \"consensus_delay_s\": %.6f"
                ", \"prop_delay_samples\": %zu, \"digest\": \"%016" PRIx64 "\"",
                exp.queue().events_executed(), exp.network().messages_sent(),
                exp.network().bytes_sent(), m.consensus_delay_s, delays.size(), d.h);
  return {"fig7_e2e", wall, events_per_sec, "events/s", extra};
}

}  // namespace

int main(int argc, char** argv) try {
  const std::uint32_t n_nodes = env_u32("REPRO_NODES", 200);
  const std::uint32_t n_blocks = env_u32("REPRO_BLOCKS", 20);
  const std::uint32_t n_ops = env_u32("CORE_BENCH_EVENTS", 1'000'000);
  const char* out_env = std::getenv("CORE_BENCH_OUT");
  const std::string out_path =
      argc > 1 ? argv[1] : (out_env != nullptr ? out_env : "bench_core_out.json");

  std::vector<Result> results;
  std::fprintf(stderr, "[bench_sim_core] event queue steady (%u ops)...\n", n_ops);
  results.push_back(bench_event_queue_steady(4096, n_ops));
  std::fprintf(stderr, "[bench_sim_core] event queue cancel...\n");
  results.push_back(bench_event_queue_cancel(4096, n_ops / 2));
  std::fprintf(stderr, "[bench_sim_core] event queue bulk...\n");
  results.push_back(bench_event_queue_bulk(200'000));
  std::fprintf(stderr, "[bench_sim_core] network send...\n");
  results.push_back(bench_network_send(n_ops / 2));
  std::fprintf(stderr, "[bench_sim_core] network flood (%u nodes)...\n", n_nodes);
  results.push_back(bench_network_flood(n_nodes, 20));
  std::fprintf(stderr, "[bench_sim_core] fig7 end-to-end (%u nodes, %u blocks)...\n",
               n_nodes, n_blocks);
  results.push_back(bench_fig7_e2e(n_nodes, n_blocks));

  std::string json = "{\n  \"config\": {";
  {
    char buf[160];
    std::snprintf(buf, sizeof buf, "\"nodes\": %u, \"blocks\": %u, \"ops\": %u", n_nodes,
                  n_blocks, n_ops);
    json += buf;
  }
  json += "},\n  \"benchmarks\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"wall_s\": %.4f, \"rate\": %.1f, \"unit\": \"%s\"",
                  r.name.c_str(), r.wall_s, r.items_per_sec, r.unit);
    json += buf;
    if (!r.extra.empty()) json += ", " + r.extra;
    json += i + 1 < results.size() ? "},\n" : "}\n";
  }
  json += "  }\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "[bench_sim_core] wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "[bench_sim_core] cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "[bench_sim_core] error: %s\n", e.what());
  return 1;
}
