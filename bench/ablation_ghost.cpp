// Ablation (paper §9): GHOST vs Bitcoin vs Bitcoin-NG under contention.
//
// The paper implemented GHOST with all-block propagation and found the
// overhead outweighed the fork-choice benefit. We compare the three
// protocols at a fork-heavy operating point and report the security metrics
// plus network cost.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: GHOST vs Bitcoin vs NG at high contention");

  const double interval = 5.0;       // aggressive PoW rate
  const std::size_t size = 20'000;   // sizeable blocks: propagation matters

  bench::print_metric_row_header();
  std::uint64_t bytes[3] = {0, 0, 0};
  int row = 0;
  for (auto protocol : {chain::Protocol::kBitcoin, chain::Protocol::kGhost,
                        chain::Protocol::kBitcoinNG}) {
    const char* name = protocol == chain::Protocol::kBitcoin  ? "bitcoin"
                       : protocol == chain::Protocol::kGhost  ? "ghost"
                                                              : "ng";
    std::uint64_t total_bytes = 0;
    auto p = bench::run_point([&](std::uint32_t seed) {
      sim::ExperimentConfig cfg;
      cfg.params = protocol == chain::Protocol::kBitcoinNG ? chain::Params::bitcoin_ng()
                                                           : chain::Params::bitcoin();
      cfg.params.protocol = protocol;
      cfg.params.block_interval =
          protocol == chain::Protocol::kBitcoinNG ? 100.0 : interval;
      cfg.params.microblock_interval = interval;
      cfg.params.max_block_size = size;
      cfg.params.max_microblock_size = size;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8500 + seed;
      return cfg;
    });
    // Network cost needs its own run (run_point does not expose the network).
    {
      sim::ExperimentConfig cfg;
      cfg.params = protocol == chain::Protocol::kBitcoinNG ? chain::Params::bitcoin_ng()
                                                           : chain::Params::bitcoin();
      cfg.params.protocol = protocol;
      cfg.params.block_interval =
          protocol == chain::Protocol::kBitcoinNG ? 100.0 : interval;
      cfg.params.microblock_interval = interval;
      cfg.params.max_block_size = size;
      cfg.params.max_microblock_size = size;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8501;
      sim::Experiment exp(cfg);
      exp.run();
      total_bytes = exp.network().bytes_sent();
    }
    char label[32];
    std::snprintf(label, sizeof label, "%.0fs/%zuB", interval, size);
    bench::print_metric_row(name, label, p);
    bytes[row++] = total_bytes;
  }

  std::printf("\nnetwork cost: bitcoin=%.1f MB  ghost=%.1f MB  ng=%.1f MB\n",
              bytes[0] / 1e6, bytes[1] / 1e6, bytes[2] / 1e6);
  std::printf(
      "expected: GHOST improves MPU over Bitcoin by counting pruned subtree\n"
      "work, at higher network cost (it relays all branches); NG dominates\n"
      "both on MPU/fairness (paper §9: their GHOST trial performed worse than\n"
      "Bitcoin once all-block propagation overhead was charged).\n");
  return 0;
}
