// Ablation (paper §9): GHOST vs Bitcoin vs Bitcoin-NG under contention.
//
// The paper implemented GHOST with all-block propagation and found the
// overhead outweighed the fork-choice benefit. We compare the three
// protocols at a fork-heavy operating point and report the security metrics
// plus network cost (the per-seed "network_mb" metric in the sweep output).
//
// Thin wrapper over the registered "ablation_ghost" scenario (src/runner/).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: GHOST vs Bitcoin vs NG at high contention");

  const auto result = bench::run_registered("ablation_ghost");

  std::printf("\nnetwork cost:");
  for (const auto& point : result.points)
    std::printf(" %s=%.1f MB", runner::point_label(point).c_str(),
                runner::aggregate_mean(point, "network_mb"));
  std::printf("\n");

  std::printf(
      "expected: GHOST improves MPU over Bitcoin by counting pruned subtree\n"
      "work, at higher network cost (it relays all branches); NG dominates\n"
      "both on MPU/fairness (paper §9: their GHOST trial performed worse than\n"
      "Bitcoin once all-block propagation overhead was charged).\n");
  return 0;
}
