// Figure 6: weekly mining-pool power by rank.
//
// The paper collected a year of per-block pool attribution and showed the
// 25/50/75th percentile of weekly power share per rank, fitting the medians
// with exp(-0.27 * rank) at R^2 = 0.99. The raw BlockTrail data is not
// distributable; we regenerate the figure from the published fit plus
// lognormal weekly noise (DESIGN.md §3) and verify the fit recovers.
//
// The analytic part needs no simulation; the registered "fig6" scenario
// (src/runner/) then sweeps the fitted exponent to show the skew's security
// consequences (fairness / MPU) under contention.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/miner_distribution.hpp"

int main() {
  using namespace bng;
  bench::print_header("Figure 6: ratio of mining power by pool rank (52 synthetic weeks)");

  Rng rng(2015);
  const std::uint32_t kPools = 20;
  const std::uint32_t kWeeks = 52;
  auto stats = sim::weekly_rank_statistics(kPools, kWeeks, -0.27, 0.25, rng);

  std::printf("%-6s %8s %8s %8s\n", "rank", "p25", "p50", "p75");
  for (std::uint32_t r = 0; r < kPools; ++r)
    std::printf("%-6u %7.2f%% %7.2f%% %7.2f%%\n", r + 1, 100 * stats.p25[r],
                100 * stats.p50[r], 100 * stats.p75[r]);

  auto fit = sim::fit_rank_exponent(stats.p50);
  std::printf("\nexponential fit over medians: exponent=%.3f (paper: -0.27), R^2=%.3f "
              "(paper: 0.99)\n",
              fit.exponent, fit.r2);

  auto powers = sim::exponential_powers(bench::nodes(), -0.27);
  std::printf("largest-miner share in the experiment population: %.1f%% (paper: ~25%%)\n\n",
              100 * powers[0]);

  std::printf("security consequences of the skew (scenario fig6):\n");
  bench::run_registered("fig6");
  return 0;
}
