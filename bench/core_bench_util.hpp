// Shared pieces for the simulation-core benchmarks (bench_sim_core and the
// google-benchmark suite in micro_core): message/sink stubs and the
// deterministic LCG used to generate workloads. Keeping one copy means both
// harnesses measure the same shapes.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "obs/registry.hpp"

namespace bng::bench {

/// Inv-sized message with no payload logic.
struct BenchMessage final : net::Message {
  [[nodiscard]] std::size_t wire_size() const override { return 36; }
  [[nodiscard]] const char* type_name() const override { return "bench"; }
};

/// Node that just counts deliveries.
struct BenchSink final : net::INode {
  std::uint64_t received = 0;
  void on_message(NodeId, const net::MessagePtr&) override { ++received; }
};

/// Deterministic 64-bit LCG (Knuth constants) for benchmark workloads.
inline std::uint64_t lcg_next(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s;
}

/// Export every metric of an obs::Registry snapshot as a google-benchmark
/// counter, so benchmark-side accounting goes through the same typed
/// registry as the sweep records (names in the JSON are unchanged —
/// registration order and names are the schema).
template <class BenchmarkState>
void export_registry(BenchmarkState& state, const obs::Registry& reg) {
  for (const auto& [name, value] : reg.snapshot()) state.counters[name] = value;
}

}  // namespace bng::bench
