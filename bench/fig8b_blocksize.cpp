// Figure 8(b): increasing throughput — the block-size sweep.
//
// Paper §8.2: block sizes 1280 B .. 80 KB at high block frequency (Bitcoin
// 1/10 s; NG microblocks 1/10 s, key blocks 1/100 s). Bitcoin's forks grow
// with size, costing mining power (down to ~"80% loss" at the top of the
// paper's range) and fairness; NG degrades only in latency metrics as nodes
// approach their processing capacity.
//
// Thin wrapper over the registered "fig8b" scenario (src/runner/).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header(
      "Figure 8(b): block-size sweep (Bitcoin 1/10s; NG micro 1/10s, key 1/100s)");

  bench::run_registered("fig8b");

  std::printf(
      "\nexpected shapes (paper Fig 8b): tx/s grows with size for both; Bitcoin's\n"
      "MPU and fairness collapse as propagation time approaches the block\n"
      "interval; NG keeps MPU=1 and fairness~1 but its consensus latency and\n"
      "time-to-prune grow at the largest sizes.\n");
  return 0;
}
