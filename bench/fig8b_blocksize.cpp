// Figure 8(b): increasing throughput — the block-size sweep.
//
// Paper §8.2: block sizes 1280 B .. 80 KB at high block frequency (Bitcoin
// 1/10 s; NG microblocks 1/10 s, key blocks 1/100 s). Bitcoin's forks grow
// with size, costing mining power (down to ~"80% loss" at the top of the
// paper's range) and fairness; NG degrades only in latency metrics as nodes
// approach their processing capacity.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Figure 8(b): block-size sweep (Bitcoin 1/10s; NG micro 1/10s, key 1/100s)");

  const std::vector<std::size_t> sizes = {1280, 2500, 5000, 10'000, 20'000, 40'000, 80'000};
  bench::print_metric_row_header();

  for (std::size_t size : sizes) {
    char label[32];
    std::snprintf(label, sizeof label, "%zuB", size);

    auto btc = bench::run_point([&](std::uint32_t seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin();
      cfg.params.block_interval = 10.0;
      cfg.params.max_block_size = size;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8200 + seed;
      return cfg;
    });
    bench::print_metric_row("bitcoin", label, btc);

    auto ng = bench::run_point([&](std::uint32_t seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin_ng();
      cfg.params.block_interval = 100.0;
      cfg.params.microblock_interval = 10.0;
      cfg.params.max_microblock_size = size;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8250 + seed;
      return cfg;
    });
    bench::print_metric_row("ng", label, ng);
  }

  std::printf(
      "\nexpected shapes (paper Fig 8b): tx/s grows with size for both; Bitcoin's\n"
      "MPU and fairness collapse as propagation time approaches the block\n"
      "interval; NG keeps MPU=1 and fairness~1 but its consensus latency and\n"
      "time-to-prune grow at the largest sizes.\n");
  return 0;
}
