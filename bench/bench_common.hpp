// Shared plumbing for the figure-reproduction harnesses.
//
// The figures are registered as declarative scenarios (src/runner/); each
// binary is a thin wrapper that instantiates its scenario at the scale the
// environment asks for and hands it to the parallel sweep engine.
//
// Scale knobs (environment variables):
//   REPRO_NODES  - node count            (default 1000, the paper's scale)
//   REPRO_BLOCKS - counted blocks / run  (default 60; paper runs 50-100)
//   REPRO_SEEDS  - seeds per data point  (default 1)
//   REPRO_JOBS   - worker threads        (default 0 = all cores)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "runner/emit.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace bng::bench {

inline std::uint32_t nodes() { return runner::env_u32("REPRO_NODES", 1000); }
inline std::uint32_t blocks() { return runner::env_u32("REPRO_BLOCKS", 60); }
inline std::uint32_t seeds() { return runner::env_u32("REPRO_SEEDS", 1); }

inline runner::RunKnobs knobs() { return {nodes(), blocks()}; }

inline runner::SweepOptions sweep_options() {
  runner::SweepOptions opt;
  opt.seeds = seeds();
  opt.jobs = runner::env_u32("REPRO_JOBS", 0);
  return opt;
}

inline void print_header(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("nodes=%u counted-blocks=%u seeds=%u\n\n", nodes(), blocks(), seeds());
}

/// Instantiate + run a registered scenario at env scale and print the table.
inline runner::SweepResult run_registered(const char* name) {
  auto scenario = runner::make_scenario(name, knobs());
  if (!scenario) throw std::runtime_error(std::string("unregistered scenario: ") + name);
  runner::SweepResult result = runner::run_sweep(*scenario, sweep_options());
  runner::print_table(result);
  return result;
}

}  // namespace bng::bench
