// Shared plumbing for the figure-reproduction harnesses.
//
// Scale knobs (environment variables):
//   REPRO_NODES  - node count            (default 1000, the paper's scale)
//   REPRO_BLOCKS - counted blocks / run  (default 60; paper runs 50-100)
//   REPRO_SEEDS  - seeds per data point  (default 1)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "metrics/metrics.hpp"
#include "sim/experiment.hpp"

namespace bng::bench {

inline std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = std::strtoul(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::uint32_t>(parsed) : fallback;
}

inline std::uint32_t nodes() { return env_u32("REPRO_NODES", 1000); }
inline std::uint32_t blocks() { return env_u32("REPRO_BLOCKS", 60); }
inline std::uint32_t seeds() { return env_u32("REPRO_SEEDS", 1); }

/// Paper §7: operational Bitcoin payload = 1 MB / 600 s.
inline constexpr double kPayloadBytesPerSecond = 1'000'000.0 / 600.0;
/// Identical-size transactions (~3.5 tx/s at the operational payload rate).
inline constexpr std::size_t kTxSize = 476;

/// Metric means across seeds for one sweep point.
struct Point {
  double consensus_delay = 0;
  double fairness = 0;
  double mpu = 0;
  double time_to_prune = 0;
  double time_to_win = 0;
  double tx_per_sec = 0;
  std::uint32_t total_pow = 0;
  std::uint32_t main_pow = 0;
};

/// Run `seeds()` experiments from `make_config(seed)` and average metrics.
template <typename MakeConfig>
Point run_point(MakeConfig make_config) {
  Point p;
  const std::uint32_t n = seeds();
  for (std::uint32_t s = 1; s <= n; ++s) {
    sim::Experiment exp(make_config(s));
    exp.run();
    auto m = metrics::compute_metrics(exp);
    p.consensus_delay += m.consensus_delay_s;
    p.fairness += m.fairness;
    p.mpu += m.mining_power_utilization;
    p.time_to_prune += m.time_to_prune_p90_s;
    p.time_to_win += m.time_to_win_p90_s;
    p.tx_per_sec += m.tx_per_sec;
    p.total_pow += m.total_pow_blocks;
    p.main_pow += m.main_chain_pow_blocks;
  }
  const double d = n;
  p.consensus_delay /= d;
  p.fairness /= d;
  p.mpu /= d;
  p.time_to_prune /= d;
  p.time_to_win /= d;
  p.tx_per_sec /= d;
  return p;
}

inline void print_header(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("nodes=%u counted-blocks=%u seeds=%u\n\n", nodes(), blocks(), seeds());
}

inline void print_metric_row_header() {
  std::printf("%-10s %-9s | %9s %9s %8s %8s %9s %8s | %s\n", "protocol", "x", "ttp[s]",
              "ttw[s]", "mpu", "fairness", "consl[s]", "tx/s", "blocks(main/total)");
}

inline void print_metric_row(const char* protocol, const std::string& x, const Point& p) {
  std::printf("%-10s %-9s | %9.2f %9.2f %8.3f %8.3f %9.2f %8.2f | %u/%u\n", protocol,
              x.c_str(), p.time_to_prune, p.time_to_win, p.mpu, p.fairness,
              p.consensus_delay, p.tx_per_sec, p.main_pow, p.total_pow);
}

}  // namespace bng::bench
