// §5.1 / §5.2: the fee-split window and censorship resistance, tabulated.
//
// Regenerates the closed-form results quoted in the paper: r_leader must lie
// in (36.8%, 42.9%) at alpha = 1/4 (40% chosen), the window closes under a
// rushing adversary (alpha -> 1/3), and a 3/4-honest network serializes a
// transaction after 4/3 key blocks (13.33 min at 10-minute intervals).
#include <cstdio>

#include "analysis/incentives.hpp"
#include "common/rng.hpp"

int main() {
  using namespace bng;
  using namespace bng::analysis;

  std::printf("== Incentive analysis (paper §5.1) ==\n\n");
  std::printf("%-8s %12s %12s %10s\n", "alpha", "lower bound", "upper bound", "feasible");
  for (double alpha : {0.05, 0.10, 0.15, 0.20, 0.25, 0.28, 0.30, 0.3333}) {
    auto w = fee_window(alpha);
    std::printf("%-8.4f %11.2f%% %11.2f%% %10s\n", alpha, 100 * w.lower, 100 * w.upper,
                w.feasible ? "yes" : "NO");
  }
  std::printf("\nmax alpha with a feasible window: %.4f\n", max_feasible_alpha());
  std::printf("paper: at alpha=1/4 the window is (37%%, 43%%) -> r_leader = 40%% works;\n");
  std::printf("under optimal-network (rushing) assumptions, alpha=1/3 gives r>45%% and "
              "r<40%%: empty.\n\n");

  std::printf("-- transaction-inclusion attack, expected revenue (fraction of one fee) --\n");
  std::printf("%-8s %-8s %10s %10s %10s\n", "alpha", "r", "honest", "attack", "verdict");
  Rng rng(5);
  for (double alpha : {0.10, 0.25, 0.3333}) {
    for (double r : {0.30, 0.40}) {
      double attack = inclusion_attack_revenue(alpha, r);
      double sim = simulate_inclusion_attack(alpha, r, 200'000, rng);
      std::printf("%-8.4f %-8.2f %9.2f%% %9.2f%% %10s  (monte-carlo %.2f%%)\n", alpha, r,
                  100 * r, 100 * attack, attack < r ? "honest" : "ATTACK", 100 * sim);
    }
  }

  std::printf("\n== Censorship resistance (paper §5.2) ==\n");
  for (double honest : {0.75, 0.9, 0.99}) {
    std::printf("honest fraction %.2f -> expected wait %.3f key blocks (%.2f min at "
                "10-min intervals)\n",
                honest, expected_wait_blocks(honest),
                expected_wait_seconds(honest, 600) / 60.0);
  }
  std::printf("paper: 3/4 honest -> 4/3 blocks -> 13.33 minutes.\n");
  return 0;
}
