#!/usr/bin/env python3
"""Append a reduced micro_core benchmark run to the JSONL trend record.

The trend store (ROADMAP "trend store" interim form) is one JSON object per
line: commit, date, source, and a flat {benchmark name: cpu_time ns} map.
Committed lines are baselines recorded by hand on the reference container;
CI appends its own run to the artifact copy so drift is a one-line diff.

Usage:
  append_trend.py --in micro_core.json --out micro_core.jsonl \
                  --commit <sha> [--source ci]
"""
import argparse
import datetime
import json


def reduce_run(raw: dict, commit: str, source: str) -> dict:
    benchmarks = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        benchmarks[b["name"]] = round(float(b["cpu_time"]), 2)
    return {
        "commit": commit,
        "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d"),
        "source": source,
        "time_unit": "ns",
        "benchmarks": benchmarks,
    }


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--in", dest="infile", required=True)
    ap.add_argument("--out", dest="outfile", required=True)
    ap.add_argument("--commit", required=True)
    ap.add_argument("--source", default="ci")
    args = ap.parse_args()

    with open(args.infile) as f:
        raw = json.load(f)
    record = reduce_run(raw, args.commit, args.source)
    with open(args.outfile, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {len(record['benchmarks'])} benchmarks for {args.commit[:12]}")


if __name__ == "__main__":
    main()
