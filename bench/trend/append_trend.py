#!/usr/bin/env python3
"""Append a reduced micro_core benchmark run to the JSONL trend store.

The trend store (ROADMAP "trend store") is one JSON object per line:
commit, date, source, and a flat {benchmark name: cpu_time ns} map.
Committed lines are baselines recorded by hand on the reference container;
CI appends its own run to the artifact copy so drift is a one-line diff,
and check_trend.py gates hot-path regressions against the last baseline.

Reduction: per benchmark name, the MINIMUM cpu_time across repetitions
(run micro_core with --benchmark_repetitions=N). The minimum is the
standard noise-robust reducer for microbenchmarks — scheduling jitter and
cache pollution only ever add time, so min-of-N approaches the true cost.
Aggregate rows (mean/median/stddev) are skipped; per-repetition rows share
a name and fold into one entry.

Usage:
  append_trend.py --in micro_core.json --store micro_core.jsonl \
                  --commit <sha> [--source ci]

(--out is accepted as an alias of --store for older callers.)
"""
import argparse
import datetime
import json


def reduce_run(raw: dict, commit: str, source: str) -> dict:
    benchmarks = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        t = float(b["cpu_time"])
        if name not in benchmarks or t < benchmarks[name]:
            benchmarks[name] = t
    return {
        "commit": commit,
        "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d"),
        "source": source,
        "time_unit": "ns",
        "benchmarks": {k: round(v, 2) for k, v in benchmarks.items()},
    }


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--in", dest="infile", required=True)
    ap.add_argument("--store", "--out", dest="store", required=True,
                    help="trend store JSONL to append to")
    ap.add_argument("--commit", required=True)
    ap.add_argument("--source", default="ci")
    args = ap.parse_args()

    with open(args.infile) as f:
        raw = json.load(f)
    record = reduce_run(raw, args.commit, args.source)
    with open(args.store, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {len(record['benchmarks'])} benchmarks for {args.commit[:12]}")


if __name__ == "__main__":
    main()
