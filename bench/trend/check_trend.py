#!/usr/bin/env python3
"""Noise-aware perf-regression gate over the micro_core trend store.

Compares a fresh benchmark run (raw google-benchmark JSON) against the most
recent *baseline* line in the trend store (last line with source ==
"baseline") and fails — exit 1 — if any benchmark regressed beyond the
noise model. Exit 2 means the gate could not run (missing baseline, bad
input); CI treats that as a failure too, but the message distinguishes
"your change is slow" from "the gate is broken".

Noise model (three layers, all must trip for a FAIL):

1. min-of-N reduction: per name, the minimum cpu_time across repetitions
   (run with --benchmark_repetitions=3 or more). Jitter only adds time, so
   the min estimates the true cost.

2. Machine-speed normalization: CI containers are not the reference
   container the baseline was recorded on. The per-name ratio
   run/baseline is computed for every shared benchmark and the MEDIAN
   ratio is taken as the machine-speed factor. A benchmark only counts as
   regressed relative to that median — a uniformly 2x-slower runner moves
   every ratio equally and trips nothing, while one benchmark jumping 30%
   above the fleet-wide shift is a real signal.

3. Dual threshold: FAIL only if the normalized ratio exceeds (1 + --rel)
   AND the absolute excess over the speed-adjusted baseline exceeds
   --abs-ns. The absolute floor keeps 3 ns gate-check benchmarks from
   failing on a half-nanosecond wobble that is a 20% relative change.

--inject NAME=FACTOR multiplies the named run entry before comparison;
CI's negative control uses it to prove the gate actually fails on a
seeded regression (a gate that cannot fail is not a gate).

A benchmark present in the run but absent from every baseline is NEW: it
is reported as "new, baselined" and appended to the store as a
speed-normalized baseline record (values divided by the machine-speed
factor, so they are in reference-container units), which gates it from
the next run onward. --no-baseline-new reverts to report-only.

Usage:
  check_trend.py --run micro_core.json --store micro_core.jsonl \
                 [--rel 0.20] [--abs-ns 25] [--inject NAME=FACTOR]... \
                 [--no-baseline-new]
"""
import argparse
import datetime
import json
import statistics
import sys


def load_baseline(store_path: str) -> dict:
    """Merge every source=baseline line: union of names, later lines win.

    Merging (rather than last-line-wins wholesale) lets an auto-baseline
    record carry only newly added benchmarks without eclipsing the full
    hand-recorded baseline that precedes it.
    """
    baseline = None
    with open(store_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("source") == "baseline":
                if baseline is None:
                    baseline = rec
                else:
                    merged = dict(baseline["benchmarks"])
                    merged.update(rec.get("benchmarks", {}))
                    rec["benchmarks"] = merged
                    baseline = rec
    if baseline is None:
        raise SystemExit(f"check_trend: no source=baseline line in {store_path}")
    return baseline


def reduce_run(raw: dict) -> dict:
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        t = float(b["cpu_time"])
        if name not in out or t < out[name]:
            out[name] = t
    return out


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--run", required=True, help="raw google-benchmark JSON")
    ap.add_argument("--store", required=True, help="trend store JSONL")
    ap.add_argument("--rel", type=float, default=0.20,
                    help="relative slack over the machine-speed median (default 0.20)")
    ap.add_argument("--abs-ns", type=float, default=25.0,
                    help="absolute slack in ns (default 25)")
    ap.add_argument("--inject", action="append", default=[],
                    metavar="NAME=FACTOR",
                    help="multiply a run entry before comparison (negative control)")
    ap.add_argument("--no-baseline-new", action="store_true",
                    help="report new benchmarks without appending them to the store")
    args = ap.parse_args()

    try:
        baseline = load_baseline(args.store)
        with open(args.run) as f:
            run = reduce_run(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trend: cannot run gate: {e}", file=sys.stderr)
        return 2

    for spec in args.inject:
        name, _, factor = spec.partition("=")
        if name not in run:
            print(f"check_trend: --inject target {name!r} not in run", file=sys.stderr)
            return 2
        run[name] *= float(factor)
        print(f"[inject] {name} x{factor}")

    base = baseline["benchmarks"]
    shared = sorted(set(base) & set(run))
    new = sorted(set(run) - set(base))
    if len(shared) < 3:
        print(f"check_trend: only {len(shared)} shared benchmarks — "
              "baseline too stale to normalize against", file=sys.stderr)
        return 2

    ratios = {n: run[n] / base[n] for n in shared if base[n] > 0}
    speed = statistics.median(ratios.values())
    print(f"baseline commit {baseline['commit'][:12]} ({baseline['date']}), "
          f"{len(shared)} shared benchmarks, machine-speed factor {speed:.3f}")

    failures = []
    for n in shared:
        if base[n] <= 0:
            continue
        adjusted = base[n] * speed
        rel = run[n] / adjusted - 1.0
        excess = run[n] - adjusted
        if rel > args.rel and excess > args.abs_ns:
            failures.append((n, base[n], adjusted, run[n], rel))

    if new and args.no_baseline_new:
        for n in new:
            print(f"[new] {n}: {run[n]:.1f} ns (not baselined — not gated)")
    elif new:
        # Auto-baseline: store speed-normalized values (reference-container
        # units) so the next run gates these like any hand-recorded entry.
        record = {
            "commit": baseline["commit"],
            "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d"),
            "source": "baseline",
            "note": "auto-baselined by check_trend.py (new benchmarks)",
            "time_unit": "ns",
            "benchmarks": {n: round(run[n] / speed, 2) for n in new},
        }
        try:
            with open(args.store, "a") as f:
                f.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError as e:
            print(f"check_trend: cannot append new-benchmark baseline: {e}",
                  file=sys.stderr)
            return 2
        for n in new:
            print(f"[new, baselined] {n}: {run[n]:.1f} ns "
                  f"(stored {run[n] / speed:.1f} ns speed-normalized; "
                  "gated from next run)")
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
              f"{args.rel:.0%} + {args.abs_ns:g} ns over the speed-adjusted baseline:")
        for n, b, adj, r, rel in sorted(failures, key=lambda f: -f[4]):
            print(f"  {n}: {r:.1f} ns vs {adj:.1f} ns expected "
                  f"(baseline {b:.1f} ns) — +{rel:.0%}")
        return 1
    print(f"OK: no regression beyond {args.rel:.0%} + {args.abs_ns:g} ns "
          f"across {len(shared)} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
