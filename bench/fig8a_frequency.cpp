// Figure 8(a): reducing latency — the block-frequency sweep.
//
// Paper §8.1: Bitcoin's block frequency is swept (by lowering difficulty);
// Bitcoin-NG keeps key blocks at 1/100 s and sweeps the *microblock*
// frequency. At each frequency the block size is chosen so payload
// throughput equals the operational system (1 MB / 600 s). Six panels:
// time to prune, time to win, mining power utilization, fairness,
// consensus latency, transaction frequency.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header(
      "Figure 8(a): frequency sweep at constant payload throughput (1MB/600s)");

  const std::vector<double> frequencies = {0.01, 0.033, 0.1, 0.33, 1.0};  // [1/s]
  bench::print_metric_row_header();

  for (double freq : frequencies) {
    const auto block_size =
        static_cast<std::size_t>(bench::kPayloadBytesPerSecond / freq);
    char label[32];
    std::snprintf(label, sizeof label, "%.3f/s", freq);

    // --- Bitcoin: block interval = 1/freq --------------------------------
    auto btc = bench::run_point([&](std::uint32_t seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin();
      cfg.params.block_interval = 1.0 / freq;
      cfg.params.max_block_size = block_size;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8100 + seed;
      return cfg;
    });
    bench::print_metric_row("bitcoin", label, btc);

    // --- Bitcoin-NG: key blocks 1/100s, microblock interval = 1/freq -----
    auto ng = bench::run_point([&](std::uint32_t seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin_ng();
      cfg.params.block_interval = 100.0;
      cfg.params.microblock_interval = 1.0 / freq;
      cfg.params.max_microblock_size = block_size;
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8150 + seed;
      return cfg;
    });
    bench::print_metric_row("ng", label, ng);
  }

  std::printf(
      "\nexpected shapes (paper Fig 8a): as frequency rises, Bitcoin's MPU falls\n"
      "toward the largest miner's share (~1/4) and fairness degrades, while NG\n"
      "stays ~1.0 on both; both consensus latency and time-to-prune fall with\n"
      "frequency, NG below Bitcoin; tx/s stays ~3.5 for both.\n");
  return 0;
}
