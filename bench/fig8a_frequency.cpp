// Figure 8(a): reducing latency — the block-frequency sweep.
//
// Paper §8.1: Bitcoin's block frequency is swept (by lowering difficulty);
// Bitcoin-NG keeps key blocks at 1/100 s and sweeps the *microblock*
// frequency. At each frequency the block size is chosen so payload
// throughput equals the operational system (1 MB / 600 s). Six panels:
// time to prune, time to win, mining power utilization, fairness,
// consensus latency, transaction frequency.
//
// Thin wrapper over the registered "fig8a" scenario (src/runner/).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header(
      "Figure 8(a): frequency sweep at constant payload throughput (1MB/600s)");

  bench::run_registered("fig8a");

  std::printf(
      "\nexpected shapes (paper Fig 8a): as frequency rises, Bitcoin's MPU falls\n"
      "toward the largest miner's share (~1/4) and fairness degrades, while NG\n"
      "stays ~1.0 on both; both consensus latency and time-to-prune fall with\n"
      "frequency, NG below Bitcoin; tx/s stays ~3.5 for both.\n");
  return 0;
}
