// Micro-benchmarks (google-benchmark) for the primitives underpinning the
// simulation: hashing, Merkle trees, ECDSA, the event queue, the network
// fast path, fork choice, and mempool assembly. These bound how far the
// experiment harness scales.
//
// Machine-readable output: pass --benchmark_format=json (or use
// bench_sim_core, which writes BENCH_core.json with the headline metrics).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core_bench_util.hpp"
#include "chain/block_tree.hpp"
#include "chain/mempool.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "net/event_queue.hpp"
#include "net/fault_plan.hpp"
#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/trace_ring.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace bng;

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256d(benchmark::State& state) {
  std::vector<std::uint8_t> data(80, 0x11);  // block-header sized
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256d(data));
}
BENCHMARK(BM_Sha256d);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i)
    leaves.push_back(crypto::sha256(std::string("tx") + std::to_string(i)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::merkle_root(leaves));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(100)->Arg(2000);

void BM_EcdsaSign(benchmark::State& state) {
  Rng rng(1);
  auto sk = crypto::PrivateKey::generate(rng);
  auto msg = crypto::sha256("microblock header");
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sign(sk, msg));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Rng rng(1);
  auto sk = crypto::PrivateKey::generate(rng);
  auto pk = sk.public_key();
  auto msg = crypto::sha256("microblock header");
  auto sig = crypto::sign(sk, msg);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::verify(pk, msg, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    net::EventQueue q;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i)
      q.schedule_at(static_cast<double>((i * 2654435761u) % 100000), [&fired] { ++fired; });
    q.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(10000);

void BM_EventQueueSteadyState(benchmark::State& state) {
  // Self-rescheduling working set: the shape of a live simulation.
  struct Ctx {
    net::EventQueue q;
    std::uint64_t lcg = 12345;
    std::uint64_t fired = 0;
  };
  struct Tick {
    Ctx* c;
    void operator()() const {
      ++c->fired;
      c->q.schedule_in(1.0 + static_cast<double>(bench::lcg_next(c->lcg) >> 52), Tick{c});
    }
  };
  Ctx ctx;
  for (int i = 0; i < state.range(0); ++i) {
    ctx.q.schedule_at(static_cast<double>(bench::lcg_next(ctx.lcg) >> 52), Tick{&ctx});
  }
  for (auto _ : state) {
    const std::uint64_t target = ctx.fired + 10000;
    while (ctx.fired < target) ctx.q.run_until(ctx.q.now() + 4096.0);
    benchmark::DoNotOptimize(ctx.fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(4096);

void BM_EventQueueBucketInsert(benchmark::State& state) {
  // The calendar layer's O(1) claim: inserts landing inside the active
  // bucket window (the overwhelmingly common case in a live simulation)
  // are one multiply + one vector push, no heap sift.
  net::EventQueue q;
  std::uint64_t fired = 0;
  std::uint64_t lcg = 99;
  for (auto _ : state) {
    for (int i = 0; i < state.range(0); ++i) {
      // 10-bit delays scaled to ~1 s: all within the 2048-bucket window.
      q.schedule_in(static_cast<double>(bench::lcg_next(lcg) >> 54) * 1e-3,
                    [&fired] { ++fired; });
    }
    q.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueBucketInsert)->Arg(4096);

void BM_EventQueueCancel(benchmark::State& state) {
  net::EventQueue q;
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(state.range(0)));
  double base = 10.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < ids.size(); ++i)
      ids[i] = q.schedule_at(base + static_cast<double>(i % 7), [] {});
    for (std::uint64_t id : ids) q.cancel(id);
    base += 10.0;
    // Drain the tombstones inside the measurement: keeps memory bounded
    // across framework-chosen iteration counts and charges the full
    // cancelled-event lifecycle to the metric.
    q.run_all();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueCancel)->Arg(4096);

void BM_NetworkGossipBurst(benchmark::State& state) {
  const auto n_nodes = static_cast<std::uint32_t>(state.range(0));
  Rng rng(42);
  net::EventQueue q;
  net::Topology topo = net::Topology::random(n_nodes, 5, rng);
  net::Network net(q, topo, net::LatencyModel::constant(0.05),
                   net::LinkParams{100'000.0, 40}, rng);
  std::vector<bench::BenchSink> sinks(n_nodes);
  for (NodeId i = 0; i < n_nodes; ++i) net.attach(i, &sinks[i]);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const std::uint64_t before = net.messages_sent();
    for (NodeId a = 0; a < n_nodes; ++a) {
      auto msg = std::make_shared<bench::BenchMessage>();
      for (NodeId b : net.peers(a)) net.send(a, b, msg);
    }
    q.run_all();
    messages += net.messages_sent() - before;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_NetworkGossipBurst)->Arg(200)->Arg(1000);

void BM_NetworkLinkTrainPending(benchmark::State& state) {
  // Witness for the per-link event-train design: burst-load every link of a
  // paper-style overlay with a deep message train and record the peak
  // pending-event count. With one scheduled event per busy link it tracks
  // active_links (O(links)); the per-message design it replaced would sit at
  // in_flight_msgs (O(links x train depth)).
  const auto n_nodes = static_cast<std::uint32_t>(state.range(0));
  const int per_link = static_cast<int>(state.range(1));
  double max_pending = 0;
  double max_in_flight = 0;
  double links = 0;
  for (auto _ : state) {
    Rng rng(42);
    net::EventQueue q;
    net::Topology topo = net::Topology::random(n_nodes, 5, rng);
    net::Network net(q, topo, net::LatencyModel::constant(0.05),
                     net::LinkParams{100'000.0, 40}, rng);
    std::vector<bench::BenchSink> sinks(n_nodes);
    for (NodeId i = 0; i < n_nodes; ++i) net.attach(i, &sinks[i]);
    const auto msg = std::make_shared<bench::BenchMessage>();
    for (int r = 0; r < per_link; ++r)
      for (NodeId a = 0; a < n_nodes; ++a)
        for (NodeId b : net.peers(a)) net.send(a, b, msg);
    max_pending = std::max(max_pending, static_cast<double>(q.pending()));
    max_in_flight = std::max(max_in_flight, static_cast<double>(net.messages_in_flight()));
    links = static_cast<double>(net.active_links());
    q.run_all();
  }
  // Benchmark-side accounting goes through the typed registry (obs/) — the
  // same schema machinery sweep records use; exported counter names are
  // unchanged.
  obs::Registry reg;
  reg.gauge("max_pending_events", obs::Unit::kCount,
            "peak event-queue size under the burst")
      .set(max_pending);
  reg.gauge("in_flight_msgs", obs::Unit::kCount, "peak messages in flight")
      .set(max_in_flight);
  reg.gauge("active_links", obs::Unit::kCount, "links carrying traffic").set(links);
  reg.gauge("pending_per_link", obs::Unit::kNone, "peak pending events per link")
      .set(links > 0 ? max_pending / links : 0);
  bench::export_registry(state, reg);
}
BENCHMARK(BM_NetworkLinkTrainPending)->Args({200, 16})->Args({1000, 16});

void BM_NetworkBurstDrain(benchmark::State& state) {
  // A deep train on one link: the first send rides the idle-link direct
  // path, and once its delivery fires every queued message behind it should
  // drain in the same callback (nothing else is due). The counters pin both
  // fast paths — a change that silently disables either one shows up as a
  // hard zero here, not as a slow timing drift.
  const int train = static_cast<int>(state.range(0));
  Rng rng(42);
  net::EventQueue q;
  net::Topology topo = net::Topology::complete(2);
  net::Network net(q, topo, net::LatencyModel::constant(0.05),
                   net::LinkParams{100'000.0, 40}, rng);
  std::vector<bench::BenchSink> sinks(2);
  for (NodeId i = 0; i < 2; ++i) net.attach(i, &sinks[i]);
  const auto msg = std::make_shared<bench::BenchMessage>();
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < train; ++i) net.send(0, 1, msg);
    q.run_all();
    delivered += static_cast<std::uint64_t>(train);
  }
  obs::Registry reg;
  reg.counter("direct_deliveries", obs::Unit::kCount,
              "deliveries that rode the idle-link direct path")
      .inc(net.direct_deliveries());
  reg.counter("burst_drained", obs::Unit::kCount,
              "messages delivered by a burst continuation, no scheduler pop")
      .inc(net.burst_drained());
  reg.gauge("fast_path_fraction", obs::Unit::kNone,
            "fraction of deliveries that bypassed the generic pop path")
      .set(delivered > 0 ? static_cast<double>(net.direct_deliveries() +
                                               net.burst_drained()) /
                               static_cast<double>(delivered)
                         : 0);
  bench::export_registry(state, reg);
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_NetworkBurstDrain)->Arg(256);

void BM_NetworkSendFaultLayerOverhead(benchmark::State& state) {
  // Witness for the fault layer's zero-cost guarantee: the same gossip burst
  // through a network with an EMPTY FaultPlan scheduled (arg 1) vs. no plan
  // at all (arg 0). Timings must match within noise, and the counters must
  // be bit-identical — `counter_mismatch` is asserted 0 so a regression
  // (an empty plan scheduling events or perturbing the send path) fails
  // loudly rather than drifting.
  const bool with_empty_plan = state.range(0) != 0;
  const std::uint32_t n_nodes = 200;
  Rng rng(42);
  net::EventQueue q;
  net::Topology topo = net::Topology::random(n_nodes, 5, rng);
  net::Network net(q, topo, net::LatencyModel::constant(0.05),
                   net::LinkParams{100'000.0, 40}, rng);
  std::vector<bench::BenchSink> sinks(n_nodes);
  for (NodeId i = 0; i < n_nodes; ++i) net.attach(i, &sinks[i]);
  const std::size_t pending_before = q.pending();
  if (with_empty_plan) net::schedule_faults(net, net::FaultPlan{});
  double max_pending = 0;
  for (auto _ : state) {
    const auto msg = std::make_shared<bench::BenchMessage>();
    for (NodeId a = 0; a < n_nodes; ++a)
      for (NodeId b : net.peers(a)) net.send(a, b, msg);
    max_pending = std::max(max_pending, static_cast<double>(q.pending()));
    q.run_all();
  }
  obs::Registry reg;
  reg.counter("scheduled_by_plan", obs::Unit::kCount,
              "events the empty FaultPlan scheduled (must be 0)")
      .inc(static_cast<std::uint64_t>(q.pending() - pending_before));
  reg.gauge("max_pending_events", obs::Unit::kCount,
            "peak event-queue size under the burst")
      .set(max_pending);
  reg.counter("messages_sent", obs::Unit::kCount, "messages through the send path")
      .inc(net.messages_sent());
  // An empty plan must add zero events; any residue is a bug.
  reg.gauge("counter_mismatch", obs::Unit::kNone,
            "1 when the fault layer perturbed the queue")
      .set(q.pending() == pending_before ? 0 : 1);
  bench::export_registry(state, reg);
  if (q.pending() != pending_before) state.SkipWithError("empty FaultPlan scheduled events");
}
// Fixed iteration count so the two variants' counters (max_pending_events,
// messages_sent) are directly comparable in the emitted JSON.
BENCHMARK(BM_NetworkSendFaultLayerOverhead)->Arg(0)->Arg(1)->Iterations(64);

chain::BlockPtr bench_block(chain::BlockType type, const Hash256& prev, std::uint64_t salt) {
  chain::BlockHeader h;
  h.type = type;
  h.prev = prev;
  h.nonce = salt;
  return std::make_shared<chain::Block>(h, std::vector<chain::TxPtr>{}, 0);
}

void BM_BlockTreeInsertChain(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(1);
    chain::BlockTree tree(chain::make_genesis(1, kCoin), chain::TieBreak::kRandom,
                          chain::BlockTree::ForkChoice::kHeaviestChain, &rng);
    Hash256 prev = tree.entry(0).block->id();
    for (int i = 0; i < state.range(0); ++i) {
      auto block = bench_block(chain::BlockType::kPow, prev, static_cast<std::uint64_t>(i));
      prev = block->id();
      tree.insert(block, static_cast<double>(i), 1.0);
    }
    benchmark::DoNotOptimize(tree.best_tip());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockTreeInsertChain)->Arg(500);

void BM_BlockTreeForkChoiceGhost(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(1);
    chain::BlockTree tree(chain::make_genesis(1, kCoin), chain::TieBreak::kRandom,
                          chain::BlockTree::ForkChoice::kHeaviestSubtree, &rng);
    // Bushy tree: every block forks off a random existing block.
    std::vector<Hash256> ids{tree.entry(0).block->id()};
    for (int i = 0; i < state.range(0); ++i) {
      const Hash256& parent = ids[rng.next_below(ids.size())];
      auto block = bench_block(chain::BlockType::kPow, parent, static_cast<std::uint64_t>(i));
      ids.push_back(block->id());
      tree.insert(block, static_cast<double>(i), 1.0);
    }
    benchmark::DoNotOptimize(tree.best_tip());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockTreeForkChoiceGhost)->Arg(300);

void BM_MempoolAssemble(benchmark::State& state) {
  chain::Mempool pool;
  for (int i = 0; i < 20000; ++i) {
    chain::Outpoint op;
    op.vout = static_cast<std::uint32_t>(i);
    pool.submit(chain::make_transfer(op, 1000, chain::address_from_tag(i), 10, 300));
  }
  for (auto _ : state) benchmark::DoNotOptimize(pool.assemble(1'000'000));
}
BENCHMARK(BM_MempoolAssemble);

void BM_CrossShardLaneMerge(benchmark::State& state) {
  // The parallel engine's cross-shard delivery path: sends between shards
  // buffer into (src, dst) lanes, and flush_lanes() merges them onto the
  // destination queues in deterministic (arrival, src shard, seq) order.
  // This prices one barrier's worth of lane traffic: buffered send +
  // merge-sort + destination scheduling, per message.
  const auto n_nodes = static_cast<std::uint32_t>(state.range(0));
  Rng rng(42);
  net::EventQueue q0;
  net::EventQueue q1;
  net::Topology topo = net::Topology::random(n_nodes, 5, rng);
  net::Network net(q0, topo, net::LatencyModel::constant(0.05),
                   net::LinkParams{100'000.0, 40}, rng);
  std::vector<std::uint32_t> shard_of(n_nodes);
  for (NodeId i = 0; i < n_nodes; ++i) shard_of[i] = i < n_nodes / 2 ? 0 : 1;
  net.configure_shards({&q0, &q1}, shard_of);
  std::vector<bench::BenchSink> sinks(n_nodes);
  for (NodeId i = 0; i < n_nodes; ++i) net.attach(i, &sinks[i]);
  const auto msg = std::make_shared<bench::BenchMessage>();
  for (auto _ : state) {
    for (NodeId a = 0; a < n_nodes; ++a)
      for (NodeId b : net.peers(a))
        if (net.shard_of(a) != net.shard_of(b)) net.send(a, b, msg);
    net.flush_lanes();
    q0.run_all();
    q1.run_all();
  }
  obs::Registry reg;
  reg.counter("lane_messages", obs::Unit::kCount,
              "messages that crossed a shard boundary through a lane")
      .inc(net.lane_messages());
  reg.gauge("lane_backlog_after_flush", obs::Unit::kCount,
            "lanes must be empty after flush (0)")
      .set(static_cast<double>(net.lane_backlog()));
  bench::export_registry(state, reg);
  state.SetItemsProcessed(static_cast<std::int64_t>(net.lane_messages()));
}
BENCHMARK(BM_CrossShardLaneMerge)->Arg(200);

void BM_ShardBarrierOverhead(benchmark::State& state) {
  // End-to-end cost of the bulk-synchronous machinery: a small sharded
  // experiment where windows are plentiful and events are cheap, so the
  // per-window barrier (park workers, merge lanes, replay observers,
  // re-release) dominates. Items = windows, so time-per-item IS the
  // barrier round-trip; the registry carries the efficiency split.
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  double stall_ms = 0;
  double busy_ms = 0;
  std::uint64_t windows = 0;
  for (auto _ : state) {
    sim::ExperimentConfig cfg;
    cfg.params = chain::Params::bitcoin();
    cfg.params.block_interval = 20;
    cfg.params.max_block_size = 4000;
    cfg.num_nodes = 16;
    cfg.min_degree = 3;
    cfg.target_blocks = 10;
    cfg.drain_time = 10;
    cfg.shards = shards;
    sim::Experiment exp(cfg);
    exp.run();
    const sim::ParallelStats* s = exp.parallel_stats();
    if (s == nullptr) {
      state.SkipWithError("parallel engine did not engage");
      return;
    }
    windows += s->windows;
    stall_ms += s->stall_ms;
    busy_ms += s->busy_ms;
  }
  obs::Registry reg;
  reg.counter("windows", obs::Unit::kCount, "safe windows (= barriers) executed")
      .inc(windows);
  reg.gauge("barrier_stall_ms_per_window", obs::Unit::kNone,
            "mean per-window wall time shards spent parked (ms)")
      .set(windows > 0 ? stall_ms / static_cast<double>(windows) : 0);
  reg.gauge("parallel_efficiency", obs::Unit::kNone,
            "busy / (busy + stall) across shard threads")
      .set(busy_ms + stall_ms > 0 ? busy_ms / (busy_ms + stall_ms) : 1.0);
  bench::export_registry(state, reg);
  state.SetItemsProcessed(static_cast<std::int64_t>(windows));
}
BENCHMARK(BM_ShardBarrierOverhead)->Arg(2)->Arg(4);

void BM_TraceRingRecord(benchmark::State& state) {
  // The trace ring's two costs: the enabled record path (arg 1 — one bounds
  // write into the ring) and the disabled gate (arg 0 — the `wants()` load +
  // branch every traced call site pays when tracing is off; this is the
  // number the "--trace off is zero-overhead" claim rests on).
  const bool enabled = state.range(0) != 0;
  obs::TraceRing ring(enabled ? obs::kTraceBlocks : 0, 1u << 12);
  double t = 0;
  ring.set_clock([&t] { return t; });
  BlockId block = 0;
  for (auto _ : state) {
    t += 1.0;
    ++block;
    if (ring.wants(obs::kTraceBlocks))
      ring.record(obs::kTraceBlocks, obs::TraceKind::kAccept, 1, block, block - 1, 2);
    benchmark::DoNotOptimize(ring.size());
  }
  state.counters["recorded"] = static_cast<double>(ring.total_recorded());
  state.counters["dropped"] = static_cast<double>(ring.dropped());
}
BENCHMARK(BM_TraceRingRecord)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
