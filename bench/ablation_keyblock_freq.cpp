// Ablation (paper §8.1 closing note): key-block interval in Bitcoin-NG.
//
// "In the low frequency experiments ... we observe a slight mining power
// utilization decrease and time to prune increase ... key block forks" —
// rare but long-lived when key-block intervals are long. This sweep holds
// the microblock cadence fixed and varies only the key-block interval.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: NG key-block interval at fixed microblock cadence (10s)");

  bench::print_metric_row_header();
  for (double key_interval : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    auto p = bench::run_point([&](std::uint32_t seed) {
      sim::ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin_ng();
      cfg.params.block_interval = key_interval;
      cfg.params.microblock_interval = 10.0;
      cfg.params.max_microblock_size =
          static_cast<std::size_t>(10.0 * bench::kPayloadBytesPerSecond);
      cfg.num_nodes = bench::nodes();
      cfg.tx_size = bench::kTxSize;
      cfg.target_blocks = bench::blocks();
      cfg.seed = 8300 + seed;
      return cfg;
    });
    char label[32];
    std::snprintf(label, sizeof label, "%.0fs", key_interval);
    bench::print_metric_row("ng", label, p);
  }

  std::printf(
      "\nexpected: short key intervals raise contention (more key-block forks,\n"
      "lower MPU); very long intervals leave forks unresolved longer (time to\n"
      "prune grows when a fork does occur) while tx/s is unaffected.\n");
  return 0;
}
