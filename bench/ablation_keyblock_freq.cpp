// Ablation (paper §8.1 closing note): key-block interval in Bitcoin-NG.
//
// "In the low frequency experiments ... we observe a slight mining power
// utilization decrease and time to prune increase ... key block forks" —
// rare but long-lived when key-block intervals are long. This sweep holds
// the microblock cadence fixed and varies only the key-block interval.
//
// Thin wrapper over the registered "ablation_keyblock_freq" scenario.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace bng;
  bench::print_header("Ablation: NG key-block interval at fixed microblock cadence (10s)");

  bench::run_registered("ablation_keyblock_freq");

  std::printf(
      "\nexpected: short key intervals raise contention (more key-block forks,\n"
      "lower MPU); very long intervals leave forks unresolved longer (time to\n"
      "prune grows when a fork does occur) while tx/s is unaffected.\n");
  return 0;
}
