// Mining-power churn demo (paper §5.2, "Resilience to Mining Power
// Variation").
//
// An alt-coin's difficulty is tuned to its current hash rate; when miners
// flee to a more profitable chain, blocks crawl until the next retarget.
// In Bitcoin that freezes transaction processing; in Bitcoin-NG the current
// leader keeps emitting microblocks at an unchanged cadence, so the ledger
// keeps moving even while leader elections stall.
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/miner_distribution.hpp"

namespace {

void run(bng::chain::Protocol protocol) {
  using namespace bng;
  const bool is_ng = protocol == chain::Protocol::kBitcoinNG;

  sim::ExperimentConfig cfg;
  cfg.params = is_ng ? chain::Params::bitcoin_ng() : chain::Params::bitcoin();
  cfg.params.block_interval = 30;
  cfg.params.microblock_interval = 5;
  cfg.params.max_block_size = 8000;
  cfg.params.max_microblock_size = 8000;
  cfg.num_nodes = 100;
  cfg.target_blocks = 1'000'000;  // stop by simulated time below
  cfg.retarget = chain::RetargetRule{40, 30.0, 4.0};
  cfg.seed = 5;

  sim::Experiment exp(cfg);
  exp.build();
  exp.scheduler().start();

  std::printf("--- %s ---\n", is_ng ? "bitcoin-ng" : "bitcoin");
  std::printf("%8s %12s %12s %14s %12s\n", "t[s]", "difficulty", "PoW blocks",
              "txs committed", "tx/min(win)");

  std::uint64_t last_tx = 0;
  const Seconds window = 600;
  for (int tick = 1; tick <= 6; ++tick) {
    exp.queue().run_until(tick * window);
    if (tick == 3) {
      // 90% of the hash rate leaves for a more profitable coin.
      const auto& powers = exp.powers();
      for (std::uint32_t i = 0; i < cfg.num_nodes; ++i)
        exp.scheduler().set_power(i, powers[i] * 0.1);
      std::printf("%8s  ============ 90%% OF MINING POWER LEAVES ============\n", "");
    }
    const auto txs = exp.global_tree().best_entry().chain_tx_count;
    std::printf("%8.0f %12.1f %12llu %14llu %12.1f\n", exp.queue().now(),
                exp.scheduler().current_difficulty(),
                static_cast<unsigned long long>(exp.trace().pow_blocks()),
                static_cast<unsigned long long>(txs),
                static_cast<double>(txs - last_tx) / (window / 60.0));
    last_tx = txs;
  }
  exp.scheduler().stop();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("difficulty retargets every 40 blocks; power drops 90%% at t=1800s\n\n");
  run(bng::chain::Protocol::kBitcoin);
  run(bng::chain::Protocol::kBitcoinNG);
  std::printf(
      "takeaway (§5.2): after the drop both chains elect leaders ~10x slower\n"
      "until retargets recover, but Bitcoin-NG's committed-transaction rate\n"
      "barely moves because microblocks are difficulty-independent.\n");
  return 0;
}
