// Side-by-side comparison: Bitcoin vs Bitcoin-NG at matched payload
// throughput — a miniature of the paper's evaluation (§8).
//
// Both protocols are configured to carry the same payload rate; Bitcoin
// must use fast blocks to do it, Bitcoin-NG uses rare key blocks plus fast
// microblocks. The security metrics diverge exactly as the paper predicts.
#include <cstdio>

#include "metrics/metrics.hpp"
#include "sim/experiment.hpp"

namespace {

void report(const char* name, const bng::metrics::MetricsReport& m) {
  std::printf("%-12s | %9.2f %9.2f %8.3f %8.3f %9.2f %8.2f\n", name,
              m.time_to_prune_p90_s, m.time_to_win_p90_s, m.mining_power_utilization,
              m.fairness, m.consensus_delay_s, m.tx_per_sec);
}

}  // namespace

int main() {
  using namespace bng;
  const std::uint32_t kNodes = 300;
  const double payload_rate = 1'000'000.0 / 600.0;  // the operational 1MB/600s
  const double freq = 0.2;                          // blocks (or microblocks) per second
  const auto size = static_cast<std::size_t>(payload_rate / freq);

  std::printf("comparing at %.1f blocks/s, %zu-byte blocks, %u nodes\n\n", freq, size,
              kNodes);
  std::printf("%-12s | %9s %9s %8s %8s %9s %8s\n", "protocol", "ttp[s]", "ttw[s]", "mpu",
              "fairness", "consl[s]", "tx/s");

  {
    sim::ExperimentConfig cfg;
    cfg.params = chain::Params::bitcoin();
    cfg.params.block_interval = 1.0 / freq;
    cfg.params.max_block_size = size;
    cfg.num_nodes = kNodes;
    cfg.target_blocks = 60;
    cfg.seed = 1;
    sim::Experiment exp(cfg);
    exp.run();
    report("bitcoin", metrics::compute_metrics(exp));
  }
  {
    sim::ExperimentConfig cfg;
    cfg.params = chain::Params::bitcoin_ng();
    cfg.params.block_interval = 100.0;  // key blocks stay rare
    cfg.params.microblock_interval = 1.0 / freq;
    cfg.params.max_microblock_size = size;
    cfg.num_nodes = kNodes;
    cfg.target_blocks = 60;
    cfg.seed = 1;
    sim::Experiment exp(cfg);
    exp.run();
    report("bitcoin-ng", metrics::compute_metrics(exp));
  }

  std::printf(
      "\nreading the table (paper §8): pushing Bitcoin to this rate costs mining\n"
      "power (mpu << 1: forked blocks are wasted) and fairness, and keeps\n"
      "time-to-prune high; Bitcoin-NG carries the same payload with mpu = 1,\n"
      "fairness ~= 1 and fork windows bounded by key-block propagation.\n");
  return 0;
}
