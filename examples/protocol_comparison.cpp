// Side-by-side comparison: Bitcoin vs Bitcoin-NG at matched payload
// throughput — a miniature of the paper's evaluation (§8).
//
// Both protocols are configured to carry the same payload rate; Bitcoin
// must use fast blocks to do it, Bitcoin-NG uses rare key blocks plus fast
// microblocks. The security metrics diverge exactly as the paper predicts.
//
// Also a miniature of the sweep-orchestration API (src/runner/): the
// comparison is a declarative Scenario — a base config plus one protocol
// axis — handed to the parallel multi-seed engine, which averages the seeds
// and prints the aggregate table.
#include <cstdio>

#include "runner/emit.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

int main() {
  using namespace bng;
  const std::uint32_t kNodes = 300;
  const double payload_rate = 1'000'000.0 / 600.0;  // the operational 1MB/600s
  const double freq = 0.2;                          // blocks (or microblocks) per second
  const auto size = static_cast<std::size_t>(payload_rate / freq);

  std::printf("comparing at %.1f blocks/s, %zu-byte blocks, %u nodes\n\n", freq, size,
              kNodes);

  runner::Scenario comparison;
  comparison.name = "protocol_comparison";
  comparison.description = "Bitcoin vs Bitcoin-NG at matched payload throughput";
  comparison.seed_base = 1;
  comparison.base.num_nodes = kNodes;
  comparison.base.target_blocks = 60;

  runner::Axis protocols{"protocol", {}};
  protocols.values.push_back(
      {"bitcoin", 0, [freq, size](sim::ExperimentConfig& cfg) {
         cfg.params = chain::Params::bitcoin();
         cfg.params.block_interval = 1.0 / freq;
         cfg.params.max_block_size = size;
       }});
  protocols.values.push_back(
      {"bitcoin-ng", 0, [freq, size](sim::ExperimentConfig& cfg) {
         cfg.params = chain::Params::bitcoin_ng();
         cfg.params.block_interval = 100.0;  // key blocks stay rare
         cfg.params.microblock_interval = 1.0 / freq;
         cfg.params.max_microblock_size = size;
       }});
  comparison.axes.push_back(std::move(protocols));

  runner::SweepOptions options;
  options.seeds = 2;
  options.jobs = 0;  // all cores; results are identical for any job count
  runner::print_table(runner::run_sweep(comparison, options));

  std::printf(
      "\nreading the table (paper §8): pushing Bitcoin to this rate costs mining\n"
      "power (mpu << 1: forked blocks are wasted) and fairness, and keeps\n"
      "time-to-prune high; Bitcoin-NG carries the same payload with mpu = 1,\n"
      "fairness ~= 1 and fork windows bounded by key-block propagation.\n");
  return 0;
}
