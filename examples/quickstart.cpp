// Quickstart: run a Bitcoin-NG deployment and read out the paper's metrics.
//
//   $ ./quickstart
//
// Builds a 200-node emulated network (random ≥5-peer topology, empirical
// internet latencies, 100 kbit/s links), drives proof-of-work through the
// mining scheduler, and lets the elected leaders stream microblocks. This is
// the smallest end-to-end use of the library's public API.
#include <cstdio>

#include "metrics/metrics.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace bng;

  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();  // key blocks every 100 s
  cfg.params.microblock_interval = 10.0;     // leader cadence (§4.2)
  cfg.params.max_microblock_size = 16'700;   // ~1 MB/600 s payload equivalent
  cfg.num_nodes = 200;
  cfg.target_blocks = 50;                    // run for 50 microblocks (§8)
  cfg.seed = 42;

  std::printf("running Bitcoin-NG: %u nodes, key interval %.0fs, microblock "
              "interval %.0fs...\n",
              cfg.num_nodes, cfg.params.block_interval, cfg.params.microblock_interval);

  sim::Experiment exp(cfg);
  exp.run();

  auto m = metrics::compute_metrics(exp);
  std::printf("\nsimulated %.0f s of chain time\n", m.chain_duration_s);
  std::printf("key blocks:   %u generated, %u on the main chain\n", m.total_pow_blocks,
              m.main_chain_pow_blocks);
  std::printf("microblocks:  %u generated, %u on the main chain\n", m.total_micro_blocks,
              m.main_chain_micro_blocks);
  std::printf("transactions: %llu committed (%.2f tx/s)\n",
              static_cast<unsigned long long>(m.main_chain_txs), m.tx_per_sec);
  std::printf("\npaper metrics (§6):\n");
  std::printf("  (90%%,90%%) consensus delay: %6.2f s\n", m.consensus_delay_s);
  std::printf("  fairness:                  %6.3f (1.0 = optimal)\n", m.fairness);
  std::printf("  mining power utilization:  %6.3f (1.0 = optimal)\n",
              m.mining_power_utilization);
  std::printf("  time to prune (p90):       %6.2f s\n", m.time_to_prune_p90_s);
  std::printf("  time to win (p90):         %6.2f s\n", m.time_to_win_p90_s);
  std::printf("\nnetwork: %.1f MB over %llu messages\n",
              exp.network().bytes_sent() / 1e6,
              static_cast<unsigned long long>(exp.network().messages_sent()));
  return 0;
}
