// Payment network demo: real transactions through real mempools.
//
// Unlike the measurement harness (which pre-fills identical transactions,
// paper §7), this example exercises the full-mempool path: users submit
// transfers, leaders serialize them into microblocks, and the resulting
// chain replays through the UTXO ledger, including the 40/60 fee split
// (§4.4) and coinbase maturity. It also reports per-transaction
// confirmation latency, illustrating §4.3: a user should wait for network
// propagation before trusting a microblock.
#include <cstdio>
#include <unordered_map>

#include "chain/utxo.hpp"
#include "common/stats.hpp"
#include "metrics/metrics.hpp"
#include "ng/ng_node.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace bng;

  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();
  cfg.params.block_interval = 60;
  cfg.params.microblock_interval = 5;
  cfg.params.max_microblock_size = 20'000;
  cfg.num_nodes = 60;
  cfg.target_blocks = 40;
  cfg.pool_size = 4000;  // premine outputs feeding the payments
  cfg.workload_mode = protocol::WorkloadMode::kFullMempool;
  cfg.seed = 7;

  std::printf("payment network: %u nodes, full mempools, %zu pending payments\n",
              cfg.num_nodes, cfg.pool_size);
  sim::Experiment exp(cfg);
  exp.run();

  // --- Replay the winning chain through the ledger -----------------------
  chain::Ledger ledger(cfg.params);
  if (!ledger.apply_block(*exp.genesis()).ok) {
    std::printf("genesis replay failed\n");
    return 1;
  }
  const auto& g = exp.global_tree();
  std::unordered_map<Hash256, Seconds, Hash256Hasher> committed_at;
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    if (idx == chain::BlockTree::kGenesisIndex) continue;
    const auto& e = g.entry(idx);
    auto r = ledger.apply_block(*e.block);
    if (!r.ok) {
      std::printf("ledger replay failed: %s\n", r.error.c_str());
      return 1;
    }
    for (const auto& tx : e.block->txs())
      if (!tx->is_coinbase()) committed_at.emplace(tx->id(), e.received);
  }
  std::printf("replayed %llu transactions through the UTXO state machine\n",
              static_cast<unsigned long long>(ledger.transactions_applied()));

  // --- Confirmation latency: commit time at a remote node ----------------
  // §4.3: "a user that sees a microblock should wait for the propagation
  // time of the network before considering it in the chain".
  std::vector<double> confirmation;
  const auto& observer = *exp.nodes()[cfg.num_nodes - 1];
  const auto& tree = observer.tree();
  for (std::uint32_t idx : tree.path_from_genesis(tree.best_tip())) {
    const auto& e = tree.entry(idx);
    if (e.block->type() != chain::BlockType::kMicro) continue;
    for (const auto& tx : e.block->txs()) {
      auto it = committed_at.find(tx->id());
      if (it != committed_at.end())
        confirmation.push_back(e.received - it->second);  // receipt - generation
    }
  }
  auto s = summarize(confirmation);
  std::printf("\nconfirmation delay at a remote node (microblock receipt):\n  %s\n",
              format_summary(s).c_str());

  // --- Leader revenues -----------------------------------------------------
  std::printf("\nminer balances after the run (subsidy + fee shares, incl. immature):\n");
  int shown = 0;
  for (std::uint32_t i = 0; i < cfg.num_nodes && shown < 5; ++i) {
    const auto* node = dynamic_cast<const ng::NgNode*>(exp.nodes()[i].get());
    if (node == nullptr) continue;
    Amount balance = ledger.total_balance(node->reward_address());
    if (balance > 0) {
      std::printf("  node %-3u mined %llu key blocks -> %.4f coins\n", i,
                  static_cast<unsigned long long>(node->key_blocks_mined()),
                  static_cast<double>(balance) / kCoin);
      ++shown;
    }
  }
  auto m = metrics::compute_metrics(exp);
  std::printf("\nthroughput: %.2f tx/s, consensus delay %.1f s\n", m.tx_per_sec,
              m.consensus_delay_s);
  return 0;
}
