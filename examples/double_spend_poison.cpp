// Attack demo: a leader splits the brain of the system and gets poisoned.
//
// Paper §4.5: microblocks are cheap, so a malicious leader can sign two
// different microblocks extending the same block and show different ledger
// states to different victims (a double-spend setup). Any node holding both
// signed headers has a proof of fraud; the next leader places a *poison
// transaction* that revokes the cheater's revenue and pays the poisoner a
// 5% bounty. This example walks the whole arc and replays the final chain
// through the UTXO ledger to show the money actually moved.
#include <cstdio>

#include "chain/utxo.hpp"
#include "net/network.hpp"
#include "ng/ng_node.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace bng;

  // --- A five-node NG network --------------------------------------------
  auto params = chain::Params::bitcoin_ng();
  params.microblock_interval = 2.0;
  params.max_microblock_size = 8000;

  net::EventQueue queue;
  Rng rng(99);
  auto topology = net::Topology::complete(5);
  net::Network network(queue, topology, net::LatencyModel::constant(0.05),
                       net::LinkParams{1e6, 40}, rng);
  auto genesis = chain::make_genesis(4000, kCoin);
  sim::TraceRecorder trace(genesis);

  protocol::SyntheticWorkload pool;
  const Hash256 genesis_txid = genesis->txs()[0]->id();
  for (std::size_t i = 0; i < 4000; ++i)
    pool.txs.push_back(chain::make_transfer(
        chain::Outpoint{genesis_txid, static_cast<std::uint32_t>(i)}, kCoin - 1000,
        chain::address_from_tag(i), 1000, 120));
  pool.tx_wire_size = pool.txs[0]->wire_size();
  pool.fee_per_tx = 1000;

  std::vector<std::unique_ptr<ng::NgNode>> nodes;
  for (NodeId i = 0; i < 5; ++i) {
    protocol::NodeConfig cfg;
    cfg.params = params;
    cfg.verify_signatures = true;  // full ECDSA checks in this demo
    cfg.workload = &pool;
    nodes.push_back(
        std::make_unique<ng::NgNode>(i, network, genesis, cfg, rng.fork(i), &trace));
    network.attach(i, nodes.back().get());
  }

  // --- Act 1: node 0 honestly leads an epoch ------------------------------
  std::printf("[t=%5.1f] node 0 wins a key block and leads\n", queue.now());
  nodes[0]->on_mining_win(1.0);
  queue.run_until(queue.now() + 5.0);

  // --- Act 2: node 0 equivocates ------------------------------------------
  const auto& tree0 = nodes[0]->tree();
  Hash256 key_block_id;
  for (auto idx : tree0.path_from_genesis(tree0.best_tip()))
    if (tree0.entry(idx).block->type() == chain::BlockType::kKey)
      key_block_id = tree0.entry(idx).block->id();
  std::printf("[t=%5.1f] node 0 signs a SECOND microblock on its key block "
              "(split brain / double-spend setup)\n",
              queue.now());
  nodes[0]->forge_microblock(key_block_id);
  queue.run_until(queue.now() + 5.0);

  std::printf("[t=%5.1f] fraud detected by %zu node(s)\n", queue.now(),
              trace.frauds().size());

  // --- Act 3: node 1 takes over and poisons --------------------------------
  std::printf("[t=%5.1f] node 1 wins the next key block\n", queue.now());
  nodes[1]->on_mining_win(1.0);
  queue.run_until(queue.now() + 10.0);
  std::printf("[t=%5.1f] node 1 placed %llu poison transaction(s)\n", queue.now(),
              static_cast<unsigned long long>(nodes[1]->poisons_placed()));

  // --- Act 4: replay the winning chain; follow the money -------------------
  chain::Ledger ledger(params);
  if (!ledger.apply_block(*genesis).ok) return 1;
  const auto& t = nodes[2]->tree();  // a bystander's view
  for (auto idx : t.path_from_genesis(t.best_tip())) {
    if (idx == chain::BlockTree::kGenesisIndex) continue;
    auto r = ledger.apply_block(*t.entry(idx).block);
    if (!r.ok) {
      std::printf("replay error: %s\n", r.error.c_str());
      return 1;
    }
  }
  const double cheater = static_cast<double>(
                             ledger.total_balance(nodes[0]->reward_address())) / kCoin;
  const double poisoner = static_cast<double>(
                              ledger.total_balance(nodes[1]->reward_address())) / kCoin;
  std::printf("\nledger after replaying the main chain (subsidy = %.0f coins):\n",
              static_cast<double>(params.block_subsidy) / kCoin);
  std::printf("  cheater  (node 0): %8.4f coins   <- revenue revoked (was subsidy + fees)\n",
              cheater);
  std::printf("  poisoner (node 1): %8.4f coins   <- subsidy + fee shares + 5%% bounty\n",
              poisoner);
  std::printf("  cheater poisoned:  %s\n",
              ledger.is_poisoned(key_block_id) ? "yes" : "no");
  return cheater == 0.0 ? 0 : 1;
}
