// ngsim — sweep orchestration CLI.
//
// Runs a registered (or file-loaded) sweep scenario across a worker pool,
// prints the figure table, and writes aggregate JSON + CSV in the
// BENCH_core.json spirit: one self-describing machine-readable artifact per
// sweep. Per-seed digests, metrics, and aggregates (and hence the CSVs) are
// bit-identical regardless of --jobs; the JSON additionally records the
// run's jobs count and wall time.
//
//   ngsim --list
//   ngsim --scenario fig7 --seeds 4 --jobs 4 --out results/
//   ngsim --scenario-file my_sweep.scn --seeds 8
//   ngsim --serve 9700                      # worker half of a TCP fleet
//   ngsim --scenario fig7 --hosts a:9700,b:9700 --journal fig7.journal
//   ngsim --resume fig7.journal --hosts a:9700,b:9700
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <system_error>

#include "obs/telemetry.hpp"
#include "obs/trace_ring.hpp"
#include "runner/adaptive.hpp"
#include "runner/cache.hpp"
#include "runner/emit.hpp"
#include "runner/executor.hpp"
#include "runner/journal.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "runner/tcp_fleet.hpp"

namespace {

using namespace bng;

constexpr const char* kUsage = R"(ngsim — parallel multi-seed sweep runner

Usage: ngsim --scenario NAME [options]
       ngsim --scenario-file PATH [options]
       ngsim --serve PORT [--cache DIR]
       ngsim --resume JOURNAL [options]
       ngsim --list

Options:
  --scenario NAME       registered scenario to run (see --list)
  --scenario-file PATH  load a key=value scenario file instead
  --seeds N             seeds per sweep point                 (default 1)
  --jobs N              worker threads; 0 = all cores         (default 0)
  --procs N             worker *processes* instead of threads (default 0 = off)
                        output is bit-identical to any --jobs run
  --shards N            shard each run across N event-loop threads
                        (parallel-in-time; digests stay bit-identical for any
                        N; in-process runs only — --procs/--hosts workers
                        re-expand from the scenario text and ignore it)
  --nodes N             emulated node count                   (default 1000)
  --blocks N            counted blocks per run                (default 60)
  --out DIR             write <scenario>.json / .csv here     (default .)
  --cache DIR           content-addressed record cache (see bench/README.md
                        "Adaptive sweeps & caching"): finished jobs are
                        answered from DIR instead of re-simulated; shared by
                        --jobs/--procs/--hosts runs and safe across processes.
                        Journal --resume records take precedence.
  --dense               for refine-marked scenarios: evaluate every grid point
                        instead of bisecting (the oracle an adaptive run's
                        frontier artifacts are byte-compared against)
  --no-table            suppress the human-readable table
  --list                list registered scenarios and exit
  --help                this text

Observability (see bench/README.md "Observability"):
  --progress            render a [progress] line on stderr every ~500 ms
  --stats-json PATH     write an end-of-sweep telemetry report (records,
                        journal fsync lag, per-worker fleet stats) to PATH
  --trace CATS          record a decision trace to <out>/<scenario>_trace.jsonl;
                        CATS = comma list of blocks, adversary, events (or all).
                        In-process runs only (not --procs/--hosts); artifacts
                        stay byte-identical to an untraced run

Distributed mode (see bench/README.md):
  --serve PORT          run as a TCP fleet worker on PORT (0 = kernel pick)
  --hosts H:P,H:P,...   dispatch jobs to these --serve workers (overrides
                        --jobs/--procs; output stays bit-identical)
  --journal PATH        append completed records to a crash-safe journal
  --resume PATH         continue the sweep journaled at PATH: scenario, scale
                        and seeds are rebuilt from the journal, finished
                        slots are kept, only the holes run
  --heartbeat-ms N          worker heartbeat interval        (default 1000)
  --heartbeat-timeout-ms N  silence before a worker is dead  (default 10000)
  --job-deadline-ms N       per-job hung-worker deadline     (default 0 = off)
  --straggler-after-ms N    speculative re-dispatch age      (default 0 = off)
  --connect-timeout-ms N    per-host TCP connect timeout     (default 5000)

Environment fallbacks: REPRO_NODES, REPRO_BLOCKS, REPRO_SEEDS, REPRO_JOBS,
REPRO_PROCS.

Scenario files (see bench/README.md):
  name = my_sweep
  base.protocol = bitcoin          # bitcoin | ng | ghost
  base.block_interval = 10
  axis.max_block_size = 10000, 20000, 40000
)";

void list_scenarios() {
  std::printf("registered scenarios:\n");
  for (const auto& [name, description] : runner::list_scenarios())
    std::printf("  %-24s %s\n", name.c_str(), description.c_str());
}

bool parse_u32_arg(const char* flag, const char* value, std::uint32_t& out,
                   std::uint32_t min_value) {
  if (value == nullptr) {
    std::fprintf(stderr, "ngsim: %s requires a value\n", flag);
    return false;
  }
  char* end = nullptr;
  unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min_value || parsed > UINT32_MAX) {
    std::fprintf(stderr, "ngsim: bad value '%s' for %s\n", value, flag);
    return false;
  }
  out = static_cast<std::uint32_t>(parsed);
  return true;
}

bool write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "ngsim: cannot write %s\n", path.string().c_str());
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "ngsim: write to %s failed\n", path.string().c_str());
    return false;
  }
  return true;
}

/// The running binary's path, for exec'ing worker processes.
std::string self_exe_path(const char* argv0) {
  std::error_code ec;
  auto p = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return p.string();
  return argv0;
}

/// Async-signal-safe: raise the cooperative flag; the dispatch loops notice,
/// quiesce, flush the journal, and unwind with SweepInterrupted.
void on_interrupt(int) {
  bng::runner::sweep_interrupt_flag().store(true, std::memory_order_relaxed);
}

/// Exit code for an interrupted-but-resumable sweep (EX_TEMPFAIL: rerun
/// with --resume and it completes).
constexpr int kExitInterrupted = 75;

/// `--cache DIR` for the worker entry points: opens the directory and
/// returns the cache, or nullptr when the args carry none. Sets `ok` false
/// (with a message) on a malformed tail or an unopenable directory.
std::unique_ptr<runner::RunCache> worker_cache_from_args(int argc, char** argv,
                                                         int first, bool& ok) {
  std::unique_ptr<runner::RunCache> cache;
  ok = true;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      try {
        cache = std::make_unique<runner::RunCache>(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ngsim: %s\n", e.what());
        ok = false;
        return nullptr;
      }
      continue;
    }
    std::fprintf(stderr, "ngsim: unknown worker option '%s'\n", argv[i]);
    ok = false;
    return nullptr;
  }
  return cache;
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode: speak the record protocol on stdin/stdout and never
  // touch the CLI surface (a stray printf would corrupt the framing).
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    bool ok = false;
    const auto cache = worker_cache_from_args(argc, argv, 2, ok);
    if (!ok) return 1;
    bng::runner::ActiveCacheScope cache_scope(cache.get());
    return bng::runner::worker_main(0, 1);
  }

  // TCP fleet worker mode: bind, announce the port, serve dispatchers until
  // killed. Survives dispatcher crashes by design (--resume reconnects).
  if (argc > 1 && std::strcmp(argv[1], "--serve") == 0) {
    std::uint32_t port = 0;
    if (argc < 3 || !parse_u32_arg("--serve", argv[2], port, 0) || port > 65535) {
      std::fprintf(stderr, "ngsim: --serve requires a port (0-65535)\n");
      return 1;
    }
    bool ok = false;
    const auto cache = worker_cache_from_args(argc, argv, 3, ok);
    if (!ok) return 1;
    bng::runner::ActiveCacheScope cache_scope(cache.get());
    return bng::runner::serve_main(static_cast<std::uint16_t>(port));
  }

  std::string scenario_name;
  std::string scenario_file;
  std::string resume_path;
  std::string stats_json_path;
  std::string out_dir = ".";
  bool print_table = true;
  bool dense = false;
  runner::RunKnobs knobs{runner::env_u32("REPRO_NODES", 1000),
                         runner::env_u32("REPRO_BLOCKS", 60)};
  runner::SweepOptions options;
  std::uint32_t cli_shards = 0;  // 0 = leave the scenario's own setting
  options.seeds = runner::env_u32("REPRO_SEEDS", 1);
  options.jobs = runner::env_u32("REPRO_JOBS", 0);
  options.procs = runner::env_u32("REPRO_PROCS", 0);

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(arg, "--list") == 0) {
      list_scenarios();
      return 0;
    }
    if (std::strcmp(arg, "--no-table") == 0) {
      print_table = false;
      continue;
    }
    if (std::strcmp(arg, "--scenario") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --scenario requires a name\n");
        return 1;
      }
      scenario_name = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--scenario-file") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --scenario-file requires a path\n");
        return 1;
      }
      scenario_file = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--out") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --out requires a directory\n");
        return 1;
      }
      out_dir = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--cache") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --cache requires a directory\n");
        return 1;
      }
      options.cache_dir = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--dense") == 0) {
      dense = true;
      continue;
    }
    if (std::strcmp(arg, "--seeds") == 0) {
      if (!parse_u32_arg(arg, next, options.seeds, 1)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--jobs") == 0) {
      if (!parse_u32_arg(arg, next, options.jobs, 0)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--procs") == 0) {
      if (!parse_u32_arg(arg, next, options.procs, 0)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--shards") == 0) {
      if (!parse_u32_arg(arg, next, cli_shards, 1)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--nodes") == 0) {
      if (!parse_u32_arg(arg, next, knobs.nodes, 2)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--blocks") == 0) {
      if (!parse_u32_arg(arg, next, knobs.blocks, 1)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--hosts") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --hosts requires host:port[,host:port...]\n");
        return 1;
      }
      std::string list = next;
      for (std::size_t pos = 0; pos <= list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) options.hosts.push_back(list.substr(pos, end - pos));
        pos = end + 1;
      }
      if (options.hosts.empty()) {
        std::fprintf(stderr, "ngsim: --hosts got no endpoints\n");
        return 1;
      }
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--journal") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --journal requires a path\n");
        return 1;
      }
      options.journal_path = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--resume") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --resume requires a journal path\n");
        return 1;
      }
      resume_path = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--heartbeat-ms") == 0) {
      if (!parse_u32_arg(arg, next, options.fleet.heartbeat_ms, 0)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--heartbeat-timeout-ms") == 0) {
      if (!parse_u32_arg(arg, next, options.fleet.heartbeat_timeout_ms, 1)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--job-deadline-ms") == 0) {
      if (!parse_u32_arg(arg, next, options.fleet.job_deadline_ms, 0)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--straggler-after-ms") == 0) {
      if (!parse_u32_arg(arg, next, options.fleet.straggler_after_ms, 0)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--connect-timeout-ms") == 0) {
      if (!parse_u32_arg(arg, next, options.fleet.connect_timeout_ms, 1)) return 1;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--progress") == 0) {
      options.progress = true;
      continue;
    }
    if (std::strcmp(arg, "--stats-json") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr, "ngsim: --stats-json requires a path\n");
        return 1;
      }
      stats_json_path = next;
      ++i;
      continue;
    }
    if (std::strcmp(arg, "--trace") == 0) {
      if (next == nullptr) {
        std::fprintf(stderr,
                     "ngsim: --trace requires categories (blocks,adversary,events)\n");
        return 1;
      }
      try {
        options.trace_mask = bng::obs::parse_trace_mask(next);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ngsim: %s\n", e.what());
        return 1;
      }
      ++i;
      continue;
    }
    std::fprintf(stderr, "ngsim: unknown option '%s'\n\n%s", arg, kUsage);
    return 1;
  }

  if (options.trace_mask != 0 && (options.procs > 0 || !options.hosts.empty())) {
    std::fprintf(stderr,
                 "ngsim: --trace needs the in-process executor; drop --procs/--hosts\n");
    return 1;
  }

  // --resume rebuilds the whole sweep identity (scenario, scale, seeds) from
  // the journal header; explicit flags may only confirm it, never change it
  // — run_sweep separately re-verifies the full identity before appending.
  std::string resume_inline_text;
  std::optional<runner::JournalHeader> resume_header;
  if (!resume_path.empty()) {
    if (!options.journal_path.empty() && options.journal_path != resume_path) {
      std::fprintf(stderr, "ngsim: --journal conflicts with --resume\n");
      return 1;
    }
    try {
      resume_header = runner::read_journal_header(resume_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ngsim: %s\n", e.what());
      return 1;
    }
    const runner::JournalHeader& header = *resume_header;
    const bool builtin = header.source_kind ==
                         static_cast<std::uint8_t>(runner::ScenarioSource::Kind::kBuiltin);
    if (builtin) {
      if (!scenario_name.empty() && scenario_name != header.ref) {
        std::fprintf(stderr,
                     "ngsim: --resume journal is for scenario '%s', not '%s'\n",
                     header.ref.c_str(), scenario_name.c_str());
        return 1;
      }
      if (!scenario_file.empty()) {
        std::fprintf(stderr,
                     "ngsim: --resume journal records a registered scenario; drop "
                     "--scenario-file\n");
        return 1;
      }
      scenario_name = header.ref;
    } else {
      if (!scenario_name.empty() || !scenario_file.empty()) {
        std::fprintf(stderr,
                     "ngsim: --resume journal carries its own scenario text; drop "
                     "--scenario/--scenario-file\n");
        return 1;
      }
      resume_inline_text = header.ref;
    }
    knobs = header.knobs;
    options.seeds = header.seeds;
    options.journal_path = resume_path;
    options.resume = true;
  }

  if (scenario_name.empty() && scenario_file.empty() && resume_inline_text.empty()) {
    std::fprintf(stderr, "ngsim: one of --scenario / --scenario-file is required\n\n%s",
                 kUsage);
    return 1;
  }

  std::optional<runner::Scenario> scenario;
  try {
    if (!resume_inline_text.empty()) {
      scenario = runner::load_scenario_string(resume_inline_text,
                                              "<journal " + resume_path + ">", knobs);
    } else if (!scenario_file.empty()) {
      scenario = runner::load_scenario_file(scenario_file, knobs);
      if (!scenario_name.empty() && scenario->name != scenario_name) {
        std::fprintf(stderr, "ngsim: scenario file defines '%s', not '%s'\n",
                     scenario->name.c_str(), scenario_name.c_str());
        return 1;
      }
    } else {
      scenario = runner::make_scenario(scenario_name, knobs);
      if (!scenario) {
        std::fprintf(stderr, "ngsim: unknown scenario '%s'\n\n", scenario_name.c_str());
        list_scenarios();
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ngsim: %s\n", e.what());
    return 1;
  }

  // Applied to the base before expansion so every sweep point inherits it.
  // Purely a wall-clock knob: records are bit-identical for any value.
  if (cli_shards > 0) scenario->base.shards = cli_shards;

  // A mismatched --resume must fail with the identity reason, and it must do
  // so before the output-path probing below: the journal belonging to a
  // different sweep is the user's actual mistake, not whatever --out happens
  // to be. run_sweep/run_adaptive re-verify the full identity before
  // appending, so this early check can only reject, never admit.
  if (resume_header) {
    const std::size_t n_points = runner::expand(*scenario).size();
    const runner::JournalHeader expected = runner::make_journal_header(
        *scenario, std::max(options.seeds, 1u), n_points);
    if (const std::string why = runner::journal_mismatch(*resume_header, expected);
        !why.empty()) {
      std::fprintf(stderr,
                   "ngsim: --resume: journal %s does not belong to this sweep: %s\n",
                   resume_path.c_str(), why.c_str());
      return 1;
    }
  }

  // Validate the output targets BEFORE dispatching any job: an unwritable
  // --out must fail in milliseconds, not after the sweep. The probe opens
  // in append mode so existing artifacts from an earlier run survive intact
  // if this run later fails.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "ngsim: cannot create --out directory %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }
  const std::filesystem::path dir(out_dir);
  const auto json_path = dir / (scenario->name + ".json");
  const auto agg_path = dir / (scenario->name + "_aggregate.csv");
  const auto seeds_path = dir / (scenario->name + "_seeds.csv");
  for (const auto& path : {json_path, agg_path, seeds_path}) {
    const bool existed = std::filesystem::exists(path, ec);
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "ngsim: cannot write %s\n", path.string().c_str());
      return 1;
    }
    probe.close();
    // The probe's job is done once the open succeeded: don't leave a
    // zero-byte artifact behind if this run later fails.
    if (!existed) std::filesystem::remove(path, ec);
  }

  if (options.procs > 0) {
    options.worker_argv = {self_exe_path(argv[0]), "--worker"};
    if (!options.cache_dir.empty()) {
      // Worker processes open the same directory themselves; entries are
      // shared through the filesystem (write-to-temp + rename keeps
      // concurrent writers safe).
      options.worker_argv.push_back("--cache");
      options.worker_argv.push_back(options.cache_dir);
    }
  }

  const auto trace_path = dir / (scenario->name + "_trace.jsonl");
  if (options.trace_mask != 0) options.trace_path = trace_path.string();

  // Telemetry backs both --progress and --stats-json; a sweep with neither
  // pays nothing (run_sweep sees a null pointer).
  bng::obs::SweepTelemetry telemetry;
  if (!stats_json_path.empty() || options.progress) options.telemetry = &telemetry;

  // A journaled sweep turns SIGINT/SIGTERM into a graceful stop: the
  // executor quiesces, the journal flushes, and the exit code + hint say how
  // to pick the sweep back up. Unjournaled sweeps keep the default
  // die-immediately behavior — there is nothing to save.
  if (!options.journal_path.empty()) {
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
  }

  if (dense && !scenario->refine.has_value()) {
    std::fprintf(stderr,
                 "ngsim: --dense only applies to scenarios with a refine axis\n");
    return 1;
  }

  try {
    // Refine-marked scenarios go through the adaptive driver: coarse pass +
    // bisection (or every point under --dense), plus the crossover-surface
    // artifacts. Everything else is a plain dense sweep.
    runner::SweepResult result;
    std::filesystem::path frontier_json_path;
    std::filesystem::path frontier_csv_path;
    bool wrote_frontier = false;
    if (scenario->refine.has_value()) {
      runner::AdaptiveOptions aopt;
      aopt.sweep = options;
      aopt.dense = dense;
      runner::AdaptiveResult adaptive = runner::run_adaptive(*scenario, aopt);
      frontier_json_path = dir / (scenario->name + "_frontier.json");
      frontier_csv_path = dir / (scenario->name + "_frontier.csv");
      if (!write_file(frontier_json_path, runner::frontier_json(*scenario, adaptive)) ||
          !write_file(frontier_csv_path, runner::frontier_csv(adaptive)))
        return 1;
      wrote_frontier = true;
      result = std::move(adaptive.sweep);
    } else {
      result = runner::run_sweep(*scenario, options);
    }
    if (print_table) {
      // Report the scenario's effective base scale, not the requested knobs:
      // scenarios may clamp or fix their size (smoke, the attack ablations).
      std::printf("== %s ==\n%s\nnodes=%u blocks=%u\n\n", result.scenario.c_str(),
                  result.description.c_str(), scenario->base.num_nodes,
                  scenario->base.target_blocks);
      runner::print_table(result);
    }

    if (!write_file(json_path, runner::to_json(result)) ||
        !write_file(agg_path, runner::aggregate_csv(result)) ||
        !write_file(seeds_path, runner::seeds_csv(result)))
      return 1;
    std::printf("\nwrote %s, %s, %s\n", json_path.string().c_str(),
                agg_path.string().c_str(), seeds_path.string().c_str());
    if (wrote_frontier)
      std::printf("wrote %s, %s\n", frontier_json_path.string().c_str(),
                  frontier_csv_path.string().c_str());
    if (options.trace_mask != 0)
      std::printf("wrote %s\n", trace_path.string().c_str());
    if (!stats_json_path.empty()) {
      if (!write_file(stats_json_path,
                      telemetry.to_json(result.scenario, result.wall_s)))
        return 1;
      std::printf("wrote %s\n", stats_json_path.c_str());
    }
  } catch (const runner::SweepInterrupted&) {
    if (!options.journal_path.empty()) {
      std::fprintf(stderr,
                   "ngsim: sweep interrupted; completed records are safe in %s\n"
                   "ngsim: resume with: ngsim --resume %s\n",
                   options.journal_path.c_str(), options.journal_path.c_str());
    } else {
      std::fprintf(stderr, "ngsim: sweep interrupted\n");
    }
    return kExitInterrupted;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ngsim: sweep failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
