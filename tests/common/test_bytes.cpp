#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace bng {
namespace {

TEST(ByteWriter, LittleEndianIntegers) {
  ByteWriter w;
  w.u16(0x0102);
  w.u32(0x03040506);
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(w.data()[0], 0x02);
  EXPECT_EQ(w.data()[1], 0x01);
  EXPECT_EQ(w.data()[2], 0x06);
  EXPECT_EQ(w.data()[5], 0x03);
}

TEST(ByteRoundTrip, AllWidths) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(3.14159);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Varint, EncodingSizes) {
  auto encoded_size = [](std::uint64_t v) {
    ByteWriter w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(0xfc), 1u);
  EXPECT_EQ(encoded_size(0xfd), 3u);
  EXPECT_EQ(encoded_size(0xffff), 3u);
  EXPECT_EQ(encoded_size(0x10000), 5u);
  EXPECT_EQ(encoded_size(0xffffffff), 5u);
  EXPECT_EQ(encoded_size(0x100000000ull), 9u);
}

TEST(Varint, RoundTripBoundaries) {
  for (std::uint64_t v : {0ull, 1ull, 0xfcull, 0xfdull, 0xfeull, 0xffffull, 0x10000ull,
                          0xffffffffull, 0x100000000ull, 0xffffffffffffffffull}) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(ByteReader, ReadPastEndThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(ByteReader, Remaining) {
  ByteWriter w;
  w.u64(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(ByteWriter, BytesSpanAppends) {
  ByteWriter w;
  std::vector<std::uint8_t> payload{1, 2, 3};
  w.bytes(payload);
  w.bytes(payload);
  EXPECT_EQ(w.size(), 6u);
  ByteReader r(w.data());
  auto taken = r.take(6);
  EXPECT_EQ(taken[3], 1);
}

}  // namespace
}  // namespace bng
