#include "common/small_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>

namespace bng {
namespace {

TEST(SmallFn, EmptyByDefault) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFn, InvokesSmallLambda) {
  int hits = 0;
  SmallFn fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn a = [&hits] { ++hits; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, NonTrivialCaptureDestroyed) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> weak = token;
  {
    SmallFn fn = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(weak.expired());  // capture keeps it alive
    fn();
  }
  EXPECT_TRUE(weak.expired());  // destroying the callable releases it
}

TEST(SmallFn, MovedFromDoesNotDoubleDestroy) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  {
    SmallFn a = [token] {};
    token.reset();
    SmallFn b = std::move(a);
    a.reset();  // no-op on moved-from
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(SmallFn, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes: over the inline budget
  big[0] = 11;
  big[15] = 22;
  std::uint64_t sum = 0;
  SmallFn fn = [big, &sum] { sum = big[0] + big[15]; };
  fn();
  EXPECT_EQ(sum, 33u);
}

TEST(SmallFn, HeapFallbackMoveAndDestroy) {
  auto token = std::make_shared<int>(3);
  std::weak_ptr<int> weak = token;
  std::array<std::uint64_t, 16> pad{};
  {
    SmallFn a = [token, pad] { (void)pad; };
    token.reset();
    SmallFn b = std::move(a);
    b();
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(SmallFn, AcceptsStdFunction) {
  int hits = 0;
  std::function<void()> f = [&hits] { ++hits; };
  SmallFn fn = f;  // copy from lvalue
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, AssignReplacesCallable) {
  int first = 0;
  int second = 0;
  SmallFn fn = [&first] { ++first; };
  fn.assign([&second] { ++second; });
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace bng
