#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace bng {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  for (double mean : {0.5, 10.0, 600.0}) {
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.02);
  }
}

TEST(Rng, ExponentialIsMemoryless) {
  // P(X > a+b | X > a) == P(X > b): compare tail counts.
  Rng rng(23);
  const double mean = 1.0;
  int beyond_1 = 0, beyond_2_given_1 = 0;
  const int n = 300'000;
  for (int i = 0; i < n; ++i) {
    double x = rng.exponential(mean);
    if (x > 1.0) {
      ++beyond_1;
      if (x > 2.0) ++beyond_2_given_1;
    }
  }
  const double p_tail = static_cast<double>(beyond_2_given_1) / beyond_1;
  EXPECT_NEAR(p_tail, std::exp(-1.0), 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  const int n = 200'000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double m = sum / n;
  double var = sq / n - m * m;
  EXPECT_NEAR(m, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // P(identity) = 1/100! ~ 0
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng fork1 = a.fork(1);
  Rng fork1_again = Rng(99).fork(1);
  Rng fork2 = a.fork(2);
  EXPECT_EQ(fork1.next(), fork1_again.next());
  EXPECT_NE(fork1.next(), fork2.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace bng
