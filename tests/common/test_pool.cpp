#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bng {
namespace {

struct Tracked {
  static inline int live = 0;
  int value;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};

TEST(Pool, ConstructsAndDestroys) {
  Tracked::live = 0;
  {
    auto p = make_pooled<Tracked>(42);
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(Tracked::live, 1);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(Pool, RecyclesMemory) {
  // After release, the freelist must hand the same block back.
  auto p1 = make_pooled<Tracked>(1);
  const void* addr1 = p1.get();
  p1.reset();
  auto p2 = make_pooled<Tracked>(2);
  EXPECT_EQ(static_cast<const void*>(p2.get()), addr1);
  EXPECT_EQ(p2->value, 2);
}

TEST(Pool, ManyLiveObjectsAreDistinct) {
  std::vector<std::shared_ptr<Tracked>> objs;
  for (int i = 0; i < 1000; ++i) objs.push_back(make_pooled<Tracked>(i));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(objs[i]->value, i);
  EXPECT_EQ(Tracked::live, 1000);
  objs.clear();
  EXPECT_EQ(Tracked::live, 0);
}

TEST(Pool, WeakPtrKeepsControlBlockSafe) {
  // allocate_shared puts object and control block in one pooled node; the
  // node must not be recycled while a weak_ptr still references it.
  std::weak_ptr<Tracked> weak;
  {
    auto p = make_pooled<Tracked>(5);
    weak = p;
  }
  EXPECT_TRUE(weak.expired());
  auto other = make_pooled<Tracked>(6);  // may reuse memory once weak released
  EXPECT_EQ(other->value, 6);
}

}  // namespace
}  // namespace bng
