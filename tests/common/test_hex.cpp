#include "common/hex.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace bng {
namespace {

TEST(Hex, EncodeEmpty) { EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), ""); }

TEST(Hex, EncodeBytes) {
  std::vector<std::uint8_t> data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
}

TEST(Hex, DecodeRoundTrip) {
  std::vector<std::uint8_t> data{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(Hex, DecodeUppercase) {
  EXPECT_EQ(from_hex("ABCD"), (std::vector<std::uint8_t>{0xab, 0xcd}));
}

TEST(Hex, DecodeOddLengthThrows) { EXPECT_THROW(from_hex("abc"), std::invalid_argument); }

TEST(Hex, DecodeBadCharThrows) { EXPECT_THROW(from_hex("zz"), std::invalid_argument); }

TEST(Hash256Test, DefaultIsZero) {
  Hash256 h;
  EXPECT_TRUE(h.is_zero());
}

TEST(Hash256Test, NonZeroDetected) {
  Hash256 h;
  h.bytes[31] = 1;
  EXPECT_FALSE(h.is_zero());
}

TEST(Hash256Test, HexRoundTrip) {
  Hash256 h;
  for (std::size_t i = 0; i < 32; ++i) h.bytes[i] = static_cast<std::uint8_t>(i * 7 + 3);
  EXPECT_EQ(Hash256::from_hex(h.to_hex()), h);
}

TEST(Hash256Test, FromHexWrongLengthThrows) {
  EXPECT_THROW(Hash256::from_hex("abcd"), std::invalid_argument);
}

TEST(Hash256Test, OrderingIsLexicographic) {
  Hash256 a, b;
  b.bytes[0] = 1;
  EXPECT_LT(a, b);
  a.bytes[0] = 2;
  EXPECT_GT(a, b);
}

TEST(Hash256Test, HasherDistinguishes) {
  Hash256 a, b;
  b.bytes[31] = 1;
  Hash256Hasher hasher;
  EXPECT_NE(hasher(a), hasher(b));
}

}  // namespace
}  // namespace bng
