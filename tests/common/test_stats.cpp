#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace bng {
namespace {

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, SingleElement) { EXPECT_EQ(percentile({7.0}, 90), 7.0); }

TEST(Percentile, MedianOfOddCount) { EXPECT_EQ(percentile({3, 1, 2}, 50), 2.0); }

TEST(Percentile, MedianInterpolates) { EXPECT_EQ(percentile({1, 2, 3, 4}, 50), 2.5); }

TEST(Percentile, Extremes) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 100), 9.0);
}

TEST(Percentile, P90OfMostlyZeros) {
  std::vector<double> v(100, 0.0);
  v[0] = 100.0;  // one outlier
  EXPECT_EQ(percentile(v, 90), 0.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_EQ(percentile({10, 0, 5}, 50), 5.0);
}

TEST(MeanStddev, BasicValues) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 0.001);
}

TEST(MeanStddev, EmptyAndSingleton) {
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(LinearFitTest, PerfectLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};  // y = 1 + 2x
  auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineHighR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.02);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFitTest, ConstantYGivesZeroSlope) {
  std::vector<double> x{1, 2, 3}, y{4, 4, 4};
  auto fit = linear_fit(x, y);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.intercept, 4.0);
}

TEST(ExponentialFitTest, RecoversExponent) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * std::exp(-0.27 * i));
  }
  auto fit = exponential_fit(x, y);
  EXPECT_NEAR(fit.slope, -0.27, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(SummaryTest, FieldsConsistent) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  auto s = summarize(v);
  EXPECT_EQ(s.n, 100u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_LT(s.p25, s.p50);
  EXPECT_LT(s.p50, s.p75);
  EXPECT_LT(s.p75, s.p90);
}

TEST(SummaryTest, FormatContainsFields) {
  auto s = summarize({1.0, 2.0, 3.0});
  auto text = format_summary(s);
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
}

}  // namespace
}  // namespace bng
