// NodeStateArena sharding: slice partitioning, prefault, and the
// FlatIdSet-shaped view semantics across slice boundaries.
#include <gtest/gtest.h>

#include "common/node_state.hpp"

namespace bng {
namespace {

TEST(NodeStateShards, SetShardsPartitionsContiguously) {
  NodeStateArena arena(10);
  arena.set_shards({0, 0, 0, 1, 1, 1, 1, 2, 2, 2});
  EXPECT_EQ(arena.num_slices(), 3u);
  EXPECT_EQ(arena.slice(0).node_begin(), 0u);
  EXPECT_EQ(arena.slice(0).num_nodes(), 3u);
  EXPECT_EQ(arena.slice(1).node_begin(), 3u);
  EXPECT_EQ(arena.slice(1).num_nodes(), 4u);
  EXPECT_EQ(arena.slice(2).node_begin(), 7u);
  EXPECT_EQ(arena.slice(2).num_nodes(), 3u);
  EXPECT_EQ(&arena.slice_of(4), &arena.slice(1));
}

TEST(NodeStateShards, RejectsNonContiguousMapping) {
  NodeStateArena arena(4);
  EXPECT_THROW(arena.set_shards({0, 1, 0, 1}), std::invalid_argument);
  EXPECT_THROW(arena.set_shards({0, 0, 1}), std::invalid_argument);  // size
}

TEST(NodeStateShards, ViewsIsolatedAcrossSlices) {
  NodeStateArena arena(4);
  arena.set_shards({0, 0, 1, 1});
  ArenaIdSet a(arena, NodeStateArena::kKnown, 1);      // slice 0
  ArenaIdSet b(arena, NodeStateArena::kKnown, 2);      // slice 1
  ArenaIdSet a_req(arena, NodeStateArena::kRequested, 1);
  a.insert(7);
  EXPECT_TRUE(a.contains(7));
  EXPECT_FALSE(b.contains(7));
  EXPECT_FALSE(a_req.contains(7));  // planes are independent rows
  b.insert(7);
  a.clear();
  EXPECT_FALSE(a.contains(7));
  EXPECT_TRUE(b.contains(7));  // epoch bump is per row, not global
  a.insert(3);
  a.erase(3);
  EXPECT_FALSE(a.contains(3));
}

TEST(NodeStateShards, PrefaultReportsBytesAndPreservesSemantics) {
  NodeStateArena arena(6);
  arena.set_shards({0, 0, 0, 1, 1, 1});
  const std::size_t bytes = arena.prefault_slice(1, /*expected_ids=*/128);
  EXPECT_GT(bytes, 0u);
  EXPECT_GE(arena.slice(1).capacity(), 128u);
  // Prefaulted slices behave identically: empty, then normal membership.
  ArenaIdSet v(arena, NodeStateArena::kKnown, 4);
  EXPECT_FALSE(v.contains(0));
  v.insert(500);  // growth past the prefault capacity still works
  EXPECT_TRUE(v.contains(500));
}

TEST(NodeStateShards, SlicesGrowIndependently) {
  NodeStateArena arena(4);
  arena.set_shards({0, 0, 1, 1});
  ArenaIdSet a(arena, NodeStateArena::kKnown, 0);
  a.insert(10'000);
  EXPECT_GE(arena.slice(0).capacity(), 10'001u);
  EXPECT_LT(arena.slice(1).capacity(), 10'001u);  // untouched slice stayed small
  EXPECT_TRUE(a.contains(10'000));
}

}  // namespace
}  // namespace bng
