#include "common/intern.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace bng {
namespace {

Hash256 h(std::uint64_t tag) { return crypto::sha256(std::to_string(tag)); }

TEST(BlockInterner, AssignsDenseIdsInFirstSightOrder) {
  BlockInterner in;
  EXPECT_EQ(in.size(), 0u);
  EXPECT_EQ(in.intern(h(1)), 0u);
  EXPECT_EQ(in.intern(h(2)), 1u);
  EXPECT_EQ(in.intern(h(3)), 2u);
  // Re-interning is idempotent and does not mint a new id.
  EXPECT_EQ(in.intern(h(2)), 1u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(BlockInterner, LookupDoesNotAssign) {
  BlockInterner in;
  in.intern(h(1));
  EXPECT_EQ(in.lookup(h(1)), 0u);
  EXPECT_EQ(in.lookup(h(99)), kNoBlockId);
  EXPECT_EQ(in.size(), 1u);
}

TEST(BlockInterner, HashOfRoundTrips) {
  BlockInterner in;
  for (std::uint64_t i = 0; i < 100; ++i) in.intern(h(i));
  for (BlockId id = 0; id < 100; ++id) EXPECT_EQ(in.intern(in.hash_of(id)), id);
  EXPECT_THROW((void)in.hash_of(100), std::out_of_range);
}

TEST(FlatIdSet, InsertContainsErase) {
  FlatIdSet set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_FALSE(set.contains(12345));  // far past the backing array: no growth
  set.insert(7);
  set.insert(700);
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(700));
  EXPECT_FALSE(set.contains(8));
  set.erase(7);
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.contains(700));
  set.erase(7);       // double-erase is a no-op
  set.erase(999999);  // erasing an id past the array is a no-op
  EXPECT_FALSE(set.contains(7));
}

TEST(FlatIdSet, ClearIsEpochBump) {
  FlatIdSet set;
  for (BlockId id = 0; id < 64; ++id) set.insert(id);
  set.clear();
  for (BlockId id = 0; id < 64; ++id) EXPECT_FALSE(set.contains(id));
  // Membership works again after the bump.
  set.insert(3);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(4));
}

TEST(FlatIdSet, ManyClearsKeepSemantics) {
  // A long-lived set survives thousands of epoch bumps without bleed-through.
  FlatIdSet set;
  for (int round = 0; round < 5000; ++round) {
    const BlockId id = static_cast<BlockId>(round % 97);
    set.insert(id);
    ASSERT_TRUE(set.contains(id));
    set.clear();
    ASSERT_FALSE(set.contains(id));
  }
}

}  // namespace
}  // namespace bng
