#include "chain/difficulty.hpp"

#include <gtest/gtest.h>

namespace bng::chain {
namespace {

RetargetRule rule(std::uint32_t interval, Seconds spacing, double clamp = 4.0) {
  return RetargetRule{interval, spacing, clamp};
}

TEST(Retarget, OnScheduleKeepsDifficulty) {
  // Blocks arrived exactly on time: difficulty unchanged.
  EXPECT_DOUBLE_EQ(retarget(100.0, 2016 * 600.0, rule(2016, 600)), 100.0);
}

TEST(Retarget, FastBlocksRaiseDifficulty) {
  // Blocks twice as fast -> difficulty doubles.
  EXPECT_DOUBLE_EQ(retarget(100.0, 2016 * 300.0, rule(2016, 600)), 200.0);
}

TEST(Retarget, SlowBlocksLowerDifficulty) {
  EXPECT_DOUBLE_EQ(retarget(100.0, 2016 * 1200.0, rule(2016, 600)), 50.0);
}

TEST(Retarget, ClampLimitsSingleStep) {
  // 100x too fast, but the step is clamped at 4x (Bitcoin rule).
  EXPECT_DOUBLE_EQ(retarget(100.0, 2016 * 6.0, rule(2016, 600)), 400.0);
  // 100x too slow: clamped at /4.
  EXPECT_DOUBLE_EQ(retarget(100.0, 2016 * 60000.0, rule(2016, 600)), 25.0);
}

TEST(Retarget, NonPositiveDifficultyThrows) {
  EXPECT_THROW(retarget(0.0, 100.0, rule(10, 10)), std::invalid_argument);
  EXPECT_THROW(retarget(-5.0, 100.0, rule(10, 10)), std::invalid_argument);
}

TEST(DifficultyTrackerTest, NoChangeWithinWindow) {
  DifficultyTracker tracker(100.0, rule(10, 60));
  for (int i = 1; i <= 9; ++i) tracker.on_block(i * 60.0);
  EXPECT_DOUBLE_EQ(tracker.difficulty(), 100.0);
  EXPECT_EQ(tracker.height(), 9u);
}

TEST(DifficultyTrackerTest, RetargetsAtBoundary) {
  DifficultyTracker tracker(100.0, rule(10, 60));
  // 10 blocks in 300 s instead of 600 s: difficulty should double.
  for (int i = 1; i <= 10; ++i) tracker.on_block(i * 30.0);
  EXPECT_DOUBLE_EQ(tracker.difficulty(), 200.0);
}

TEST(DifficultyTrackerTest, SecondWindowUsesNewStart) {
  DifficultyTracker tracker(100.0, rule(10, 60));
  for (int i = 1; i <= 10; ++i) tracker.on_block(i * 60.0);  // on schedule
  EXPECT_DOUBLE_EQ(tracker.difficulty(), 100.0);
  // Second window also on schedule relative to the first boundary.
  for (int i = 11; i <= 20; ++i) tracker.on_block(i * 60.0);
  EXPECT_DOUBLE_EQ(tracker.difficulty(), 100.0);
}

TEST(DifficultyTrackerTest, MiningPowerDropScenario) {
  // Paper §5.2: power drops after a retarget ratcheted difficulty up; the
  // next window takes (clamped) correspondingly longer.
  DifficultyTracker tracker(100.0, rule(10, 60));
  for (int i = 1; i <= 10; ++i) tracker.on_block(i * 15.0);  // 4x too fast
  EXPECT_DOUBLE_EQ(tracker.difficulty(), 400.0);
  // Power vanishes: blocks now take 10x the target.
  Seconds t = 150.0;
  for (int i = 0; i < 10; ++i) {
    t += 600.0;
    tracker.on_block(t);
  }
  EXPECT_DOUBLE_EQ(tracker.difficulty(), 100.0);  // recovered by /4 clamp
}

TEST(DifficultyTrackerTest, RejectsBadInitial) {
  EXPECT_THROW(DifficultyTracker(0.0, rule(10, 60)), std::invalid_argument);
}

}  // namespace
}  // namespace bng::chain
