#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "crypto/ecdsa.hpp"

namespace bng::chain {
namespace {

std::vector<TxPtr> mixed_txs() {
  std::vector<TxPtr> txs;
  auto coinbase = std::make_shared<Transaction>();
  coinbase->coinbase_height = 7;
  coinbase->outputs.push_back(TxOutput{25 * kCoin, address_from_tag(1)});
  coinbase->outputs.push_back(TxOutput{100, address_from_tag(2)});
  txs.push_back(coinbase);
  Outpoint op;
  op.txid.bytes[5] = 0xaa;
  op.vout = 3;
  txs.push_back(make_transfer(op, 5000, address_from_tag(3), 42, 137));
  auto poison = std::make_shared<Transaction>();
  PoisonPayload payload;
  payload.accused_key_block.bytes[0] = 0x11;
  payload.pruned_header = {9, 8, 7, 6, 5};
  payload.pruned_header_id.bytes[1] = 0x22;
  poison->poison = payload;
  poison->outputs.push_back(TxOutput{12, address_from_tag(4)});
  txs.push_back(poison);
  return txs;
}

BlockPtr sample_block(BlockType type) {
  auto txs = mixed_txs();
  BlockHeader h;
  h.type = type;
  h.prev.bytes[0] = 0x42;
  h.timestamp = 123.456;
  h.merkle_root = compute_merkle_root(txs);
  h.nonce = 9876543210ull;
  h.target = crypto::U256(0xffffff);
  if (type == BlockType::kKey)
    h.leader_key = crypto::PrivateKey::from_seed(3).public_key();
  if (type == BlockType::kMicro) {
    auto sk = crypto::PrivateKey::from_seed(4);
    h.signature = crypto::sign(sk, h.signing_hash());
  }
  return std::make_shared<Block>(h, txs, 17, 2.5);
}

class BlockSerializationTest : public ::testing::TestWithParam<BlockType> {};

TEST_P(BlockSerializationTest, RoundTripPreservesIdentity) {
  BlockPtr original = sample_block(GetParam());
  ByteWriter w;
  original->serialize(w);
  ByteReader r(w.data());
  BlockPtr restored = Block::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(restored->id(), original->id());
  EXPECT_EQ(restored->miner(), original->miner());
  EXPECT_EQ(restored->type(), original->type());
  EXPECT_EQ(restored->txs().size(), original->txs().size());
  EXPECT_EQ(restored->wire_size(), original->wire_size());
  EXPECT_TRUE(restored->merkle_ok());
}

TEST_P(BlockSerializationTest, RoundTripPreservesWork) {
  BlockPtr original = sample_block(GetParam());
  ByteWriter w;
  original->serialize(w);
  ByteReader r(w.data());
  BlockPtr restored = Block::deserialize(r);
  EXPECT_DOUBLE_EQ(restored->work(), original->work());
}

TEST_P(BlockSerializationTest, TransactionContentSurvives) {
  BlockPtr original = sample_block(GetParam());
  ByteWriter w;
  original->serialize(w);
  ByteReader r(w.data());
  BlockPtr restored = Block::deserialize(r);
  for (std::size_t i = 0; i < original->txs().size(); ++i) {
    EXPECT_EQ(restored->txs()[i]->id(), original->txs()[i]->id()) << "tx " << i;
    EXPECT_EQ(restored->txs()[i]->wire_size(), original->txs()[i]->wire_size());
  }
  // Spot-check the poison payload.
  ASSERT_TRUE(restored->txs()[2]->is_poison());
  EXPECT_EQ(restored->txs()[2]->poison->pruned_header,
            original->txs()[2]->poison->pruned_header);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, BlockSerializationTest,
                         ::testing::Values(BlockType::kPow, BlockType::kKey,
                                           BlockType::kMicro));

TEST(BlockSerialization, GenesisRoundTrip) {
  auto genesis = make_genesis(50, kCoin);
  ByteWriter w;
  genesis->serialize(w);
  ByteReader r(w.data());
  auto restored = Block::deserialize(r);
  EXPECT_EQ(restored->id(), genesis->id());
  EXPECT_EQ(restored->txs()[0]->outputs.size(), 50u);
}

TEST(BlockSerialization, TruncatedInputThrows) {
  auto block = sample_block(BlockType::kPow);
  ByteWriter w;
  block->serialize(w);
  auto data = w.data();
  data.resize(data.size() / 2);
  ByteReader r(data);
  EXPECT_THROW(Block::deserialize(r), std::out_of_range);
}

}  // namespace
}  // namespace bng::chain
