#include "chain/pow.hpp"

#include <gtest/gtest.h>

#include "chain/validation.hpp"
#include "common/rng.hpp"

namespace bng::chain {
namespace {

TEST(CompactTarget, RoundTripSimpleValues) {
  for (std::uint64_t v : {1ull, 0xffull, 0x1234ull, 0x7fffffull}) {
    crypto::U256 target(v);
    EXPECT_EQ(compact_to_target(target_to_compact(target)), target) << v;
  }
}

TEST(CompactTarget, RoundTripLargeValues) {
  // Compact encoding keeps only 3 mantissa bytes; round-tripping from the
  // compact side must be exact.
  for (std::uint32_t compact : {0x1d00ffffu, 0x1b0404cbu, 0x207fffffu, 0x04123456u}) {
    crypto::U256 target = compact_to_target(compact);
    EXPECT_EQ(target_to_compact(target), compact) << std::hex << compact;
  }
}

TEST(CompactTarget, BitcoinGenesisBits) {
  // Bitcoin's genesis nBits 0x1d00ffff encodes 0xffff * 256^26.
  crypto::U256 expected = crypto::U256(0xffff).shl(8 * 26);
  EXPECT_EQ(compact_to_target(0x1d00ffff), expected);
}

TEST(CompactTarget, SignBitAvoided) {
  // Mantissa >= 0x800000 must shift into a larger exponent (Bitcoin rule).
  crypto::U256 target(0x00800000);
  std::uint32_t compact = target_to_compact(target);
  EXPECT_EQ(compact >> 24, 4u);  // exponent grew
  EXPECT_EQ(compact_to_target(compact), target);
}

TEST(Difficulty, MaxTargetIsDifficultyOne) {
  EXPECT_DOUBLE_EQ(target_to_difficulty(max_target()), 1.0);
}

TEST(Difficulty, HalvingTargetDoublesDifficulty) {
  crypto::U256 half = max_target().shr(1);
  EXPECT_NEAR(target_to_difficulty(half), 2.0, 1e-9);
}

TEST(Difficulty, RoundTripThroughTarget) {
  for (double d : {1.0, 2.0, 7.5, 1000.0, 123456.0}) {
    crypto::U256 target = difficulty_to_target(d);
    EXPECT_NEAR(target_to_difficulty(target), d, d * 0.01) << d;
  }
}

TEST(Difficulty, BelowOneClampsToMaxTarget) {
  EXPECT_EQ(difficulty_to_target(0.5), max_target());
}

TEST(MineHeader, FindsNonceAtTrivialDifficulty) {
  BlockHeader h;
  h.type = BlockType::kPow;
  h.target = max_target();  // difficulty 1: ~50% of nonces win
  auto nonce = mine_header(h, 0, 1000);
  ASSERT_TRUE(nonce.has_value());
  EXPECT_TRUE(check_pow(h).ok);
}

TEST(MineHeader, RespectsMaxTries) {
  BlockHeader h;
  h.type = BlockType::kPow;
  h.target = crypto::U256(1);  // essentially impossible
  EXPECT_FALSE(mine_header(h, 0, 100).has_value());
}

TEST(MineHeader, ModerateDifficultyStillMinable) {
  BlockHeader h;
  h.type = BlockType::kPow;
  h.target = difficulty_to_target(64.0);  // ~1/128 of hashes win
  auto nonce = mine_header(h, 0, 1'000'000);
  ASSERT_TRUE(nonce.has_value());
  EXPECT_TRUE(check_pow(h).ok);
  // The found header actually hashes below the target.
  EXPECT_LT(crypto::U256::from_hash(h.id()), h.target);
}

TEST(MineHeader, DifferentContentNeedsDifferentNonce) {
  Rng rng(5);
  BlockHeader a, b;
  a.type = b.type = BlockType::kPow;
  a.target = b.target = difficulty_to_target(16.0);
  b.timestamp = 1.0;  // different content
  auto na = mine_header(a, 0, 1'000'000);
  auto nb = mine_header(b, 0, 1'000'000);
  ASSERT_TRUE(na && nb);
  // Statistically they almost never coincide; at minimum both must verify.
  EXPECT_TRUE(check_pow(a).ok);
  EXPECT_TRUE(check_pow(b).ok);
}

}  // namespace
}  // namespace bng::chain
