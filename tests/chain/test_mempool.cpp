#include "chain/mempool.hpp"

#include <gtest/gtest.h>

namespace bng::chain {
namespace {

TxPtr tx_with_tag(std::uint64_t tag, std::uint32_t padding = 0) {
  Outpoint op;
  op.txid.bytes[0] = static_cast<std::uint8_t>(tag);
  op.vout = static_cast<std::uint32_t>(tag >> 8);
  return make_transfer(op, 1000, address_from_tag(tag), 10, padding);
}

TEST(Mempool, SubmitAndContains) {
  Mempool pool;
  auto tx = tx_with_tag(1);
  EXPECT_TRUE(pool.submit(tx));
  EXPECT_TRUE(pool.contains(tx->id()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, DuplicateSubmitRejected) {
  Mempool pool;
  auto tx = tx_with_tag(1);
  EXPECT_TRUE(pool.submit(tx));
  EXPECT_FALSE(pool.submit(tx));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, AssembleRespectsByteBudget) {
  Mempool pool;
  std::size_t tx_size = 0;
  for (int i = 0; i < 10; ++i) {
    auto tx = tx_with_tag(i);
    tx_size = tx->wire_size();
    pool.submit(tx);
  }
  auto batch = pool.assemble(3 * tx_size + 1);
  EXPECT_EQ(batch.size(), 3u);
}

TEST(Mempool, AssembleSkipsIncluded) {
  Mempool pool;
  std::vector<TxPtr> txs;
  for (int i = 0; i < 5; ++i) {
    txs.push_back(tx_with_tag(i));
    pool.submit(txs.back());
  }
  pool.mark_included(txs[0]->id());
  pool.mark_included(txs[2]->id());
  auto batch = pool.assemble(1'000'000);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0]->id(), txs[1]->id());
  EXPECT_EQ(batch[1]->id(), txs[3]->id());
  EXPECT_EQ(batch[2]->id(), txs[4]->id());
  EXPECT_EQ(pool.available(), 3u);
}

TEST(Mempool, ReorgReturnsTransactions) {
  Mempool pool;
  auto tx = tx_with_tag(1);
  pool.submit(tx);
  pool.mark_included(tx->id());
  EXPECT_EQ(pool.available(), 0u);
  pool.mark_excluded(tx->id());
  EXPECT_EQ(pool.available(), 1u);
  auto batch = pool.assemble(1'000'000);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->id(), tx->id());
}

TEST(Mempool, AssembleRespectsReserve) {
  Mempool pool;
  auto tx = tx_with_tag(1);
  pool.submit(tx);
  const std::size_t sz = tx->wire_size();
  EXPECT_EQ(pool.assemble(sz + 100, 100).size(), 1u);
  EXPECT_EQ(pool.assemble(sz + 100, 101).size(), 0u);
  EXPECT_EQ(pool.assemble(50, 100).size(), 0u);  // reserve exceeds budget
}

TEST(Mempool, SubmissionOrderPreserved) {
  Mempool pool;
  std::vector<Hash256> expected;
  for (int i = 0; i < 20; ++i) {
    auto tx = tx_with_tag(i);
    expected.push_back(tx->id());
    pool.submit(tx);
  }
  auto batch = pool.assemble(1'000'000);
  ASSERT_EQ(batch.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(batch[i]->id(), expected[i]);
}

TEST(Mempool, EmptyAssemble) {
  Mempool pool;
  EXPECT_TRUE(pool.assemble(1000).empty());
}

}  // namespace
}  // namespace bng::chain
