// Ancestry queries on deep, randomly forked trees, checked against a
// brute-force parent-walk reference.
//
// The jump-pointer (skew-binary skip ancestor) rewrite made is_ancestor /
// common_ancestor / ancestor_at_or_before O(log height); these tests pin
// their answers to the O(height) walks they replaced, over tree shapes the
// unit tests in test_block_tree.cpp are too small to exercise: long chains,
// bushy forks, and mixtures of both.
#include "chain/block_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bng::chain {
namespace {

BlockPtr make_block(const Hash256& prev, Seconds ts, std::uint64_t salt) {
  BlockHeader h;
  h.type = BlockType::kPow;
  h.prev = prev;
  h.timestamp = ts;
  h.nonce = salt;
  return std::make_shared<Block>(h, std::vector<TxPtr>{}, 0);
}

// --- Brute-force references (the pre-jump-pointer implementations) ----------

bool ref_is_ancestor(const BlockTree& t, std::uint32_t anc, std::uint32_t desc) {
  std::uint32_t cur = desc;
  const std::uint32_t target_height = t.entry(anc).height;
  while (t.entry(cur).height > target_height)
    cur = static_cast<std::uint32_t>(t.entry(cur).parent);
  return cur == anc;
}

std::uint32_t ref_common_ancestor(const BlockTree& t, std::uint32_t a, std::uint32_t b) {
  while (t.entry(a).height > t.entry(b).height)
    a = static_cast<std::uint32_t>(t.entry(a).parent);
  while (t.entry(b).height > t.entry(a).height)
    b = static_cast<std::uint32_t>(t.entry(b).parent);
  while (a != b) {
    a = static_cast<std::uint32_t>(t.entry(a).parent);
    b = static_cast<std::uint32_t>(t.entry(b).parent);
  }
  return a;
}

std::uint32_t ref_ancestor_at_or_before(const BlockTree& t, std::uint32_t tip,
                                        Seconds time) {
  std::uint32_t cur = tip;
  while (t.entry(cur).parent != -1 && t.entry(cur).block->header().timestamp > time)
    cur = static_cast<std::uint32_t>(t.entry(cur).parent);
  return cur;
}

/// Grow a tree of `n` blocks. Each block forks off a random existing block,
/// biased towards recent ones (`recent_bias` high => long chains with thin
/// forks; 0 => uniformly bushy). Timestamps increase monotonically, as in a
/// simulation (a block is built after its parent exists).
BlockTree grow_random_tree(std::uint32_t n, std::uint64_t seed, std::uint32_t recent_bias) {
  auto genesis = make_genesis(1, kCoin);
  Rng rng(seed);
  BlockTree tree(genesis, TieBreak::kFirstSeen, BlockTree::ForkChoice::kHeaviestChain,
                 nullptr);
  for (std::uint32_t i = 1; i <= n; ++i) {
    const std::uint32_t span = static_cast<std::uint32_t>(tree.size());
    std::uint32_t parent;
    if (recent_bias > 0 && span > recent_bias && rng.next_below(4) != 0) {
      parent = span - 1 - static_cast<std::uint32_t>(rng.next_below(recent_bias));
    } else {
      parent = static_cast<std::uint32_t>(rng.next_below(span));
    }
    auto block = make_block(tree.entry(parent).block->id(), static_cast<Seconds>(i), i);
    tree.insert(block, static_cast<Seconds>(i), 1.0);
  }
  return tree;
}

struct Shape {
  std::uint32_t n;
  std::uint64_t seed;
  std::uint32_t recent_bias;
};

class AncestryShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(AncestryShapes, MatchesBruteForceOnRandomPairs) {
  const Shape shape = GetParam();
  const BlockTree tree = grow_random_tree(shape.n, shape.seed, shape.recent_bias);
  Rng rng(shape.seed ^ 0x5eedu);
  const auto size = static_cast<std::uint32_t>(tree.size());
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(size));
    const auto b = static_cast<std::uint32_t>(rng.next_below(size));
    ASSERT_EQ(tree.is_ancestor(a, b), ref_is_ancestor(tree, a, b))
        << "a=" << a << " b=" << b;
    ASSERT_EQ(tree.is_ancestor(b, a), ref_is_ancestor(tree, b, a))
        << "a=" << a << " b=" << b;
    ASSERT_EQ(tree.common_ancestor(a, b), ref_common_ancestor(tree, a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST_P(AncestryShapes, AncestorAtHeightMatchesParentWalk) {
  const Shape shape = GetParam();
  const BlockTree tree = grow_random_tree(shape.n, shape.seed, shape.recent_bias);
  Rng rng(shape.seed ^ 0xa17u);
  const auto size = static_cast<std::uint32_t>(tree.size());
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next_below(size));
    const std::uint32_t h =
        static_cast<std::uint32_t>(rng.next_below(tree.entry(v).height + 1));
    std::uint32_t expect = v;
    while (tree.entry(expect).height > h)
      expect = static_cast<std::uint32_t>(tree.entry(expect).parent);
    ASSERT_EQ(tree.ancestor_at_height(v, h), expect) << "v=" << v << " h=" << h;
  }
}

TEST_P(AncestryShapes, AncestorAtOrBeforeMatchesBruteForce) {
  const Shape shape = GetParam();
  const BlockTree tree = grow_random_tree(shape.n, shape.seed, shape.recent_bias);
  Rng rng(shape.seed ^ 0x7173u);
  const auto size = static_cast<std::uint32_t>(tree.size());
  for (int i = 0; i < 500; ++i) {
    const auto tip = static_cast<std::uint32_t>(rng.next_below(size));
    // Probe below, inside, and above the tree's timestamp range, including
    // exact block timestamps (the <= boundary).
    const Seconds probes[] = {-1.0, 0.0,
                              static_cast<Seconds>(rng.next_below(shape.n + 2)),
                              tree.entry(tip).block->header().timestamp,
                              static_cast<Seconds>(shape.n) + 5.0};
    for (const Seconds t : probes) {
      ASSERT_EQ(tree.ancestor_at_or_before(tip, t), ref_ancestor_at_or_before(tree, tip, t))
          << "tip=" << tip << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AncestryShapes,
    ::testing::Values(Shape{3000, 11, 8},    // deep chains with thin forks
                      Shape{2000, 23, 0},    // uniformly bushy
                      Shape{4000, 37, 64},   // wide recent window
                      Shape{500, 41, 1}),    // near-pure chain
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.n) + "_seed" +
             std::to_string(info.param.seed) + "_bias" +
             std::to_string(info.param.recent_bias);
    });

TEST(AncestryDeepChain, FiftyThousandBlockChain) {
  // A pure chain 50k deep: the O(height) walks this replaced would make
  // quadratic test loops here; jump pointers keep each query logarithmic.
  auto genesis = make_genesis(1, kCoin);
  BlockTree tree(genesis, TieBreak::kFirstSeen, BlockTree::ForkChoice::kHeaviestChain,
                 nullptr);
  Hash256 prev = genesis->id();
  constexpr std::uint32_t kDepth = 50'000;
  for (std::uint32_t i = 1; i <= kDepth; ++i) {
    auto block = make_block(prev, static_cast<Seconds>(i), i);
    prev = block->id();
    tree.insert(block, static_cast<Seconds>(i), 1.0);
  }
  const std::uint32_t tip = tree.best_tip();
  EXPECT_EQ(tree.entry(tip).height, kDepth);
  Rng rng(9);
  for (int i = 0; i < 20'000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(tree.size()));
    const auto b = static_cast<std::uint32_t>(rng.next_below(tree.size()));
    // On a pure chain every pair is ancestor-ordered by height.
    ASSERT_EQ(tree.common_ancestor(a, b), std::min(a, b));
    ASSERT_EQ(tree.is_ancestor(a, b), a <= b);
    ASSERT_EQ(tree.ancestor_at_height(tip, a), a);
  }
  EXPECT_TRUE(tree.is_ancestor(0, tip));
  EXPECT_EQ(tree.ancestor_at_or_before(tip, 0.5), 0u);
  EXPECT_EQ(tree.ancestor_at_or_before(tip, static_cast<Seconds>(kDepth) + 1), tip);
}

}  // namespace
}  // namespace bng::chain
