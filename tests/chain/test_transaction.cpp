#include "chain/transaction.hpp"

#include <gtest/gtest.h>

namespace bng::chain {
namespace {

Outpoint op(std::uint8_t tag, std::uint32_t vout = 0) {
  Outpoint o;
  o.txid.bytes[0] = tag;
  o.vout = vout;
  return o;
}

TEST(Transaction, TransferFactoryFields) {
  auto tx = make_transfer(op(1), 900, address_from_tag(2), 100);
  EXPECT_EQ(tx->inputs.size(), 1u);
  EXPECT_EQ(tx->outputs.size(), 1u);
  EXPECT_EQ(tx->outputs[0].value, 900);
  EXPECT_EQ(tx->fee, 100);
  EXPECT_FALSE(tx->is_coinbase());
  EXPECT_FALSE(tx->is_poison());
}

TEST(Transaction, IdIsStable) {
  auto tx = make_transfer(op(1), 900, address_from_tag(2), 100);
  EXPECT_EQ(tx->id(), tx->id());
}

TEST(Transaction, IdDependsOnContent) {
  auto a = make_transfer(op(1), 900, address_from_tag(2), 100);
  auto b = make_transfer(op(1), 901, address_from_tag(2), 100);
  auto c = make_transfer(op(2), 900, address_from_tag(2), 100);
  auto d = make_transfer(op(1), 900, address_from_tag(3), 100);
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(a->id(), c->id());
  EXPECT_NE(a->id(), d->id());
}

TEST(Transaction, PaddingChangesSizeNotStructure) {
  auto small = make_transfer(op(1), 900, address_from_tag(2), 100, 0);
  auto padded = make_transfer(op(1), 900, address_from_tag(2), 100, 150);
  EXPECT_EQ(padded->wire_size(), small->wire_size() + 150);
  // Padding length participates in the id (it is serialized as a count).
  EXPECT_NE(small->id(), padded->id());
}

TEST(Transaction, IdenticalSizeAcrossSyntheticPopulation) {
  // The paper's workload needs identically sized transactions (§7).
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    auto tx = make_transfer(op(static_cast<std::uint8_t>(i)), 900,
                            address_from_tag(i), 100, 200);
    if (expected == 0) expected = tx->wire_size();
    EXPECT_EQ(tx->wire_size(), expected);
  }
}

TEST(Transaction, CoinbaseHasHeightAndNoInputs) {
  Transaction tx;
  tx.coinbase_height = 42;
  tx.outputs.push_back(TxOutput{50 * kCoin, address_from_tag(1)});
  EXPECT_TRUE(tx.is_coinbase());
  EXPECT_TRUE(tx.inputs.empty());
}

TEST(Transaction, CoinbaseIdsUniquePerHeight) {
  Transaction a, b;
  a.coinbase_height = 1;
  b.coinbase_height = 2;
  a.outputs.push_back(TxOutput{50, address_from_tag(1)});
  b.outputs.push_back(TxOutput{50, address_from_tag(1)});
  EXPECT_NE(a.id(), b.id());
}

TEST(Transaction, PoisonPayloadSerialized) {
  Transaction tx;
  PoisonPayload p;
  p.accused_key_block.bytes[0] = 0xaa;
  p.pruned_header = {1, 2, 3, 4};
  p.pruned_header_id.bytes[0] = 0xbb;
  tx.poison = p;
  tx.outputs.push_back(TxOutput{5, address_from_tag(9)});
  EXPECT_TRUE(tx.is_poison());

  Transaction tx2 = tx;
  tx2.poison->pruned_header = {1, 2, 3, 5};
  EXPECT_NE(tx.id(), tx2.id());
}

TEST(Addresses, DerivedFromKeyAndTagAreStable) {
  auto key = crypto::PrivateKey::from_seed(7).public_key();
  EXPECT_EQ(address_of(key), address_of(key));
  EXPECT_EQ(address_from_tag(5), address_from_tag(5));
  EXPECT_NE(address_from_tag(5), address_from_tag(6));
  EXPECT_NE(address_of(key), address_from_tag(5));
}

TEST(Outpoint, OrderingAndHashing) {
  Outpoint a = op(1, 0), b = op(1, 1), c = op(2, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  OutpointHasher h;
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace bng::chain
