#include "chain/validation.hpp"

#include <gtest/gtest.h>

#include "crypto/ecdsa.hpp"

namespace bng::chain {
namespace {

class ValidationTest : public ::testing::Test {
 protected:
  ValidationTest() : params_(Params::bitcoin_ng()), sk_(crypto::PrivateKey::from_seed(1)) {}

  TxPtr payload_tx(std::uint8_t tag) {
    Outpoint op;
    op.txid.bytes[0] = tag;
    return make_transfer(op, 1000, address_from_tag(tag), 10);
  }

  TxPtr coinbase_tx() {
    auto tx = std::make_shared<Transaction>();
    tx->coinbase_height = 1;
    tx->outputs.push_back(TxOutput{25 * kCoin, address_from_tag(0)});
    return tx;
  }

  BlockPtr micro_block(Seconds ts, bool sign = true, std::vector<TxPtr> txs = {}) {
    if (txs.empty()) txs = {payload_tx(1)};
    BlockHeader h;
    h.type = BlockType::kMicro;
    h.prev = Hash256{};
    h.timestamp = ts;
    h.merkle_root = compute_merkle_root(txs);
    if (sign) h.signature = crypto::sign(sk_, h.signing_hash());
    return std::make_shared<Block>(h, txs, 0);
  }

  BlockPtr key_block(std::vector<TxPtr> txs) {
    BlockHeader h;
    h.type = BlockType::kKey;
    h.prev = Hash256{};
    h.timestamp = 1.0;
    h.merkle_root = compute_merkle_root(txs);
    h.leader_key = sk_.public_key();
    return std::make_shared<Block>(h, std::move(txs), 0);
  }

  Params params_;
  crypto::PrivateKey sk_;
};

TEST_F(ValidationTest, ValidMicroblockPasses) {
  auto block = micro_block(5.0);
  auto r = check_microblock(*block, sk_.public_key(), 4.0, 6.0, params_, true);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(ValidationTest, FutureTimestampRejected) {
  auto block = micro_block(10.0);
  auto r = check_microblock(*block, sk_.public_key(), 4.0, 6.0, params_, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("future"), std::string::npos);
}

TEST_F(ValidationTest, TooFrequentMicroblockRejected) {
  params_.min_microblock_interval = 2.0;
  auto block = micro_block(5.0);
  // Predecessor at 4.0: gap 1.0 < 2.0.
  auto r = check_microblock(*block, sk_.public_key(), 4.0, 6.0, params_, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("soon"), std::string::npos);
}

TEST_F(ValidationTest, MinIntervalBoundaryAccepted) {
  params_.min_microblock_interval = 1.0;
  auto block = micro_block(5.0);
  auto r = check_microblock(*block, sk_.public_key(), 4.0, 6.0, params_, true);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(ValidationTest, UnsignedMicroblockRejected) {
  auto block = micro_block(5.0, /*sign=*/false);
  auto r = check_microblock(*block, sk_.public_key(), 4.0, 6.0, params_, true);
  EXPECT_FALSE(r.ok);
}

TEST_F(ValidationTest, WrongKeySignatureRejected) {
  auto block = micro_block(5.0);
  auto other = crypto::PrivateKey::from_seed(2).public_key();
  auto r = check_microblock(*block, other, 4.0, 6.0, params_, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("signature"), std::string::npos);
}

TEST_F(ValidationTest, SignatureSkippedWhenDisabled) {
  // The paper's artifact skipped signature checks; the flag must allow that.
  auto block = micro_block(5.0);
  auto other = crypto::PrivateKey::from_seed(2).public_key();
  auto r = check_microblock(*block, other, 4.0, 6.0, params_, false);
  EXPECT_TRUE(r.ok);
}

TEST_F(ValidationTest, MicroblockWithCoinbaseRejected) {
  auto block = micro_block(5.0, true, {coinbase_tx()});
  auto r = check_microblock(*block, sk_.public_key(), 4.0, 6.0, params_, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("coinbase"), std::string::npos);
}

TEST_F(ValidationTest, ValidKeyBlockPasses) {
  auto block = key_block({coinbase_tx()});
  EXPECT_TRUE(check_key_block(*block).ok);
}

TEST_F(ValidationTest, KeyBlockWithoutLeaderKeyRejected) {
  std::vector<TxPtr> txs{coinbase_tx()};
  BlockHeader h;
  h.type = BlockType::kKey;
  h.merkle_root = compute_merkle_root(txs);
  auto block = std::make_shared<Block>(h, txs, 0);
  EXPECT_FALSE(check_key_block(*block).ok);
}

TEST_F(ValidationTest, KeyBlockWithoutCoinbaseRejected) {
  auto block = key_block({payload_tx(1)});
  EXPECT_FALSE(check_key_block(*block).ok);
}

TEST_F(ValidationTest, SizeLimitsPerBlockType) {
  params_.max_microblock_size = 200;
  auto big = micro_block(5.0, true, {payload_tx(1), payload_tx(2), payload_tx(3)});
  EXPECT_FALSE(check_size(*big, params_).ok);
  params_.max_microblock_size = 1'000'000;
  EXPECT_TRUE(check_size(*big, params_).ok);
}

TEST_F(ValidationTest, MerkleMismatchCaught) {
  auto txs = std::vector<TxPtr>{payload_tx(1)};
  BlockHeader h;
  h.type = BlockType::kPow;
  h.merkle_root = compute_merkle_root(txs);
  txs.push_back(payload_tx(2));  // content no longer matches the root
  auto block = std::make_shared<Block>(h, txs, 0);
  EXPECT_FALSE(check_merkle(*block).ok);
}

TEST_F(ValidationTest, PowCheckRespectsTarget) {
  std::vector<TxPtr> txs{coinbase_tx()};
  BlockHeader h;
  h.type = BlockType::kPow;
  h.merkle_root = compute_merkle_root(txs);
  // Maximal target: any hash qualifies.
  h.target = crypto::U256(UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX);
  EXPECT_TRUE(check_pow(h).ok);
  // Minimal non-zero target: essentially impossible.
  h.target = crypto::U256(1);
  EXPECT_FALSE(check_pow(h).ok);
  // Zero target is invalid outright.
  h.target = crypto::U256(0);
  EXPECT_FALSE(check_pow(h).ok);
}

TEST_F(ValidationTest, PowCheckRejectsMicroblocks) {
  auto block = micro_block(5.0);
  EXPECT_FALSE(check_pow(block->header()).ok);
}

TEST_F(ValidationTest, BitcoinBlockStructure) {
  std::vector<TxPtr> txs{coinbase_tx(), payload_tx(1)};
  BlockHeader h;
  h.type = BlockType::kPow;
  h.merkle_root = compute_merkle_root(txs);
  auto ok_block = std::make_shared<Block>(h, txs, 0);
  EXPECT_TRUE(check_pow_block(*ok_block).ok);

  // Leader key on a Bitcoin block is malformed.
  h.leader_key = sk_.public_key();
  auto bad = std::make_shared<Block>(h, txs, 0);
  EXPECT_FALSE(check_pow_block(*bad).ok);
}

}  // namespace
}  // namespace bng::chain
