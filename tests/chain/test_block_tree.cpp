#include "chain/block_tree.hpp"

#include <gtest/gtest.h>

namespace bng::chain {
namespace {

/// Minimal block factory for tree tests; txs are irrelevant here.
BlockPtr make_block(BlockType type, const Hash256& prev, Seconds ts, std::uint32_t miner,
                    std::uint64_t salt = 0) {
  BlockHeader h;
  h.type = type;
  h.prev = prev;
  h.timestamp = ts;
  h.nonce = salt;
  if (type == BlockType::kKey)
    h.leader_key = crypto::PrivateKey::from_seed(miner).public_key();
  return std::make_shared<Block>(h, std::vector<TxPtr>{}, miner);
}

class BlockTreeTest : public ::testing::Test {
 protected:
  BlockTreeTest()
      : genesis_(make_genesis(1, kCoin)),
        rng_(1),
        tree_(genesis_, TieBreak::kFirstSeen, BlockTree::ForkChoice::kHeaviestChain, &rng_) {}

  BlockPtr genesis_;
  Rng rng_;
  BlockTree tree_;
};

TEST_F(BlockTreeTest, GenesisIsInitialTip) {
  EXPECT_EQ(tree_.size(), 1u);
  EXPECT_EQ(tree_.best_tip(), BlockTree::kGenesisIndex);
  EXPECT_TRUE(tree_.contains(genesis_->id()));
}

TEST_F(BlockTreeTest, InsertExtendsTip) {
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  auto idx = tree_.insert(b1, 1.0, 1.0);
  EXPECT_EQ(tree_.best_tip(), idx);
  EXPECT_EQ(tree_.entry(idx).height, 1u);
  EXPECT_EQ(tree_.entry(idx).chain_work, 1.0);
}

TEST_F(BlockTreeTest, DuplicateInsertThrows) {
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  tree_.insert(b1, 1.0, 1.0);
  EXPECT_THROW(tree_.insert(b1, 2.0, 1.0), std::invalid_argument);
}

TEST_F(BlockTreeTest, UnknownParentThrows) {
  Hash256 missing;
  missing.bytes[0] = 0xee;
  auto orphan = make_block(BlockType::kPow, missing, 1.0, 0);
  EXPECT_THROW(tree_.insert(orphan, 1.0, 1.0), std::invalid_argument);
}

TEST_F(BlockTreeTest, HeavierBranchWinsRegardlessOfArrival) {
  auto a1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  auto a1_idx = tree_.insert(a1, 1.0, 1.0);
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 1.1, 1);
  tree_.insert(b1, 1.1, 1.0);
  EXPECT_EQ(tree_.best_tip(), a1_idx);  // first-seen keeps a1 on the tie
  auto b2 = make_block(BlockType::kPow, b1->id(), 2.0, 1);
  auto b2_idx = tree_.insert(b2, 2.0, 1.0);
  EXPECT_EQ(tree_.best_tip(), b2_idx);  // now strictly heavier
}

TEST_F(BlockTreeTest, FirstSeenKeepsCurrentOnTie) {
  auto a1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  auto a1_idx = tree_.insert(a1, 1.0, 1.0);
  for (int i = 0; i < 10; ++i) {
    auto rival = make_block(BlockType::kPow, genesis_->id(), 1.5, 2, 100 + i);
    tree_.insert(rival, 1.5, 1.0);
    EXPECT_EQ(tree_.best_tip(), a1_idx);
  }
}

TEST(BlockTreeRandomTie, EventuallySwitches) {
  // Random tie-breaking (paper §3): with enough equal-weight rivals the tip
  // must switch at least once.
  auto genesis = make_genesis(1, kCoin);
  Rng rng(7);
  BlockTree tree(genesis, TieBreak::kRandom, BlockTree::ForkChoice::kHeaviestChain, &rng);
  auto a1 = make_block(BlockType::kPow, genesis->id(), 1.0, 0);
  auto a1_idx = tree.insert(a1, 1.0, 1.0);
  bool switched = false;
  for (int i = 0; i < 20 && !switched; ++i) {
    auto rival = make_block(BlockType::kPow, genesis->id(), 1.5, 2, 200 + i);
    tree.insert(rival, 1.5, 1.0);
    switched = tree.best_tip() != a1_idx;
  }
  EXPECT_TRUE(switched);
}

TEST(BlockTreeRandomTie, RequiresRng) {
  auto genesis = make_genesis(1, kCoin);
  EXPECT_THROW(
      BlockTree(genesis, TieBreak::kRandom, BlockTree::ForkChoice::kHeaviestChain, nullptr),
      std::invalid_argument);
}

TEST_F(BlockTreeTest, MicroblocksExtendWithoutWeight) {
  auto k1 = make_block(BlockType::kKey, genesis_->id(), 1.0, 0);
  tree_.insert(k1, 1.0, 1.0);
  auto m1 = make_block(BlockType::kMicro, k1->id(), 2.0, 0);
  auto m1_idx = tree_.insert(m1, 2.0, 0.0);
  EXPECT_EQ(tree_.best_tip(), m1_idx);  // descendant of tip extends it
  EXPECT_EQ(tree_.entry(m1_idx).chain_work, 1.0);
  EXPECT_EQ(tree_.entry(m1_idx).pow_height, 1u);
  EXPECT_EQ(tree_.entry(m1_idx).height, 2u);
}

TEST_F(BlockTreeTest, KeyBlockPrunesMicroblockFork) {
  // Fig 2: the new key block outweighs any number of pruned microblocks.
  auto k1 = make_block(BlockType::kKey, genesis_->id(), 1.0, 0);
  tree_.insert(k1, 1.0, 1.0);
  auto m1 = make_block(BlockType::kMicro, k1->id(), 2.0, 0);
  tree_.insert(m1, 2.0, 0.0);
  auto m2 = make_block(BlockType::kMicro, m1->id(), 3.0, 0);
  auto m2_idx = tree_.insert(m2, 3.0, 0.0);
  EXPECT_EQ(tree_.best_tip(), m2_idx);
  // New key block forks from k1 (it had not seen m1, m2).
  auto k2 = make_block(BlockType::kKey, k1->id(), 3.5, 1);
  auto k2_idx = tree_.insert(k2, 3.5, 1.0);
  EXPECT_EQ(tree_.best_tip(), k2_idx);
}

TEST_F(BlockTreeTest, EpochKeyBlockTracking) {
  auto k1 = make_block(BlockType::kKey, genesis_->id(), 1.0, 0);
  auto k1_idx = tree_.insert(k1, 1.0, 1.0);
  auto m1 = make_block(BlockType::kMicro, k1->id(), 2.0, 0);
  auto m1_idx = tree_.insert(m1, 2.0, 0.0);
  auto k2 = make_block(BlockType::kKey, m1->id(), 3.0, 1);
  auto k2_idx = tree_.insert(k2, 3.0, 1.0);
  auto m2 = make_block(BlockType::kMicro, k2->id(), 4.0, 1);
  auto m2_idx = tree_.insert(m2, 4.0, 0.0);
  EXPECT_EQ(tree_.entry(m1_idx).epoch_key_block, k1_idx);
  EXPECT_EQ(tree_.entry(k2_idx).epoch_key_block, k2_idx);
  EXPECT_EQ(tree_.entry(m2_idx).epoch_key_block, k2_idx);
  EXPECT_EQ(tree_.entry(k1_idx).epoch_key_block, k1_idx);
}

TEST_F(BlockTreeTest, AncestorQueries) {
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  auto i1 = tree_.insert(b1, 1.0, 1.0);
  auto b2 = make_block(BlockType::kPow, b1->id(), 2.0, 0);
  auto i2 = tree_.insert(b2, 2.0, 1.0);
  auto r1 = make_block(BlockType::kPow, genesis_->id(), 1.5, 1);
  auto ir = tree_.insert(r1, 1.5, 1.0);

  EXPECT_TRUE(tree_.is_ancestor(0, i2));
  EXPECT_TRUE(tree_.is_ancestor(i1, i2));
  EXPECT_TRUE(tree_.is_ancestor(i2, i2));
  EXPECT_FALSE(tree_.is_ancestor(ir, i2));
  EXPECT_FALSE(tree_.is_ancestor(i2, i1));
  EXPECT_EQ(tree_.common_ancestor(i2, ir), 0u);
  EXPECT_EQ(tree_.common_ancestor(i2, i1), i1);
}

TEST_F(BlockTreeTest, PathFromGenesis) {
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  auto i1 = tree_.insert(b1, 1.0, 1.0);
  auto b2 = make_block(BlockType::kPow, b1->id(), 2.0, 0);
  auto i2 = tree_.insert(b2, 2.0, 1.0);
  auto path = tree_.path_from_genesis(i2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], i1);
  EXPECT_EQ(path[2], i2);
}

TEST_F(BlockTreeTest, AncestorAtOrBeforeTime) {
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 10.0, 0);
  auto i1 = tree_.insert(b1, 10.0, 1.0);
  auto b2 = make_block(BlockType::kPow, b1->id(), 20.0, 0);
  auto i2 = tree_.insert(b2, 20.0, 1.0);
  EXPECT_EQ(tree_.ancestor_at_or_before(i2, 25.0), i2);
  EXPECT_EQ(tree_.ancestor_at_or_before(i2, 15.0), i1);
  EXPECT_EQ(tree_.ancestor_at_or_before(i2, 5.0), 0u);
}

TEST_F(BlockTreeTest, ChainTxAndFeeAccounting) {
  auto tx1 = make_transfer(Outpoint{genesis_->txs()[0]->id(), 0}, kCoin - 10,
                           address_from_tag(1), 10);
  auto tx2 = make_transfer(Outpoint{genesis_->txs()[0]->id(), 1}, kCoin - 20,
                           address_from_tag(2), 20);
  BlockHeader h;
  h.type = BlockType::kPow;
  h.prev = genesis_->id();
  h.timestamp = 1.0;
  std::vector<TxPtr> txs{tx1, tx2};
  h.merkle_root = compute_merkle_root(txs);
  auto idx = tree_.insert(std::make_shared<Block>(h, txs, 0), 1.0, 1.0);
  EXPECT_EQ(tree_.entry(idx).chain_tx_count, 2u);
  EXPECT_EQ(tree_.entry(idx).chain_fee_sum, 30);
}

TEST_F(BlockTreeTest, TipHistoryRecordsSwitches) {
  auto b1 = make_block(BlockType::kPow, genesis_->id(), 1.0, 0);
  tree_.insert(b1, 1.0, 1.0);
  auto b2 = make_block(BlockType::kPow, b1->id(), 2.0, 0);
  tree_.insert(b2, 2.0, 1.0);
  const auto& hist = tree_.tip_history();
  ASSERT_EQ(hist.size(), 3u);  // genesis + two extensions
  EXPECT_EQ(hist[0].tip, 0u);
  EXPECT_EQ(hist[1].at, 1.0);
  EXPECT_EQ(hist[2].at, 2.0);
}

TEST(BlockTreeGhost, HeaviestSubtreeBeatsLongestChain) {
  // GHOST picks the subtree with more total work even if its chain is
  // shorter (paper §9 / Appendix A).
  auto genesis = make_genesis(1, kCoin);
  Rng rng(3);
  BlockTree tree(genesis, TieBreak::kFirstSeen, BlockTree::ForkChoice::kHeaviestSubtree,
                 &rng);
  // Branch A: a1 - a2 (chain work 2).
  auto a1 = make_block(BlockType::kPow, genesis->id(), 1.0, 0);
  tree.insert(a1, 1.0, 1.0);
  auto a2 = make_block(BlockType::kPow, a1->id(), 2.0, 0);
  auto a2_idx = tree.insert(a2, 2.0, 1.0);
  EXPECT_EQ(tree.best_tip(), a2_idx);
  // Branch B: b1 with three children (subtree work 4 > 2) but depth 2.
  auto b1 = make_block(BlockType::kPow, genesis->id(), 1.5, 1);
  auto b1_idx = tree.insert(b1, 1.5, 1.0);
  auto c1 = make_block(BlockType::kPow, b1->id(), 2.5, 2, 1);
  tree.insert(c1, 2.5, 1.0);
  auto c2 = make_block(BlockType::kPow, b1->id(), 2.6, 3, 2);
  tree.insert(c2, 2.6, 1.0);
  auto c3 = make_block(BlockType::kPow, b1->id(), 2.7, 4, 3);
  tree.insert(c3, 2.7, 1.0);
  // Heaviest-subtree tip lives under b1 even though branch A's chain has the
  // same length as b1->c1.
  EXPECT_TRUE(tree.is_ancestor(b1_idx, tree.best_tip()));
}

TEST(BlockTreeGhost, SubtreeWorkAccumulates) {
  auto genesis = make_genesis(1, kCoin);
  Rng rng(4);
  BlockTree tree(genesis, TieBreak::kFirstSeen, BlockTree::ForkChoice::kHeaviestSubtree,
                 &rng);
  auto b1 = make_block(BlockType::kPow, genesis->id(), 1.0, 0);
  auto i1 = tree.insert(b1, 1.0, 1.0);
  auto b2 = make_block(BlockType::kPow, b1->id(), 2.0, 0);
  tree.insert(b2, 2.0, 1.0);
  EXPECT_EQ(tree.entry(i1).subtree_work, 2.0);
  EXPECT_EQ(tree.entry(0).subtree_work, 2.0);
}

}  // namespace
}  // namespace bng::chain
