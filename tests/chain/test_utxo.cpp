#include "chain/utxo.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bng::chain {
namespace {

/// Build a block around given txs (structure only; PoW/merkle not checked by
/// the Ledger).
BlockPtr wrap_block(BlockType type, const Hash256& prev, std::vector<TxPtr> txs,
                    Seconds ts = 1.0, std::uint32_t miner = 0) {
  BlockHeader h;
  h.type = type;
  h.prev = prev;
  h.timestamp = ts;
  h.merkle_root = compute_merkle_root(txs);
  if (type == BlockType::kKey)
    h.leader_key = crypto::PrivateKey::from_seed(miner).public_key();
  return std::make_shared<Block>(h, std::move(txs), miner);
}

TxPtr coinbase_paying(std::uint32_t height, Amount value, const Hash256& addr) {
  auto tx = std::make_shared<Transaction>();
  tx->coinbase_height = height;
  tx->outputs.push_back(TxOutput{value, addr});
  return tx;
}

TEST(UtxoSet, AddSpendFind) {
  UtxoSet set;
  Outpoint op;
  op.txid.bytes[0] = 1;
  set.add(op, UtxoEntry{TxOutput{100, address_from_tag(1)}, std::nullopt});
  ASSERT_NE(set.find(op), nullptr);
  EXPECT_EQ(set.find(op)->out.value, 100);
  auto spent = set.spend(op);
  ASSERT_TRUE(spent.has_value());
  EXPECT_EQ(spent->out.value, 100);
  EXPECT_EQ(set.find(op), nullptr);
  EXPECT_FALSE(set.spend(op).has_value());
}

TEST(UtxoSet, BalanceByOwner) {
  UtxoSet set;
  auto addr = address_from_tag(7);
  for (std::uint8_t i = 0; i < 3; ++i) {
    Outpoint op;
    op.txid.bytes[0] = i;
    set.add(op, UtxoEntry{TxOutput{100, addr}, std::nullopt});
  }
  Outpoint other;
  other.txid.bytes[0] = 99;
  set.add(other, UtxoEntry{TxOutput{55, address_from_tag(8)}, std::nullopt});
  EXPECT_EQ(set.balance(addr), 300);
  EXPECT_EQ(set.balance(address_from_tag(8)), 55);
  EXPECT_EQ(set.balance(address_from_tag(9)), 0);
}

// The per-owner running balance index must stay consistent with a brute-force
// recomputation through arbitrary interleavings of add / spend / overwrite,
// including maturity queries at several heights.
TEST(UtxoSet, BalanceIndexMatchesBruteForce) {
  UtxoSet set;
  std::vector<std::pair<Outpoint, UtxoEntry>> shadow;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  constexpr std::uint32_t kOwners = 5;
  constexpr std::uint32_t kMaturity = 10;

  auto brute_balance = [&shadow](const Hash256& addr, std::optional<std::uint32_t> at,
                                 std::uint32_t maturity) {
    Amount total = 0;
    for (const auto& [op, e] : shadow) {
      if (e.out.owner != addr) continue;
      if (at && e.coinbase_pow_height && *e.coinbase_pow_height + maturity > *at) continue;
      total += e.out.value;
    }
    return total;
  };

  for (int step = 0; step < 2000; ++step) {
    const auto roll = next() % 10;
    if (roll < 6 || shadow.empty()) {  // add (sometimes overwriting)
      Outpoint op;
      op.txid.bytes[0] = static_cast<std::uint8_t>(next() % 64);
      op.vout = static_cast<std::uint32_t>(next() % 4);
      UtxoEntry e;
      e.out.value = static_cast<Amount>(1 + next() % 1000);
      e.out.owner = address_from_tag(next() % kOwners);
      if (next() % 3 == 0) e.coinbase_pow_height = static_cast<std::uint32_t>(next() % 30);
      auto it = std::find_if(shadow.begin(), shadow.end(),
                             [&op](const auto& kv) { return kv.first == op; });
      if (it != shadow.end()) {
        it->second = e;
      } else {
        shadow.emplace_back(op, e);
      }
      set.add(op, e);
    } else {  // spend a random live outpoint
      const auto idx = next() % shadow.size();
      set.spend(shadow[idx].first);
      shadow.erase(shadow.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 100 == 0) {
      for (std::uint32_t owner = 0; owner < kOwners; ++owner) {
        const auto addr = address_from_tag(owner);
        EXPECT_EQ(set.balance(addr), brute_balance(addr, std::nullopt, 0));
        for (std::uint32_t h : {0u, 5u, 15u, 40u})
          EXPECT_EQ(set.balance(addr, h, kMaturity), brute_balance(addr, h, kMaturity));
      }
    }
  }
}

TEST(UtxoSet, MaturityFiltersCoinbase) {
  UtxoSet set;
  auto addr = address_from_tag(7);
  Outpoint op;
  op.txid.bytes[0] = 1;
  set.add(op, UtxoEntry{TxOutput{100, addr}, 10});  // coinbase at PoW height 10
  EXPECT_EQ(set.balance(addr, 15, 100), 0);   // 10 + 100 > 15: immature
  EXPECT_EQ(set.balance(addr, 110, 100), 100);
  EXPECT_EQ(set.balance(addr), 100);  // no maturity filter
}

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : params_(Params::bitcoin_ng()), ledger_(params_) {
    params_.coinbase_maturity = 2;  // keep tests small
    ledger_ = Ledger(params_);
    genesis_ = make_genesis(4, kCoin);
    EXPECT_TRUE(ledger_.apply_block(*genesis_).ok);
  }

  Params params_;
  Ledger ledger_;
  BlockPtr genesis_;
};

TEST_F(LedgerTest, GenesisCreatesOutputs) {
  EXPECT_EQ(ledger_.utxo().size(), 4u);
  EXPECT_EQ(ledger_.total_balance(address_from_tag(0)), kCoin);
}

TEST_F(LedgerTest, SimpleTransfer) {
  auto src = Outpoint{genesis_->txs()[0]->id(), 0};
  // Maturity: genesis coinbase at PoW height... genesis counts as height 1.
  // Mine filler blocks first so the coinbase matures.
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(),
                       {coinbase_paying(2, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b1).ok);
  auto b2 = wrap_block(BlockType::kKey, b1->id(),
                       {coinbase_paying(3, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b2).ok);

  auto tx = make_transfer(src, kCoin - 500, address_from_tag(77), 500);
  auto micro = wrap_block(BlockType::kMicro, b2->id(), {tx});
  auto result = ledger_.apply_block(*micro);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(ledger_.total_balance(address_from_tag(77)), kCoin - 500);
  EXPECT_EQ(ledger_.total_balance(address_from_tag(0)), 0);
}

TEST_F(LedgerTest, DoubleSpendRejected) {
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(),
                       {coinbase_paying(2, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b1).ok);
  auto b2 = wrap_block(BlockType::kKey, b1->id(),
                       {coinbase_paying(3, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b2).ok);

  auto src = Outpoint{genesis_->txs()[0]->id(), 0};
  auto tx1 = make_transfer(src, kCoin - 500, address_from_tag(77), 500);
  auto tx2 = make_transfer(src, kCoin - 600, address_from_tag(78), 600);
  auto micro = wrap_block(BlockType::kMicro, b2->id(), {tx1, tx2});
  auto result = ledger_.apply_block(*micro);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("double"), std::string::npos);
}

TEST_F(LedgerTest, ValueConservationEnforced) {
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(),
                       {coinbase_paying(2, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b1).ok);
  auto b2 = wrap_block(BlockType::kKey, b1->id(),
                       {coinbase_paying(3, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b2).ok);

  auto src = Outpoint{genesis_->txs()[0]->id(), 0};
  auto bad = make_transfer(src, kCoin, address_from_tag(77), 500);  // creates money
  auto micro = wrap_block(BlockType::kMicro, b2->id(), {bad});
  EXPECT_FALSE(ledger_.apply_block(*micro).ok);
}

TEST_F(LedgerTest, ImmatureCoinbaseCannotBeSpent) {
  auto cb = coinbase_paying(2, params_.block_subsidy, address_from_tag(50));
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(), {cb});
  ASSERT_TRUE(ledger_.apply_block(*b1).ok);
  // Spend the fresh coinbase immediately: must fail (maturity = 2).
  auto spend = make_transfer(Outpoint{cb->id(), 0}, params_.block_subsidy - 10,
                             address_from_tag(60), 10);
  auto micro = wrap_block(BlockType::kMicro, b1->id(), {spend});
  auto result = ledger_.apply_block(*micro);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("immature"), std::string::npos);
}

TEST_F(LedgerTest, SpendableVsTotalBalance) {
  auto cb = coinbase_paying(2, params_.block_subsidy, address_from_tag(50));
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(), {cb});
  ASSERT_TRUE(ledger_.apply_block(*b1).ok);
  EXPECT_EQ(ledger_.total_balance(address_from_tag(50)), params_.block_subsidy);
  EXPECT_EQ(ledger_.spendable_balance(address_from_tag(50)), 0);
}

TEST_F(LedgerTest, MissingInputRejected) {
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(),
                       {coinbase_paying(2, params_.block_subsidy, address_from_tag(50))});
  ASSERT_TRUE(ledger_.apply_block(*b1).ok);
  Outpoint bogus;
  bogus.txid.bytes[0] = 0xff;
  auto tx = make_transfer(bogus, 100, address_from_tag(1), 1);
  auto micro = wrap_block(BlockType::kMicro, b1->id(), {tx});
  EXPECT_FALSE(ledger_.apply_block(*micro).ok);
}

TEST_F(LedgerTest, CoinbaseCeilingEnforcedForPowBlocks) {
  auto greedy = coinbase_paying(2, params_.block_subsidy + 1, address_from_tag(50));
  auto b1 = wrap_block(BlockType::kPow, genesis_->id(), {greedy});
  EXPECT_FALSE(ledger_.apply_block(*b1).ok);
}

TEST_F(LedgerTest, MultipleCoinbasesRejected) {
  auto cb1 = coinbase_paying(2, 10, address_from_tag(50));
  auto cb2 = coinbase_paying(2, 10, address_from_tag(51));
  auto b1 = wrap_block(BlockType::kKey, genesis_->id(), {cb1, cb2});
  EXPECT_FALSE(ledger_.apply_block(*b1).ok);
}

TEST_F(LedgerTest, CoinbaseInMicroblockRejected) {
  auto cb = coinbase_paying(2, 10, address_from_tag(50));
  auto micro = wrap_block(BlockType::kMicro, genesis_->id(), {cb});
  EXPECT_FALSE(ledger_.apply_block(*micro).ok);
}

TEST_F(LedgerTest, TransactionCounterAdvances) {
  EXPECT_EQ(ledger_.transactions_applied(), 1u);  // genesis coinbase
}

}  // namespace
}  // namespace bng::chain
