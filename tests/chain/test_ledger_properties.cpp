// Property tests: the ledger as a value-conserving state machine.
#include <gtest/gtest.h>

#include "chain/block_tree.hpp"
#include "chain/utxo.hpp"
#include "common/rng.hpp"

namespace bng::chain {
namespace {

/// Random but valid transfer workload: supply must be conserved exactly
/// except for explicit mints (coinbase) and declared fees.
class LedgerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerPropertyTest, SupplyConservedUnderRandomTransfers) {
  Rng rng(GetParam());
  Params params = Params::bitcoin_ng();
  params.coinbase_maturity = 0;
  Ledger ledger(params);

  const std::size_t n_outputs = 50;
  auto genesis = make_genesis(n_outputs, kCoin);
  ASSERT_TRUE(ledger.apply_block(*genesis).ok);

  // Live outpoints with value and owner tag.
  struct Live {
    Outpoint op;
    Amount value;
  };
  std::vector<Live> live;
  const Hash256 genesis_txid = genesis->txs()[0]->id();
  for (std::uint32_t i = 0; i < n_outputs; ++i)
    live.push_back({Outpoint{genesis_txid, i}, kCoin});

  Amount total_fees = 0;
  Hash256 prev = genesis->id();
  std::uint64_t tag = 1'000'000;

  for (int round = 0; round < 20; ++round) {
    // Build a microblock of random transfers spending random live outputs.
    std::vector<TxPtr> txs;
    const std::size_t spends = 1 + rng.next_below(std::min<std::size_t>(5, live.size()));
    for (std::size_t s = 0; s < spends; ++s) {
      const std::size_t pick = rng.next_below(live.size());
      Live src = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      const Amount fee = static_cast<Amount>(rng.next_below(1000));
      // Split into two outputs sometimes.
      auto tx = std::make_shared<Transaction>();
      tx->inputs.push_back(TxInput{src.op});
      tx->fee = fee;
      const Amount remainder = src.value - fee;
      if (remainder > 1 && rng.next_below(2) == 0) {
        const Amount a = 1 + static_cast<Amount>(
                                 rng.next_below(static_cast<std::uint64_t>(remainder - 1)));
        tx->outputs.push_back(TxOutput{a, address_from_tag(tag++)});
        tx->outputs.push_back(TxOutput{remainder - a, address_from_tag(tag++)});
      } else {
        tx->outputs.push_back(TxOutput{remainder, address_from_tag(tag++)});
      }
      total_fees += fee;
      txs.push_back(tx);
      for (std::uint32_t v = 0; v < tx->outputs.size(); ++v)
        live.push_back({Outpoint{tx->id(), v}, tx->outputs[v].value});
    }

    BlockHeader h;
    h.type = BlockType::kMicro;
    h.prev = prev;
    h.timestamp = round + 1.0;
    h.merkle_root = compute_merkle_root(txs);
    auto sk = crypto::PrivateKey::from_seed(1);
    h.signature = crypto::sign(sk, h.signing_hash());
    auto block = std::make_shared<Block>(h, txs, 0);
    prev = block->id();
    auto r = ledger.apply_block(*block);
    ASSERT_TRUE(r.ok) << "round " << round << ": " << r.error;
  }

  // Conservation: sum of all UTXO values + fees paid == initial supply.
  Amount utxo_total = 0;
  for (const auto& l : live) {
    const UtxoEntry* e = ledger.utxo().find(l.op);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->out.value, l.value);
    utxo_total += e->out.value;
  }
  EXPECT_EQ(utxo_total + total_fees,
            static_cast<Amount>(n_outputs) * kCoin);
  EXPECT_EQ(ledger.utxo().size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

/// Random fork workloads: block-tree bookkeeping invariants hold at every
/// step regardless of insertion pattern.
class BlockTreePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockTreePropertyTest, InvariantsUnderRandomForks) {
  Rng rng(GetParam());
  auto genesis = make_genesis(1, kCoin);
  BlockTree tree(genesis, TieBreak::kRandom, BlockTree::ForkChoice::kHeaviestChain, &rng);

  std::vector<Hash256> ids{genesis->id()};
  for (int i = 0; i < 120; ++i) {
    const Hash256& parent = ids[rng.next_below(ids.size())];
    const bool micro = rng.next_below(3) == 0;
    BlockHeader h;
    h.type = micro ? BlockType::kMicro : BlockType::kPow;
    h.prev = parent;
    h.timestamp = i + 1.0;
    h.nonce = static_cast<std::uint64_t>(i);
    auto block = std::make_shared<Block>(h, std::vector<TxPtr>{}, 0);
    ids.push_back(block->id());
    tree.insert(block, i + 1.0, micro ? 0.0 : 1.0);

    // Invariants:
    const auto& best = tree.best_entry();
    for (std::uint32_t e = 0; e < tree.size(); ++e) {
      const auto& entry = tree.entry(e);
      // chain work is parent's plus own.
      if (entry.parent >= 0) {
        const auto& p = tree.entry(static_cast<std::uint32_t>(entry.parent));
        EXPECT_EQ(entry.height, p.height + 1);
        EXPECT_GE(entry.chain_work, p.chain_work);
        EXPECT_LE(entry.chain_work, p.chain_work + 1.0);
      }
      // No entry outweighs the best tip.
      EXPECT_LE(entry.chain_work, best.chain_work);
    }
    // The path to the best tip is consistent.
    auto path = tree.path_from_genesis(tree.best_tip());
    EXPECT_EQ(path.front(), BlockTree::kGenesisIndex);
    EXPECT_EQ(path.back(), tree.best_tip());
    for (std::size_t p = 1; p < path.size(); ++p)
      EXPECT_TRUE(tree.is_ancestor(path[p - 1], path[p]));
  }
  EXPECT_EQ(tree.size(), 121u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockTreePropertyTest, ::testing::Values(7, 11, 19, 23));

}  // namespace
}  // namespace bng::chain
