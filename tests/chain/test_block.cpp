#include "chain/block.hpp"

#include <gtest/gtest.h>

namespace bng::chain {
namespace {

std::vector<TxPtr> sample_txs(int n) {
  std::vector<TxPtr> txs;
  for (int i = 0; i < n; ++i) {
    Outpoint op;
    op.txid.bytes[0] = static_cast<std::uint8_t>(i + 1);
    txs.push_back(make_transfer(op, 1000, address_from_tag(i), 10));
  }
  return txs;
}

BlockHeader header_with(BlockType type, const Hash256& prev, Seconds ts,
                        const std::vector<TxPtr>& txs) {
  BlockHeader h;
  h.type = type;
  h.prev = prev;
  h.timestamp = ts;
  h.merkle_root = compute_merkle_root(txs);
  return h;
}

TEST(BlockHeader, IdCoversAllFields) {
  auto txs = sample_txs(2);
  auto base = header_with(BlockType::kPow, Hash256{}, 5.0, txs);
  auto id0 = base.id();

  auto h = base;
  h.timestamp = 6.0;
  EXPECT_NE(h.id(), id0);

  h = base;
  h.nonce = 1;
  EXPECT_NE(h.id(), id0);

  h = base;
  h.prev.bytes[0] = 1;
  EXPECT_NE(h.id(), id0);

  h = base;
  h.type = BlockType::kKey;
  EXPECT_NE(h.id(), id0);
}

TEST(BlockHeader, SigningHashExcludesSignature) {
  auto txs = sample_txs(1);
  auto h = header_with(BlockType::kMicro, Hash256{}, 1.0, txs);
  auto pre = h.signing_hash();
  auto sk = crypto::PrivateKey::from_seed(1);
  h.signature = crypto::sign(sk, pre);
  EXPECT_EQ(h.signing_hash(), pre);  // unchanged by attaching the signature
  EXPECT_NE(h.id(), pre);            // but the id covers it
}

TEST(BlockHeader, SerializationRoundTrip) {
  auto txs = sample_txs(1);
  auto h = header_with(BlockType::kKey, Hash256{}, 2.5, txs);
  h.leader_key = crypto::PrivateKey::from_seed(3).public_key();
  h.nonce = 77;
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.data());
  auto back = BlockHeader::deserialize(r);
  EXPECT_EQ(back.id(), h.id());
  EXPECT_EQ(back.type, BlockType::kKey);
  EXPECT_EQ(back.timestamp, 2.5);
  ASSERT_TRUE(back.leader_key.has_value());
  EXPECT_EQ(*back.leader_key, *h.leader_key);
}

TEST(BlockHeader, SignedMicroblockRoundTrip) {
  auto txs = sample_txs(1);
  auto h = header_with(BlockType::kMicro, Hash256{}, 2.5, txs);
  auto sk = crypto::PrivateKey::from_seed(5);
  h.signature = crypto::sign(sk, h.signing_hash());
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.data());
  auto back = BlockHeader::deserialize(r);
  ASSERT_TRUE(back.signature.has_value());
  EXPECT_TRUE(crypto::verify(sk.public_key(), back.signing_hash(), *back.signature));
}

TEST(Block, WireSizeIsHeaderPlusTxs) {
  auto txs = sample_txs(3);
  std::size_t tx_bytes = 0;
  for (const auto& tx : txs) tx_bytes += tx->wire_size();
  auto h = header_with(BlockType::kPow, Hash256{}, 0, txs);
  ByteWriter w;
  h.serialize(w);
  Block block(h, txs, 0);
  EXPECT_EQ(block.wire_size(), w.size() + tx_bytes);
}

TEST(Block, MerkleOkDetectsMismatch) {
  auto txs = sample_txs(3);
  auto h = header_with(BlockType::kPow, Hash256{}, 0, txs);
  EXPECT_TRUE(Block(h, txs, 0).merkle_ok());
  h.merkle_root.bytes[0] ^= 1;
  EXPECT_FALSE(Block(h, txs, 0).merkle_ok());
}

TEST(Block, TotalFeesExcludesCoinbase) {
  auto txs = sample_txs(2);  // 10 each
  auto coinbase = std::make_shared<Transaction>();
  coinbase->coinbase_height = 1;
  coinbase->fee = 999;  // nonsense fee on a coinbase must be ignored
  coinbase->outputs.push_back(TxOutput{50, address_from_tag(0)});
  txs.insert(txs.begin(), coinbase);
  auto h = header_with(BlockType::kPow, Hash256{}, 0, txs);
  EXPECT_EQ(Block(h, txs, 0).total_fees(), 20);
}

TEST(Block, MicroblockWorkForcedToZero) {
  auto txs = sample_txs(1);
  auto h = header_with(BlockType::kMicro, Hash256{}, 0, txs);
  Block micro(h, txs, 0, /*work=*/5.0);
  EXPECT_EQ(micro.work(), 0.0);
  auto h2 = header_with(BlockType::kKey, Hash256{}, 0, txs);
  Block key(h2, txs, 0, 5.0);
  EXPECT_EQ(key.work(), 5.0);
}

TEST(Genesis, HasRequestedOutputs) {
  auto genesis = make_genesis(100, kCoin);
  ASSERT_EQ(genesis->txs().size(), 1u);
  EXPECT_EQ(genesis->txs()[0]->outputs.size(), 100u);
  EXPECT_EQ(genesis->txs()[0]->outputs[7].value, kCoin);
  EXPECT_TRUE(genesis->txs()[0]->is_coinbase());
  EXPECT_TRUE(genesis->header().prev.is_zero());
  EXPECT_TRUE(genesis->merkle_ok());
}

TEST(Genesis, DeterministicId) {
  EXPECT_EQ(make_genesis(10, kCoin)->id(), make_genesis(10, kCoin)->id());
  EXPECT_NE(make_genesis(10, kCoin)->id(), make_genesis(11, kCoin)->id());
}

}  // namespace
}  // namespace bng::chain
