#include "sim/miner_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace bng::sim {
namespace {

TEST(ExponentialPowers, NormalizedAndDecreasing) {
  auto powers = exponential_powers(100, -0.27);
  double total = std::accumulate(powers.begin(), powers.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (std::size_t i = 1; i < powers.size(); ++i) EXPECT_LT(powers[i], powers[i - 1]);
}

TEST(ExponentialPowers, LargestMinerNearQuarter) {
  // Paper §8.1: utilization tends to "1/4, the size of the largest miner".
  auto powers = exponential_powers(1000, -0.27);
  EXPECT_NEAR(powers[0], 0.236, 0.01);
}

TEST(ExponentialPowers, RatioMatchesExponent) {
  auto powers = exponential_powers(50, -0.27);
  for (std::size_t i = 1; i < 20; ++i)
    EXPECT_NEAR(powers[i] / powers[i - 1], std::exp(-0.27), 1e-9);
}

TEST(ExponentialPowers, RejectsZeroMiners) {
  EXPECT_THROW(exponential_powers(0), std::invalid_argument);
}

TEST(UniformPowers, EqualShares) {
  auto powers = uniform_powers(8);
  for (double p : powers) EXPECT_DOUBLE_EQ(p, 0.125);
}

TEST(SyntheticWeekly, SharesNormalizedAndRanked) {
  Rng rng(1);
  auto shares = synthetic_weekly_shares(20, -0.27, 0.3, rng);
  EXPECT_EQ(shares.size(), 20u);
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0, 1e-12);
  for (std::size_t i = 1; i < shares.size(); ++i) EXPECT_LE(shares[i], shares[i - 1]);
}

TEST(WeeklyRankStats, PercentilesOrdered) {
  Rng rng(2);
  auto stats = weekly_rank_statistics(20, 52, -0.27, 0.3, rng);
  ASSERT_EQ(stats.p50.size(), 20u);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_LE(stats.p25[r], stats.p50[r]);
    EXPECT_LE(stats.p50[r], stats.p75[r]);
  }
  for (std::size_t r = 1; r < 20; ++r) EXPECT_LT(stats.p50[r], stats.p50[r - 1]);
}

TEST(FitRankExponent, RecoversPaperFit) {
  // The paper reports exponent -0.27 with R^2 = 0.99 against rank medians.
  Rng rng(3);
  auto stats = weekly_rank_statistics(20, 52, -0.27, 0.25, rng);
  auto fit = fit_rank_exponent(stats.p50);
  EXPECT_NEAR(fit.exponent, -0.27, 0.04);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(FitRankExponent, PerfectExponential) {
  std::vector<double> medians;
  for (int r = 1; r <= 20; ++r) medians.push_back(std::exp(-0.27 * r));
  auto fit = fit_rank_exponent(medians);
  EXPECT_NEAR(fit.exponent, -0.27, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

}  // namespace
}  // namespace bng::sim
