// WinSequence must replay MiningScheduler's draw sequence bit-for-bit:
// the parallel engine injects its wins instead of running the scheduler,
// so any divergence in (time, miner, difficulty) breaks determinism.
#include <gtest/gtest.h>

#include "../support/harness.hpp"
#include "bitcoin/bitcoin_node.hpp"
#include "sim/miner_distribution.hpp"
#include "sim/mining_scheduler.hpp"

namespace bng::sim {
namespace {

using bng::testing::MiniNet;

chain::Params btc_params() {
  auto p = chain::Params::bitcoin();
  p.max_block_size = 3000;
  return p;
}

/// Collect (at, miner) pairs from a real scheduler run.
std::vector<std::pair<Seconds, std::uint32_t>> scheduler_wins(
    std::vector<double> powers, Seconds interval, std::uint64_t rng_seed,
    std::optional<chain::RetargetRule> retarget, Seconds until) {
  const auto n = static_cast<std::uint32_t>(powers.size());
  MiniNet<bitcoin::BitcoinNode> net(n, btc_params());
  std::vector<protocol::BaseNode*> miners;
  for (std::uint32_t i = 0; i < n; ++i) miners.push_back(&net.node(i));
  MiningScheduler sched(net.queue(), miners, std::move(powers), interval,
                        Rng(rng_seed));
  if (retarget) sched.enable_difficulty(*retarget);
  std::vector<std::pair<Seconds, std::uint32_t>> out;
  sched.on_win = [&](std::uint32_t miner, Seconds at) { out.emplace_back(at, miner); };
  sched.start();
  net.queue().run_until(until);
  sched.stop();
  return out;
}

void expect_replay_matches(std::vector<double> powers, Seconds interval,
                           std::uint64_t rng_seed,
                           std::optional<chain::RetargetRule> retarget,
                           Seconds until) {
  const auto expected = scheduler_wins(powers, interval, rng_seed, retarget, until);
  ASSERT_GT(expected.size(), 10u) << "test horizon too short to be meaningful";

  WinSequence seq(powers, interval, Rng(rng_seed), retarget, /*start_time=*/0.0);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(seq.peek_at(), expected[i].first) << "win " << i;  // bitwise
    const WinSequence::Win win = seq.next();
    ASSERT_EQ(win.at, expected[i].first) << "win " << i;
    ASSERT_EQ(win.miner, expected[i].second) << "win " << i;
  }
  EXPECT_EQ(seq.wins(), expected.size());
  // The next draw lies past the horizon — the scheduler produced no more.
  EXPECT_GT(seq.peek_at(), until);
}

TEST(WinSequence, MatchesSchedulerUniform) {
  expect_replay_matches(uniform_powers(4), 10.0, 99, std::nullopt, 2000.0);
}

TEST(WinSequence, MatchesSchedulerSkewedPowers) {
  expect_replay_matches({0.6, 0.25, 0.1, 0.05}, 3.0, 42, std::nullopt, 1000.0);
}

TEST(WinSequence, MatchesSchedulerWithRetarget) {
  // Retargets shift both the difficulty (win.work) and every subsequent
  // inter-arrival draw; the replay must track the tracker exactly.
  expect_replay_matches(uniform_powers(3), 5.0, 7,
                        chain::RetargetRule{20, 5.0, 4.0}, 2000.0);
}

TEST(WinSequence, WorkTracksDifficulty) {
  WinSequence plain(uniform_powers(2), 10.0, Rng(1), std::nullopt, 0.0);
  EXPECT_EQ(plain.next().work, 1.0);

  WinSequence retargeted(uniform_powers(2), 10.0, Rng(1),
                         chain::RetargetRule{5, 10.0, 4.0}, 0.0);
  for (int i = 0; i < 20; ++i) EXPECT_GT(retargeted.next().work, 0.0);
}

TEST(WinSequence, RejectsBadConfig) {
  EXPECT_THROW(WinSequence({}, 10.0, Rng(1), std::nullopt, 0.0),
               std::invalid_argument);
  EXPECT_THROW(WinSequence({0.5, 0.5}, 0.0, Rng(1), std::nullopt, 0.0),
               std::invalid_argument);
  EXPECT_THROW(WinSequence({0.0, 0.0}, 10.0, Rng(1), std::nullopt, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bng::sim
