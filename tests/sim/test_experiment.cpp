#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bng::sim {
namespace {

ExperimentConfig small_ng(std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();
  cfg.params.block_interval = 40;
  cfg.params.microblock_interval = 4;
  cfg.params.max_microblock_size = 8000;
  cfg.num_nodes = 30;
  cfg.target_blocks = 20;
  cfg.drain_time = 30;
  cfg.seed = seed;
  return cfg;
}

ExperimentConfig small_btc(std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin();
  cfg.params.block_interval = 20;
  cfg.params.max_block_size = 8000;
  cfg.num_nodes = 30;
  cfg.target_blocks = 20;
  cfg.drain_time = 30;
  cfg.seed = seed;
  return cfg;
}

TEST(Experiment, RunsToTargetBitcoin) {
  Experiment exp(small_btc());
  exp.run();
  EXPECT_GE(exp.trace().pow_blocks(), 20u);
  EXPECT_EQ(exp.trace().micro_blocks(), 0u);
  EXPECT_EQ(exp.nodes().size(), 30u);
}

TEST(Experiment, RunsToTargetNg) {
  Experiment exp(small_ng());
  exp.run();
  EXPECT_GE(exp.trace().micro_blocks(), 20u);
  EXPECT_GE(exp.trace().pow_blocks(), 1u);  // at least one key block to lead
}

TEST(Experiment, DeterministicAcrossRuns) {
  Experiment a(small_ng(7));
  Experiment b(small_ng(7));
  a.run();
  b.run();
  ASSERT_EQ(a.trace().generated().size(), b.trace().generated().size());
  for (std::size_t i = 0; i < a.trace().generated().size(); ++i) {
    EXPECT_EQ(a.trace().generated()[i].block->id(), b.trace().generated()[i].block->id());
    EXPECT_EQ(a.trace().generated()[i].at, b.trace().generated()[i].at);
    EXPECT_EQ(a.trace().generated()[i].miner, b.trace().generated()[i].miner);
  }
  EXPECT_EQ(a.network().bytes_sent(), b.network().bytes_sent());
}

TEST(Experiment, DifferentSeedsDiffer) {
  Experiment a(small_ng(1));
  Experiment b(small_ng(2));
  a.run();
  b.run();
  bool differs = a.trace().generated().size() != b.trace().generated().size();
  if (!differs)
    differs = a.trace().generated()[0].block->id() != b.trace().generated()[0].block->id();
  EXPECT_TRUE(differs);
}

TEST(Experiment, PowersFollowConfiguredExponent) {
  auto cfg = small_btc();
  cfg.power_exponent = -0.27;
  Experiment exp(cfg);
  exp.build();
  const auto& powers = exp.powers();
  EXPECT_NEAR(powers[1] / powers[0], std::exp(-0.27), 1e-9);
}

TEST(Experiment, CustomPowersRespected) {
  auto cfg = small_btc();
  cfg.custom_powers = std::vector<double>(30, 1.0 / 30);
  Experiment exp(cfg);
  exp.build();
  EXPECT_DOUBLE_EQ(exp.powers()[0], 1.0 / 30);
}

TEST(Experiment, CustomPowersSizeMismatchThrows) {
  auto cfg = small_btc();
  cfg.custom_powers = std::vector<double>{0.5, 0.5};
  Experiment exp(cfg);
  EXPECT_THROW(exp.build(), std::invalid_argument);
}

TEST(Experiment, WorkloadTransactionsIdenticallySized) {
  Experiment exp(small_ng());
  exp.build();
  const auto& pool = exp.workload();
  ASSERT_FALSE(pool.txs.empty());
  for (std::size_t i = 1; i < std::min<std::size_t>(pool.txs.size(), 200); ++i)
    EXPECT_EQ(pool.txs[i]->wire_size(), pool.tx_wire_size);
  EXPECT_EQ(pool.tx_wire_size, exp.config().tx_size);
}

TEST(Experiment, GlobalTreeContainsAllGenerated) {
  Experiment exp(small_btc());
  exp.run();
  EXPECT_EQ(exp.global_tree().size(), exp.trace().generated().size() + 1);  // + genesis
}

TEST(Experiment, NodesConvergeAfterDrain) {
  Experiment exp(small_btc(3));
  exp.run();
  // After drain, an overwhelming majority of nodes agree on the main-chain
  // PoW prefix (the paper's consensus property).
  const auto& g = exp.global_tree();
  const Hash256 best = g.best_entry().block->id();
  int agree = 0;
  for (const auto& node : exp.nodes()) {
    const auto& t = node->tree();
    if (t.best_entry().block->id() == best) ++agree;
  }
  EXPECT_GE(agree, 25);  // 30 nodes, small drain: near-unanimous
}

TEST(Experiment, SyntheticBlocksRespectSizeCaps) {
  Experiment exp(small_ng(5));
  exp.run();
  for (const auto& rec : exp.trace().generated()) {
    if (rec.block->type() == chain::BlockType::kMicro) {
      EXPECT_LE(rec.block->wire_size(), exp.config().params.max_microblock_size);
    }
  }
}

TEST(Experiment, FullMempoolModeProducesSameShape) {
  auto cfg = small_ng(4);
  cfg.num_nodes = 10;
  cfg.target_blocks = 8;
  cfg.pool_size = 2000;
  cfg.workload_mode = protocol::WorkloadMode::kFullMempool;
  Experiment exp(cfg);
  exp.run();
  EXPECT_GE(exp.trace().micro_blocks(), 8u);
  // Payload flowed through real mempools.
  EXPECT_GT(exp.global_tree().best_entry().chain_tx_count, 0u);
}

TEST(Experiment, GhostProtocolRuns) {
  auto cfg = small_btc(6);
  cfg.params.protocol = chain::Protocol::kGhost;
  Experiment exp(cfg);
  exp.run();
  EXPECT_GE(exp.trace().pow_blocks(), 20u);
}

}  // namespace
}  // namespace bng::sim
