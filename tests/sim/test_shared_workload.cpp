// Shared synthetic workload: one immutable tx pool across experiments
// (ROADMAP "synthetic-workload memory") without cross-talk.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/trace.hpp"

namespace bng::sim {
namespace {

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin();
  cfg.params.block_interval = 10.0;
  cfg.params.max_block_size = 4000;
  cfg.num_nodes = 12;
  cfg.target_blocks = 3;
  cfg.drain_time = 20;
  cfg.seed = seed;
  return cfg;
}

/// The run's observable output: the generated-block trace.
std::vector<std::pair<Hash256, double>> trace_of(const Experiment& exp) {
  std::vector<std::pair<Hash256, double>> out;
  for (const auto& g : exp.trace().generated()) out.emplace_back(g.block->id(), g.at);
  return out;
}

TEST(SharedWorkload, MatchesOwnedWorkload) {
  auto pool = build_shared_workload(small_config(7));

  ExperimentConfig owned_cfg = small_config(7);
  Experiment owned(owned_cfg);
  owned.run();

  ExperimentConfig shared_cfg = small_config(7);
  shared_cfg.shared_workload = pool;
  Experiment shared(shared_cfg);
  shared.run();

  // Same genesis, same pool contents, same simulation outcome.
  EXPECT_EQ(owned.genesis()->id(), shared.genesis()->id());
  ASSERT_EQ(owned.workload().txs.size(), shared.workload().txs.size());
  EXPECT_EQ(owned.workload().txs[0]->id(), shared.workload().txs[0]->id());
  EXPECT_EQ(trace_of(owned), trace_of(shared));
}

TEST(SharedWorkload, NoCrossTalkBetweenExperiments) {
  auto pool = build_shared_workload(small_config(7));
  const std::size_t pool_txs = pool->workload.txs.size();
  const Hash256 first_id = pool->workload.txs[0]->id();
  const Hash256 last_id = pool->workload.txs.back()->id();

  // Baseline: run seed 7 alone off the shared pool.
  std::vector<std::pair<Hash256, double>> baseline;
  {
    ExperimentConfig cfg = small_config(7);
    cfg.shared_workload = pool;
    Experiment exp(cfg);
    exp.run();
    baseline = trace_of(exp);
  }

  // A different seed runs off the same pool (different schedule, different
  // blocks)...
  {
    ExperimentConfig cfg = small_config(8);
    cfg.shared_workload = pool;
    Experiment exp(cfg);
    exp.run();
    EXPECT_NE(trace_of(exp), baseline);
  }

  // ...and must not have perturbed the pool or later runs: seed 7 again
  // reproduces the baseline exactly, and the pool is unchanged.
  {
    ExperimentConfig cfg = small_config(7);
    cfg.shared_workload = pool;
    Experiment exp(cfg);
    exp.run();
    EXPECT_EQ(trace_of(exp), baseline);
  }
  EXPECT_EQ(pool->workload.txs.size(), pool_txs);
  EXPECT_EQ(pool->workload.txs[0]->id(), first_id);
  EXPECT_EQ(pool->workload.txs.back()->id(), last_id);
}

TEST(SharedWorkload, ExperimentsDropTheirReference) {
  auto pool = build_shared_workload(small_config(7));
  {
    ExperimentConfig cfg = small_config(7);
    cfg.shared_workload = pool;
    Experiment exp(cfg);
    exp.run();
    EXPECT_GT(pool.use_count(), 1);
  }
  // No leaked references once the experiment is gone: a sweep can free the
  // pool after its point's last seed.
  EXPECT_EQ(pool.use_count(), 1);
}

TEST(SharedWorkload, BuildIsSeedIndependent) {
  auto a = build_shared_workload(small_config(1));
  auto b = build_shared_workload(small_config(999));
  ASSERT_EQ(a->workload.txs.size(), b->workload.txs.size());
  EXPECT_EQ(a->genesis->id(), b->genesis->id());
  EXPECT_EQ(a->workload.txs[0]->id(), b->workload.txs[0]->id());
  EXPECT_EQ(a->workload.tx_wire_size, b->workload.tx_wire_size);
}

}  // namespace
}  // namespace bng::sim
