#include "sim/mining_scheduler.hpp"

#include <gtest/gtest.h>

#include "../support/harness.hpp"
#include "bitcoin/bitcoin_node.hpp"
#include "common/stats.hpp"
#include "sim/miner_distribution.hpp"

namespace bng::sim {
namespace {

using bng::testing::MiniNet;

chain::Params btc_params() {
  auto p = chain::Params::bitcoin();
  p.max_block_size = 3000;
  return p;
}

/// Scheduler fixture over a mininet of bitcoin nodes.
struct SchedulerFixture {
  explicit SchedulerFixture(std::uint32_t n, std::vector<double> powers,
                            Seconds interval = 10.0)
      : net(n, btc_params()) {
    std::vector<protocol::BaseNode*> miners;
    for (std::uint32_t i = 0; i < n; ++i) miners.push_back(&net.node(i));
    scheduler = std::make_unique<MiningScheduler>(net.queue(), miners, std::move(powers),
                                                  interval, Rng(99));
  }
  MiniNet<bitcoin::BitcoinNode> net;
  std::unique_ptr<MiningScheduler> scheduler;
};

TEST(MiningScheduler, GeneratesAtTargetRate) {
  SchedulerFixture f(4, uniform_powers(4), 10.0);
  f.scheduler->start();
  f.net.queue().run_until(10000.0);
  f.scheduler->stop();
  // ~1000 blocks expected; Poisson sd ~ 32.
  EXPECT_NEAR(static_cast<double>(f.scheduler->wins()), 1000.0, 150.0);
}

TEST(MiningScheduler, WinsProportionalToPower) {
  SchedulerFixture f(3, {0.6, 0.3, 0.1}, 1.0);
  std::vector<int> wins(3, 0);
  f.scheduler->on_win = [&](std::uint32_t miner, Seconds) { ++wins[miner]; };
  f.scheduler->start();
  f.net.queue().run_until(5000.0);
  f.scheduler->stop();
  const double total = wins[0] + wins[1] + wins[2];
  ASSERT_GT(total, 0);
  EXPECT_NEAR(wins[0] / total, 0.6, 0.05);
  EXPECT_NEAR(wins[1] / total, 0.3, 0.05);
  EXPECT_NEAR(wins[2] / total, 0.1, 0.03);
}

TEST(MiningScheduler, InterArrivalTimesExponential) {
  SchedulerFixture f(2, uniform_powers(2), 5.0);
  std::vector<double> gaps;
  double last = 0;
  f.scheduler->on_win = [&](std::uint32_t, Seconds at) {
    gaps.push_back(at - last);
    last = at;
  };
  f.scheduler->start();
  f.net.queue().run_until(20000.0);
  f.scheduler->stop();
  ASSERT_GT(gaps.size(), 1000u);
  // Mean ≈ 5; coefficient of variation ≈ 1 for an exponential.
  double m = mean(gaps);
  double sd = stddev(gaps);
  EXPECT_NEAR(m, 5.0, 0.5);
  EXPECT_NEAR(sd / m, 1.0, 0.1);
}

TEST(MiningScheduler, StopHaltsGeneration) {
  SchedulerFixture f(2, uniform_powers(2), 1.0);
  f.scheduler->start();
  f.net.queue().run_until(100.0);
  f.scheduler->stop();
  auto wins_at_stop = f.scheduler->wins();
  f.net.queue().run_until(200.0);
  EXPECT_EQ(f.scheduler->wins(), wins_at_stop);
}

TEST(MiningScheduler, PowerChangeShiftsAssignment) {
  SchedulerFixture f(2, {0.5, 0.5}, 1.0);
  std::vector<int> wins(2, 0);
  f.scheduler->on_win = [&](std::uint32_t miner, Seconds) { ++wins[miner]; };
  f.scheduler->start();
  f.net.queue().run_until(1000.0);
  f.scheduler->set_power(1, 0.0);  // miner 1 powers off
  wins = {0, 0};
  f.net.queue().run_until(2000.0);
  f.scheduler->stop();
  EXPECT_GT(wins[0], 0);
  EXPECT_EQ(wins[1], 0);
}

TEST(MiningScheduler, DifficultyModeSlowsAfterPowerDrop) {
  // Paper §5.2: difficulty tuned for high power makes blocks crawl once
  // power leaves, until the next retarget.
  SchedulerFixture f(2, {0.5, 0.5}, 10.0);
  f.scheduler->enable_difficulty(chain::RetargetRule{100, 10.0, 4.0});
  f.scheduler->start();
  f.net.queue().run_until(1000.0);
  const double interval_before = f.scheduler->current_mean_interval();
  f.scheduler->set_power(0, 0.05);  // 45% of total power vanishes
  const double interval_after = f.scheduler->current_mean_interval();
  EXPECT_NEAR(interval_after / interval_before, 1.0 / 0.55, 0.01);
  f.scheduler->stop();
}

TEST(MiningScheduler, DifficultyRetargetRestoresRate) {
  SchedulerFixture f(2, {0.5, 0.5}, 5.0);
  f.scheduler->enable_difficulty(chain::RetargetRule{50, 5.0, 4.0});
  f.scheduler->start();
  f.net.queue().run_until(500.0);
  f.scheduler->set_power(0, 0.1);
  // Run long enough for several retargets to adapt to the new hash rate.
  f.net.queue().run_until(5000.0);
  EXPECT_NEAR(f.scheduler->current_mean_interval(), 5.0, 1.5);
  f.scheduler->stop();
}

TEST(MiningScheduler, RejectsBadConfig) {
  MiniNet<bitcoin::BitcoinNode> net(2, btc_params());
  std::vector<protocol::BaseNode*> miners{&net.node(0), &net.node(1)};
  EXPECT_THROW(MiningScheduler(net.queue(), miners, {0.5}, 10.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(MiningScheduler(net.queue(), miners, {0.5, 0.5}, 0.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(MiningScheduler(net.queue(), miners, {0.0, 0.0}, 10.0, Rng(1)),
               std::invalid_argument);
}

TEST(MiningScheduler, WinnersActuallyMine) {
  SchedulerFixture f(3, uniform_powers(3), 2.0);
  f.scheduler->start();
  f.net.queue().run_until(100.0);
  f.scheduler->stop();
  f.net.settle(20);
  std::uint64_t mined = 0;
  for (std::uint32_t i = 0; i < 3; ++i) mined += f.net.node(i).blocks_mined();
  EXPECT_EQ(mined, f.scheduler->wins());
  EXPECT_GT(f.net.node(0).tree().best_entry().pow_height, 0u);
}

}  // namespace
}  // namespace bng::sim
