// Parallel-in-time engine: the load-bearing property is bit-identical
// output. A sharded run must reproduce the serial engine's trace —
// same blocks, same times, same miners, same byte counts — for every
// shard count, on every topology/adversary/fault shape we support.
#include "sim/parallel_engine.hpp"

#include <gtest/gtest.h>

#include "net/fault_plan.hpp"
#include "sim/experiment.hpp"

namespace bng::sim {
namespace {

ExperimentConfig base_btc(std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin();
  cfg.params.block_interval = 20;
  cfg.params.max_block_size = 8000;
  cfg.num_nodes = 30;
  cfg.target_blocks = 20;
  cfg.drain_time = 30;
  cfg.seed = seed;
  return cfg;
}

ExperimentConfig base_ng(std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();
  cfg.params.block_interval = 40;
  cfg.params.microblock_interval = 4;
  cfg.params.max_microblock_size = 8000;
  cfg.num_nodes = 30;
  cfg.target_blocks = 20;
  cfg.drain_time = 30;
  cfg.seed = seed;
  return cfg;
}

/// Run `cfg` serially and with `shards`, assert the full generation trace
/// (the digest's underlying data) and the network byte counters agree
/// exactly. The sharded experiment lands in *out (when non-null) for
/// extra assertions; gtest ASSERTs force a void return type.
void expect_identical(ExperimentConfig cfg, std::uint32_t shards,
                      std::unique_ptr<Experiment>* out = nullptr) {
  cfg.shards = 1;
  Experiment serial(cfg);
  serial.run();

  cfg.shards = shards;
  auto parallel = std::make_unique<Experiment>(cfg);
  parallel->run();

  const auto& a = serial.trace().generated();
  const auto& b = parallel->trace().generated();
  ASSERT_EQ(a.size(), b.size()) << "shards=" << shards;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].block->id(), b[i].block->id()) << "index " << i;
    ASSERT_EQ(a[i].at, b[i].at) << "index " << i;  // bitwise: == on doubles
    ASSERT_EQ(a[i].miner, b[i].miner) << "index " << i;
  }
  EXPECT_EQ(serial.trace().pow_blocks(), parallel->trace().pow_blocks());
  EXPECT_EQ(serial.trace().micro_blocks(), parallel->trace().micro_blocks());
  EXPECT_EQ(serial.counted_blocks(), parallel->counted_blocks());
  EXPECT_EQ(serial.network().bytes_sent(), parallel->network().bytes_sent());
  EXPECT_EQ(serial.network().messages_sent(), parallel->network().messages_sent());
  EXPECT_EQ(serial.end_time(), parallel->end_time());
  if (out) *out = std::move(parallel);
}

TEST(ParallelEngine, BitIdenticalFlatBitcoin) {
  for (std::uint32_t shards : {2u, 4u}) {
    std::unique_ptr<Experiment> exp;
    expect_identical(base_btc(7), shards, &exp);
    ASSERT_NE(exp, nullptr);
    EXPECT_EQ(exp->effective_shards(), shards);
    ASSERT_NE(exp->parallel_stats(), nullptr);
    EXPECT_GT(exp->parallel_stats()->windows, 0u);
  }
}

TEST(ParallelEngine, BitIdenticalFlatNg) {
  for (std::uint32_t shards : {2u, 4u}) expect_identical(base_ng(3), shards);
}

TEST(ParallelEngine, BitIdenticalClustered) {
  auto cfg = base_btc(11);
  cfg.num_nodes = 64;
  cfg.clusters = 4;
  cfg.cluster_trunks = 4;
  for (std::uint32_t shards : {2u, 4u}) {
    std::unique_ptr<Experiment> exp;
    expect_identical(cfg, shards, &exp);
    ASSERT_NE(exp, nullptr);
    // Cross-cluster traffic exists, so lanes must have carried messages.
    ASSERT_NE(exp->parallel_stats(), nullptr);
    EXPECT_GT(exp->parallel_stats()->lane_messages, 0u);
  }
}

TEST(ParallelEngine, BitIdenticalSelfishAdversary) {
  auto cfg = base_btc(5);
  cfg.adversary.kind = AdversarySpec::Kind::kSelfish;
  cfg.adversary.node = 0;
  cfg.adversary.power_share = 0.30;
  for (std::uint32_t shards : {2u, 4u}) expect_identical(cfg, shards);
}

TEST(ParallelEngine, BitIdenticalNgEquivocate) {
  auto cfg = base_ng(9);
  cfg.adversary.kind = AdversarySpec::Kind::kEquivocate;
  cfg.adversary.node = 2;
  cfg.adversary.equivocate_every = 2;
  expect_identical(cfg, 2);
}

TEST(ParallelEngine, BitIdenticalChurnAndRetarget) {
  auto cfg = base_btc(13);
  cfg.retarget = chain::RetargetRule{10, 20.0, 4.0};
  cfg.churn.push_back({60.0, 4, false});
  cfg.churn.push_back({160.0, 4, true});
  std::unique_ptr<Experiment> exp;
  expect_identical(cfg, 2, &exp);
  ASSERT_NE(exp, nullptr);
  ASSERT_NE(exp->parallel_stats(), nullptr);
  EXPECT_GE(exp->parallel_stats()->mutations_applied, 2u);
}

TEST(ParallelEngine, BitIdenticalPartitionFault) {
  auto cfg = base_btc(17);
  net::FaultPlan::Partition cut;
  cut.at = 50.0;
  cut.heal_at = 120.0;
  for (NodeId i = 0; i < 15; ++i) cut.group.push_back(i);
  cfg.faults.partitions.push_back(cut);
  std::unique_ptr<Experiment> exp;
  expect_identical(cfg, 2, &exp);
  ASSERT_NE(exp, nullptr);
  ASSERT_NE(exp->parallel_stats(), nullptr);
  EXPECT_GE(exp->parallel_stats()->mutations_applied, 2u);  // cut + heal
}

// Satellite regression: a FaultPlan delay window on a cross-shard edge
// changes the minimum cross-shard latency mid-run. The window straddles
// many barriers (it is seconds wide; safe windows are sub-second), so the
// engine must re-derive its conservative lookahead when the delay lands
// AND when it reverts — the revert SHRINKS the minimum back, which would
// make stale windows unsafe.
TEST(ParallelEngine, DelayWindowStraddlingBarriersRecomputesLookahead) {
  auto cfg = base_btc(19);
  cfg.num_nodes = 32;
  cfg.clusters = 2;
  cfg.cluster_trunks = 4;

  // Probe the (deterministic, seed-derived) topology for a cross-shard
  // edge: with 2 clusters and 2 shards, the shard split is the cluster
  // split, so any trunk edge crossing the halves qualifies.
  NodeId a = kNoNode, b = kNoNode;
  {
    Experiment probe(cfg);
    probe.build();
    const auto& topo = probe.network().topology();
    for (NodeId u = 0; u < cfg.num_nodes && a == kNoNode; ++u) {
      for (NodeId v : topo.peers(u)) {
        if (topo.cluster_of(u) != topo.cluster_of(v)) {
          a = u;
          b = v;
          break;
        }
      }
    }
  }
  ASSERT_NE(a, kNoNode) << "clustered topology lost its trunks?";

  net::FaultPlan::LinkDelay window;
  window.at = 40.0;
  window.until = 150.0;
  window.a = a;
  window.b = b;
  window.extra = 2.5;
  cfg.faults.link_delays.push_back(window);

  std::unique_ptr<Experiment> exp;
  expect_identical(cfg, 2, &exp);
  ASSERT_NE(exp, nullptr);
  ASSERT_NE(exp->parallel_stats(), nullptr);
  EXPECT_GE(exp->parallel_stats()->lookahead_recomputes, 2u);  // apply + revert
  EXPECT_GE(exp->parallel_stats()->mutations_applied, 2u);
}

TEST(ParallelEngine, ShardsClampedToNodes) {
  auto cfg = base_btc(2);
  cfg.num_nodes = 6;
  cfg.min_degree = 2;
  cfg.target_blocks = 4;
  cfg.shards = 16;
  Experiment exp(cfg);
  exp.run();
  EXPECT_EQ(exp.effective_shards(), 6u);
}

TEST(ParallelEngine, ShardsClampedToClusters) {
  auto cfg = base_btc(2);
  cfg.num_nodes = 40;
  cfg.clusters = 2;
  cfg.target_blocks = 6;
  cfg.shards = 8;
  Experiment exp(cfg);
  exp.run();
  // A shard boundary must never split a cluster, so K caps at 2.
  EXPECT_EQ(exp.effective_shards(), 2u);
}

TEST(ParallelEngine, StatsAreCoherent) {
  auto cfg = base_btc(23);
  cfg.shards = 2;
  Experiment exp(cfg);
  exp.run();
  const ParallelStats* s = exp.parallel_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->shards, 2u);
  EXPECT_GT(s->windows, 0u);
  EXPECT_GT(s->window_min_s, 0.0);
  EXPECT_GE(s->window_avg_s(), s->window_min_s);
  EXPECT_GE(s->efficiency(), 0.0);
  EXPECT_LE(s->efficiency(), 1.0);
  EXPECT_EQ(s->shard_busy_ms.size(), 2u);
  EXPECT_EQ(s->shard_events.size(), 2u);
  EXPECT_GT(s->arena_local_bytes, 0u);
  EXPECT_GT(exp.events_executed(), 0u);
  // Engine-private registry surfaced its histograms/gauge.
  bool saw_stall = false, saw_local = false;
  for (const auto& [name, value] : s->metrics) {
    if (name.find("parallel_barrier_stall_ms") != std::string::npos) saw_stall = true;
    if (name.find("parallel_arena_local_bytes") != std::string::npos) saw_local = true;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_local);
}

TEST(ParallelEngine, ZeroTargetBlocksStopsImmediately) {
  auto cfg = base_btc(3);
  cfg.target_blocks = 0;
  cfg.drain_time = 5;
  cfg.shards = 2;
  Experiment exp(cfg);
  exp.run();
  EXPECT_EQ(exp.counted_blocks(), 0u);
}

}  // namespace
}  // namespace bng::sim
