#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bng::net {
namespace {

TEST(Topology, RandomMeetsMinDegree) {
  Rng rng(1);
  auto topo = Topology::random(100, 5, rng);
  for (NodeId n = 0; n < 100; ++n) EXPECT_GE(topo.peers(n).size(), 5u) << "node " << n;
}

TEST(Topology, RandomIsConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto topo = Topology::random(200, 5, rng);
    EXPECT_TRUE(topo.connected()) << "seed " << seed;
  }
}

TEST(Topology, EdgesAreSymmetric) {
  Rng rng(2);
  auto topo = Topology::random(50, 5, rng);
  for (NodeId a = 0; a < 50; ++a)
    for (NodeId b : topo.peers(a)) EXPECT_TRUE(topo.has_edge(b, a));
}

TEST(Topology, NoSelfLoopsOrDuplicates) {
  Rng rng(3);
  auto topo = Topology::random(80, 5, rng);
  for (NodeId a = 0; a < 80; ++a) {
    std::set<NodeId> uniq(topo.peers(a).begin(), topo.peers(a).end());
    EXPECT_EQ(uniq.size(), topo.peers(a).size()) << "duplicate edge at " << a;
    EXPECT_EQ(uniq.count(a), 0u) << "self loop at " << a;
  }
}

TEST(Topology, SmallDiameterForRandomGraph) {
  // Random 5-regular-ish graphs have diameter O(log n): for n=1000 expect < 8.
  Rng rng(4);
  auto topo = Topology::random(1000, 5, rng);
  EXPECT_LE(topo.eccentricity(0), 8u);
}

TEST(Topology, CompleteGraph) {
  auto topo = Topology::complete(10);
  EXPECT_EQ(topo.num_edges(), 45u);
  for (NodeId n = 0; n < 10; ++n) EXPECT_EQ(topo.peers(n).size(), 9u);
  EXPECT_EQ(topo.eccentricity(3), 1u);
}

TEST(Topology, LineGraph) {
  auto topo = Topology::line(10);
  EXPECT_EQ(topo.num_edges(), 9u);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.eccentricity(0), 9u);
  EXPECT_EQ(topo.eccentricity(5), 5u);
}

TEST(Topology, RejectsDegenerateInputs) {
  Rng rng(5);
  EXPECT_THROW(Topology::random(1, 5, rng), std::invalid_argument);
  EXPECT_THROW(Topology::random(10, 10, rng), std::invalid_argument);
}

TEST(Topology, DeterministicGivenSeed) {
  Rng a(42), b(42);
  auto t1 = Topology::random(60, 5, a);
  auto t2 = Topology::random(60, 5, b);
  for (NodeId n = 0; n < 60; ++n) EXPECT_EQ(t1.peers(n), t2.peers(n));
}

TEST(Topology, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  auto t1 = Topology::random(60, 5, a);
  auto t2 = Topology::random(60, 5, b);
  bool any_diff = false;
  for (NodeId n = 0; n < 60 && !any_diff; ++n) any_diff = t1.peers(n) != t2.peers(n);
  EXPECT_TRUE(any_diff);
}

class TopologySizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologySizeTest, ConnectedAcrossSizes) {
  Rng rng(99);
  auto topo = Topology::random(GetParam(), 5, rng);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.num_nodes(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySizeTest,
                         ::testing::Values(6, 10, 50, 100, 500, 1000));

}  // namespace
}  // namespace bng::net
