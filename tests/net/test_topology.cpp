#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bng::net {
namespace {

TEST(Topology, RandomMeetsMinDegree) {
  Rng rng(1);
  auto topo = Topology::random(100, 5, rng);
  for (NodeId n = 0; n < 100; ++n) EXPECT_GE(topo.peers(n).size(), 5u) << "node " << n;
}

TEST(Topology, RandomIsConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto topo = Topology::random(200, 5, rng);
    EXPECT_TRUE(topo.connected()) << "seed " << seed;
  }
}

TEST(Topology, EdgesAreSymmetric) {
  Rng rng(2);
  auto topo = Topology::random(50, 5, rng);
  for (NodeId a = 0; a < 50; ++a)
    for (NodeId b : topo.peers(a)) EXPECT_TRUE(topo.has_edge(b, a));
}

TEST(Topology, NoSelfLoopsOrDuplicates) {
  Rng rng(3);
  auto topo = Topology::random(80, 5, rng);
  for (NodeId a = 0; a < 80; ++a) {
    std::set<NodeId> uniq(topo.peers(a).begin(), topo.peers(a).end());
    EXPECT_EQ(uniq.size(), topo.peers(a).size()) << "duplicate edge at " << a;
    EXPECT_EQ(uniq.count(a), 0u) << "self loop at " << a;
  }
}

TEST(Topology, SmallDiameterForRandomGraph) {
  // Random 5-regular-ish graphs have diameter O(log n): for n=1000 expect < 8.
  Rng rng(4);
  auto topo = Topology::random(1000, 5, rng);
  EXPECT_LE(topo.eccentricity(0), 8u);
}

TEST(Topology, CompleteGraph) {
  auto topo = Topology::complete(10);
  EXPECT_EQ(topo.num_edges(), 45u);
  for (NodeId n = 0; n < 10; ++n) EXPECT_EQ(topo.peers(n).size(), 9u);
  EXPECT_EQ(topo.eccentricity(3), 1u);
}

TEST(Topology, LineGraph) {
  auto topo = Topology::line(10);
  EXPECT_EQ(topo.num_edges(), 9u);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.eccentricity(0), 9u);
  EXPECT_EQ(topo.eccentricity(5), 5u);
}

TEST(Topology, RejectsDegenerateInputs) {
  Rng rng(5);
  EXPECT_THROW(Topology::random(1, 5, rng), std::invalid_argument);
  EXPECT_THROW(Topology::random(10, 10, rng), std::invalid_argument);
}

TEST(Topology, DeterministicGivenSeed) {
  Rng a(42), b(42);
  auto t1 = Topology::random(60, 5, a);
  auto t2 = Topology::random(60, 5, b);
  for (NodeId n = 0; n < 60; ++n) EXPECT_EQ(t1.peers(n), t2.peers(n));
}

TEST(Topology, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  auto t1 = Topology::random(60, 5, a);
  auto t2 = Topology::random(60, 5, b);
  bool any_diff = false;
  for (NodeId n = 0; n < 60 && !any_diff; ++n) any_diff = t1.peers(n) != t2.peers(n);
  EXPECT_TRUE(any_diff);
}

// Clustered (two-level overlay) topology ------------------------------------

TEST(Topology, ClusteredIsConnectedAndMeetsMinDegree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto topo = Topology::clustered(1000, 10, 5, 8, rng);
    EXPECT_TRUE(topo.connected()) << "seed " << seed;
    for (NodeId n = 0; n < 1000; ++n)
      EXPECT_GE(topo.peers(n).size(), 5u) << "seed " << seed << " node " << n;
  }
}

TEST(Topology, ClusteredAssignsContiguousClusters) {
  Rng rng(7);
  auto topo = Topology::clustered(100, 4, 3, 2, rng);
  EXPECT_EQ(topo.num_clusters(), 4u);
  // Contiguous blocks: cluster ids are non-decreasing over node ids and
  // every cluster is non-empty.
  std::uint32_t prev = 0;
  std::set<std::uint32_t> seen;
  for (NodeId n = 0; n < 100; ++n) {
    EXPECT_GE(topo.cluster_of(n), prev);
    prev = topo.cluster_of(n);
    seen.insert(topo.cluster_of(n));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Topology, ClusteredEdgesAreMostlyIntraCluster) {
  Rng rng(11);
  auto topo = Topology::clustered(2000, 20, 6, 8, rng);
  std::size_t intra = 0, inter = 0;
  for (NodeId a = 0; a < 2000; ++a)
    for (NodeId b : topo.peers(a)) {
      if (a < b) (topo.cluster_of(a) == topo.cluster_of(b) ? intra : inter)++;
    }
  EXPECT_GT(intra, inter * 4);  // locality: the overwhelming majority is intra
  EXPECT_GT(inter, 0u);         // but trunks do exist
}

TEST(Topology, ClusteredDeterministicGivenSeed) {
  Rng a(42), b(42);
  auto t1 = Topology::clustered(300, 6, 4, 4, a);
  auto t2 = Topology::clustered(300, 6, 4, 4, b);
  for (NodeId n = 0; n < 300; ++n) {
    EXPECT_EQ(t1.peers(n), t2.peers(n));
    EXPECT_EQ(t1.cluster_of(n), t2.cluster_of(n));
  }
}

TEST(Topology, FlatTopologiesReportSingleCluster) {
  Rng rng(5);
  auto topo = Topology::random(50, 5, rng);
  EXPECT_EQ(topo.num_clusters(), 1u);
  for (NodeId n = 0; n < 50; ++n) EXPECT_EQ(topo.cluster_of(n), 0u);
}

TEST(Topology, ClusteredTwoClustersWork) {
  Rng rng(13);
  auto topo = Topology::clustered(40, 2, 3, 1, rng);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.num_clusters(), 2u);
}

class TopologySizeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopologySizeTest, ConnectedAcrossSizes) {
  Rng rng(99);
  auto topo = Topology::random(GetParam(), 5, rng);
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.num_nodes(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySizeTest,
                         ::testing::Values(6, 10, 50, 100, 500, 1000));

}  // namespace
}  // namespace bng::net
