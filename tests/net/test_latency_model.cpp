#include "net/latency_model.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace bng::net {
namespace {

TEST(LatencyModel, ConstantAlwaysSame) {
  auto model = LatencyModel::constant(0.05);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(model.sample(rng), 0.05);
  EXPECT_DOUBLE_EQ(model.mean(), 0.05);
}

TEST(LatencyModel, SamplesWithinBucketRanges) {
  auto model = LatencyModel::default_internet();
  Rng rng(2);
  const auto& buckets = model.buckets();
  const double lo = buckets.front().lo;
  const double hi = buckets.back().hi;
  for (int i = 0; i < 10000; ++i) {
    double s = model.sample(rng);
    EXPECT_GE(s, lo);
    EXPECT_LT(s, hi);
  }
}

TEST(LatencyModel, EmpiricalMeanMatchesAnalytic) {
  auto model = LatencyModel::default_internet();
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(model.sample(rng));
  EXPECT_NEAR(mean(samples), model.mean(), 0.002);
}

TEST(LatencyModel, DefaultInternetIsLongTailed) {
  auto model = LatencyModel::default_internet();
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(model.sample(rng));
  double p50 = percentile(samples, 50);
  double p99 = percentile(samples, 99);
  // Median around 100 ms, 99th percentile several times larger.
  EXPECT_GT(p50, 0.05);
  EXPECT_LT(p50, 0.20);
  EXPECT_GT(p99, 3.0 * p50);
}

TEST(LatencyModel, BucketWeightsRespected) {
  // A two-bucket model with 90/10 weights: ~90% of samples in bucket 1.
  LatencyModel model({{0.0, 1.0, 0.9}, {10.0, 11.0, 0.1}});
  Rng rng(5);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (model.sample(rng) < 5.0) ++low;
  EXPECT_NEAR(static_cast<double>(low) / n, 0.9, 0.01);
}

TEST(LatencyModel, RejectsEmptyAndInvalid) {
  EXPECT_THROW(LatencyModel({}), std::invalid_argument);
  EXPECT_THROW(LatencyModel({{1.0, 0.5, 1.0}}), std::invalid_argument);   // hi < lo
  EXPECT_THROW(LatencyModel({{0.0, 1.0, -1.0}}), std::invalid_argument);  // bad weight
  EXPECT_THROW(LatencyModel({{0.0, 1.0, 0.0}}), std::invalid_argument);   // zero total
}

TEST(LatencyModel, DeterministicGivenSeed) {
  auto model = LatencyModel::default_internet();
  Rng a(77), b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(a), model.sample(b));
}

}  // namespace
}  // namespace bng::net
