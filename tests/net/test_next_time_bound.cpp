// next_time_bound(): the conservative-window engine sizes safe windows
// from this bound, so it must never overshoot the true next event time
// (undershooting only shrinks a window, which is safe).
#include <gtest/gtest.h>

#include <limits>

#include "net/event_queue.hpp"

namespace bng::net {
namespace {

constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

TEST(NextTimeBound, EmptyQueueIsInfinite) {
  EventQueue q;
  EXPECT_EQ(q.next_time_bound(), kInf);
}

TEST(NextTimeBound, TracksEarliestPending) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.schedule_at(2.0, [] {});
  q.schedule_at(9.0, [] {});
  EXPECT_LE(q.next_time_bound(), 2.0);
  EXPECT_GT(q.next_time_bound(), 0.0);
}

TEST(NextTimeBound, NeverExceedsNextExecution) {
  EventQueue q;
  Seconds first_fired = -1;
  q.schedule_at(3.0, [&] { first_fired = q.now(); });
  const Seconds bound = q.next_time_bound();
  q.run_until(10.0);
  ASSERT_EQ(first_fired, 3.0);
  EXPECT_LE(bound, first_fired);
}

TEST(NextTimeBound, CancelledEntriesMayLowerButNotRaise) {
  EventQueue q;
  auto id = q.schedule_at(1.0, [] {});
  q.schedule_at(4.0, [] {});
  ASSERT_TRUE(q.cancel(id));
  // Lazy cancellation: the bound may still report 1.0 — that is the safe
  // direction. It must not exceed the genuine next event at 4.0.
  EXPECT_LE(q.next_time_bound(), 4.0);
}

TEST(NextTimeBound, AdvancesAsEventsDrain) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(6.0, [] {});
  q.run_until(2.0);
  const Seconds bound = q.next_time_bound();
  EXPECT_GT(bound, 2.0);
  EXPECT_LE(bound, 6.0);
  q.run_until(10.0);
  EXPECT_EQ(q.next_time_bound(), kInf);
}

}  // namespace
}  // namespace bng::net
