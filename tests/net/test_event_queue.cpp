#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bng::net {
namespace {

TEST(EventQueue, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInUsesRelativeTime) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(10.0, [&] {
    q.schedule_in(5.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(3.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 2);  // events at exactly t_end run
  EXPECT_EQ(q.now(), 2.0);
  q.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 10.0);  // advances to t_end even when idle
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto id = q.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.now(), 99.0);
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  q.run_all();
  EXPECT_EQ(q.events_executed(), 5u);
}

TEST(EventQueue, RunUntilDoesNotRegressTime) {
  EventQueue q;
  q.run_until(50.0);
  EXPECT_EQ(q.now(), 50.0);
  q.run_until(10.0);  // earlier bound: nothing happens, time keeps its value
  EXPECT_EQ(q.now(), 50.0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  double last = -1;
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    double t = static_cast<double>((i * 7919) % 1000);
    q.schedule_at(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  q.run_all();
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace bng::net
