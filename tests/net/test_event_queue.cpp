#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bng::net {
namespace {

TEST(EventQueue, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInUsesRelativeTime) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(10.0, [&] {
    q.schedule_in(5.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(3.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 2);  // events at exactly t_end run
  EXPECT_EQ(q.now(), 2.0);
  q.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.now(), 10.0);  // advances to t_end even when idle
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto id = q.schedule_at(1.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.now(), 99.0);
}

TEST(EventQueue, ExecutedCounter) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  q.run_all();
  EXPECT_EQ(q.events_executed(), 5u);
}

TEST(EventQueue, RunUntilDoesNotRegressTime) {
  EventQueue q;
  q.run_until(50.0);
  EXPECT_EQ(q.now(), 50.0);
  q.run_until(10.0);  // earlier bound: nothing happens, time keeps its value
  EXPECT_EQ(q.now(), 50.0);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  double last = -1;
  bool monotonic = true;
  for (int i = 0; i < 10000; ++i) {
    double t = static_cast<double>((i * 7919) % 1000);
    q.schedule_at(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  q.run_all();
  EXPECT_TRUE(monotonic);
}

// --- Regression guards for the lazy-queue rewrite ---------------------------

// FIFO tie-break must hold even when equal-timestamp events are scheduled in
// separate waves interleaved with execution (i.e. across internal run
// rebuilds), not just in one batch.
TEST(EventQueue, EqualTimesFifoAcrossWaves) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) q.schedule_at(100.0, [&order, i] { order.push_back(i); });
  q.run_until(50.0);  // force internal state churn before the second wave
  for (int i = 1000; i < 2000; ++i)
    q.schedule_at(100.0, [&order, i] { order.push_back(i); });
  q.run_all();
  ASSERT_EQ(order.size(), 2000u);
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(order[i], i);
}

// An event scheduled (from inside a callback) earlier than already-pending
// events must still fire in exact time order.
TEST(EventQueue, LateShortDelayInsertKeepsOrder) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 1; i <= 2000; ++i) {
    const double t = static_cast<double>(i);
    q.schedule_at(t, [&q, &fired, t] {
      fired.push_back(t);
      // Jump the queue: lands between this event and the next integer tick.
      if (fired.size() == 1) q.schedule_in(0.5, [&fired, t] { fired.push_back(t + 0.5); });
    });
  }
  q.run_all();
  ASSERT_EQ(fired.size(), 2001u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired[1], 1.5);
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  int fired = 0;
  auto id = q.schedule_at(1.0, [&] { ++fired; });
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.cancel(id));
}

// A fired/cancelled event's internal storage is recycled; a stale id must
// not cancel the event that now occupies the same storage.
TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  int first = 0;
  int second = 0;
  auto id1 = q.schedule_at(1.0, [&] { ++first; });
  q.run_all();
  auto id2 = q.schedule_at(2.0, [&] { ++second; });
  EXPECT_FALSE(q.cancel(id1));  // stale handle
  q.run_all();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
  EXPECT_TRUE(id1 != id2);
}

// Cancelling the currently-executing event from its own callback is a no-op.
TEST(EventQueue, SelfCancelDuringExecutionFails) {
  EventQueue q;
  bool cancel_result = true;
  std::uint64_t id = 0;
  id = q.schedule_at(1.0, [&] { cancel_result = q.cancel(id); });
  q.run_all();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(q.events_executed(), 1u);
}

TEST(EventQueue, MassCancellationDrainsClean) {
  EventQueue q;
  int fired = 0;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10000; ++i)
    ids.push_back(q.schedule_at(static_cast<double>(i % 100), [&] { ++fired; }));
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(q.cancel(ids[i]));
  q.run_all();
  EXPECT_EQ(fired, 5000);
  EXPECT_EQ(q.events_executed(), 5000u);
  EXPECT_EQ(q.pending(), 0u);
}

// Differential stress test: a mixed schedule/cancel/run workload must replay
// in exactly the order of a naive reference model (sorted by (time, seq)).
TEST(EventQueue, DifferentialAgainstReferenceModel) {
  struct RefEvent {
    double at;
    std::uint64_t seq;
    bool cancelled = false;
  };
  EventQueue q;
  std::vector<RefEvent> ref;
  std::vector<std::uint64_t> fired;           // seqs in execution order
  std::vector<std::uint64_t> ids;             // queue ids by ref index
  std::uint64_t rng = 0x243f6a8885a308d3ull;  // deterministic LCG
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  std::uint64_t seq = 0;
  double window_start = 0;
  for (int round = 0; round < 50; ++round) {
    // Schedule a burst with clustered times (forces equal-time tie-breaks).
    for (int i = 0; i < 200; ++i) {
      const double at = window_start + static_cast<double>(next() % 40);
      const std::uint64_t s = seq++;
      ids.push_back(q.schedule_at(at, [&fired, s] { fired.push_back(s); }));
      ref.push_back({at, s});
    }
    // Cancel a random half of the still-pending events.
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (!ref[i].cancelled && ref[i].at > q.now() && next() % 4 == 0) {
        const bool ok = q.cancel(ids[i]);
        if (ok) ref[i].cancelled = true;
      }
    }
    // Advance partway.
    window_start += 20.0;
    q.run_until(window_start);
  }
  q.run_all();

  std::vector<RefEvent> expected;
  for (const auto& e : ref)
    if (!e.cancelled) expected.push_back(e);
  std::sort(expected.begin(), expected.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(fired[i], expected[i].seq);
}

// Far-future spill/refill differential: delays spanning eight orders of
// magnitude force every calendar path at once — near-term bucket inserts,
// overflow-heap spills, window slides, epoch restarts with width retunes —
// interleaved with cancels and equal-time bursts. Execution order must still
// match the naive (time, seq) reference exactly.
TEST(EventQueue, DifferentialFarFutureSpillRefill) {
  struct RefEvent {
    double at;
    std::uint64_t seq;
    bool cancelled = false;
  };
  EventQueue q;
  std::vector<RefEvent> ref;
  std::vector<std::uint64_t> fired;
  std::vector<std::uint64_t> ids;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  std::uint64_t seq = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 100; ++i) {
      // Magnitude 10^0 .. 10^7 delays, plus exact collisions every 5th event.
      const double mag = std::pow(10.0, static_cast<double>(next() % 8));
      double at = q.now() + mag * (1.0 + static_cast<double>(next() % 97) / 97.0);
      if (i % 5 == 0) at = q.now() + 64.0;  // same-timestamp FIFO pressure
      const std::uint64_t s = seq++;
      ids.push_back(q.schedule_at(at, [&fired, s] { fired.push_back(s); }));
      ref.push_back({at, s});
    }
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (!ref[i].cancelled && ref[i].at > q.now() && next() % 5 == 0 &&
          q.cancel(ids[i]))
        ref[i].cancelled = true;
    }
    // Drain far enough to pull overflow entries back through epoch restarts.
    q.run_until(q.now() + std::pow(10.0, static_cast<double>(next() % 7)));
  }
  q.run_all();

  std::vector<RefEvent> expected;
  for (const auto& e : ref)
    if (!e.cancelled) expected.push_back(e);
  std::sort(expected.begin(), expected.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(fired[i], expected[i].seq);
}

// --- consume_if_next: the burst-drain primitive ------------------------------

TEST(EventQueue, ConsumeIfNextConsumesHeadWithoutInvoking) {
  EventQueue q;
  int fired = 0;
  auto id = q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.consume_if_next(id));
  EXPECT_EQ(fired, 0);  // consumed, never invoked
  EXPECT_EQ(q.now(), 2.0);
  EXPECT_EQ(q.events_executed(), 1u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.cancel(id));  // the handle is spent
}

TEST(EventQueue, ConsumeIfNextRefusesWhenEarlierEventPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  auto id = q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_FALSE(q.consume_if_next(id));
  q.run_all();
  EXPECT_EQ(fired, 2);  // refusal left both events intact
}

TEST(EventQueue, ConsumeIfNextRefusesSameTimeEarlierSeq) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  auto id = q.schedule_at(1.0, [] {});
  EXPECT_FALSE(q.consume_if_next(id));  // FIFO: the first scheduling wins
}

TEST(EventQueue, ConsumeIfNextRefusesCancelledId) {
  EventQueue q;
  auto id = q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.consume_if_next(id));
}

TEST(EventQueue, ConsumeIfNextHonorsRunUntilHorizon) {
  // Inside a run_until(t) callback, a re-armed event past t must be refused
  // (exactly what pop_one's limit would enforce), while one inside the
  // horizon may be consumed.
  EventQueue q;
  std::vector<int> log;
  q.schedule_at(1.0, [&] {
    auto late = q.schedule_at(5.0, [&] { log.push_back(5); });
    EXPECT_FALSE(q.consume_if_next(late));
    auto soon = q.schedule_at(1.5, [&] { log.push_back(1); });
    EXPECT_TRUE(q.consume_if_next(soon));
  });
  q.run_until(2.0);
  EXPECT_EQ(q.now(), 2.0);
  q.run_all();
  EXPECT_EQ(log, (std::vector<int>{5}));  // the consumed 1.5 never fired
}

}  // namespace
}  // namespace bng::net
