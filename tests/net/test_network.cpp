#include "net/network.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

namespace bng::net {
namespace {

struct TestMessage : Message {
  std::size_t size;
  int tag;
  TestMessage(std::size_t s, int t) : size(s), tag(t) {}
  [[nodiscard]] std::size_t wire_size() const override { return size; }
  [[nodiscard]] const char* type_name() const override { return "test"; }
};

struct Recorder : INode {
  struct Received {
    NodeId from;
    int tag;
    Seconds at;
  };
  std::vector<Received> received;
  EventQueue* queue = nullptr;

  void on_message(NodeId from, const MessagePtr& msg) override {
    auto tm = std::dynamic_pointer_cast<const TestMessage>(msg);
    received.push_back({from, tm ? tm->tag : -1, queue->now()});
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topo_(Topology::line(3)),
        rng_(1),
        net_(queue_, topo_, LatencyModel::constant(0.1), LinkParams{100'000.0, 0}, rng_) {
    for (NodeId i = 0; i < 3; ++i) {
      nodes_.emplace_back();
    }
    for (NodeId i = 0; i < 3; ++i) {
      nodes_[i].queue = &queue_;
      net_.attach(i, &nodes_[i]);
    }
  }

  EventQueue queue_;
  Topology topo_;
  Rng rng_;
  Network net_;
  std::deque<Recorder> nodes_;
};

TEST_F(NetworkTest, DeliversWithLatencyPlusTransfer) {
  // 1250 bytes at 100 kbit/s = 0.1 s transfer, + 0.1 s latency.
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 7));
  queue_.run_all();
  ASSERT_EQ(nodes_[1].received.size(), 1u);
  EXPECT_EQ(nodes_[1].received[0].from, 0u);
  EXPECT_EQ(nodes_[1].received[0].tag, 7);
  EXPECT_NEAR(nodes_[1].received[0].at, 0.2, 1e-9);
}

TEST_F(NetworkTest, NonNeighborSendThrows) {
  EXPECT_THROW(net_.send(0, 2, std::make_shared<TestMessage>(10, 0)), std::invalid_argument);
}

TEST_F(NetworkTest, LinkSerializesBackToBackMessages) {
  // Two 1250-byte messages on the same link: the second waits for the first.
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 1));
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 2));
  queue_.run_all();
  ASSERT_EQ(nodes_[1].received.size(), 2u);
  EXPECT_NEAR(nodes_[1].received[0].at, 0.2, 1e-9);
  EXPECT_NEAR(nodes_[1].received[1].at, 0.3, 1e-9);  // queued behind the first
  EXPECT_EQ(nodes_[1].received[1].tag, 2);
}

TEST_F(NetworkTest, OppositeDirectionsDoNotContend) {
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 1));
  net_.send(1, 0, std::make_shared<TestMessage>(1250, 2));
  queue_.run_all();
  ASSERT_EQ(nodes_[0].received.size(), 1u);
  ASSERT_EQ(nodes_[1].received.size(), 1u);
  EXPECT_NEAR(nodes_[0].received[0].at, 0.2, 1e-9);
  EXPECT_NEAR(nodes_[1].received[0].at, 0.2, 1e-9);
}

TEST_F(NetworkTest, DistinctLinksDoNotContend) {
  net_.send(1, 0, std::make_shared<TestMessage>(1250, 1));
  net_.send(1, 2, std::make_shared<TestMessage>(1250, 2));
  queue_.run_all();
  EXPECT_NEAR(nodes_[0].received[0].at, 0.2, 1e-9);
  EXPECT_NEAR(nodes_[2].received[0].at, 0.2, 1e-9);
}

TEST_F(NetworkTest, LargerMessagesTakeProportionallyLonger) {
  net_.send(0, 1, std::make_shared<TestMessage>(12500, 1));  // 1 s transfer
  queue_.run_all();
  EXPECT_NEAR(nodes_[1].received[0].at, 1.1, 1e-9);
}

TEST_F(NetworkTest, PerMessageOverheadCounted) {
  Rng rng(2);
  Network overhead_net(queue_, topo_, LatencyModel::constant(0.0),
                       LinkParams{100'000.0, 1250}, rng);
  Recorder sink;
  sink.queue = &queue_;
  overhead_net.attach(0, &sink);
  overhead_net.attach(1, &sink);
  overhead_net.send(0, 1, std::make_shared<TestMessage>(0, 1));  // only overhead
  queue_.run_all();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_NEAR(sink.received[0].at, 0.1, 1e-9);
}

TEST_F(NetworkTest, OfflineNodeDropsTraffic) {
  net_.set_offline(1, true);
  net_.send(0, 1, std::make_shared<TestMessage>(100, 1));
  queue_.run_all();
  EXPECT_TRUE(nodes_[1].received.empty());
  net_.set_offline(1, false);
  net_.send(0, 1, std::make_shared<TestMessage>(100, 2));
  queue_.run_all();
  EXPECT_EQ(nodes_[1].received.size(), 1u);
}

TEST_F(NetworkTest, OfflineSenderDropsTraffic) {
  net_.set_offline(0, true);
  net_.send(0, 1, std::make_shared<TestMessage>(100, 1));
  queue_.run_all();
  EXPECT_TRUE(nodes_[1].received.empty());
}

TEST_F(NetworkTest, ByteAndMessageCounters) {
  net_.send(0, 1, std::make_shared<TestMessage>(100, 1));
  net_.send(1, 2, std::make_shared<TestMessage>(50, 2));
  EXPECT_EQ(net_.messages_sent(), 2u);
  EXPECT_EQ(net_.bytes_sent(), 150u);  // overhead configured as 0 in fixture
}

TEST_F(NetworkTest, EdgeLatencySymmetricAndStable) {
  EXPECT_DOUBLE_EQ(net_.edge_latency(0, 1), net_.edge_latency(1, 0));
  EXPECT_THROW(net_.edge_latency(0, 2), std::invalid_argument);
}

// Regression guards for the flat-array (CSR) rewrite ------------------------

// A link must serialize many messages in exact send order, with each
// transfer starting when the previous one finishes.
TEST_F(NetworkTest, LinkSerializesLongTrainInOrder) {
  constexpr int kTrain = 50;
  for (int i = 0; i < kTrain; ++i) net_.send(0, 1, std::make_shared<TestMessage>(1250, i));
  queue_.run_all();
  ASSERT_EQ(nodes_[1].received.size(), static_cast<std::size_t>(kTrain));
  for (int i = 0; i < kTrain; ++i) {
    EXPECT_EQ(nodes_[1].received[i].tag, i);
    // 0.1 s transfer each, serialized, + 0.1 s propagation.
    EXPECT_NEAR(nodes_[1].received[i].at, 0.1 * (i + 1) + 0.1, 1e-9);
  }
}

// Event trains: one scheduled delivery event per busy link, however many
// messages ride it. The pending-event set must be O(active links), not
// O(in-flight messages).
TEST_F(NetworkTest, PendingEventsBoundedByActiveLinks) {
  constexpr int kPerLink = 40;
  for (int i = 0; i < kPerLink; ++i) {
    net_.send(0, 1, std::make_shared<TestMessage>(1250, i));        // link 0->1
    net_.send(1, 0, std::make_shared<TestMessage>(1250, 100 + i));  // link 1->0
    net_.send(1, 2, std::make_shared<TestMessage>(1250, 200 + i));  // link 1->2
  }
  EXPECT_EQ(net_.messages_in_flight(), 3u * kPerLink);
  EXPECT_EQ(net_.active_links(), 3u);
  // One event per active link; not one per message.
  EXPECT_EQ(queue_.pending(), 3u);
  queue_.run_all();
  EXPECT_EQ(net_.messages_in_flight(), 0u);
  EXPECT_EQ(net_.active_links(), 0u);
  ASSERT_EQ(nodes_[1].received.size(), static_cast<std::size_t>(kPerLink));
  ASSERT_EQ(nodes_[0].received.size(), static_cast<std::size_t>(kPerLink));
  ASSERT_EQ(nodes_[2].received.size(), static_cast<std::size_t>(kPerLink));
  for (int i = 0; i < kPerLink; ++i) {
    EXPECT_EQ(nodes_[1].received[i].tag, i);  // FIFO per link
    EXPECT_EQ(nodes_[0].received[i].tag, 100 + i);
    EXPECT_EQ(nodes_[2].received[i].tag, 200 + i);
  }
}

// A node going offline mid-train drops the queued remainder at delivery
// time (same per-message semantics as the per-event implementation), and
// the link drains cleanly for later traffic.
TEST_F(NetworkTest, OfflineMidTrainDropsQueuedMessages) {
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 1));  // arrives at 0.2
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 2));  // arrives at 0.3
  queue_.run_until(0.25);
  ASSERT_EQ(nodes_[1].received.size(), 1u);
  net_.set_offline(1, true);
  queue_.run_all();
  EXPECT_EQ(nodes_[1].received.size(), 1u);  // second message dropped
  EXPECT_EQ(net_.messages_in_flight(), 0u);
  EXPECT_EQ(net_.active_links(), 0u);
  net_.set_offline(1, false);
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 3));
  queue_.run_all();
  ASSERT_EQ(nodes_[1].received.size(), 2u);
  EXPECT_EQ(nodes_[1].received[1].tag, 3);
}

// A handler replying instantly from inside a delivery (the inv -> getdata
// pattern) must not disturb the serving link's train.
TEST_F(NetworkTest, ReplyFromHandlerDoesNotDisturbTrain) {
  struct Replier : INode {
    Network* net = nullptr;
    std::vector<int> tags;
    void on_message(NodeId from, const MessagePtr& msg) override {
      tags.push_back(static_cast<const TestMessage&>(*msg).tag);
      if (tags.size() == 1) net->send(1, from, std::make_shared<TestMessage>(10, 99));
    }
  };
  Replier replier;
  replier.net = &net_;
  net_.attach(1, &replier);
  for (int i = 0; i < 5; ++i) net_.send(0, 1, std::make_shared<TestMessage>(1250, i));
  queue_.run_all();
  ASSERT_EQ(replier.tags.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(replier.tags[i], i);
  ASSERT_EQ(nodes_[0].received.size(), 1u);  // the reply came back
  EXPECT_EQ(nodes_[0].received[0].tag, 99);
}

// Fast-path counters: a send on an idle link delivers directly (no FIFO),
// while messages queued behind it drain as a burst train.
TEST_F(NetworkTest, IdleLinkSendsCountAsDirectDeliveries) {
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 1));  // idle link: direct
  queue_.run_all();
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 2));  // idle again: direct
  queue_.run_all();
  EXPECT_EQ(net_.direct_deliveries(), 2u);
  EXPECT_EQ(net_.burst_drained(), 0u);
  ASSERT_EQ(nodes_[1].received.size(), 2u);
  EXPECT_NEAR(nodes_[1].received[0].at, 0.2, 1e-9);  // same timing as the slow path
}

TEST_F(NetworkTest, BusyLinkTrainCountsBurstDrains) {
  constexpr int kTrain = 8;
  for (int i = 0; i < kTrain; ++i) net_.send(0, 1, std::make_shared<TestMessage>(1250, i));
  queue_.run_all();
  // First message rode the direct path; the 7 queued behind it drained as
  // consecutive head events on the same link.
  EXPECT_EQ(net_.direct_deliveries(), 1u);
  EXPECT_EQ(net_.burst_drained(), static_cast<std::uint64_t>(kTrain - 1));
  ASSERT_EQ(nodes_[1].received.size(), static_cast<std::size_t>(kTrain));
  for (int i = 0; i < kTrain; ++i) EXPECT_EQ(nodes_[1].received[i].tag, i);
}

TEST_F(NetworkTest, FastPathPreservesTimingAcrossIdleGaps) {
  // Burst, drain to idle, then another send: the second burst must start
  // from the link-idle state, not from a stale last-arrival clamp.
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 1));
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 2));
  queue_.run_all();
  net_.send(0, 1, std::make_shared<TestMessage>(1250, 3));
  queue_.run_all();
  ASSERT_EQ(nodes_[1].received.size(), 3u);
  EXPECT_NEAR(nodes_[1].received[0].at, 0.2, 1e-9);
  EXPECT_NEAR(nodes_[1].received[1].at, 0.3, 1e-9);
  // Third send departs at 0.3 (link free), arrives 0.3 + 0.1 + 0.1.
  EXPECT_NEAR(nodes_[1].received[2].at, 0.5, 1e-9);
}

// peers() must keep Topology's adjacency order — protocol broadcast order
// (and therefore the whole deterministic replay) depends on it.
TEST(NetworkStandalone, PeersKeepTopologyOrder) {
  Rng topo_rng(7);
  auto topo = Topology::random(50, 5, topo_rng);
  EventQueue queue;
  Rng rng(8);
  Network net(queue, topo, LatencyModel::constant(0.01), LinkParams{1e6, 0}, rng);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) EXPECT_EQ(net.peers(v), topo.peers(v));
}

// Every edge of a random topology must resolve, in both directions, with the
// same latency; non-edges must throw.
TEST(NetworkStandalone, AllEdgesResolveSymmetrically) {
  Rng topo_rng(11);
  auto topo = Topology::random(64, 5, topo_rng);
  EventQueue queue;
  Rng rng(12);
  Network net(queue, topo, LatencyModel::default_internet(), LinkParams{1e6, 0}, rng);
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b : topo.peers(a)) {
      EXPECT_DOUBLE_EQ(net.edge_latency(a, b), net.edge_latency(b, a));
      EXPECT_GT(net.edge_latency(a, b), 0.0);
    }
    for (NodeId b = 0; b < topo.num_nodes(); ++b) {
      if (b == a || topo.has_edge(a, b)) continue;
      EXPECT_THROW((void)net.edge_latency(a, b), std::invalid_argument);
    }
  }
}

TEST(NetworkStandalone, UnattachedRecipientThrows) {
  EventQueue queue;
  Rng rng(3);
  auto topo = Topology::line(2);
  Network net(queue, topo, LatencyModel::constant(0.0), LinkParams{1e9, 0}, rng);
  Recorder a;
  a.queue = &queue;
  net.attach(0, &a);
  net.send(0, 1, std::make_shared<TestMessage>(1, 1));
  EXPECT_THROW(queue.run_all(), std::logic_error);
}

}  // namespace
}  // namespace bng::net
