// The fault layer: scheduled partitions / link delays / eclipses, their
// composition, and the hard zero-cost guarantee for fault-free runs.
#include "net/fault_plan.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/event_queue.hpp"
#include "net/latency_model.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace bng::net {
namespace {

struct CountingSink : INode {
  std::vector<std::pair<NodeId, Seconds>> received;
  EventQueue* queue = nullptr;
  void on_message(NodeId from, const MessagePtr&) override {
    received.emplace_back(from, queue->now());
  }
};

struct PingMessage : Message {
  [[nodiscard]] std::size_t wire_size() const override { return 100; }
  [[nodiscard]] const char* type_name() const override { return "ping"; }
};

/// Fully-connected 4-node fixture with constant latency.
struct Net4 {
  Net4() : rng(7), topo(Topology::complete(4)) {
    net = std::make_unique<Network>(queue, topo, LatencyModel::constant(0.1),
                                    LinkParams{1e6, 0}, rng);
    sinks.resize(4);
    for (NodeId i = 0; i < 4; ++i) {
      sinks[i].queue = &queue;
      net->attach(i, &sinks[i]);
    }
  }
  EventQueue queue;
  Rng rng;
  Topology topo;
  std::unique_ptr<Network> net;
  std::vector<CountingSink> sinks;
};

TEST(FaultPlan, EmptyPlanSchedulesNothing) {
  Net4 f;
  const std::size_t before = f.queue.pending();
  schedule_faults(*f.net, FaultPlan{});
  EXPECT_EQ(f.queue.pending(), before);
}

TEST(FaultPlan, PartitionDropsCrossEdgesAndHeals) {
  Net4 f;
  FaultPlan plan;
  plan.partitions.push_back(FaultPlan::Partition{1.0, 2.0, {0, 1}});
  schedule_faults(*f.net, plan);

  // Before the cut: 0 -> 2 flows.
  f.net->send(0, 2, std::make_shared<PingMessage>());
  f.queue.run_until(0.5);
  EXPECT_EQ(f.sinks[2].received.size(), 1u);

  // During the cut: cross-group drops, intra-group flows.
  f.queue.run_until(1.5);
  f.net->send(0, 2, std::make_shared<PingMessage>());
  f.net->send(2, 1, std::make_shared<PingMessage>());
  f.net->send(0, 1, std::make_shared<PingMessage>());
  f.net->send(3, 2, std::make_shared<PingMessage>());
  f.queue.run_until(1.9);
  EXPECT_EQ(f.sinks[2].received.size(), 2u);  // only 3 -> 2 got through
  EXPECT_EQ(f.sinks[1].received.size(), 1u);  // only 0 -> 1 got through

  // After healing everything flows again.
  f.queue.run_until(2.5);
  f.net->send(0, 2, std::make_shared<PingMessage>());
  f.queue.run_until(3.0);
  EXPECT_EQ(f.sinks[2].received.size(), 3u);
}

TEST(FaultPlan, InFlightMessagesSurviveTheCut) {
  Net4 f;
  FaultPlan plan;
  plan.partitions.push_back(FaultPlan::Partition{0.05, 2.0, {0}});
  schedule_faults(*f.net, plan);
  f.net->send(0, 1, std::make_shared<PingMessage>());  // sent before the cut
  f.queue.run_until(1.0);
  EXPECT_EQ(f.sinks[1].received.size(), 1u);  // arrival ~0.1s, mid-partition
}

TEST(FaultPlan, EclipseIsolatesBothDirections) {
  Net4 f;
  FaultPlan plan;
  plan.eclipses.push_back(FaultPlan::Eclipse{1.0, 2.0, 3});
  schedule_faults(*f.net, plan);
  f.queue.run_until(1.1);
  f.net->send(3, 0, std::make_shared<PingMessage>());
  f.net->send(0, 3, std::make_shared<PingMessage>());
  f.net->send(0, 1, std::make_shared<PingMessage>());
  f.queue.run_until(1.9);
  EXPECT_TRUE(f.sinks[3].received.empty());
  EXPECT_TRUE(f.sinks[0].received.empty());
  EXPECT_EQ(f.sinks[1].received.size(), 1u);
  f.queue.run_until(2.1);
  f.net->send(3, 0, std::make_shared<PingMessage>());
  f.queue.run_until(2.6);
  EXPECT_EQ(f.sinks[0].received.size(), 1u);
}

TEST(FaultPlan, LinkDelayWindowAddsAndRemovesLatency) {
  Net4 f;
  FaultPlan plan;
  plan.link_delays.push_back(FaultPlan::LinkDelay{1.0, 2.0, 0, 1, 3.0});
  schedule_faults(*f.net, plan);

  f.queue.run_until(1.1);
  f.net->send(0, 1, std::make_shared<PingMessage>());  // inside the window
  f.queue.run_until(10.0);
  f.net->send(0, 1, std::make_shared<PingMessage>());  // after it closed
  f.queue.run_until(20.0);
  ASSERT_EQ(f.sinks[1].received.size(), 2u);
  // Inside the window: ~1.1 + transfer + (0.1 + 3.0). After it: base latency.
  EXPECT_NEAR(f.sinks[1].received[0].second, 4.2, 0.01);
  EXPECT_NEAR(f.sinks[1].received[1].second, 10.1, 0.01);
}

TEST(FaultPlan, HealingDelayNeverReordersABusyLink) {
  // A message sent inside the delay window is still in flight when the
  // window closes; one sent just after computes a smaller raw latency. The
  // link is store-and-forward: delivery order must hold (the later message
  // is clamped behind the head, not delivered first).
  Net4 f;
  FaultPlan plan;
  plan.link_delays.push_back(FaultPlan::LinkDelay{1.0, 2.0, 0, 1, 5.0});
  schedule_faults(*f.net, plan);
  f.queue.run_until(1.5);
  f.net->send(0, 1, std::make_shared<PingMessage>());  // arrives ~6.6
  f.queue.run_until(2.5);
  f.net->send(0, 1, std::make_shared<PingMessage>());  // raw arrival ~2.6
  f.queue.run_until(10.0);
  ASSERT_EQ(f.sinks[1].received.size(), 2u);
  EXPECT_LE(f.sinks[1].received[0].second, f.sinks[1].received[1].second);
  EXPECT_NEAR(f.sinks[1].received[0].second, 6.6, 0.01);
}

TEST(FaultPlan, OverlappingFaultsComposeOnSharedEdges) {
  Net4 f;
  // An eclipse of node 0 inside a partition that also cuts node 0's edges:
  // the eclipse healing first must not unblock the partition's cut.
  FaultPlan plan;
  plan.partitions.push_back(FaultPlan::Partition{1.0, 4.0, {0}});
  plan.eclipses.push_back(FaultPlan::Eclipse{1.5, 2.0, 0});
  schedule_faults(*f.net, plan);
  f.queue.run_until(2.5);  // eclipse healed, partition still active
  f.net->send(0, 1, std::make_shared<PingMessage>());
  f.queue.run_until(3.5);
  EXPECT_TRUE(f.sinks[1].received.empty());
  f.queue.run_until(4.5);  // partition healed too
  f.net->send(0, 1, std::make_shared<PingMessage>());
  f.queue.run_until(5.0);
  EXPECT_EQ(f.sinks[1].received.size(), 1u);
}

TEST(FaultPlan, ValidatesNodesEagerly) {
  Net4 f;
  FaultPlan bad_partition;
  bad_partition.partitions.push_back(FaultPlan::Partition{1.0, 2.0, {99}});
  EXPECT_THROW(schedule_faults(*f.net, bad_partition), std::invalid_argument);
  FaultPlan bad_eclipse;
  bad_eclipse.eclipses.push_back(FaultPlan::Eclipse{1.0, 2.0, 99});
  EXPECT_THROW(schedule_faults(*f.net, bad_eclipse), std::invalid_argument);
  FaultPlan bad_delay;
  bad_delay.link_delays.push_back(FaultPlan::LinkDelay{1.0, 2.0, 0, 99, 1.0});
  EXPECT_THROW(schedule_faults(*f.net, bad_delay), std::invalid_argument);
  // A negative extra that would push the 0.1s base latency below zero must
  // be rejected at schedule time, not explode mid-run from the callback.
  FaultPlan negative_delay;
  negative_delay.link_delays.push_back(FaultPlan::LinkDelay{1.0, 2.0, 0, 1, -0.2});
  EXPECT_THROW(schedule_faults(*f.net, negative_delay), std::invalid_argument);
  EXPECT_NEAR(f.net->edge_latency(0, 1), 0.1, 1e-9);  // untouched
}

TEST(FaultPlan, EmptyPlanLeavesTrafficBitIdentical) {
  // The zero-cost guarantee, witnessed end-to-end: the same gossip burst
  // through a network with an empty FaultPlan scheduled produces identical
  // event counts, byte counts, and delivery times as one with no plan at
  // all, at every step.
  auto run = [](bool install_empty_plan) {
    Net4 f;
    if (install_empty_plan) schedule_faults(*f.net, FaultPlan{});
    for (int round = 0; round < 8; ++round) {
      for (NodeId a = 0; a < 4; ++a)
        for (NodeId b : f.net->peers(a)) f.net->send(a, b, std::make_shared<PingMessage>());
      f.queue.run_until(f.queue.now() + 0.05);
    }
    f.queue.run_all();
    std::vector<std::pair<NodeId, Seconds>> all;
    for (const auto& s : f.sinks)
      all.insert(all.end(), s.received.begin(), s.received.end());
    return std::make_tuple(f.net->bytes_sent(), f.net->messages_sent(), all);
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace bng::net
