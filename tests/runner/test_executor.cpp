// The pluggable execution substrate: the process pool must be
// indistinguishable — byte for byte — from the in-process thread pool, for
// any width, including across worker crashes.
//
// These tests run the fork-only worker mode (ProcessPoolOptions.worker_argv
// empty): children inherit the test binary's scenario registry and run
// worker_main directly, exercising the full handshake / job / record framing
// over real sockets and real processes. The exec'd `ngsim --worker` path is
// the same protocol and is covered by CI's --procs vs --jobs diff.
#include <gtest/gtest.h>

#include <mutex>

#include "runner/emit.hpp"
#include "runner/executor.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace bng::runner {
namespace {

/// A 2-point Bitcoin mini sweep, registered so process-pool workers can
/// rebuild it from its name.
Scenario make_exec_mini(const RunKnobs&) {
  Scenario s;
  s.name = "exec_mini";
  s.description = "process-pool unit-test sweep";
  s.seed_base = 540;
  s.base.num_nodes = 16;
  s.base.target_blocks = 4;
  s.base.drain_time = 20;
  s.base.params = chain::Params::bitcoin();
  s.base.params.max_block_size = 4000;
  Axis axis{"block_interval", {}};
  for (double interval : {8.0, 15.0}) {
    axis.values.push_back(AxisValue{std::to_string(interval) + "s", interval,
                                    [interval](sim::ExperimentConfig& cfg) {
                                      cfg.params.block_interval = interval;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  s.extra = [](const sim::Experiment&, NamedValues& v) {
    // Hooks are lambdas and cannot cross the pipe; they survive because the
    // worker re-instantiates the scenario from the registry. This marker
    // proves the worker-side hook actually ran.
    v.emplace_back("hook_ran", 1.0);
  };
  return s;
}

Scenario registered_mini() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_scenario("exec_mini", "process-pool unit-test sweep", make_exec_mini);
  });
  auto s = make_scenario("exec_mini", RunKnobs{16, 4});
  EXPECT_TRUE(s.has_value());
  return *s;
}

SweepOptions thread_options(std::uint32_t seeds, std::uint32_t jobs) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.jobs = jobs;
  return opt;
}

SweepOptions proc_options(std::uint32_t seeds, std::uint32_t procs) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.procs = procs;
  return opt;
}

/// The three emitted artifacts, concatenated: if these match, every digest,
/// metric bit, and aggregate matched.
std::string artifacts(const SweepResult& r) {
  return to_json(r) + "\n--\n" + aggregate_csv(r) + "\n--\n" + seeds_csv(r);
}

TEST(ProcessPool, BitIdenticalToThreadsAtEveryWidth) {
  const Scenario s = registered_mini();
  const std::string serial = artifacts(run_sweep(s, thread_options(4, 1)));
  EXPECT_EQ(serial, artifacts(run_sweep(s, thread_options(4, 4))));
  for (std::uint32_t procs : {1u, 2u, 4u}) {
    EXPECT_EQ(serial, artifacts(run_sweep(s, proc_options(4, procs))))
        << "--procs " << procs << " diverged from --jobs 1";
  }
}

TEST(ProcessPool, SigkilledWorkerIsRedispatchedBitIdentically) {
  // Acceptance: a worker SIGKILLed mid-sweep is detected (socket EOF), its
  // in-flight job re-dispatched, a replacement spawned, and the final
  // output stays bit-identical to the serial run.
  const Scenario s = registered_mini();
  const std::string serial = artifacts(run_sweep(s, thread_options(6, 1)));

  SweepOptions killer = proc_options(6, 2);
  killer.test_kill_worker0_after_jobs = 1;  // dies when handed its 2nd job
  EXPECT_EQ(serial, artifacts(run_sweep(s, killer)));
}

TEST(ProcessPool, InlineScenarioTextShipsToWorkers) {
  // A scenario-file scenario ships as raw text and is re-parsed by the
  // worker — no shared filesystem, no registry entry.
  const std::string text =
      "name = inline_mini\n"
      "seed_base = 41\n"
      "base.protocol = bitcoin\n"
      "base.block_interval = 9\n"
      "base.max_block_size = 4000\n"
      "axis.nodes = 12, 16\n";
  const Scenario s = load_scenario_string(text, "<test>", RunKnobs{16, 3});
  ASSERT_TRUE(s.source.has_value());
  EXPECT_EQ(s.source->kind, ScenarioSource::Kind::kInline);
  EXPECT_EQ(artifacts(run_sweep(s, thread_options(3, 2))),
            artifacts(run_sweep(s, proc_options(3, 2))));
}

TEST(ProcessPool, ProgrammaticScenarioIsRejectedUpFront) {
  Scenario s = registered_mini();
  s.source.reset();  // hand-built scenarios have no shippable form
  EXPECT_THROW(run_sweep(s, proc_options(2, 2)), std::invalid_argument);
}

TEST(ProcessPool, WorkerJobFailurePropagates) {
  // A job that throws inside the worker comes back as an error frame and
  // fails the sweep with the original message, after the pool quiesces.
  const std::string text =
      "name = bad\n"
      "base.adversary = selfish\n"
      "base.adversary_node = 99\n";  // out of range -> Experiment::build throws
  const Scenario s = load_scenario_string(text, "<test>", RunKnobs{16, 2});
  try {
    run_sweep(s, proc_options(1, 1));
    FAIL() << "expected the worker's failure to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos) << e.what();
  }
}

TEST(ProcessPool, AttackScenarioMatchesThreadsIncludingAttackerReports) {
  // Adversary runs carry the structured attacker report through the codec;
  // the JSON artifact embeds it, so byte-equality covers that path too.
  auto s = make_scenario("attack_smoke", RunKnobs{24, 8});
  ASSERT_TRUE(s.has_value());
  const auto threads = run_sweep(*s, thread_options(2, 2));
  const auto procs = run_sweep(*s, proc_options(2, 4));
  ASSERT_FALSE(threads.points.empty());
  ASSERT_TRUE(threads.points[0].seeds[0].attacker.has_value());
  EXPECT_EQ(artifacts(threads), artifacts(procs));
}

}  // namespace
}  // namespace bng::runner
