// Content-addressed record cache: warm sweeps are byte-identical to cold
// ones for any executor, entries survive across processes through the shared
// directory, an edited scenario source turns every old entry stale, and
// sourceless (programmatic) scenarios bypass the cache entirely.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "runner/cache.hpp"
#include "runner/emit.hpp"
#include "runner/journal.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace bng::runner {
namespace {

/// A 2-point inline-source mini sweep (2 points x 2 seeds = 4 jobs below).
/// The inline text is the scenario's cache identity, so appending `tail`
/// changes the scenario hash without touching any resolved point config.
Scenario cache_mini(const std::string& tail = {}) {
  const std::string text =
      "name = cache_mini\n"
      "seed_base = 7400\n"
      "base.protocol = bitcoin\n"
      "base.block_interval = 9\n"
      "base.max_block_size = 4000\n"
      "axis.nodes = 12, 16\n" +
      tail;
  return load_scenario_string(text, "<test>", RunKnobs{16, 3});
}

/// Fresh per-test cache directory; wiped up front so a previous failed run
/// cannot leak entries in.
std::string fresh_dir(const char* name) {
  const auto path =
      std::filesystem::temp_directory_path() / (std::string("bng_cache_") + name);
  std::filesystem::remove_all(path);
  return path.string();
}

SweepOptions options(std::uint32_t seeds, std::uint32_t jobs) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.jobs = jobs;
  return opt;
}

/// The three emitted artifacts, concatenated: if these match, every digest,
/// metric bit, and aggregate matched.
std::string artifacts(const SweepResult& r) {
  return to_json(r) + "\n--\n" + aggregate_csv(r) + "\n--\n" + seeds_csv(r);
}

TEST(RunCache, WarmRunsAreByteIdenticalAcrossJobCounts) {
  const Scenario s = cache_mini();
  RunCache cache(fresh_dir("warm"));
  ActiveCacheScope scope(&cache);

  const std::string cold = artifacts(run_sweep(s, options(2, 1)));
  RunCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.misses, 4u);
  EXPECT_EQ(c.stores, 4u);

  // Warm rerun at a different width: answered entirely from the cache, and
  // the artifacts stay byte-identical — a cache hit is indistinguishable
  // from a recomputation.
  EXPECT_EQ(cold, artifacts(run_sweep(s, options(2, 4))));
  c = cache.counters();
  EXPECT_EQ(c.hits, 4u);
  EXPECT_EQ(c.misses, 4u);
  EXPECT_EQ(c.stale, 0u);
}

TEST(RunCache, ProcessPoolSharesTheCacheDirectory) {
  // Cold run under --procs 2: workers (forked children here; the exec'd
  // `ngsim --worker --cache DIR` path opens the same directory itself)
  // populate the shared directory. The warm in-process run then hits on
  // every job and reproduces the artifacts byte for byte.
  const Scenario s = cache_mini();
  const std::string dir = fresh_dir("procs");

  SweepOptions cold = options(2, 0);
  cold.procs = 2;
  cold.cache_dir = dir;
  const std::string procs = artifacts(run_sweep(s, cold));

  RunCache cache(dir);
  ActiveCacheScope scope(&cache);
  EXPECT_EQ(procs, artifacts(run_sweep(s, options(2, 2))));
  const RunCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 4u);
  EXPECT_EQ(c.misses, 0u);
}

TEST(RunCache, EditedScenarioSourceTurnsEntriesStale) {
  // Same resolved config at every point, different source text: the entry
  // files exist under the same (config digest, seed) keys but carry the old
  // scenario hash, so every lookup is stale and the jobs recompute (to the
  // same values — the configs really are identical).
  RunCache cache(fresh_dir("stale"));
  ActiveCacheScope scope(&cache);

  const SweepResult first = run_sweep(cache_mini(), options(2, 1));
  const Scenario edited = cache_mini("# edited comment, config unchanged\n");
  const SweepResult second = run_sweep(edited, options(2, 1));

  RunCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 0u);
  EXPECT_EQ(c.stale, 4u);
  EXPECT_EQ(c.stores, 8u);
  EXPECT_EQ(seeds_csv(first), seeds_csv(second));

  // The stale entries were overwritten in place: the edited scenario now
  // hits, and the original — its entries overwritten — is stale in turn.
  run_sweep(edited, options(2, 1));
  c = cache.counters();
  EXPECT_EQ(c.hits, 4u);
}

TEST(RunCache, SourcelessScenariosBypassTheCache) {
  // A programmatic scenario (no ScenarioSource) has no shippable identity to
  // key on; the cache must stay untouched rather than guess.
  Scenario s;
  s.name = "no_source";
  s.seed_base = 7500;
  s.base.num_nodes = 12;
  s.base.target_blocks = 3;
  s.base.drain_time = 20;
  s.base.params = chain::Params::bitcoin();
  s.base.params.max_block_size = 4000;
  s.axes.push_back(Axis{
      "block_interval",
      {AxisValue{"9s", 9.0,
                 [](sim::ExperimentConfig& cfg) { cfg.params.block_interval = 9.0; }}}});

  RunCache cache(fresh_dir("nosrc"));
  ActiveCacheScope scope(&cache);
  run_sweep(s, options(2, 1));
  const RunCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits + c.misses + c.stale + c.stores, 0u);
}

TEST(RunCache, ResumedJournalRecordsWinOverCache) {
  // A fully-journaled sweep resumed with a warm cache dispatches nothing:
  // journal prefills claim every job before the cache could answer.
  const Scenario s = cache_mini();
  const std::string journal =
      (std::filesystem::temp_directory_path() / "bng_cache_resume.journal").string();
  std::filesystem::remove(journal);

  RunCache cache(fresh_dir("resume"));
  ActiveCacheScope scope(&cache);

  SweepOptions first = options(2, 1);
  first.journal_path = journal;
  const std::string cold = artifacts(run_sweep(s, first));
  const RunCache::Counters before = cache.counters();

  SweepOptions resumed = options(2, 1);
  resumed.journal_path = journal;
  resumed.resume = true;
  EXPECT_EQ(cold, artifacts(run_sweep(s, resumed)));
  const RunCache::Counters after = cache.counters();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

}  // namespace
}  // namespace bng::runner
