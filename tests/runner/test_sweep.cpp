// The parallel sweep engine: concurrency determinism and result shape.
//
// The load-bearing property: a sweep's output (per-seed digests, metric
// values, aggregates, emitted JSON/CSV) is a pure function of the scenario
// and seeds, bit-identical for any --jobs value.
#include <gtest/gtest.h>

#include <cstdlib>

#include "runner/emit.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace bng::runner {
namespace {

/// A 2-point Bitcoin mini sweep, small enough for unit-test wall time.
Scenario mini_scenario() {
  Scenario s;
  s.name = "mini";
  s.description = "unit-test sweep";
  s.seed_base = 500;
  s.base.num_nodes = 16;
  s.base.target_blocks = 4;
  s.base.drain_time = 20;
  s.base.params = chain::Params::bitcoin();
  s.base.params.max_block_size = 4000;
  Axis axis{"block_interval", {}};
  for (double interval : {8.0, 15.0}) {
    axis.values.push_back(AxisValue{std::to_string(interval) + "s", interval,
                                    [interval](sim::ExperimentConfig& cfg) {
                                      cfg.params.block_interval = interval;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

SweepOptions options(std::uint32_t seeds, std::uint32_t jobs) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.jobs = jobs;
  return opt;
}

TEST(Sweep, ResultShape) {
  const auto r = run_sweep(mini_scenario(), options(2, 1));
  EXPECT_EQ(r.scenario, "mini");
  ASSERT_EQ(r.points.size(), 2u);
  for (const auto& point : r.points) {
    ASSERT_EQ(point.seeds.size(), 2u);
    EXPECT_FALSE(point.aggregates.empty());
    EXPECT_NE(point.seeds[0].digest, 0u);
    // Different seeds explore different schedules.
    EXPECT_NE(point.seeds[0].seed, point.seeds[1].seed);
    EXPECT_FALSE(point.seeds[0].values.empty());
  }
  // Per-point seeds are disjoint streams.
  EXPECT_NE(r.points[0].seeds[0].seed, r.points[1].seeds[0].seed);
}

TEST(Sweep, JobCountDoesNotChangeResults) {
  const Scenario s = mini_scenario();
  const auto sequential = run_sweep(s, options(4, 1));
  const auto parallel = run_sweep(s, options(4, 4));

  ASSERT_EQ(sequential.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < sequential.points.size(); ++p) {
    const auto& sp = sequential.points[p];
    const auto& pp = parallel.points[p];
    ASSERT_EQ(sp.seeds.size(), pp.seeds.size());
    for (std::size_t i = 0; i < sp.seeds.size(); ++i) {
      EXPECT_EQ(sp.seeds[i].seed, pp.seeds[i].seed);
      EXPECT_EQ(sp.seeds[i].digest, pp.seeds[i].digest)
          << "point " << p << " seed " << i << " diverged under concurrency";
      ASSERT_EQ(sp.seeds[i].values.size(), pp.seeds[i].values.size());
      for (std::size_t m = 0; m < sp.seeds[i].values.size(); ++m) {
        EXPECT_EQ(sp.seeds[i].values[m].first, pp.seeds[i].values[m].first);
        EXPECT_EQ(sp.seeds[i].values[m].second, pp.seeds[i].values[m].second);
      }
    }
  }
  // Emitted artifacts are bit-identical too (JSON modulo wall time: compare
  // the CSVs, which carry no timing).
  EXPECT_EQ(aggregate_csv(sequential), aggregate_csv(parallel));
  EXPECT_EQ(seeds_csv(sequential), seeds_csv(parallel));
}

TEST(Sweep, SharedPoolMatchesPerSeedPools) {
  // Sharing one immutable tx pool across a point's seeds must not change
  // any run's outputs vs. each experiment generating its own pool.
  const Scenario s = mini_scenario();
  SweepOptions shared = options(2, 2);
  shared.share_workload = true;
  SweepOptions owned = options(2, 2);
  owned.share_workload = false;
  EXPECT_EQ(seeds_csv(run_sweep(s, shared)), seeds_csv(run_sweep(s, owned)));
}

TEST(Sweep, CustomRunAndExtraHooksFeedAggregates) {
  Scenario s = mini_scenario();
  s.run = [](sim::Experiment& exp, NamedValues& values) {
    exp.run();
    values.emplace_back("from_run_hook", 1.0);
  };
  s.extra = [](const sim::Experiment& exp, NamedValues& values) {
    values.emplace_back("nodes_seen", static_cast<double>(exp.nodes().size()));
  };
  const auto r = run_sweep(s, options(2, 2));
  bool saw_run = false, saw_extra = false;
  for (const auto& [name, agg] : r.points[0].aggregates) {
    if (name == "from_run_hook") {
      saw_run = true;
      EXPECT_DOUBLE_EQ(agg.mean, 1.0);
    }
    if (name == "nodes_seen") {
      saw_extra = true;
      EXPECT_DOUBLE_EQ(agg.mean, 16.0);
    }
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_extra);
}

TEST(Sweep, JobFailurePropagates) {
  Scenario s = mini_scenario();
  s.run = [](sim::Experiment&, NamedValues&) {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(run_sweep(s, options(2, 2)), std::runtime_error);
}

TEST(Emit, SeedsCsvUnionsPerPointMetricSets) {
  // Points may emit different metric sets (per-point hooks); the per-seed
  // CSV must align every value under its own named column, leaving holes
  // blank rather than shifting values under wrong headers.
  SweepResult r;
  r.scenario = "union";
  PointResult a;
  a.labels = {"a"};
  a.seeds.push_back(RunRecord{0, 0, 1, 0xabc, {{"m1", 1.5}}, std::nullopt});
  PointResult b;
  b.labels = {"b"};
  b.seeds.push_back(RunRecord{1, 0, 2, 0xdef, {{"m1", 2.5}, {"m2", 3.5}}, std::nullopt});
  r.points = {a, b};

  const std::string csv = seeds_csv(r);
  EXPECT_NE(csv.find("point,x,seed,digest,m1,m2\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("a,0,1,0000000000000abc,1.5,\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("b,0,2,0000000000000def,2.5,3.5\n"), std::string::npos) << csv;
}

// --- Golden determinism digests ---------------------------------------------
//
// FNV-1a digests of the smoke / fig6 / fig7 scenarios, recorded on the
// pre-refactor simulation core (PR 2 tree) and asserted unchanged since: a
// core rewrite that alters any of these changed simulation *semantics*, not
// just speed. Re-recorded when the record schema gained the propagation-delay
// percentiles + histogram (the digest covers metric names as well as values;
// the pre-existing metrics' values were verified unchanged). Values are exact
// for this container's toolchain; libm may differ by an ulp across glibc
// versions (the RNG's exponential sampling), so foreign machines can opt out
// via BNG_SKIP_GOLDEN_DIGEST=1.
namespace golden {

struct SeedDigest {
  std::uint64_t seed;
  std::uint64_t digest;
};

void expect_digests(const SweepResult& r, std::size_t point,
                    std::initializer_list<SeedDigest> expected) {
  ASSERT_LT(point, r.points.size());
  ASSERT_EQ(r.points[point].seeds.size(), expected.size());
  std::size_t i = 0;
  for (const SeedDigest& e : expected) {
    EXPECT_EQ(r.points[point].seeds[i].seed, e.seed);
    EXPECT_EQ(r.points[point].seeds[i].digest, e.digest)
        << "point " << point << " seed " << e.seed
        << ": simulation semantics changed (digest drift)";
    ++i;
  }
}

bool skip_golden() { return std::getenv("BNG_SKIP_GOLDEN_DIGEST") != nullptr; }

}  // namespace golden

TEST(GoldenDigest, SmokeScenarioUnchangedByCoreRefactors) {
  if (golden::skip_golden()) GTEST_SKIP() << "BNG_SKIP_GOLDEN_DIGEST set";
  auto s = make_scenario("smoke", RunKnobs{40, 8});
  ASSERT_TRUE(s.has_value());
  const auto r = run_sweep(*s, options(2, 2));
  ASSERT_EQ(r.points.size(), 2u);  // bitcoin, ng
  golden::expect_digests(r, 0,
                         {{100, 0x9bf950c7681662e0ull}, {101, 0x1e9d06d1579a80d7ull}});
  golden::expect_digests(
      r, 1, {{1000100, 0xf444f6abe38efb72ull}, {1000101, 0xb05c403ff3a9293eull}});
}

TEST(GoldenDigest, Fig6ScenarioUnchangedByCoreRefactors) {
  if (golden::skip_golden()) GTEST_SKIP() << "BNG_SKIP_GOLDEN_DIGEST set";
  auto s = make_scenario("fig6", RunKnobs{40, 8});
  ASSERT_TRUE(s.has_value());
  // First two sweep points only (test wall time); prefix truncation keeps
  // per-point seeds identical to the full sweep's.
  ASSERT_EQ(s->axes.size(), 1u);
  s->axes[0].values.resize(2);
  const auto r = run_sweep(*s, options(2, 2));
  golden::expect_digests(r, 0,
                         {{600, 0x8b2449c1cd0530e1ull}, {601, 0xd7c8192c78f51828ull}});
  golden::expect_digests(
      r, 1, {{1000600, 0xc4437912728f02b6ull}, {1000601, 0x01966980e4b31c99ull}});
}

TEST(GoldenDigest, Fig7ScenarioUnchangedByCoreRefactors) {
  if (golden::skip_golden()) GTEST_SKIP() << "BNG_SKIP_GOLDEN_DIGEST set";
  auto s = make_scenario("fig7", RunKnobs{40, 8});
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->axes.size(), 1u);
  s->axes[0].values.resize(2);  // 20 kB and 40 kB points
  const auto r = run_sweep(*s, options(2, 2));
  golden::expect_digests(r, 0,
                         {{700, 0x78b10227e36444afull}, {701, 0xa86a0611f9fc8aebull}});
  golden::expect_digests(
      r, 1, {{1000700, 0xc954453751536621ull}, {1000701, 0xeea92a31fdb89db0ull}});
}

TEST(GoldenDigest, Fig8aScenarioUnchangedByCoreRefactors) {
  if (golden::skip_golden()) GTEST_SKIP() << "BNG_SKIP_GOLDEN_DIGEST set";
  auto s = make_scenario("fig8a", RunKnobs{40, 8});
  ASSERT_TRUE(s.has_value());
  // protocol axis (bitcoin, ng) in full; frequency axis truncated to its
  // first two values for test wall time.
  ASSERT_EQ(s->axes.size(), 2u);
  s->axes[1].values.resize(2);
  const auto r = run_sweep(*s, options(2, 2));
  ASSERT_EQ(r.points.size(), 4u);
  golden::expect_digests(
      r, 0, {{8100, 0x00ad98b3d99eb304ull}, {8101, 0xc4932572c2b7dbdeull}});
  golden::expect_digests(
      r, 1, {{1008100, 0xf2369d8e34bb6ceaull}, {1008101, 0xab78bfd0d544b8edull}});
  golden::expect_digests(
      r, 2, {{2008100, 0xcd13064cd696f84dull}, {2008101, 0x7177b2c68c92a8f6ull}});
  golden::expect_digests(
      r, 3, {{3008100, 0xaf3a50cc79f0fecbull}, {3008101, 0xeb9bbd0c94d81ff8ull}});
}

TEST(GoldenDigest, Fig8bScenarioUnchangedByCoreRefactors) {
  if (golden::skip_golden()) GTEST_SKIP() << "BNG_SKIP_GOLDEN_DIGEST set";
  auto s = make_scenario("fig8b", RunKnobs{40, 8});
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->axes.size(), 2u);
  s->axes[1].values.resize(2);  // 1280 B and 2500 B points
  const auto r = run_sweep(*s, options(2, 2));
  ASSERT_EQ(r.points.size(), 4u);
  golden::expect_digests(
      r, 0, {{8200, 0x17c12178ad5f6508ull}, {8201, 0x84d323f4d23ef4dbull}});
  golden::expect_digests(
      r, 1, {{1008200, 0xe1923c184b94d986ull}, {1008201, 0x1667c9f9ae8f3468ull}});
  golden::expect_digests(
      r, 2, {{2008200, 0x3531b748dad8a7f8ull}, {2008201, 0x1ba9106f2294ad4eull}});
  golden::expect_digests(
      r, 3, {{3008200, 0x5770e8f2fa280464ull}, {3008201, 0x8ae90793f5fac698ull}});
}

TEST(Sweep, AttackScenariosAreJobsInvariant) {
  // Adversary + fault runs must stay a pure function of (scenario, seed):
  // the attack smoke grid yields bit-identical digests for any --jobs.
  auto s = make_scenario("attack_smoke", RunKnobs{24, 8});
  ASSERT_TRUE(s.has_value());
  const auto sequential = run_sweep(*s, options(2, 1));
  const auto parallel = run_sweep(*s, options(2, 4));
  ASSERT_EQ(sequential.points.size(), parallel.points.size());
  for (std::size_t p = 0; p < sequential.points.size(); ++p)
    for (std::size_t i = 0; i < sequential.points[p].seeds.size(); ++i)
      EXPECT_EQ(sequential.points[p].seeds[i].digest, parallel.points[p].seeds[i].digest);
  EXPECT_EQ(seeds_csv(sequential), seeds_csv(parallel));
}

TEST(Emit, JsonCarriesDigestsAndAggregates) {
  const auto r = run_sweep(mini_scenario(), options(2, 1));
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"scenario\": \"mini\""), std::string::npos);
  EXPECT_NE(json.find("\"digest\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"mpu\""), std::string::npos);
  const std::string csv = seeds_csv(r);
  EXPECT_NE(csv.find("point,x,seed,digest"), std::string::npos);
}

}  // namespace
}  // namespace bng::runner
