// Scenario registry, declarative overrides and the scenario-file loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "runner/scenario.hpp"

namespace bng::runner {
namespace {

const RunKnobs kSmall{30, 6};

TEST(Registry, BuiltinsAreRegistered) {
  const auto scenarios = list_scenarios();
  auto has = [&](const char* name) {
    for (const auto& [n, d] : scenarios)
      if (n == name) return true;
    return false;
  };
  EXPECT_TRUE(has("fig6"));
  EXPECT_TRUE(has("fig7"));
  EXPECT_TRUE(has("fig8a"));
  EXPECT_TRUE(has("fig8b"));
  EXPECT_TRUE(has("ablation_ghost"));
  EXPECT_TRUE(has("ablation_keyblock_freq"));
  EXPECT_TRUE(has("ablation_power_drop"));
  EXPECT_TRUE(has("ablation_selfish_mining"));
  EXPECT_TRUE(has("selfish_threshold"));
  EXPECT_TRUE(has("partition_heal"));
  EXPECT_TRUE(has("eclipse"));
  EXPECT_TRUE(has("eclipse_selfish"));
  EXPECT_TRUE(has("ng_poison"));
  EXPECT_TRUE(has("attack_smoke"));
  EXPECT_TRUE(has("smoke"));
}

TEST(Registry, MakeScenarioRecordsItsShippableSource) {
  const auto s = make_scenario("smoke", kSmall);
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(s->source.has_value());
  EXPECT_EQ(s->source->kind, ScenarioSource::Kind::kBuiltin);
  EXPECT_EQ(s->source->ref, "smoke");
  EXPECT_EQ(s->source->knobs.nodes, kSmall.nodes);
  EXPECT_EQ(s->source->knobs.blocks, kSmall.blocks);
}

TEST(Registry, EclipseSelfishComposesAdversaryAndFaults) {
  const auto s = make_scenario("eclipse_selfish", kSmall);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->base.adversary.kind, sim::AdversarySpec::Kind::kSelfish);
  const auto points = expand(*s);
  ASSERT_EQ(points.size(), 3u);  // eclipse duration axis
  EXPECT_TRUE(points[0].config.faults.empty());   // dark=0s baseline
  EXPECT_FALSE(points[1].config.faults.empty());  // hubs eclipsed
  EXPECT_EQ(points[1].config.faults.eclipses.size(), 3u);
  EXPECT_EQ(points[1].config.adversary.kind, sim::AdversarySpec::Kind::kSelfish);
}

TEST(Registry, UnknownNameIsNullopt) {
  EXPECT_FALSE(make_scenario("definitely_not_registered", kSmall).has_value());
}

TEST(Registry, KnobsScaleTheScenario) {
  const auto s = make_scenario("fig8a", kSmall);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->base.num_nodes, 30u);
  EXPECT_EQ(s->base.target_blocks, 6u);
}

TEST(Expand, CartesianProductOfAxes) {
  const auto s = make_scenario("fig8a", kSmall);  // protocol(2) x frequency(5)
  ASSERT_TRUE(s.has_value());
  const auto points = expand(*s);
  ASSERT_EQ(points.size(), 10u);
  EXPECT_EQ(points[0].labels.size(), 2u);
  EXPECT_EQ(points[0].labels[0], "bitcoin");
  EXPECT_EQ(points[5].labels[0], "ng");
  // The NG half sweeps the microblock plane, not the key-block interval.
  EXPECT_EQ(points[5].config.params.protocol, chain::Protocol::kBitcoinNG);
  EXPECT_DOUBLE_EQ(points[5].config.params.block_interval, 100.0);
  EXPECT_DOUBLE_EQ(points[5].config.params.microblock_interval, 1.0 / 0.01);
  // Bitcoin sweeps the block interval directly.
  EXPECT_EQ(points[0].config.params.protocol, chain::Protocol::kBitcoin);
  EXPECT_DOUBLE_EQ(points[0].config.params.block_interval, 1.0 / 0.01);
}

TEST(Expand, NoAxesIsOnePoint) {
  Scenario s;
  s.base.num_nodes = 7;
  const auto points = expand(s);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].labels.empty());
  EXPECT_EQ(points[0].config.num_nodes, 7u);
}

TEST(Overrides, AppliesKnownKeys) {
  sim::ExperimentConfig cfg;
  apply_config_override(cfg, "protocol", "bitcoin");
  EXPECT_EQ(cfg.params.protocol, chain::Protocol::kBitcoin);
  apply_config_override(cfg, "nodes", "123");
  EXPECT_EQ(cfg.num_nodes, 123u);
  apply_config_override(cfg, "block_interval", "2.5");
  EXPECT_DOUBLE_EQ(cfg.params.block_interval, 2.5);
  apply_config_override(cfg, "max_block_size", "40000");
  EXPECT_EQ(cfg.params.max_block_size, 40'000u);
  apply_config_override(cfg, "verify_signatures", "true");
  EXPECT_TRUE(cfg.verify_signatures);
  apply_config_override(cfg, "tie_break", "first-seen");
  EXPECT_EQ(cfg.params.tie_break, chain::TieBreak::kFirstSeen);
}

TEST(Overrides, AppliesAdversaryKeys) {
  sim::ExperimentConfig cfg;
  apply_config_override(cfg, "adversary", "selfish");
  EXPECT_EQ(cfg.adversary.kind, sim::AdversarySpec::Kind::kSelfish);
  apply_config_override(cfg, "adversary", "stubborn");
  EXPECT_EQ(cfg.adversary.kind, sim::AdversarySpec::Kind::kStubborn);
  apply_config_override(cfg, "adversary", "equivocate");
  EXPECT_EQ(cfg.adversary.kind, sim::AdversarySpec::Kind::kEquivocate);
  apply_config_override(cfg, "adversary", "withhold-micro");
  EXPECT_EQ(cfg.adversary.kind, sim::AdversarySpec::Kind::kWithholdMicro);
  apply_config_override(cfg, "adversary_node", "3");
  EXPECT_EQ(cfg.adversary.node, 3u);
  apply_config_override(cfg, "adversary_share", "0.33");
  EXPECT_DOUBLE_EQ(cfg.adversary.power_share, 0.33);
  apply_config_override(cfg, "adversary_gamma", "0.25");
  EXPECT_DOUBLE_EQ(cfg.adversary.gamma, 0.25);
  apply_config_override(cfg, "equivocate_every", "2");
  EXPECT_EQ(cfg.adversary.equivocate_every, 2u);
  apply_config_override(cfg, "adversary", "none");
  EXPECT_EQ(cfg.adversary.kind, sim::AdversarySpec::Kind::kNone);
  EXPECT_THROW(apply_config_override(cfg, "adversary", "mallory"),
               std::invalid_argument);
}

TEST(Overrides, RejectsUnknownKeyAndBadValue) {
  sim::ExperimentConfig cfg;
  EXPECT_THROW(apply_config_override(cfg, "no_such_key", "1"), std::invalid_argument);
  EXPECT_THROW(apply_config_override(cfg, "nodes", "abc"), std::invalid_argument);
  EXPECT_THROW(apply_config_override(cfg, "block_interval", "1.5x"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(cfg, "protocol", "dogecoin"), std::invalid_argument);
}

class ScenarioFileTest : public ::testing::Test {
 protected:
  std::string write_file(const std::string& content) {
    path_ = ::testing::TempDir() + "/scenario_test.scn";
    std::ofstream out(path_);
    out << content;
    return path_;
  }
  std::string path_;
};

TEST_F(ScenarioFileTest, ParsesFullScenario) {
  const auto path = write_file(
      "# comment\n"
      "name = my_sweep\n"
      "description = a custom sweep\n"
      "seed_base = 4242\n"
      "base.protocol = ng\n"
      "base.microblock_interval = 5\n"
      "axis.max_microblock_size = 1000, 2000, 4000\n");
  const Scenario s = load_scenario_file(path, kSmall);
  EXPECT_EQ(s.name, "my_sweep");
  EXPECT_EQ(s.description, "a custom sweep");
  EXPECT_EQ(s.seed_base, 4242u);
  EXPECT_EQ(s.base.params.protocol, chain::Protocol::kBitcoinNG);
  EXPECT_EQ(s.base.num_nodes, kSmall.nodes);  // knobs flow into file scenarios
  ASSERT_EQ(s.axes.size(), 1u);
  const auto points = expand(s);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1].config.params.max_microblock_size, 2000u);
  EXPECT_DOUBLE_EQ(points[2].x, 4000.0);
  EXPECT_DOUBLE_EQ(points[0].config.params.microblock_interval, 5.0);
}

TEST_F(ScenarioFileTest, ProtocolAxisKeepsBaseOverrides) {
  // A protocol axis must not reset base.* knobs to preset defaults: the
  // override sets only the protocol, so matched-comparison sweeps compare
  // protocols at identical intervals/sizes.
  const auto path = write_file(
      "base.max_block_size = 20000\n"
      "base.block_interval = 10\n"
      "axis.protocol = bitcoin, ng\n");
  const auto points = expand(load_scenario_file(path, kSmall));
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) {
    EXPECT_EQ(point.config.params.max_block_size, 20'000u);
    EXPECT_DOUBLE_EQ(point.config.params.block_interval, 10.0);
  }
  EXPECT_EQ(points[0].config.params.protocol, chain::Protocol::kBitcoin);
  EXPECT_EQ(points[1].config.params.protocol, chain::Protocol::kBitcoinNG);
}

TEST_F(ScenarioFileTest, TwoAxesExpandToGrid) {
  const auto path = write_file(
      "axis.block_interval = 5, 10\n"
      "axis.max_block_size = 1000, 2000, 4000\n");
  const auto points = expand(load_scenario_file(path, kSmall));
  EXPECT_EQ(points.size(), 6u);
}

TEST_F(ScenarioFileTest, RejectsUnknownKeyWithLineNumber) {
  const auto path = write_file("base.bogus = 1\n");
  try {
    load_scenario_file(path, kSmall);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":1:"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos) << e.what();
  }
}

TEST_F(ScenarioFileTest, RejectsMissingFileAndBadSyntax) {
  EXPECT_THROW(load_scenario_file("/nonexistent/path.scn", kSmall), std::runtime_error);
  const auto path = write_file("not a key value line\n");
  EXPECT_THROW(load_scenario_file(path, kSmall), std::runtime_error);
}

}  // namespace
}  // namespace bng::runner
