// The TCP fleet dispatcher: `ngsim --serve` workers driven over real
// sockets, with every fault the robustness layer claims to survive injected
// for real — SIGKILL mid-job, a stopped (silent) worker, a severed
// connection, a hung-but-heartbeating worker, a dispatcher death resumed
// from the journal. The acceptance bar for each is the same: the final
// artifacts are byte-identical to a serial in-process run.
//
// Workers are fork()ed children of the test binary running serve_loop
// directly (no exec), so they inherit the test's scenario registry; the
// exec'd `ngsim --serve` path is the same code and is covered by CI's fleet
// smoke job.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>

#include "obs/telemetry.hpp"
#include "runner/emit.hpp"
#include "runner/executor.hpp"
#include "runner/journal.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"
#include "runner/tcp_fleet.hpp"

namespace bng::runner {
namespace {

Scenario make_fleet_mini(const RunKnobs&) {
  Scenario s;
  s.name = "fleet_mini";
  s.description = "tcp-fleet unit-test sweep";
  s.seed_base = 820;
  s.base.num_nodes = 16;
  s.base.target_blocks = 4;
  s.base.drain_time = 20;
  s.base.params = chain::Params::bitcoin();
  s.base.params.max_block_size = 4000;
  Axis axis{"block_interval", {}};
  for (double interval : {8.0, 15.0}) {
    axis.values.push_back(AxisValue{std::to_string(interval) + "s", interval,
                                    [interval](sim::ExperimentConfig& cfg) {
                                      cfg.params.block_interval = interval;
                                    }});
  }
  s.axes.push_back(std::move(axis));
  return s;
}

Scenario registered_fleet_mini() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_scenario("fleet_mini", "tcp-fleet unit-test sweep", make_fleet_mini);
  });
  auto s = make_scenario("fleet_mini", RunKnobs{16, 4});
  EXPECT_TRUE(s.has_value());
  return *s;
}

std::string artifacts(const SweepResult& r) {
  return to_json(r) + "\n--\n" + aggregate_csv(r) + "\n--\n" + seeds_csv(r);
}

/// A forked child running serve_loop on a kernel-assigned port. The parent
/// closes its copy of the listen fd, so the port dies with the child.
struct ServeWorker {
  pid_t pid = -1;
  std::uint16_t port = 0;

  ServeWorker() {
    int listen_fd = make_listen_socket(0, port);
    pid = ::fork();
    if (pid == 0) {
      serve_loop(listen_fd);
      ::_exit(0);
    }
    ::close(listen_fd);
  }

  ~ServeWorker() { reap(); }

  void reap() {
    if (pid <= 0) return;
    ::kill(pid, SIGCONT);  // a SIGSTOPped child cannot be waited on its SIGKILL
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    pid = -1;
  }

  std::string endpoint() const { return "127.0.0.1:" + std::to_string(port); }
};

/// Fast-failure tuning: real sweeps wait seconds for a host to come back,
/// tests wait tens of milliseconds.
FleetTuning test_tuning() {
  FleetTuning t;
  t.connect_timeout_ms = 2000;
  t.heartbeat_ms = 50;
  t.heartbeat_timeout_ms = 2000;
  t.reconnect_base_ms = 25;
  t.reconnect_cap_ms = 100;
  t.max_reconnects = 2;
  return t;
}

SweepOptions fleet_options(std::uint32_t seeds, std::vector<std::string> hosts,
                           FleetTuning tuning) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.hosts = std::move(hosts);
  opt.fleet = tuning;
  return opt;
}

SweepOptions serial_options(std::uint32_t seeds) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.jobs = 1;
  return opt;
}

TEST(TcpFleet, BitIdenticalToSerialRun) {
  const Scenario s = registered_fleet_mini();
  const std::string serial = artifacts(run_sweep(s, serial_options(4)));
  ServeWorker a, b;
  EXPECT_EQ(serial, artifacts(run_sweep(
                        s, fleet_options(4, {a.endpoint(), b.endpoint()},
                                         test_tuning()))));
}

TEST(TcpFleet, SigkilledWorkerMidSweepIsRedispatchedBitIdentically) {
  // host0 SIGKILLs itself when handed its 2nd job: the dispatcher sees the
  // connection drop, re-queues the in-flight job, fails to reconnect (the
  // process is gone), abandons the host, and the survivor finishes.
  const Scenario s = registered_fleet_mini();
  const std::string serial = artifacts(run_sweep(s, serial_options(4)));
  ServeWorker a, b;
  SweepOptions opt = fleet_options(4, {a.endpoint(), b.endpoint()}, test_tuning());
  opt.test_kill_worker0_after_jobs = 1;
  EXPECT_EQ(serial, artifacts(run_sweep(s, opt)));
}

TEST(TcpFleet, StoppedWorkerIsDetectedByHeartbeatSilence) {
  // SIGSTOP freezes host0 before the sweep: its kernel still accepts the
  // TCP handshake, but no heartbeat ever arrives — the liveness timeout,
  // not an EOF, is what declares it dead.
  const Scenario s = registered_fleet_mini();
  const std::string serial = artifacts(run_sweep(s, serial_options(3)));
  ServeWorker a, b;
  ::kill(a.pid, SIGSTOP);
  FleetTuning tuning = test_tuning();
  tuning.heartbeat_timeout_ms = 400;
  tuning.max_reconnects = 1;
  EXPECT_EQ(serial, artifacts(run_sweep(
                        s, fleet_options(3, {a.endpoint(), b.endpoint()}, tuning))));
}

TEST(TcpFleet, SeveredConnectionHealsThroughReconnect) {
  // The dispatcher cuts host0's socket after its first record (a stand-in
  // for a mid-sweep network partition); the worker drops back to its accept
  // loop and the exponential-backoff reconnect restores it.
  const Scenario s = registered_fleet_mini();
  const std::string serial = artifacts(run_sweep(s, serial_options(4)));
  ServeWorker a, b;
  SweepOptions opt = fleet_options(4, {a.endpoint(), b.endpoint()}, test_tuning());
  opt.test_sever_host0_after_records = 1;
  EXPECT_EQ(serial, artifacts(run_sweep(s, opt)));
}

TEST(TcpFleet, HungWorkerIsCaughtByTheJobDeadlineNotTheHeartbeat) {
  // host0 computes forever on its first job *while heartbeating* — only the
  // per-job deadline can tell this apart from a slow job. The job reruns on
  // the survivor; the hung host is eventually abandoned.
  const Scenario s = registered_fleet_mini();
  const std::string serial = artifacts(run_sweep(s, serial_options(3)));
  ServeWorker a, b;
  FleetTuning tuning = test_tuning();
  tuning.heartbeat_timeout_ms = 800;  // heartbeats keep flowing: never trips
  tuning.job_deadline_ms = 300;
  tuning.max_reconnects = 1;
  SweepOptions opt = fleet_options(3, {a.endpoint(), b.endpoint()}, tuning);
  opt.test_hang_host0_after_jobs = 0;
  EXPECT_EQ(serial, artifacts(run_sweep(s, opt)));
}

TEST(TcpFleet, JobExhaustingItsAttemptCapFailsTheSweepWithItsIdentity) {
  // A supervisor respawns the worker every time the kill hook SIGKILLs it,
  // so the same doomed job keeps finding a fresh worker to crash. After
  // max_job_attempts the sweep must fail naming the job — not hang waiting
  // for a record that can never arrive.
  const Scenario s = registered_fleet_mini();  // before the fork: workers
                                               // inherit the registration
  std::uint16_t port = 0;
  int listen_fd = make_listen_socket(0, port);
  const pid_t supervisor = ::fork();
  if (supervisor == 0) {
    ::setpgid(0, 0);
    for (;;) {
      const pid_t child = ::fork();
      if (child == 0) {
        serve_loop(listen_fd);
        ::_exit(0);
      }
      ::waitpid(child, nullptr, 0);
    }
  }
  ::setpgid(supervisor, supervisor);
  ::close(listen_fd);

  FleetTuning tuning = test_tuning();
  tuning.max_reconnects = 10;  // the host always comes back ...
  SweepOptions opt =
      fleet_options(2, {"127.0.0.1:" + std::to_string(port)}, tuning);
  opt.test_kill_worker0_after_jobs = 0;  // ... and always dies on its 1st job
  try {
    run_sweep(s, opt);
    FAIL() << "expected the attempt cap to fail the sweep";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("giving up"), std::string::npos) << what;
    EXPECT_NE(what.find("point"), std::string::npos) << what;
    EXPECT_NE(what.find("seed"), std::string::npos) << what;
  }

  ::kill(-supervisor, SIGKILL);
  ::waitpid(supervisor, nullptr, 0);
}

TEST(TcpFleet, AllWorkersLostFailsFastInsteadOfHanging) {
  const Scenario s = registered_fleet_mini();
  ServeWorker a;
  FleetTuning tuning = test_tuning();
  tuning.max_reconnects = 0;  // one life only
  SweepOptions opt = fleet_options(2, {a.endpoint()}, tuning);
  opt.test_kill_worker0_after_jobs = 0;
  try {
    run_sweep(s, opt);
    FAIL() << "expected a no-live-workers failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no live workers"), std::string::npos)
        << e.what();
  }
}

TEST(TcpFleet, ZeroReachableHostsFailsFastNamingEachEndpoint) {
  // Nothing is listening on either endpoint: the sweep must fail during the
  // initial connect pass — before any dispatch state exists — and the error
  // must name every endpoint with its connect errno, not just "no workers".
  const Scenario s = registered_fleet_mini();
  FleetTuning tuning = test_tuning();
  tuning.connect_timeout_ms = 500;
  try {
    run_sweep(s, fleet_options(2, {"127.0.0.1:1", "127.0.0.1:2"}, tuning));
    FAIL() << "expected a no-reachable-endpoint failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no --hosts endpoint is reachable"), std::string::npos)
        << what;
    EXPECT_NE(what.find("127.0.0.1:1"), std::string::npos) << what;
    EXPECT_NE(what.find("127.0.0.1:2"), std::string::npos) << what;
    EXPECT_NE(what.find("refused"), std::string::npos) << what;  // errno text
  }
}

TEST(TcpFleet, TelemetryAccountsForEveryRecordAndWorker) {
  // The dispatcher's telemetry is bookkeeping over the same record stream the
  // artifacts are built from, so its totals must balance exactly: every job
  // delivered, every record attributed to the worker that computed it.
  const Scenario s = registered_fleet_mini();
  ServeWorker a, b;
  SweepOptions opt =
      fleet_options(4, {a.endpoint(), b.endpoint()}, test_tuning());
  obs::SweepTelemetry telemetry;
  opt.telemetry = &telemetry;
  const SweepResult result = run_sweep(s, opt);

  const std::size_t n_jobs = result.points.size() * 4;
  EXPECT_EQ(telemetry.total_jobs(), n_jobs);
  EXPECT_EQ(telemetry.records_done(), n_jobs);

  const auto workers = telemetry.workers();
  ASSERT_EQ(workers.size(), 2u);
  std::uint64_t attributed = 0;
  for (const auto& w : workers) {
    EXPECT_TRUE(w.alive) << w.endpoint;
    EXPECT_FALSE(w.abandoned) << w.endpoint;
    EXPECT_EQ(w.inflight, 0u) << w.endpoint;
    attributed += w.records;
  }
  EXPECT_EQ(attributed, n_jobs);

  const std::string json = telemetry.to_json(s.name, /*wall_s=*/1.0);
  EXPECT_NE(json.find("\"workers\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"records_done\": " + std::to_string(n_jobs)),
            std::string::npos)
      << json;
}

TEST(TcpFleet, DispatcherDeathIsResumedFromTheJournalBitIdentically) {
  // The dispatcher "dies" (deterministic stand-in: the interrupt hook fires
  // after 3 records, unwinding exactly like SIGTERM) mid-sweep with a
  // journal attached. The workers outlive it in their accept loops; a new
  // dispatcher resumes from the journal, re-dispatches only the holes, and
  // the artifacts come out byte-identical.
  const Scenario s = registered_fleet_mini();
  const std::string serial = artifacts(run_sweep(s, serial_options(4)));
  const std::string path =
      (std::filesystem::temp_directory_path() / "bng_fleet_resume.journal").string();
  std::remove(path.c_str());

  ServeWorker a, b;
  SweepOptions opt = fleet_options(4, {a.endpoint(), b.endpoint()}, test_tuning());
  opt.journal_path = path;
  opt.test_interrupt_after_records = 3;
  sweep_interrupt_flag().store(false, std::memory_order_relaxed);
  EXPECT_THROW(run_sweep(s, opt), SweepInterrupted);
  sweep_interrupt_flag().store(false, std::memory_order_relaxed);

  const JournalContents partial = read_journal(path);
  EXPECT_GE(partial.records.size(), 3u);  // everything acknowledged got flushed
  EXPECT_LT(partial.records.size(), 8u);

  SweepOptions resume = fleet_options(4, {a.endpoint(), b.endpoint()}, test_tuning());
  resume.journal_path = path;
  resume.resume = true;
  EXPECT_EQ(serial, artifacts(run_sweep(s, resume)));
  std::remove(path.c_str());
}

TEST(TcpFleet, ProgrammaticScenarioIsRejectedUpFront) {
  Scenario s = registered_fleet_mini();
  s.source.reset();
  EXPECT_THROW(
      run_sweep(s, fleet_options(2, {"127.0.0.1:9"}, test_tuning())),
      std::invalid_argument);
}

}  // namespace
}  // namespace bng::runner
