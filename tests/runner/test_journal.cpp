// Crash-safe sweep journal: every acknowledged record survives a dispatcher
// death, a torn tail is truncated to the last whole frame, resume refuses a
// journal that belongs to a different sweep, and a resumed sweep's artifacts
// are byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "runner/emit.hpp"
#include "runner/executor.hpp"
#include "runner/journal.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace bng::runner {
namespace {

/// A 2-point × N-seed mini sweep with a shippable (inline) source, so it can
/// be journaled and rebuilt by --resume.
Scenario journal_mini(std::uint32_t blocks = 4) {
  const std::string text =
      "name = journal_mini\n"
      "seed_base = 7100\n"
      "base.protocol = bitcoin\n"
      "base.block_interval = 9\n"
      "base.max_block_size = 4000\n"
      "axis.nodes = 12, 16\n";
  return load_scenario_string(text, "<test>", RunKnobs{16, blocks});
}

std::string artifacts(const SweepResult& r) {
  return to_json(r) + "\n--\n" + aggregate_csv(r) + "\n--\n" + seeds_csv(r);
}

/// Unique per-test journal path under the build dir; removed up front so a
/// previous failed run cannot leak state in.
std::string journal_path(const char* name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / (std::string("bng_") + name))
          .string() +
      ".journal";
  std::remove(path.c_str());
  return path;
}

SweepOptions journaled(std::uint32_t seeds, const std::string& path,
                       bool resume = false) {
  SweepOptions opt;
  opt.seeds = seeds;
  opt.jobs = 1;
  opt.journal_path = path;
  opt.resume = resume;
  return opt;
}

TEST(Journal, RoundTripsEveryRecordOfASweep) {
  const Scenario s = journal_mini();
  const std::string path = journal_path("roundtrip");
  const SweepResult result = run_sweep(s, journaled(3, path));

  const JournalContents contents = read_journal(path);
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.records.size(), 6u);  // 2 points x 3 seeds
  EXPECT_EQ(contents.header.seeds, 3u);
  EXPECT_EQ(contents.header.n_points, 2u);
  EXPECT_EQ(contents.header.seed_base, 7100u);
  for (const RunRecord& rec : contents.records) {
    EXPECT_EQ(rec.digest, result.points[rec.point].seeds[rec.ordinal].digest);
  }
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsTruncatedAndResumeFillsTheHolesBitIdentically) {
  const Scenario s = journal_mini();
  const std::string path = journal_path("torn");
  const std::string serial = artifacts(run_sweep(s, journaled(3, path)));

  // Simulate a crash mid-append: chop bytes off the final record frame.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 3);

  const JournalContents torn = read_journal(path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.records.size(), 5u);  // the torn 6th record is dropped
  EXPECT_LT(torn.valid_bytes, full_size - 3);

  // Resume re-runs only the hole; the artifacts cannot tell the difference.
  EXPECT_EQ(serial, artifacts(run_sweep(s, journaled(3, path, true))));

  // And the journal itself healed: truncated at the tear, then completed.
  const JournalContents healed = read_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  EXPECT_EQ(healed.records.size(), 6u);
  std::remove(path.c_str());
}

TEST(Journal, ResumeRejectsAJournalOfADifferentSweep) {
  const Scenario s = journal_mini();
  const std::string path = journal_path("mismatch");
  run_sweep(s, journaled(2, path));

  // Same journal, different seed count: refused by identity check.
  try {
    run_sweep(s, journaled(3, path, true));
    FAIL() << "expected a seeds mismatch rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("seeds"), std::string::npos) << e.what();
  }

  // Different scenario scale (blocks knob changes the inline source's knobs).
  const Scenario other = journal_mini(5);
  EXPECT_THROW(run_sweep(other, journaled(2, path, true)), std::runtime_error);

  // Entirely different scenario text.
  const Scenario foreign = load_scenario_string(
      "name = foreign\nbase.protocol = ng\n", "<test>", RunKnobs{16, 4});
  EXPECT_THROW(run_sweep(foreign, journaled(2, path, true)), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Journal, ProgrammaticScenarioCannotBeJournaled) {
  Scenario s = journal_mini();
  s.source.reset();  // no shippable identity -> --resume could not rebuild it
  EXPECT_THROW(run_sweep(s, journaled(2, journal_path("prog"))),
               std::invalid_argument);
}

TEST(Journal, InterruptFlushesJournalAndResumeCompletesBitIdentically) {
  // The cooperative-interrupt path (ngsim's SIGINT/SIGTERM handler raises
  // the same flag): the sweep stops between jobs, everything acknowledged is
  // already on disk, and --resume finishes the rest byte-identically.
  Scenario s = journal_mini();
  const std::string serial = artifacts(run_sweep(s, journaled(3, journal_path("ref"))));

  auto runs = std::make_shared<std::atomic<std::uint32_t>>(0);
  s.extra = [runs](const sim::Experiment&, NamedValues&) {
    // Trip the flag after the 2nd job, exactly once (resume re-counts from
    // where the counter already is, so it never re-trips).
    if (runs->fetch_add(1) + 1 == 2)
      sweep_interrupt_flag().store(true, std::memory_order_relaxed);
  };

  const std::string path = journal_path("interrupt");
  sweep_interrupt_flag().store(false, std::memory_order_relaxed);
  EXPECT_THROW(run_sweep(s, journaled(3, path)), SweepInterrupted);
  sweep_interrupt_flag().store(false, std::memory_order_relaxed);

  const JournalContents partial = read_journal(path);
  EXPECT_GE(partial.records.size(), 2u);  // flushed despite the abort
  EXPECT_LT(partial.records.size(), 6u);

  EXPECT_EQ(serial, artifacts(run_sweep(s, journaled(3, path, true))));
  std::remove(path.c_str());
}

TEST(Journal, FullyCompleteJournalResumesWithoutDispatchingAnything) {
  const Scenario s = journal_mini();
  const std::string path = journal_path("complete");
  const std::string serial = artifacts(run_sweep(s, journaled(2, path)));
  // Every slot prefills from disk; the executor is never constructed.
  EXPECT_EQ(serial, artifacts(run_sweep(s, journaled(2, path, true))));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bng::runner
