// Adaptive frontier sweeps: the bisection driver must reproduce the dense
// grid's crossover exactly — same frontier artifacts, bit-identical records
// at every evaluated point — while dispatching a fraction of its jobs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "runner/adaptive.hpp"
#include "runner/scenario.hpp"
#include "runner/sweep.hpp"

namespace bng::runner {
namespace {

/// A 9-value refine axis over block size. Propagation delay grows strictly
/// with block size (bandwidth-dominated), so the predicate
/// prop_delay_p50_s > 3 crosses exactly once — the monotone case where the
/// adaptive frontier provably equals the dense grid's.
Scenario adaptive_mini(const std::string& extra_lines = {}) {
  const std::string text =
      "name = adaptive_mini\n"
      "seed_base = 7600\n"
      "base.protocol = bitcoin\n"
      "base.block_interval = 8\n" +
      extra_lines +
      "axis.max_block_size = 1000, 2000, 4000, 8000, 16000, 32000, 64000, "
      "128000, 256000\n"
      "refine.axis = max_block_size\n"
      "refine.metric = prop_delay_p50_s\n"
      "refine.threshold = 3\n"
      "refine.coarse = 3\n";
  return load_scenario_string(text, "<test>", RunKnobs{16, 3});
}

AdaptiveOptions adaptive_options(std::uint32_t seeds, std::uint32_t jobs,
                                 bool dense = false) {
  AdaptiveOptions opt;
  opt.sweep.seeds = seeds;
  opt.sweep.jobs = jobs;
  opt.dense = dense;
  return opt;
}

TEST(Adaptive, MatchesDenseOracleWithFewerJobs) {
  const Scenario s = adaptive_mini();
  const AdaptiveResult refined = run_adaptive(s, adaptive_options(2, 2));
  const AdaptiveResult dense = run_adaptive(s, adaptive_options(2, 2, true));

  // The dense run is the oracle: every point evaluated.
  EXPECT_EQ(dense.evaluated.size(), 9u);
  EXPECT_EQ(dense.jobs_dispatched, 18u);
  EXPECT_EQ(refined.dense_points, 9u);
  EXPECT_EQ(refined.dense_jobs, 18u);

  // The refined run evaluated a strict subset (coarse {0,4,8} + bisection)
  // yet emits byte-identical frontier artifacts.
  EXPECT_LT(refined.evaluated.size(), dense.evaluated.size());
  EXPECT_LT(refined.jobs_dispatched, dense.jobs_dispatched);
  EXPECT_EQ(frontier_json(s, refined), frontier_json(s, dense));
  EXPECT_EQ(frontier_csv(refined), frontier_csv(dense));

  ASSERT_EQ(refined.frontier.size(), 1u);
  EXPECT_TRUE(refined.frontier[0].found);
  // The bracket tightened to adjacent grid values around the crossover.
  EXPECT_DOUBLE_EQ(refined.frontier[0].lo_x, 16000.0);
  EXPECT_DOUBLE_EQ(refined.frontier[0].hi_x, 32000.0);

  // Refined points keep their dense-grid job identity: records are
  // bit-identical to the dense run's at the same dense index.
  for (std::size_t k = 0; k < refined.evaluated.size(); ++k) {
    const PointResult& rp = refined.sweep.points[k];
    const PointResult& dp = dense.sweep.points[refined.evaluated[k]];
    ASSERT_EQ(rp.seeds.size(), dp.seeds.size());
    for (std::size_t i = 0; i < rp.seeds.size(); ++i) {
      EXPECT_EQ(rp.seeds[i].seed, dp.seeds[i].seed);
      EXPECT_EQ(rp.seeds[i].digest, dp.seeds[i].digest)
          << "dense index " << refined.evaluated[k] << " ordinal " << i;
    }
  }
}

TEST(Adaptive, EveryGroupGetsItsOwnFrontierRow) {
  // A second (non-refine) axis splits the grid into groups; each gets an
  // independent bisection and its own frontier row, in dense group order.
  const Scenario s = adaptive_mini("axis.block_interval = 8, 12\n");
  const AdaptiveResult r = run_adaptive(s, adaptive_options(1, 2));
  EXPECT_EQ(r.dense_points, 18u);
  ASSERT_EQ(r.frontier.size(), 2u);
  EXPECT_EQ(r.frontier[0].group, "block_interval=8");
  EXPECT_EQ(r.frontier[1].group, "block_interval=12");
  for (const FrontierRow& row : r.frontier) {
    EXPECT_TRUE(row.found) << row.group;
    EXPECT_LT(row.lo_x, row.hi_x);
    EXPECT_GE(row.crossover_x, row.lo_x);
    EXPECT_LE(row.crossover_x, row.hi_x);
  }
}

TEST(Adaptive, RequiresARefineSpec) {
  Scenario s = adaptive_mini();
  s.refine.reset();
  EXPECT_THROW(run_adaptive(s, adaptive_options(1, 1)), std::runtime_error);
}

TEST(Adaptive, RefineGrammarRejectsBadSpecs) {
  // refine.* without a metric is unusable.
  EXPECT_THROW(load_scenario_string("name = x\n"
                                    "axis.nodes = 8, 12\n"
                                    "refine.axis = nodes\n",
                                    "<test>", RunKnobs{16, 3}),
               std::runtime_error);
  // The refine axis must name an axis defined in the same file.
  EXPECT_THROW(load_scenario_string("name = x\n"
                                    "axis.nodes = 8, 12\n"
                                    "refine.axis = gamma\n"
                                    "refine.metric = tx_per_sec\n",
                                    "<test>", RunKnobs{16, 3}),
               std::runtime_error);
  // Unknown refine.* sub-keys are errors, not silent ignores.
  EXPECT_THROW(load_scenario_string("name = x\n"
                                    "axis.nodes = 8, 12\n"
                                    "refine.axis = nodes\n"
                                    "refine.metric = tx_per_sec\n"
                                    "refine.bogus = 1\n",
                                    "<test>", RunKnobs{16, 3}),
               std::runtime_error);
}

TEST(Adaptive, UnknownMetricNamesTheMetricInTheError) {
  Scenario s = adaptive_mini();
  s.refine->metric = "no_such_metric";
  try {
    run_adaptive(s, adaptive_options(1, 1));
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_metric"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bng::runner
