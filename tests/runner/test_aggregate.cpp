// Aggregation math on known inputs.
#include <gtest/gtest.h>

#include "runner/aggregate.hpp"

namespace bng::runner {
namespace {

TEST(Aggregate, KnownSamples) {
  // sorted: 2 4 4 4 5 5 7 9 — mean 5, sample stddev 2.138, p50 4.5, p90 7.6
  const auto a = aggregate({9, 2, 4, 4, 4, 5, 5, 7});
  EXPECT_EQ(a.n, 8u);
  EXPECT_DOUBLE_EQ(a.mean, 5.0);
  EXPECT_NEAR(a.stddev, 2.13808993529939, 1e-12);  // sqrt(32/7)
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
  // Linear-interpolated percentiles: rank = p/100 * (n-1).
  EXPECT_DOUBLE_EQ(a.p50, 4.5);  // rank 3.5 between 4 and 5
  EXPECT_NEAR(a.p90, 7.6, 1e-12);  // rank 6.3 between 7 and 9
}

TEST(Aggregate, SingleSample) {
  const auto a = aggregate({3.25});
  EXPECT_EQ(a.n, 1u);
  EXPECT_DOUBLE_EQ(a.mean, 3.25);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
  EXPECT_DOUBLE_EQ(a.min, 3.25);
  EXPECT_DOUBLE_EQ(a.max, 3.25);
  EXPECT_DOUBLE_EQ(a.p50, 3.25);
  EXPECT_DOUBLE_EQ(a.p90, 3.25);
}

TEST(Aggregate, Empty) {
  const auto a = aggregate({});
  EXPECT_EQ(a.n, 0u);
  EXPECT_DOUBLE_EQ(a.mean, 0.0);
  EXPECT_DOUBLE_EQ(a.stddev, 0.0);
}

TEST(Aggregate, TwoSeedMeanAndSpread) {
  const auto a = aggregate({1.0, 3.0});
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  EXPECT_NEAR(a.stddev, 1.4142135623730951, 1e-15);  // sqrt(2), sample stddev
  EXPECT_DOUBLE_EQ(a.p50, 2.0);
}

TEST(AggregateRecords, FoldsPerMetric) {
  const std::vector<NamedValues> records = {
      {{"mpu", 1.0}, {"tx_per_sec", 2.0}},
      {{"mpu", 0.5}, {"tx_per_sec", 4.0}},
  };
  const auto aggs = aggregate_records(records);
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].first, "mpu");
  EXPECT_DOUBLE_EQ(aggs[0].second.mean, 0.75);
  EXPECT_EQ(aggs[1].first, "tx_per_sec");
  EXPECT_DOUBLE_EQ(aggs[1].second.mean, 3.0);
  EXPECT_EQ(aggs[1].second.n, 2u);
}

TEST(AggregateRecords, RejectsMismatchedKeys) {
  const std::vector<NamedValues> records = {
      {{"mpu", 1.0}},
      {{"fairness", 0.5}},
  };
  EXPECT_THROW(aggregate_records(records), std::invalid_argument);
}

TEST(AggregateRecords, EmptyIsEmpty) {
  EXPECT_TRUE(aggregate_records({}).empty());
}

}  // namespace
}  // namespace bng::runner
