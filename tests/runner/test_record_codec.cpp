// RunRecord codec: byte-stable binary + JSON round trips, version-mismatch
// rejection, and the truncated/corrupt-stream error paths. The codec is the
// wire format between the sweep parent and its worker processes, so "any
// record survives the trip bit-exactly" is a correctness property of the
// whole process-pool path, not a nicety.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "runner/record_codec.hpp"

namespace bng::runner {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double double_from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

void expect_identical(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.point, b.point);
  EXPECT_EQ(a.ordinal, b.ordinal);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].first, b.values[i].first);
    EXPECT_EQ(bits_of(a.values[i].second), bits_of(b.values[i].second))
        << "value " << a.values[i].first << " not bit-identical";
  }
  ASSERT_EQ(a.attacker.has_value(), b.attacker.has_value());
  if (a.attacker) {
    EXPECT_EQ(bits_of(a.attacker->revenue_share), bits_of(b.attacker->revenue_share));
    EXPECT_EQ(bits_of(a.attacker->fair_share), bits_of(b.attacker->fair_share));
    EXPECT_EQ(bits_of(a.attacker->relative_gain), bits_of(b.attacker->relative_gain));
    EXPECT_EQ(bits_of(a.attacker->attacker_acceptance),
              bits_of(b.attacker->attacker_acceptance));
    EXPECT_EQ(bits_of(a.attacker->honest_acceptance),
              bits_of(b.attacker->honest_acceptance));
    EXPECT_EQ(a.attacker->attacker_main_blocks, b.attacker->attacker_main_blocks);
    EXPECT_EQ(a.attacker->main_blocks, b.attacker->main_blocks);
    EXPECT_EQ(a.attacker->attacker_generated, b.attacker->attacker_generated);
    EXPECT_EQ(a.attacker->total_generated, b.attacker->total_generated);
  }
}

/// Randomized record. `finite_only` keeps every double finite (the JSON form
/// maps non-finite to null, so only the binary fuzz exercises raw bits).
RunRecord random_record(std::mt19937_64& rng, bool finite_only) {
  std::uniform_int_distribution<std::uint32_t> small(0, 1000);
  std::uniform_int_distribution<std::size_t> n_values(0, 24);
  std::uniform_int_distribution<std::size_t> name_len(1, 40);
  std::uniform_int_distribution<int> name_char(0, 63);
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";

  auto any_double = [&] {
    for (;;) {
      const double v = double_from_bits(rng());
      if (!finite_only || std::isfinite(v)) return v;
    }
  };

  RunRecord r;
  r.point = small(rng);
  r.ordinal = small(rng);
  r.seed = rng();
  r.digest = rng();
  const std::size_t n = n_values(rng);
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    const std::size_t len = name_len(rng);
    for (std::size_t c = 0; c < len; ++c) name += kAlphabet[name_char(rng)];
    r.values.emplace_back(std::move(name), any_double());
  }
  if (rng() & 1) {
    metrics::AttackerReport a;
    a.revenue_share = any_double();
    a.fair_share = any_double();
    a.relative_gain = any_double();
    a.attacker_acceptance = any_double();
    a.honest_acceptance = any_double();
    a.attacker_main_blocks = small(rng);
    a.main_blocks = small(rng);
    a.attacker_generated = rng();
    a.total_generated = rng();
    r.attacker = a;
  }
  return r;
}

TEST(RecordCodec, BinaryRoundTripFuzz) {
  std::mt19937_64 rng(0xc0dec);
  for (int i = 0; i < 300; ++i) {
    const RunRecord r = random_record(rng, /*finite_only=*/false);
    const std::string bytes = encode_record(r);
    expect_identical(r, decode_record(bytes));
    // Byte-stability: re-encoding the decoded record reproduces the bytes.
    EXPECT_EQ(bytes, encode_record(decode_record(bytes)));
  }
}

TEST(RecordCodec, JsonRoundTripFuzz) {
  std::mt19937_64 rng(0x150d);
  for (int i = 0; i < 300; ++i) {
    const RunRecord r = random_record(rng, /*finite_only=*/true);
    expect_identical(r, decode_record_json(encode_record_json(r)));
  }
}

TEST(RecordCodec, JsonMapsNonFiniteToNullAndBack) {
  RunRecord r;
  r.values.emplace_back("nan_metric", std::nan(""));
  r.values.emplace_back("inf_metric", INFINITY);
  const RunRecord back = decode_record_json(encode_record_json(r));
  ASSERT_EQ(back.values.size(), 2u);
  EXPECT_TRUE(std::isnan(back.values[0].second));
  // JSON has no infinity: it degrades to null -> NaN, by design.
  EXPECT_TRUE(std::isnan(back.values[1].second));
}

TEST(RecordCodec, RejectsVersionMismatch) {
  std::mt19937_64 rng(7);
  std::string bytes = encode_record(random_record(rng, false));
  // Version lives at offset 4 (after the "BNGR" magic), little-endian u16.
  bytes[4] = static_cast<char>((kRecordCodecVersion + 1) & 0xff);
  bytes[5] = static_cast<char>(((kRecordCodecVersion + 1) >> 8) & 0xff);
  EXPECT_THROW(decode_record(bytes), CodecError);

  std::string json = encode_record_json(random_record(rng, true));
  const std::string from = "\"v\": " + std::to_string(kRecordCodecVersion);
  const std::string to = "\"v\": " + std::to_string(kRecordCodecVersion + 1);
  json.replace(json.find(from), from.size(), to);
  EXPECT_THROW(decode_record_json(json), CodecError);
}

TEST(RecordCodec, RejectsBadMagicAndTrailingBytes) {
  std::mt19937_64 rng(8);
  const RunRecord r = random_record(rng, false);
  std::string bytes = encode_record(r);
  std::string wrong = bytes;
  wrong[0] = 'X';
  EXPECT_THROW(decode_record(wrong), CodecError);
  EXPECT_THROW(decode_record(bytes + "junk"), CodecError);
}

TEST(RecordCodec, EveryTruncationThrowsCleanly) {
  // A short read / killed worker yields a prefix of a record: every prefix
  // must throw CodecError rather than crash or return garbage.
  std::mt19937_64 rng(9);
  const RunRecord r = random_record(rng, false);
  const std::string bytes = encode_record(r);
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(decode_record(std::string_view(bytes).substr(0, len)), CodecError)
        << "prefix length " << len;
}

TEST(RecordCodec, TruncatedJsonThrowsCleanly) {
  std::mt19937_64 rng(10);
  const std::string json = encode_record_json(random_record(rng, true));
  for (std::size_t len = 0; len < json.size(); ++len)
    EXPECT_THROW(decode_record_json(std::string_view(json).substr(0, len)), CodecError)
        << "prefix length " << len;
}

TEST(RecordCodec, FramingReassemblesSplitStreams) {
  std::mt19937_64 rng(11);
  const RunRecord a = random_record(rng, false);
  const RunRecord b = random_record(rng, false);
  const std::string stream = frame(encode_record(a)) + frame(encode_record(b));

  // Feed the stream one byte at a time: frames pop out exactly twice, intact.
  std::string buffer;
  std::string payload;
  std::vector<RunRecord> out;
  for (char c : stream) {
    buffer.push_back(c);
    while (take_frame(buffer, payload)) out.push_back(decode_record(payload));
  }
  EXPECT_TRUE(buffer.empty());
  ASSERT_EQ(out.size(), 2u);
  expect_identical(a, out[0]);
  expect_identical(b, out[1]);
}

TEST(RecordCodec, FramingRejectsCorruptLengthPrefix) {
  std::string buffer = "\xff\xff\xff\xff payload";  // 4 GB length prefix
  std::string payload;
  EXPECT_THROW(take_frame(buffer, payload), CodecError);
}

}  // namespace
}  // namespace bng::runner
