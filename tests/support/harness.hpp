// Shared fixture: a miniature deployment for protocol-level tests.
#pragma once

#include <memory>
#include <vector>

#include "bitcoin/bitcoin_node.hpp"
#include "chain/block.hpp"
#include "ghost/ghost_node.hpp"
#include "net/network.hpp"
#include "ng/ng_node.hpp"
#include "protocol/base_node.hpp"
#include "sim/trace.hpp"

namespace bng::testing {

/// A tiny fully-connected network of `N` nodes with constant latency and
/// generous bandwidth, pre-filled with a synthetic workload.
enum class Topo { kComplete, kLine };

template <typename NodeT>
class MiniNet {
 public:
  explicit MiniNet(std::uint32_t n, chain::Params params, Seconds latency = 0.01,
                   double bandwidth_bps = 10e6, std::size_t pool_txs = 2000,
                   bool verify_signatures = true, Topo topo = Topo::kComplete)
      : rng_(12345),
        topology_(topo == Topo::kComplete ? net::Topology::complete(n)
                                          : net::Topology::line(n)),
        network_(queue_, topology_, net::LatencyModel::constant(latency),
                 net::LinkParams{bandwidth_bps, 40}, rng_),
        genesis_(chain::make_genesis(pool_txs, kCoin)) {
    const Hash256 genesis_txid = genesis_->txs()[0]->id();
    workload_.txs.reserve(pool_txs);
    for (std::size_t i = 0; i < pool_txs; ++i) {
      workload_.txs.push_back(chain::make_transfer(
          chain::Outpoint{genesis_txid, static_cast<std::uint32_t>(i)}, kCoin - 1000,
          chain::address_from_tag(i), 1000, 120));
    }
    workload_.tx_wire_size = workload_.txs[0]->wire_size();
    workload_.fee_per_tx = 1000;
    trace_ = std::make_unique<sim::TraceRecorder>(genesis_, network_.interner());

    for (NodeId i = 0; i < n; ++i) {
      protocol::NodeConfig cfg;
      cfg.params = params;
      cfg.verify_signatures = verify_signatures;
      cfg.verify_fixed = 0.0005;
      cfg.workload_mode = protocol::WorkloadMode::kSynthetic;
      cfg.workload = &workload_;
      nodes_.push_back(std::make_unique<NodeT>(i, network_, genesis_, cfg, rng_.fork(i),
                                               trace_.get()));
      network_.attach(i, nodes_.back().get());
    }
  }

  NodeT& node(NodeId i) { return *nodes_[i]; }
  net::EventQueue& queue() { return queue_; }
  net::Network& network() { return network_; }
  sim::TraceRecorder& trace() { return *trace_; }
  chain::BlockPtr genesis() { return genesis_; }
  const protocol::SyntheticWorkload& workload() { return workload_; }
  std::size_t size() const { return nodes_.size(); }

  /// Let in-flight messages settle.
  void settle(Seconds duration = 5.0) { queue_.run_until(queue_.now() + duration); }

  /// Do all nodes report the same best-tip block id?
  bool converged() const {
    const Hash256 tip0 = nodes_[0]->tree().best_entry().block->id();
    for (const auto& n : nodes_)
      if (n->tree().best_entry().block->id() != tip0) return false;
    return true;
  }

  /// Weaker agreement suited to NG, where the current leader is always a few
  /// microblocks ahead of everyone: every node's chain must be a prefix of
  /// the longest chain (same branch, possibly lagging).
  bool consistent() const {
    std::vector<std::vector<Hash256>> paths;
    for (const auto& n : nodes_) {
      const auto& t = n->tree();
      std::vector<Hash256> ids;
      for (auto idx : t.path_from_genesis(t.best_tip()))
        ids.push_back(t.entry(idx).block->id());
      paths.push_back(std::move(ids));
    }
    const auto* longest = &paths[0];
    for (const auto& p : paths)
      if (p.size() > longest->size()) longest = &p;
    for (const auto& p : paths) {
      for (std::size_t i = 0; i < p.size(); ++i)
        if (p[i] != (*longest)[i]) return false;
    }
    return true;
  }

 private:
  net::EventQueue queue_;
  Rng rng_;
  net::Topology topology_;
  net::Network network_;
  chain::BlockPtr genesis_;
  protocol::SyntheticWorkload workload_;
  std::unique_ptr<sim::TraceRecorder> trace_;
  std::vector<std::unique_ptr<NodeT>> nodes_;
};

}  // namespace bng::testing
