// The decision-trace ring's two contracts: (1) recording is purely
// observational — a traced job's RunRecord, digest included, is
// byte-identical to an untraced one, and with the mask off not a single
// event is built; (2) the ring is bounded — a pathological run overwrites
// the oldest events and counts the drops instead of growing.
#include <gtest/gtest.h>

#include <mutex>
#include <string>

#include "obs/trace_ring.hpp"
#include "runner/executor.hpp"
#include "runner/record_codec.hpp"
#include "runner/scenario.hpp"

namespace bng::obs {
namespace {

/// Tiny Bitcoin sweep (1 point), registered like the executor tests' minis.
runner::Scenario make_trace_mini(const runner::RunKnobs&) {
  runner::Scenario s;
  s.name = "trace_mini";
  s.description = "trace-ring unit-test sweep";
  s.seed_base = 911;
  s.base.num_nodes = 12;
  s.base.target_blocks = 4;
  s.base.drain_time = 20;
  s.base.params = chain::Params::bitcoin();
  s.base.params.max_block_size = 4000;
  s.base.params.block_interval = 10;
  return s;
}

runner::Scenario registered_trace_mini() {
  static std::once_flag once;
  std::call_once(once, [] {
    runner::register_scenario("trace_mini", "trace-ring unit-test sweep",
                              make_trace_mini);
  });
  auto s = runner::make_scenario("trace_mini", runner::RunKnobs{12, 4});
  EXPECT_TRUE(s.has_value());
  return *s;
}

TEST(TraceRing, ParseMask) {
  EXPECT_EQ(parse_trace_mask("blocks"), kTraceBlocks);
  EXPECT_EQ(parse_trace_mask("adversary"), kTraceAdversary);
  EXPECT_EQ(parse_trace_mask("events"), kTraceEvents);
  EXPECT_EQ(parse_trace_mask("blocks,adversary"), kTraceBlocks | kTraceAdversary);
  EXPECT_EQ(parse_trace_mask("all"), kTraceBlocks | kTraceAdversary | kTraceEvents);
  EXPECT_THROW((void)parse_trace_mask("bogus"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace_mask(""), std::invalid_argument);
}

TEST(TraceRing, TracedRunIsByteIdenticalToUntraced) {
  const runner::Scenario scenario = registered_trace_mini();
  const auto points = runner::expand(scenario);
  ASSERT_EQ(points.size(), 1u);

  const runner::RunRecord plain =
      runner::run_job(scenario, points[0], 0, 0, nullptr);

  TraceRing ring(kTraceBlocks | kTraceAdversary | kTraceEvents);
  const runner::RunRecord traced =
      runner::run_job(scenario, points[0], 0, 0, nullptr, &ring);

  // Observational by construction: same digest, same serialized bytes.
  EXPECT_EQ(traced.digest, plain.digest);
  EXPECT_EQ(runner::encode_record(traced), runner::encode_record(plain));

  // And the ring actually saw the run: every accepted block produces one
  // generate (miner side) and one accept per node.
  EXPECT_GT(ring.total_recorded(), 0u);
  bool saw_generate = false, saw_accept = false, saw_deliver = false;
  for (const TraceEvent& ev : ring.events()) {
    saw_generate |= ev.kind == TraceKind::kGenerate;
    saw_accept |= ev.kind == TraceKind::kAccept;
    saw_deliver |= ev.kind == TraceKind::kDeliver;
  }
  EXPECT_TRUE(saw_generate);
  EXPECT_TRUE(saw_accept);
  EXPECT_TRUE(saw_deliver);
}

TEST(TraceRing, MaskOffRecordsNothing) {
  const runner::Scenario scenario = registered_trace_mini();
  const auto points = runner::expand(scenario);

  TraceRing ring(0);
  const runner::RunRecord plain =
      runner::run_job(scenario, points[0], 0, 0, nullptr);
  const runner::RunRecord gated =
      runner::run_job(scenario, points[0], 0, 0, nullptr, &ring);

  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(runner::encode_record(gated), runner::encode_record(plain));
}

TEST(TraceRing, BoundedWithDropAccounting) {
  TraceRing ring(kTraceBlocks, /*capacity=*/4);
  for (BlockId b = 0; b < 10; ++b)
    ring.record(kTraceBlocks, TraceKind::kAccept, 1, b, b == 0 ? kNoBlockId : b - 1);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first drain holds the last four events.
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().block, 6u);
  EXPECT_EQ(events.back().block, 9u);

  // record() itself enforces the category gate.
  ring.record(kTraceAdversary, TraceKind::kWithhold, 1, 11);
  EXPECT_EQ(ring.total_recorded(), 10u);
}

TEST(TraceRing, EmitJsonlFormat) {
  TraceRing ring(kTraceBlocks);
  double t = 2.5;
  ring.set_clock([&t] { return t; });
  ring.record(kTraceBlocks, TraceKind::kGenerate, 3, 17, kNoBlockId);
  t = 4.0;
  ring.record(kTraceBlocks, TraceKind::kAccept, 5, 17, 16, 3);

  std::string out;
  ring.emit_jsonl(out, /*point=*/2, /*ordinal=*/1);
  EXPECT_EQ(out,
            "{\"point\":2,\"ordinal\":1,\"at\":2.500000,\"kind\":\"generate\","
            "\"node\":3,\"block\":17,\"parent\":-1,\"from\":-1}\n"
            "{\"point\":2,\"ordinal\":1,\"at\":4.000000,\"kind\":\"accept\","
            "\"node\":5,\"block\":17,\"parent\":16,\"from\":3}\n");
}

}  // namespace
}  // namespace bng::obs
