// The typed metric registry is the schema authority for RunRecord values:
// snapshot order and names are the wire format. These tests pin (a) the
// snapshot semantics — registration order, histogram expansion, idempotent
// re-registration, kind-mismatch rejection — and (b) the round trip of a
// registry snapshot through both record codecs, including the binary form's
// byte-stability and the JSON form's non-finite handling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "runner/record.hpp"
#include "runner/record_codec.hpp"

namespace bng::obs {
namespace {

TEST(MetricRegistry, SnapshotFollowsRegistrationOrder) {
  Registry reg;
  reg.counter("blocks", Unit::kCount, "blocks accepted").inc(7);
  reg.gauge("mpu", Unit::kNone, "mining power utilization").set(0.875);
  reg.counter("txs").inc(100);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "blocks");
  EXPECT_DOUBLE_EQ(snap[0].second, 7.0);
  EXPECT_EQ(snap[1].first, "mpu");
  EXPECT_DOUBLE_EQ(snap[1].second, 0.875);
  EXPECT_EQ(snap[2].first, "txs");
  EXPECT_DOUBLE_EQ(snap[2].second, 100.0);
}

TEST(MetricRegistry, ReRegistrationReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("hits");
  a.inc(3);
  Counter& b = reg.counter("hits");  // same name, same kind -> same object
  EXPECT_EQ(&a, &b);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
  ASSERT_EQ(reg.entries().size(), 1u);  // no duplicate schema entry
}

TEST(MetricRegistry, KindMismatchThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
}

TEST(MetricRegistry, HistogramExpandsCumulatively) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {0.5, 1.0, 2.0}, Unit::kSeconds);
  h.observe(0.2);   // bucket le_0.5
  h.observe(0.7);   // bucket le_1
  h.observe(0.9);   // bucket le_1
  h.observe(5.0);   // overflow: counted in _count only
  const auto snap = reg.snapshot();
  // name_count, name_sum, then one cumulative le_<bound> per bucket.
  ASSERT_EQ(snap.size(), 5u);
  EXPECT_EQ(snap[0].first, "lat_count");
  EXPECT_DOUBLE_EQ(snap[0].second, 4.0);
  EXPECT_EQ(snap[1].first, "lat_sum");
  EXPECT_DOUBLE_EQ(snap[1].second, 0.2 + 0.7 + 0.9 + 5.0);
  EXPECT_EQ(snap[2].first, "lat_le_0.5");
  EXPECT_DOUBLE_EQ(snap[2].second, 1.0);
  EXPECT_EQ(snap[3].first, "lat_le_1");
  EXPECT_DOUBLE_EQ(snap[3].second, 3.0);  // cumulative: includes le_0.5
  EXPECT_EQ(snap[4].first, "lat_le_2");
  EXPECT_DOUBLE_EQ(snap[4].second, 3.0);
}

// A registry snapshot must survive the record pipeline unchanged: it IS the
// values schema of every sweep artifact.
runner::RunRecord record_from(const Registry& reg) {
  runner::RunRecord rec;
  rec.point = 3;
  rec.ordinal = 1;
  rec.seed = 0xdeadbeef;
  rec.digest = 0x1234567890abcdefull;
  rec.values = reg.snapshot();
  return rec;
}

TEST(MetricRegistry, RoundTripsThroughBinaryCodecByteStably) {
  Registry reg;
  reg.counter("main_pow_blocks").inc(42);
  reg.gauge("fairness").set(0.3125);  // exactly representable
  reg.histogram("delay", {1.0, 4.0}, Unit::kSeconds).observe(2.5);

  const runner::RunRecord rec = record_from(reg);
  const std::string bytes = runner::encode_record(rec);
  const runner::RunRecord back = runner::decode_record(bytes);

  ASSERT_EQ(back.values.size(), rec.values.size());
  for (std::size_t i = 0; i < rec.values.size(); ++i) {
    EXPECT_EQ(back.values[i].first, rec.values[i].first);
    EXPECT_DOUBLE_EQ(back.values[i].second, rec.values[i].second);
  }
  // Byte stability: re-encoding the decoded record is the identity.
  EXPECT_EQ(runner::encode_record(back), bytes);
}

TEST(MetricRegistry, NonFiniteGaugesSurviveBothCodecs) {
  Registry reg;
  reg.gauge("p90_empty").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("ratio_div0").set(std::numeric_limits<double>::infinity());
  reg.gauge("neg_inf").set(-std::numeric_limits<double>::infinity());

  const runner::RunRecord rec = record_from(reg);

  // Binary form preserves the exact IEEE bits.
  const runner::RunRecord bin = runner::decode_record(runner::encode_record(rec));
  EXPECT_TRUE(std::isnan(bin.values[0].second));
  EXPECT_EQ(bin.values[1].second, std::numeric_limits<double>::infinity());
  EXPECT_EQ(bin.values[2].second, -std::numeric_limits<double>::infinity());

  // JSON has no nan/inf: non-finite maps to null and comes back as NaN.
  const std::string json = runner::encode_record_json(rec);
  const runner::RunRecord js = runner::decode_record_json(json);
  EXPECT_TRUE(std::isnan(js.values[0].second));
  EXPECT_TRUE(std::isnan(js.values[1].second));
  EXPECT_TRUE(std::isnan(js.values[2].second));
  // And the JSON emitter is deterministic for the same record.
  EXPECT_EQ(runner::encode_record_json(rec), json);
}

}  // namespace
}  // namespace bng::obs
