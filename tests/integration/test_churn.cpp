// Churn robustness (paper §1: "robust to extreme churn").
//
// Nodes flap on a schedule while the protocols run; the chain must keep
// growing and rejoining nodes must resynchronize.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/miner_distribution.hpp"

namespace bng {
namespace {

using sim::Experiment;
using sim::ExperimentConfig;

ExperimentConfig churny_config(chain::Protocol protocol, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.params = protocol == chain::Protocol::kBitcoinNG ? chain::Params::bitcoin_ng()
                                                       : chain::Params::bitcoin();
  cfg.params.block_interval = protocol == chain::Protocol::kBitcoinNG ? 60 : 15;
  cfg.params.microblock_interval = 5;
  cfg.params.max_block_size = 6000;
  cfg.params.max_microblock_size = 6000;
  cfg.num_nodes = 40;
  cfg.target_blocks = 25;
  cfg.drain_time = 60;
  cfg.seed = seed;
  // A third of the network flaps: down for one interval, up for the next.
  // Only non-mining nodes flap so the PoW schedule stays meaningful.
  auto powers = sim::exponential_powers(cfg.num_nodes, -0.27);
  for (NodeId n = 25; n < 38; ++n) {
    powers[n] = 0.0;
    for (int cycle = 0; cycle < 6; ++cycle) {
      cfg.churn.push_back({30.0 * (2 * cycle + 1) + n, n, false});
      cfg.churn.push_back({30.0 * (2 * cycle + 2) + n, n, true});
    }
  }
  cfg.custom_powers = powers;
  return cfg;
}

class ChurnTest : public ::testing::TestWithParam<chain::Protocol> {};

TEST_P(ChurnTest, ChainKeepsGrowingUnderChurn) {
  Experiment exp(churny_config(GetParam(), 91));
  exp.run();
  auto m = metrics::compute_metrics(exp);
  EXPECT_GT(m.main_chain_txs, 0u);
  EXPECT_GT(m.tx_per_sec, 0.0);
  // Mining continues at the scheduled rate despite flapping listeners.
  EXPECT_GE(exp.trace().pow_blocks(), GetParam() == chain::Protocol::kBitcoinNG
                                          ? 1u
                                          : 25u);
}

TEST_P(ChurnTest, StableNodesStillAgree) {
  Experiment exp(churny_config(GetParam(), 92));
  exp.run();
  // The stable miners (0..24) must share the same PoW prefix at the end.
  const auto& g = exp.global_tree();
  const Hash256 best_tip = g.best_entry().block->id();
  int agree = 0;
  for (NodeId n = 0; n < 25; ++n) {
    const auto& t = exp.nodes()[n]->tree();
    if (auto idx = t.find(best_tip); idx && t.is_ancestor(*idx, t.best_tip()))
      ++agree;
    else if (t.best_entry().block->id() == best_tip)
      ++agree;
  }
  EXPECT_GE(agree, 20);
}

TEST_P(ChurnTest, FlappedNodesResynchronize) {
  auto cfg = churny_config(GetParam(), 93);
  Experiment exp(cfg);
  exp.run();
  // Flapping nodes end online and catch up via orphan-chasing on the next
  // announcement. A node whose final rejoin lands after the last block was
  // announced has nothing to chase (there is no periodic resync, as in a
  // quiet bitcoind), so require a solid majority rather than all.
  const auto& reference = exp.nodes()[0]->tree();
  int caught_up = 0;
  for (NodeId n = 25; n < 38; ++n) {
    const auto& t = exp.nodes()[n]->tree();
    if (t.size() > reference.size() / 2) ++caught_up;
  }
  EXPECT_GE(caught_up, 8) << "of 13 flapping nodes";
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChurnTest,
                         ::testing::Values(chain::Protocol::kBitcoin,
                                           chain::Protocol::kBitcoinNG));

TEST(Churn, InvalidChurnNodeRejected) {
  auto cfg = churny_config(chain::Protocol::kBitcoin, 94);
  cfg.churn.push_back({1.0, 9999, false});
  Experiment exp(cfg);
  EXPECT_THROW(exp.build(), std::invalid_argument);
}

}  // namespace
}  // namespace bng
