// End-to-end scenarios: the paper's qualitative claims reproduced at small
// scale, plus full-stack consistency checks (ledger replay of simulated
// chains, cross-protocol comparisons).
#include <gtest/gtest.h>

#include "chain/utxo.hpp"
#include "metrics/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/miner_distribution.hpp"

namespace bng {
namespace {

using metrics::compute_metrics;
using sim::Experiment;
using sim::ExperimentConfig;

ExperimentConfig base_config(chain::Protocol protocol, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.params = protocol == chain::Protocol::kBitcoinNG ? chain::Params::bitcoin_ng()
                                                       : chain::Params::bitcoin();
  cfg.params.protocol = protocol;
  cfg.num_nodes = 60;
  cfg.target_blocks = 30;
  cfg.drain_time = 40;
  cfg.seed = seed;
  return cfg;
}

TEST(EndToEnd, NgOutperformsStressedBitcoinOnSecurityMetrics) {
  // The paper's headline: at matched payload throughput, pushing Bitcoin's
  // rate degrades utilization and fairness while NG stays optimal.
  auto btc_cfg = base_config(chain::Protocol::kBitcoin, 21);
  btc_cfg.params.block_interval = 2.0;   // very fast Bitcoin blocks
  btc_cfg.params.max_block_size = 4000;
  Experiment btc(btc_cfg);
  btc.run();

  auto ng_cfg = base_config(chain::Protocol::kBitcoinNG, 21);
  ng_cfg.params.block_interval = 60;     // key blocks
  ng_cfg.params.microblock_interval = 2.0;
  ng_cfg.params.max_microblock_size = 4000;
  Experiment ng(ng_cfg);
  ng.run();

  auto btc_m = compute_metrics(btc);
  auto ng_m = compute_metrics(ng);
  EXPECT_LT(btc_m.mining_power_utilization, 0.9);
  EXPECT_DOUBLE_EQ(ng_m.mining_power_utilization, 1.0);
  EXPECT_GE(ng_m.fairness, btc_m.fairness - 0.05);
  EXPECT_GT(ng_m.tx_per_sec, 0.0);
}

TEST(EndToEnd, NgChainReplaysThroughLedger) {
  // The simulated NG main chain must satisfy the full UTXO state machine:
  // value conservation, fee split, coinbase structure.
  auto cfg = base_config(chain::Protocol::kBitcoinNG, 22);
  cfg.params.microblock_interval = 3.0;
  cfg.params.max_microblock_size = 6000;
  Experiment exp(cfg);
  exp.run();

  chain::Ledger ledger(cfg.params);
  ASSERT_TRUE(ledger.apply_block(*exp.genesis()).ok);
  const auto& g = exp.global_tree();
  auto path = g.path_from_genesis(g.best_tip());
  std::size_t applied = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    auto result = ledger.apply_block(*g.entry(path[i]).block);
    ASSERT_TRUE(result.ok) << "block " << i << ": " << result.error;
    ++applied;
  }
  EXPECT_GT(applied, 10u);
  EXPECT_GT(ledger.transactions_applied(), applied);
}

TEST(EndToEnd, BitcoinChainReplaysThroughLedger) {
  auto cfg = base_config(chain::Protocol::kBitcoin, 23);
  cfg.params.block_interval = 30;
  cfg.params.max_block_size = 6000;
  Experiment exp(cfg);
  exp.run();

  chain::Ledger ledger(cfg.params);
  ASSERT_TRUE(ledger.apply_block(*exp.genesis()).ok);
  const auto& g = exp.global_tree();
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    if (idx == chain::BlockTree::kGenesisIndex) continue;
    auto result = ledger.apply_block(*g.entry(idx).block);
    ASSERT_TRUE(result.ok) << result.error;
  }
}

TEST(EndToEnd, NoTransactionAppearsTwiceOnMainChain) {
  auto cfg = base_config(chain::Protocol::kBitcoinNG, 24);
  Experiment exp(cfg);
  exp.run();
  const auto& g = exp.global_tree();
  std::unordered_set<Hash256, Hash256Hasher> seen;
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    for (const auto& tx : g.entry(idx).block->txs()) {
      auto [it, inserted] = seen.insert(tx->id());
      EXPECT_TRUE(inserted) << "duplicate tx on main chain";
    }
  }
}

TEST(EndToEnd, LeaderEpochsPartitionMicroblocks) {
  // Every main-chain microblock is signed by its epoch's key (§4.2).
  auto cfg = base_config(chain::Protocol::kBitcoinNG, 25);
  cfg.verify_signatures = true;  // full cryptographic check
  cfg.num_nodes = 20;
  cfg.target_blocks = 15;
  Experiment exp(cfg);
  exp.run();
  const auto& g = exp.global_tree();
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    const auto& e = g.entry(idx);
    if (e.block->type() != chain::BlockType::kMicro) continue;
    const auto& epoch = g.entry(e.epoch_key_block);
    ASSERT_TRUE(epoch.block->header().leader_key.has_value());
    ASSERT_TRUE(e.block->header().signature.has_value());
    EXPECT_TRUE(crypto::verify(*epoch.block->header().leader_key,
                               e.block->header().signing_hash(),
                               *e.block->header().signature));
  }
}

TEST(EndToEnd, ChurnNodesCatchUpAfterRejoin) {
  // Robustness to churn (§1): a node that misses an interval of the run
  // re-synchronizes once back online.
  auto cfg = base_config(chain::Protocol::kBitcoin, 26);
  cfg.params.block_interval = 10;
  cfg.params.max_block_size = 8000;
  cfg.num_nodes = 20;
  cfg.target_blocks = 10;
  // Node 5 is fully offline: no mining power either.
  auto powers = sim::exponential_powers(20, -0.27);
  powers[5] = 0.0;
  cfg.custom_powers = powers;
  Experiment exp(cfg);
  exp.build();
  exp.network().set_offline(5, true);
  exp.run();
  // Node 5 missed everything.
  EXPECT_EQ(exp.nodes()[5]->tree().size(), 1u);
  exp.network().set_offline(5, false);
  // One more block triggers inv -> orphan-chase -> full sync.
  exp.nodes()[0]->on_mining_win(1.0);
  exp.queue().run_until(exp.queue().now() + 120);
  EXPECT_EQ(exp.nodes()[5]->tree().best_entry().block->id(),
            exp.nodes()[0]->tree().best_entry().block->id());
}

TEST(EndToEnd, BandwidthAccountingScalesWithBlocks) {
  auto cfg = base_config(chain::Protocol::kBitcoin, 27);
  cfg.num_nodes = 15;
  cfg.target_blocks = 5;
  Experiment small(cfg);
  small.run();
  cfg.target_blocks = 15;
  Experiment large(cfg);
  large.run();
  EXPECT_GT(large.network().bytes_sent(), small.network().bytes_sent());
  EXPECT_GT(large.network().messages_sent(), small.network().messages_sent());
}

TEST(EndToEnd, GhostAndBitcoinAgreeAtLowContention) {
  // With slow blocks both fork-choice rules coincide.
  for (auto protocol : {chain::Protocol::kBitcoin, chain::Protocol::kGhost}) {
    auto cfg = base_config(protocol, 28);
    cfg.params.block_interval = 60;
    cfg.params.max_block_size = 10'000;  // small blocks: propagation << interval
    cfg.num_nodes = 20;
    cfg.target_blocks = 10;
    Experiment exp(cfg);
    exp.run();
    auto m = compute_metrics(exp);
    EXPECT_GT(m.mining_power_utilization, 0.9)
        << "protocol " << static_cast<int>(protocol);
  }
}

}  // namespace
}  // namespace bng
