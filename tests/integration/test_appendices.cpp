// Paper appendices as executable scenarios.
//
// Appendix A: under GHOST, nodes with partial views can each be unable to
// determine the main chain — the information needed (subtree weights) is
// spread across nodes.
//
// Appendix B: on a key-block fork, a leader cannot buy the fork race with
// fees, because the competing branch simply copies the same transactions.
#include <gtest/gtest.h>

#include "../support/harness.hpp"
#include "chain/block_tree.hpp"
#include "ng/ng_node.hpp"

namespace bng {
namespace {

chain::BlockPtr tree_block(chain::BlockType type, const Hash256& prev, Seconds ts,
                           std::uint64_t salt) {
  chain::BlockHeader h;
  h.type = type;
  h.prev = prev;
  h.timestamp = ts;
  h.nonce = salt;
  return std::make_shared<chain::Block>(h, std::vector<chain::TxPtr>{}, 0);
}

TEST(AppendixA, PartialGhostViewsDisagreeOnMainChain) {
  // Figure 9's structure: a chain 0-1-2-3-4 and a branch 2'-{3',3'',3'''}.
  // The full tree's heaviest subtree at the fork is the 2' side (4 blocks vs
  // 3), but each node sees only one of 3',3'',3''' and concludes the 0-1-2-4
  // side (3 blocks vs 2 visible) is the main chain. No single partial view
  // finds the true GHOST chain.
  auto genesis = chain::make_genesis(1, kCoin);
  auto b1 = tree_block(chain::BlockType::kPow, genesis->id(), 1, 1);
  auto b2 = tree_block(chain::BlockType::kPow, b1->id(), 2, 2);
  auto b3 = tree_block(chain::BlockType::kPow, b2->id(), 3, 3);
  auto b4 = tree_block(chain::BlockType::kPow, b3->id(), 4, 4);
  auto b2p = tree_block(chain::BlockType::kPow, b1->id(), 2.5, 5);  // 2'
  auto b3p = tree_block(chain::BlockType::kPow, b2p->id(), 3.5, 6);
  auto b3pp = tree_block(chain::BlockType::kPow, b2p->id(), 3.6, 7);
  auto b3ppp = tree_block(chain::BlockType::kPow, b2p->id(), 3.7, 8);

  // The omniscient view: 2'-subtree weighs 4 (2',3',3'',3''') vs 3 (2,3,4).
  Rng rng(1);
  chain::BlockTree full(genesis, chain::TieBreak::kFirstSeen,
                        chain::BlockTree::ForkChoice::kHeaviestSubtree, &rng);
  for (const auto& b : {b1, b2, b3, b4, b2p, b3p, b3pp, b3ppp})
    full.insert(b, b->header().timestamp, 1.0);
  auto full_tip = full.best_entry().block->id();
  EXPECT_TRUE(full.is_ancestor(*full.find(b2p->id()), full.best_tip()));

  // Three partial views, each missing two of the 2'-children.
  for (const auto& visible : {b3p, b3pp, b3ppp}) {
    chain::BlockTree partial(genesis, chain::TieBreak::kFirstSeen,
                             chain::BlockTree::ForkChoice::kHeaviestSubtree, &rng);
    for (const auto& b : {b1, b2, b3, b4, b2p}) partial.insert(b, 1, 1.0);
    partial.insert(visible, 1, 1.0);
    // Its heaviest-subtree choice lands on the '2' side: 3 > 2 visible.
    EXPECT_TRUE(partial.is_ancestor(*partial.find(b2->id()), partial.best_tip()));
    EXPECT_NE(partial.best_entry().block->id(), full_tip);
  }
}

TEST(AppendixB, CompetingKeyBlockBranchesCarryTheSameTransactions) {
  // Two leaders fork at the same microblock; both branches serialize from
  // the same pending set, so "even if an attacker is motivated to place
  // significant fees ... its competitor will copy those same transactions".
  bng::testing::MiniNet<ng::NgNode> net(2, [] {
    auto p = chain::Params::bitcoin_ng();
    p.microblock_interval = 1.0;
    p.max_microblock_size = 4000;
    return p;
  }(), /*latency=*/5.0);  // high latency: the fork persists long enough

  // Both nodes win a key block at the same instant on the same (genesis)
  // parent, then each produces microblocks on its own branch.
  net.node(0).on_mining_win(1.0);
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 3.5);

  auto payload_ids = [](const chain::BlockTree& t) {
    std::vector<Hash256> ids;
    for (auto idx : t.path_from_genesis(t.best_tip()))
      for (const auto& tx : t.entry(idx).block->txs())
        if (!tx->is_coinbase() && !tx->is_poison()) ids.push_back(tx->id());
    return ids;
  };
  auto ids0 = payload_ids(net.node(0).tree());
  auto ids1 = payload_ids(net.node(1).tree());
  ASSERT_FALSE(ids0.empty());
  ASSERT_FALSE(ids1.empty());
  // The shorter branch's serialization is a prefix of the longer one's:
  // identical transactions, identical order — no fee-based advantage.
  const auto n = std::min(ids0.size(), ids1.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ids0[i], ids1[i]) << "position " << i;
}

}  // namespace
}  // namespace bng
