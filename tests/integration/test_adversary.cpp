// The declarative adversary & fault layer, end-to-end through Experiment:
// the selfish-mining profitability threshold on Bitcoin and NG key blocks
// (the paper's ~25% bound, §2), the full equivocation -> fraud proof ->
// poison -> revenue-revocation pipeline (§4.5), microblock withholding, and
// scheduled partition / eclipse faults.
#include <gtest/gtest.h>

#include "bitcoin/selfish_miner.hpp"
#include "chain/utxo.hpp"
#include "ghost/ghost_node.hpp"
#include "metrics/metrics.hpp"
#include "ng/malicious_leader.hpp"
#include "ng/ng_node.hpp"
#include "sim/experiment.hpp"

namespace bng {
namespace {

sim::ExperimentConfig selfish_config(chain::Protocol proto, double alpha,
                                     std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  if (proto == chain::Protocol::kBitcoinNG) {
    cfg.params = chain::Params::bitcoin_ng();
    cfg.params.block_interval = 20;
    cfg.params.microblock_interval = 10;
    cfg.params.max_microblock_size = 4000;
    cfg.target_blocks = 600;  // microblocks; ~300 key blocks at this cadence
  } else {
    cfg.params = chain::Params::bitcoin();
    cfg.params.protocol = proto;
    cfg.params.block_interval = 10;
    cfg.target_blocks = 600;
  }
  cfg.params.max_block_size = 4000;
  cfg.num_nodes = 40;
  cfg.drain_time = 60;
  cfg.seed = seed;
  cfg.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
  cfg.adversary.power_share = alpha;
  cfg.adversary.gamma = 0.5;
  return cfg;
}

/// Mean SM1 revenue share over a few seeds (smooths race luck).
double mean_revenue(chain::Protocol proto, double alpha) {
  double sum = 0;
  constexpr int kSeeds = 4;
  for (int s = 0; s < kSeeds; ++s) {
    sim::Experiment exp(selfish_config(proto, alpha, 1000 + s));
    exp.run();
    sum += metrics::attacker_report(exp, 0).revenue_share;
  }
  return sum / kSeeds;
}

TEST(SelfishThreshold, BitcoinBelowAndAboveTheBound) {
  // gamma ~= 0.5 -> profitability threshold ~= 1/4 (§2): at alpha = 0.15
  // selfish mining must not pay, at alpha = 0.33 it must.
  EXPECT_LT(mean_revenue(chain::Protocol::kBitcoin, 0.15), 0.15);
  EXPECT_GT(mean_revenue(chain::Protocol::kBitcoin, 0.33), 0.33);
}

TEST(SelfishThreshold, NgKeyBlocksBelowAndAboveTheBound) {
  // The same bound holds on NG's key-block plane — which is exactly why the
  // paper refuses to give microblocks chain weight (§5.1).
  EXPECT_LT(mean_revenue(chain::Protocol::kBitcoinNG, 0.15), 0.15);
  EXPECT_GT(mean_revenue(chain::Protocol::kBitcoinNG, 0.33), 0.33);
}

TEST(StubbornThreshold, LeadStubbornBelowAndAboveTheBound) {
  // Lead-stubborn mining (WithholdingStrategy::Mode::kLeadStubborn) refuses
  // SM1's safe lead-1 cash-out and keeps racing. The profitability threshold
  // stays in the same regime: clearly unprofitable at alpha = 0.15, clearly
  // profitable at alpha = 0.33 with gamma ~= 0.5.
  auto mean_stubborn = [](double alpha) {
    double sum = 0;
    constexpr int kSeeds = 4;
    for (int s = 0; s < kSeeds; ++s) {
      auto cfg = selfish_config(chain::Protocol::kBitcoin, alpha, 2000 + s);
      cfg.adversary.kind = sim::AdversarySpec::Kind::kStubborn;
      sim::Experiment exp(cfg);
      exp.run();
      sum += metrics::attacker_report(exp, 0).revenue_share;
    }
    return sum / kSeeds;
  };
  EXPECT_LT(mean_stubborn(0.15), 0.15);
  EXPECT_GT(mean_stubborn(0.33), 0.33);
}

TEST(SelfishThreshold, GammaZeroNeverPaysAtAlphaThird) {
  // With gamma = 0 (honest nodes never adopt the attacker's matching block)
  // the SM1 threshold rises to ~1/3: alpha = 0.30 must stay unprofitable.
  auto cfg = selfish_config(chain::Protocol::kBitcoin, 0.30, 77);
  cfg.adversary.gamma = 0.0;
  sim::Experiment exp(cfg);
  exp.run();
  EXPECT_LT(metrics::attacker_report(exp, 0).revenue_share, 0.30);
}

TEST(Adversary, GhostSelfishMinerEngagesTheStrategy) {
  auto cfg = selfish_config(chain::Protocol::kGhost, 0.30, 9);
  cfg.target_blocks = 150;
  sim::Experiment exp(cfg);
  exp.run();
  const auto& attacker = static_cast<const ghost::SelfishGhostMiner&>(*exp.nodes()[0]);
  EXPECT_GT(attacker.blocks_published(), 0u);
  EXPECT_GT(metrics::attacker_report(exp, 0).revenue_share, 0.0);
}

TEST(Adversary, NgSelfishWithholdsTheWholeEpochIncludingMicroblocks) {
  // Regression for the relay/registration ordering: accept_block consults
  // should_relay before after_accept registers an own private-chain
  // microblock, so without the pre-registration suppress rule the micro is
  // announced and honest peers orphan-chase the withheld key block out of
  // the attacker. Nothing of the private epoch may leak.
  auto cfg = selfish_config(chain::Protocol::kBitcoinNG, 0.30, 3);
  cfg.num_nodes = 8;
  sim::Experiment exp(cfg);
  exp.build();
  auto& attacker = static_cast<ng::SelfishNgMiner&>(*exp.nodes()[0]);
  attacker.on_mining_win(1.0);  // withheld key block; leader on own view
  exp.queue().run_until(60.0);  // several microblock intervals
  EXPECT_GT(attacker.withheld(), 1u);  // key block + private microblocks
  EXPECT_EQ(attacker.blocks_published(), 0u);
  for (const auto& node : exp.nodes()) {
    if (node->id() == 0) continue;
    EXPECT_EQ(node->tree().size(), 1u)
        << "private epoch leaked to node " << node->id();
  }
}

TEST(Adversary, EquivocatingLeaderIsPoisonedAndLosesRevenueInLedger) {
  // Acceptance path for §4.5: an NG simulation with an equivocating leader
  // must produce at least one poison transaction that revokes the leader's
  // revenue in the final ledger.
  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();
  cfg.params.block_interval = 15;
  cfg.params.microblock_interval = 3;
  cfg.params.max_microblock_size = 4000;
  cfg.params.max_block_size = 4000;
  cfg.num_nodes = 24;
  cfg.min_degree = 8;
  cfg.target_blocks = 150;
  cfg.drain_time = 60;
  cfg.seed = 5;
  cfg.adversary.kind = sim::AdversarySpec::Kind::kEquivocate;
  cfg.adversary.power_share = 0.30;
  cfg.adversary.equivocate_every = 1;
  sim::Experiment exp(cfg);
  exp.run();

  const auto& leader = static_cast<const ng::MaliciousLeader&>(*exp.nodes()[0]);
  ASSERT_GT(leader.equivocations(), 0u);
  ASSERT_FALSE(exp.trace().frauds().empty());

  // Replay the eventual main chain through the ledger.
  const auto& g = exp.global_tree();
  chain::Ledger ledger(cfg.params);
  std::uint64_t poisons = 0;
  std::uint32_t attacker_keys = 0;
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    const auto& block = *g.entry(idx).block;
    if (idx != chain::BlockTree::kGenesisIndex &&
        block.type() == chain::BlockType::kKey && block.miner() == 0)
      ++attacker_keys;
    for (const auto& tx : block.txs())
      if (tx->poison) ++poisons;
    if (idx == chain::BlockTree::kGenesisIndex) {
      ASSERT_TRUE(ledger.apply_block(block).ok);
      continue;
    }
    auto r = ledger.apply_block(block);
    ASSERT_TRUE(r.ok) << r.error;
  }
  EXPECT_GE(poisons, 1u);
  ASSERT_GT(attacker_keys, 0u);

  // Revocation: at least one attacker epoch's subsidy is gone, so its final
  // balance is strictly below subsidy x (key blocks it kept on the chain).
  // (Fee shares are orders of magnitude below the subsidy at this scale.)
  const Amount balance = ledger.total_balance(leader.reward_address());
  EXPECT_LT(balance, static_cast<Amount>(attacker_keys) * cfg.params.block_subsidy);
}

TEST(Adversary, WithholdingLeaderStarvesTheTransactionPlane) {
  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();
  cfg.params.block_interval = 20;
  cfg.params.microblock_interval = 2;
  cfg.params.max_microblock_size = 4000;
  cfg.num_nodes = 16;
  cfg.target_blocks = 80;
  cfg.drain_time = 30;
  cfg.seed = 11;
  cfg.adversary.kind = sim::AdversarySpec::Kind::kWithholdMicro;
  cfg.adversary.power_share = 0.40;
  sim::Experiment exp(cfg);
  exp.run();

  // The attacker led epochs whose microblocks were never produced...
  const auto& attacker = static_cast<const ng::MaliciousLeader&>(*exp.nodes()[0]);
  ASSERT_GT(attacker.microblocks_withheld(), 0u);
  // ...and no honest node ever saw an attacker microblock.
  for (const auto& node : exp.nodes()) {
    if (node->id() == 0) continue;
    const auto& t = node->tree();
    for (std::uint32_t i = 0; i < t.size(); ++i) {
      const auto& b = *t.entry(i).block;
      EXPECT_FALSE(b.type() == chain::BlockType::kMicro && b.miner() == 0)
          << "withheld microblock leaked to node " << node->id();
    }
  }
}

TEST(Faults, PartitionRaisesForkPressure) {
  auto base = [](std::uint64_t seed) {
    sim::ExperimentConfig cfg;
    cfg.params = chain::Params::bitcoin();
    cfg.params.block_interval = 10;
    cfg.params.max_block_size = 4000;
    cfg.num_nodes = 30;
    cfg.target_blocks = 40;
    cfg.drain_time = 60;
    cfg.seed = seed;
    return cfg;
  };
  auto forks = [](sim::ExperimentConfig cfg) {
    sim::Experiment exp(std::move(cfg));
    exp.run();
    const auto m = metrics::compute_metrics(exp);
    return m.total_pow_blocks - m.main_chain_pow_blocks;
  };
  auto cut = base(21);
  net::FaultPlan::Partition p;
  p.at = 60;
  p.heal_at = 240;  // ~18 block intervals of independent mining
  for (NodeId v = 0; v < 15; ++v) p.group.push_back(v);
  cut.faults.partitions.push_back(std::move(p));
  EXPECT_GT(forks(std::move(cut)), forks(base(21)));
}

TEST(Faults, EclipsedLargestMinerLosesRevenue) {
  auto run = [](bool eclipse) {
    sim::ExperimentConfig cfg;
    cfg.params = chain::Params::bitcoin();
    cfg.params.block_interval = 10;
    cfg.params.max_block_size = 4000;
    cfg.num_nodes = 30;
    cfg.target_blocks = 40;
    cfg.drain_time = 60;
    cfg.seed = 23;
    if (eclipse) cfg.faults.eclipses.push_back(net::FaultPlan::Eclipse{30, 330, 0});
    sim::Experiment exp(std::move(cfg));
    exp.run();
    return metrics::attacker_report(exp, 0);
  };
  const auto dark = run(true);
  const auto lit = run(false);
  // Node 0 is the largest miner of the exponential population; eclipsed for
  // most of the run, its main-chain share collapses while its fair share is
  // unchanged.
  EXPECT_DOUBLE_EQ(dark.fair_share, lit.fair_share);
  EXPECT_LT(dark.revenue_share, 0.5 * lit.revenue_share);
}

TEST(Adversary, SpecValidation) {
  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin();
  cfg.num_nodes = 4;
  cfg.target_blocks = 1;
  cfg.adversary.kind = sim::AdversarySpec::Kind::kEquivocate;  // NG-only
  sim::Experiment exp(cfg);
  EXPECT_THROW(exp.build(), std::invalid_argument);

  sim::ExperimentConfig cfg2;
  cfg2.num_nodes = 4;
  cfg2.target_blocks = 1;
  cfg2.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
  cfg2.adversary.node = 99;
  sim::Experiment exp2(cfg2);
  EXPECT_THROW(exp2.build(), std::invalid_argument);
}

}  // namespace
}  // namespace bng
