// Adversarial scenarios: split-brain microblock forks, leader crashes,
// censorship, and the incentive mechanisms that contain them (§4.5, §5.2).
#include <gtest/gtest.h>

#include "../support/harness.hpp"
#include "chain/utxo.hpp"
#include "metrics/metrics.hpp"
#include "ng/ng_node.hpp"
#include "sim/experiment.hpp"

namespace bng {
namespace {

using bng::testing::MiniNet;
using bng::testing::Topo;

chain::Params ng_params(Seconds micro_interval = 1.0) {
  auto p = chain::Params::bitcoin_ng();
  p.block_interval = 100.0;
  p.microblock_interval = micro_interval;
  p.max_microblock_size = 4000;
  return p;
}

TEST(Attacks, SplitBrainResolvedAndPoisoned) {
  // A malicious leader in the middle of a line topology signs two
  // microblocks with the same parent (splitting the brain, §4.5). The fork
  // resolves at the next key block and the cheater gets poisoned.
  MiniNet<ng::NgNode> net(5, ng_params(), /*latency=*/0.05, 10e6, 2000, true,
                          Topo::kLine);
  net.node(2).on_mining_win(1.0);  // middle node leads
  net.queue().run_until(net.queue().now() + 2.5);
  net.settle();
  const Hash256 kb = [&] {
    const auto& t = net.node(2).tree();
    for (auto idx : t.path_from_genesis(t.best_tip()))
      if (t.entry(idx).block->type() == chain::BlockType::kKey)
        return t.entry(idx).block->id();
    return Hash256{};
  }();
  ASSERT_FALSE(kb.is_zero());
  net.node(2).forge_microblock(kb);  // equivocation: second child of the key block
  net.settle(10);
  EXPECT_FALSE(net.trace().frauds().empty());

  // An honest edge node takes over; brains re-merge and the poison lands.
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 5.0);
  net.settle(20);
  EXPECT_TRUE(net.consistent());
  EXPECT_EQ(net.node(0).poisons_placed(), 1u);
}

TEST(Attacks, PoisonedLeaderLosesRevenueOnReplay) {
  // Economic end-to-end: replay a poisoned chain through the Ledger and
  // check the cheater's balance was revoked while the poisoner gained.
  MiniNet<ng::NgNode> net(3, ng_params());
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 2.5);
  net.settle();
  const Hash256 kb = [&] {
    const auto& t = net.node(0).tree();
    for (auto idx : t.path_from_genesis(t.best_tip()))
      if (t.entry(idx).block->type() == chain::BlockType::kKey)
        return t.entry(idx).block->id();
    return Hash256{};
  }();
  net.node(0).forge_microblock(kb);
  net.settle();
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 3.5);
  net.settle();
  ASSERT_EQ(net.node(1).poisons_placed(), 1u);

  // Replay node 1's main chain.
  auto params = ng_params();
  chain::Ledger ledger(params);
  ASSERT_TRUE(ledger.apply_block(*net.genesis()).ok);
  const auto& t = net.node(1).tree();
  for (auto idx : t.path_from_genesis(t.best_tip())) {
    if (idx == chain::BlockTree::kGenesisIndex) continue;
    auto r = ledger.apply_block(*t.entry(idx).block);
    ASSERT_TRUE(r.ok) << r.error;
  }
  // Cheater's balance: poison revoked its subsidy and any fee share.
  EXPECT_EQ(ledger.total_balance(net.node(0).reward_address()), 0);
  // Poisoner holds its own subsidy + 60% share + bounty > subsidy.
  EXPECT_GT(ledger.total_balance(net.node(1).reward_address()),
            params.block_subsidy);
  EXPECT_TRUE(ledger.is_poisoned(kb));
}

TEST(Attacks, CrashedLeaderStallsOnlyItsEpoch) {
  // §5.2: "a benign leader that crashes during his epoch of leadership will
  // publish no microblocks. Their influence ends once the next leader
  // publishes his key block."
  MiniNet<ng::NgNode> net(3, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 3.5);
  net.settle();
  const auto micros_before = net.trace().micro_blocks();
  EXPECT_GT(micros_before, 0u);
  // Leader crashes.
  net.network().set_offline(0, true);
  net.queue().run_until(net.queue().now() + 10.0);
  // Its microblocks no longer reach anyone; node 1's view is frozen.
  const auto frozen_tip = net.node(1).tree().best_entry().block->id();
  net.queue().run_until(net.queue().now() + 5.0);
  EXPECT_EQ(net.node(1).tree().best_entry().block->id(), frozen_tip);
  // The next key block restores liveness without the crashed leader.
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 5.0);
  net.settle();
  EXPECT_GT(net.node(2).tree().best_entry().chain_tx_count,
            net.node(1).tree().entry(*net.node(1).tree().find(frozen_tip)).chain_tx_count);
}

TEST(Attacks, PrunedMicroblockTransactionsReappearOnMainChain) {
  // §4.3 confirmation time: transactions in to-be-pruned microblocks are
  // not lost — the next leader re-serializes them.
  MiniNet<ng::NgNode> net(2, ng_params(1.0), /*latency=*/2.0);
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 10.0);
  // Node 1 mines a key block while lagging: prunes recent microblocks.
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 15.0);
  net.settle(30);
  // Find a pruned microblock in node 0's tree (off its final main chain).
  const auto& t = net.node(0).tree();
  std::vector<bool> on_main(t.size(), false);
  for (auto idx : t.path_from_genesis(t.best_tip())) on_main[idx] = true;
  const chain::Block* pruned = nullptr;
  for (std::uint32_t i = 1; i < t.size(); ++i) {
    if (!on_main[i] && t.entry(i).block->type() == chain::BlockType::kMicro &&
        !t.entry(i).block->txs().empty())
      pruned = t.entry(i).block.get();
  }
  if (pruned == nullptr) GTEST_SKIP() << "no pruned microblock this seed";
  // Every payload tx of the pruned block reappears on the main chain.
  std::unordered_set<Hash256, Hash256Hasher> main_txs;
  for (auto idx : t.path_from_genesis(t.best_tip()))
    for (const auto& tx : t.entry(idx).block->txs()) main_txs.insert(tx->id());
  for (const auto& tx : pruned->txs()) {
    if (tx->is_coinbase()) continue;
    EXPECT_EQ(main_txs.count(tx->id()), 1u);
  }
}

TEST(Attacks, MiningPowerDropKeepsMicroblockCadence) {
  // §5.2 "Resilience to Mining Power Variation": when most mining power
  // vanishes, key blocks stall but transaction processing continues at the
  // same rate in microblocks.
  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin_ng();
  cfg.params.block_interval = 20;
  cfg.params.microblock_interval = 2;
  cfg.params.max_microblock_size = 4000;
  cfg.num_nodes = 20;
  cfg.target_blocks = 10;
  cfg.drain_time = 1;
  cfg.seed = 31;
  cfg.retarget = chain::RetargetRule{10, 20.0, 4.0};
  sim::Experiment exp(cfg);
  exp.build();
  exp.scheduler().start();
  exp.queue().run_until(200.0);
  const auto micro_before = exp.trace().micro_blocks();
  ASSERT_GT(micro_before, 0u);
  // 90% of power leaves; difficulty stays tuned for the old rate.
  for (std::uint32_t i = 0; i < 18; ++i) exp.scheduler().set_power(i, 1e-9);
  const double stalled_interval = exp.scheduler().current_mean_interval();
  exp.queue().run_until(400.0);
  const auto micro_after = exp.trace().micro_blocks() - micro_before;
  // Key blocks now crawl...
  EXPECT_GT(stalled_interval, 3 * 20.0);
  // ...but microblocks kept flowing at roughly interval/2 per second.
  EXPECT_GE(micro_after, 60u);  // 200 s / 2 s = 100 nominal, allow slack
  exp.scheduler().stop();
}

TEST(Attacks, OfflineMinorityDoesNotStallBitcoin) {
  sim::ExperimentConfig cfg;
  cfg.params = chain::Params::bitcoin();
  cfg.params.block_interval = 10;
  cfg.params.max_block_size = 4000;
  cfg.num_nodes = 20;
  cfg.target_blocks = 15;
  cfg.drain_time = 20;
  cfg.seed = 32;
  sim::Experiment exp(cfg);
  exp.build();
  for (NodeId i = 15; i < 20; ++i) exp.network().set_offline(i, true);
  exp.run();
  EXPECT_GE(exp.trace().pow_blocks(), 15u);
  auto m = metrics::compute_metrics(exp);
  EXPECT_GT(m.tx_per_sec, 0.0);
}

}  // namespace
}  // namespace bng
