#include "analysis/incentives.hpp"

#include <gtest/gtest.h>

namespace bng::analysis {
namespace {

TEST(Incentives, PaperLowerBoundAtQuarter) {
  // §5.1: "Assuming the power of an attacker is bounded by 1/4 ... we obtain
  // r_leader > 37%".
  EXPECT_NEAR(inclusion_lower_bound(0.25), 0.368, 0.001);
}

TEST(Incentives, PaperUpperBoundAtQuarter) {
  // §5.1: "... we obtain r_leader < 43%".
  EXPECT_NEAR(extension_upper_bound(0.25), 0.4286, 0.001);
}

TEST(Incentives, FortyPercentInsideWindowAtQuarter) {
  auto w = fee_window(0.25);
  EXPECT_TRUE(w.feasible);
  EXPECT_LT(w.lower, 0.40);
  EXPECT_GT(w.upper, 0.40);
}

TEST(Incentives, WindowEmptyUnderRushingAdversary) {
  // §5.1 "Optimal Network Assumption": at alpha = 1/3 the bounds become
  // r > 45% and r < 40% — no feasible fee split.
  auto w = fee_window(1.0 / 3.0);
  EXPECT_NEAR(w.lower, 0.4545, 0.001);
  EXPECT_NEAR(w.upper, 0.40, 0.001);
  EXPECT_FALSE(w.feasible);
}

TEST(Incentives, BoundsAtZeroAttacker) {
  EXPECT_DOUBLE_EQ(inclusion_lower_bound(0.0), 0.0);
  EXPECT_DOUBLE_EQ(extension_upper_bound(0.0), 0.5);
  EXPECT_TRUE(fee_window(0.0).feasible);
}

TEST(Incentives, WindowShrinksMonotonically) {
  double prev_width = 1.0;
  for (double alpha = 0.0; alpha < 0.32; alpha += 0.02) {
    auto w = fee_window(alpha);
    double width = w.upper - w.lower;
    EXPECT_LT(width, prev_width) << "alpha " << alpha;
    prev_width = width;
  }
}

TEST(Incentives, MaxFeasibleAlphaBetweenQuarterAndThird) {
  double a = max_feasible_alpha();
  EXPECT_GT(a, 0.25);
  EXPECT_LT(a, 1.0 / 3.0);
  // Just below the boundary the window is feasible, just above it is not.
  EXPECT_TRUE(fee_window(a - 1e-6).feasible);
  EXPECT_FALSE(fee_window(a + 1e-6).feasible);
}

TEST(Incentives, InvalidAlphaThrows) {
  EXPECT_THROW(inclusion_lower_bound(-0.1), std::invalid_argument);
  EXPECT_THROW(extension_upper_bound(1.0), std::invalid_argument);
}

TEST(Incentives, AttackUnprofitableAtPaperSplit) {
  // With r = 40% and alpha = 1/4, hiding the transaction must pay less than
  // honest inclusion.
  const double honest = inclusion_honest_revenue(0.25, 0.40);
  const double attack = inclusion_attack_revenue(0.25, 0.40);
  EXPECT_LT(attack, honest);
}

TEST(Incentives, AttackProfitableBelowLowerBound) {
  // If the leader's share were below the bound (e.g. 30%), the inclusion
  // attack would beat honest behaviour... compare against the *honest*
  // revenue of simply placing the tx (r) as the paper's inequality does.
  const double r = 0.30;
  const double attack = inclusion_attack_revenue(0.25, r);
  EXPECT_GT(attack, r);
}

TEST(Incentives, MonteCarloMatchesClosedForm) {
  Rng rng(42);
  for (double alpha : {0.1, 0.25, 0.33}) {
    for (double r : {0.30, 0.40, 0.50}) {
      double sim = simulate_inclusion_attack(alpha, r, 400'000, rng);
      double closed = inclusion_attack_revenue(alpha, r);
      EXPECT_NEAR(sim, closed, 0.005) << "alpha=" << alpha << " r=" << r;
    }
  }
}

TEST(Incentives, CensorshipWaitMatchesPaper) {
  // §5.2: 3/4 honest -> 4/3 blocks -> 13.33 minutes at 10-minute intervals.
  EXPECT_NEAR(expected_wait_blocks(0.75), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(expected_wait_seconds(0.75, 600), 800.0, 1e-9);
  EXPECT_DOUBLE_EQ(expected_wait_blocks(1.0), 1.0);
}

TEST(Incentives, CensorshipRejectsBadFraction) {
  EXPECT_THROW(expected_wait_blocks(0.0), std::invalid_argument);
  EXPECT_THROW(expected_wait_blocks(1.5), std::invalid_argument);
}

class FeeWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(FeeWindowSweep, BoundsAreOrderedAndInUnitInterval) {
  const double alpha = GetParam();
  auto w = fee_window(alpha);
  EXPECT_GE(w.lower, 0.0);
  EXPECT_LE(w.upper, 0.5);
  if (w.feasible) EXPECT_LT(w.lower, w.upper);
}

INSTANTIATE_TEST_SUITE_P(Alphas, FeeWindowSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.33, 0.4,
                                           0.49));

}  // namespace
}  // namespace bng::analysis
