#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace bng::metrics {
namespace {

using sim::Experiment;
using sim::ExperimentConfig;

/// One shared pair of small experiments (they are deterministic).
class MetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    {
      ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin_ng();
      cfg.params.block_interval = 50;
      cfg.params.microblock_interval = 5;
      cfg.params.max_microblock_size = 9000;
      cfg.num_nodes = 40;
      cfg.target_blocks = 30;
      cfg.drain_time = 30;
      cfg.seed = 11;
      ng_ = new Experiment(cfg);
      ng_->run();
    }
    {
      ExperimentConfig cfg;
      cfg.params = chain::Params::bitcoin();
      cfg.params.block_interval = 3.0;  // stressed: frequent forks
      cfg.params.max_block_size = 9000;
      cfg.num_nodes = 40;
      cfg.target_blocks = 40;
      cfg.drain_time = 30;
      cfg.seed = 12;
      btc_ = new Experiment(cfg);
      btc_->run();
    }
  }

  static void TearDownTestSuite() {
    delete ng_;
    delete btc_;
    ng_ = nullptr;
    btc_ = nullptr;
  }

  static Experiment* ng_;
  static Experiment* btc_;
};

Experiment* MetricsTest::ng_ = nullptr;
Experiment* MetricsTest::btc_ = nullptr;

TEST_F(MetricsTest, MainChainIsConnectedPath) {
  auto path = final_main_chain(*ng_);
  ASSERT_GT(path.size(), 1u);
  const auto& g = ng_->global_tree();
  EXPECT_EQ(path[0], chain::BlockTree::kGenesisIndex);
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_EQ(static_cast<std::uint32_t>(g.entry(path[i]).parent), path[i - 1]);
}

TEST_F(MetricsTest, NgUtilizationIsOptimal) {
  // §8: "In Bitcoin-NG, difficulty is only accrued in key blocks, so
  // microblock forks do not reduce mining power utilization."
  EXPECT_DOUBLE_EQ(mining_power_utilization(*ng_), 1.0);
}

TEST_F(MetricsTest, StressedBitcoinWastesMiningPower) {
  double mpu = mining_power_utilization(*btc_);
  EXPECT_LT(mpu, 0.95);
  EXPECT_GT(mpu, 0.2);
}

TEST_F(MetricsTest, FairnessNearOneForNg) {
  EXPECT_NEAR(fairness(*ng_), 1.0, 0.05);
}

TEST_F(MetricsTest, FairnessWithinValidRange) {
  double f = fairness(*btc_);
  EXPECT_GT(f, 0.3);
  EXPECT_LT(f, 1.3);  // small-sample noise allows >1
}

TEST_F(MetricsTest, ConsensusDelayPositiveAndBounded) {
  double ng_delay = consensus_delay(*ng_, 0.9, 0.9);
  double btc_delay = consensus_delay(*btc_, 0.9, 0.9);
  EXPECT_GT(ng_delay, 0.0);
  EXPECT_GT(btc_delay, 0.0);
  EXPECT_LT(ng_delay, ng_->end_time());
  EXPECT_LT(btc_delay, btc_->end_time());
}

TEST_F(MetricsTest, ConsensusDelayMonotoneInEpsilon) {
  // Requiring more nodes to agree cannot shrink the delay.
  double d50 = consensus_delay(*btc_, 0.5, 0.9);
  double d90 = consensus_delay(*btc_, 0.9, 0.9);
  EXPECT_LE(d50, d90 + 1e-9);
}

TEST_F(MetricsTest, ConsensusDelayMonotoneInDelta) {
  double d50 = consensus_delay(*btc_, 0.9, 0.5);
  double d90 = consensus_delay(*btc_, 0.9, 0.9);
  EXPECT_LE(d50, d90 + 1e-9);
}

TEST_F(MetricsTest, TimeToPruneNonNegative) {
  EXPECT_GE(time_to_prune(*ng_), 0.0);
  EXPECT_GE(time_to_prune(*btc_), 0.0);
}

TEST_F(MetricsTest, StressedBitcoinHasPruning) {
  // At 3-second blocks with seconds-scale propagation, forks are certain.
  MetricsReport r = compute_metrics(*btc_);
  EXPECT_LT(r.main_chain_pow_blocks, r.total_pow_blocks);
  EXPECT_GT(r.time_to_prune_p90_s, 0.0);
}

TEST_F(MetricsTest, TimeToWinNonNegativeAndBounded) {
  double ttw = time_to_win(*btc_);
  EXPECT_GE(ttw, 0.0);
  EXPECT_LT(ttw, btc_->end_time());
}

TEST_F(MetricsTest, TransactionFrequencyMatchesChainContents) {
  const auto& g = ng_->global_tree();
  double expected = static_cast<double>(g.best_entry().chain_tx_count) /
                    g.best_entry().received;
  EXPECT_DOUBLE_EQ(transaction_frequency(*ng_), expected);
  EXPECT_GT(transaction_frequency(*ng_), 0.0);
}

TEST_F(MetricsTest, PropagationDelaysPopulated) {
  auto delays = propagation_delays(*ng_);
  // blocks * (nodes - 1) receipts, minus losses on pruned branches.
  EXPECT_GT(delays.size(), ng_->trace().generated().size());
  for (double d : delays) EXPECT_GE(d, 0.0);
}

TEST_F(MetricsTest, ReportCountsConsistent) {
  MetricsReport r = compute_metrics(*ng_);
  EXPECT_LE(r.main_chain_pow_blocks, r.total_pow_blocks);
  EXPECT_LE(r.main_chain_micro_blocks, r.total_micro_blocks);
  EXPECT_EQ(r.total_pow_blocks + r.total_micro_blocks,
            ng_->trace().generated().size());
  EXPECT_GT(r.chain_duration_s, 0.0);
  EXPECT_GT(r.main_chain_txs, 0u);
}

}  // namespace
}  // namespace bng::metrics
