#include "ng/ng_node.hpp"

#include <gtest/gtest.h>

#include "../support/harness.hpp"

namespace bng::ng {
namespace {

using bng::testing::MiniNet;

chain::Params ng_params(Seconds micro_interval = 1.0) {
  auto p = chain::Params::bitcoin_ng();
  p.block_interval = 100.0;
  p.microblock_interval = micro_interval;
  p.max_microblock_size = 4000;
  return p;
}

TEST(NgNode, KeyBlockWinMakesLeader) {
  MiniNet<NgNode> net(3, ng_params());
  EXPECT_FALSE(net.node(0).is_leader());
  net.node(0).on_mining_win(1.0);
  EXPECT_TRUE(net.node(0).is_leader());
  EXPECT_EQ(net.node(0).key_blocks_mined(), 1u);
  const auto& tip = net.node(0).tree().best_entry();
  EXPECT_EQ(tip.block->type(), chain::BlockType::kKey);
  ASSERT_TRUE(tip.block->header().leader_key.has_value());
  EXPECT_EQ(*tip.block->header().leader_key, net.node(0).leader_pubkey());
}

TEST(NgNode, LeaderEmitsMicroblocksAtConfiguredRate) {
  MiniNet<NgNode> net(3, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 10.5);
  // ~10 microblocks in 10.5 s at 1/s.
  EXPECT_GE(net.node(0).microblocks_generated(), 9u);
  EXPECT_LE(net.node(0).microblocks_generated(), 11u);
  EXPECT_EQ(net.trace().micro_blocks(), net.node(0).microblocks_generated());
}

TEST(NgNode, MicroblocksPropagateAndExtendChains) {
  MiniNet<NgNode> net(3, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 5.5);
  net.settle();
  EXPECT_TRUE(net.consistent());
  const auto& tip = net.node(2).tree().best_entry();
  EXPECT_EQ(tip.block->type(), chain::BlockType::kMicro);
  EXPECT_GT(tip.chain_tx_count, 0u);
}

TEST(NgNode, MicroblocksAreSigned) {
  MiniNet<NgNode> net(2, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 1.5);
  const auto& tree = net.node(0).tree();
  const auto& tip = tree.best_entry();
  ASSERT_EQ(tip.block->type(), chain::BlockType::kMicro);
  ASSERT_TRUE(tip.block->header().signature.has_value());
  EXPECT_TRUE(crypto::verify(net.node(0).leader_pubkey(),
                             tip.block->header().signing_hash(),
                             *tip.block->header().signature));
}

TEST(NgNode, LeadershipTransfersOnNewKeyBlock) {
  MiniNet<NgNode> net(3, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 3.5);
  EXPECT_TRUE(net.node(0).is_leader());
  net.node(1).on_mining_win(1.0);
  net.settle();
  EXPECT_FALSE(net.node(0).is_leader());
  EXPECT_TRUE(net.node(1).is_leader());
  // The old leader stops producing.
  auto count_before = net.node(0).microblocks_generated();
  net.queue().run_until(net.queue().now() + 5.0);
  EXPECT_EQ(net.node(0).microblocks_generated(), count_before);
  EXPECT_GT(net.node(1).microblocks_generated(), 0u);
}

TEST(NgNode, MicroblocksCarryNoWeight) {
  MiniNet<NgNode> net(2, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 5.5);
  const auto& tip = net.node(0).tree().best_entry();
  EXPECT_EQ(tip.block->type(), chain::BlockType::kMicro);
  EXPECT_DOUBLE_EQ(tip.chain_work, 1.0);  // only the key block weighs
  EXPECT_GT(tip.height, 1u);
}

TEST(NgNode, LeaderSwitchForkPrunedByKeyBlock) {
  // Fig 2: the previous leader's unseen microblocks are pruned by the new
  // key block. High latency widens the fork window. A block needs three
  // one-way trips (inv/getdata/block) to cross a hop, so leadership
  // knowledge lags by ~3 * latency.
  MiniNet<NgNode> net(2, ng_params(1.0), /*latency=*/2.5);
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 12.0);
  // Node 1 mines a key block on its (laggy) view: it lacks recent micros.
  net.node(1).on_mining_win(1.0);
  net.settle(60);
  EXPECT_TRUE(net.consistent());
  const auto& tip = net.node(0).tree().best_entry();
  EXPECT_DOUBLE_EQ(tip.chain_work, 2.0);
  // Some of node 0's microblocks were pruned: generated more than on chain.
  const auto& tree = net.node(0).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  std::size_t on_chain_micro = 0;
  for (auto idx : path)
    if (tree.entry(idx).block->type() == chain::BlockType::kMicro) ++on_chain_micro;
  EXPECT_LT(on_chain_micro, net.node(0).microblocks_generated() +
                                net.node(1).microblocks_generated());
}

TEST(NgNode, FeeSplit40To60) {
  // Epoch fees F must split 40% to the epoch leader, 60% (+subsidy) to the
  // next key-block miner (§4.4).
  auto params = ng_params(1.0);
  MiniNet<NgNode> net(2, params);
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 3.5);  // a few microblocks
  net.settle();
  net.node(1).on_mining_win(1.0);
  net.settle();
  // Locate node 1's key block on the chain (the tip may already be a newer
  // microblock).
  const auto& tree = net.node(1).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  const chain::BlockTree::Entry* key2 = nullptr;
  for (auto idx : path) {
    const auto& e = tree.entry(idx);
    if (e.block->type() == chain::BlockType::kKey && e.block->miner() == 1) key2 = &e;
  }
  ASSERT_NE(key2, nullptr);
  const auto& tip = *key2;
  const auto& prev_epoch = tree.entry(tree.entry(
      static_cast<std::uint32_t>(tip.parent)).epoch_key_block);
  const Amount epoch_fees = tree.entry(static_cast<std::uint32_t>(tip.parent)).chain_fee_sum -
                            prev_epoch.chain_fee_sum;
  ASSERT_GT(epoch_fees, 0);
  const auto& coinbase = *tip.block->txs()[0];
  ASSERT_EQ(coinbase.outputs.size(), 2u);
  const Amount leader_share = coinbase.outputs[0].value;
  const Amount miner_share = coinbase.outputs[1].value;
  EXPECT_EQ(leader_share, static_cast<Amount>(0.4 * static_cast<double>(epoch_fees)));
  EXPECT_EQ(miner_share, params.block_subsidy + epoch_fees - leader_share);
  EXPECT_EQ(coinbase.outputs[0].owner, net.node(0).reward_address());
  EXPECT_EQ(coinbase.outputs[1].owner, net.node(1).reward_address());
}

TEST(NgNode, FirstKeyBlockPaysAllToMiner) {
  MiniNet<NgNode> net(2, ng_params());
  net.node(0).on_mining_win(1.0);
  const auto& tip = net.node(0).tree().best_entry();
  const auto& coinbase = *tip.block->txs()[0];
  ASSERT_EQ(coinbase.outputs.size(), 1u);
  EXPECT_EQ(coinbase.outputs[0].value, ng_params().block_subsidy);
  EXPECT_EQ(coinbase.outputs[0].owner, net.node(0).reward_address());
}

TEST(NgNode, RespectsMicroblockSizeLimit) {
  auto params = ng_params(1.0);
  MiniNet<NgNode> net(2, params);
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 3.5);
  const auto& tree = net.node(0).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  for (auto idx : path) {
    const auto& block = *tree.entry(idx).block;
    if (block.type() == chain::BlockType::kMicro)
      EXPECT_LE(block.wire_size(), params.max_microblock_size);
  }
}

TEST(NgNode, InvalidSignatureMicroblockRejected) {
  MiniNet<NgNode> net(2, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.settle();
  // Forge a microblock signed by the WRONG key extending node 0's key block.
  auto bad_signer = crypto::PrivateKey::from_seed(0xbad);
  chain::BlockHeader h;
  h.type = chain::BlockType::kMicro;
  h.prev = net.node(1).tree().best_entry().block->id();
  h.timestamp = net.queue().now();
  std::vector<chain::TxPtr> txs{net.workload().txs[0]};
  h.merkle_root = chain::compute_merkle_root(txs);
  h.signature = crypto::sign(bad_signer, h.signing_hash());
  auto forged = std::make_shared<chain::Block>(h, txs, 0);
  net.network().send(0, 1, std::make_shared<protocol::BlockMessage>(forged));
  net.settle();
  EXPECT_FALSE(net.node(1).tree().contains(forged->id()));
}

TEST(NgNode, FutureTimestampMicroblockRejected) {
  MiniNet<NgNode> net(2, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.settle();
  chain::BlockHeader h;
  h.type = chain::BlockType::kMicro;
  h.prev = net.node(1).tree().best_entry().block->id();
  h.timestamp = net.queue().now() + 1000.0;  // far future
  std::vector<chain::TxPtr> txs{net.workload().txs[0]};
  h.merkle_root = chain::compute_merkle_root(txs);
  // Signed by the *correct* leader key, so only the timestamp is at fault.
  auto leader_sk = crypto::PrivateKey::from_seed(0x6e670000ull + 0);
  h.signature = crypto::sign(leader_sk, h.signing_hash());
  auto forged = std::make_shared<chain::Block>(h, txs, 0);
  net.network().send(0, 1, std::make_shared<protocol::BlockMessage>(forged));
  net.settle();
  EXPECT_FALSE(net.node(1).tree().contains(forged->id()));
}

TEST(NgNode, MinIntervalRateLimitEnforced) {
  // A leader swamping the system with microblocks violates §4.2.
  auto params = ng_params(1.0);
  params.min_microblock_interval = 5.0;  // stricter than production rate
  MiniNet<NgNode> net(2, params);
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 4.2);
  net.settle();
  // Node 0 produced microblocks every 1 s, but peers must reject the ones
  // violating the 5 s minimum: node 1's chain keeps at most the key block
  // (first microblock is also invalid: gap from key block < 5 s).
  const auto& tree = net.node(1).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto& e = tree.entry(path[i]);
    if (e.block->type() != chain::BlockType::kMicro) continue;
    const auto& parent = tree.entry(path[i - 1]);
    EXPECT_GE(e.block->header().timestamp - parent.block->header().timestamp, 5.0);
  }
}

TEST(NgNode, EpochFeeTrackingAcrossMultipleEpochs) {
  MiniNet<NgNode> net(3, ng_params(1.0));
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 2.5);
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 2.5);
  net.node(2).on_mining_win(1.0);
  net.settle();
  EXPECT_TRUE(net.consistent());
  // Every key block after the first with nonzero epoch fees has a 2-output
  // coinbase.
  const auto& tree = net.node(0).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  int split_coinbases = 0;
  for (auto idx : path) {
    const auto& block = *tree.entry(idx).block;
    if (block.type() == chain::BlockType::kKey &&
        block.txs()[0]->outputs.size() == 2)
      ++split_coinbases;
  }
  EXPECT_GE(split_coinbases, 2);
}

}  // namespace
}  // namespace bng::ng
