#include "ghost/ghost_node.hpp"

#include <gtest/gtest.h>

#include "../support/harness.hpp"

namespace bng::ghost {
namespace {

using bng::testing::MiniNet;

chain::Params ghost_params() {
  auto p = chain::Params::bitcoin();
  p.protocol = chain::Protocol::kGhost;
  p.max_block_size = 5000;
  return p;
}

TEST(GhostNode, RequiresGhostProtocolParams) {
  MiniNet<GhostNode> net(2, ghost_params());
  SUCCEED();  // construction with correct params works
}

TEST(GhostNode, WrongParamsRejected) {
  EXPECT_THROW(MiniNet<GhostNode> net(2, chain::Params::bitcoin()), std::invalid_argument);
}

TEST(GhostNode, BasicMiningAndPropagation) {
  MiniNet<GhostNode> net(3, ghost_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  EXPECT_TRUE(net.converged());
  EXPECT_EQ(net.node(2).tree().best_entry().height, 1u);
}

TEST(GhostNode, HeaviestSubtreeWinsOverLongerChain) {
  // Build the canonical GHOST scenario through the network:
  //   A-branch: 2 blocks chained. B-branch: 1 block with 2 children.
  // Chain rule would pick A (work 2 = work 2 tie actually)... use 3 vs 2:
  // B-subtree has 3 blocks, A-chain has 2: GHOST picks B, longest-chain
  // would pick A on first-seen ties (both depth 2).
  MiniNet<GhostNode> net(6, ghost_params(), /*latency=*/3.0);
  // Node 0 mines A1, A2 privately (high latency delays propagation).
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 0.01);
  net.node(0).on_mining_win(1.0);
  // Node 1 mines B1 concurrently.
  net.node(1).on_mining_win(1.0);
  net.settle(10);
  // Two more miners extend B1 in parallel (each saw B1 first or adopted it).
  // Force them: whoever's tip is under node 1's branch mines.
  auto b1_id = net.node(1).tree().path_from_genesis(net.node(1).tree().best_tip());
  int forked = 0;
  for (NodeId i = 2; i < 6 && forked < 2; ++i) {
    const auto& tree = net.node(i).tree();
    // Mine only if the node's tip is on node 1's branch.
    if (tree.best_entry().block->miner() == 1) {
      net.node(i).on_mining_win(1.0);
      ++forked;
    }
  }
  net.settle(20);
  if (forked == 2) {
    // B-subtree: B1 + 2 children = work 3 > A-chain work 2.
    for (NodeId i = 0; i < 6; ++i) {
      const auto& tree = net.node(i).tree();
      auto path = tree.path_from_genesis(tree.best_tip());
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(tree.entry(path[1]).block->miner(), 1u) << "node " << i;
    }
  }
  (void)b1_id;
}

TEST(GhostNode, RelaysOffChainBlocks) {
  // GHOST propagates ALL blocks (paper §9): a stale-branch block received by
  // a node that prefers another branch must still be forwarded.
  MiniNet<GhostNode> net(3, ghost_params(), /*latency=*/0.01);
  net.node(0).on_mining_win(1.0);
  net.settle();
  // All nodes now know block A. Node 1 mines a competing sibling B.
  // (Force by building on genesis view: impossible via public API, so use
  // a fork via simultaneous mining instead.)
  MiniNet<GhostNode> net2(3, ghost_params(), /*latency=*/1.0);
  net2.node(0).on_mining_win(1.0);
  net2.node(1).on_mining_win(1.0);  // same time: sibling blocks
  net2.settle(20);
  // Every node must know BOTH sibling blocks (2 + genesis = 3 entries),
  // because GHOST relays stale branches too.
  for (NodeId i = 0; i < 3; ++i)
    EXPECT_EQ(net2.node(i).tree().size(), 3u) << "node " << i;
}

TEST(GhostNode, SubtreeWorkDrivesReorg) {
  MiniNet<GhostNode> net(2, ghost_params(), /*latency=*/5.0);
  // Node 0 mines one block; node 1 independently mines one block, then
  // another on top after hearing nothing.
  net.node(0).on_mining_win(1.0);
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 0.1);
  net.node(1).on_mining_win(1.0);
  net.settle(30);
  EXPECT_TRUE(net.converged());
  // Node 1's subtree has work 2 -> wins under GHOST as under longest-chain.
  EXPECT_EQ(net.node(0).tree().best_entry().block->miner(), 1u);
}

}  // namespace
}  // namespace bng::ghost
