#include "bitcoin/bitcoin_node.hpp"

#include <gtest/gtest.h>

#include "../support/harness.hpp"

namespace bng::bitcoin {
namespace {

using bng::testing::MiniNet;

chain::Params btc_params() {
  auto p = chain::Params::bitcoin();
  p.max_block_size = 5000;
  return p;
}

TEST(BitcoinNode, MiningExtendsOwnChain) {
  MiniNet<BitcoinNode> net(3, btc_params());
  net.node(0).on_mining_win(1.0);
  EXPECT_EQ(net.node(0).tree().best_entry().height, 1u);
  EXPECT_EQ(net.node(0).blocks_mined(), 1u);
}

TEST(BitcoinNode, BlockPropagatesToAllPeers) {
  MiniNet<BitcoinNode> net(5, btc_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  for (NodeId i = 0; i < 5; ++i)
    EXPECT_EQ(net.node(i).tree().best_entry().height, 1u) << "node " << i;
  EXPECT_TRUE(net.converged());
}

TEST(BitcoinNode, ChainGrowsAcrossMiners) {
  MiniNet<BitcoinNode> net(4, btc_params());
  for (int round = 0; round < 6; ++round) {
    net.node(round % 4).on_mining_win(1.0);
    net.settle();
  }
  EXPECT_TRUE(net.converged());
  EXPECT_EQ(net.node(0).tree().best_entry().height, 6u);
  EXPECT_EQ(net.node(0).tree().best_entry().pow_height, 6u);
}

TEST(BitcoinNode, BlocksCarryWorkloadTransactions) {
  MiniNet<BitcoinNode> net(2, btc_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  const auto& tip = net.node(1).tree().best_entry();
  EXPECT_GT(tip.chain_tx_count, 0u);
  // Coinbase first, then payload.
  EXPECT_TRUE(tip.block->txs()[0]->is_coinbase());
  EXPECT_LE(tip.block->wire_size(), btc_params().max_block_size);
}

TEST(BitcoinNode, ConsecutiveBlocksTakeDisjointTransactions) {
  MiniNet<BitcoinNode> net(2, btc_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  net.node(1).on_mining_win(1.0);
  net.settle();
  const auto& tree = net.node(0).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  ASSERT_EQ(path.size(), 3u);
  const auto& txs1 = tree.entry(path[1]).block->txs();
  const auto& txs2 = tree.entry(path[2]).block->txs();
  std::unordered_set<Hash256, Hash256Hasher> first_ids;
  for (const auto& tx : txs1)
    if (!tx->is_coinbase()) first_ids.insert(tx->id());
  EXPECT_FALSE(first_ids.empty());
  for (const auto& tx : txs2)
    if (!tx->is_coinbase()) EXPECT_EQ(first_ids.count(tx->id()), 0u);
}

TEST(BitcoinNode, ForkResolvedByHeavierChain) {
  // Nodes 0 and 1 mine concurrently -> fork; the next block settles it.
  MiniNet<BitcoinNode> net(4, btc_params(), /*latency=*/0.5);
  net.node(0).on_mining_win(1.0);
  net.node(1).on_mining_win(1.0);  // same instant: competing height-1 blocks
  net.settle(10);
  EXPECT_GE(net.trace().pow_blocks(), 2u);
  net.node(2).on_mining_win(1.0);  // extends whichever branch node 2 adopted
  net.settle(10);
  EXPECT_TRUE(net.converged());
  EXPECT_EQ(net.node(3).tree().best_entry().chain_work, 2.0);
}

TEST(BitcoinNode, ReorgAdoptsHeavierBranch) {
  MiniNet<BitcoinNode> net(2, btc_params(), /*latency=*/5.0);
  // Node 0 mines one block; node 1 (not yet aware) mines two.
  net.node(0).on_mining_win(1.0);
  net.node(1).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 0.1);  // before propagation
  net.node(1).on_mining_win(1.0);
  net.settle(30);
  // Node 0 must have abandoned its own block for node 1's heavier chain.
  EXPECT_TRUE(net.converged());
  EXPECT_EQ(net.node(0).tree().best_entry().chain_work, 2.0);
  EXPECT_EQ(net.node(0).tree().best_entry().block->miner(), 1u);
}

TEST(BitcoinNode, CoinbasePaysSubsidyPlusFees) {
  MiniNet<BitcoinNode> net(2, btc_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  const auto& block = *net.node(1).tree().best_entry().block;
  Amount fees = block.total_fees();
  ASSERT_FALSE(block.txs().empty());
  const auto& coinbase = *block.txs()[0];
  Amount paid = 0;
  for (const auto& out : coinbase.outputs) paid += out.value;
  EXPECT_EQ(paid, btc_params().block_subsidy + fees);
  EXPECT_EQ(coinbase.outputs[0].owner, net.node(0).reward_address());
}

TEST(BitcoinNode, RejectsWrongTypeBlocks) {
  MiniNet<BitcoinNode> net(2, btc_params());
  // Hand-deliver an NG key block; the Bitcoin node must drop it.
  chain::BlockHeader h;
  h.type = chain::BlockType::kKey;
  h.prev = net.genesis()->id();
  h.leader_key = crypto::PrivateKey::from_seed(9).public_key();
  auto cb = std::make_shared<chain::Transaction>();
  cb->coinbase_height = 1;
  cb->outputs.push_back(chain::TxOutput{1, chain::address_from_tag(1)});
  std::vector<chain::TxPtr> txs{cb};
  h.merkle_root = chain::compute_merkle_root(txs);
  auto key_block = std::make_shared<chain::Block>(h, txs, 1);
  net.network().send(1, 0, std::make_shared<protocol::BlockMessage>(key_block));
  net.settle();
  EXPECT_EQ(net.node(0).tree().size(), 1u);  // still only genesis
}

TEST(BitcoinNode, OversizedBlockRejected) {
  auto params = btc_params();
  MiniNet<BitcoinNode> net(2, params);
  std::vector<chain::TxPtr> txs;
  auto cb = std::make_shared<chain::Transaction>();
  cb->coinbase_height = 1;
  cb->outputs.push_back(chain::TxOutput{1, chain::address_from_tag(1)});
  txs.push_back(cb);
  const std::size_t too_many =
      params.max_block_size / net.workload().tx_wire_size + 5;
  for (std::size_t i = 0; i < too_many; ++i) txs.push_back(net.workload().txs[i]);
  chain::BlockHeader h;
  h.type = chain::BlockType::kPow;
  h.prev = net.genesis()->id();
  h.merkle_root = chain::compute_merkle_root(txs);
  auto fat_block = std::make_shared<chain::Block>(h, txs, 1);
  ASSERT_GT(fat_block->wire_size(), params.max_block_size);
  net.network().send(1, 0, std::make_shared<protocol::BlockMessage>(fat_block));
  net.settle();
  EXPECT_EQ(net.node(0).tree().size(), 1u);
}

TEST(BitcoinNode, OrphanResolvedAfterParentArrives) {
  MiniNet<BitcoinNode> net(2, btc_params());
  net.network().set_offline(1, true);
  net.node(0).on_mining_win(1.0);
  net.settle();
  net.network().set_offline(1, false);
  net.node(0).on_mining_win(1.0);  // node 1 sees the child first
  net.settle(20);
  EXPECT_TRUE(net.converged());
  EXPECT_EQ(net.node(1).tree().best_entry().height, 2u);
}

TEST(BitcoinNode, WorkAccumulatesWithDifficulty) {
  MiniNet<BitcoinNode> net(2, btc_params());
  net.node(0).on_mining_win(2.5);  // difficulty-scaled win
  net.settle();
  EXPECT_DOUBLE_EQ(net.node(1).tree().best_entry().chain_work, 2.5);
}

TEST(BitcoinNode, TraceRecordsGeneration) {
  MiniNet<BitcoinNode> net(2, btc_params());
  net.node(1).on_mining_win(1.0);
  net.settle();
  ASSERT_EQ(net.trace().generated().size(), 1u);
  EXPECT_EQ(net.trace().generated()[0].miner, 1u);
  EXPECT_EQ(net.trace().pow_blocks(), 1u);
  EXPECT_EQ(net.trace().micro_blocks(), 0u);
}

}  // namespace
}  // namespace bng::bitcoin
