#include "ng/poison.hpp"

#include <gtest/gtest.h>

#include "../support/harness.hpp"
#include "chain/utxo.hpp"
#include "ng/ng_node.hpp"

namespace bng::ng {
namespace {

using bng::testing::MiniNet;

chain::Params ng_params() {
  auto p = chain::Params::bitcoin_ng();
  p.microblock_interval = 1.0;
  p.max_microblock_size = 4000;
  return p;
}

crypto::PrivateKey leader_key(NodeId id) {
  return crypto::PrivateKey::from_seed(0x6e670000ull + id);
}

chain::BlockHeader signed_micro_header(const crypto::PrivateKey& sk, const Hash256& prev,
                                       Seconds ts, std::uint64_t salt = 0) {
  chain::BlockHeader h;
  h.type = chain::BlockType::kMicro;
  h.prev = prev;
  h.timestamp = ts;
  h.nonce = salt;
  h.signature = crypto::sign(sk, h.signing_hash());
  return h;
}

TEST(EquivocationDetectorTest, FirstObservationSilent) {
  EquivocationDetector det;
  auto sk = leader_key(0);
  Hash256 epoch;
  epoch.bytes[0] = 1;
  Hash256 prev;
  prev.bytes[0] = 2;
  EXPECT_FALSE(det.observe(epoch, signed_micro_header(sk, prev, 1.0)).has_value());
}

TEST(EquivocationDetectorTest, ConflictReportedOnce) {
  EquivocationDetector det;
  auto sk = leader_key(0);
  Hash256 epoch;
  epoch.bytes[0] = 1;
  Hash256 prev;
  prev.bytes[0] = 2;
  auto h1 = signed_micro_header(sk, prev, 1.0, 1);
  auto h2 = signed_micro_header(sk, prev, 1.0, 2);
  auto h3 = signed_micro_header(sk, prev, 1.0, 3);
  EXPECT_FALSE(det.observe(epoch, h1).has_value());
  auto fraud = det.observe(epoch, h2);
  ASSERT_TRUE(fraud.has_value());
  EXPECT_EQ(fraud->accused_key_block, epoch);
  EXPECT_EQ(fraud->header_a.id(), h1.id());
  EXPECT_EQ(fraud->header_b.id(), h2.id());
  // Only one report per cheater (§4.5).
  EXPECT_FALSE(det.observe(epoch, h3).has_value());
}

TEST(EquivocationDetectorTest, SameBlockReobservedIsBenign) {
  EquivocationDetector det;
  auto sk = leader_key(0);
  Hash256 epoch, prev;
  auto h1 = signed_micro_header(sk, prev, 1.0);
  EXPECT_FALSE(det.observe(epoch, h1).has_value());
  EXPECT_FALSE(det.observe(epoch, h1).has_value());
}

TEST(EquivocationDetectorTest, DifferentPrevIsBenign) {
  // A leader extending its own chain is NOT equivocation (Fig 2 benign case).
  EquivocationDetector det;
  auto sk = leader_key(0);
  Hash256 epoch;
  Hash256 prev1, prev2;
  prev1.bytes[0] = 1;
  prev2.bytes[0] = 2;
  EXPECT_FALSE(det.observe(epoch, signed_micro_header(sk, prev1, 1.0)).has_value());
  EXPECT_FALSE(det.observe(epoch, signed_micro_header(sk, prev2, 2.0)).has_value());
}

TEST(EquivocationDetectorTest, DistinctEpochsTrackedIndependently) {
  EquivocationDetector det;
  auto sk = leader_key(0);
  Hash256 e1, e2, prev;
  e1.bytes[0] = 1;
  e2.bytes[0] = 2;
  EXPECT_FALSE(det.observe(e1, signed_micro_header(sk, prev, 1.0, 1)).has_value());
  EXPECT_FALSE(det.observe(e2, signed_micro_header(sk, prev, 1.0, 2)).has_value());
  EXPECT_TRUE(det.observe(e1, signed_micro_header(sk, prev, 1.0, 3)).has_value());
  EXPECT_TRUE(det.observe(e2, signed_micro_header(sk, prev, 1.0, 4)).has_value());
}

TEST(FraudEvidenceTest, PrunedHeaderPicksTheBranchThatLost) {
  // Two conflicting microblocks A (seen first) and B extend the genesis; the
  // chain adopts B's branch. "Whichever branch eventually loses" (§4.5) is
  // A's — the old convenience unconditionally returned header_b, which would
  // mis-poison exactly when the second-observed sibling won.
  chain::BlockTree tree(chain::make_genesis(1, kCoin), chain::TieBreak::kFirstSeen,
                        chain::BlockTree::ForkChoice::kHeaviestChain, nullptr);
  auto sk = leader_key(0);
  const Hash256 genesis_id = tree.entry(0).block->id();
  auto header_a = signed_micro_header(sk, genesis_id, 1.0, 1);
  auto header_b = signed_micro_header(sk, genesis_id, 1.0, 2);
  auto block_a = std::make_shared<chain::Block>(header_a, std::vector<chain::TxPtr>{}, 0);
  auto block_b = std::make_shared<chain::Block>(header_b, std::vector<chain::TxPtr>{}, 0);
  tree.insert(block_a, 1.0, 0.0);
  const std::uint32_t b_idx = tree.insert(block_b, 1.0, 0.0);

  // A weight-bearing block on B's branch decides the race for B.
  chain::BlockHeader next;
  next.type = chain::BlockType::kKey;
  next.prev = header_b.id();
  next.timestamp = 2.0;
  next.leader_key = sk.public_key();
  const std::uint32_t tip = tree.insert(
      std::make_shared<chain::Block>(next, std::vector<chain::TxPtr>{}, 0, 1.0), 2.0, 1.0);
  ASSERT_TRUE(tree.is_ancestor(b_idx, tip));

  FraudEvidence evidence;
  evidence.header_a = header_a;
  evidence.header_b = header_b;
  EXPECT_EQ(evidence.pruned_header(tree, tip).id(), header_a.id());

  // Symmetric case: had A's branch won, B supplies the pruned header.
  chain::BlockHeader next_a = next;
  next_a.prev = header_a.id();
  next_a.nonce = 7;
  const std::uint32_t tip_a = tree.insert(
      std::make_shared<chain::Block>(next_a, std::vector<chain::TxPtr>{}, 0, 1.0), 3.0,
      1.0);
  EXPECT_EQ(evidence.pruned_header(tree, tip_a).id(), header_b.id());
}

/// Full scenario: leader 0 equivocates; node 1 becomes leader, detects and
/// places a poison transaction.
class PoisonScenario : public ::testing::Test {
 protected:
  PoisonScenario() : net_(3, ng_params()) {}

  void run_attack() {
    net_.node(0).on_mining_win(1.0);  // node 0 leads
    net_.queue().run_until(net_.queue().now() + 2.5);
    net_.settle();
    // Node 0 signs a SECOND microblock extending its key block (the first
    // one already extends it) -> equivocation visible to peers.
    const auto& tree = net_.node(0).tree();
    auto path = tree.path_from_genesis(tree.best_tip());
    Hash256 key_block_id;
    for (auto idx : path)
      if (tree.entry(idx).block->type() == chain::BlockType::kKey)
        key_block_id = tree.entry(idx).block->id();
    accused_key_block_ = key_block_id;
    net_.node(0).forge_microblock(key_block_id);
    net_.settle();
    // Node 1 takes over leadership and (holding fraud evidence) poisons.
    net_.node(1).on_mining_win(1.0);
    net_.queue().run_until(net_.queue().now() + 3.5);
    net_.settle();
  }

  MiniNet<NgNode> net_;
  Hash256 accused_key_block_;
};

TEST_F(PoisonScenario, FraudDetectedByPeers) {
  run_attack();
  EXPECT_FALSE(net_.trace().frauds().empty());
  EXPECT_EQ(net_.trace().frauds()[0].accused_key_block, accused_key_block_);
}

TEST_F(PoisonScenario, NewLeaderPlacesPoison) {
  run_attack();
  EXPECT_EQ(net_.node(1).poisons_placed(), 1u);
  // The poison transaction is on the main chain.
  const auto& tree = net_.node(2).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  int poisons = 0;
  for (auto idx : path)
    for (const auto& tx : tree.entry(idx).block->txs())
      if (tx->is_poison()) ++poisons;
  EXPECT_EQ(poisons, 1);
}

TEST_F(PoisonScenario, PoisonPayloadValidates) {
  run_attack();
  const auto& tree = net_.node(2).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  const chain::Transaction* poison = nullptr;
  for (auto idx : path)
    for (const auto& tx : tree.entry(idx).block->txs())
      if (tx->is_poison()) poison = tx.get();
  ASSERT_NE(poison, nullptr);
  auto r = check_poison(tree, tree.best_tip(), *poison->poison, /*verify_signature=*/true);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(PoisonScenario, ComputeRevocableCoversLeaderRevenue) {
  run_attack();
  const auto& tree = net_.node(2).tree();
  Amount revocable = compute_revocable(tree, tree.best_tip(), accused_key_block_);
  // At least the accused's subsidy is revocable.
  EXPECT_GE(revocable, ng_params().block_subsidy);
}

TEST_F(PoisonScenario, BenignLeaderSwitchNotPoisonable) {
  // A normal Fig-2 leader switch must not produce valid poison evidence.
  net_.node(0).on_mining_win(1.0);
  net_.queue().run_until(net_.queue().now() + 2.5);
  net_.node(1).on_mining_win(1.0);
  net_.queue().run_until(net_.queue().now() + 2.5);
  net_.settle();
  EXPECT_TRUE(net_.trace().frauds().empty());
  EXPECT_EQ(net_.node(0).poisons_placed() + net_.node(1).poisons_placed() +
                net_.node(2).poisons_placed(),
            0u);
}

TEST(PoisonValidation, RejectsAccusedNotOnChain) {
  MiniNet<NgNode> net(2, ng_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  const auto& tree = net.node(0).tree();
  chain::PoisonPayload payload;
  payload.accused_key_block.bytes[0] = 0xab;  // unknown block
  auto r = check_poison(tree, tree.best_tip(), payload, false);
  EXPECT_FALSE(r.ok);
}

TEST(PoisonValidation, RejectsHeaderOnMainChain) {
  MiniNet<NgNode> net(2, ng_params());
  net.node(0).on_mining_win(1.0);
  net.queue().run_until(net.queue().now() + 1.5);
  net.settle();
  const auto& tree = net.node(0).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  // Claim the chain's own microblock is "pruned": must fail.
  const auto& key_entry = tree.entry(path[1]);
  const auto& micro_entry = tree.entry(path[2]);
  ASSERT_EQ(micro_entry.block->type(), chain::BlockType::kMicro);
  chain::PoisonPayload payload;
  payload.accused_key_block = key_entry.block->id();
  ByteWriter w;
  micro_entry.block->header().serialize(w);
  payload.pruned_header = w.data();
  payload.pruned_header_id = micro_entry.block->id();
  auto r = check_poison(tree, tree.best_tip(), payload, true);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("main chain"), std::string::npos);
}

TEST(PoisonValidation, RejectsGarbageHeader) {
  MiniNet<NgNode> net(2, ng_params());
  net.node(0).on_mining_win(1.0);
  net.settle();
  const auto& tree = net.node(0).tree();
  auto path = tree.path_from_genesis(tree.best_tip());
  chain::PoisonPayload payload;
  payload.accused_key_block = tree.entry(path[1]).block->id();
  payload.pruned_header = {1, 2, 3};  // not parseable
  auto r = check_poison(tree, tree.best_tip(), payload, false);
  EXPECT_FALSE(r.ok);
}

TEST(PoisonLedger, RevokesCheaterRevenueAndPaysBounty) {
  // Hand-build a chain: genesis -> key(A) -> micro -> key(B) -> micro with
  // poison against A. Check balances through the Ledger.
  auto params = ng_params();
  params.coinbase_maturity = 100;
  auto genesis = chain::make_genesis(4, kCoin);
  chain::Ledger ledger(params);
  ASSERT_TRUE(ledger.apply_block(*genesis).ok);

  auto skA = leader_key(10);
  auto skB = leader_key(11);
  const Hash256 addrA = chain::address_of(skA.public_key());
  const Hash256 addrB = chain::address_of(skB.public_key());

  auto make_key_block = [&](const Hash256& prev, const crypto::PrivateKey& sk,
                            std::uint32_t height) {
    auto cb = std::make_shared<chain::Transaction>();
    cb->coinbase_height = height;
    cb->outputs.push_back(
        chain::TxOutput{params.block_subsidy, chain::address_of(sk.public_key())});
    std::vector<chain::TxPtr> txs{cb};
    chain::BlockHeader h;
    h.type = chain::BlockType::kKey;
    h.prev = prev;
    h.timestamp = 1.0;
    h.merkle_root = chain::compute_merkle_root(txs);
    h.leader_key = sk.public_key();
    return std::make_shared<chain::Block>(h, txs, 0);
  };

  auto keyA = make_key_block(genesis->id(), skA, 2);
  ASSERT_TRUE(ledger.apply_block(*keyA).ok);
  EXPECT_EQ(ledger.total_balance(addrA), params.block_subsidy);

  auto keyB = make_key_block(keyA->id(), skB, 3);
  ASSERT_TRUE(ledger.apply_block(*keyB).ok);

  // Poison transaction against A (evidence content is validated at the
  // chain level; the ledger checks economics).
  const auto pruned = signed_micro_header(skA, keyA->id(), 1.5);
  const Amount bounty = static_cast<Amount>(params.poison_reward_fraction *
                                            static_cast<double>(params.block_subsidy));
  auto poison = make_poison_tx(keyA->id(), pruned, addrB, bounty);
  chain::BlockHeader mh;
  mh.type = chain::BlockType::kMicro;
  mh.prev = keyB->id();
  mh.timestamp = 2.0;
  std::vector<chain::TxPtr> txs{poison};
  mh.merkle_root = chain::compute_merkle_root(txs);
  mh.signature = crypto::sign(skB, mh.signing_hash());
  auto micro = std::make_shared<chain::Block>(mh, txs, 1);
  auto result = ledger.apply_block(*micro);
  ASSERT_TRUE(result.ok) << result.error;

  // A lost everything; B gained the bounty (on top of its subsidy).
  EXPECT_EQ(ledger.total_balance(addrA), 0);
  EXPECT_EQ(ledger.total_balance(addrB), params.block_subsidy + bounty);
  EXPECT_TRUE(ledger.is_poisoned(keyA->id()));

  // Second poison against the same cheater must fail.
  auto poison2 = make_poison_tx(keyA->id(), pruned, addrB, 0);
  chain::BlockHeader mh2 = mh;
  mh2.prev = micro->id();
  mh2.timestamp = 3.0;
  std::vector<chain::TxPtr> txs2{poison2};
  mh2.merkle_root = chain::compute_merkle_root(txs2);
  mh2.signature = crypto::sign(skB, mh2.signing_hash());
  auto micro2 = std::make_shared<chain::Block>(mh2, txs2, 1);
  EXPECT_FALSE(ledger.apply_block(*micro2).ok);
}

TEST(PoisonLedger, OversizedBountyRejected) {
  auto params = ng_params();
  auto genesis = chain::make_genesis(4, kCoin);
  chain::Ledger ledger(params);
  ASSERT_TRUE(ledger.apply_block(*genesis).ok);
  auto skA = leader_key(10);

  auto cb = std::make_shared<chain::Transaction>();
  cb->coinbase_height = 2;
  cb->outputs.push_back(
      chain::TxOutput{params.block_subsidy, chain::address_of(skA.public_key())});
  std::vector<chain::TxPtr> txs{cb};
  chain::BlockHeader h;
  h.type = chain::BlockType::kKey;
  h.prev = genesis->id();
  h.merkle_root = chain::compute_merkle_root(txs);
  h.leader_key = skA.public_key();
  auto keyA = std::make_shared<chain::Block>(h, txs, 0);
  ASSERT_TRUE(ledger.apply_block(*keyA).ok);

  // Greedy poisoner claims 50% instead of 5%.
  auto poison = make_poison_tx(keyA->id(), signed_micro_header(skA, keyA->id(), 1.5),
                               chain::address_from_tag(1), params.block_subsidy / 2);
  chain::BlockHeader mh;
  mh.type = chain::BlockType::kMicro;
  mh.prev = keyA->id();
  mh.timestamp = 2.0;
  std::vector<chain::TxPtr> ptxs{poison};
  mh.merkle_root = chain::compute_merkle_root(ptxs);
  mh.signature = crypto::sign(skA, mh.signing_hash());
  auto micro = std::make_shared<chain::Block>(mh, ptxs, 1);
  EXPECT_FALSE(ledger.apply_block(*micro).ok);
}

}  // namespace
}  // namespace bng::ng
