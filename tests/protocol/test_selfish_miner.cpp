#include "bitcoin/selfish_miner.hpp"

#include <gtest/gtest.h>

#include "../support/harness.hpp"
#include "sim/experiment.hpp"

namespace bng::bitcoin {
namespace {

chain::Params btc_params() {
  auto p = chain::Params::bitcoin();
  p.max_block_size = 4000;
  return p;
}

/// Mixed population: node 0 is selfish, the rest honest.
struct MixedNet {
  explicit MixedNet(std::uint32_t n, Seconds latency = 0.01)
      : rng(777),
        topology(net::Topology::complete(n)),
        network(queue, topology, net::LatencyModel::constant(latency),
                net::LinkParams{10e6, 40}, rng),
        genesis(chain::make_genesis(2000, kCoin)),
        trace(genesis) {
    const Hash256 genesis_txid = genesis->txs()[0]->id();
    for (std::size_t i = 0; i < 2000; ++i)
      pool.txs.push_back(chain::make_transfer(
          chain::Outpoint{genesis_txid, static_cast<std::uint32_t>(i)}, kCoin - 1000,
          chain::address_from_tag(i), 1000, 120));
    pool.tx_wire_size = pool.txs[0]->wire_size();

    for (NodeId i = 0; i < n; ++i) {
      protocol::NodeConfig cfg;
      cfg.params = btc_params();
      cfg.workload = &pool;
      if (i == 0)
        nodes.push_back(std::make_unique<SelfishMiner>(i, network, genesis, cfg,
                                                       rng.fork(i), &trace));
      else
        nodes.push_back(std::make_unique<BitcoinNode>(i, network, genesis, cfg,
                                                      rng.fork(i), &trace));
      network.attach(i, nodes.back().get());
    }
  }

  SelfishMiner& attacker() { return static_cast<SelfishMiner&>(*nodes[0]); }
  void settle(Seconds t = 5.0) { queue.run_until(queue.now() + t); }

  net::EventQueue queue;
  Rng rng;
  net::Topology topology;
  net::Network network;
  chain::BlockPtr genesis;
  sim::TraceRecorder trace;
  protocol::SyntheticWorkload pool;
  std::vector<std::unique_ptr<protocol::BaseNode>> nodes;
};

TEST(SelfishMiner, WithholdsOwnBlocks) {
  MixedNet net(4);
  net.attacker().on_mining_win(1.0);
  net.settle();
  EXPECT_EQ(net.attacker().withheld(), 1u);
  // Honest nodes saw nothing.
  for (NodeId i = 1; i < 4; ++i) EXPECT_EQ(net.nodes[i]->tree().size(), 1u);
}

TEST(SelfishMiner, PublishesAllWhenCaughtUp) {
  MixedNet net(4);
  net.attacker().on_mining_win(1.0);  // withheld, lead 1
  net.settle();
  net.nodes[1]->on_mining_win(1.0);  // honest block: lead becomes 0
  net.settle();
  // SM1: attacker reveals; everyone now knows both branches.
  EXPECT_EQ(net.attacker().withheld(), 0u);
  EXPECT_EQ(net.attacker().blocks_published(), 1u);
  for (NodeId i = 1; i < 4; ++i) EXPECT_EQ(net.nodes[i]->tree().size(), 3u);
}

TEST(SelfishMiner, OverridesWithLeadOfTwo) {
  MixedNet net(4);
  net.attacker().on_mining_win(1.0);
  net.attacker().on_mining_win(1.0);  // lead 2, both withheld
  net.settle();
  EXPECT_EQ(net.attacker().withheld(), 2u);
  net.nodes[1]->on_mining_win(1.0);  // honest: lead 1 -> attacker reveals all
  net.settle();
  EXPECT_EQ(net.attacker().withheld(), 0u);
  // Attacker's 2-block chain wins everywhere; honest block orphaned.
  for (NodeId i = 1; i < 4; ++i) {
    const auto& t = net.nodes[i]->tree();
    EXPECT_EQ(t.best_entry().chain_work, 2.0);
    EXPECT_EQ(t.best_entry().block->miner(), 0u);
  }
}

TEST(SelfishMiner, MatchesWithLongLead) {
  MixedNet net(4);
  for (int i = 0; i < 4; ++i) net.attacker().on_mining_win(1.0);  // lead 4
  net.settle();
  net.nodes[1]->on_mining_win(1.0);  // honest finds height-1 block
  net.settle();
  // Attacker publishes only its height-1 block to match, keeping 3 private.
  EXPECT_EQ(net.attacker().withheld(), 3u);
  EXPECT_EQ(net.attacker().blocks_published(), 1u);
}

TEST(SelfishMiner, RacesWhenCaughtUpAndFollowsResolution) {
  MixedNet net(4, /*latency=*/1.0);
  net.attacker().on_mining_win(1.0);  // withheld, lead 1
  net.nodes[1]->on_mining_win(1.0);   // honest catch-up -> attacker reveals, race
  net.settle(10);
  EXPECT_EQ(net.attacker().withheld(), 0u);
  EXPECT_EQ(net.attacker().blocks_published(), 1u);
  // Honest extension resolves the race; the attacker follows the winner.
  net.nodes[2]->on_mining_win(1.0);
  net.settle(10);
  EXPECT_EQ(net.attacker().tree().best_entry().chain_work, 2.0);
}

TEST(SelfishMiner, FollowsPublicChainAfterFallingBehind) {
  // The attacker goes deaf (offline) while holding a private block; the
  // honest network gets two blocks ahead. On rejoin the attacker processes
  // the catch-up blocks one by one: at the transient tie it reveals its
  // (doomed) block, then adopts the heavier public chain. Either way, no
  // private blocks remain and it mines on the public tip.
  MixedNet net(4);
  net.attacker().on_mining_win(1.0);  // withheld, lead 1
  net.network.set_offline(0, true);
  net.nodes[1]->on_mining_win(1.0);
  net.settle(10);
  net.nodes[2]->on_mining_win(1.0);
  net.settle(10);
  net.network.set_offline(0, false);
  net.nodes[3]->on_mining_win(1.0);  // fresh inv lets node 0 orphan-chase
  net.settle(20);
  EXPECT_EQ(net.attacker().withheld(), 0u);
  EXPECT_GE(net.attacker().tree().best_entry().chain_work, 3.0);
  EXPECT_NE(net.attacker().tree().best_entry().block->miner(), 0u);
}

TEST(SelfishMiner, ExperimentFactoryIntegration) {
  // Run a full experiment with one selfish miner holding 40% of the power:
  // above the 1/3 threshold SM1 profits for ANY gamma, so even with network
  // friction its main-chain share must exceed its power share.
  sim::ExperimentConfig cfg;
  cfg.params = btc_params();
  cfg.params.block_interval = 10;
  cfg.latency = net::LatencyModel::constant(0.05);
  cfg.num_nodes = 30;
  cfg.target_blocks = 250;
  cfg.drain_time = 60;
  cfg.seed = 1234;
  const double alpha = 0.40;
  std::vector<double> powers(cfg.num_nodes, (1.0 - alpha) / (cfg.num_nodes - 1));
  powers[0] = alpha;
  cfg.custom_powers = powers;
  cfg.node_factory = [](NodeId id, net::Network& net, chain::BlockPtr genesis,
                        const protocol::NodeConfig& ncfg, Rng rng,
                        protocol::IBlockObserver* obs)
      -> std::unique_ptr<protocol::BaseNode> {
    if (id != 0) return nullptr;
    return std::make_unique<SelfishMiner>(id, net, std::move(genesis), ncfg, rng, obs);
  };
  sim::Experiment exp(cfg);
  exp.run();
  // Force any remaining private blocks into the open for final accounting.
  const auto& g = exp.global_tree();
  std::uint32_t attacker_main = 0, total_main = 0;
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    if (idx == chain::BlockTree::kGenesisIndex) continue;
    ++total_main;
    if (g.entry(idx).block->miner() == 0) ++attacker_main;
  }
  ASSERT_GT(total_main, 100u);
  const double revenue_share = static_cast<double>(attacker_main) / total_main;
  EXPECT_GT(revenue_share, alpha + 0.02)
      << "selfish mining at alpha=0.30 must beat honest share";
}

TEST(SelfishMiner, SmallMinerGainsNothing) {
  // At alpha = 0.1, well below the threshold, selfish mining must not pay.
  sim::ExperimentConfig cfg;
  cfg.params = btc_params();
  cfg.params.block_interval = 10;
  cfg.num_nodes = 30;
  cfg.target_blocks = 250;
  cfg.drain_time = 60;
  cfg.seed = 4321;
  const double alpha = 0.10;
  std::vector<double> powers(cfg.num_nodes, (1.0 - alpha) / (cfg.num_nodes - 1));
  powers[0] = alpha;
  cfg.custom_powers = powers;
  cfg.node_factory = [](NodeId id, net::Network& net, chain::BlockPtr genesis,
                        const protocol::NodeConfig& ncfg, Rng rng,
                        protocol::IBlockObserver* obs)
      -> std::unique_ptr<protocol::BaseNode> {
    if (id != 0) return nullptr;
    return std::make_unique<SelfishMiner>(id, net, std::move(genesis), ncfg, rng, obs);
  };
  sim::Experiment exp(cfg);
  exp.run();
  const auto& g = exp.global_tree();
  std::uint32_t attacker_main = 0, total_main = 0;
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) {
    if (idx == chain::BlockTree::kGenesisIndex) continue;
    ++total_main;
    if (g.entry(idx).block->miner() == 0) ++attacker_main;
  }
  const double revenue_share = static_cast<double>(attacker_main) / total_main;
  EXPECT_LT(revenue_share, alpha + 0.03);
}

}  // namespace
}  // namespace bng::bitcoin
