// WithholdingStrategy state machine, exercised directly against a BlockTree
// (no network): the SM1 transitions, and the NG wrinkle where the
// adversary's own zero-weight blocks ride the private chain.
#include "protocol/withholding.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "chain/block.hpp"

namespace bng::protocol {
namespace {

struct Fixture {
  Fixture()
      : tree(chain::make_genesis(1, kCoin), chain::TieBreak::kFirstSeen,
             chain::BlockTree::ForkChoice::kHeaviestChain, nullptr),
        strategy(tree, [this](BlockId id) { published.push_back(id); }) {}

  /// Append a block to `parent`; returns its tree index.
  std::uint32_t add_block(std::uint32_t parent, chain::BlockType type, double work,
                          std::uint64_t salt) {
    chain::BlockHeader h;
    h.type = type;
    h.prev = tree.entry(parent).block->id();
    h.nonce = salt;
    auto block = std::make_shared<chain::Block>(h, std::vector<chain::TxPtr>{},
                                                /*miner=*/0, work);
    return tree.insert(block, 0.0, work);
  }

  /// The adversary mines on its current best tip (the begin/end bracket).
  std::uint32_t own_win(std::uint64_t salt) {
    strategy.begin_own_win();
    const std::uint32_t idx =
        add_block(tree.best_tip(), chain::BlockType::kPow, 1.0, salt);
    strategy.on_accept(idx, /*own=*/true);
    strategy.end_own_win();
    return idx;
  }

  /// A public block arrives and is accepted.
  std::uint32_t public_block(std::uint32_t parent, std::uint64_t salt) {
    const std::uint32_t idx = add_block(parent, chain::BlockType::kPow, 1.0, salt);
    strategy.on_accept(idx, /*own=*/false);
    return idx;
  }

  chain::BlockTree tree;
  std::vector<BlockId> published;
  WithholdingStrategy strategy;
};

TEST(WithholdingStrategy, WithholdsOwnWins) {
  Fixture f;
  const std::uint32_t idx = f.own_win(1);
  EXPECT_EQ(f.strategy.withheld(), 1u);
  EXPECT_TRUE(f.published.empty());
  EXPECT_TRUE(f.strategy.suppress_relay(idx, /*own=*/true));
}

TEST(WithholdingStrategy, RevealsAllWhenCaughtUp) {
  Fixture f;
  f.own_win(1);
  f.public_block(0, 100);  // honest block at equal work -> race
  EXPECT_EQ(f.strategy.withheld(), 0u);
  EXPECT_EQ(f.published.size(), 1u);
  EXPECT_EQ(f.strategy.blocks_published(), 1u);
}

TEST(WithholdingStrategy, WinsRaceWithNextOwnBlock) {
  Fixture f;
  f.own_win(1);
  f.public_block(0, 100);  // race (both published)
  f.own_win(2);            // SM1 0' -> win: publish immediately
  EXPECT_EQ(f.strategy.withheld(), 0u);
  EXPECT_EQ(f.published.size(), 2u);
}

TEST(WithholdingStrategy, OverridesWithLeadOfTwo) {
  Fixture f;
  f.own_win(1);
  f.own_win(2);
  EXPECT_EQ(f.strategy.withheld(), 2u);
  f.public_block(0, 100);  // lead becomes 1 -> reveal everything
  EXPECT_EQ(f.strategy.withheld(), 0u);
  EXPECT_EQ(f.published.size(), 2u);
}

TEST(WithholdingStrategy, MatchesWithLongLead) {
  Fixture f;
  for (std::uint64_t i = 1; i <= 4; ++i) f.own_win(i);
  f.public_block(0, 100);  // lead 3 after their find -> publish one to match
  EXPECT_EQ(f.strategy.withheld(), 3u);
  EXPECT_EQ(f.published.size(), 1u);
}

TEST(WithholdingStrategy, RevealsDoomedBlocksWhenOvertaken) {
  // A heavier public block flips the tree's best tip to the public branch,
  // so the measured lead lands at 0 (private_work reads the new best): SM1
  // reveals the doomed private block and contests at the public work level.
  Fixture f;
  f.own_win(1);
  const std::uint32_t heavy =
      f.add_block(0, chain::BlockType::kPow, 2.0, 100);  // public, work 2
  f.strategy.on_accept(heavy, /*own=*/false);
  EXPECT_EQ(f.strategy.withheld(), 0u);
  EXPECT_EQ(f.published.size(), 1u);
}

TEST(WithholdingStrategy, OwnZeroWeightBlocksJoinThePrivateChain) {
  // The NG case: the adversary leads its withheld epoch and builds
  // microblocks on the private chain; they must not read as public
  // catch-up, and they publish together with their key block.
  Fixture f;
  const std::uint32_t key = f.own_win(1);
  // Two "microblocks" extending the private key block, built by ourselves.
  // The relay decision happens BEFORE on_accept registers the block (the
  // accept_block hook order) — it must already be suppressed then, or the
  // announcement leaks the whole withheld epoch via orphan-chasing.
  const std::uint32_t m1 = f.add_block(key, chain::BlockType::kMicro, 0.0, 2);
  EXPECT_TRUE(f.strategy.suppress_relay(m1, /*own=*/true));
  f.strategy.on_accept(m1, /*own=*/true);
  const std::uint32_t m2 = f.add_block(m1, chain::BlockType::kMicro, 0.0, 3);
  EXPECT_TRUE(f.strategy.suppress_relay(m2, /*own=*/true));
  f.strategy.on_accept(m2, /*own=*/true);
  EXPECT_EQ(f.strategy.withheld(), 3u);
  EXPECT_TRUE(f.strategy.suppress_relay(m1, /*own=*/true));
  EXPECT_TRUE(f.strategy.suppress_relay(m2, /*own=*/true));

  // An honest key block catches up: the whole epoch (key + micros) reveals.
  f.public_block(0, 100);
  EXPECT_EQ(f.strategy.withheld(), 0u);
  EXPECT_EQ(f.published.size(), 3u);
}

}  // namespace
}  // namespace bng::protocol
