#include "crypto/ecdsa.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace bng::crypto {
namespace {

class EcdsaTest : public ::testing::Test {
 protected:
  bng::Rng rng_{424242};
};

TEST_F(EcdsaTest, SignVerifyRoundTrip) {
  auto sk = PrivateKey::generate(rng_);
  auto pk = sk.public_key();
  auto msg = sha256("pay alice 5 coins");
  auto sig = sign(sk, msg);
  EXPECT_TRUE(verify(pk, msg, sig));
}

TEST_F(EcdsaTest, TamperedMessageRejected) {
  auto sk = PrivateKey::generate(rng_);
  auto sig = sign(sk, sha256("original"));
  EXPECT_FALSE(verify(sk.public_key(), sha256("tampered"), sig));
}

TEST_F(EcdsaTest, WrongKeyRejected) {
  auto sk1 = PrivateKey::generate(rng_);
  auto sk2 = PrivateKey::generate(rng_);
  auto msg = sha256("message");
  EXPECT_FALSE(verify(sk2.public_key(), msg, sign(sk1, msg)));
}

TEST_F(EcdsaTest, TamperedSignatureRejected) {
  auto sk = PrivateKey::generate(rng_);
  auto msg = sha256("message");
  auto sig = sign(sk, msg);
  Signature bad = sig;
  bad.r = sc_add(bad.r, U256(1));
  EXPECT_FALSE(verify(sk.public_key(), msg, bad));
  bad = sig;
  bad.s = sc_add(bad.s, U256(1));
  EXPECT_FALSE(verify(sk.public_key(), msg, bad));
}

TEST_F(EcdsaTest, DeterministicNonceGivesStableSignature) {
  auto sk = PrivateKey::generate(rng_);
  auto msg = sha256("stable");
  EXPECT_EQ(sign(sk, msg), sign(sk, msg));
}

TEST_F(EcdsaTest, DifferentMessagesGiveDifferentNonces) {
  // Identical r across two messages would leak the private key.
  auto sk = PrivateKey::generate(rng_);
  auto s1 = sign(sk, sha256("one"));
  auto s2 = sign(sk, sha256("two"));
  EXPECT_NE(s1.r, s2.r);
}

TEST_F(EcdsaTest, LowSNormalization) {
  bool borrow;
  U256 half = U256::sub(order_n(), U256(1), borrow).shr(1);
  for (int i = 0; i < 8; ++i) {
    auto sk = PrivateKey::generate(rng_);
    auto sig = sign(sk, sha256(std::string("msg") + std::to_string(i)));
    EXPECT_LE(sig.s, half);
  }
}

TEST_F(EcdsaTest, ZeroSignatureComponentsRejected) {
  auto sk = PrivateKey::generate(rng_);
  auto msg = sha256("x");
  EXPECT_FALSE(verify(sk.public_key(), msg, Signature{U256(0), U256(1)}));
  EXPECT_FALSE(verify(sk.public_key(), msg, Signature{U256(1), U256(0)}));
}

TEST_F(EcdsaTest, OutOfRangeComponentsRejected) {
  auto sk = PrivateKey::generate(rng_);
  auto msg = sha256("x");
  EXPECT_FALSE(verify(sk.public_key(), msg, Signature{order_n(), U256(1)}));
}

TEST_F(EcdsaTest, PublicKeySerializationRoundTrip) {
  auto sk = PrivateKey::generate(rng_);
  auto pk = sk.public_key();
  auto ser = pk.serialize();
  auto back = PublicKey::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pk);
}

TEST_F(EcdsaTest, CorruptPublicKeyRejected) {
  auto sk = PrivateKey::generate(rng_);
  auto ser = sk.public_key().serialize();
  ser[10] ^= 0xff;  // point no longer on curve (overwhelmingly likely)
  EXPECT_FALSE(PublicKey::deserialize(ser).has_value());
}

TEST_F(EcdsaTest, WrongLengthPublicKeyRejected) {
  std::vector<std::uint8_t> short_key(63, 0);
  EXPECT_FALSE(PublicKey::deserialize(short_key).has_value());
}

TEST_F(EcdsaTest, SignatureSerializationRoundTrip) {
  auto sk = PrivateKey::generate(rng_);
  auto sig = sign(sk, sha256("serialize me"));
  auto back = Signature::deserialize(sig.serialize());
  EXPECT_EQ(back, sig);
}

TEST_F(EcdsaTest, FromSeedIsDeterministic) {
  auto a = PrivateKey::from_seed(1234);
  auto b = PrivateKey::from_seed(1234);
  auto c = PrivateKey::from_seed(1235);
  EXPECT_EQ(a.secret, b.secret);
  EXPECT_NE(a.secret, c.secret);
}

TEST_F(EcdsaTest, GeneratedKeyInRange) {
  for (int i = 0; i < 10; ++i) {
    auto sk = PrivateKey::generate(rng_);
    EXPECT_FALSE(sk.secret.is_zero());
    EXPECT_LT(sk.secret, order_n());
    EXPECT_TRUE(sk.public_key().valid());
  }
}

// Property sweep: roundtrip across many keys and messages.
class EcdsaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EcdsaPropertyTest, SignVerifyAcrossKeys) {
  bng::Rng rng(1000 + GetParam());
  auto sk = PrivateKey::generate(rng);
  auto pk = sk.public_key();
  auto msg = sha256(std::string("message-") + std::to_string(GetParam()));
  auto sig = sign(sk, msg);
  EXPECT_TRUE(verify(pk, msg, sig));
  // Cross-verify must fail against a different message.
  auto other = sha256(std::string("other-") + std::to_string(GetParam()));
  EXPECT_FALSE(verify(pk, other, sig));
}

INSTANTIATE_TEST_SUITE_P(ManyKeys, EcdsaPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace bng::crypto
