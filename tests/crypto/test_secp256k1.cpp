#include "crypto/secp256k1.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bng::crypto {
namespace {

U256 random_scalar(bng::Rng& rng) {
  return sc_reduce(U256(rng.next(), rng.next(), rng.next(), rng.next()));
}

TEST(Secp256k1Field, Constants) {
  EXPECT_EQ(field_p().to_hex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  EXPECT_EQ(order_n().to_hex(),
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
}

TEST(Secp256k1Field, AddWrapsModP) {
  bool borrow;
  U256 pm1 = U256::sub(field_p(), U256(1), borrow);
  EXPECT_EQ(fe_add(pm1, U256(1)), U256(0));
  EXPECT_EQ(fe_add(pm1, U256(2)), U256(1));
}

TEST(Secp256k1Field, SubWrapsModP) {
  bool borrow;
  U256 pm1 = U256::sub(field_p(), U256(1), borrow);
  EXPECT_EQ(fe_sub(U256(0), U256(1)), pm1);
}

TEST(Secp256k1Field, NegationIdentity) {
  bng::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    U256 a = U512::from_u256(U256(rng.next(), rng.next(), rng.next(), rng.next()))
                 .mod(field_p());
    EXPECT_EQ(fe_add(a, fe_neg(a)), U256(0));
  }
  EXPECT_EQ(fe_neg(U256(0)), U256(0));
}

TEST(Secp256k1Field, MulAgainstGenericMod) {
  bng::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    U256 a = U512::from_u256(U256(rng.next(), rng.next(), rng.next(), rng.next()))
                 .mod(field_p());
    U256 b = U512::from_u256(U256(rng.next(), rng.next(), rng.next(), rng.next()))
                 .mod(field_p());
    EXPECT_EQ(fe_mul(a, b), U256::mul_wide(a, b).mod(field_p()));
  }
}

TEST(Secp256k1Field, MulEdgeValuesNearP) {
  bool borrow;
  U256 pm1 = U256::sub(field_p(), U256(1), borrow);
  // (p-1)^2 mod p == 1
  EXPECT_EQ(fe_mul(pm1, pm1), U256(1));
  EXPECT_EQ(fe_mul(pm1, U256(1)), pm1);
  EXPECT_EQ(fe_mul(U256(0), pm1), U256(0));
}

TEST(Secp256k1Field, InverseIdentity) {
  bng::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    U256 a = U512::from_u256(U256(rng.next(), rng.next(), rng.next(), rng.next()))
                 .mod(field_p());
    if (a.is_zero()) continue;
    EXPECT_EQ(fe_mul(a, fe_inv(a)), U256(1));
  }
}

TEST(Secp256k1Field, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0.
  bool borrow;
  U256 pm1 = U256::sub(field_p(), U256(1), borrow);
  EXPECT_EQ(fe_pow(U256(2), pm1), U256(1));
  EXPECT_EQ(fe_pow(U256(12345), pm1), U256(1));
}

TEST(Secp256k1Scalar, InverseIdentity) {
  bng::Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    U256 a = random_scalar(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(sc_mul(a, sc_inv(a)), U256(1));
  }
}

TEST(Secp256k1Scalar, AddWrapsModN) {
  bool borrow;
  U256 nm1 = U256::sub(order_n(), U256(1), borrow);
  EXPECT_EQ(sc_add(nm1, U256(1)), U256(0));
  EXPECT_EQ(sc_add(nm1, nm1), U256::sub(order_n(), U256(2), borrow));
}

TEST(Secp256k1Scalar, NegIdentity) {
  bng::Rng rng(13);
  U256 a = random_scalar(rng);
  EXPECT_EQ(sc_add(a, sc_neg(a)), U256(0));
}

TEST(Secp256k1Curve, GeneratorOnCurve) {
  EXPECT_TRUE(generator().valid());
  EXPECT_FALSE(generator().infinity);
}

TEST(Secp256k1Curve, KnownDoubleOfG) {
  AffinePoint g2 = point_double(JacobianPoint::from_affine(generator())).to_affine();
  EXPECT_EQ(g2.x.to_hex(), "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_TRUE(g2.valid());
  // y is pinned against this implementation (cross-validated by the on-curve
  // check above, n*G = infinity, and add/double agreement below) to catch
  // regressions in the field arithmetic.
  EXPECT_EQ(g2.y.to_hex(), "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1Curve, AdditionMatchesDoubling) {
  JacobianPoint g = JacobianPoint::from_affine(generator());
  AffinePoint via_add = point_add(g, g).to_affine();
  AffinePoint via_double = point_double(g).to_affine();
  EXPECT_EQ(via_add, via_double);
}

TEST(Secp256k1Curve, ScalarMulSmallMultiples) {
  // k*G computed by repeated addition must match scalar_mul.
  JacobianPoint acc = JacobianPoint::infinity();
  for (std::uint64_t k = 1; k <= 8; ++k) {
    acc = point_add_affine(acc, generator());
    AffinePoint expect = acc.to_affine();
    AffinePoint got = scalar_mul(U256(k), generator()).to_affine();
    EXPECT_EQ(got, expect) << "k=" << k;
    EXPECT_TRUE(got.valid());
  }
}

TEST(Secp256k1Curve, OrderTimesGIsInfinity) {
  EXPECT_TRUE(scalar_mul(order_n(), generator()).is_infinity());
}

TEST(Secp256k1Curve, NMinus1TimesGIsMinusG) {
  bool borrow;
  U256 nm1 = U256::sub(order_n(), U256(1), borrow);
  AffinePoint p = scalar_mul(nm1, generator()).to_affine();
  EXPECT_EQ(p.x, generator().x);
  EXPECT_EQ(p.y, fe_neg(generator().y));
}

TEST(Secp256k1Curve, AddInverseGivesInfinity) {
  AffinePoint g = generator();
  AffinePoint neg_g{g.x, fe_neg(g.y), false};
  JacobianPoint sum = point_add_affine(JacobianPoint::from_affine(g), neg_g);
  EXPECT_TRUE(sum.is_infinity());
}

TEST(Secp256k1Curve, ScalarMulDistributes) {
  // (a+b)G == aG + bG
  bng::Rng rng(17);
  U256 a = random_scalar(rng), b = random_scalar(rng);
  AffinePoint lhs = scalar_mul(sc_add(a, b), generator()).to_affine();
  AffinePoint rhs =
      point_add(scalar_mul(a, generator()), scalar_mul(b, generator())).to_affine();
  EXPECT_EQ(lhs, rhs);
}

TEST(Secp256k1Curve, DoubleScalarMulMatchesSeparate) {
  bng::Rng rng(19);
  U256 u1 = random_scalar(rng), u2 = random_scalar(rng), k = random_scalar(rng);
  AffinePoint q = scalar_mul(k, generator()).to_affine();
  AffinePoint lhs = double_scalar_mul(u1, u2, q).to_affine();
  AffinePoint rhs = point_add(scalar_mul(u1, generator()), scalar_mul(u2, q)).to_affine();
  EXPECT_EQ(lhs, rhs);
}

TEST(Secp256k1Curve, InfinityIsAdditiveIdentity) {
  JacobianPoint inf = JacobianPoint::infinity();
  JacobianPoint g = JacobianPoint::from_affine(generator());
  EXPECT_EQ(point_add(inf, g).to_affine(), generator());
  EXPECT_EQ(point_add(g, inf).to_affine(), generator());
  EXPECT_TRUE(point_double(inf).is_infinity());
}

TEST(Secp256k1Curve, InvalidPointDetected) {
  AffinePoint bogus{U256(1), U256(1), false};
  EXPECT_FALSE(bogus.valid());
}

TEST(Secp256k1Curve, ZeroScalarGivesInfinity) {
  EXPECT_TRUE(scalar_mul(U256(0), generator()).is_infinity());
}

}  // namespace
}  // namespace bng::crypto
