#include <gtest/gtest.h>

#include "crypto/ecdsa.hpp"
#include "crypto/secp256k1.hpp"

namespace bng::crypto {
namespace {

TEST(FieldSqrt, SquareRootsOfSquares) {
  bng::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    U256 a = U512::from_u256(U256(rng.next(), rng.next(), rng.next(), rng.next()))
                 .mod(field_p());
    U256 square = fe_sqr(a);
    auto root = fe_sqrt(square);
    ASSERT_TRUE(root.has_value());
    // The root is a or -a.
    EXPECT_TRUE(*root == a || *root == fe_neg(a));
  }
}

TEST(FieldSqrt, ZeroHasRootZero) {
  auto root = fe_sqrt(U256(0));
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_zero());
}

TEST(FieldSqrt, NonResidueRejected) {
  // Exactly one of {a, -a} is a residue for a != 0 (p ≡ 3 mod 4).
  bng::Rng rng(2);
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    U256 a = U512::from_u256(U256(rng.next(), rng.next(), rng.next(), rng.next()))
                 .mod(field_p());
    if (a.is_zero()) continue;
    bool a_root = fe_sqrt(a).has_value();
    bool na_root = fe_sqrt(fe_neg(a)).has_value();
    EXPECT_NE(a_root, na_root);
    rejected += a_root ? 0 : 1;
  }
  EXPECT_GT(rejected, 0);  // some non-residues encountered
}

TEST(LiftX, RecoversGenerator) {
  auto even = lift_x(generator().x, generator().y.is_odd());
  ASSERT_TRUE(even.has_value());
  EXPECT_EQ(*even, generator());
}

TEST(LiftX, ParitySelectsBranch) {
  auto odd = lift_x(generator().x, true);
  auto even = lift_x(generator().x, false);
  ASSERT_TRUE(odd && even);
  EXPECT_TRUE(odd->y.is_odd());
  EXPECT_FALSE(even->y.is_odd());
  EXPECT_EQ(odd->y, fe_neg(even->y));
  EXPECT_TRUE(odd->valid());
  EXPECT_TRUE(even->valid());
}

TEST(LiftX, OffCurveXRejected) {
  // x = 5 is famously not on secp256k1... verify whichever way it falls by
  // scanning a few small x and requiring consistency with point validity.
  int on = 0, off = 0;
  for (std::uint64_t x = 1; x <= 20; ++x) {
    auto p = lift_x(U256(x), false);
    if (p) {
      EXPECT_TRUE(p->valid());
      ++on;
    } else {
      ++off;
    }
  }
  EXPECT_GT(on, 0);
  EXPECT_GT(off, 0);  // roughly half of all x are off-curve
}

TEST(LiftX, OutOfRangeXRejected) {
  EXPECT_FALSE(lift_x(field_p(), false).has_value());
}

TEST(CompressedKeys, RoundTripManyKeys) {
  bng::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    auto sk = PrivateKey::generate(rng);
    auto pk = sk.public_key();
    auto compressed = pk.serialize_compressed();
    EXPECT_TRUE(compressed[0] == 0x02 || compressed[0] == 0x03);
    auto restored = PublicKey::deserialize_compressed(compressed);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, pk);
  }
}

TEST(CompressedKeys, PrefixEncodesParity) {
  bng::Rng rng(4);
  auto sk = PrivateKey::generate(rng);
  auto pk = sk.public_key();
  auto compressed = pk.serialize_compressed();
  EXPECT_EQ(compressed[0], pk.point.y.is_odd() ? 0x03 : 0x02);
}

TEST(CompressedKeys, BadPrefixRejected) {
  bng::Rng rng(5);
  auto compressed = PrivateKey::generate(rng).public_key().serialize_compressed();
  compressed[0] = 0x04;
  EXPECT_FALSE(PublicKey::deserialize_compressed(compressed).has_value());
}

TEST(CompressedKeys, WrongLengthRejected) {
  std::vector<std::uint8_t> short_key(32, 0x02);
  EXPECT_FALSE(PublicKey::deserialize_compressed(short_key).has_value());
}

TEST(CompressedKeys, SignatureVerifiesAfterCompression) {
  // A signature must verify against a key that went through the compressed
  // wire encoding (the NG key block could ship compressed keys).
  bng::Rng rng(6);
  auto sk = PrivateKey::generate(rng);
  Hash256 msg;
  msg.bytes[0] = 0x99;
  auto sig = sign(sk, msg);
  auto restored =
      PublicKey::deserialize_compressed(sk.public_key().serialize_compressed());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(verify(*restored, msg, sig));
}

}  // namespace
}  // namespace bng::crypto
