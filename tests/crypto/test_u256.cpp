#include "crypto/u256.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bng::crypto {
namespace {

U256 random_u256(bng::Rng& rng) { return U256(rng.next(), rng.next(), rng.next(), rng.next()); }

TEST(U256Test, HexRoundTrip) {
  auto v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.to_hex(), "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256Test, ShortHexLeftPadded) {
  EXPECT_EQ(U256::from_hex("ff"), U256(255));
}

TEST(U256Test, TooLongHexThrows) {
  EXPECT_THROW(U256::from_hex(std::string(65, '1')), std::invalid_argument);
}

TEST(U256Test, BytesRoundTrip) {
  bng::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_bytes_be(v.to_bytes_be()), v);
  }
}

TEST(U256Test, ComparisonOrder) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_LT(U256(UINT64_MAX), U256(0, 1, 0, 0));
  EXPECT_GT(U256(0, 0, 0, 1), U256(UINT64_MAX, UINT64_MAX, UINT64_MAX, 0));
}

TEST(U256Test, AdditionWithCarryChain) {
  bool carry;
  U256 max(UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX);
  U256 r = U256::add(max, U256(1), carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(r.is_zero());
}

TEST(U256Test, SubtractionWithBorrow) {
  bool borrow;
  U256 r = U256::sub(U256(0), U256(1), borrow);
  EXPECT_TRUE(borrow);
  EXPECT_EQ(r, U256(UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX));
}

TEST(U256Test, AddSubInverse) {
  bng::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    bool carry, borrow;
    U256 sum = U256::add(a, b, carry);
    U256 back = U256::sub(sum, b, borrow);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow iff the subtraction borrows back
  }
}

TEST(U256Test, MulWideSmallValues) {
  U512 p = U256::mul_wide(U256(7), U256(6));
  EXPECT_EQ(p.limb[0], 42u);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(p.limb[i], 0u);
}

TEST(U256Test, MulWideMaxValues) {
  // (2^256 - 1)^2 = 2^512 - 2^257 + 1
  U256 max(UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX);
  U512 p = U256::mul_wide(max, max);
  EXPECT_EQ(p.limb[0], 1u);
  EXPECT_EQ(p.limb[4], UINT64_MAX - 1);
  EXPECT_EQ(p.limb[7], UINT64_MAX);
}

TEST(U256Test, MulCommutative) {
  bng::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U512 ab = U256::mul_wide(a, b), ba = U256::mul_wide(b, a);
    EXPECT_EQ(ab.limb, ba.limb);
  }
}

TEST(U256Test, ShiftLeftSmall) {
  EXPECT_EQ(U256(1).shl(1), U256(2));
  EXPECT_EQ(U256(1).shl(64), U256(0, 1, 0, 0));
  EXPECT_EQ(U256(1).shl(255), U256(0, 0, 0, 1ull << 63));
}

TEST(U256Test, ShiftRightSmall) {
  EXPECT_EQ(U256(2).shr(1), U256(1));
  EXPECT_EQ(U256(0, 1, 0, 0).shr(64), U256(1));
  EXPECT_EQ(U256(0, 0, 0, 1ull << 63).shr(255), U256(1));
}

TEST(U256Test, ShiftRoundTrip) {
  bng::Rng rng(13);
  for (unsigned n : {1u, 17u, 63u, 64u, 65u, 128u, 200u}) {
    U256 v = random_u256(rng);
    // shr(shl(v)) loses high bits; verify on the low part.
    U256 masked = v.shl(n).shr(n);
    EXPECT_EQ(masked, v.shl(n).shr(n));
    EXPECT_EQ(v.shr(n).shl(n).shr(n), v.shr(n));
  }
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256(0).bit_length(), 0);
  EXPECT_EQ(U256(1).bit_length(), 1);
  EXPECT_EQ(U256(0xff).bit_length(), 8);
  EXPECT_EQ(U256(0, 0, 0, 1).bit_length(), 193);
  EXPECT_EQ(U256(0, 0, 0, 1ull << 63).bit_length(), 256);
}

TEST(U256Test, BitAccess) {
  U256 v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_TRUE(U256(0, 0, 1, 0).bit(128));
}

TEST(U512Test, ModSmallNumbers) {
  U512 v = U512::from_u256(U256(100));
  EXPECT_EQ(v.mod(U256(7)), U256(2));
  EXPECT_EQ(v.mod(U256(100)), U256(0));
  EXPECT_EQ(v.mod(U256(101)), U256(100));
}

TEST(U512Test, ModIdentityWhenSmaller) {
  bng::Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    U256 v = random_u256(rng);
    U256 m = v;
    m.limb[3] |= 0x8000000000000000ull;  // ensure m > v is likely
    if (!(v < m)) continue;
    EXPECT_EQ(U512::from_u256(v).mod(m), v);
  }
}

TEST(U512Test, ModMatchesMulRelation) {
  // (a*b) mod m recomputed against a naive double-and-add identity:
  // ((a mod m) * (b mod m)) mod m == (a*b) mod m.
  bng::Rng rng(19);
  for (int i = 0; i < 30; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng), m = random_u256(rng);
    if (m.is_zero()) continue;
    U256 am = U512::from_u256(a).mod(m);
    U256 bm = U512::from_u256(b).mod(m);
    EXPECT_EQ(U256::mul_wide(a, b).mod(m), U256::mul_wide(am, bm).mod(m));
  }
}

TEST(U512Test, ModWithLargeModulusNearMax) {
  // Exercises the top-bit handling inside the binary division.
  U256 m(UINT64_MAX, UINT64_MAX, UINT64_MAX, UINT64_MAX);  // 2^256 - 1
  U256 a(0, 0, 0, UINT64_MAX), b(UINT64_MAX, 0, 0, UINT64_MAX);
  U256 r = U256::mul_wide(a, b).mod(m);
  EXPECT_LT(r, m);
  // Verify via the identity 2^256 ≡ 1 (mod 2^256 - 1): a*b = hi*2^256 + lo
  // so r == (hi + lo) mod m.
  U512 wide = U256::mul_wide(a, b);
  U256 lo(wide.limb[0], wide.limb[1], wide.limb[2], wide.limb[3]);
  U256 hi(wide.limb[4], wide.limb[5], wide.limb[6], wide.limb[7]);
  bool carry;
  U256 folded = U256::add(lo, hi, carry);
  U512 check = U512::from_u256(folded);
  if (carry) check.limb[4] = 1;
  EXPECT_EQ(r, check.mod(m));
}

}  // namespace
}  // namespace bng::crypto
