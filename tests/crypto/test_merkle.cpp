#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace bng::crypto {
namespace {

std::vector<Hash256> make_leaves(std::size_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    leaves.push_back(sha256(std::string("leaf-") + std::to_string(i)));
  return leaves;
}

TEST(Merkle, EmptyIsZeroHash) { EXPECT_TRUE(merkle_root({}).is_zero()); }

TEST(Merkle, SingleLeafIsItself) {
  auto leaves = make_leaves(1);
  EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(Merkle, TwoLeavesIsPairHash) {
  auto leaves = make_leaves(2);
  std::uint8_t buf[64];
  std::copy(leaves[0].bytes.begin(), leaves[0].bytes.end(), buf);
  std::copy(leaves[1].bytes.begin(), leaves[1].bytes.end(), buf + 32);
  EXPECT_EQ(merkle_root(leaves), sha256d(std::span<const std::uint8_t>(buf, 64)));
}

TEST(Merkle, OddCountDuplicatesLast) {
  // Bitcoin convention: [a, b, c] hashes like [a, b, c, c].
  auto leaves3 = make_leaves(3);
  auto leaves4 = leaves3;
  leaves4.push_back(leaves3[2]);
  EXPECT_EQ(merkle_root(leaves3), merkle_root(leaves4));
}

TEST(Merkle, OrderMatters) {
  auto leaves = make_leaves(4);
  auto swapped = leaves;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(merkle_root(leaves), merkle_root(swapped));
}

TEST(Merkle, LeafChangeChangesRoot) {
  auto leaves = make_leaves(8);
  auto root1 = merkle_root(leaves);
  leaves[5].bytes[0] ^= 1;
  EXPECT_NE(merkle_root(leaves), root1);
}

class MerkleProofTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MerkleProofTest, ProofVerifiesAtEveryIndex) {
  const auto [n_leaves, index] = GetParam();
  if (index >= n_leaves) GTEST_SKIP();
  auto leaves = make_leaves(n_leaves);
  auto root = merkle_root(leaves);
  auto proof = merkle_proof(leaves, index);
  EXPECT_EQ(merkle_proof_root(leaves[index], proof), root);
}

TEST_P(MerkleProofTest, ProofRejectsWrongLeaf) {
  const auto [n_leaves, index] = GetParam();
  if (index >= n_leaves || n_leaves < 2) GTEST_SKIP();
  auto leaves = make_leaves(n_leaves);
  auto root = merkle_root(leaves);
  auto proof = merkle_proof(leaves, index);
  Hash256 wrong = leaves[index];
  wrong.bytes[31] ^= 1;
  EXPECT_NE(merkle_proof_root(wrong, proof), root);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MerkleProofTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 64),
                                            ::testing::Values(0, 1, 4, 7, 12, 63)));

TEST(MerkleProof, DepthIsLogarithmic) {
  auto leaves = make_leaves(64);
  EXPECT_EQ(merkle_proof(leaves, 0).siblings.size(), 6u);
  auto leaves3 = make_leaves(3);
  EXPECT_EQ(merkle_proof(leaves3, 0).siblings.size(), 2u);
}

}  // namespace
}  // namespace bng::crypto
