#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bng::crypto {
namespace {

// FIPS 180-4 / NIST known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256("").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256("abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog multiple times";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edges must all be consistent
  // between incremental and one-shot paths.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256 h;
    for (char c : msg) h.update(std::string(1, c));
    EXPECT_EQ(h.finalize(), sha256(msg)) << "len " << len;
  }
}

TEST(Sha256, DifferentInputsDiffer) {
  EXPECT_NE(sha256("a"), sha256("b"));
  EXPECT_NE(sha256("abc"), sha256("abd"));
  EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

TEST(Sha256d, DoubleHashDiffersFromSingle) {
  std::vector<std::uint8_t> data{1, 2, 3};
  Hash256 once = sha256(data);
  Hash256 twice = sha256d(data);
  EXPECT_NE(once, twice);
  EXPECT_EQ(twice, sha256(std::span<const std::uint8_t>(once.bytes.data(), 32)));
}

TEST(Sha256, AvalancheEffect) {
  // Flipping one input bit should flip roughly half the output bits.
  std::vector<std::uint8_t> a(32, 0x5c), b = a;
  b[0] ^= 0x01;
  Hash256 ha = sha256(a), hb = sha256(b);
  int diff_bits = 0;
  for (int i = 0; i < 32; ++i) diff_bits += __builtin_popcount(ha.bytes[i] ^ hb.bytes[i]);
  EXPECT_GT(diff_bits, 80);
  EXPECT_LT(diff_bits, 176);
}

}  // namespace
}  // namespace bng::crypto
