#include "analysis/incentives.hpp"

#include <cassert>
#include <stdexcept>

namespace bng::analysis {

namespace {
void check_alpha(double alpha) {
  if (alpha < 0.0 || alpha >= 1.0)
    throw std::invalid_argument("alpha must be in [0, 1)");
}
}  // namespace

double inclusion_lower_bound(double alpha) {
  check_alpha(alpha);
  return alpha * (2.0 - alpha) / (1.0 + alpha - alpha * alpha);
}

double extension_upper_bound(double alpha) {
  check_alpha(alpha);
  return (1.0 - alpha) / (2.0 - alpha);
}

FeeWindow fee_window(double alpha) {
  FeeWindow w;
  w.lower = inclusion_lower_bound(alpha);
  w.upper = extension_upper_bound(alpha);
  w.feasible = w.lower < w.upper;
  return w;
}

double max_feasible_alpha() {
  // The window shrinks monotonically in alpha; bisect on feasibility.
  double lo = 0.0, hi = 1.0 - 1e-12;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (fee_window(mid).feasible)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double inclusion_attack_revenue(double alpha, double r_leader) {
  check_alpha(alpha);
  return alpha * 1.0 + (1.0 - alpha) * alpha * (1.0 - r_leader);
}

double inclusion_honest_revenue(double alpha, double r_leader) {
  check_alpha(alpha);
  return r_leader + alpha * (1.0 - r_leader);
}

double simulate_inclusion_attack(double alpha, double r_leader, std::uint64_t trials,
                                 Rng& rng) {
  check_alpha(alpha);
  double total = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    // The attacker-leader holds the tx in a secret microblock and mines on it.
    if (rng.uniform() < alpha) {
      // Won the next key block itself: both fee shares.
      total += 1.0;
    } else {
      // Someone else won; the tx is eventually placed by another leader and
      // the attacker mines on top of that microblock like everyone else.
      if (rng.uniform() < alpha) total += 1.0 - r_leader;
    }
  }
  return total / static_cast<double>(trials);
}

double expected_wait_blocks(double honest_fraction) {
  if (honest_fraction <= 0.0 || honest_fraction > 1.0)
    throw std::invalid_argument("honest fraction must be in (0, 1]");
  // The user's tx lands in the first honest block; block honesty is i.i.d.
  // with probability h, so the wait is geometric with mean 1/h.
  return 1.0 / honest_fraction;
}

double expected_wait_seconds(double honest_fraction, double block_interval_s) {
  return expected_wait_blocks(honest_fraction) * block_interval_s;
}

}  // namespace bng::analysis
