// Closed-form incentive analysis of the fee split (paper §5.1) and
// censorship resistance (§5.2).
//
// r_leader — the fraction of a transaction fee earned by the leader that
// places it in a microblock — must be large enough that hiding a transaction
// to capture 100% of its fee doesn't pay (transaction-inclusion attack), and
// small enough that skipping a microblock to re-place its transactions
// doesn't pay (longest-chain-extension attack). At alpha = 1/4 the window is
// (36.8%, 42.9%) and the paper picks 40%; under a rushing adversary
// (alpha up to 1/3) the window is empty.
#pragma once

#include "common/rng.hpp"

namespace bng::analysis {

/// Lower bound on r_leader from the transaction-inclusion attack:
/// r > alpha(2-alpha) / (1 + alpha - alpha^2)   [= 1 - (1-a)/(1+a-a^2)]
double inclusion_lower_bound(double alpha);

/// Upper bound on r_leader from the longest-chain-extension attack:
/// r < (1-alpha) / (2-alpha)
double extension_upper_bound(double alpha);

struct FeeWindow {
  double lower = 0;  ///< exclusive
  double upper = 0;  ///< exclusive
  bool feasible = false;
};

/// The admissible r_leader interval for an attacker of size alpha.
FeeWindow fee_window(double alpha);

/// Largest alpha for which a feasible r_leader exists (bisection).
double max_feasible_alpha();

/// Expected revenue fraction (of one tx fee) for a leader running the
/// transaction-inclusion attack: alpha*1 + (1-alpha)*alpha*(1-r).
double inclusion_attack_revenue(double alpha, double r_leader);

/// Honest revenue for the same leader: r (it places the tx immediately) plus
/// the chance alpha of also mining the next key block, earning (1 - r).
double inclusion_honest_revenue(double alpha, double r_leader);

/// Monte Carlo of the inclusion attack; converges to
/// inclusion_attack_revenue. Used by property tests.
double simulate_inclusion_attack(double alpha, double r_leader, std::uint64_t trials,
                                 Rng& rng);

/// Censorship resistance (§5.2): expected number of key blocks a user waits
/// for inclusion when `honest_fraction` of mining power is honest (paper:
/// 3/4 honest -> 4/3 blocks -> 13.33 minutes at 10-minute intervals).
double expected_wait_blocks(double honest_fraction);
double expected_wait_seconds(double honest_fraction, double block_interval_s);

/// Selfish-mining resilience bound shared with Bitcoin (§2, §5.1).
inline constexpr double kByzantineBound = 0.25;

}  // namespace bng::analysis
