#include "obs/telemetry.hpp"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace bng::obs {

void SweepTelemetry::start(std::size_t total_jobs, std::size_t prefilled) {
  std::lock_guard lock(mu_);
  total_jobs_ = total_jobs;
  prefilled_ = prefilled;
  delivered_ = 0;
  events_total_ = 0;
  started_ = std::chrono::steady_clock::now();
}

void SweepTelemetry::on_record_delivered() {
  std::lock_guard lock(mu_);
  ++delivered_;
}

void SweepTelemetry::add_events(std::uint64_t n) {
  std::lock_guard lock(mu_);
  events_total_ += n;
}

std::uint64_t SweepTelemetry::peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void SweepTelemetry::journal_stats(std::uint64_t fsyncs, double total_ms,
                                   double max_ms) {
  std::lock_guard lock(mu_);
  has_journal_ = true;
  journal_fsyncs_ = fsyncs;
  journal_fsync_total_ms_ = total_ms;
  journal_fsync_max_ms_ = max_ms;
}

void SweepTelemetry::cache_stats(std::uint64_t hits, std::uint64_t misses,
                                 std::uint64_t stale, std::uint64_t stores) {
  std::lock_guard lock(mu_);
  has_cache_ = true;
  cache_hits_ = hits;
  cache_misses_ = misses;
  cache_stale_ = stale;
  cache_stores_ = stores;
}

void SweepTelemetry::adaptive_stats(std::size_t dense_points, std::size_t dense_jobs,
                                    std::size_t evaluated_points,
                                    std::size_t jobs_dispatched) {
  std::lock_guard lock(mu_);
  has_adaptive_ = true;
  adaptive_dense_points_ = dense_points;
  adaptive_dense_jobs_ = dense_jobs;
  adaptive_evaluated_points_ = evaluated_points;
  adaptive_jobs_dispatched_ = jobs_dispatched;
}

void SweepTelemetry::add_parallel_delta(double busy_ms, double stall_ms) {
  std::lock_guard lock(mu_);
  has_parallel_ = true;
  par_busy_ms_ += busy_ms;
  par_stall_ms_ += stall_ms;
}

void SweepTelemetry::add_parallel_run(const ParallelFrame& frame) {
  std::lock_guard lock(mu_);
  has_parallel_ = true;
  if (frame.shards > par_shards_max_) par_shards_max_ = frame.shards;
  ++par_runs_;
  par_windows_ += frame.windows;
  par_lane_messages_ += frame.lane_messages;
  par_arena_bytes_ += frame.arena_local_bytes;
  if (par_runs_ == 1 || frame.window_min_s < par_window_min_s_)
    par_window_min_s_ = frame.window_min_s;
  par_window_sum_s_ += frame.window_avg_s * static_cast<double>(frame.windows);
  par_shard_seconds_ += frame.wall_ms / 1000.0 * frame.shards;
  par_events_ += frame.events;
}

void SweepTelemetry::init_workers(const std::vector<std::string>& endpoints) {
  std::lock_guard lock(mu_);
  workers_.clear();
  workers_.resize(endpoints.size());
  for (std::size_t i = 0; i < endpoints.size(); ++i)
    workers_[i].endpoint = endpoints[i];
}

void SweepTelemetry::update_worker(std::size_t index, const WorkerTelemetry& w) {
  std::lock_guard lock(mu_);
  if (index < workers_.size()) workers_[index] = w;
}

std::string SweepTelemetry::progress_line() const {
  std::lock_guard lock(mu_);
  char buf[256];
  const std::size_t done = prefilled_ + delivered_;
  int n = std::snprintf(buf, sizeof buf, "[progress] records=%zu/%zu", done,
                        total_jobs_);
  std::string out(buf, static_cast<std::size_t>(n));
  if (events_total_ > 0) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - started_)
                               .count();
    n = std::snprintf(buf, sizeof buf, " events_per_sec=%.3g",
                      elapsed > 0 ? static_cast<double>(events_total_) / elapsed : 0.0);
    out.append(buf, static_cast<std::size_t>(n));
  }
  n = std::snprintf(buf, sizeof buf, " rss_peak_mb=%.1f",
                    static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
  out.append(buf, static_cast<std::size_t>(n));
  if (has_parallel_) {
    const double total = par_busy_ms_ + par_stall_ms_;
    n = std::snprintf(buf, sizeof buf, " shards=%u par_eff=%.0f%%",
                      par_shards_max_, total > 0 ? 100.0 * par_busy_ms_ / total : 100.0);
    out.append(buf, static_cast<std::size_t>(n));
  }
  if (!workers_.empty()) {
    std::size_t alive = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t spec_wins = 0;
    for (const WorkerTelemetry& w : workers_) {
      if (w.alive) ++alive;
      reconnects += w.reconnects;
      spec_wins += w.speculation_wins;
    }
    n = std::snprintf(buf, sizeof buf,
                      " workers_alive=%zu/%zu reconnects=%llu spec_wins=%llu", alive,
                      workers_.size(), static_cast<unsigned long long>(reconnects),
                      static_cast<unsigned long long>(spec_wins));
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string SweepTelemetry::to_json(const std::string& scenario, double wall_s) const {
  std::lock_guard lock(mu_);
  char buf[768];
  std::string j = "{\n";
  std::snprintf(buf, sizeof buf,
                "  \"scenario\": \"%s\",\n  \"records_total\": %zu,\n"
                "  \"records_prefilled\": %zu,\n  \"records_done\": %zu,\n"
                "  \"wall_s\": %.3f",
                scenario.c_str(), total_jobs_, prefilled_, prefilled_ + delivered_,
                wall_s);
  j += buf;
  std::snprintf(buf, sizeof buf,
                ",\n  \"events_executed\": %llu,\n  \"events_per_sec\": %.1f,\n"
                "  \"rss_peak_mb\": %.1f",
                static_cast<unsigned long long>(events_total_),
                wall_s > 0 ? static_cast<double>(events_total_) / wall_s : 0.0,
                static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0));
  j += buf;
  if (has_journal_) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"journal\": {\"fsyncs\": %llu, \"fsync_total_ms\": %.3f, "
                  "\"fsync_max_ms\": %.3f}",
                  static_cast<unsigned long long>(journal_fsyncs_),
                  journal_fsync_total_ms_, journal_fsync_max_ms_);
    j += buf;
  }
  if (has_cache_) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                  "\"stale\": %llu, \"stores\": %llu}",
                  static_cast<unsigned long long>(cache_hits_),
                  static_cast<unsigned long long>(cache_misses_),
                  static_cast<unsigned long long>(cache_stale_),
                  static_cast<unsigned long long>(cache_stores_));
    j += buf;
  }
  if (has_adaptive_) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"adaptive\": {\"dense_points\": %zu, \"dense_jobs\": %zu, "
                  "\"evaluated_points\": %zu, \"jobs_dispatched\": %zu}",
                  adaptive_dense_points_, adaptive_dense_jobs_,
                  adaptive_evaluated_points_, adaptive_jobs_dispatched_);
    j += buf;
  }
  if (has_parallel_) {
    const double total = par_busy_ms_ + par_stall_ms_;
    std::snprintf(
        buf, sizeof buf,
        ",\n  \"parallel\": {\"shards\": %u, \"runs\": %llu, \"windows\": %llu, "
        "\"busy_ms\": %.1f, \"barrier_stall_ms\": %.1f, \"efficiency\": %.3f, "
        "\"lane_messages\": %llu, \"arena_local_bytes\": %llu",
        par_shards_max_, static_cast<unsigned long long>(par_runs_),
        static_cast<unsigned long long>(par_windows_), par_busy_ms_, par_stall_ms_,
        total > 0 ? par_busy_ms_ / total : 1.0,
        static_cast<unsigned long long>(par_lane_messages_),
        static_cast<unsigned long long>(par_arena_bytes_));
    j += buf;
    std::snprintf(
        buf, sizeof buf,
        ", \"window_min_s\": %.6g, \"window_avg_s\": %.6g, "
        "\"per_shard_events_per_sec\": %.3g}",
        par_window_min_s_,
        par_windows_ > 0 ? par_window_sum_s_ / static_cast<double>(par_windows_) : 0.0,
        par_shard_seconds_ > 0 ? static_cast<double>(par_events_) / par_shard_seconds_
                               : 0.0);
    j += buf;
  }
  j += ",\n  \"workers\": [";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerTelemetry& w = workers_[i];
    std::snprintf(
        buf, sizeof buf,
        "%s\n    {\"endpoint\": \"%s\", \"alive\": %s, \"abandoned\": %s, "
        "\"records\": %llu, \"inflight\": %u, \"reconnects\": %u, "
        "\"speculation_wins\": %u, \"heartbeats\": %llu, \"max_silence_ms\": %llu, "
        "\"reported\": {\"jobs_done\": %u, \"pool_rebuilds\": %u, \"busy_ms\": %llu, "
        "\"cache_hits\": %u, \"cache_misses\": %u, \"cache_stale\": %u, "
        "\"cache_stores\": %u}}",
        i == 0 ? "" : ",", w.endpoint.c_str(), w.alive ? "true" : "false",
        w.abandoned ? "true" : "false", static_cast<unsigned long long>(w.records),
        w.inflight, w.reconnects, w.speculation_wins,
        static_cast<unsigned long long>(w.heartbeats),
        static_cast<unsigned long long>(w.max_silence_ms), w.reported.jobs_done,
        w.reported.pool_rebuilds, static_cast<unsigned long long>(w.reported.busy_ms),
        w.reported.cache_hits, w.reported.cache_misses, w.reported.cache_stale,
        w.reported.cache_stores);
    j += buf;
  }
  j += workers_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return j;
}

std::size_t SweepTelemetry::records_done() const {
  std::lock_guard lock(mu_);
  return prefilled_ + delivered_;
}

std::size_t SweepTelemetry::total_jobs() const {
  std::lock_guard lock(mu_);
  return total_jobs_;
}

std::vector<WorkerTelemetry> SweepTelemetry::workers() const {
  std::lock_guard lock(mu_);
  return workers_;
}

}  // namespace bng::obs
