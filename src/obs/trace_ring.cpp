#include "obs/trace_ring.hpp"

#include <cstdio>
#include <stdexcept>

namespace bng::obs {

std::uint32_t parse_trace_mask(std::string_view spec) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? spec.size() : comma;
    const std::string_view token = spec.substr(pos, end - pos);
    if (token == "blocks") {
      mask |= kTraceBlocks;
    } else if (token == "adversary") {
      mask |= kTraceAdversary;
    } else if (token == "events") {
      mask |= kTraceEvents;
    } else if (token == "all") {
      mask |= kTraceBlocks | kTraceAdversary | kTraceEvents;
    } else if (!token.empty()) {
      throw std::invalid_argument("unknown trace category '" + std::string(token) +
                                  "' (expected blocks, adversary, events, or all)");
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (mask == 0)
    throw std::invalid_argument("empty trace category list");
  return mask;
}

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kGenerate:
      return "generate";
    case TraceKind::kAccept:
      return "accept";
    case TraceKind::kDeliver:
      return "deliver";
    case TraceKind::kWithhold:
      return "withhold";
    case TraceKind::kRelease:
      return "release";
    case TraceKind::kAbandon:
      return "abandon";
    case TraceKind::kPoison:
      return "poison";
    case TraceKind::kFraud:
      return "fraud";
  }
  return "?";
}

TraceRing::TraceRing(std::uint32_t mask, std::size_t capacity)
    : mask_(mask), capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::record(std::uint32_t category, TraceKind kind, NodeId node,
                       BlockId block, BlockId parent, NodeId from) {
  if (!wants(category)) return;
  TraceEvent ev;
  ev.at = now_ ? now_() : 0.0;
  ev.kind = kind;
  ev.node = node;
  ev.block = block;
  ev.parent = parent;
  ev.from = from;
  ++total_;
  if (buf_.size() < capacity_) {
    buf_.push_back(ev);
    return;
  }
  // Full: overwrite the oldest slot (next_ walks the ring).
  buf_[next_] = ev;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  // Oldest first: once the ring wrapped, next_ points at the oldest slot.
  for (std::size_t i = 0; i < buf_.size(); ++i)
    out.push_back(buf_[(next_ + i) % buf_.size()]);
  return out;
}

void TraceRing::clear() {
  buf_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

void TraceRing::emit_jsonl(std::string& out, std::uint32_t point,
                           std::uint32_t ordinal) const {
  char line[192];
  for (const TraceEvent& ev : events()) {
    const long long block = ev.block == kNoBlockId ? -1 : static_cast<long long>(ev.block);
    const long long parent =
        ev.parent == kNoBlockId ? -1 : static_cast<long long>(ev.parent);
    const long long node = ev.node == kNoNode ? -1 : static_cast<long long>(ev.node);
    const long long from = ev.from == kNoNode ? -1 : static_cast<long long>(ev.from);
    std::snprintf(line, sizeof line,
                  "{\"point\":%u,\"ordinal\":%u,\"at\":%.6f,\"kind\":\"%s\","
                  "\"node\":%lld,\"block\":%lld,\"parent\":%lld,\"from\":%lld}\n",
                  point, ordinal, ev.at, trace_kind_name(ev.kind), node, block, parent,
                  from);
    out += line;
  }
}

}  // namespace bng::obs
