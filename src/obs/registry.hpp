// Typed metric registry (ROADMAP item 5, in the spirit of SNIPPETS.md's
// bptree MetricSet): counters, gauges, and fixed-bucket histograms are
// registered once by name with a unit and description, mutated lock-free on
// the hot path (one registry per experiment; the sim loop is
// single-threaded), and snapshotted uniformly into the (name, value) pairs a
// RunRecord carries.
//
// The snapshot is the schema: values come out in registration order with
// stable names, so a scenario or tier that registers a new metric changes
// nothing in the record codec, the aggregator, or the emitters — they all
// consume NamedValues. Histograms expand into one value per cumulative
// bucket plus `_count` and `_sum`, Prometheus-style, so they survive the
// same flat codec unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bng::obs {

/// What a metric's value is denominated in. Purely descriptive (schema
/// listings, docs); never touches the wire format.
enum class Unit : std::uint8_t {
  kNone,     ///< dimensionless (ratios, shares, flags)
  kSeconds,  ///< sim-time or wall-time seconds
  kCount,    ///< discrete events/objects
  kBytes,
};

[[nodiscard]] const char* unit_name(Unit u);

/// Monotonically increasing event count. u64 internally; snapshots as the
/// exact double when representable (counts in one experiment stay far below
/// 2^53).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar. May legitimately hold NaN/inf (e.g. a percentile
/// over an empty sample); the record codec's binary form preserves the exact
/// bits and its JSON form maps non-finite to null and back to NaN.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bound histogram: bucket upper bounds are set at registration and
/// never change, so observe() is a linear scan over a handful of doubles —
/// no allocation, no atomics. Snapshots cumulatively (`le_<bound>` counts
/// include every smaller bucket, `_count` includes the overflow tail).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;         ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;  ///< per-bucket (non-cumulative) counts
  std::uint64_t overflow_ = 0;         ///< observations above the last bound
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// One registry per experiment/benchmark. Registration returns a stable
/// reference (deque-like storage; references never move), re-registering an
/// existing name returns the same metric, and a name registered as two
/// different kinds throws — the schema is append-only within a run.
class Registry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string description;
    Unit unit = Unit::kNone;
    Kind kind = Kind::kGauge;
    std::size_t slot = 0;  ///< index into the per-kind storage
  };

  Counter& counter(std::string name, Unit unit = Unit::kCount,
                   std::string description = {});
  Gauge& gauge(std::string name, Unit unit = Unit::kNone,
               std::string description = {});
  Histogram& histogram(std::string name, std::vector<double> bounds,
                       Unit unit = Unit::kNone, std::string description = {});

  /// Registration-order metadata — the schema listing (`ngsim
  /// --list-metrics` renders this).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Flatten every metric, in registration order, to the (name, value)
  /// schema RunRecords carry. Counters emit one value; histograms expand to
  /// `name_count`, `name_sum`, then one cumulative `name_le_<bound>` per
  /// bucket (bound formatted with %g — stable and short).
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const;

 private:
  const Entry* find(const std::string& name) const;
  Entry& add(std::string name, Unit unit, std::string description, Kind kind,
             std::size_t slot);

  std::vector<Entry> entries_;
  // unique_ptr storage keeps references stable across registrations.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bng::obs
