// Bounded sim-time trace ring (ROADMAP item 4's forensics substrate): when
// attached to an experiment (off by default — a null pointer on the hot
// path), nodes and adversary strategies record block accept/withhold/
// release/poison decisions with causal parent links. The ring keeps the
// last `capacity` events and counts what it dropped, so a pathological run
// cannot balloon memory; `ngsim --trace events|blocks|adversary` drains it
// to JSONL tagged with the job identity.
//
// Purely observational by construction: recording reads sim state but never
// mutates it, takes no RNG draws, and schedules nothing — a traced run's
// determinism digest is bit-identical to an untraced one (pinned by
// tests/obs/test_trace_ring.cpp and the CI byte-diff).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/intern.hpp"
#include "common/types.hpp"

namespace bng::obs {

/// Category bitmask, selected per-run by `--trace`.
inline constexpr std::uint32_t kTraceBlocks = 1u << 0;     ///< generate/accept
inline constexpr std::uint32_t kTraceAdversary = 1u << 1;  ///< withhold/release/poison/fraud
inline constexpr std::uint32_t kTraceEvents = 1u << 2;     ///< per-node block delivery

/// Parse a comma-separated category list ("blocks,adversary"); throws
/// std::invalid_argument naming the bad token.
[[nodiscard]] std::uint32_t parse_trace_mask(std::string_view spec);

enum class TraceKind : std::uint8_t {
  kGenerate,  ///< a miner/leader produced a block           [blocks]
  kAccept,    ///< a node inserted a block into its tree     [blocks]
  kDeliver,   ///< a block body arrived at a node            [events]
  kWithhold,  ///< adversary kept an own win private         [adversary]
  kRelease,   ///< adversary published a withheld block      [adversary]
  kAbandon,   ///< adversary dropped its private chain       [adversary]
  kPoison,    ///< a poison tx was placed in a microblock    [adversary]
  kFraud,     ///< equivocation evidence detected            [adversary]
};

[[nodiscard]] const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  double at = 0;  ///< sim time
  TraceKind kind = TraceKind::kAccept;
  NodeId node = kNoNode;       ///< acting node
  BlockId block = kNoBlockId;  ///< subject block (interned id)
  BlockId parent = kNoBlockId; ///< causal parent link, if known
  NodeId from = kNoNode;       ///< peer the block came from (accept/deliver)
};

class TraceRing {
 public:
  explicit TraceRing(std::uint32_t mask, std::size_t capacity = 1u << 16);

  /// The hot-path gate: callers check this before building an event, so a
  /// category that is off costs one load and a branch.
  [[nodiscard]] bool wants(std::uint32_t category) const {
    return (mask_ & category) != 0;
  }
  [[nodiscard]] std::uint32_t mask() const { return mask_; }

  /// The experiment installs its event-queue clock so recorders deep in the
  /// protocol stack (withholding strategy, poison placement) need no time
  /// plumbing of their own.
  void set_clock(std::function<double()> now) { now_ = std::move(now); }

  void record(std::uint32_t category, TraceKind kind, NodeId node, BlockId block,
              BlockId parent = kNoBlockId, NodeId from = kNoNode);

  /// Events currently held, oldest first (at most `capacity`).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Append one JSONL line per held event, tagged with the job identity:
  ///   {"point":0,"ordinal":1,"at":12.5,"kind":"accept","node":3,
  ///    "block":17,"parent":16,"from":2}
  /// kNoBlockId/kNoNode fields are emitted as -1.
  void emit_jsonl(std::string& out, std::uint32_t point, std::uint32_t ordinal) const;

 private:
  std::uint32_t mask_;
  std::size_t capacity_;
  std::function<double()> now_;
  std::vector<TraceEvent> buf_;  ///< ring storage
  std::size_t next_ = 0;         ///< overwrite cursor once full
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace bng::obs
