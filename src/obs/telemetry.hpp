// Runtime sweep/fleet telemetry: what the dispatcher knows about a sweep
// while it runs, aggregated from the record sink, the journal writer, and
// (for the TCP fleet) per-worker liveness and the compact stats frame each
// worker piggybacks on its 'B' heartbeats.
//
// One SweepTelemetry instance is shared by the sweep engine, the executor,
// and the `--progress` render thread, so every accessor takes the internal
// mutex — these are control-plane paths (one update per record/heartbeat),
// never the sim hot path. `--stats-json` serializes the final state.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bng::obs {

/// The stats frame a worker piggybacks on each heartbeat ('B' frames carry
/// it after the kind byte; an empty payload — pre-telemetry workers — is
/// still a valid heartbeat).
struct WorkerStatsFrame {
  std::uint32_t jobs_done = 0;      ///< records computed this session
  std::uint32_t pool_rebuilds = 0;  ///< shared-workload pools built
  std::uint64_t busy_ms = 0;        ///< wall time spent inside run_job
};

/// Dispatcher-side view of one remote worker.
struct WorkerTelemetry {
  std::string endpoint;
  bool alive = false;
  bool abandoned = false;          ///< reconnect budget exhausted
  std::uint64_t records = 0;       ///< records this dispatcher accepted from it
  std::uint32_t inflight = 0;      ///< jobs currently assigned (0 or 1)
  std::uint32_t reconnects = 0;    ///< reconnect attempts, lifetime total
  std::uint32_t speculation_wins = 0;  ///< speculative copies that won the race
  std::uint64_t heartbeats = 0;    ///< 'B' frames received
  /// Longest observed silence between frames from this worker, ms. The
  /// heartbeats are one-way, so a true RTT does not exist at the dispatcher;
  /// the max inter-frame gap is the honest liveness figure.
  std::uint64_t max_silence_ms = 0;
  WorkerStatsFrame reported;       ///< latest piggybacked stats frame
};

class SweepTelemetry {
 public:
  // --- Sweep-level progress (all executors) --------------------------------
  void start(std::size_t total_jobs, std::size_t prefilled);
  void on_record_delivered();
  /// Simulation events a finished job executed (EventQueue::events_executed).
  /// Reported by the in-process thread executor; process/fleet workers run
  /// their experiments in other address spaces and report 0.
  void add_events(std::uint64_t n);

  /// Peak resident set of THIS process so far, bytes (getrusage ru_maxrss);
  /// 0 where unsupported. Free function so callers outside a sweep (the
  /// runner's final report) can use it too.
  static std::uint64_t peak_rss_bytes();

  // --- Journal fsync lag ----------------------------------------------------
  void journal_stats(std::uint64_t fsyncs, double total_ms, double max_ms);

  // --- Fleet worker table (TcpFleetExecutor) --------------------------------
  /// Size the worker table; called once before dispatch.
  void init_workers(const std::vector<std::string>& endpoints);
  /// Overwrite one worker's row (the fleet executor owns the truth and
  /// pushes snapshots on every state change).
  void update_worker(std::size_t index, const WorkerTelemetry& w);

  // --- Consumers ------------------------------------------------------------
  /// One parseable line for `--progress`:
  ///   [progress] records=3/8 events_per_sec=1.2e+06 rss_peak_mb=410.2
  ///   workers_alive=2/2 reconnects=0 spec_wins=0
  /// (events_per_sec appears once any job reported its executed-event count;
  /// the workers fields are omitted when no fleet is attached).
  [[nodiscard]] std::string progress_line() const;

  /// End-of-sweep JSON report for `--stats-json`.
  [[nodiscard]] std::string to_json(const std::string& scenario, double wall_s) const;

  [[nodiscard]] std::size_t records_done() const;
  [[nodiscard]] std::size_t total_jobs() const;
  [[nodiscard]] std::vector<WorkerTelemetry> workers() const;

 private:
  mutable std::mutex mu_;
  std::size_t total_jobs_ = 0;
  std::size_t prefilled_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t events_total_ = 0;
  std::chrono::steady_clock::time_point started_{};
  std::uint64_t journal_fsyncs_ = 0;
  double journal_fsync_total_ms_ = 0;
  double journal_fsync_max_ms_ = 0;
  bool has_journal_ = false;
  std::vector<WorkerTelemetry> workers_;
};

}  // namespace bng::obs
