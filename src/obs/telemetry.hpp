// Runtime sweep/fleet telemetry: what the dispatcher knows about a sweep
// while it runs, aggregated from the record sink, the journal writer, and
// (for the TCP fleet) per-worker liveness and the compact stats frame each
// worker piggybacks on its 'B' heartbeats.
//
// One SweepTelemetry instance is shared by the sweep engine, the executor,
// and the `--progress` render thread, so every accessor takes the internal
// mutex — these are control-plane paths (one update per record/heartbeat),
// never the sim hot path. `--stats-json` serializes the final state.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bng::obs {

/// The stats frame a worker piggybacks on each heartbeat ('B' frames carry
/// it after the kind byte; an empty payload — pre-telemetry workers — is
/// still a valid heartbeat).
struct WorkerStatsFrame {
  std::uint32_t jobs_done = 0;      ///< records computed this session
  std::uint32_t pool_rebuilds = 0;  ///< shared-workload pools built
  std::uint64_t busy_ms = 0;        ///< wall time spent inside run_job
  // Record-cache counters (runner/cache.hpp); all zero when the worker runs
  // without --cache. Appended after busy_ms on the wire — a frame that ends
  // at busy_ms (pre-cache workers) still parses, with these left at zero.
  std::uint32_t cache_hits = 0;
  std::uint32_t cache_misses = 0;
  std::uint32_t cache_stale = 0;
  std::uint32_t cache_stores = 0;
};

/// End-of-run summary a parallel-in-time engine (sim/parallel_engine.hpp)
/// reports for one sharded experiment. Busy/stall time flows in separately
/// through add_parallel_delta so --progress shows efficiency live.
struct ParallelFrame {
  std::uint32_t shards = 0;
  std::uint64_t windows = 0;        ///< safe windows (== barriers) executed
  std::uint64_t lane_messages = 0;  ///< cross-shard deliveries merged
  std::uint64_t arena_local_bytes = 0;  ///< bytes first-touched on shard threads
  double window_min_s = 0;
  double window_avg_s = 0;
  double wall_ms = 0;           ///< engine wall time
  std::uint64_t events = 0;     ///< events executed across the run's shards
};

/// Dispatcher-side view of one remote worker.
struct WorkerTelemetry {
  std::string endpoint;
  bool alive = false;
  bool abandoned = false;          ///< reconnect budget exhausted
  std::uint64_t records = 0;       ///< records this dispatcher accepted from it
  std::uint32_t inflight = 0;      ///< jobs currently assigned (0 or 1)
  std::uint32_t reconnects = 0;    ///< reconnect attempts, lifetime total
  std::uint32_t speculation_wins = 0;  ///< speculative copies that won the race
  std::uint64_t heartbeats = 0;    ///< 'B' frames received
  /// Longest observed silence between frames from this worker, ms. The
  /// heartbeats are one-way, so a true RTT does not exist at the dispatcher;
  /// the max inter-frame gap is the honest liveness figure.
  std::uint64_t max_silence_ms = 0;
  WorkerStatsFrame reported;       ///< latest piggybacked stats frame
};

class SweepTelemetry {
 public:
  // --- Sweep-level progress (all executors) --------------------------------
  void start(std::size_t total_jobs, std::size_t prefilled);
  void on_record_delivered();
  /// Simulation events a finished job executed (EventQueue::events_executed).
  /// Reported by the in-process thread executor; process/fleet workers run
  /// their experiments in other address spaces and report 0.
  void add_events(std::uint64_t n);

  /// Peak resident set of THIS process so far, bytes (getrusage ru_maxrss);
  /// 0 where unsupported. Free function so callers outside a sweep (the
  /// runner's final report) can use it too.
  static std::uint64_t peak_rss_bytes();

  // --- Journal fsync lag ----------------------------------------------------
  void journal_stats(std::uint64_t fsyncs, double total_ms, double max_ms);

  // --- Record cache (runner/cache.hpp) --------------------------------------
  /// Final cache counters for the sweep: the dispatcher's own cache plus the
  /// sum of every fleet worker's self-reported counters. Adds a "cache"
  /// section to the stats JSON.
  void cache_stats(std::uint64_t hits, std::uint64_t misses, std::uint64_t stale,
                   std::uint64_t stores);

  // --- Adaptive frontier driver (runner/adaptive.hpp) -----------------------
  /// Dispatch accounting for an adaptive sweep: how many points/jobs the
  /// dense grid holds vs how many were actually evaluated/dispatched. Adds
  /// an "adaptive" section to the stats JSON (CI asserts the reduction).
  void adaptive_stats(std::size_t dense_points, std::size_t dense_jobs,
                      std::size_t evaluated_points, std::size_t jobs_dispatched);

  // --- Parallel-in-time engine (sharded single runs) ------------------------
  /// Incremental shard busy/stall wall time, ms. Engines flush every few
  /// dozen barriers while running, so progress_line's par_eff figure is
  /// live; the deltas sum to the final totals (no double counting).
  void add_parallel_delta(double busy_ms, double stall_ms);
  /// One finished sharded run's summary.
  void add_parallel_run(const ParallelFrame& frame);

  // --- Fleet worker table (TcpFleetExecutor) --------------------------------
  /// Size the worker table; called once before dispatch.
  void init_workers(const std::vector<std::string>& endpoints);
  /// Overwrite one worker's row (the fleet executor owns the truth and
  /// pushes snapshots on every state change).
  void update_worker(std::size_t index, const WorkerTelemetry& w);

  // --- Consumers ------------------------------------------------------------
  /// One parseable line for `--progress`:
  ///   [progress] records=3/8 events_per_sec=1.2e+06 rss_peak_mb=410.2
  ///   workers_alive=2/2 reconnects=0 spec_wins=0
  /// (events_per_sec appears once any job reported its executed-event count;
  /// the workers fields are omitted when no fleet is attached).
  [[nodiscard]] std::string progress_line() const;

  /// End-of-sweep JSON report for `--stats-json`.
  [[nodiscard]] std::string to_json(const std::string& scenario, double wall_s) const;

  [[nodiscard]] std::size_t records_done() const;
  [[nodiscard]] std::size_t total_jobs() const;
  [[nodiscard]] std::vector<WorkerTelemetry> workers() const;

 private:
  mutable std::mutex mu_;
  std::size_t total_jobs_ = 0;
  std::size_t prefilled_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t events_total_ = 0;
  std::chrono::steady_clock::time_point started_{};
  std::uint64_t journal_fsyncs_ = 0;
  double journal_fsync_total_ms_ = 0;
  double journal_fsync_max_ms_ = 0;
  bool has_journal_ = false;
  bool has_cache_ = false;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_stale_ = 0;
  std::uint64_t cache_stores_ = 0;
  bool has_adaptive_ = false;
  std::size_t adaptive_dense_points_ = 0;
  std::size_t adaptive_dense_jobs_ = 0;
  std::size_t adaptive_evaluated_points_ = 0;
  std::size_t adaptive_jobs_dispatched_ = 0;
  std::vector<WorkerTelemetry> workers_;

  // Parallel-engine aggregates (across every sharded run of the sweep).
  bool has_parallel_ = false;
  double par_busy_ms_ = 0;
  double par_stall_ms_ = 0;
  std::uint32_t par_shards_max_ = 0;
  std::uint64_t par_runs_ = 0;
  std::uint64_t par_windows_ = 0;
  std::uint64_t par_lane_messages_ = 0;
  std::uint64_t par_arena_bytes_ = 0;
  double par_window_min_s_ = 0;
  double par_window_sum_s_ = 0;   ///< Σ avg*windows — weighted mean source
  double par_shard_seconds_ = 0;  ///< Σ wall_s * shards — per-shard rate base
  std::uint64_t par_events_ = 0;
};

}  // namespace bng::obs
