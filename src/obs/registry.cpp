#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>

namespace bng::obs {

const char* unit_name(Unit u) {
  switch (u) {
    case Unit::kNone:
      return "";
    case Unit::kSeconds:
      return "s";
    case Unit::kCount:
      return "count";
    case Unit::kBytes:
      return "bytes";
  }
  return "";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("obs: histogram needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("obs: histogram bounds must be ascending");
  counts_.assign(bounds_.size(), 0);
}

void Histogram::observe(double v) {
  ++count_;
  sum_ += v;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      ++counts_[i];
      return;
    }
  }
  ++overflow_;
}

const Registry::Entry* Registry::find(const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

Registry::Entry& Registry::add(std::string name, Unit unit, std::string description,
                               Kind kind, std::size_t slot) {
  entries_.push_back(Entry{std::move(name), std::move(description), unit, kind, slot});
  return entries_.back();
}

Counter& Registry::counter(std::string name, Unit unit, std::string description) {
  if (const Entry* e = find(name)) {
    if (e->kind != Kind::kCounter)
      throw std::invalid_argument("obs: '" + name + "' already registered as a non-counter");
    return *counters_[e->slot];
  }
  counters_.push_back(std::make_unique<Counter>());
  add(std::move(name), unit, std::move(description), Kind::kCounter,
      counters_.size() - 1);
  return *counters_.back();
}

Gauge& Registry::gauge(std::string name, Unit unit, std::string description) {
  if (const Entry* e = find(name)) {
    if (e->kind != Kind::kGauge)
      throw std::invalid_argument("obs: '" + name + "' already registered as a non-gauge");
    return *gauges_[e->slot];
  }
  gauges_.push_back(std::make_unique<Gauge>());
  add(std::move(name), unit, std::move(description), Kind::kGauge, gauges_.size() - 1);
  return *gauges_.back();
}

Histogram& Registry::histogram(std::string name, std::vector<double> bounds, Unit unit,
                               std::string description) {
  if (const Entry* e = find(name)) {
    if (e->kind != Kind::kHistogram)
      throw std::invalid_argument("obs: '" + name +
                                  "' already registered as a non-histogram");
    return *histograms_[e->slot];
  }
  histograms_.push_back(std::make_unique<Histogram>(std::move(bounds)));
  add(std::move(name), unit, std::move(description), Kind::kHistogram,
      histograms_.size() - 1);
  return *histograms_.back();
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.emplace_back(e.name, static_cast<double>(counters_[e.slot]->value()));
        break;
      case Kind::kGauge:
        out.emplace_back(e.name, gauges_[e.slot]->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *histograms_[e.slot];
        out.emplace_back(e.name + "_count", static_cast<double>(h.count()));
        out.emplace_back(e.name + "_sum", h.sum());
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          char bound[32];
          std::snprintf(bound, sizeof bound, "%g", h.bounds()[i]);
          out.emplace_back(e.name + "_le_" + bound, static_cast<double>(cumulative));
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace bng::obs
