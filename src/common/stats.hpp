// Small statistics toolkit used by the metrics suite and bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace bng {

/// Linear-interpolated percentile. `p` in [0,100]. Empty input -> 0.
/// Input does not need to be sorted.
double percentile(std::vector<double> samples, double p);

double mean(std::span<const double> samples);
double stddev(std::span<const double> samples);

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fit y = c * exp(k * x) by linear regression on log(y) (y must be > 0).
/// Returns {log(c), k, r2-in-log-space} in LinearFit fields.
LinearFit exponential_fit(std::span<const double> x, std::span<const double> y);

/// Compact five-number-style summary for report printing.
struct Summary {
  std::size_t n = 0;
  double min = 0, p25 = 0, p50 = 0, p75 = 0, p90 = 0, max = 0, mean = 0;
};
Summary summarize(std::vector<double> samples);

std::string format_summary(const Summary& s);

}  // namespace bng
