// Block-identity interning: Hash256 -> dense u32 BlockId, assigned once per
// experiment at first sight.
//
// Every layer that used to key hot structures by the full 32-byte hash
// (BlockTree indices, known/requested gossip sets, orphan buffers, metrics
// bookkeeping) keys them by BlockId instead: one shared hash-map lookup when
// a block first appears anywhere in the deployment, O(1) dense-array access
// everywhere after. This mirrors how production relay paths evolved (compact
// block relay replaces repeated full-hash lookups with short ids on the hot
// path); here the interner is simulation-wide, so an id is meaningful across
// nodes and wire messages can carry it directly. The simulated wire format
// is unchanged — inv/getdata still *cost* 36 bytes — only the host-side
// representation shrinks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bng {

/// Dense per-experiment block identity. Assigned in first-sight order by the
/// experiment's BlockInterner; valid only within that experiment.
using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlockId = UINT32_MAX;

class BlockInterner {
 public:
  /// Id for `h`, assigning the next dense id at first sight.
  BlockId intern(const Hash256& h) {
    if (concurrent_) {
      {
        std::shared_lock lock(mu_);
        auto it = ids_.find(h);
        if (it != ids_.end()) return it->second;
      }
      std::unique_lock lock(mu_);
      auto [it, inserted] = ids_.try_emplace(h, static_cast<BlockId>(hashes_.size()));
      if (inserted) hashes_.push_back(h);
      return it->second;
    }
    auto [it, inserted] = ids_.try_emplace(h, static_cast<BlockId>(hashes_.size()));
    if (inserted) hashes_.push_back(h);
    return it->second;
  }

  /// Id for `h` if already interned; kNoBlockId otherwise.
  [[nodiscard]] BlockId lookup(const Hash256& h) const {
    if (concurrent_) {
      std::shared_lock lock(mu_);
      auto it = ids_.find(h);
      return it == ids_.end() ? kNoBlockId : it->second;
    }
    auto it = ids_.find(h);
    return it == ids_.end() ? kNoBlockId : it->second;
  }

  [[nodiscard]] const Hash256& hash_of(BlockId id) const {
    if (concurrent_) {
      std::shared_lock lock(mu_);
      if (id >= hashes_.size()) throw std::out_of_range("BlockInterner: bad id");
      return hashes_[id];
    }
    if (id >= hashes_.size()) throw std::out_of_range("BlockInterner: bad id");
    return hashes_[id];
  }

  /// Number of ids assigned so far; ids are dense in [0, size()).
  [[nodiscard]] std::size_t size() const {
    if (concurrent_) {
      std::shared_lock lock(mu_);
      return hashes_.size();
    }
    return hashes_.size();
  }

  /// Switch to internally synchronized operation (shared_mutex). The serial
  /// engine never calls this, so the single-threaded fast path stays
  /// lock-free; the parallel engine enables it before shard threads start.
  /// Note: interned id VALUES depend on first-sight order and may differ
  /// across shard counts — nothing that reaches records or digests consumes
  /// the numeric value, only the hash it maps back to.
  void enable_concurrent() { concurrent_ = true; }

 private:
  std::unordered_map<Hash256, BlockId, Hash256Hasher> ids_;
  /// deque, not vector: hash_of() hands out references that must survive
  /// concurrent intern() growth once enable_concurrent() has been called.
  std::deque<Hash256> hashes_;
  mutable std::shared_mutex mu_;
  bool concurrent_ = false;
};

/// Flat membership set over interned ids: an epoch-stamped array, so
/// insert/contains/erase are single array accesses and clear() is O(1) (bump
/// the epoch). Replaces the per-node unordered_set<Hash256> churn on the
/// inv/getdata hot path.
class FlatIdSet {
 public:
  [[nodiscard]] bool contains(BlockId id) const {
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  void insert(BlockId id) {
    if (id >= stamps_.size()) grow(id);
    stamps_[id] = epoch_;
  }

  void erase(BlockId id) {
    if (id < stamps_.size() && stamps_[id] == epoch_) stamps_[id] = 0;
  }

  /// Drop all members without touching the array (epoch bump). Stamp 0 is
  /// reserved as "never a member", so the epoch skips it on wrap.
  void clear() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

 private:
  void grow(BlockId id) {
    std::size_t n = std::max<std::size_t>(stamps_.size() * 2, 64);
    stamps_.resize(std::max<std::size_t>(n, static_cast<std::size_t>(id) + 1), 0u);
  }

  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 1;
};

}  // namespace bng
