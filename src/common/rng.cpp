#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace bng {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& limb : state_) limb = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() {
  // 53 random bits -> [0,1) double.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double mean) {
  assert(mean > 0);
  // Inverse CDF; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mu + sigma * z;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the original seed with the stream id through splitmix.
  std::uint64_t s = seed_ ^ (0x5851f42d4c957f2dull * (stream + 1));
  std::uint64_t mixed = splitmix64(s);
  return Rng(mixed);
}

}  // namespace bng
