// Byte-oriented serialization (little-endian, Bitcoin convention).
//
// Used to serialize block headers and transactions for hashing, and to
// compute realistic wire sizes. Header-only.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bng {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Bitcoin CompactSize encoding.
  void varint(std::uint64_t v) {
    if (v < 0xfd) {
      u8(static_cast<std::uint8_t>(v));
    } else if (v <= 0xffff) {
      u8(0xfd);
      u16(static_cast<std::uint16_t>(v));
    } else if (v <= 0xffffffff) {
      u8(0xfe);
      u32(static_cast<std::uint32_t>(v));
    } else {
      u8(0xff);
      u64(v);
    }
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    auto b = take(2);
    return static_cast<std::uint16_t>(b[0] | b[1] << 8);
  }

  std::uint32_t u32() {
    auto b = take(4);
    return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
  }

  std::uint64_t u64() {
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t varint() {
    std::uint8_t tag = u8();
    if (tag < 0xfd) return tag;
    if (tag == 0xfd) return u16();
    if (tag == 0xfe) return u32();
    return u64();
  }

  std::span<const std::uint8_t> take(std::size_t n) {
    if (pos_ + n > data_.size()) throw std::out_of_range("ByteReader: read past end");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace bng
