// Fundamental value types shared by every subsystem.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace bng {

/// 256-bit hash value (e.g. double-SHA-256 block ids). Stored big-endian,
/// i.e. bytes[0] is the most significant byte, matching usual hex display.
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Hash256&) const = default;

  [[nodiscard]] bool is_zero() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  /// Lowercase hex, 64 chars.
  [[nodiscard]] std::string to_hex() const;
  static Hash256 from_hex(const std::string& hex);
};

/// Word-wise multiply-xor mix. The old byte-wise FNV-1a walked all 32 bytes
/// per lookup, which showed up on the message-path profile (known/requested/
/// orphan sets); four 64-bit steps give the same dispersion at a fraction of
/// the cost.
struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const noexcept {
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 4; ++i) {
      std::uint64_t w;
      std::memcpy(&w, h.bytes.data() + 8 * i, 8);
      x = (x ^ w) * 0xff51afd7ed558ccdull;
    }
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Index of a node in the simulated network.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = UINT32_MAX;

/// Simulation time in seconds. Double precision gives sub-microsecond
/// resolution over multi-day simulated horizons, which is ample.
using Seconds = double;

/// Monetary amount in base units ("satoshi"). 1 coin = 100'000'000 units.
using Amount = std::int64_t;
inline constexpr Amount kCoin = 100'000'000;

}  // namespace bng
