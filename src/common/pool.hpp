// Pooled shared_ptr construction for high-churn simulation objects.
//
// Block gossip fan-out creates and drops millions of small wire messages per
// run; make_shared pays one malloc/free per message (object + control block
// combined, but still a heap round-trip). make_pooled routes the combined
// allocation through a per-size freelist so steady-state message churn does
// no heap allocation at all.
//
// Single-threaded by design, like the rest of the simulation core: the
// freelists are unsynchronized thread-locals. Memory is bounded by the peak
// number of simultaneously live objects per size class and is reclaimed at
// thread exit (the sweep engine spawns workers per run_sweep call, so
// freelists must not outlive their thread) or process exit.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace bng {

namespace detail {

/// One freelist per (size, alignment) class. Blocks are recycled raw memory
/// large enough for allocate_shared's combined object + control block node.
/// thread_local so a future thread-per-seed sweep driver gets one pool per
/// thread instead of a data race (each simulation is single-threaded, so
/// blocks never migrate between threads).
template <std::size_t Size, std::size_t Align>
struct FreeList {
  union Node {
    Node* next;
    alignas(Align) unsigned char storage[Size];
  };

  /// The list head, wrapped so thread exit frees the chain: sweep worker
  /// threads are joined after every run_sweep call, and a trivially
  /// destructible thread_local would strand their recycled blocks. The
  /// non-trivial destructor costs one initialization-guard branch per
  /// access — predictable and cheap next to the freed malloc round-trip.
  struct Chain {
    Node* head = nullptr;
    ~Chain() {
      while (head != nullptr) {
        Node* n = head;
        head = n->next;
        ::operator delete(n, std::align_val_t{alignof(Node)});
      }
    }
  };
  static inline thread_local Chain chain_;

  static void* pop() {
    Node* n = chain_.head;
    if (n == nullptr) return nullptr;
    chain_.head = n->next;
    return n;
  }

  static void push(void* p) {
    Node* n = static_cast<Node*>(p);
    n->next = chain_.head;
    chain_.head = n;
  }

  static void* allocate() {
    if (void* p = pop()) return p;
    return ::operator new(sizeof(Node), std::align_val_t{alignof(Node)});
  }
};

}  // namespace detail

/// Minimal allocator backing make_pooled. Only single-object allocations are
/// pooled (the allocate_shared pattern); anything else falls through to the
/// global heap.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (n == 1)
      return static_cast<T*>(detail::FreeList<sizeof(T), alignof(T)>::allocate());
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      detail::FreeList<sizeof(T), alignof(T)>::push(p);
      return;
    }
    ::operator delete(p, std::align_val_t{alignof(T)});
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
};

/// Drop-in replacement for std::make_shared backed by the freelist pool.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{}, std::forward<Args>(args)...);
}

}  // namespace bng
