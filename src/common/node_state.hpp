// Struct-of-arrays relayout of hot per-node protocol state.
//
// The BlockId interning (common/intern.hpp) makes per-node gossip state
// densely indexable by (node, id). Instead of every node owning its own
// epoch-stamped FlatIdSet — num_nodes separate allocations, each pulling its
// own cache lines — one experiment-wide arena holds all of them as planes of
// big flat stamp arrays laid out [plane][node][id]. A 10k–50k-node deployment
// touches a few big flat arrays instead of 2×N small ones, the per-node CPU
// cursor rides in a dense plane, and growth (a new block id past capacity)
// is one amortized relayout per slice, not per node.
//
// Sharding: the arena is split into SLICES over contiguous node-id ranges
// (one per parallel-engine shard; exactly one covering everything in the
// serial engine). Each slice owns its own stamp/epoch arrays and grows
// independently, so shard threads never contend on — or relayout under —
// each other's state, and because stamp pages are allocated lazily on first
// insert they are first-touched by the thread that runs the shard (NUMA
// locality for free; prefault_slice() lets the engine force the touch at
// thread start and report it).
//
// Semantics are FlatIdSet's exactly: epoch-stamped membership, O(1)
// insert/contains/erase, clear() by epoch bump with stamp 0 reserved as
// "never a member". The relayout is pure data layout — no observable
// behavior (and no digest) changes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/intern.hpp"
#include "common/types.hpp"

namespace bng {

class NodeStateArena {
 public:
  enum Plane : std::uint32_t {
    kKnown = 0,      ///< seen bodies (by interned id)
    kRequested = 1,  ///< outstanding getdata (by interned id)
  };
  static constexpr std::uint32_t kPlanes = 2;

  /// One shard's worth of stamp planes over a contiguous node range.
  /// Stable address for the lifetime of the arena partition (views cache a
  /// pointer); only the stamp vector inside reallocates on growth.
  class Slice {
   public:
    [[nodiscard]] std::uint32_t row(Plane p, NodeId node) const {
      return static_cast<std::uint32_t>(p) * nodes_ + (node - begin_);
    }

    [[nodiscard]] bool contains(std::uint32_t row, BlockId id) const {
      return id < cap_ &&
             stamps_[static_cast<std::size_t>(row) * cap_ + id] == epochs_[row];
    }

    void insert(std::uint32_t row, BlockId id) {
      if (id >= cap_) grow(id);
      stamps_[static_cast<std::size_t>(row) * cap_ + id] = epochs_[row];
    }

    void erase(std::uint32_t row, BlockId id) {
      if (id < cap_) {
        auto& s = stamps_[static_cast<std::size_t>(row) * cap_ + id];
        if (s == epochs_[row]) s = 0;
      }
    }

    /// Drop all of one row's members without touching the array (epoch bump).
    void clear(std::uint32_t row) {
      if (++epochs_[row] == 0) {
        std::fill(stamps_.begin() + static_cast<std::ptrdiff_t>(row) * cap_,
                  stamps_.begin() + (static_cast<std::ptrdiff_t>(row) + 1) * cap_,
                  0u);
        epochs_[row] = 1;
      }
    }

    [[nodiscard]] std::uint32_t node_begin() const { return begin_; }
    [[nodiscard]] std::uint32_t num_nodes() const { return nodes_; }
    [[nodiscard]] std::uint32_t capacity() const { return cap_; }

   private:
    friend class NodeStateArena;

    void init(std::uint32_t begin, std::uint32_t nodes) {
      begin_ = begin;
      nodes_ = nodes;
      cap_ = 0;
      stamps_.clear();
      epochs_.assign(static_cast<std::size_t>(kPlanes) * nodes, 1);
    }

    void grow(BlockId id) {
      std::uint32_t cap = std::max(cap_ * 2, 64u);
      cap = std::max(cap, id + 1);
      std::vector<std::uint32_t> next(
          static_cast<std::size_t>(kPlanes) * nodes_ * cap, 0u);
      const std::size_t rows = static_cast<std::size_t>(kPlanes) * nodes_;
      for (std::size_t r = 0; r < rows; ++r) {
        std::copy(stamps_.begin() + static_cast<std::ptrdiff_t>(r * cap_),
                  stamps_.begin() + static_cast<std::ptrdiff_t>(r * cap_ + cap_),
                  next.begin() + static_cast<std::ptrdiff_t>(r * cap));
      }
      stamps_ = std::move(next);
      cap_ = cap;
    }

    std::uint32_t begin_ = 0;  ///< first node id this slice owns
    std::uint32_t nodes_ = 0;
    std::uint32_t cap_ = 0;
    std::vector<std::uint32_t> stamps_;  ///< [plane][local node][id], stride cap_
    std::vector<std::uint32_t> epochs_;  ///< per (plane, local node) row
  };

  explicit NodeStateArena(std::uint32_t num_nodes)
      : nodes_(num_nodes), slices_(1), cpu_busy_(num_nodes, 0) {
    slices_[0].init(0, num_nodes);
    shard_of_.assign(num_nodes, 0);
  }

  [[nodiscard]] std::uint32_t num_nodes() const { return nodes_; }

  /// Repartition into one slice per shard. `shard_of[node]` must be
  /// non-decreasing (shards own contiguous node-id ranges). Discards all
  /// state; must run before any ArenaIdSet view is constructed (views cache
  /// their slice pointer).
  void set_shards(const std::vector<std::uint32_t>& shard_of) {
    if (shard_of.size() != nodes_)
      throw std::invalid_argument("NodeStateArena::set_shards: size mismatch");
    std::uint32_t num_shards = 1;
    for (std::size_t i = 1; i < shard_of.size(); ++i) {
      if (shard_of[i] < shard_of[i - 1])
        throw std::invalid_argument(
            "NodeStateArena::set_shards: shard ids must be non-decreasing");
    }
    if (!shard_of.empty()) num_shards = shard_of.back() + 1;
    shard_of_ = shard_of;
    slices_.assign(num_shards, Slice{});
    std::uint32_t begin = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      std::uint32_t end = begin;
      while (end < nodes_ && shard_of_[end] == s) ++end;
      slices_[s].init(begin, end - begin);
      begin = end;
    }
  }

  [[nodiscard]] std::uint32_t num_slices() const {
    return static_cast<std::uint32_t>(slices_.size());
  }

  [[nodiscard]] Slice& slice_of(NodeId node) { return slices_[shard_of_[node]]; }
  [[nodiscard]] Slice& slice(std::uint32_t shard) { return slices_[shard]; }

  /// Force shard `shard`'s stamp pages into existence on the calling thread
  /// (the parallel engine calls this from the shard's own thread at startup,
  /// so a first-touch NUMA policy places them locally). Returns the number
  /// of bytes touched.
  /// Pre: no slice row has been inserted into or cleared yet (the engine
  /// calls this from each shard thread before the first event executes).
  std::size_t prefault_slice(std::uint32_t shard, BlockId expected_ids = 64) {
    Slice& s = slices_[shard];
    if (s.nodes_ == 0) return 0;
    // Reallocate the epoch rows on this thread (all rows are still at epoch
    // 1), then grow the stamp planes — the zero-initializing allocations ARE
    // the first touch, so a first-touch NUMA policy places both locally.
    std::vector<std::uint32_t> fresh(static_cast<std::size_t>(kPlanes) * s.nodes_,
                                     1u);
    s.epochs_.swap(fresh);
    if (s.cap_ < expected_ids) s.grow(expected_ids);
    return (s.stamps_.size() + s.epochs_.size()) * sizeof(std::uint32_t);
  }

  /// Per-node CPU cursor (protocol verification pipeline). Global plane:
  /// written only by the shard owning `node` (contiguous ranges, so false
  /// sharing is confined to the two boundary cache lines per shard pair).
  [[nodiscard]] Seconds& cpu_busy(NodeId node) { return cpu_busy_[node]; }

 private:
  std::uint32_t nodes_;
  std::vector<Slice> slices_;            ///< never resized after set_shards
  std::vector<std::uint32_t> shard_of_;  ///< node -> slice index
  std::vector<Seconds> cpu_busy_;        ///< per node
};

/// FlatIdSet-shaped view over one arena row, so call sites keep reading
/// `known_.contains(id)` — the relayout is invisible above this line. The
/// view binds directly to its node's slice, so shard threads touch only
/// their own slice's arrays.
class ArenaIdSet {
 public:
  ArenaIdSet(NodeStateArena& arena, NodeStateArena::Plane plane, NodeId node)
      : slice_(&arena.slice_of(node)), row_(slice_->row(plane, node)) {}

  [[nodiscard]] bool contains(BlockId id) const { return slice_->contains(row_, id); }
  void insert(BlockId id) { slice_->insert(row_, id); }
  void erase(BlockId id) { slice_->erase(row_, id); }
  void clear() { slice_->clear(row_); }

 private:
  NodeStateArena::Slice* slice_;
  std::uint32_t row_;
};

}  // namespace bng
