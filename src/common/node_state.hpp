// Struct-of-arrays relayout of hot per-node protocol state.
//
// The BlockId interning (common/intern.hpp) makes per-node gossip state
// densely indexable by (node, id). Instead of every node owning its own
// epoch-stamped FlatIdSet — num_nodes separate allocations, each pulling its
// own cache lines — one experiment-wide arena holds all of them as planes of
// a single stamp array laid out [plane][node][id]. A 10k–50k-node deployment
// touches two big flat arrays instead of 2×N small ones, the per-node CPU
// cursor rides in a third dense plane, and growth (a new block id past
// capacity) is one amortized relayout for the whole fleet.
//
// Semantics are FlatIdSet's exactly: epoch-stamped membership, O(1)
// insert/contains/erase, clear() by epoch bump with stamp 0 reserved as
// "never a member". The swap is pure data layout — no observable behavior
// (and no digest) changes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/intern.hpp"
#include "common/types.hpp"

namespace bng {

class NodeStateArena {
 public:
  enum Plane : std::uint32_t {
    kKnown = 0,      ///< seen bodies (by interned id)
    kRequested = 1,  ///< outstanding getdata (by interned id)
  };
  static constexpr std::uint32_t kPlanes = 2;

  explicit NodeStateArena(std::uint32_t num_nodes)
      : nodes_(num_nodes),
        epochs_(static_cast<std::size_t>(kPlanes) * num_nodes, 1),
        cpu_busy_(num_nodes, 0) {}

  [[nodiscard]] std::uint32_t num_nodes() const { return nodes_; }
  [[nodiscard]] std::uint32_t capacity() const { return cap_; }

  /// Row handle for (plane, node) — precompute once per view.
  [[nodiscard]] std::uint32_t row(Plane p, NodeId node) const {
    return static_cast<std::uint32_t>(p) * nodes_ + node;
  }

  [[nodiscard]] bool contains(std::uint32_t row, BlockId id) const {
    return id < cap_ &&
           stamps_[static_cast<std::size_t>(row) * cap_ + id] == epochs_[row];
  }

  void insert(std::uint32_t row, BlockId id) {
    if (id >= cap_) grow(id);
    stamps_[static_cast<std::size_t>(row) * cap_ + id] = epochs_[row];
  }

  void erase(std::uint32_t row, BlockId id) {
    if (id < cap_) {
      auto& s = stamps_[static_cast<std::size_t>(row) * cap_ + id];
      if (s == epochs_[row]) s = 0;
    }
  }

  /// Drop all of one row's members without touching the array (epoch bump).
  void clear(std::uint32_t row) {
    if (++epochs_[row] == 0) {
      std::fill(stamps_.begin() + static_cast<std::ptrdiff_t>(row) * cap_,
                stamps_.begin() + (static_cast<std::ptrdiff_t>(row) + 1) * cap_, 0u);
      epochs_[row] = 1;
    }
  }

  /// Per-node CPU cursor (protocol verification pipeline).
  [[nodiscard]] Seconds& cpu_busy(NodeId node) { return cpu_busy_[node]; }

 private:
  void grow(BlockId id) {
    std::uint32_t cap = std::max(cap_ * 2, 64u);
    cap = std::max(cap, id + 1);
    std::vector<std::uint32_t> next(
        static_cast<std::size_t>(kPlanes) * nodes_ * cap, 0u);
    const std::size_t rows = static_cast<std::size_t>(kPlanes) * nodes_;
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy(stamps_.begin() + static_cast<std::ptrdiff_t>(r * cap_),
                stamps_.begin() + static_cast<std::ptrdiff_t>(r * cap_ + cap_),
                next.begin() + static_cast<std::ptrdiff_t>(r * cap));
    }
    stamps_ = std::move(next);
    cap_ = cap;
  }

  std::uint32_t nodes_;
  std::uint32_t cap_ = 0;
  std::vector<std::uint32_t> stamps_;  ///< [plane][node][id], stride cap_
  std::vector<std::uint32_t> epochs_;  ///< per (plane, node) row
  std::vector<Seconds> cpu_busy_;      ///< per node
};

/// FlatIdSet-shaped view over one arena row, so call sites keep reading
/// `known_.contains(id)` — the relayout is invisible above this line.
class ArenaIdSet {
 public:
  ArenaIdSet(NodeStateArena& arena, NodeStateArena::Plane plane, NodeId node)
      : arena_(&arena), row_(arena.row(plane, node)) {}

  [[nodiscard]] bool contains(BlockId id) const { return arena_->contains(row_, id); }
  void insert(BlockId id) { arena_->insert(row_, id); }
  void erase(BlockId id) { arena_->erase(row_, id); }
  void clear() { arena_->clear(row_); }

 private:
  NodeStateArena* arena_;
  std::uint32_t row_;
};

}  // namespace bng
