// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that an experiment seed
// fully determines the run (topology, latencies, mining schedule, tie-breaks).
// The generator is xoshiro256**, seeded via splitmix64, which is both fast
// and of far higher quality than std::minstd / std::rand.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bng {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, bound). Precondition: bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed with the given mean (= 1/rate). mean > 0.
  double exponential(double mean);

  /// Standard normal via Box-Muller (no state caching; fine for our volumes).
  double normal(double mu, double sigma);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (stable: depends only on this
  /// generator's seed path and `stream`).
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;  // kept for fork()
};

}  // namespace bng
