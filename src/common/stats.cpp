#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bng {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double s = 0;
  for (double v : samples) s += v;
  return s / static_cast<double>(samples.size());
}

double stddev(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  double m = mean(samples);
  double s = 0;
  for (double v : samples) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(samples.size() - 1));
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit fit;
  auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;
  double mx = mean(x), my = mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  (void)n;
  if (sxx == 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit exponential_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> logy(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    assert(y[i] > 0);
    logy[i] = std::log(y[i]);
  }
  return linear_fit(x, logy);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.n = samples.size();
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = mean(samples);
  s.p25 = percentile(samples, 25);
  s.p50 = percentile(samples, 50);
  s.p75 = percentile(samples, 75);
  s.p90 = percentile(samples, 90);
  return s;
}

std::string format_summary(const Summary& s) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%zu min=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f max=%.3f mean=%.3f",
                s.n, s.min, s.p25, s.p50, s.p75, s.p90, s.max, s.mean);
  return buf;
}

}  // namespace bng
