// Small-buffer-optimized move-only callable, the event-queue callback type.
//
// The simulation schedules millions of callbacks per run, almost all of them
// lambdas capturing `this` plus a few ids or one shared_ptr (16-40 bytes).
// std::function heap-allocates for captures over ~16 bytes, which made every
// simulated message pay a malloc/free pair. SmallFn stores callables up to
// kInlineBytes inline and only falls back to the heap for oversized or
// throwing-move captures. Trivially copyable / destructible callables skip
// the indirect relocate / destroy calls entirely.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace bng {

class SmallFn {
 public:
  /// Sized so the common simulation lambdas (this + shared_ptr + two ids,
  /// or a whole std::function) fit without touching the heap.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
    construct(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroy the current callable and construct `f` directly in the buffer —
  /// the zero-move path for hot callers that build the callable in place.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void assign(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  void assign(SmallFn&& other) { *this = std::move(other); }

  void operator()() {
    // Fail fast like the std::function this replaces (bad_function_call),
    // instead of a null ops-table call in release builds.
    if (ops_ == nullptr) throw std::bad_function_call();
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-construct into `dst` from `src`, then destroy `src`. Null when a
    /// plain memcpy of the buffer suffices (trivially copyable callable).
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null when the callable is trivially destructible.
    void (*destroy)(void* obj) noexcept;
  };

  template <typename F>
  void construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineModel<Fn>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapModel<Fn>::ops;
    }
  }

  void relocate_from(SmallFn& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(buf_, other.buf_);
    } else {
      std::memcpy(buf_, other.buf_, kInlineBytes);
    }
  }

  template <typename Fn>
  struct InlineModel {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      static_cast<Fn*>(src)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{
        &invoke, std::is_trivially_copyable_v<Fn> ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct HeapModel {
    static void invoke(void* p) { (**static_cast<Fn**>(p))(); }
    static void destroy(void* p) noexcept { delete *static_cast<Fn**>(p); }
    // The buffer holds a plain pointer: relocation is always a memcpy.
    static constexpr Ops ops{&invoke, nullptr, &destroy};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace bng
