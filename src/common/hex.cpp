#include "common/hex.hpp"

#include <stdexcept>

#include "common/types.hpp"

namespace bng {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex character");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>(nibble(hex[2 * i]) << 4 | nibble(hex[2 * i + 1]));
  return out;
}

std::string Hash256::to_hex() const { return bng::to_hex(bytes); }

Hash256 Hash256::from_hex(const std::string& hex) {
  auto raw = bng::from_hex(hex);
  if (raw.size() != 32) throw std::invalid_argument("Hash256 needs 32 bytes");
  Hash256 h;
  std::copy(raw.begin(), raw.end(), h.bytes.begin());
  return h;
}

}  // namespace bng
