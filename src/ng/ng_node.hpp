// Bitcoin-NG protocol node (paper §4).
//
// Wins key blocks through the external mining scheduler; while its key block
// heads the main chain it is the leader and emits signed microblocks at the
// configured rate. Implements the 40/60 fee split (§4.4) and places poison
// transactions when it holds fraud evidence (§4.5).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "ng/poison.hpp"
#include "protocol/base_node.hpp"
#include "protocol/selfish_node.hpp"

namespace bng::ng {

class NgNode : public protocol::BaseNode {
 public:
  NgNode(NodeId id, net::Network& net, chain::BlockPtr genesis, protocol::NodeConfig cfg,
         Rng rng, protocol::IBlockObserver* observer);

  /// The mining scheduler decided this node found the next key block.
  void on_mining_win(double work) override;

  /// Identity used to sign this node's epochs.
  [[nodiscard]] const crypto::PublicKey& leader_pubkey() const { return leader_pk_; }
  [[nodiscard]] const Hash256& reward_address() const { return reward_address_; }

  /// Is this node currently the leader on its own view?
  [[nodiscard]] bool is_leader() const;

  [[nodiscard]] std::uint64_t key_blocks_mined() const { return key_blocks_mined_; }
  [[nodiscard]] std::uint64_t microblocks_generated() const { return microblocks_generated_; }
  [[nodiscard]] std::uint64_t poisons_placed() const { return poisons_placed_; }

  /// Testing/attack hook: create and broadcast a signed microblock extending
  /// an arbitrary parent — used to model an equivocating (fraudulent) leader.
  /// `salt` lands in the header nonce so two forgeries of the same parent at
  /// the same instant are still distinct blocks.
  chain::BlockPtr forge_microblock(const Hash256& parent_id, std::uint64_t salt = 0);

 protected:
  void handle_block(const chain::BlockPtr& block, BlockId id, NodeId from) override;

  // Microblock production, overridable by adversarial leaders
  // (ng::MaliciousLeader equivocates / withholds from inside the tick).
  void schedule_microblock_tick();
  virtual void microblock_tick();
  [[nodiscard]] chain::BlockPtr build_microblock(std::uint32_t tip, std::uint64_t salt = 0);
  void sign_header(chain::BlockHeader& header) const;

  /// Interned id of the newest key block this node mined; kNoBlockId before
  /// the first win. Leadership checks are then a u32 compare per tick.
  BlockId my_latest_key_block_ = kNoBlockId;
  bool tick_scheduled_ = false;

 private:
  [[nodiscard]] chain::BlockPtr build_key_block(std::uint32_t tip, double work);
  void note_microblock(const chain::BlockPtr& block, BlockId id, std::uint32_t parent_idx,
                       NodeId from);
  void record_poison_sites(const chain::Block& block, BlockId id);
  [[nodiscard]] bool chain_has_poison_for(const Hash256& leader_addr,
                                          std::uint32_t tip) const;

  crypto::PrivateKey leader_sk_;
  crypto::PublicKey leader_pk_;
  Hash256 reward_address_;
  EquivocationDetector detector_;
  std::deque<FraudEvidence> pending_frauds_;
  /// Where poison transactions against each leader address have been seen:
  /// the microblocks (by interned id) carrying them, own placements
  /// included. The §4.5 rule — "Only one poison transaction can be placed
  /// per cheater" — is per cheater *per chain*: the Ledger's revocation
  /// sweeps every coinbase output the address owns, so a second poison for
  /// the same leader on one chain path finds nothing and invalidates the
  /// chain — but a poison pruned away with its branch must not suppress
  /// re-placement on the winning chain. Placement therefore checks whether
  /// any recorded site is an ancestor of the tip being extended, and
  /// blocked evidence stays in the retry queue instead of being dropped.
  std::unordered_map<Hash256, std::vector<BlockId>, Hash256Hasher> poison_sites_;

  std::uint64_t key_blocks_mined_ = 0;
  std::uint64_t microblocks_generated_ = 0;
  std::uint64_t poisons_placed_ = 0;
};

/// SM1 on the key-block plane: withholds key blocks; the microblocks it
/// leads on the private chain join the private set and publish with their
/// epoch (they carry no weight, so the lead accounting is untouched — §5.1).
using SelfishNgMiner = protocol::SelfishNode<NgNode>;

}  // namespace bng::ng
