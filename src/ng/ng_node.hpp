// Bitcoin-NG protocol node (paper §4).
//
// Wins key blocks through the external mining scheduler; while its key block
// heads the main chain it is the leader and emits signed microblocks at the
// configured rate. Implements the 40/60 fee split (§4.4) and places poison
// transactions when it holds fraud evidence (§4.5).
#pragma once

#include <deque>

#include "crypto/ecdsa.hpp"
#include "ng/poison.hpp"
#include "protocol/base_node.hpp"

namespace bng::ng {

class NgNode : public protocol::BaseNode {
 public:
  NgNode(NodeId id, net::Network& net, chain::BlockPtr genesis, protocol::NodeConfig cfg,
         Rng rng, protocol::IBlockObserver* observer);

  /// The mining scheduler decided this node found the next key block.
  void on_mining_win(double work) override;

  /// Identity used to sign this node's epochs.
  [[nodiscard]] const crypto::PublicKey& leader_pubkey() const { return leader_pk_; }
  [[nodiscard]] const Hash256& reward_address() const { return reward_address_; }

  /// Is this node currently the leader on its own view?
  [[nodiscard]] bool is_leader() const;

  [[nodiscard]] std::uint64_t key_blocks_mined() const { return key_blocks_mined_; }
  [[nodiscard]] std::uint64_t microblocks_generated() const { return microblocks_generated_; }
  [[nodiscard]] std::uint64_t poisons_placed() const { return poisons_placed_; }

  /// Testing/attack hook: create and broadcast a signed microblock extending
  /// an arbitrary parent — used to model an equivocating (fraudulent) leader.
  chain::BlockPtr forge_microblock(const Hash256& parent_id);

 protected:
  void handle_block(const chain::BlockPtr& block, BlockId id, NodeId from) override;

 private:
  void schedule_microblock_tick();
  void microblock_tick();
  [[nodiscard]] chain::BlockPtr build_key_block(std::uint32_t tip, double work);
  [[nodiscard]] chain::BlockPtr build_microblock(std::uint32_t tip);
  void sign_header(chain::BlockHeader& header) const;
  void note_microblock(const chain::BlockPtr& block, std::uint32_t parent_idx);

  crypto::PrivateKey leader_sk_;
  crypto::PublicKey leader_pk_;
  Hash256 reward_address_;
  /// Interned id of the newest key block this node mined; kNoBlockId before
  /// the first win. Leadership checks are then a u32 compare per tick.
  BlockId my_latest_key_block_ = kNoBlockId;
  bool tick_scheduled_ = false;
  EquivocationDetector detector_;
  std::deque<FraudEvidence> pending_frauds_;
  FlatIdSet poisoned_epochs_;  ///< accused key blocks already poisoned (by id)

  std::uint64_t key_blocks_mined_ = 0;
  std::uint64_t microblocks_generated_ = 0;
  std::uint64_t poisons_placed_ = 0;
};

}  // namespace bng::ng
