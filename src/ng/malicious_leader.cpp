#include "ng/malicious_leader.hpp"

namespace bng::ng {

MaliciousLeader::MaliciousLeader(NodeId id, net::Network& net, chain::BlockPtr genesis,
                                 protocol::NodeConfig cfg, Rng rng,
                                 protocol::IBlockObserver* observer, Mode mode,
                                 std::uint32_t equivocate_every)
    : NgNode(id, net, std::move(genesis), std::move(cfg), rng, observer),
      mode_(mode),
      equivocate_every_(equivocate_every == 0 ? 1 : equivocate_every) {}

void MaliciousLeader::microblock_tick() {
  if (mode_ == Mode::kWithholdMicroblocks) {
    // Emit nothing while leading: the transaction plane starves for the
    // whole epoch. The withheld microblocks must not enter our own tree
    // either — a later key block of ours would build on them and force
    // their revelation through orphan-chasing (§5.1: secret microblocks
    // buy the attacker nothing, so none are materialized).
    tick_scheduled_ = false;
    if (!is_leader()) return;
    ++ticks_led_;
    ++microblocks_withheld_;
    schedule_microblock_tick();
    return;
  }

  // Capture the parent the regular tick will extend; the tick moves our tip
  // onto the new microblock, so the sibling must fork from the saved parent.
  const bool leading = is_leader();
  const Hash256 parent =
      leading ? tree_.entry(tree_.best_tip()).block->id() : Hash256{};

  NgNode::microblock_tick();

  if (!leading) return;
  if (++ticks_led_ % equivocate_every_ != 0) return;
  // A conflicting sibling: same predecessor, same signing key, salted nonce
  // so the two headers differ even at identical timestamps. forge announces
  // it without adopting it as our own tip.
  forge_microblock(parent, rng_.next());
  ++equivocations_;
}

bool MaliciousLeader::should_relay(std::uint32_t index) const {
  // Defensive: withhold mode creates no own microblocks, but suppress any
  // that might exist (e.g. from a mode switch mid-run in tests).
  if (mode_ == Mode::kWithholdMicroblocks) {
    const auto& entry = tree_.entry(index);
    if (entry.block->type() == chain::BlockType::kMicro && entry.block->miner() == id_)
      return false;
  }
  return NgNode::should_relay(index);
}

}  // namespace bng::ng
