// Malicious Bitcoin-NG leader (paper §4.5, §5.1).
//
// Two leader misbehaviours the protocol must contain:
//
//  * kEquivocate — while leading, periodically signs a second, conflicting
//    microblock extending the same predecessor ("splitting the brain of the
//    system"). Honest nodes that observe both siblings hold a fraud proof;
//    the next honest leader places a poison transaction that revokes this
//    leader's epoch revenue (§4.5) — the full detection → poison → revocation
//    pipeline runs end-to-end in a live simulation.
//
//  * kWithholdMicroblocks — while leading, builds microblocks but never
//    announces them: the transaction plane stalls for the epoch (a benign
//    crash has the same liveness effect, §5.2, but here the chain state
//    diverges until the next key block prunes the private microblocks).
#pragma once

#include "ng/ng_node.hpp"

namespace bng::ng {

class MaliciousLeader : public NgNode {
 public:
  enum class Mode {
    kEquivocate,
    kWithholdMicroblocks,
  };

  MaliciousLeader(NodeId id, net::Network& net, chain::BlockPtr genesis,
                  protocol::NodeConfig cfg, Rng rng, protocol::IBlockObserver* observer,
                  Mode mode, std::uint32_t equivocate_every = 4);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t equivocations() const { return equivocations_; }
  /// kWithholdMicroblocks: led ticks whose microblock was never produced.
  [[nodiscard]] std::uint64_t microblocks_withheld() const { return microblocks_withheld_; }

 protected:
  /// kEquivocate: after the regular microblock, every `equivocate_every`-th
  /// tick forges a conflicting sibling of it (same parent, salted nonce).
  void microblock_tick() override;

  /// kWithholdMicroblocks: own microblocks are never announced; everything
  /// else follows base policy.
  [[nodiscard]] bool should_relay(std::uint32_t index) const override;

 private:
  Mode mode_;
  std::uint32_t equivocate_every_;
  std::uint32_t ticks_led_ = 0;
  std::uint64_t equivocations_ = 0;
  std::uint64_t microblocks_withheld_ = 0;
};

}  // namespace bng::ng
