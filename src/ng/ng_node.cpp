#include "ng/ng_node.hpp"

#include <algorithm>

#include "chain/validation.hpp"
#include "obs/trace_ring.hpp"

namespace bng::ng {

namespace {
/// Bytes reserved in a key block for header + coinbase.
constexpr std::size_t kKeyBlockOverhead = 400;
/// Bytes reserved in a microblock for the header.
constexpr std::size_t kMicroBlockOverhead = 250;
}  // namespace

NgNode::NgNode(NodeId id, net::Network& net, chain::BlockPtr genesis,
               protocol::NodeConfig cfg, Rng rng, protocol::IBlockObserver* observer)
    : BaseNode(id, net, std::move(genesis), std::move(cfg), rng, observer),
      leader_sk_(crypto::PrivateKey::from_seed(0x6e670000ull + id)),
      leader_pk_(leader_sk_.public_key()),
      reward_address_(chain::address_of(leader_pk_)) {}

bool NgNode::is_leader() const {
  if (my_latest_key_block_ == kNoBlockId) return false;
  const auto& tip = tree_.best_entry();
  return tree_.entry(tip.epoch_key_block).id == my_latest_key_block_;
}

void NgNode::on_mining_win(double work) {
  const std::uint32_t tip = tree_.best_tip();
  chain::BlockPtr block = build_key_block(tip, work);
  ++key_blocks_mined_;
  const BlockId block_id = tree_.intern(block->id());
  my_latest_key_block_ = block_id;
  if (observer_ != nullptr) observer_->on_block_generated(block, id_, now());
  accept_block(block, block_id, id_, work);
  // Begin (or continue) emitting microblocks for the new epoch.
  schedule_microblock_tick();
}

chain::BlockPtr NgNode::build_key_block(std::uint32_t tip, double work) {
  const auto& tip_entry = tree_.entry(tip);
  const auto& prev_epoch = tree_.entry(tip_entry.epoch_key_block);

  // Remuneration (§4.4): the coinbase mints the subsidy and distributes the
  // previous epoch's fees 40% to its leader, 60% to this key block's miner.
  auto coinbase = std::make_shared<chain::Transaction>();
  coinbase->coinbase_height = tip_entry.pow_height + 1;
  const Amount epoch_fees = tip_entry.chain_fee_sum - prev_epoch.chain_fee_sum;
  const auto leader_share =
      static_cast<Amount>(cfg_.params.leader_fee_fraction * static_cast<double>(epoch_fees));
  const Amount next_share = epoch_fees - leader_share;
  if (prev_epoch.block->header().leader_key && leader_share > 0) {
    const Hash256 prev_leader = chain::address_of(*prev_epoch.block->header().leader_key);
    coinbase->outputs.push_back(chain::TxOutput{leader_share, prev_leader});
    coinbase->outputs.push_back(
        chain::TxOutput{cfg_.params.block_subsidy + next_share, reward_address_});
  } else {
    // Genesis epoch (or zero fees): everything to this miner.
    coinbase->outputs.push_back(
        chain::TxOutput{cfg_.params.block_subsidy + epoch_fees, reward_address_});
  }

  std::vector<chain::TxPtr> txs{std::move(coinbase)};
  chain::BlockHeader header;
  header.type = chain::BlockType::kKey;
  header.prev = tip_entry.block->id();
  header.timestamp = now();
  header.merkle_root = chain::compute_merkle_root(txs);
  header.nonce = rng_.next();  // regtest-style: difficulty check skipped
  header.leader_key = leader_pk_;
  return std::make_shared<chain::Block>(std::move(header), std::move(txs), id_, work);
}

void NgNode::schedule_microblock_tick() {
  if (tick_scheduled_) return;
  tick_scheduled_ = true;
  queue_.schedule_in(cfg_.params.microblock_interval, [this] { microblock_tick(); });
}

void NgNode::microblock_tick() {
  tick_scheduled_ = false;
  if (!is_leader()) return;  // leadership lost: stop producing (§4.2)
  const std::uint32_t tip = tree_.best_tip();
  chain::BlockPtr block = build_microblock(tip);
  ++microblocks_generated_;
  const BlockId block_id = tree_.intern(block->id());
  if (observer_ != nullptr) observer_->on_block_generated(block, id_, now());
  accept_block(block, block_id, id_, /*work=*/0.0);
  record_poison_sites(*block, block_id);  // own placements count too
  schedule_microblock_tick();
}

chain::BlockPtr NgNode::build_microblock(std::uint32_t tip, std::uint64_t salt) {
  const auto& tip_entry = tree_.entry(tip);
  std::vector<chain::TxPtr> txs;

  // Place any poison transactions we hold evidence for (§4.5): allowed once
  // per cheater, only after the accused's epoch ended, and only while the
  // revenue is still revocable on this chain. Evidence that cannot be placed
  // yet (e.g. the fork is not visible from the current chain) is retried on
  // the next microblock.
  std::deque<FraudEvidence> retry;
  std::vector<Hash256> placed_now;  // leaders poisoned in THIS block
  while (!pending_frauds_.empty()) {
    FraudEvidence evidence = std::move(pending_frauds_.front());
    pending_frauds_.pop_front();
    const auto accused_idx = tree_.find(evidence.accused_key_block);
    if (!accused_idx) {
      retry.push_back(std::move(evidence));  // accused epoch not seen yet
      continue;
    }
    const auto& accused_key = tree_.entry(*accused_idx).block->header().leader_key;
    if (!accused_key) continue;  // malformed evidence: not a leader epoch
    const Hash256 accused_leader = chain::address_of(*accused_key);
    if (accused_leader == reward_address_) continue;  // self
    if (chain_has_poison_for(accused_leader, tip) ||
        std::find(placed_now.begin(), placed_now.end(), accused_leader) !=
            placed_now.end()) {
      // One poison per cheater per chain: keep the evidence — if the chain
      // carrying that poison loses, this node can still re-place it.
      retry.push_back(std::move(evidence));
      continue;
    }
    const Amount revocable = compute_revocable(tree_, tip, evidence.accused_key_block);
    const chain::BlockHeader* pruned = select_pruned_header(tree_, tip, evidence);
    bool placed = false;
    if (revocable > 0 && pruned != nullptr) {
      auto probe = make_poison_tx(evidence.accused_key_block, *pruned, reward_address_, 0);
      if (check_poison(tree_, tip, *probe->poison, cfg_.verify_signatures).ok) {
        const auto bounty = static_cast<Amount>(
            cfg_.params.poison_reward_fraction * static_cast<double>(revocable));
        txs.push_back(
            make_poison_tx(evidence.accused_key_block, *pruned, reward_address_, bounty));
        placed_now.push_back(accused_leader);
        ++poisons_placed_;
        if (cfg_.trace != nullptr && cfg_.trace->wants(obs::kTraceAdversary))
          cfg_.trace->record(obs::kTraceAdversary, obs::TraceKind::kPoison, id_,
                             tree_.interner().lookup(evidence.accused_key_block));
        placed = true;
      }
    }
    if (!placed) retry.push_back(std::move(evidence));
  }
  pending_frauds_ = std::move(retry);

  std::size_t poison_bytes = 0;
  for (const auto& tx : txs) poison_bytes += tx->wire_size();
  std::vector<chain::TxPtr> payload = assemble_payload(
      tip, cfg_.params.max_microblock_size, kMicroBlockOverhead + poison_bytes);
  txs.insert(txs.end(), payload.begin(), payload.end());

  chain::BlockHeader header;
  header.type = chain::BlockType::kMicro;
  header.prev = tip_entry.block->id();
  header.timestamp = now();
  header.merkle_root = chain::compute_merkle_root(txs);
  header.nonce = salt;
  sign_header(header);
  return std::make_shared<chain::Block>(std::move(header), std::move(txs), id_, 0.0);
}

void NgNode::sign_header(chain::BlockHeader& header) const {
  header.signature = crypto::sign(leader_sk_, header.signing_hash());
}

chain::BlockPtr NgNode::forge_microblock(const Hash256& parent_id, std::uint64_t salt) {
  auto parent_idx = tree_.find(parent_id);
  if (!parent_idx) throw std::invalid_argument("forge_microblock: unknown parent");
  chain::BlockPtr block = build_microblock(*parent_idx, salt);
  ++microblocks_generated_;
  const BlockId block_id = tree_.intern(block->id());
  if (observer_ != nullptr) observer_->on_block_generated(block, id_, now());
  // Bypass normal acceptance: announce only (the forger may withhold it from
  // its own tree to keep its view consistent).
  known_.insert(block_id);
  if (!tree_.contains_id(block_id)) {
    // Insert so we can serve getdata for it.
    if (tree_.contains(block->header().prev)) tree_.insert(block, block_id, now(), 0.0);
  }
  announce(block_id, id_);
  return block;
}

void NgNode::note_microblock(const chain::BlockPtr& block, BlockId id,
                             std::uint32_t parent_idx, NodeId from) {
  const Hash256 epoch_id = tree_.entry(tree_.entry(parent_idx).epoch_key_block).block->id();
  if (auto fraud = detector_.observe(epoch_id, block->header())) {
    if (observer_ != nullptr) observer_->on_fraud_detected(id_, epoch_id, now());
    pending_frauds_.push_back(std::move(*fraud));
    // Gossip the proof: this conflicting sibling sits off the active chain,
    // so the normal relay policy would strand it at the cheater's direct
    // neighbours — but the evidence must reach a *future leader* to be
    // placed (§4.5). Each receiver detects the same fraud and re-announces
    // once (the detector reports one conflict per epoch), flooding the
    // proof exactly one inv per node.
    announce(id, from);
  }
  // Record poisons other nodes placed: without this, every evidence-holding
  // node would place its own poison against the same cheater and the chain
  // would fail ledger replay. Any microblock we build extends a chain whose
  // poisons we have all accepted (and thus recorded), so the
  // at-most-one-per-cheater invariant holds on every chain path.
  record_poison_sites(*block, id);
}

void NgNode::record_poison_sites(const chain::Block& block, BlockId id) {
  for (const auto& tx : block.txs()) {
    if (!tx->poison) continue;
    const auto idx = tree_.find(tx->poison->accused_key_block);
    if (!idx) continue;
    const auto& key = tree_.entry(*idx).block->header().leader_key;
    if (!key) continue;
    auto& sites = poison_sites_[chain::address_of(*key)];
    if (std::find(sites.begin(), sites.end(), id) == sites.end()) sites.push_back(id);
  }
}

bool NgNode::chain_has_poison_for(const Hash256& leader_addr, std::uint32_t tip) const {
  const auto it = poison_sites_.find(leader_addr);
  if (it == poison_sites_.end()) return false;
  for (const BlockId site : it->second) {
    const std::uint32_t idx = tree_.index_of_id(site);
    if (idx != chain::BlockTree::kNoIndex && tree_.is_ancestor(idx, tip)) return true;
  }
  return false;
}

void NgNode::handle_block(const chain::BlockPtr& block, BlockId id, NodeId from) {
  if (tree_.contains_id(id)) return;
  if (auto r = chain::check_size(*block, cfg_.params); !r.ok) return;

  switch (block->type()) {
    case chain::BlockType::kKey: {
      if (auto r = chain::check_key_block(*block); !r.ok) return;
      if (ensure_parent(block, id, from) == chain::BlockTree::kNoIndex) return;
      accept_block(block, id, from, block->work());
      break;
    }
    case chain::BlockType::kMicro: {
      const std::uint32_t parent_idx = ensure_parent(block, id, from);
      if (parent_idx == chain::BlockTree::kNoIndex) return;
      const auto& parent = tree_.entry(parent_idx);
      const auto& epoch = tree_.entry(parent.epoch_key_block);
      if (!epoch.block->header().leader_key) return;  // no leader yet: invalid
      auto r = chain::check_microblock(*block, *epoch.block->header().leader_key,
                                       parent.block->header().timestamp, now(), cfg_.params,
                                       cfg_.verify_signatures);
      if (!r.ok) return;
      note_microblock(block, id, parent_idx, from);
      accept_block(block, id, from, /*work=*/0.0);
      break;
    }
    case chain::BlockType::kPow:
      return;  // Bitcoin blocks are not valid on an NG chain.
  }
}

}  // namespace bng::ng
