#include "ng/poison.hpp"

#include "crypto/ecdsa.hpp"

namespace bng::ng {

std::optional<FraudEvidence> EquivocationDetector::observe(const Hash256& epoch_key_block,
                                                           const chain::BlockHeader& header) {
  const auto key = std::make_pair(epoch_key_block, header.prev);
  auto [it, inserted] = first_seen_.emplace(key, header);
  if (inserted) return std::nullopt;
  const Hash256 first_id = it->second.id();
  if (first_id == header.id()) return std::nullopt;  // same block re-observed
  if (reported_epochs_.count(epoch_key_block) > 0) return std::nullopt;
  reported_epochs_.insert(epoch_key_block);
  FraudEvidence evidence;
  evidence.accused_key_block = epoch_key_block;
  evidence.header_a = it->second;
  evidence.header_b = header;
  return evidence;
}

const chain::BlockHeader& FraudEvidence::pruned_header(const chain::BlockTree& tree,
                                                       std::uint32_t tip) const {
  const chain::BlockHeader* losing = select_pruned_header(tree, tip, *this);
  return losing != nullptr ? *losing : header_b;
}

const chain::BlockHeader* select_pruned_header(const chain::BlockTree& tree,
                                               std::uint32_t tip,
                                               const FraudEvidence& evidence) {
  auto on_chain = [&](const chain::BlockHeader& h) {
    auto idx = tree.find(h.id());
    return idx && tree.is_ancestor(*idx, tip);
  };
  if (!on_chain(evidence.header_b)) return &evidence.header_b;
  if (!on_chain(evidence.header_a)) return &evidence.header_a;
  return nullptr;
}

Amount compute_revocable(const chain::BlockTree& tree, std::uint32_t tip,
                         const Hash256& accused_key_block) {
  auto accused_idx = tree.find(accused_key_block);
  if (!accused_idx || !tree.is_ancestor(*accused_idx, tip)) return 0;
  const auto& accused_entry = tree.entry(*accused_idx);
  if (!accused_entry.block->header().leader_key) return 0;
  const Hash256 leader_addr = chain::address_of(*accused_entry.block->header().leader_key);

  Amount revocable = 0;
  auto add_coinbase_outputs = [&](const chain::Block& block) {
    if (block.txs().empty() || !block.txs()[0]->is_coinbase()) return;
    for (const auto& out : block.txs()[0]->outputs)
      if (out.owner == leader_addr) revocable += out.value;
  };
  add_coinbase_outputs(*accused_entry.block);
  // Find the next key block on the path to tip (it pays the 40% fee share).
  std::uint32_t cur = tip;
  std::uint32_t next_key = UINT32_MAX;
  while (cur != *accused_idx) {
    if (tree.entry(cur).block->type() == chain::BlockType::kKey) next_key = cur;
    cur = static_cast<std::uint32_t>(tree.entry(cur).parent);
  }
  if (next_key != UINT32_MAX) add_coinbase_outputs(*tree.entry(next_key).block);
  return revocable;
}

chain::TxPtr make_poison_tx(const Hash256& accused_key_block,
                            const chain::BlockHeader& pruned_header,
                            const Hash256& poisoner_address, Amount bounty) {
  auto tx = std::make_shared<chain::Transaction>();
  ByteWriter w;
  pruned_header.serialize(w);
  chain::PoisonPayload payload;
  payload.accused_key_block = accused_key_block;
  payload.pruned_header = w.data();
  payload.pruned_header_id = pruned_header.id();
  tx->poison = std::move(payload);
  tx->outputs.push_back(chain::TxOutput{bounty, poisoner_address});
  return tx;
}

chain::ValidationResult check_poison(const chain::BlockTree& tree, std::uint32_t tip,
                                     const chain::PoisonPayload& payload,
                                     bool verify_signature) {
  using chain::ValidationResult;
  // 1. Accused key block on the chain.
  auto accused_idx = tree.find(payload.accused_key_block);
  if (!accused_idx || !tree.is_ancestor(*accused_idx, tip))
    return ValidationResult::fail("accused key block not on chain");
  const auto& accused = tree.entry(*accused_idx);
  if (accused.block->type() != chain::BlockType::kKey || !accused.block->header().leader_key)
    return ValidationResult::fail("accused block is not a key block");

  // 2. Parse the pruned header; must be a microblock.
  chain::BlockHeader pruned;
  try {
    ByteReader r(payload.pruned_header);
    pruned = chain::BlockHeader::deserialize(r);
  } catch (const std::exception&) {
    return ValidationResult::fail("pruned header does not parse");
  }
  if (pruned.type != chain::BlockType::kMicro)
    return ValidationResult::fail("pruned header is not a microblock");
  if (pruned.id() != payload.pruned_header_id)
    return ValidationResult::fail("pruned header id mismatch");
  if (!pruned.signature) return ValidationResult::fail("pruned header unsigned");
  if (verify_signature &&
      !crypto::verify(*accused.block->header().leader_key, pruned.signing_hash(),
                      *pruned.signature))
    return ValidationResult::fail("pruned header not signed by accused leader");

  // 3. The pruned header must not be on the chain.
  if (auto pruned_idx = tree.find(payload.pruned_header_id);
      pruned_idx && tree.is_ancestor(*pruned_idx, tip))
    return ValidationResult::fail("claimed pruned header is on the main chain");

  // 4. Equivocation: the chain extends the same predecessor with a different
  //    microblock of the accused epoch.
  auto prev_idx = tree.find(pruned.prev);
  if (!prev_idx || !tree.is_ancestor(*prev_idx, tip))
    return ValidationResult::fail("pruned header's predecessor not on chain");
  // Find the chain's successor of prev on the path to tip.
  std::uint32_t successor = UINT32_MAX;
  for (std::uint32_t cur = tip; cur != *prev_idx;
       cur = static_cast<std::uint32_t>(tree.entry(cur).parent)) {
    successor = cur;
  }
  if (successor == UINT32_MAX)
    return ValidationResult::fail("predecessor is the tip; no equivocation shown");
  const auto& succ = tree.entry(successor);
  if (succ.block->type() != chain::BlockType::kMicro ||
      succ.epoch_key_block != *accused_idx)
    return ValidationResult::fail("chain successor is not an accused-epoch microblock");
  if (succ.block->id() == payload.pruned_header_id)
    return ValidationResult::fail("headers identical; no fork");
  return {};
}

}  // namespace bng::ng
