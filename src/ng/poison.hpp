// Poison transactions: microblock-fork fraud proofs (paper §4.5).
//
// A leader that signs two different microblocks extending the same block is
// "splitting the brain of the system" to enable double spends. Any node
// holding both headers has a proof of fraud; the poison transaction carries
// the header of the first block in the pruned branch, revokes the cheater's
// revenue, and grants the poisoner a fraction (e.g. 5%).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "chain/block_tree.hpp"
#include "chain/params.hpp"
#include "chain/transaction.hpp"
#include "chain/validation.hpp"

namespace bng::ng {

/// Evidence that a leader signed conflicting microblocks. Both headers are
/// kept: whichever branch eventually loses supplies the "pruned" header for
/// the poison transaction (§4.5).
struct FraudEvidence {
  Hash256 accused_key_block;  ///< the epoch whose leader equivocated
  chain::BlockHeader header_a;  ///< first observed conflicting header
  chain::BlockHeader header_b;  ///< second observed conflicting header

  /// The header of the branch that actually lost, resolved against the
  /// block tree at poison-construction time (§4.5: "whichever branch
  /// eventually loses"). Falls back to header_b when neither header is on
  /// the chain ending at `tip` (either would prove the fraud) — the old
  /// behaviour of unconditionally returning header_b mis-poisoned whenever
  /// the *second* observed sibling was the one that won.
  [[nodiscard]] const chain::BlockHeader& pruned_header(const chain::BlockTree& tree,
                                                        std::uint32_t tip) const;
};

/// Watches microblock headers and reports leader equivocation: two distinct
/// microblocks by the same epoch key extending the same predecessor.
class EquivocationDetector {
 public:
  /// Record an observed microblock header. Returns evidence the first time a
  /// conflict for (epoch, prev) is seen; at most one report per epoch.
  std::optional<FraudEvidence> observe(const Hash256& epoch_key_block,
                                       const chain::BlockHeader& header);

  [[nodiscard]] std::size_t tracked() const { return first_seen_.size(); }

 private:
  struct PairHasher {
    std::size_t operator()(const std::pair<Hash256, Hash256>& p) const noexcept {
      return Hash256Hasher{}(p.first) * 1000003 ^ Hash256Hasher{}(p.second);
    }
  };
  /// (epoch key block, prev) -> first microblock header seen.
  std::unordered_map<std::pair<Hash256, Hash256>, chain::BlockHeader, PairHasher> first_seen_;
  std::unordered_set<Hash256, Hash256Hasher> reported_epochs_;
};

/// Revenue of the accused leader that is still revocable on the chain ending
/// at `tip`: coinbase outputs paying the leader's address in its own key
/// block and in the successor key block (the 40% fee share).
Amount compute_revocable(const chain::BlockTree& tree, std::uint32_t tip,
                         const Hash256& accused_key_block);

/// Build the poison transaction around a specific pruned header. `bounty`
/// must not exceed poison_reward_fraction * revocable (the Ledger enforces
/// this on replay).
chain::TxPtr make_poison_tx(const Hash256& accused_key_block,
                            const chain::BlockHeader& pruned_header,
                            const Hash256& poisoner_address, Amount bounty);

/// Pick whichever evidence header is NOT on the chain ending at `tip` (the
/// pruned one); nullptr if both are on-chain ancestors (cannot happen for a
/// real fork) or evidence is empty.
const chain::BlockHeader* select_pruned_header(const chain::BlockTree& tree,
                                               std::uint32_t tip,
                                               const FraudEvidence& evidence);

/// Contextual poison validation against the chain ending at `tip` (§4.5):
///  - the accused key block is on the chain;
///  - the pruned header is a microblock signed by the accused epoch key;
///  - the pruned header is NOT on the chain;
///  - the chain extends the pruned header's predecessor with a *different*
///    microblock of the same epoch (equivocation, not a benign leader
///    switch as in Fig. 2).
chain::ValidationResult check_poison(const chain::BlockTree& tree, std::uint32_t tip,
                                     const chain::PoisonPayload& payload,
                                     bool verify_signature);

}  // namespace bng::ng
