#include "bitcoin/bitcoin_node.hpp"

#include "chain/validation.hpp"

namespace bng::bitcoin {

namespace {
/// Bytes reserved in a block for the header and coinbase transaction.
constexpr std::size_t kBlockOverhead = 300;
}  // namespace

BitcoinNode::BitcoinNode(NodeId id, net::Network& net, chain::BlockPtr genesis,
                         protocol::NodeConfig cfg, Rng rng,
                         protocol::IBlockObserver* observer)
    : BaseNode(id, net, std::move(genesis), std::move(cfg), rng, observer),
      reward_address_(chain::address_from_tag(0x626974ull << 32 | id)) {}

void BitcoinNode::on_mining_win(double work) {
  const std::uint32_t tip = tree_.best_tip();
  chain::BlockPtr block = build_block(tip, work);
  ++blocks_mined_;
  const BlockId block_id = tree_.intern(block->id());
  if (observer_ != nullptr) observer_->on_block_generated(block, id_, now());
  accept_block(block, block_id, id_, work);
}

chain::BlockPtr BitcoinNode::build_block(std::uint32_t tip, double work) {
  const auto& tip_entry = tree_.entry(tip);
  std::vector<chain::TxPtr> txs =
      assemble_payload(tip, cfg_.params.max_block_size, kBlockOverhead);

  // Coinbase: subsidy + all fees to this miner (paper §3 "Mining").
  Amount fees = 0;
  for (const auto& tx : txs) fees += tx->fee;
  auto coinbase = std::make_shared<chain::Transaction>();
  coinbase->coinbase_height = tip_entry.pow_height + 1;
  coinbase->outputs.push_back(
      chain::TxOutput{cfg_.params.block_subsidy + fees, reward_address_});
  txs.insert(txs.begin(), std::move(coinbase));

  chain::BlockHeader header;
  header.type = chain::BlockType::kPow;
  header.prev = tip_entry.block->id();
  header.timestamp = now();
  header.merkle_root = chain::compute_merkle_root(txs);
  header.nonce = rng_.next();  // regtest mode: difficulty check is skipped
  return std::make_shared<chain::Block>(std::move(header), std::move(txs), id_, work);
}

void BitcoinNode::handle_block(const chain::BlockPtr& block, BlockId id, NodeId from) {
  if (tree_.contains_id(id)) return;
  if (auto r = chain::check_pow_block(*block); !r.ok) return;  // invalid: drop
  if (auto r = chain::check_size(*block, cfg_.params); !r.ok) return;
  if (ensure_parent(block, id, from) == chain::BlockTree::kNoIndex) return;
  accept_block(block, id, from, block->work());
}

}  // namespace bng::bitcoin
