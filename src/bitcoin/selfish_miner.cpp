#include "bitcoin/selfish_miner.hpp"

#include <algorithm>

namespace bng::bitcoin {

namespace {
protocol::NodeConfig selfish_config(protocol::NodeConfig cfg) {
  // The attacker always prefers its own branch on ties: first-seen keeps the
  // locally-mined (first-inserted) private chain as the mining tip.
  cfg.params.tie_break = chain::TieBreak::kFirstSeen;
  return cfg;
}
}  // namespace

SelfishMiner::SelfishMiner(NodeId id, net::Network& net, chain::BlockPtr genesis,
                           protocol::NodeConfig cfg, Rng rng,
                           protocol::IBlockObserver* observer)
    : BitcoinNode(id, net, std::move(genesis), selfish_config(std::move(cfg)), rng,
                  observer) {}

double SelfishMiner::private_work() const { return tree_.best_entry().chain_work; }

bool SelfishMiner::should_relay(std::uint32_t index) const {
  if (withholding_) return false;  // own block being mined right now
  const BlockId id = tree_.entry(index).id;
  if (std::find(private_blocks_.begin(), private_blocks_.end(), id) !=
      private_blocks_.end())
    return false;  // withheld
  return BitcoinNode::should_relay(index);
}

void SelfishMiner::on_mining_win(double work) {
  withholding_ = true;
  BitcoinNode::on_mining_win(work);
  withholding_ = false;
  private_blocks_.push_back(tree_.best_entry().id);

  // SM1 state 0' -> win: we were racing head-to-head and just mined on our
  // own branch; publish and take both blocks' rewards.
  if (racing_ && private_work() > race_work_) {
    publish_all();
    racing_ = false;
  }
}

void SelfishMiner::after_accept(const chain::BlockPtr& block, std::uint32_t index,
                                std::uint32_t old_tip) {
  BitcoinNode::after_accept(block, index, old_tip);
  if (withholding_) return;  // our own freshly-withheld block
  const BlockId id = tree_.entry(index).id;
  if (std::find(private_blocks_.begin(), private_blocks_.end(), id) !=
      private_blocks_.end())
    return;

  // A public block arrived (honest, or one we published ourselves).
  public_best_work_ = std::max(public_best_work_, tree_.entry(index).chain_work);
  if (racing_ && public_best_work_ > race_work_) racing_ = false;  // race resolved
  if (private_blocks_.empty()) return;

  const double lead = private_work() - public_best_work_;
  if (lead < 0) {
    // The public chain overtook us: our withheld blocks are worthless.
    abandon_private_chain();
  } else if (lead == 0) {
    // They caught up: reveal everything; the network splits (gamma ~ 0.5
    // under random tie-breaking) and the race is on.
    race_work_ = private_work();
    publish_all();
    racing_ = true;
  } else if (lead == 1) {
    // We lead by exactly one after their find: reveal all and win outright.
    publish_all();
  } else {
    // Comfortable lead: reveal just enough to match the public height and
    // keep the honest network wasting work on a losing branch.
    publish_until(public_best_work_);
  }
}

void SelfishMiner::publish_until(double target_work) {
  while (!private_blocks_.empty()) {
    const BlockId id = private_blocks_.front();
    const std::uint32_t idx = tree_.index_of_id(id);
    if (idx == chain::BlockTree::kNoIndex) {
      private_blocks_.pop_front();
      continue;
    }
    if (tree_.entry(idx).chain_work > target_work) break;
    private_blocks_.pop_front();
    ++blocks_published_;
    announce(id, id_);
  }
}

void SelfishMiner::publish_all() {
  while (!private_blocks_.empty()) {
    const BlockId id = private_blocks_.front();
    private_blocks_.pop_front();
    if (tree_.contains_id(id)) {
      ++blocks_published_;
      announce(id, id_);
    }
  }
}

void SelfishMiner::abandon_private_chain() {
  branches_abandoned_ += private_blocks_.empty() ? 0 : 1;
  private_blocks_.clear();
}

}  // namespace bng::bitcoin
