// Selfish mining (Eyal & Sirer, FC 2014) — the attack that motivates the
// paper's 1/4 Byzantine bound (§2) and the rule that microblocks carry no
// chain weight (§5.1: "If microblocks had carried weight, an attacker could
// keep secret microblocks and gain advantage").
//
// Implements the SM1 strategy: withhold mined blocks, publish judiciously to
// waste the honest network's work. With random tie-breaking the honest
// network splits on races (gamma ~= 0.5), making the profitability
// threshold ~= 25% — exactly the paper's assumed adversary bound.
#pragma once

#include <deque>

#include "bitcoin/bitcoin_node.hpp"

namespace bng::bitcoin {

class SelfishMiner : public BitcoinNode {
 public:
  SelfishMiner(NodeId id, net::Network& net, chain::BlockPtr genesis,
               protocol::NodeConfig cfg, Rng rng, protocol::IBlockObserver* observer);

  /// Mines on the *private* chain and withholds the block (SM1).
  void on_mining_win(double work) override;

  [[nodiscard]] std::size_t withheld() const { return private_blocks_.size(); }
  [[nodiscard]] std::uint64_t blocks_published() const { return blocks_published_; }
  [[nodiscard]] std::uint64_t branches_abandoned() const { return branches_abandoned_; }

 protected:
  /// Reacts to honest blocks per SM1 (publish / match / abandon).
  void after_accept(const chain::BlockPtr& block, std::uint32_t index,
                    std::uint32_t old_tip) override;

  /// Withheld blocks are never announced; published ones follow base policy.
  [[nodiscard]] bool should_relay(std::uint32_t index) const override;

 private:
  void publish_until(double target_work);
  void publish_all();
  void abandon_private_chain();
  [[nodiscard]] double private_work() const;

  /// Unpublished own blocks by interned id, oldest first (a suffix of the
  /// private chain).
  std::deque<BlockId> private_blocks_;
  /// Heaviest publicly-known chain work (own published blocks included).
  double public_best_work_ = 0;
  /// True while the base class processes our own freshly-withheld block.
  bool withholding_ = false;
  /// Head-to-head race state (SM1's 0' state) and the contested work level.
  bool racing_ = false;
  double race_work_ = 0;
  std::uint64_t blocks_published_ = 0;
  std::uint64_t branches_abandoned_ = 0;
};

}  // namespace bng::bitcoin
