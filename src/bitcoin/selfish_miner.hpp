// Selfish mining (Eyal & Sirer, FC 2014) — the attack that motivates the
// paper's 1/4 Byzantine bound (§2) and the rule that microblocks carry no
// chain weight (§5.1: "If microblocks had carried weight, an attacker could
// keep secret microblocks and gain advantage").
//
// The SM1 withhold/publish/race state machine lives in
// protocol::WithholdingStrategy; this is its classic Bitcoin instantiation.
// With random tie-breaking the honest network splits on races (gamma ~=
// 0.5), making the profitability threshold ~= 25% — exactly the paper's
// assumed adversary bound.
#pragma once

#include "bitcoin/bitcoin_node.hpp"
#include "protocol/selfish_node.hpp"

namespace bng::bitcoin {

using SelfishMiner = protocol::SelfishNode<BitcoinNode>;

}  // namespace bng::bitcoin
