// The baseline: a stock-Bitcoin miner node (paper §3).
//
// Mines on the heaviest chain it knows (random tie-breaking), assembles
// blocks from its mempool/workload, and gossips blocks over the overlay.
// Proof-of-work is driven externally by the mining scheduler, mirroring the
// paper's regtest + in-situ controller setup (§7 "Simulated Mining").
#pragma once

#include "protocol/base_node.hpp"

namespace bng::bitcoin {

class BitcoinNode : public protocol::BaseNode {
 public:
  BitcoinNode(NodeId id, net::Network& net, chain::BlockPtr genesis,
              protocol::NodeConfig cfg, Rng rng, protocol::IBlockObserver* observer);

  /// The mining scheduler decided this node found the next block.
  void on_mining_win(double work) override;

  [[nodiscard]] std::uint64_t blocks_mined() const { return blocks_mined_; }

  /// Address collecting this node's rewards.
  [[nodiscard]] const Hash256& reward_address() const { return reward_address_; }

 protected:
  void handle_block(const chain::BlockPtr& block, BlockId id, NodeId from) override;

 private:
  [[nodiscard]] chain::BlockPtr build_block(std::uint32_t tip, double work);

  Hash256 reward_address_;
  std::uint64_t blocks_mined_ = 0;
};

}  // namespace bng::bitcoin
