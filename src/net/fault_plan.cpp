#include "net/fault_plan.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "net/network.hpp"

namespace bng::net {

namespace {

void check_node(const Network& net, NodeId node, const char* what) {
  if (node >= net.num_nodes())
    throw std::invalid_argument(std::string("FaultPlan: ") + what + " names unknown node");
}

}  // namespace

std::vector<TimedMutation> collect_faults(Network& net, const FaultPlan& plan) {
  std::vector<TimedMutation> out;
  if (plan.empty()) return out;
  Network* n = &net;

  for (const FaultPlan::Partition& p : plan.partitions) {
    for (NodeId v : p.group) check_node(net, v, "partition");
    // The group is shared by the cut and heal transitions (and kept alive by
    // them); set_partition resolves edges at fire time.
    auto group = std::make_shared<std::vector<NodeId>>(p.group);
    out.push_back({p.at, false, [n, group] { n->set_partition(*group, true); }});
    if (p.heal_at > p.at)
      out.push_back({p.heal_at, false, [n, group] { n->set_partition(*group, false); }});
  }

  for (const FaultPlan::LinkDelay& d : plan.link_delays) {
    check_node(net, d.a, "link delay");
    check_node(net, d.b, "link delay");
    // Throws if the edge does not exist; a negative extra must not push the
    // base latency below zero (overlapping windows are re-checked at fire
    // time by add_edge_latency, which validates before mutating).
    if (net.edge_latency(d.a, d.b) + d.extra < 0)
      throw std::invalid_argument("FaultPlan: link delay would make latency negative");
    out.push_back({d.at, true, [n, d] { n->add_edge_latency(d.a, d.b, d.extra); }});
    if (d.until > d.at)
      out.push_back({d.until, true, [n, d] { n->add_edge_latency(d.a, d.b, -d.extra); }});
  }

  for (const FaultPlan::Eclipse& e : plan.eclipses) {
    check_node(net, e.node, "eclipse");
    out.push_back({e.at, false, [n, node = e.node] { n->set_eclipsed(node, true); }});
    if (e.heal_at > e.at)
      out.push_back({e.heal_at, false, [n, node = e.node] { n->set_eclipsed(node, false); }});
  }
  return out;
}

void schedule_faults(Network& net, const FaultPlan& plan) {
  if (plan.empty()) return;
  EventQueue& queue = net.queue();
  // Scheduling in collection order reproduces the historical seq assignment
  // exactly (per-partition cut/heal, per-delay apply/revert, per-eclipse).
  for (TimedMutation& m : collect_faults(net, plan))
    queue.schedule_at(m.at, [apply = std::move(m.apply)] { apply(); });
}

}  // namespace bng::net
