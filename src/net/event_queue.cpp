#include "net/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bng::net {

void EventQueue::grow_slots() { chunks_.push_back(std::make_unique<Slot[]>(kChunkSize)); }

bool EventQueue::cancel(std::uint64_t id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= num_slots_) return false;
  Slot& s = slot(idx);
  if (s.gen != gen || !s.fn) return false;
  // Lazy deletion: invalidate the slot; the queue entry dies when it
  // surfaces (pop, run rebuild, or compaction).
  ++s.gen;
  s.fn.reset();
  free_slots_.push_back(idx);
  ++stale_;
  return true;
}

void EventQueue::build_run() {
  run_.clear();
  run_index_ = 0;
  // When mostly tombstones (mass cancellation), one compaction sweep beats
  // selecting among the dead repeatedly.
  if (stale_ > 0 && stale_ >= future_.size() / 2) {
    std::size_t kept = 0;
    for (const Entry& e : future_) {
      if (slot(e.slot).gen == e.gen) future_[kept++] = e;
    }
    stale_ -= future_.size() - kept;
    future_.resize(kept);
  }
  const std::size_t total = future_.size();
  const std::size_t batch = std::max<std::size_t>(1024, total / 8);
  std::size_t take = total;
  if (total > 2 * batch) {
    take = batch;
    // Partition: [0, take) holds the `take` order-smallest events.
    std::nth_element(future_.begin(),
                     future_.begin() + static_cast<std::ptrdiff_t>(take), future_.end(),
                     entry_less);
  }
  run_.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const Entry& e = future_[i];
    if (slot(e.slot).gen == e.gen) {
      run_.push_back(e);  // live
    } else {
      --stale_;
    }
  }
  // Backfill the consumed prefix from the tail (future_ is unsorted).
  const std::size_t rest = total - take;
  const std::size_t tail = std::min(take, rest);
  std::copy(future_.end() - static_cast<std::ptrdiff_t>(tail), future_.end(),
            future_.begin());
  future_.resize(rest);
  std::sort(run_.begin(), run_.end(), entry_less);
  if (!run_.empty()) run_max_at_ = run_.back().at;
}

bool EventQueue::pop_one(Seconds limit) {
  for (;;) {
    const bool have_run = run_index_ < run_.size();
    const bool have_near = !near_.empty();
    const Entry* cand;
    bool from_near;
    if (have_run && (!have_near || entry_less(run_[run_index_], near_.front()))) {
      cand = &run_[run_index_];
      from_near = false;
    } else if (have_near) {
      cand = &near_.front();
      from_near = true;
    } else {
      if (future_.empty()) return false;
      build_run();
      continue;
    }

    Slot& s = slot(cand->slot);
    if (s.gen != cand->gen) {  // cancelled; entry is stale
      --stale_;
      if (from_near) {
        near_pop_top();
      } else {
        ++run_index_;
      }
      continue;
    }
    if (cand->at > limit) return false;

    const Entry e = *cand;
    if (from_near) {
      near_pop_top();
    } else {
      ++run_index_;
    }
    now_ = e.at;
    ++s.gen;  // no longer cancellable: it fires now
    ++executed_;
    // Invoke in place — slot addresses are stable (chunked storage), and the
    // slot cannot be recycled until it is pushed onto the freelist below, so
    // callbacks may schedule freely. The callable is destroyed only after it
    // returns, like the std::function it replaced.
    try {
      s.fn();
    } catch (...) {
      s.fn.reset();
      free_slots_.push_back(e.slot);
      throw;
    }
    s.fn.reset();
    free_slots_.push_back(e.slot);
    return true;
  }
}

void EventQueue::run_until(Seconds t_end) {
  while (pop_one(t_end)) {
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run_all() {
  constexpr Seconds kNoLimit = std::numeric_limits<Seconds>::infinity();
  while (pop_one(kNoLimit)) {
  }
}

// --- Small 4-ary min-heap for late arrivals inside the run window -----------
//
// Holds only events scheduled (after the current run was frozen) for times
// before the run boundary — typically zero-delay follow-ups. Stays tiny, so
// sift depth is 1-2 levels.

void EventQueue::near_push(const Entry& e) {
  near_.push_back(e);
  std::size_t i = near_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    const Entry& p = near_[parent];
    if (entry_less(p, e)) break;
    near_[i] = p;
    i = parent;
  }
  near_[i] = e;
}

void EventQueue::near_pop_top() {
  const std::size_t n = near_.size() - 1;
  if (n == 0) {
    near_.pop_back();
    return;
  }
  const Entry e = near_[n];
  near_.pop_back();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t end_child = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end_child; ++c) {
      if (entry_less(near_[c], near_[best])) best = c;
    }
    if (entry_less(e, near_[best])) break;
    near_[i] = near_[best];
    i = best;
  }
  near_[i] = e;
}

}  // namespace bng::net
