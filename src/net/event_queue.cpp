#include "net/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bng::net {

namespace {
constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
}

void EventQueue::grow_slots() { chunks_.push_back(std::make_unique<Slot[]>(kChunkSize)); }

bool EventQueue::cancel(std::uint64_t id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= num_slots_) return false;
  Slot& s = slot(idx);
  if (s.gen != gen || !s.fn) return false;
  // Lazy deletion: invalidate the slot; the queue entry dies when it
  // surfaces (pop, bucket freeze, or compaction).
  ++s.gen;
  s.fn.reset();
  free_slots_.push_back(idx);
  ++stale_;
  return true;
}

void EventQueue::route_overflow(const Entry& e) {
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), entry_greater);
}

const EventQueue::Entry* EventQueue::overflow_top() {
  while (!overflow_.empty()) {
    const Entry& t = overflow_.front();
    if (slot(t.slot).gen == t.gen) return &t;
    std::pop_heap(overflow_.begin(), overflow_.end(), entry_greater);
    overflow_.pop_back();
    --stale_;
  }
  return nullptr;
}

bool EventQueue::epoch_restart() {
  // Pop a bounded sorted batch off the overflow heap. Its span is exactly
  // the future the next epoch must cover, so the width tunes itself to the
  // observed inter-event gap — a median-based estimate, so one far outlier
  // cannot flatten the calendar.
  scratch_.clear();
  const std::size_t cap =
      static_cast<std::size_t>(kBuckets) * static_cast<std::size_t>(kTargetPerBucket);
  while (scratch_.size() < cap) {
    const Entry* top = overflow_top();
    if (top == nullptr) break;
    scratch_.push_back(*top);
    std::pop_heap(overflow_.begin(), overflow_.end(), entry_greater);
    overflow_.pop_back();
  }
  if (scratch_.empty()) return false;
  const Seconds mn = scratch_.front().at;
  const std::size_t mid = scratch_.size() / 2;
  double gap = mid > 0 ? (scratch_[mid].at - mn) / static_cast<double>(mid) : 0.0;
  if (gap <= 0 && scratch_.size() > 1) {
    gap = (scratch_.back().at - mn) / static_cast<double>(scratch_.size() - 1);
  }
  if (gap > 0) {
    double w = gap * kTargetPerBucket;
    if (w < kMinWidth) w = kMinWidth;
    if (w > kMaxWidth) w = kMaxWidth;
    width_ = w;
    inv_width_ = 1.0 / w;
  }
  origin_ = mn;
  cur_bucket_ = -1;
  // Batch entries past the new window (median tuning can leave a tail) fall
  // straight back into the overflow heap; the minimum lands in bucket 0, so
  // the restart always makes progress.
  for (const Entry& e : scratch_) route(e);
  return true;
}

void EventQueue::sweep_stale() {
  for (auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    std::size_t kept = 0;
    for (const Entry& e : bucket) {
      if (slot(e.slot).gen == e.gen) {
        bucket[kept++] = e;
      } else {
        --stale_;
        --ring_count_;
      }
    }
    bucket.resize(kept);
  }
  std::size_t kept = 0;
  for (const Entry& e : overflow_) {
    if (slot(e.slot).gen != e.gen) {
      --stale_;
      continue;
    }
    overflow_[kept++] = e;
  }
  overflow_.resize(kept);
  std::make_heap(overflow_.begin(), overflow_.end(), entry_greater);
}

void EventQueue::build_run() {
  run_.clear();
  run_index_ = 0;
  // When mostly tombstones (mass cancellation), one compaction sweep beats
  // freezing buckets of the dead repeatedly.
  if (stale_ >= kMinSweep && stale_ >= (ring_count_ + overflow_.size()) / 2) sweep_stale();
  for (;;) {
    if (ring_count_ == 0) {
      if (overflow_.empty()) return;  // queue fully drained
      if (!epoch_restart()) return;   // overflow was all tombstones
      continue;
    }
    std::int64_t b = cur_bucket_ + 1;
    while (buckets_[ring_slot(b)].empty()) ++b;  // ring_count_ > 0 bounds this
    // Overflow entries whose bucket is at or before b must merge in before
    // the window passes them; the heap surfaces exactly the matured ones.
    bool merged = false;
    while (const Entry* top = overflow_top()) {
      if ((top->at - origin_) * inv_width_ >= static_cast<double>(b + 1)) break;
      const Entry e = *top;
      std::pop_heap(overflow_.begin(), overflow_.end(), entry_greater);
      overflow_.pop_back();
      route(e);  // lands in a ring bucket <= b's window
      merged = true;
    }
    if (merged) continue;  // merged entries may occupy an earlier bucket
    auto& bucket = buckets_[ring_slot(b)];
    cur_bucket_ = b;
    ring_count_ -= bucket.size();
    for (const Entry& e : bucket) {
      if (slot(e.slot).gen == e.gen) {
        run_.push_back(e);  // live
      } else {
        --stale_;
      }
    }
    bucket.clear();  // keeps capacity for the slot's next lap
    if (run_.empty()) continue;
    std::sort(run_.begin(), run_.end(), entry_less);
    return;
  }
}

bool EventQueue::pop_one(Seconds limit) {
  pop_limit_ = limit;
  for (;;) {
    const bool have_run = run_index_ < run_.size();
    const bool have_near = !near_.empty();
    const Entry* cand;
    bool from_near;
    if (have_run && (!have_near || entry_less(run_[run_index_], near_.front()))) {
      cand = &run_[run_index_];
      from_near = false;
    } else if (have_near) {
      cand = &near_.front();
      from_near = true;
    } else {
      if (ring_count_ == 0 && overflow_.empty()) return false;
      build_run();
      if (run_.empty()) return false;  // only tombstones remained
      continue;
    }

    Slot& s = slot(cand->slot);
    if (s.gen != cand->gen) {  // cancelled; entry is stale
      --stale_;
      if (from_near) {
        near_pop_top();
      } else {
        ++run_index_;
      }
      continue;
    }
    if (cand->at > limit) return false;

    const Entry e = *cand;
    if (from_near) {
      near_pop_top();
    } else {
      ++run_index_;
    }
    now_ = e.at;
    ++s.gen;  // no longer cancellable: it fires now
    ++executed_;
    // Invoke in place — slot addresses are stable (chunked storage), and the
    // slot cannot be recycled until it is pushed onto the freelist below, so
    // callbacks may schedule freely. The callable is destroyed only after it
    // returns, like the std::function it replaced.
    try {
      s.fn();
    } catch (...) {
      s.fn.reset();
      free_slots_.push_back(e.slot);
      throw;
    }
    s.fn.reset();
    free_slots_.push_back(e.slot);
    return true;
  }
}

bool EventQueue::consume_if_next(std::uint64_t id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  // Mirror of pop_one's selection loop: surface the earliest live entry,
  // retiring tombstones on the way, and consume it only if it is `id`.
  for (;;) {
    const bool have_run = run_index_ < run_.size();
    const bool have_near = !near_.empty();
    const Entry* cand;
    bool from_near;
    if (have_run && (!have_near || entry_less(run_[run_index_], near_.front()))) {
      cand = &run_[run_index_];
      from_near = false;
    } else if (have_near) {
      cand = &near_.front();
      from_near = true;
    } else {
      if (ring_count_ == 0 && overflow_.empty()) return false;
      build_run();
      if (run_.empty()) return false;
      continue;
    }

    Slot& s = slot(cand->slot);
    if (s.gen != cand->gen) {
      --stale_;
      if (from_near) {
        near_pop_top();
      } else {
        ++run_index_;
      }
      continue;
    }
    if (cand->slot != idx || cand->gen != gen) return false;
    if (cand->at > pop_limit_) return false;

    const Entry e = *cand;
    if (from_near) {
      near_pop_top();
    } else {
      ++run_index_;
    }
    now_ = e.at;
    ++s.gen;
    ++executed_;
    s.fn.reset();  // the caller runs the work inline; the callback never fires
    free_slots_.push_back(e.slot);
    return true;
  }
}

void EventQueue::run_until(Seconds t_end) {
  while (pop_one(t_end)) {
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run_all() {
  while (pop_one(kInf)) {
  }
}

Seconds EventQueue::next_time_bound() const {
  Seconds bound = kInf;
  if (run_index_ < run_.size()) bound = std::min(bound, run_[run_index_].at);
  if (!near_.empty()) bound = std::min(bound, near_.front().at);
  if (ring_count_ > 0) {
    // First non-empty ring bucket; its entries' minimum `at` is exact (the
    // routing map is monotone, so no earlier entry can sit in a later
    // bucket). Stale tombstones may lower the bound — still a lower bound.
    for (std::int64_t b = cur_bucket_ + 1; b <= cur_bucket_ + kBuckets; ++b) {
      const std::vector<Entry>& bucket = buckets_[ring_slot(b)];
      if (bucket.empty()) continue;
      Seconds m = bucket.front().at;
      for (const Entry& e : bucket) m = std::min(m, e.at);
      bound = std::min(bound, m);
      break;
    }
  }
  if (!overflow_.empty()) bound = std::min(bound, overflow_.front().at);
  return std::max(bound, now_);
}

// --- Small 4-ary min-heap for arrivals behind the consuming bucket ----------
//
// Holds only events scheduled (after their bucket was frozen) for times at
// or before the current bucket window — typically zero-delay follow-ups.
// Stays tiny, so sift depth is 1-2 levels.

void EventQueue::near_push(const Entry& e) {
  near_.push_back(e);
  std::size_t i = near_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    const Entry& p = near_[parent];
    if (entry_less(p, e)) break;
    near_[i] = p;
    i = parent;
  }
  near_[i] = e;
}

void EventQueue::near_pop_top() {
  const std::size_t n = near_.size() - 1;
  if (n == 0) {
    near_.pop_back();
    return;
  }
  const Entry e = near_[n];
  near_.pop_back();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t end_child = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end_child; ++c) {
      if (entry_less(near_[c], near_[best])) best = c;
    }
    if (entry_less(e, near_[best])) break;
    near_[i] = near_[best];
    i = best;
  }
  near_[i] = e;
}

}  // namespace bng::net
