#include "net/event_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace bng::net {

std::uint64_t EventQueue::schedule_at(Seconds at, Callback fn) {
  if (at < now_) throw std::invalid_argument("EventQueue: cannot schedule in the past");
  std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(std::uint64_t id) { return callbacks_.erase(id) > 0; }

bool EventQueue::pop_one() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    now_ = top.at;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    heap_.pop();
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void EventQueue::run_until(Seconds t_end) {
  while (!heap_.empty() && heap_.top().at <= t_end) {
    if (!pop_one()) break;
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run_all() {
  while (pop_one()) {
  }
}

}  // namespace bng::net
