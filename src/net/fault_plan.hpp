// Declarative, scheduled network faults.
//
// A FaultPlan is the *description* of a fault schedule — timed partitions,
// per-edge extra delay windows, single-node eclipses. schedule_faults()
// turns it into event-queue entries that mutate the Network's per-edge state
// at the right times (see the fault-mechanism section of net/network.hpp):
// the hot send path never learns faults exist, and an empty plan schedules
// nothing at all — zero events, zero allocations, byte-identical behaviour.
//
// Semantics:
//  * Partition: every edge between `group` and its complement drops sends
//    in both directions during [at, heal_at). Messages already in flight
//    when the cut lands still arrive.
//  * LinkDelay: both directions of (a, b) gain `extra` seconds of
//    propagation latency during [at, until). Applies to sends issued inside
//    the window.
//  * Eclipse: all edges incident to `node` drop sends in both directions
//    during [at, heal_at) — the node is isolated but alive (unlike
//    set_offline, which models churn by dropping at the node itself).
//
// Overlapping faults compose: edge blocking is a depth counter, so a
// partition and an eclipse covering the same edge heal independently.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"

namespace bng::net {

class Network;

struct FaultPlan {
  struct Partition {
    Seconds at = 0;
    Seconds heal_at = 0;  ///< heal_at <= at means "never heals within the run"
    std::vector<NodeId> group;
  };

  struct LinkDelay {
    Seconds at = 0;
    Seconds until = 0;  ///< until <= at means the delay is permanent
    NodeId a = 0;
    NodeId b = 0;
    Seconds extra = 0;
  };

  struct Eclipse {
    Seconds at = 0;
    Seconds heal_at = 0;  ///< heal_at <= at means "never heals within the run"
    NodeId node = 0;
  };

  std::vector<Partition> partitions;
  std::vector<LinkDelay> link_delays;
  std::vector<Eclipse> eclipses;

  [[nodiscard]] bool empty() const {
    return partitions.empty() && link_delays.empty() && eclipses.empty();
  }
};

/// One fault transition as data: what to do and when. The parallel engine
/// applies these at window barriers (global state mutations must not race
/// shard execution); the serial engine schedules them as plain events.
struct TimedMutation {
  Seconds at = 0;
  /// True for transitions that change an edge latency — the parallel engine
  /// must re-derive its conservative lookahead after applying one.
  bool affects_latency = false;
  std::function<void()> apply;
};

/// Validate `plan` (same checks as schedule_faults) and return its
/// transitions in the exact order schedule_faults would schedule them:
/// per-partition cut then heal, per-delay apply then revert, per-eclipse
/// set then heal. NOT sorted by time — callers needing time order must
/// stable_sort on `at`, which preserves the schedule order among equal
/// times (what the serial engine's (at, seq) order would do).
std::vector<TimedMutation> collect_faults(Network& net, const FaultPlan& plan);

/// Schedule every fault transition of `plan` on the network's event queue.
/// Validates eagerly (throws std::invalid_argument) so a bad plan fails at
/// build time, not mid-run: node ids, edge existence, and negative-delay
/// extras are checked here; only delay windows that overlap on the same
/// edge can still be rejected at fire time (atomically, by
/// Network::add_edge_latency). An empty plan is a no-op.
void schedule_faults(Network& net, const FaultPlan& plan);

}  // namespace bng::net
