// Random peer-to-peer overlay topology.
//
// Paper §7: "we construct a random network by connecting each node to at
// least 5 other nodes, chosen uniformly at random". Edges are undirected; a
// node's degree can exceed the minimum because other nodes choose it too.
//
// For 10k+-node scaling runs the flat uniform graph stops being internet-
// like (its diameter collapses and every edge gets the same latency
// distribution), so clustered() builds a two-level overlay: dense
// uniform-random clusters (think regions/ASes) joined by a trunk ring plus
// random chords, with cluster membership exposed so the Network can assign
// short intra-cluster and long cross-cluster latencies per edge.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace bng::net {

class Topology {
 public:
  /// Build a random topology over `n` nodes with `min_degree` outbound picks
  /// per node. Guaranteed connected (components are stitched if necessary,
  /// which for n >> min_degree is a vanishingly rare fallback).
  static Topology random(std::uint32_t n, std::uint32_t min_degree, Rng& rng);

  /// A fully connected graph (testing / idealized analyses).
  static Topology complete(std::uint32_t n);

  /// A line topology 0-1-2-...-n-1 (worst-case diameter; for tests).
  static Topology line(std::uint32_t n);

  /// Two-level internet-like overlay: `clusters` contiguous blocks of nodes,
  /// each an independent uniform-random graph with `min_degree` outbound
  /// picks per node, joined by `trunks` random edges between each adjacent
  /// cluster pair on a ring plus `trunks` random chord edges across
  /// non-adjacent pairs. Guaranteed connected. cluster_of() reports the
  /// block a node landed in, so latency assignment can distinguish
  /// intra-cluster from cross-cluster edges.
  static Topology clustered(std::uint32_t n, std::uint32_t clusters,
                            std::uint32_t min_degree, std::uint32_t trunks, Rng& rng);

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] const std::vector<NodeId>& peers(NodeId node) const {
    return adjacency_[node];
  }
  [[nodiscard]] std::size_t num_edges() const;

  [[nodiscard]] bool connected() const;

  /// Longest shortest-path (hop) distance from `from` to any node; BFS.
  [[nodiscard]] std::uint32_t eccentricity(NodeId from) const;

  /// Are a and b direct neighbours?
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  /// Cluster of `node`. Flat topologies are one big cluster 0.
  [[nodiscard]] std::uint32_t cluster_of(NodeId node) const {
    return cluster_.empty() ? 0 : cluster_[node];
  }
  [[nodiscard]] std::uint32_t num_clusters() const { return num_clusters_; }

 private:
  void add_edge(NodeId a, NodeId b);
  void stitch_components();

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::uint32_t> cluster_;  ///< empty for flat topologies
  std::uint32_t num_clusters_ = 1;
};

}  // namespace bng::net
