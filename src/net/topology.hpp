// Random peer-to-peer overlay topology.
//
// Paper §7: "we construct a random network by connecting each node to at
// least 5 other nodes, chosen uniformly at random". Edges are undirected; a
// node's degree can exceed the minimum because other nodes choose it too.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace bng::net {

class Topology {
 public:
  /// Build a random topology over `n` nodes with `min_degree` outbound picks
  /// per node. Guaranteed connected (components are stitched if necessary,
  /// which for n >> min_degree is a vanishingly rare fallback).
  static Topology random(std::uint32_t n, std::uint32_t min_degree, Rng& rng);

  /// A fully connected graph (testing / idealized analyses).
  static Topology complete(std::uint32_t n);

  /// A line topology 0-1-2-...-n-1 (worst-case diameter; for tests).
  static Topology line(std::uint32_t n);

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }
  [[nodiscard]] const std::vector<NodeId>& peers(NodeId node) const {
    return adjacency_[node];
  }
  [[nodiscard]] std::size_t num_edges() const;

  [[nodiscard]] bool connected() const;

  /// Longest shortest-path (hop) distance from `from` to any node; BFS.
  [[nodiscard]] std::uint32_t eccentricity(NodeId from) const;

  /// Are a and b direct neighbours?
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

 private:
  void add_edge(NodeId a, NodeId b);

  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace bng::net
