#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace bng::net {

Topology Topology::random(std::uint32_t n, std::uint32_t min_degree, Rng& rng) {
  if (n < 2) throw std::invalid_argument("Topology: need at least 2 nodes");
  if (min_degree >= n) throw std::invalid_argument("Topology: min_degree >= n");
  Topology topo;
  topo.adjacency_.resize(n);
  for (NodeId a = 0; a < n; ++a) {
    std::uint32_t attempts = 0;
    while (topo.adjacency_[a].size() < min_degree && attempts < 100 * min_degree) {
      ++attempts;
      NodeId b = static_cast<NodeId>(rng.next_below(n));
      if (b == a || topo.has_edge(a, b)) continue;
      topo.add_edge(a, b);
    }
  }
  topo.stitch_components();
  return topo;
}

Topology Topology::clustered(std::uint32_t n, std::uint32_t clusters,
                             std::uint32_t min_degree, std::uint32_t trunks, Rng& rng) {
  if (clusters < 2) return random(n, min_degree, rng);
  if (n < 2 * clusters)
    throw std::invalid_argument("Topology: need at least 2 nodes per cluster");
  Topology topo;
  topo.adjacency_.resize(n);
  topo.cluster_.resize(n);
  topo.num_clusters_ = clusters;

  // Contiguous blocks: cluster c owns [begin[c], begin[c+1]).
  std::vector<std::uint32_t> begin(clusters + 1);
  for (std::uint32_t c = 0; c <= clusters; ++c)
    begin[c] = static_cast<std::uint32_t>(static_cast<std::uint64_t>(n) * c / clusters);
  for (std::uint32_t c = 0; c < clusters; ++c)
    for (NodeId v = begin[c]; v < begin[c + 1]; ++v) topo.cluster_[v] = c;

  // Dense intra-cluster graphs, same uniform-pick rule as random().
  for (NodeId a = 0; a < n; ++a) {
    const std::uint32_t c = topo.cluster_[a];
    const std::uint32_t lo = begin[c];
    const std::uint32_t size = begin[c + 1] - lo;
    const std::uint32_t want = std::min(min_degree, size - 1);
    std::uint32_t attempts = 0;
    while (topo.adjacency_[a].size() < want && attempts < 100 * min_degree + 100) {
      ++attempts;
      NodeId b = lo + static_cast<NodeId>(rng.next_below(size));
      if (b == a || topo.has_edge(a, b)) continue;
      topo.add_edge(a, b);
    }
  }

  // Trunk ring: `trunks` random edges between each adjacent cluster pair.
  auto pick_in = [&](std::uint32_t c) {
    return begin[c] + static_cast<NodeId>(rng.next_below(begin[c + 1] - begin[c]));
  };
  const std::uint32_t ring_pairs = clusters == 2 ? 1 : clusters;
  for (std::uint32_t c = 0; c < ring_pairs; ++c) {
    const std::uint32_t d = (c + 1) % clusters;
    for (std::uint32_t t = 0; t < trunks; ++t) {
      const NodeId a = pick_in(c);
      const NodeId b = pick_in(d);
      if (!topo.has_edge(a, b)) topo.add_edge(a, b);
    }
  }
  // Random chords shortcut the ring, like long-haul peerings do.
  if (clusters > 2) {
    for (std::uint32_t t = 0; t < trunks; ++t) {
      const std::uint32_t c = static_cast<std::uint32_t>(rng.next_below(clusters));
      const std::uint32_t d = static_cast<std::uint32_t>(rng.next_below(clusters));
      if (c == d) continue;
      const NodeId a = pick_in(c);
      const NodeId b = pick_in(d);
      if (!topo.has_edge(a, b)) topo.add_edge(a, b);
    }
  }

  topo.stitch_components();
  return topo;
}

void Topology::stitch_components() {
  // Stitch components if the graph happens to be disconnected.
  const std::uint32_t n = num_nodes();
  std::vector<std::uint32_t> component(n, UINT32_MAX);
  std::uint32_t num_components = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] != UINT32_MAX) continue;
    std::uint32_t c = num_components++;
    std::queue<NodeId> frontier;
    frontier.push(start);
    component[start] = c;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : adjacency_[u]) {
        if (component[v] == UINT32_MAX) {
          component[v] = c;
          frontier.push(v);
        }
      }
    }
  }
  if (num_components > 1) {
    // Connect a representative of each extra component to component 0.
    std::vector<NodeId> rep(num_components, kNoNode);
    for (NodeId v = 0; v < n; ++v)
      if (rep[component[v]] == kNoNode) rep[component[v]] = v;
    for (std::uint32_t c = 1; c < num_components; ++c) add_edge(rep[0], rep[c]);
  }
}

Topology Topology::complete(std::uint32_t n) {
  Topology topo;
  topo.adjacency_.resize(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b) topo.add_edge(a, b);
  return topo;
}

Topology Topology::line(std::uint32_t n) {
  Topology topo;
  topo.adjacency_.resize(n);
  for (NodeId a = 0; a + 1 < n; ++a) topo.add_edge(a, a + 1);
  return topo;
}

void Topology::add_edge(NodeId a, NodeId b) {
  assert(a != b);
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::size_t Topology::num_edges() const {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

bool Topology::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == adjacency_.size();
}

std::uint32_t Topology::eccentricity(NodeId from) const {
  std::vector<std::uint32_t> dist(adjacency_.size(), UINT32_MAX);
  std::queue<NodeId> frontier;
  frontier.push(from);
  dist[from] = 0;
  std::uint32_t max_dist = 0;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        max_dist = std::max(max_dist, dist[v]);
        frontier.push(v);
      }
    }
  }
  return max_dist;
}

}  // namespace bng::net
