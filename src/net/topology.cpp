#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace bng::net {

Topology Topology::random(std::uint32_t n, std::uint32_t min_degree, Rng& rng) {
  if (n < 2) throw std::invalid_argument("Topology: need at least 2 nodes");
  if (min_degree >= n) throw std::invalid_argument("Topology: min_degree >= n");
  Topology topo;
  topo.adjacency_.resize(n);
  for (NodeId a = 0; a < n; ++a) {
    std::uint32_t attempts = 0;
    while (topo.adjacency_[a].size() < min_degree && attempts < 100 * min_degree) {
      ++attempts;
      NodeId b = static_cast<NodeId>(rng.next_below(n));
      if (b == a || topo.has_edge(a, b)) continue;
      topo.add_edge(a, b);
    }
  }
  // Stitch components if the graph happens to be disconnected.
  std::vector<std::uint32_t> component(n, UINT32_MAX);
  std::uint32_t num_components = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] != UINT32_MAX) continue;
    std::uint32_t c = num_components++;
    std::queue<NodeId> frontier;
    frontier.push(start);
    component[start] = c;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : topo.adjacency_[u]) {
        if (component[v] == UINT32_MAX) {
          component[v] = c;
          frontier.push(v);
        }
      }
    }
  }
  if (num_components > 1) {
    // Connect a random representative of each extra component to component 0.
    std::vector<NodeId> rep(num_components, kNoNode);
    for (NodeId v = 0; v < n; ++v)
      if (rep[component[v]] == kNoNode) rep[component[v]] = v;
    for (std::uint32_t c = 1; c < num_components; ++c) topo.add_edge(rep[0], rep[c]);
  }
  return topo;
}

Topology Topology::complete(std::uint32_t n) {
  Topology topo;
  topo.adjacency_.resize(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b) topo.add_edge(a, b);
  return topo;
}

Topology Topology::line(std::uint32_t n) {
  Topology topo;
  topo.adjacency_.resize(n);
  for (NodeId a = 0; a + 1 < n; ++a) topo.add_edge(a, a + 1);
  return topo;
}

void Topology::add_edge(NodeId a, NodeId b) {
  assert(a != b);
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::size_t Topology::num_edges() const {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

bool Topology::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push(v);
      }
    }
  }
  return count == adjacency_.size();
}

std::uint32_t Topology::eccentricity(NodeId from) const {
  std::vector<std::uint32_t> dist(adjacency_.size(), UINT32_MAX);
  std::queue<NodeId> frontier;
  frontier.push(from);
  dist[from] = 0;
  std::uint32_t max_dist = 0;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        max_dist = std::max(max_dist, dist[v]);
        frontier.push(v);
      }
    }
  }
  return max_dist;
}

}  // namespace bng::net
