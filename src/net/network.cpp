#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bng::net {

Network::Network(EventQueue& queue, const Topology& topology, const LatencyModel& latency,
                 LinkParams params, Rng& rng, const LatencyModel* intra)
    : queue_(queue),
      topology_(topology),
      params_(params),
      interner_(std::make_shared<BlockInterner>()),
      node_state_(std::make_shared<NodeStateArena>(topology.num_nodes())) {
  const std::uint32_t n = topology_.num_nodes();
  handlers_.resize(n, nullptr);
  offline_.resize(n, false);

  // CSR rows, sorted by peer id so find_edge is a short binary search over
  // contiguous memory.
  offset_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    offset_[v + 1] = offset_[v] + static_cast<std::uint32_t>(topology_.peers(v).size());
  row_sorted_.resize(offset_[n]);
  edge_from_.resize(offset_[n]);
  for (NodeId v = 0; v < n; ++v) {
    const auto& adj = topology_.peers(v);
    std::copy(adj.begin(), adj.end(), row_sorted_.begin() + offset_[v]);
    std::sort(row_sorted_.begin() + offset_[v], row_sorted_.begin() + offset_[v + 1]);
    std::fill(edge_from_.begin() + offset_[v], edge_from_.begin() + offset_[v + 1], v);
  }
  latency_.resize(offset_[n], 0);
  busy_until_.resize(offset_[n], 0);
  fifo_.resize(offset_[n]);
  blocked_.resize(offset_[n], 0);
  direct_.resize(offset_[n], 0);
  last_arrival_.resize(offset_[n], 0);

  // Draw a symmetric latency per undirected edge, once, like the paper's
  // fixed per-pair assignment. Iteration order matches the pre-CSR
  // implementation so a given rng yields the identical assignment.
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : topology_.peers(a)) {
      if (a < b) {
        // Clustered overlays give same-cluster edges the short-haul model;
        // with intra unset this selects `latency` unconditionally and the
        // draw sequence matches the flat implementation exactly.
        const LatencyModel& model =
            (intra != nullptr && topology_.cluster_of(a) == topology_.cluster_of(b))
                ? *intra
                : latency;
        const Seconds sample = model.sample(rng);
        latency_[find_edge(a, b)] = sample;
        latency_[find_edge(b, a)] = sample;
      }
    }
  }

  // Single-shard identity mapping until configure_shards() says otherwise.
  queues_ = {&queue_};
  shard_of_.assign(n, 0);
  counters_.assign(1, ShardCounters{});
}

void Network::configure_shards(std::vector<EventQueue*> queues,
                               std::vector<std::uint32_t> shard_of) {
  if (queues.empty() || queues[0] != &queue_)
    throw std::invalid_argument(
        "Network::configure_shards: queues[0] must be the construction queue");
  if (shard_of.size() != topology_.num_nodes())
    throw std::invalid_argument("Network::configure_shards: shard_of size mismatch");
  for (std::size_t i = 1; i < shard_of.size(); ++i) {
    if (shard_of[i] < shard_of[i - 1])
      throw std::invalid_argument(
          "Network::configure_shards: shard ids must be non-decreasing");
  }
  if (!shard_of.empty() && shard_of.back() + 1 != queues.size())
    throw std::invalid_argument(
        "Network::configure_shards: queue count does not match shard count");
  if (messages_sent() != 0)
    throw std::logic_error("Network::configure_shards: traffic already sent");
  queues_ = std::move(queues);
  shard_of_ = std::move(shard_of);
  num_shards_ = static_cast<std::uint32_t>(queues_.size());
  lanes_.assign(static_cast<std::size_t>(num_shards_) * num_shards_, {});
  lane_seq_.assign(lanes_.size(), 0);
  counters_.assign(num_shards_, ShardCounters{});
  node_state_->set_shards(shard_of_);
  lookahead_dirty_ = true;
}

Seconds Network::conservative_lookahead() {
  if (!lookahead_dirty_) return lookahead_;
  lookahead_dirty_ = false;
  Seconds min_lat = std::numeric_limits<Seconds>::infinity();
  if (num_shards_ > 1) {
    for (std::uint32_t e = 0; e < latency_.size(); ++e) {
      if (shard_of_[edge_from_[e]] != shard_of_[row_sorted_[e]])
        min_lat = std::min(min_lat, latency_[e]);
    }
  }
  // Even a zero-latency edge cannot deliver instantly: the per-message
  // overhead bytes alone occupy the link for a strictly positive transfer
  // time, so the lookahead stays > 0 and windows always make progress.
  const Seconds min_transfer = static_cast<double>(params_.per_message_overhead_bytes) *
                               8.0 / params_.bandwidth_bps;
  lookahead_ = std::isinf(min_lat) ? min_lat : min_lat + min_transfer;
  return lookahead_;
}

void Network::flush_lanes() {
  if (num_shards_ <= 1) return;
  lane_scratch_.clear();
  for (std::vector<LaneMsg>& lane : lanes_) {
    for (LaneMsg& m : lane) lane_scratch_.push_back(std::move(m));
    lane.clear();
  }
  if (lane_scratch_.empty()) return;
  // (arrival, src shard, lane seq) reproduces the serial engine's execution
  // order: distinct-source arrival ties are measure-zero (latencies are
  // drawn from continuous distributions), and same-edge ties — which the
  // healing-delay FIFO clamp CAN produce — sit in one lane, where lane_seq
  // is exactly the serial send (hence schedule) order. The edge tiebreak
  // only makes the sort total; it never decides a real workload.
  std::sort(lane_scratch_.begin(), lane_scratch_.end(),
            [this](const LaneMsg& a, const LaneMsg& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              const std::uint32_t sa = shard_of_[edge_from_[a.edge]];
              const std::uint32_t sb = shard_of_[edge_from_[b.edge]];
              if (sa != sb) return sa < sb;
              if (a.lane_seq != b.lane_seq) return a.lane_seq < b.lane_seq;
              return a.edge < b.edge;
            });
  for (LaneMsg& m : lane_scratch_) {
    EventQueue& q = *queues_[shard_of_[row_sorted_[m.edge]]];
    q.schedule_at(m.arrival, DeliverLane{this, m.edge, std::move(m.msg)});
  }
  lane_scratch_.clear();
}

std::size_t Network::lane_backlog() const {
  std::size_t total = 0;
  for (const std::vector<LaneMsg>& lane : lanes_) total += lane.size();
  return total;
}

std::uint32_t Network::find_edge(NodeId from, NodeId to) const {
  if (from >= topology_.num_nodes()) return kNoEdge;
  const std::uint32_t lo = offset_[from];
  const std::uint32_t hi = offset_[from + 1];
  // Rows are short (min_degree ~5, so ~10 on average): a linear scan over
  // one or two cache lines beats a branchy binary search.
  if (hi - lo <= 32) {
    for (std::uint32_t i = lo; i < hi; ++i) {
      if (row_sorted_[i] == to) return i;
    }
    return kNoEdge;
  }
  const auto row_begin = row_sorted_.begin() + lo;
  const auto row_end = row_sorted_.begin() + hi;
  const auto it = std::lower_bound(row_begin, row_end, to);
  if (it == row_end || *it != to) return kNoEdge;
  return static_cast<std::uint32_t>(it - row_sorted_.begin());
}

void Network::attach(NodeId node, INode* handler) {
  if (node >= handlers_.size()) throw std::out_of_range("Network::attach: bad node id");
  handlers_[node] = handler;
}

Seconds Network::edge_latency(NodeId a, NodeId b) const {
  const std::uint32_t e = find_edge(a, b);
  if (e == kNoEdge) throw std::invalid_argument("Network: no such edge");
  return latency_[e];
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  const std::uint32_t e = find_edge(from, to);
  if (e == kNoEdge) throw std::invalid_argument("Network::send: nodes are not neighbours");
  if (offline_[from] || offline_[to] || blocked_[e] != 0) return;

  const std::uint32_t shard = shard_of_[from];
  ShardCounters& c = counters_[shard];
  EventQueue& q = *queues_[shard];

  const std::size_t wire_bytes = msg->wire_size() + params_.per_message_overhead_bytes;
  c.bytes_sent += wire_bytes;
  ++c.messages_sent;

  // Store-and-forward over a serialized directed link.
  const Seconds transfer = static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  const Seconds start = std::max(q.now(), busy_until_[e]);
  const Seconds done_sending = start + transfer;
  busy_until_[e] = done_sending;
  Seconds arrival = done_sending + latency_[e];

  ++c.in_flight;
  if (shard_of_[to] != shard) {
    // Cross-shard: identical arrival arithmetic (busy horizon above, FIFO
    // clamp below — a no-op for an idle link, exactly as on the direct
    // path), but the message rides a (src,dst) lane to the next barrier
    // instead of an event. Link state for this directed edge is owned by
    // the sending shard, so no lock is needed.
    arrival = std::max(arrival, last_arrival_[e]);
    last_arrival_[e] = arrival;
    ++c.lane_messages;
    const std::size_t lane =
        static_cast<std::size_t>(shard) * num_shards_ + shard_of_[to];
    lanes_[lane].push_back(LaneMsg{arrival, lane_seq_[lane]++, e, std::move(msg)});
    return;
  }

  // Event train: only the idle->busy transition touches the event queue; a
  // busy link just grows its FIFO (delivery re-arms on pop).
  LinkFifo& f = fifo_[e];
  const bool idle = direct_[e] == 0 && f.empty();
  if (idle) {
    // Idle-link fast path: no FIFO round-trip — the delivery event carries
    // the message. Scheduled at the same time with the same seq the
    // FIFO-head event would have had, so runs replay identically.
    ++c.active_links;
    direct_[e] = 1;
    last_arrival_[e] = arrival;
    q.schedule_at(arrival, DeliverDirect{this, e, std::move(msg)});
    return;
  }
  // A link delivers in order. With constant latency arrivals are naturally
  // monotone; a mid-flight latency *decrease* (a healing fault window) would
  // let a later message compute an earlier arrival, so clamp to the link's
  // latest arrival — head-of-line blocking, exactly what store-and-forward
  // does.
  arrival = std::max(arrival, last_arrival_[e]);
  last_arrival_[e] = arrival;
  f.q.push_back(InFlight{arrival, std::move(msg)});
}

void Network::dispatch(std::uint32_t e, const MessagePtr& msg) {
  const NodeId to = row_sorted_[e];
  if (offline_[to]) return;
  INode* handler = handlers_[to];
  if (handler == nullptr) throw std::logic_error("Network: message for unattached node");
  handler->on_message(edge_from_[e], msg);
}

void Network::deliver_direct(std::uint32_t e, const MessagePtr& msg) {
  // Intra-shard edge: src and dst share a shard, so either endpoint names
  // the owning queue/counters.
  const std::uint32_t shard = shard_of_[row_sorted_[e]];
  ShardCounters& c = counters_[shard];
  EventQueue& q = *queues_[shard];
  LinkFifo& f = fifo_[e];
  --c.in_flight;
  direct_[e] = 0;
  ++c.direct_deliveries;
  std::uint64_t rearm = 0;
  if (f.empty()) {
    --c.active_links;
  } else {
    // Messages queued up behind the direct flight: re-arm before delivering
    // (see drain_train for the ordering discipline).
    rearm = q.schedule_at(f.q[f.head].arrival, DeliverHead{this, e});
  }
  dispatch(e, msg);
  if (rearm != 0 && q.consume_if_next(rearm)) {
    ++c.burst_drained;
    drain_train(e);
  }
}

void Network::deliver_lane(std::uint32_t e, const MessagePtr& msg) {
  --counters_[shard_of_[row_sorted_[e]]].in_flight;
  dispatch(e, msg);
}

void Network::drain_train(std::uint32_t e) {
  const std::uint32_t shard = shard_of_[row_sorted_[e]];
  ShardCounters& c = counters_[shard];
  EventQueue& q = *queues_[shard];
  for (;;) {
    LinkFifo& f = fifo_[e];
    MessagePtr msg = std::move(f.q[f.head].msg);
    ++f.head;
    --c.in_flight;
    std::uint64_t rearm = 0;
    if (f.empty()) {
      f.q.clear();
      f.head = 0;
      --c.active_links;
    } else {
      // Compact the delivered prefix once it dominates the vector, so a link
      // that never fully drains holds O(in-flight) slots, not O(total ever
      // sent). Amortized O(1) per message.
      if (f.head >= 64 && f.head * 2 >= f.q.size()) {
        f.q.erase(f.q.begin(), f.q.begin() + f.head);
        f.head = 0;
      }
      // Re-arm before delivering: keeps this link's next delivery ahead (in
      // schedule order) of any events the handler schedules now, matching
      // the per-message scheduling the train replaced.
      rearm = q.schedule_at(f.q[f.head].arrival, DeliverHead{this, e});
    }
    dispatch(e, msg);
    // Burst drain: if the event we just armed is the queue's next event,
    // nothing else in the simulation is due before it — consume it and keep
    // draining inline. consume_if_next advances time and the executed count
    // exactly as a pop would, and no callback runs between the two points,
    // so every later seq assignment (hence the digest) is unchanged.
    if (rearm == 0 || !q.consume_if_next(rearm)) return;
    ++c.burst_drained;
  }
}

void Network::set_offline(NodeId node, bool offline) { offline_[node] = offline; }

void Network::set_edge_blocked(NodeId a, NodeId b, bool blocked) {
  const std::uint32_t e = find_edge(a, b);
  if (e == kNoEdge) throw std::invalid_argument("Network: no such edge");
  if (blocked) {
    ++blocked_[e];
  } else {
    if (blocked_[e] == 0) throw std::logic_error("Network: unblocking an unblocked edge");
    --blocked_[e];
  }
}

bool Network::edge_blocked(NodeId a, NodeId b) const {
  const std::uint32_t e = find_edge(a, b);
  if (e == kNoEdge) throw std::invalid_argument("Network: no such edge");
  return blocked_[e] != 0;
}

void Network::set_partition(const std::vector<NodeId>& group, bool active) {
  std::vector<bool> in_group(topology_.num_nodes(), false);
  for (NodeId v : group) {
    if (v >= topology_.num_nodes())
      throw std::invalid_argument("Network::set_partition: unknown node");
    in_group[v] = true;
  }
  for (NodeId a = 0; a < topology_.num_nodes(); ++a) {
    if (!in_group[a]) continue;
    for (NodeId b : topology_.peers(a)) {
      if (in_group[b]) continue;
      set_edge_blocked(a, b, active);
      set_edge_blocked(b, a, active);
    }
  }
}

void Network::set_eclipsed(NodeId node, bool eclipsed) {
  if (node >= topology_.num_nodes())
    throw std::invalid_argument("Network::set_eclipsed: unknown node");
  for (NodeId peer : topology_.peers(node)) {
    set_edge_blocked(node, peer, eclipsed);
    set_edge_blocked(peer, node, eclipsed);
  }
}

void Network::add_edge_latency(NodeId a, NodeId b, Seconds delta) {
  const std::uint32_t e1 = find_edge(a, b);
  const std::uint32_t e2 = find_edge(b, a);
  if (e1 == kNoEdge || e2 == kNoEdge)
    throw std::invalid_argument("Network: no such edge");
  // Validate before writing: a rejected mutation must not leave one (or
  // both) directions changed.
  if (latency_[e1] + delta < 0 || latency_[e2] + delta < 0)
    throw std::invalid_argument("Network: edge latency would go negative");
  latency_[e1] += delta;
  latency_[e2] += delta;
  // A shrunk cross-shard latency shrinks the safe window: force the
  // parallel engine to re-derive its lookahead before the next window.
  lookahead_dirty_ = true;
}

}  // namespace bng::net
