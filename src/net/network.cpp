#include "net/network.hpp"

#include <stdexcept>

namespace bng::net {

Network::Network(EventQueue& queue, const Topology& topology, const LatencyModel& latency,
                 LinkParams params, Rng& rng)
    : queue_(queue), topology_(topology), params_(params) {
  handlers_.resize(topology_.num_nodes(), nullptr);
  offline_.resize(topology_.num_nodes(), false);
  // Draw a symmetric latency per undirected edge, once, like the paper's
  // fixed per-pair assignment.
  for (NodeId a = 0; a < topology_.num_nodes(); ++a) {
    for (NodeId b : topology_.peers(a)) {
      if (a < b) edge_latency_[edge_key(a, b)] = latency.sample(rng);
    }
  }
}

void Network::attach(NodeId node, INode* handler) {
  if (node >= handlers_.size()) throw std::out_of_range("Network::attach: bad node id");
  handlers_[node] = handler;
}

Seconds Network::edge_latency(NodeId a, NodeId b) const {
  auto it = edge_latency_.find(edge_key(a, b));
  if (it == edge_latency_.end()) throw std::invalid_argument("Network: no such edge");
  return it->second;
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  auto lat_it = edge_latency_.find(edge_key(from, to));
  if (lat_it == edge_latency_.end())
    throw std::invalid_argument("Network::send: nodes are not neighbours");
  if (offline_[from] || offline_[to]) return;

  const std::size_t wire_bytes = msg->wire_size() + params_.per_message_overhead_bytes;
  bytes_sent_ += wire_bytes;
  ++messages_sent_;

  // Store-and-forward over a serialized directed link.
  const Seconds transfer = static_cast<double>(wire_bytes) * 8.0 / params_.bandwidth_bps;
  Seconds& busy_until = link_busy_until_[directed_key(from, to)];
  const Seconds start = std::max(queue_.now(), busy_until);
  const Seconds done_sending = start + transfer;
  busy_until = done_sending;
  const Seconds arrival = done_sending + lat_it->second;

  queue_.schedule_at(arrival, [this, from, to, msg = std::move(msg)] {
    if (offline_[to]) return;
    INode* handler = handlers_[to];
    if (handler == nullptr) throw std::logic_error("Network: message for unattached node");
    handler->on_message(from, msg);
  });
}

void Network::set_offline(NodeId node, bool offline) { offline_[node] = offline; }

}  // namespace bng::net
