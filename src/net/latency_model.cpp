#include "net/latency_model.hpp"

#include <cassert>
#include <stdexcept>

namespace bng::net {

LatencyModel LatencyModel::default_internet() {
  // One-way delay histogram, long-tailed; weights sum to 1.
  return LatencyModel({
      {0.010, 0.040, 0.10},
      {0.040, 0.080, 0.25},
      {0.080, 0.120, 0.25},
      {0.120, 0.200, 0.20},
      {0.200, 0.350, 0.10},
      {0.350, 0.600, 0.07},
      {0.600, 1.500, 0.03},
  });
}

LatencyModel LatencyModel::intra_cluster() {
  // Regional one-way delays: mostly a few ms, occasional congested tail.
  return LatencyModel({
      {0.001, 0.005, 0.35},
      {0.005, 0.015, 0.40},
      {0.015, 0.040, 0.20},
      {0.040, 0.100, 0.05},
  });
}

LatencyModel LatencyModel::constant(Seconds latency) {
  return LatencyModel({{latency, latency, 1.0}});
}

LatencyModel::LatencyModel(std::vector<LatencyBucket> buckets) : buckets_(std::move(buckets)) {
  if (buckets_.empty()) throw std::invalid_argument("LatencyModel: no buckets");
  double total = 0;
  for (const auto& b : buckets_) {
    if (b.weight < 0 || b.hi < b.lo) throw std::invalid_argument("LatencyModel: bad bucket");
    total += b.weight;
  }
  if (total <= 0) throw std::invalid_argument("LatencyModel: zero total weight");
  double acc = 0;
  cumulative_.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    acc += b.weight / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

Seconds LatencyModel::sample(Rng& rng) const {
  double u = rng.uniform();
  std::size_t i = 0;
  while (i + 1 < cumulative_.size() && u >= cumulative_[i]) ++i;
  const auto& b = buckets_[i];
  if (b.hi == b.lo) return b.lo;
  return rng.uniform(b.lo, b.hi);
}

Seconds LatencyModel::mean() const {
  double total_w = 0, acc = 0;
  for (const auto& b : buckets_) {
    total_w += b.weight;
    acc += b.weight * 0.5 * (b.lo + b.hi);
  }
  return acc / total_w;
}

}  // namespace bng::net
