// Empirical latency model.
//
// The paper measured RTTs to all visible Bitcoin nodes from one vantage
// point (April 7, 2015), built a histogram, and assigned each node pair a
// latency drawn from it (§7 "Network"). The measurement data is not public;
// we ship a long-tailed histogram with the same qualitative shape (median
// ~110 ms, 99th percentile >1 s), and verify the resulting propagation
// behaviour reproduces the linear size/latency relation of Fig 7.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace bng::net {

/// A histogram bucket: latencies in [lo, hi) seconds with relative weight.
struct LatencyBucket {
  Seconds lo;
  Seconds hi;
  double weight;
};

class LatencyModel {
 public:
  /// Histogram resembling one-way delays of the 2015 Bitcoin network.
  static LatencyModel default_internet();

  /// Short-haul histogram for links inside one region/AS cluster (same
  /// continent, often same metro): ~1-40 ms with a small tail. Pairs with
  /// Topology::clustered(), where default_internet() keeps modelling the
  /// cross-cluster trunks.
  static LatencyModel intra_cluster();

  /// Uniform latency (useful for tests and idealized-network analyses).
  static LatencyModel constant(Seconds latency);

  explicit LatencyModel(std::vector<LatencyBucket> buckets);

  /// Draw one latency sample.
  [[nodiscard]] Seconds sample(Rng& rng) const;

  [[nodiscard]] const std::vector<LatencyBucket>& buckets() const { return buckets_; }

  /// Distribution mean (from bucket midpoints).
  [[nodiscard]] Seconds mean() const;

 private:
  std::vector<LatencyBucket> buckets_;
  std::vector<double> cumulative_;  // normalized cumulative weights
};

}  // namespace bng::net
