// Discrete-event simulation core.
//
// The entire emulated network (paper §7: 1000-node testbed) is driven by one
// deterministic event queue. Events at equal timestamps are ordered by
// insertion sequence, so a run is a pure function of its seed.
//
// Fast-path design (three pieces):
//   * Callbacks live in a recycled slot pool; SmallFn keeps the common
//     lambdas allocation-free, and cancellation is lazy — cancel() bumps the
//     slot's generation in O(1) and stale entries die when they surface.
//   * The priority structure is a calendar queue: a ring of kBuckets
//     fixed-width time buckets covers the near future, so the common insert
//     (a delivery, a CPU completion, a re-armed link train) is one multiply
//     and a push_back — O(1), no sift, no sort. Consumption drains one
//     bucket at a time into a sorted run (buckets hold ~kTargetPerBucket
//     events, so each sort is tiny). Events beyond the ring spill to an
//     unsorted overflow pool and are pulled forward in bulk as the window
//     advances; when the ring drains, the epoch restarts at the overflow
//     minimum and the bucket width re-tunes itself from the observed
//     inter-event gap. A small 4-ary heap absorbs the rare event scheduled
//     behind the bucket currently being consumed.
//   * Ordering is the total order (at, seq); the structure only changes how
//     that order is produced, so a run replays identically. All routing
//     decisions go through one monotone map from time to bucket index
//     (fixed origin/width per epoch), so an event can never land behind one
//     that orders after it — boundary cases included.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/small_fn.hpp"
#include "common/types.hpp"

namespace bng::net {

class EventQueue {
 public:
  using Callback = SmallFn;

  EventQueue() : buckets_(kBuckets) {}

  /// Current simulated time (seconds).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns an event id.
  /// Templated so the callable is constructed straight into its slot —
  /// scheduling a fitting lambda performs no allocation and no extra moves.
  template <typename F>
  std::uint64_t schedule_at(Seconds at, F&& fn) {
    if (at < now_) throw std::invalid_argument("EventQueue: cannot schedule in the past");
    std::uint32_t idx;
    if (!free_slots_.empty()) {
      idx = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if ((num_slots_ & (kChunkSize - 1)) == 0) grow_slots();
      idx = num_slots_++;
    }
    Slot& s = slot(idx);
    s.fn.assign(std::forward<F>(fn));
    route(Entry{at, next_seq_++, idx, s.gen});
    return (static_cast<std::uint64_t>(s.gen) << 32) | idx;
  }

  /// Schedule `fn` after `delay` seconds.
  template <typename F>
  std::uint64_t schedule_in(Seconds delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a scheduled event. Returns false if already fired/cancelled.
  bool cancel(std::uint64_t id);

  /// If the event identified by `id` is live AND is the earliest pending
  /// event (and within the current pop limit), consume it — advance now_ to
  /// its time, count it as executed, recycle its slot — WITHOUT invoking its
  /// callback, and return true. The caller then runs the work inline.
  /// Because ordering is the total order (at, seq), success proves no other
  /// pending event orders before it, so consuming inline is observationally
  /// identical to the queue popping it next. Used by Network's burst drains
  /// to collapse a train of per-link delivery events into one callback.
  bool consume_if_next(std::uint64_t id);

  /// Run until the queue is empty or simulated time exceeds `t_end`.
  /// Events scheduled exactly at `t_end` are executed.
  void run_until(Seconds t_end);

  /// Run until the queue drains completely.
  void run_all();

  /// Pending event count (cancelled events may be counted until popped).
  [[nodiscard]] std::size_t pending() const {
    return (run_.size() - run_index_) + near_.size() + ring_count_ + overflow_.size();
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// A safe lower bound on the time of the earliest pending event: no event
  /// in this queue will execute strictly before the returned time. +inf when
  /// empty. Cancelled-but-unpopped entries may pull the bound below the true
  /// next event time — a smaller bound only shrinks a conservative window,
  /// never breaks it. Used by the parallel engine to size safe windows.
  [[nodiscard]] Seconds next_time_bound() const;

 private:
  /// Execution key is (at, seq); seq is unique, so the order is total and a
  /// run replays identically regardless of the internal structure.
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;  ///< live iff equal to the slot's generation
  };

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Callback storage, recycled through free_slots_. A slot's generation
  /// advances on fire/cancel, invalidating entries that still point at it.
  /// (A single slot would need 2^32 reuses for a stale match; runs are
  /// orders of magnitude shorter.)
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
  };

  /// Slots live in fixed chunks so their addresses survive growth —
  /// callbacks are invoked in place and may themselves schedule new events.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  // --- Calendar geometry ----------------------------------------------------
  // Bucket b covers [origin_ + b*width_, origin_ + (b+1)*width_). The ring
  // holds buckets (cur_bucket_, cur_bucket_ + kBuckets]; bucket cur_bucket_
  // is the one whose entries were last frozen into run_, so late arrivals
  // mapping at or before it go to the near heap. Everything past the ring
  // sits unsorted in overflow_ until the window slides over it.
  static constexpr std::int64_t kBuckets = 2048;  ///< power of two (ring mask)
  static constexpr double kTargetPerBucket = 8.0;
  static constexpr double kMinWidth = 1e-7;
  static constexpr double kMaxWidth = 1e7;
  static constexpr std::size_t kMinSweep = 64;

  static std::size_t ring_slot(std::int64_t b) {
    return static_cast<std::size_t>(b & (kBuckets - 1));
  }

  Slot& slot(std::uint32_t s) { return chunks_[s >> kChunkShift][s & (kChunkSize - 1)]; }
  void grow_slots();

  static bool entry_greater(const Entry& a, const Entry& b) { return entry_less(b, a); }

  /// Place an entry in near_/ring/overflow_. The bucket index is
  /// floor((at - origin_) * inv_width_) — one shared monotone map, so
  /// routing can never reorder two entries across a boundary. Inline: this
  /// is the schedule_at hot path (one multiply, one compare, one push_back).
  void route(const Entry& e) {
    const double q = (e.at - origin_) * inv_width_;
    if (q < static_cast<double>(cur_bucket_ + kBuckets + 1)) {
      if (q < static_cast<double>(cur_bucket_ + 1)) {
        near_push(e);
        return;
      }
      buckets_[ring_slot(static_cast<std::int64_t>(q))].push_back(e);
      ++ring_count_;
      return;
    }
    route_overflow(e);
  }

  void route_overflow(const Entry& e);

  /// Earliest live overflow entry (min-heap top), discarding tombstones.
  const Entry* overflow_top();

  /// Fire the earliest event with at <= limit. Returns false if none.
  bool pop_one(Seconds limit);

  /// Freeze the next non-empty bucket into the sorted run (merging matured
  /// overflow forward / restarting the epoch as needed).
  void build_run();

  /// Ring empty, overflow not: pop a bounded sorted batch off the overflow
  /// heap, re-anchor the calendar at its minimum, and re-tune the bucket
  /// width from the batch's median inter-event gap. Returns false if the
  /// overflow was all tombstones.
  bool epoch_restart();

  /// Mass-cancellation compaction over ring + overflow.
  void sweep_stale();

  void near_push(const Entry& e);
  void near_pop_top();

  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;

  std::vector<Entry> run_;     ///< sorted ascending by (at, seq)
  std::size_t run_index_ = 0;  ///< next unconsumed run entry
  std::vector<Entry> near_;    ///< 4-ary min-heap: arrivals behind cur_bucket_

  double origin_ = 0;          ///< epoch anchor (bucket 0 starts here)
  double width_ = 0.002;       ///< bucket width, seconds (re-tuned per epoch)
  double inv_width_ = 500.0;   ///< 1 / width_, the hot-path multiplier
  std::int64_t cur_bucket_ = -1;  ///< bucket last frozen into run_
  std::vector<std::vector<Entry>> buckets_;  ///< ring, indexed by b & (kBuckets-1)
  std::size_t ring_count_ = 0;               ///< live+stale entries in the ring
  /// Beyond the ring window: a binary min-heap by (at, seq). Far-future
  /// inserts are rare by construction (the ring absorbs the near term), so
  /// the O(log n) push is off the hot path, and the heap makes both the
  /// window-slide merge and the epoch restart exact — no full scans.
  std::vector<Entry> overflow_;
  std::vector<Entry> scratch_;  ///< epoch_restart's pop buffer (reused)

  /// Limit of the pop in progress; consume_if_next honors it so a burst
  /// drain can never run past the caller's run_until horizon.
  Seconds pop_limit_ = std::numeric_limits<Seconds>::infinity();

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;
  /// Tombstones still sitting in run_/near_/ring/overflow_; lets build_run()
  /// decide when a compaction sweep pays for itself.
  std::size_t stale_ = 0;
};

}  // namespace bng::net
