// Discrete-event simulation core.
//
// The entire emulated network (paper §7: 1000-node testbed) is driven by one
// deterministic event queue. Events at equal timestamps are ordered by
// insertion sequence, so a run is a pure function of its seed.
//
// Fast-path design (three pieces):
//   * Callbacks live in a recycled slot pool; SmallFn keeps the common
//     lambdas allocation-free, and cancellation is lazy — cancel() bumps the
//     slot's generation in O(1) and stale entries die when they surface.
//   * The priority structure is a lazy queue, not a binary heap: new events
//     append O(1) to an unsorted future pool; consumption takes the next
//     batch of smallest events (nth_element + sort, contiguous and
//     branch-predictable) into a sorted run that is then streamed in order.
//     A small 4-ary heap absorbs the rare event scheduled inside the
//     current run's window. Amortized cost per event is a couple of linear
//     passes plus one sort share — far cheaper than pointer-hopping heap
//     sifts at simulation scale.
//   * Ordering is the total order (at, seq); the structure only changes how
//     that order is produced, so a run replays identically.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/small_fn.hpp"
#include "common/types.hpp"

namespace bng::net {

class EventQueue {
 public:
  using Callback = SmallFn;

  /// Current simulated time (seconds).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns an event id.
  /// Templated so the callable is constructed straight into its slot —
  /// scheduling a fitting lambda performs no allocation and no extra moves.
  template <typename F>
  std::uint64_t schedule_at(Seconds at, F&& fn) {
    if (at < now_) throw std::invalid_argument("EventQueue: cannot schedule in the past");
    std::uint32_t idx;
    if (!free_slots_.empty()) {
      idx = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if ((num_slots_ & (kChunkSize - 1)) == 0) grow_slots();
      idx = num_slots_++;
    }
    Slot& s = slot(idx);
    s.fn.assign(std::forward<F>(fn));
    const Entry e{at, next_seq_++, idx, s.gen};
    // Seq is the largest yet, so "at == boundary" orders after the whole
    // run: only strictly earlier times must jump the unsorted future pool.
    if (at < run_max_at_) {
      near_push(e);
    } else {
      future_.push_back(e);
    }
    return (static_cast<std::uint64_t>(s.gen) << 32) | idx;
  }

  /// Schedule `fn` after `delay` seconds.
  template <typename F>
  std::uint64_t schedule_in(Seconds delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a scheduled event. Returns false if already fired/cancelled.
  bool cancel(std::uint64_t id);

  /// Run until the queue is empty or simulated time exceeds `t_end`.
  /// Events scheduled exactly at `t_end` are executed.
  void run_until(Seconds t_end);

  /// Run until the queue drains completely.
  void run_all();

  /// Pending event count (cancelled events may be counted until popped).
  [[nodiscard]] std::size_t pending() const {
    return (run_.size() - run_index_) + near_.size() + future_.size();
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  /// Execution key is (at, seq); seq is unique, so the order is total and a
  /// run replays identically regardless of the internal structure.
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;  ///< live iff equal to the slot's generation
  };

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Callback storage, recycled through free_slots_. A slot's generation
  /// advances on fire/cancel, invalidating entries that still point at it.
  /// (A single slot would need 2^32 reuses for a stale match; runs are
  /// orders of magnitude shorter.)
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
  };

  /// Slots live in fixed chunks so their addresses survive growth —
  /// callbacks are invoked in place and may themselves schedule new events.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& slot(std::uint32_t s) { return chunks_[s >> kChunkShift][s & (kChunkSize - 1)]; }
  void grow_slots();

  /// Fire the earliest event with at <= limit. Returns false if none.
  bool pop_one(Seconds limit);

  /// Move the next batch of smallest future events into the sorted run.
  void build_run();

  void near_push(const Entry& e);
  void near_pop_top();

  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;

  // Invariant: while the current run (plus its near-heap) is being consumed,
  // every event in future_ orders strictly after the run boundary
  // (run_max_at_, max seq), so pop only compares the run head with the near
  // top. New events route by "at < run_max_at_" — their seq is always the
  // largest yet, so an event at exactly the boundary time orders after it.
  std::vector<Entry> run_;     ///< sorted ascending by (at, seq)
  std::size_t run_index_ = 0;  ///< next unconsumed run entry
  Seconds run_max_at_ = 0;     ///< boundary time; see invariant above
  std::vector<Entry> near_;    ///< 4-ary min-heap: late arrivals before the boundary
  std::vector<Entry> future_;  ///< unsorted; everything after the boundary

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t num_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;
  /// Tombstones still sitting in run_/near_/future_; lets build_run() decide
  /// when a compaction sweep of the future pool pays for itself.
  std::size_t stale_ = 0;
};

}  // namespace bng::net
