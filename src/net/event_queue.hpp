// Discrete-event simulation core.
//
// The entire emulated network (paper §7: 1000-node testbed) is driven by one
// deterministic event queue. Events at equal timestamps are ordered by
// insertion sequence, so a run is a pure function of its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bng::net {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (seconds).
  [[nodiscard]] Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns an event id.
  std::uint64_t schedule_at(Seconds at, Callback fn);

  /// Schedule `fn` after `delay` seconds.
  std::uint64_t schedule_in(Seconds delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a scheduled event. Returns false if already fired/cancelled.
  bool cancel(std::uint64_t id);

  /// Run until the queue is empty or simulated time exceeds `t_end`.
  /// Events scheduled exactly at `t_end` are executed.
  void run_until(Seconds t_end);

  /// Run until the queue drains completely.
  void run_all();

  /// Pending event count (cancelled events may be counted until popped).
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    std::uint64_t id;

    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool pop_one();  // returns false when queue empty

  Seconds now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // id -> callback; erased on fire/cancel. Deterministic iteration not needed.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace bng::net
