// Message transport over the simulated overlay.
//
// Models the paper's emulated network (§7): per-pair latency drawn from an
// empirical histogram and ~100 kbit/s bandwidth between each pair of nodes.
// Transfers are store-and-forward: a link serializes messages, so a large
// block occupies the link for size/bandwidth seconds before the propagation
// latency even begins — this is what creates the linear size/latency
// relation of Fig 7 and the fork pressure of Fig 8b.
//
// Fast-path design: the per-edge state (latency, link-busy horizon, in-flight
// FIFO) lives in CSR-style flat arrays indexed by a directed-edge slot
// resolved once at construction, so send() is a short scan over one adjacency
// row plus pure array arithmetic — no hash maps anywhere on the message path.
//
// Per-link event trains: a store-and-forward link delivers in order, so each
// directed edge keeps one FIFO of in-flight messages and at most ONE
// scheduled delivery event (for the head's arrival). Sending onto a busy
// link is a FIFO push with no event-queue traffic; the delivery callback is
// a trivially-copyable {Network*, edge} pair that re-arms itself for the next
// queued message. The pending-event set is O(active links), not O(in-flight
// messages) — under a gossip burst that is an order of magnitude smaller.
//
// Two delivery fast paths on top of the train (both observationally
// identical to the one-event-per-message schedule, so digests don't move):
//   * Idle-link direct delivery: a send onto an idle link carries the
//     message inside its delivery event (SmallFn inline capture) instead of
//     round-tripping through the FIFO — the common case in gossip, where
//     most sends hit an idle link.
//   * Burst drains: after delivering, if the re-armed delivery event for
//     this edge is the event queue's next event (EventQueue::consume_if_next
//     — possible only when nothing else is due first), the train keeps
//     draining in the same callback, NDN-DPDK style, instead of bouncing
//     through the scheduler once per message.
//
// The Network also owns the experiment-wide BlockInterner: it is the one
// object every protocol node of a deployment shares, so it is the natural
// home for the Hash256 -> BlockId assignment that block trees, gossip sets
// and wire messages key their hot state by (see common/intern.hpp).
//
// Sharding (sim/parallel_engine.hpp): configure_shards() partitions nodes
// across per-shard event queues. Intra-shard traffic keeps every fast path
// above untouched on the owning shard's queue; a cross-shard send is
// computed analytically on the sender's thread (same busy_until_/latency/
// FIFO-clamp arithmetic, so arrival times are bit-identical to the serial
// engine's) and buffered in a per-(src,dst)-shard LANE. At each window
// barrier the coordinator merges all lanes in (arrival, src shard,
// lane seq) order onto the destination queues — a deterministic order that
// reproduces the serial engine's (time, seq) execution order, which is what
// keeps digests identical for any shard count. The minimum cross-shard
// latency (plus the per-message overhead transfer time) bounds how far a
// shard can safely run ahead; it is cached and recomputed whenever a fault
// mutates an edge latency.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/intern.hpp"
#include "common/node_state.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/event_queue.hpp"
#include "net/latency_model.hpp"
#include "net/topology.hpp"

namespace bng::net {

/// Base class for anything sent over the wire. Subclasses add payload.
struct Message {
  /// Dispatch tag so receivers can switch + static_cast instead of paying a
  /// dynamic_cast chain per delivery. 0 = untagged; the protocol layer owns
  /// the id space (see protocol::MessageKind).
  const std::uint8_t kind;

  explicit Message(std::uint8_t k = 0) : kind(k) {}
  virtual ~Message() = default;
  /// Serialized size in bytes; drives the bandwidth model.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
  /// Short type tag for tracing.
  [[nodiscard]] virtual const char* type_name() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Interface implemented by protocol nodes.
class INode {
 public:
  virtual ~INode() = default;
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;
};

struct LinkParams {
  /// Paper §7: "The bandwidth is set to about 100kbit/sec among each pair."
  double bandwidth_bps = 100'000.0;
  /// Fixed per-message overhead (headers, framing).
  std::size_t per_message_overhead_bytes = 40;
};

class Network {
 public:
  /// `intra`, when set, is the latency model for edges whose endpoints share
  /// a topology cluster (Topology::clustered); `latency` then covers only
  /// the cross-cluster trunks. Null keeps the flat single-model assignment
  /// (and, for a given rng, the byte-identical draw sequence).
  Network(EventQueue& queue, const Topology& topology, const LatencyModel& latency,
          LinkParams params, Rng& rng, const LatencyModel* intra = nullptr);

  /// Attach the protocol object for `node`. Must be called for every node
  /// before any message is delivered to it.
  void attach(NodeId node, INode* handler);

  /// Send a message from `from` to direct neighbour `to`. Throws if the edge
  /// does not exist.
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Neighbours of `node`.
  [[nodiscard]] const std::vector<NodeId>& peers(NodeId node) const {
    return topology_.peers(node);
  }

  [[nodiscard]] std::uint32_t num_nodes() const { return topology_.num_nodes(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  // --- Sharding (parallel engine) -------------------------------------------

  /// Partition the deployment: node `n` runs on `queues[shard_of[n]]`.
  /// `shard_of` must be non-decreasing (shards own contiguous node-id
  /// ranges) and `queues[0]` must be the construction-time queue. Must be
  /// called before any node is attached or any message sent — protocol nodes
  /// cache their shard queue at construction. Repartitions the node-state
  /// arena to match.
  void configure_shards(std::vector<EventQueue*> queues,
                        std::vector<std::uint32_t> shard_of);

  [[nodiscard]] std::uint32_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::uint32_t shard_of(NodeId node) const { return shard_of_[node]; }

  /// The event queue that drives `node` (the construction queue unless
  /// configure_shards said otherwise).
  [[nodiscard]] EventQueue& queue_for(NodeId node) { return *queues_[shard_of_[node]]; }

  /// Safe lookahead for conservative windows: min over cross-shard directed
  /// edges of (latency + per-message-overhead transfer time). Any message
  /// sent at time t crossing shards arrives strictly later than
  /// t + lookahead (its payload transfer adds more). +inf with no
  /// cross-shard edges (or one shard). Cached; fault-layer latency
  /// mutations invalidate the cache.
  [[nodiscard]] Seconds conservative_lookahead();

  /// Coordinator-only, all shard threads parked: drain every (src,dst)
  /// shard lane, scheduling each buffered cross-shard message on its
  /// destination shard's queue in (arrival, src shard, lane seq) order.
  void flush_lanes();

  /// Cross-shard messages currently buffered in lanes (not yet flushed).
  [[nodiscard]] std::size_t lane_backlog() const;

  /// The experiment-wide block-identity interner shared by every node of
  /// this deployment (trees, gossip sets, wire messages).
  [[nodiscard]] const std::shared_ptr<BlockInterner>& interner() const { return interner_; }

  /// The experiment-wide SoA arena of hot per-node protocol state (gossip
  /// dedupe planes, CPU cursors) — one dense layout for the whole fleet.
  [[nodiscard]] const std::shared_ptr<NodeStateArena>& node_state() const {
    return node_state_;
  }

  /// One-way latency of the (a, b) edge; throws if absent.
  [[nodiscard]] Seconds edge_latency(NodeId a, NodeId b) const;

  // Traffic counters are kept per shard (cache-line padded, each written
  // only by its owning shard thread) and summed on read. Sums are exact:
  // every increment lands in exactly one shard's struct. Read them only
  // while shard threads are parked (barrier / end of run).

  /// Total bytes ever put on the wire (payload + overhead).
  [[nodiscard]] std::uint64_t bytes_sent() const { return sum_u64(&ShardCounters::bytes_sent); }
  [[nodiscard]] std::uint64_t messages_sent() const {
    return sum_u64(&ShardCounters::messages_sent);
  }

  /// Messages currently queued on links (sent, not yet delivered).
  [[nodiscard]] std::uint64_t messages_in_flight() const {
    return static_cast<std::uint64_t>(sum_i64(&ShardCounters::in_flight));
  }
  /// Directed links with a delivery in flight == scheduled delivery events.
  [[nodiscard]] std::uint32_t active_links() const {
    return static_cast<std::uint32_t>(sum_i64(&ShardCounters::active_links));
  }
  /// Deliveries that rode the idle-link fast path (message carried in the
  /// event, no FIFO round-trip).
  [[nodiscard]] std::uint64_t direct_deliveries() const {
    return sum_u64(&ShardCounters::direct_deliveries);
  }
  /// Messages delivered by a burst continuation (train drained in the same
  /// callback instead of a fresh scheduler pop).
  [[nodiscard]] std::uint64_t burst_drained() const {
    return sum_u64(&ShardCounters::burst_drained);
  }
  /// Messages that crossed a shard boundary through a lane buffer.
  [[nodiscard]] std::uint64_t lane_messages() const {
    return sum_u64(&ShardCounters::lane_messages);
  }

  /// Partition control (for churn / attack experiments): while a node is
  /// offline its inbound and outbound messages are dropped.
  void set_offline(NodeId node, bool offline);
  [[nodiscard]] bool is_offline(NodeId node) const { return offline_[node]; }

  // --- Fault mechanism (net/fault_plan.hpp schedules the policy) ------------
  //
  // Faults are plain mutations of the per-edge state the send path already
  // reads: a blocked edge folds into the existing offline drop-check (one
  // fused predicate, no extra branch chain) and extra delay is added into
  // the edge's latency slot. With no faults configured the layer costs zero
  // events, zero allocations, and leaves the send path byte-identical.
  //
  // Block state is a per-edge depth counter so overlapping faults compose
  // (a partition plus an eclipse both covering an edge heal independently).
  // Blocking gates send() only: messages already on the link still arrive.

  /// Block/unblock the directed edge a -> b. Throws if the edge is absent.
  void set_edge_blocked(NodeId a, NodeId b, bool blocked);
  /// Block/unblock both directions between `group` and its complement.
  void set_partition(const std::vector<NodeId>& group, bool active);
  /// Block/unblock every edge incident to `node`, both directions.
  void set_eclipsed(NodeId node, bool eclipsed);
  /// Add `delta` (may be negative, to heal) to both directions' latency.
  void add_edge_latency(NodeId a, NodeId b, Seconds delta);

  [[nodiscard]] bool edge_blocked(NodeId a, NodeId b) const;

 private:
  static constexpr std::uint32_t kNoEdge = UINT32_MAX;

  /// A message riding a link, waiting for its arrival time.
  struct InFlight {
    Seconds arrival;
    MessagePtr msg;
  };

  /// Per-directed-edge FIFO; `head` indexes the next message to deliver.
  /// The invariant "a delivery event is scheduled iff the FIFO is non-empty"
  /// makes a separate scheduled flag unnecessary.
  struct LinkFifo {
    std::vector<InFlight> q;
    std::uint32_t head = 0;
    [[nodiscard]] bool empty() const { return head == q.size(); }
  };

  /// The scheduled per-link delivery callback: trivially copyable, 12 bytes.
  struct DeliverHead {
    Network* net;
    std::uint32_t edge;
    void operator()() const { net->drain_train(edge); }
  };

  /// Idle-link fast path: the message rides inside the event (32 bytes,
  /// within SmallFn's inline buffer), skipping the FIFO entirely.
  struct DeliverDirect {
    Network* net;
    std::uint32_t edge;
    MessagePtr msg;
    void operator()() const { net->deliver_direct(edge, msg); }
  };

  /// A barrier-flushed cross-shard delivery: dispatch + in-flight bookkeeping
  /// on the destination shard, no link-state touch (the sender already did
  /// the busy/FIFO-clamp arithmetic).
  struct DeliverLane {
    Network* net;
    std::uint32_t edge;
    MessagePtr msg;
    void operator()() const { net->deliver_lane(edge, msg); }
  };

  /// One buffered cross-shard message awaiting the barrier merge.
  struct LaneMsg {
    Seconds arrival;
    std::uint64_t lane_seq;  ///< send order within this (src,dst) lane
    std::uint32_t edge;
    MessagePtr msg;
  };

  /// Per-shard traffic counters, padded so shard threads never share a line.
  struct alignas(64) ShardCounters {
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_sent = 0;
    std::int64_t in_flight = 0;      ///< +1 at send (src), -1 at delivery (dst)
    std::int64_t active_links = 0;
    std::uint64_t direct_deliveries = 0;
    std::uint64_t burst_drained = 0;
    std::uint64_t lane_messages = 0;
  };

  [[nodiscard]] std::uint64_t sum_u64(std::uint64_t ShardCounters::* f) const {
    std::uint64_t total = 0;
    for (const ShardCounters& c : counters_) total += c.*f;
    return total;
  }
  [[nodiscard]] std::int64_t sum_i64(std::int64_t ShardCounters::* f) const {
    std::int64_t total = 0;
    for (const ShardCounters& c : counters_) total += c.*f;
    return total;
  }

  /// Deliver the FIFO head, then keep draining while this edge's re-armed
  /// delivery event is the queue's next event.
  void drain_train(std::uint32_t edge);
  void deliver_direct(std::uint32_t edge, const MessagePtr& msg);
  void deliver_lane(std::uint32_t edge, const MessagePtr& msg);
  /// Hand one arrived message to the receiving node (offline drop here).
  void dispatch(std::uint32_t edge, const MessagePtr& msg);

  /// Directed-edge slot for (from, to): position of `to` in `from`'s sorted
  /// adjacency row, offset by the CSR row start. kNoEdge if absent.
  [[nodiscard]] std::uint32_t find_edge(NodeId from, NodeId to) const;

  EventQueue& queue_;
  Topology topology_;
  LinkParams params_;
  std::shared_ptr<BlockInterner> interner_;
  std::shared_ptr<NodeStateArena> node_state_;
  std::vector<INode*> handlers_;
  std::vector<bool> offline_;

  // CSR adjacency: row of node v is row_sorted_[offset_[v] .. offset_[v+1]),
  // sorted by peer id for binary search. Iteration order of neighbours is
  // still Topology's original order (peers()); only lookups use these rows.
  std::vector<std::uint32_t> offset_;      // num_nodes + 1
  std::vector<NodeId> row_sorted_;         // peer id per directed-edge slot
  std::vector<NodeId> edge_from_;          // source node per directed-edge slot
  std::vector<Seconds> latency_;           // per directed-edge slot, symmetric
  std::vector<Seconds> busy_until_;        // per directed-edge slot (directed)
  std::vector<LinkFifo> fifo_;             // per directed-edge slot
  std::vector<std::uint8_t> blocked_;      // per directed-edge fault depth
  std::vector<std::uint8_t> direct_;       // 1 while a DeliverDirect is in flight
  std::vector<Seconds> last_arrival_;      // arrival of the edge's latest send

  // --- Shard routing (single-shard identity mapping by default) -------------
  std::vector<EventQueue*> queues_;          // per shard; [0] == &queue_
  std::vector<std::uint32_t> shard_of_;      // per node
  std::uint32_t num_shards_ = 1;
  std::vector<std::vector<LaneMsg>> lanes_;  // [src * K + dst], src != dst
  std::vector<std::uint64_t> lane_seq_;      // per lane send counter
  std::vector<LaneMsg> lane_scratch_;        // flush_lanes merge buffer
  Seconds lookahead_ = 0;                    // cached conservative_lookahead
  bool lookahead_dirty_ = true;

  std::vector<ShardCounters> counters_;      // per shard, summed on read
};

}  // namespace bng::net
