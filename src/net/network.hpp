// Message transport over the simulated overlay.
//
// Models the paper's emulated network (§7): per-pair latency drawn from an
// empirical histogram and ~100 kbit/s bandwidth between each pair of nodes.
// Transfers are store-and-forward: a link serializes messages, so a large
// block occupies the link for size/bandwidth seconds before the propagation
// latency even begins — this is what creates the linear size/latency
// relation of Fig 7 and the fork pressure of Fig 8b.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/event_queue.hpp"
#include "net/latency_model.hpp"
#include "net/topology.hpp"

namespace bng::net {

/// Base class for anything sent over the wire. Subclasses add payload.
struct Message {
  virtual ~Message() = default;
  /// Serialized size in bytes; drives the bandwidth model.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
  /// Short type tag for tracing.
  [[nodiscard]] virtual const char* type_name() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Interface implemented by protocol nodes.
class INode {
 public:
  virtual ~INode() = default;
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;
};

struct LinkParams {
  /// Paper §7: "The bandwidth is set to about 100kbit/sec among each pair."
  double bandwidth_bps = 100'000.0;
  /// Fixed per-message overhead (headers, framing).
  std::size_t per_message_overhead_bytes = 40;
};

class Network {
 public:
  Network(EventQueue& queue, const Topology& topology, const LatencyModel& latency,
          LinkParams params, Rng& rng);

  /// Attach the protocol object for `node`. Must be called for every node
  /// before any message is delivered to it.
  void attach(NodeId node, INode* handler);

  /// Send a message from `from` to direct neighbour `to`. Throws if the edge
  /// does not exist.
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Neighbours of `node`.
  [[nodiscard]] const std::vector<NodeId>& peers(NodeId node) const {
    return topology_.peers(node);
  }

  [[nodiscard]] std::uint32_t num_nodes() const { return topology_.num_nodes(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// One-way latency of the (a, b) edge; throws if absent.
  [[nodiscard]] Seconds edge_latency(NodeId a, NodeId b) const;

  /// Total bytes ever put on the wire (payload + overhead).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Partition control (for churn / attack experiments): while a node is
  /// offline its inbound and outbound messages are dropped.
  void set_offline(NodeId node, bool offline);
  [[nodiscard]] bool is_offline(NodeId node) const { return offline_[node]; }

 private:
  static std::uint64_t edge_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  }
  static std::uint64_t directed_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  EventQueue& queue_;
  Topology topology_;
  LinkParams params_;
  std::vector<INode*> handlers_;
  std::vector<bool> offline_;
  std::unordered_map<std::uint64_t, Seconds> edge_latency_;   // undirected
  std::unordered_map<std::uint64_t, Seconds> link_busy_until_;  // directed
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace bng::net
