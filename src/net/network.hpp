// Message transport over the simulated overlay.
//
// Models the paper's emulated network (§7): per-pair latency drawn from an
// empirical histogram and ~100 kbit/s bandwidth between each pair of nodes.
// Transfers are store-and-forward: a link serializes messages, so a large
// block occupies the link for size/bandwidth seconds before the propagation
// latency even begins — this is what creates the linear size/latency
// relation of Fig 7 and the fork pressure of Fig 8b.
//
// Fast-path design: the per-edge state (latency, link-busy horizon) lives in
// CSR-style flat arrays indexed by a directed-edge slot resolved once at
// construction, so send() is a short binary search over one adjacency row
// plus pure array arithmetic — no hash maps anywhere on the message path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/event_queue.hpp"
#include "net/latency_model.hpp"
#include "net/topology.hpp"

namespace bng::net {

/// Base class for anything sent over the wire. Subclasses add payload.
struct Message {
  /// Dispatch tag so receivers can switch + static_cast instead of paying a
  /// dynamic_cast chain per delivery. 0 = untagged; the protocol layer owns
  /// the id space (see protocol::MessageKind).
  const std::uint8_t kind;

  explicit Message(std::uint8_t k = 0) : kind(k) {}
  virtual ~Message() = default;
  /// Serialized size in bytes; drives the bandwidth model.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
  /// Short type tag for tracing.
  [[nodiscard]] virtual const char* type_name() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Interface implemented by protocol nodes.
class INode {
 public:
  virtual ~INode() = default;
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;
};

struct LinkParams {
  /// Paper §7: "The bandwidth is set to about 100kbit/sec among each pair."
  double bandwidth_bps = 100'000.0;
  /// Fixed per-message overhead (headers, framing).
  std::size_t per_message_overhead_bytes = 40;
};

class Network {
 public:
  Network(EventQueue& queue, const Topology& topology, const LatencyModel& latency,
          LinkParams params, Rng& rng);

  /// Attach the protocol object for `node`. Must be called for every node
  /// before any message is delivered to it.
  void attach(NodeId node, INode* handler);

  /// Send a message from `from` to direct neighbour `to`. Throws if the edge
  /// does not exist.
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Neighbours of `node`.
  [[nodiscard]] const std::vector<NodeId>& peers(NodeId node) const {
    return topology_.peers(node);
  }

  [[nodiscard]] std::uint32_t num_nodes() const { return topology_.num_nodes(); }
  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// One-way latency of the (a, b) edge; throws if absent.
  [[nodiscard]] Seconds edge_latency(NodeId a, NodeId b) const;

  /// Total bytes ever put on the wire (payload + overhead).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Partition control (for churn / attack experiments): while a node is
  /// offline its inbound and outbound messages are dropped.
  void set_offline(NodeId node, bool offline);
  [[nodiscard]] bool is_offline(NodeId node) const { return offline_[node]; }

 private:
  static constexpr std::uint32_t kNoEdge = UINT32_MAX;

  /// Directed-edge slot for (from, to): position of `to` in `from`'s sorted
  /// adjacency row, offset by the CSR row start. kNoEdge if absent.
  [[nodiscard]] std::uint32_t find_edge(NodeId from, NodeId to) const;

  EventQueue& queue_;
  Topology topology_;
  LinkParams params_;
  std::vector<INode*> handlers_;
  std::vector<bool> offline_;

  // CSR adjacency: row of node v is row_sorted_[offset_[v] .. offset_[v+1]),
  // sorted by peer id for binary search. Iteration order of neighbours is
  // still Topology's original order (peers()); only lookups use these rows.
  std::vector<std::uint32_t> offset_;      // num_nodes + 1
  std::vector<NodeId> row_sorted_;         // peer id per directed-edge slot
  std::vector<Seconds> latency_;           // per directed-edge slot, symmetric
  std::vector<Seconds> busy_until_;        // per directed-edge slot (directed)

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace bng::net
