// The paper's evaluation metrics (§6), computed over a finished Experiment.
//
//  * (ε,δ) consensus delay — how far back nodes must look to agree
//  * fairness             — representation of non-largest miners
//  * mining power utilization — main-chain work / total work
//  * δ time to prune      — how long until a node knows a branch lost
//  * time to win          — disagreement window behind each main-chain block
//  * transaction frequency — committed payload tx/s
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/experiment.hpp"

namespace bng::obs {
class Registry;
}

namespace bng::metrics {

struct MetricsReport {
  double consensus_delay_s = 0;      ///< (ε,δ), defaults ε=δ=0.9 (paper §8)
  double fairness = 0;               ///< 1.0 is optimal
  double mining_power_utilization = 0;
  double time_to_prune_p90_s = 0;
  double time_to_win_p90_s = 0;
  double tx_per_sec = 0;

  // One-way block propagation (Figure 7's quantity, pooled over every
  // (block, node) pair): tail percentiles plus the raw samples, which
  // register_report folds into the `prop_delay_s` histogram so the record
  // schema carries the whole distribution, not just three cuts of it.
  double prop_delay_p50_s = 0;
  double prop_delay_p90_s = 0;
  double prop_delay_p99_s = 0;
  std::vector<double> prop_delay_samples;

  // Supporting counts.
  std::uint32_t main_chain_pow_blocks = 0;
  std::uint32_t total_pow_blocks = 0;
  std::uint32_t main_chain_micro_blocks = 0;
  std::uint32_t total_micro_blocks = 0;
  std::uint64_t main_chain_txs = 0;
  Seconds chain_duration_s = 0;
  std::size_t prune_samples = 0;
};

/// All metrics at once (shares the per-node precomputation).
MetricsReport compute_metrics(const sim::Experiment& exp, double epsilon = 0.9,
                              double delta = 0.9);

/// Register the standard report schema into `reg` (obs/registry.hpp) —
/// gauges for the §6 metrics, counters for the supporting block/tx counts —
/// and load the report's values. Registration order IS the record schema:
/// to_named_values is reg.snapshot() of exactly this call, so the names,
/// order, and bytes that reach RunRecords (and their digests) are pinned
/// here and nowhere else.
void register_report(obs::Registry& reg, const MetricsReport& report);

/// The report flattened to ordered (name, value) pairs — the shape run
/// records and the sweep aggregator consume. A pure function of the report
/// (register_report into a fresh registry, snapshotted).
std::vector<std::pair<std::string, double>> to_named_values(const MetricsReport& report);

/// (ε,δ) consensus delay (§6): the δ-percentile over sample times of the
/// ε-point-consensus delay, sampled at block generation times (§8 "Metrics").
double consensus_delay(const sim::Experiment& exp, double epsilon, double delta);

/// Fairness (§8): ratio of (main-chain blocks not by the largest miner /
/// all main-chain blocks) to (generated blocks not by the largest miner /
/// all generated blocks). PoW blocks only — microblocks carry no election.
double fairness(const sim::Experiment& exp);

/// Mining power utilization (§6): main-chain PoW work / all generated work.
double mining_power_utilization(const sim::Experiment& exp);

/// δ time to prune (§6): per (node, branch), receipt of first branch block
/// to receipt of the main-chain block that outweighs the branch.
double time_to_prune(const sim::Experiment& exp, double percentile_value = 90);

/// Time to win (§6): per main-chain block, generation time to the last
/// generation of a non-descendant block.
double time_to_win(const sim::Experiment& exp, double percentile_value = 90);

/// Committed payload transactions per second on the eventual main chain.
double transaction_frequency(const sim::Experiment& exp);

/// Adversary accounting (§2's 25%-bound experiments): counted over
/// weight-carrying blocks only (Bitcoin/GHOST blocks, NG key blocks — the
/// units mining revenue is paid in).
struct AttackerReport {
  double revenue_share = 0;   ///< attacker's fraction of main-chain PoW blocks
  double fair_share = 0;      ///< attacker's share of total mining power
  double relative_gain = 0;   ///< revenue_share / fair_share - 1 (0 == fair)
  /// Fairness split: each side's main-chain block share over its generated
  /// block share (1.0 == proportional representation).
  double attacker_acceptance = 0;
  double honest_acceptance = 0;
  std::uint32_t attacker_main_blocks = 0;
  std::uint32_t main_blocks = 0;
  std::uint64_t attacker_generated = 0;
  std::uint64_t total_generated = 0;
};

/// Revenue/fairness accounting for one designated attacker node.
AttackerReport attacker_report(const sim::Experiment& exp, NodeId attacker);

/// The attacker report flattened through the registry (gauges for the
/// shares, counters for the block counts) in visit_attacker_fields order —
/// the same schema the record codec and the sweep JSON emitter speak.
std::vector<std::pair<std::string, double>> attacker_named_values(
    const AttackerReport& report);

/// Visit every AttackerReport field as (name, member reference) in the one
/// canonical schema order shared by the record codec's binary and JSON
/// forms and the sweep JSON emitter: doubles first, then u32 counts, then
/// u64 counts. Add a field HERE and every representation picks it up;
/// callers dispatch on the member type with `if constexpr`.
template <class Report, class Fn>
void visit_attacker_fields(Report&& r, Fn&& fn) {
  fn("revenue_share", r.revenue_share);
  fn("fair_share", r.fair_share);
  fn("relative_gain", r.relative_gain);
  fn("attacker_acceptance", r.attacker_acceptance);
  fn("honest_acceptance", r.honest_acceptance);
  fn("attacker_main_blocks", r.attacker_main_blocks);
  fn("main_blocks", r.main_blocks);
  fn("attacker_generated", r.attacker_generated);
  fn("total_generated", r.total_generated);
}

/// One-way block propagation delays pooled over (block, node) pairs:
/// receipt_time - generation_time. Drives Figure 7.
std::vector<double> propagation_delays(const sim::Experiment& exp);

/// The eventual main chain: indices into the global tree, genesis first.
std::vector<std::uint32_t> final_main_chain(const sim::Experiment& exp);

}  // namespace bng::metrics
