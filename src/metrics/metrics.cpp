#include "metrics/metrics.hpp"

#include <algorithm>
#include <type_traits>
#include <unordered_map>

#include "common/stats.hpp"
#include "obs/registry.hpp"

namespace bng::metrics {

namespace {

using chain::BlockTree;
using sim::Experiment;

/// Main-chain membership flags indexed by interned BlockId, built in one
/// pass over the eventual (global) main chain. Every membership probe in the
/// metrics suite is then a single array read.
std::vector<char> main_chain_flags(const Experiment& exp) {
  const BlockTree& g = exp.global_tree();
  std::vector<char> on_main(g.interner().size(), 0);
  for (std::uint32_t idx : g.path_from_genesis(g.best_tip())) on_main[g.entry(idx).id] = 1;
  return on_main;
}

/// Largest miner = the node with the greatest mining power.
std::uint32_t largest_miner(const Experiment& exp) {
  const auto& powers = exp.powers();
  return static_cast<std::uint32_t>(
      std::max_element(powers.begin(), powers.end()) - powers.begin());
}

/// Weight-bearing (non-micro) block counts, generated and on the eventual
/// main chain, split by one designated node. Shared by fairness() and
/// attacker_report() so the two accountings cannot drift apart.
struct PowBlockCounts {
  std::uint64_t gen_total = 0;
  std::uint64_t gen_by_node = 0;
  std::uint64_t main_total = 0;
  std::uint64_t main_by_node = 0;
};

PowBlockCounts count_pow_blocks(const Experiment& exp, NodeId node) {
  PowBlockCounts c;
  const auto on_main = main_chain_flags(exp);
  for (const auto& rec : exp.trace().generated()) {
    if (rec.block->type() == chain::BlockType::kMicro) continue;
    ++c.gen_total;
    const bool by_node = rec.miner == node;
    c.gen_by_node += by_node ? 1 : 0;
    if (on_main[rec.id]) {
      ++c.main_total;
      c.main_by_node += by_node ? 1 : 0;
    }
  }
  return c;
}

}  // namespace

std::vector<std::uint32_t> final_main_chain(const Experiment& exp) {
  const BlockTree& g = exp.global_tree();
  return g.path_from_genesis(g.best_tip());
}

double consensus_delay(const Experiment& exp, double epsilon, double delta) {
  const BlockTree& g = exp.global_tree();
  const auto& nodes = exp.nodes();
  const std::size_t n_nodes = nodes.size();
  const auto quorum = static_cast<std::size_t>(epsilon * static_cast<double>(n_nodes));

  // Generation times (ascending) with global indices: candidate prefix cuts.
  struct Gen {
    Seconds at;
    std::uint32_t gidx;
  };
  std::vector<Gen> gens;
  gens.reserve(exp.trace().generated().size());
  for (const auto& rec : exp.trace().generated()) {
    if (const std::uint32_t gi = g.index_of_id(rec.id); gi != BlockTree::kNoIndex)
      gens.push_back({rec.at, gi});
  }
  std::sort(gens.begin(), gens.end(), [](const Gen& a, const Gen& b) { return a.at < b.at; });
  if (gens.empty()) return 0.0;

  // Per node: map node-tree entries to global indices once. Node and global
  // trees share one interner, so this is a flat id-indexed pass, no hashing.
  std::vector<std::vector<std::uint32_t>> global_of(n_nodes);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    const BlockTree& t = nodes[n]->tree();
    global_of[n].resize(t.size());
    for (std::uint32_t i = 0; i < t.size(); ++i) {
      const std::uint32_t gi = g.index_of_id(t.entry(i).id);
      global_of[n][i] = gi != BlockTree::kNoIndex ? gi : 0;  // unknowns -> root
    }
  }

  // Sample the point consensus delay on a uniform grid across the run
  // (prefix cuts happen at block generation times, per Fig. 4; the reported
  // delay is measured back to the newest commonly-agreed block's generation).
  // The first 10% of the run is skipped as genesis warm-up.
  constexpr std::size_t kSamples = 240;
  const Seconds t_begin = gens.front().at + 0.1 * (gens.back().at - gens.front().at);
  const Seconds t_end = gens.back().at;
  std::vector<Seconds> sample_times;
  if (t_end <= t_begin) {
    sample_times.push_back(t_end);
  } else {
    for (std::size_t s = 0; s < kSamples; ++s)
      sample_times.push_back(t_begin + (t_end - t_begin) * static_cast<double>(s + 1) /
                                           static_cast<double>(kSamples));
  }

  std::vector<double> point_delays;
  point_delays.reserve(sample_times.size());
  std::vector<std::vector<std::pair<Seconds, std::uint32_t>>> chains(n_nodes);
  std::unordered_map<std::uint32_t, std::size_t> votes;

  for (const Seconds t : sample_times) {
    // Each node's chain at time t: (timestamp, global idx) ascending.
    for (std::size_t n = 0; n < n_nodes; ++n) {
      const BlockTree& tree = nodes[n]->tree();
      const auto& hist = tree.tip_history();
      // Last tip change at or before t.
      auto it = std::upper_bound(
          hist.begin(), hist.end(), t,
          [](Seconds value, const BlockTree::TipChange& c) { return value < c.at; });
      const std::uint32_t tip = (it == hist.begin()) ? 0 : std::prev(it)->tip;
      auto& chain = chains[n];
      chain.clear();
      for (std::int32_t cur = static_cast<std::int32_t>(tip); cur != -1;
           cur = tree.entry(static_cast<std::uint32_t>(cur)).parent) {
        const auto& e = tree.entry(static_cast<std::uint32_t>(cur));
        chain.emplace_back(e.block->header().timestamp,
                           global_of[n][static_cast<std::uint32_t>(cur)]);
      }
      std::reverse(chain.begin(), chain.end());
    }

    // Scan candidate cut times from most recent backwards.
    double delay = t;  // worst case: only the genesis prefix is agreed
    for (auto g_it = std::upper_bound(
             gens.begin(), gens.end(), t,
             [](Seconds value, const Gen& rec) { return value < rec.at; });
         g_it != gens.begin();) {
      --g_it;
      const Seconds tau = g_it->at;
      votes.clear();
      std::size_t best = 0;
      for (std::size_t n = 0; n < n_nodes; ++n) {
        const auto& chain = chains[n];
        // Last chain block with timestamp <= tau.
        auto c_it = std::upper_bound(
            chain.begin(), chain.end(), tau,
            [](Seconds value, const auto& pr) { return value < pr.first; });
        const std::uint32_t cut = (c_it == chain.begin()) ? 0 : std::prev(c_it)->second;
        best = std::max(best, ++votes[cut]);
      }
      if (best >= quorum) {
        delay = t - tau;
        break;
      }
    }
    point_delays.push_back(delay);
  }
  return percentile(std::move(point_delays), delta * 100.0);
}

double fairness(const Experiment& exp) {
  const PowBlockCounts c = count_pow_blocks(exp, largest_miner(exp));
  if (c.gen_total == 0 || c.main_total == 0 || c.gen_by_node == c.gen_total) return 0.0;
  const double main_ratio = static_cast<double>(c.main_total - c.main_by_node) /
                            static_cast<double>(c.main_total);
  const double gen_ratio = static_cast<double>(c.gen_total - c.gen_by_node) /
                           static_cast<double>(c.gen_total);
  return main_ratio / gen_ratio;
}

double mining_power_utilization(const Experiment& exp) {
  const auto on_main = main_chain_flags(exp);
  double total = 0, main = 0;
  for (const auto& rec : exp.trace().generated()) {
    if (rec.block->type() == chain::BlockType::kMicro) continue;
    total += rec.block->work();
    if (on_main[rec.id]) main += rec.block->work();
  }
  return total > 0 ? main / total : 0.0;
}

double time_to_prune(const Experiment& exp, double percentile_value) {
  const auto main_flags = main_chain_flags(exp);
  std::vector<double> samples;

  for (const auto& node : exp.nodes()) {
    const BlockTree& t = node->tree();
    // Receipt curve of main-chain blocks: (received, chain_work), in receipt
    // order (parents precede children, so work is non-decreasing).
    std::vector<std::pair<Seconds, double>> main_curve;
    std::vector<bool> on_main(t.size(), false);
    for (std::uint32_t i = 0; i < t.size(); ++i) {
      if (main_flags[t.entry(i).id]) {
        on_main[i] = true;
        main_curve.emplace_back(t.entry(i).received, t.entry(i).chain_work);
      }
    }
    // Group off-main entries into branches rooted where they leave the chain.
    std::vector<std::int32_t> branch_of(t.size(), -1);
    struct Branch {
      Seconds first_received = 0;
      double max_work = 0;
    };
    std::vector<Branch> branches;
    for (std::uint32_t i = 1; i < t.size(); ++i) {
      if (on_main[i]) continue;
      const auto& e = t.entry(i);
      const auto parent = static_cast<std::uint32_t>(e.parent);
      std::int32_t b;
      if (!on_main[parent] && branch_of[parent] >= 0) {
        b = branch_of[parent];
        branches[static_cast<std::size_t>(b)].first_received =
            std::min(branches[static_cast<std::size_t>(b)].first_received, e.received);
        branches[static_cast<std::size_t>(b)].max_work =
            std::max(branches[static_cast<std::size_t>(b)].max_work, e.chain_work);
      } else {
        b = static_cast<std::int32_t>(branches.size());
        branches.push_back(Branch{e.received, e.chain_work});
      }
      branch_of[i] = b;
    }
    // For each branch: first main-chain receipt whose chain outweighs it.
    for (const Branch& br : branches) {
      auto it = std::find_if(main_curve.begin(), main_curve.end(),
                             [&](const auto& pr) { return pr.second > br.max_work; });
      if (it == main_curve.end()) continue;  // never pruned within the run
      if (it->first <= br.first_received) {
        // The node already held a heavier main chain when the branch block
        // arrived: pruned immediately.
        samples.push_back(0.0);
      } else {
        samples.push_back(it->first - br.first_received);
      }
    }
  }
  return percentile(std::move(samples), percentile_value);
}

double time_to_win(const Experiment& exp, double percentile_value) {
  const BlockTree& g = exp.global_tree();
  const auto main_path = g.path_from_genesis(g.best_tip());

  // All generated blocks with their global indices and times.
  struct Gen {
    Seconds at;
    std::uint32_t gidx;
    NodeId miner;
  };
  std::vector<Gen> gens;
  for (const auto& rec : exp.trace().generated()) {
    if (const std::uint32_t gi = g.index_of_id(rec.id); gi != BlockTree::kNoIndex)
      gens.push_back({rec.at, gi, rec.miner});
  }

  std::vector<double> samples;
  for (std::size_t p = 1; p < main_path.size(); ++p) {  // skip genesis
    const std::uint32_t b = main_path[p];
    const Seconds t_b = g.entry(b).received;
    const NodeId miner_b = g.entry(b).block->miner();
    double ttw = 0;
    for (const Gen& other : gens) {
      if (other.at <= t_b || other.gidx == b) continue;
      if (other.miner == miner_b) continue;  // "a (different) node"
      if (g.is_ancestor(b, other.gidx)) continue;  // descendants agree
      ttw = std::max(ttw, other.at - t_b);
    }
    samples.push_back(ttw);
  }
  return percentile(std::move(samples), percentile_value);
}

double transaction_frequency(const Experiment& exp) {
  const BlockTree& g = exp.global_tree();
  const auto& tip = g.best_entry();
  const Seconds duration = tip.received;
  if (duration <= 0) return 0.0;
  return static_cast<double>(tip.chain_tx_count) / duration;
}

AttackerReport attacker_report(const Experiment& exp, NodeId attacker) {
  AttackerReport r;
  const PowBlockCounts c = count_pow_blocks(exp, attacker);
  r.total_generated = c.gen_total;
  r.attacker_generated = c.gen_by_node;
  r.main_blocks = static_cast<std::uint32_t>(c.main_total);
  r.attacker_main_blocks = static_cast<std::uint32_t>(c.main_by_node);
  const auto& powers = exp.powers();
  double total_power = 0;
  for (double p : powers) total_power += p;
  if (attacker < powers.size() && total_power > 0)
    r.fair_share = powers[attacker] / total_power;
  if (r.main_blocks > 0)
    r.revenue_share = static_cast<double>(r.attacker_main_blocks) / r.main_blocks;
  if (r.fair_share > 0) r.relative_gain = r.revenue_share / r.fair_share - 1.0;
  if (r.total_generated > 0 && r.main_blocks > 0) {
    const double gen_att = static_cast<double>(r.attacker_generated) /
                           static_cast<double>(r.total_generated);
    if (gen_att > 0) r.attacker_acceptance = r.revenue_share / gen_att;
    if (gen_att < 1.0)
      r.honest_acceptance = (1.0 - r.revenue_share) / (1.0 - gen_att);
  }
  return r;
}

std::vector<double> propagation_delays(const Experiment& exp) {
  // One id-indexed array probe per (block, node) pair — the interned id in
  // the generation record replaces a Hash256 map lookup per pair.
  std::vector<double> delays;
  for (const auto& rec : exp.trace().generated()) {
    for (const auto& node : exp.nodes()) {
      if (node->id() == rec.miner) continue;  // the miner holds it instantly
      const BlockTree& t = node->tree();
      if (const std::uint32_t idx = t.index_of_id(rec.id); idx != BlockTree::kNoIndex)
        delays.push_back(t.entry(idx).received - rec.at);
    }
  }
  return delays;
}

MetricsReport compute_metrics(const Experiment& exp, double epsilon, double delta) {
  MetricsReport r;
  r.consensus_delay_s = consensus_delay(exp, epsilon, delta);
  r.fairness = fairness(exp);
  r.mining_power_utilization = mining_power_utilization(exp);
  r.time_to_prune_p90_s = time_to_prune(exp, 90);
  r.time_to_win_p90_s = time_to_win(exp, 90);
  r.tx_per_sec = transaction_frequency(exp);

  const auto main_flags = main_chain_flags(exp);
  for (const auto& rec : exp.trace().generated()) {
    const bool on_main = main_flags[rec.id] != 0;
    if (rec.block->type() == chain::BlockType::kMicro) {
      ++r.total_micro_blocks;
      if (on_main) ++r.main_chain_micro_blocks;
    } else {
      ++r.total_pow_blocks;
      if (on_main) ++r.main_chain_pow_blocks;
    }
  }
  const auto& g = exp.global_tree();
  r.main_chain_txs = g.best_entry().chain_tx_count;
  r.chain_duration_s = g.best_entry().received;

  r.prop_delay_samples = propagation_delays(exp);
  r.prop_delay_p50_s = percentile(r.prop_delay_samples, 50);
  r.prop_delay_p90_s = percentile(r.prop_delay_samples, 90);
  r.prop_delay_p99_s = percentile(r.prop_delay_samples, 99);
  return r;
}

void register_report(obs::Registry& reg, const MetricsReport& m) {
  using obs::Unit;
  // Registration order is the record schema — append only, never reorder.
  reg.gauge("time_to_prune_p90_s", Unit::kSeconds,
            "delta time to prune, 90th percentile (paper §6)")
      .set(m.time_to_prune_p90_s);
  reg.gauge("time_to_win_p90_s", Unit::kSeconds,
            "time to win, 90th percentile (paper §6)")
      .set(m.time_to_win_p90_s);
  reg.gauge("mpu", Unit::kNone, "mining power utilization (paper §6)")
      .set(m.mining_power_utilization);
  reg.gauge("fairness", Unit::kNone,
            "non-largest-miner representation ratio (paper §8)")
      .set(m.fairness);
  reg.gauge("consensus_delay_s", Unit::kSeconds,
            "(epsilon,delta) consensus delay (paper §6)")
      .set(m.consensus_delay_s);
  reg.gauge("tx_per_sec", Unit::kNone, "committed payload transactions per second")
      .set(m.tx_per_sec);
  reg.counter("main_pow_blocks", Unit::kCount, "PoW blocks on the eventual main chain")
      .inc(m.main_chain_pow_blocks);
  reg.counter("total_pow_blocks", Unit::kCount, "PoW blocks generated anywhere")
      .inc(m.total_pow_blocks);
  reg.counter("main_micro_blocks", Unit::kCount,
              "NG microblocks on the eventual main chain")
      .inc(m.main_chain_micro_blocks);
  reg.counter("total_micro_blocks", Unit::kCount, "NG microblocks generated anywhere")
      .inc(m.total_micro_blocks);
  reg.counter("main_chain_txs", Unit::kCount,
              "payload transactions committed on the main chain")
      .inc(m.main_chain_txs);
  reg.gauge("prop_delay_p50_s", Unit::kSeconds,
            "block propagation delay, median (paper fig. 7)")
      .set(m.prop_delay_p50_s);
  reg.gauge("prop_delay_p90_s", Unit::kSeconds,
            "block propagation delay, 90th percentile (paper fig. 7)")
      .set(m.prop_delay_p90_s);
  reg.gauge("prop_delay_p99_s", Unit::kSeconds,
            "block propagation delay, 99th percentile (paper fig. 7)")
      .set(m.prop_delay_p99_s);
  // The whole distribution, not just three cuts: cumulative buckets expand
  // through the registry into flat record values (`prop_delay_s_count`,
  // `_sum`, `_le_*`), so aggregates and CSVs carry it with no codec change.
  obs::Histogram& h = reg.histogram(
      "prop_delay_s", {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0},
      Unit::kSeconds, "block propagation delay distribution (paper fig. 7)");
  for (double s : m.prop_delay_samples) h.observe(s);
}

std::vector<std::pair<std::string, double>> to_named_values(const MetricsReport& m) {
  obs::Registry reg;
  register_report(reg, m);
  return reg.snapshot();
}

std::vector<std::pair<std::string, double>> attacker_named_values(
    const AttackerReport& report) {
  obs::Registry reg;
  visit_attacker_fields(report, [&reg](const char* name, auto v) {
    if constexpr (std::is_floating_point_v<std::decay_t<decltype(v)>>) {
      reg.gauge(name, obs::Unit::kNone).set(v);
    } else {
      reg.counter(name, obs::Unit::kCount).inc(static_cast<std::uint64_t>(v));
    }
  });
  return reg.snapshot();
}

}  // namespace bng::metrics
