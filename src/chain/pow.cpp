#include "chain/pow.hpp"

#include <cmath>

#include "chain/validation.hpp"

namespace bng::chain {

std::uint32_t target_to_compact(const crypto::U256& target) {
  int bits = target.bit_length();
  int size = (bits + 7) / 8;
  std::uint32_t mantissa;
  if (size <= 3) {
    mantissa = static_cast<std::uint32_t>(target.limb[0] << (8 * (3 - size)));
  } else {
    mantissa = static_cast<std::uint32_t>(target.shr(8 * (size - 3)).limb[0]);
  }
  // Avoid the sign bit (Bitcoin convention): shift mantissa down if needed.
  if (mantissa & 0x00800000) {
    mantissa >>= 8;
    ++size;
  }
  return (static_cast<std::uint32_t>(size) << 24) | (mantissa & 0x007fffff);
}

crypto::U256 compact_to_target(std::uint32_t compact) {
  const std::uint32_t size = compact >> 24;
  const std::uint32_t mantissa = compact & 0x007fffff;
  crypto::U256 target(mantissa);
  if (size <= 3) return target.shr(8 * (3 - size));
  return target.shl(8 * (size - 3));
}

const crypto::U256& max_target() {
  // Regtest-style: almost no work required at difficulty 1.
  static const crypto::U256 kMax = crypto::U256::from_hex(
      "7fffff0000000000000000000000000000000000000000000000000000000000");
  return kMax;
}

double target_to_difficulty(const crypto::U256& target) {
  // Ratio via doubles: adequate for difficulty bookkeeping (not consensus).
  auto to_double = [](const crypto::U256& v) {
    double acc = 0;
    for (int i = 3; i >= 0; --i) acc = acc * 0x1.0p64 + static_cast<double>(v.limb[i]);
    return acc;
  };
  return to_double(max_target()) / to_double(target);
}

crypto::U256 difficulty_to_target(double difficulty) {
  if (difficulty <= 1.0) return max_target();
  // target = max_target / difficulty, computed via shifting binary search.
  // Convert difficulty to a (mantissa, exponent) halving of the target.
  crypto::U256 target = max_target();
  double remaining = difficulty;
  while (remaining >= 2.0) {
    target = target.shr(1);
    remaining /= 2.0;
  }
  // Final fractional adjustment via 32-bit scaling: target *= 1/remaining.
  const auto scale = static_cast<std::uint64_t>(static_cast<double>(1ull << 32) / remaining);
  crypto::U512 wide = crypto::U256::mul_wide(target, crypto::U256(scale));
  // Divide by 2^32: shift limbs right by half a limb.
  crypto::U256 result;
  for (int i = 0; i < 4; ++i)
    result.limb[i] = (wide.limb[i] >> 32) | (wide.limb[i + 1] << 32);
  return result.is_zero() ? crypto::U256(1) : result;
}

std::optional<std::uint64_t> mine_header(BlockHeader& header, std::uint64_t start_nonce,
                                         std::uint64_t max_tries) {
  for (std::uint64_t i = 0; i < max_tries; ++i) {
    header.nonce = start_nonce + i;
    if (check_pow(header).ok) return header.nonce;
  }
  return std::nullopt;
}

}  // namespace bng::chain
