#include "chain/block.hpp"

#include <stdexcept>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace bng::chain {

void BlockHeader::serialize_unsigned(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(prev.bytes);
  w.f64(timestamp);
  w.bytes(merkle_root.bytes);
  auto target_be = target.to_bytes_be();
  w.bytes(target_be);
  w.u64(nonce);
  w.u8(leader_key.has_value() ? 1 : 0);
  if (leader_key) {
    auto pk = leader_key->serialize();
    w.bytes(pk);
  }
}

void BlockHeader::serialize(ByteWriter& w) const {
  serialize_unsigned(w);
  w.u8(signature.has_value() ? 1 : 0);
  if (signature) {
    auto sig = signature->serialize();
    w.bytes(sig);
  }
}

BlockHeader BlockHeader::deserialize(ByteReader& r) {
  BlockHeader h;
  h.type = static_cast<BlockType>(r.u8());
  auto prev = r.take(32);
  std::copy(prev.begin(), prev.end(), h.prev.bytes.begin());
  h.timestamp = r.f64();
  auto root = r.take(32);
  std::copy(root.begin(), root.end(), h.merkle_root.bytes.begin());
  h.target = crypto::U256::from_bytes_be(r.take(32));
  h.nonce = r.u64();
  if (r.u8() != 0) {
    auto key = crypto::PublicKey::deserialize(r.take(64));
    if (!key) throw std::invalid_argument("BlockHeader: bad leader key");
    h.leader_key = *key;
  }
  if (r.u8() != 0) h.signature = crypto::Signature::deserialize(r.take(64));
  return h;
}

Hash256 BlockHeader::id() const {
  ByteWriter w;
  serialize(w);
  return crypto::sha256d(w.data());
}

Hash256 BlockHeader::signing_hash() const {
  ByteWriter w;
  serialize_unsigned(w);
  return crypto::sha256d(w.data());
}

Block::Block(BlockHeader header, std::vector<TxPtr> txs, std::uint32_t miner, double work)
    : header_(std::move(header)), txs_(std::move(txs)), miner_(miner) {
  work_ = header_.type == BlockType::kMicro ? 0.0 : work;
  id_ = header_.id();
  ByteWriter w;
  header_.serialize(w);
  wire_size_ = w.size();
  for (const auto& tx : txs_) wire_size_ += tx->wire_size();
}

void Block::serialize(ByteWriter& w) const {
  header_.serialize(w);
  w.u32(miner_);
  w.f64(work_);
  w.varint(txs_.size());
  for (const auto& tx : txs_) {
    ByteWriter tw;
    tx->serialize(tw);
    w.varint(tw.size());
    w.bytes(tw.data());
    // Padding bytes are length-only; re-emit zeros to keep sizes faithful.
    w.varint(tx->padding_bytes);
    for (std::uint32_t i = 0; i < tx->padding_bytes; ++i) w.u8(0);
  }
}

namespace {
Transaction deserialize_tx(ByteReader& r) {
  Transaction tx;
  const bool coinbase = r.u8() != 0;
  if (coinbase) tx.coinbase_height = r.u32();
  const auto n_in = r.varint();
  for (std::uint64_t i = 0; i < n_in; ++i) {
    TxInput in;
    auto txid = r.take(32);
    std::copy(txid.begin(), txid.end(), in.prevout.txid.bytes.begin());
    in.prevout.vout = r.u32();
    tx.inputs.push_back(in);
  }
  const auto n_out = r.varint();
  for (std::uint64_t i = 0; i < n_out; ++i) {
    TxOutput out;
    out.value = static_cast<Amount>(r.u64());
    auto owner = r.take(32);
    std::copy(owner.begin(), owner.end(), out.owner.bytes.begin());
    tx.outputs.push_back(out);
  }
  tx.fee = static_cast<Amount>(r.u64());
  if (r.u8() != 0) {
    PoisonPayload p;
    auto accused = r.take(32);
    std::copy(accused.begin(), accused.end(), p.accused_key_block.bytes.begin());
    auto len = r.varint();
    auto header = r.take(len);
    p.pruned_header.assign(header.begin(), header.end());
    auto id = r.take(32);
    std::copy(id.begin(), id.end(), p.pruned_header_id.bytes.begin());
    tx.poison = std::move(p);
  }
  tx.padding_bytes = r.u32();
  return tx;
}
}  // namespace

BlockPtr Block::deserialize(ByteReader& r) {
  BlockHeader header = BlockHeader::deserialize(r);
  const std::uint32_t miner = r.u32();
  const double work = r.f64();
  const auto n_txs = r.varint();
  std::vector<TxPtr> txs;
  txs.reserve(n_txs);
  for (std::uint64_t i = 0; i < n_txs; ++i) {
    const auto tx_len = r.varint();
    ByteReader tr(r.take(tx_len));
    Transaction tx = deserialize_tx(tr);
    const auto padding = r.varint();
    r.take(padding);  // discard padding zeros
    if (tx.padding_bytes != padding)
      throw std::invalid_argument("Block::deserialize: padding mismatch");
    txs.push_back(std::make_shared<Transaction>(std::move(tx)));
  }
  return std::make_shared<Block>(std::move(header), std::move(txs), miner, work);
}

Amount Block::total_fees() const {
  Amount total = 0;
  for (const auto& tx : txs_)
    if (!tx->is_coinbase()) total += tx->fee;
  return total;
}

bool Block::merkle_ok() const { return compute_merkle_root(txs_) == header_.merkle_root; }

Hash256 compute_merkle_root(const std::vector<TxPtr>& txs) {
  std::vector<Hash256> ids;
  ids.reserve(txs.size());
  for (const auto& tx : txs) ids.push_back(tx->id());
  return crypto::merkle_root(ids);
}

BlockPtr make_genesis(std::size_t n_outputs, Amount value_each) {
  auto tx = std::make_shared<Transaction>();
  tx->coinbase_height = 0;
  tx->outputs.reserve(n_outputs);
  for (std::size_t i = 0; i < n_outputs; ++i)
    tx->outputs.push_back(TxOutput{value_each, address_from_tag(i)});
  BlockHeader h;
  h.type = BlockType::kPow;
  h.prev = Hash256{};  // no predecessor
  h.timestamp = 0;
  std::vector<TxPtr> txs{std::move(tx)};
  h.merkle_root = compute_merkle_root(txs);
  return std::make_shared<Block>(std::move(h), std::move(txs), UINT32_MAX);
}

}  // namespace bng::chain
