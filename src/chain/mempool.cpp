#include "chain/mempool.hpp"

namespace bng::chain {

bool Mempool::submit(const TxPtr& tx) {
  Hash256 txid = tx->id();
  if (by_id_.count(txid) > 0) return false;
  by_id_.emplace(txid, order_.size());
  order_.push_back(tx);
  return true;
}

void Mempool::mark_included(const Hash256& txid) { included_.insert(txid); }

void Mempool::mark_excluded(const Hash256& txid) { included_.erase(txid); }

std::vector<TxPtr> Mempool::assemble(std::size_t max_bytes, std::size_t reserve_bytes) const {
  std::vector<TxPtr> out;
  if (reserve_bytes >= max_bytes) return out;
  std::size_t budget = max_bytes - reserve_bytes;
  std::size_t min_size = SIZE_MAX;
  for (const auto& tx : order_) {
    const std::size_t sz = tx->wire_size();
    min_size = std::min(min_size, sz);
    if (budget < min_size) break;  // nothing seen so far can fit any more
    if (sz > budget) continue;
    if (included_.count(tx->id()) > 0) continue;
    out.push_back(tx);
    budget -= sz;
  }
  return out;
}

}  // namespace bng::chain
