#include "chain/transaction.hpp"

#include "crypto/sha256.hpp"

namespace bng::chain {

void Transaction::serialize(ByteWriter& w) const {
  w.u8(is_coinbase() ? 1 : 0);
  if (is_coinbase()) w.u32(*coinbase_height);
  w.varint(inputs.size());
  for (const auto& in : inputs) {
    w.bytes(in.prevout.txid.bytes);
    w.u32(in.prevout.vout);
  }
  w.varint(outputs.size());
  for (const auto& out : outputs) {
    w.u64(static_cast<std::uint64_t>(out.value));
    w.bytes(out.owner.bytes);
  }
  w.u64(static_cast<std::uint64_t>(fee));
  w.u8(is_poison() ? 1 : 0);
  if (is_poison()) {
    w.bytes(poison->accused_key_block.bytes);
    w.varint(poison->pruned_header.size());
    w.bytes(poison->pruned_header);
    w.bytes(poison->pruned_header_id.bytes);
  }
  w.u32(padding_bytes);
}

std::size_t Transaction::wire_size() const {
  if (cached_size_ == 0) {
    ByteWriter w;
    serialize(w);
    cached_size_ = w.size() + padding_bytes;
  }
  return cached_size_;
}

Hash256 Transaction::id() const {
  if (!cached_id_) {
    ByteWriter w;
    serialize(w);
    cached_id_ = crypto::sha256d(w.data());
  }
  return *cached_id_;
}

TxPtr make_transfer(const Outpoint& from, Amount value, const Hash256& to, Amount fee,
                    std::uint32_t padding_bytes) {
  auto tx = std::make_shared<Transaction>();
  tx->inputs.push_back(TxInput{from});
  tx->outputs.push_back(TxOutput{value, to});
  tx->fee = fee;
  tx->padding_bytes = padding_bytes;
  return tx;
}

Hash256 address_of(const crypto::PublicKey& key) {
  auto ser = key.serialize();
  return crypto::sha256(std::span<const std::uint8_t>(ser.data(), ser.size()));
}

Hash256 address_from_tag(std::uint64_t tag) {
  ByteWriter w;
  w.u64(0x61646472u);  // "addr"
  w.u64(tag);
  return crypto::sha256(w.data());
}

}  // namespace bng::chain
