// Consensus parameters for Bitcoin and Bitcoin-NG chains.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace bng::chain {

enum class Protocol {
  kBitcoin,   ///< Stock Nakamoto consensus (paper §3)
  kBitcoinNG, ///< Key blocks + microblocks (paper §4)
  kGhost,     ///< Heaviest-subtree fork choice (paper §9, extension)
};

enum class TieBreak {
  kRandom,     ///< Paper's prescription (§3 fn. 2): pick uniformly at random.
  kFirstSeen,  ///< Operational bitcoind behaviour.
};

struct Params {
  Protocol protocol = Protocol::kBitcoinNG;

  // --- Proof-of-work plane -------------------------------------------------
  /// Target mean interval between PoW blocks (Bitcoin blocks / NG key blocks).
  Seconds block_interval = 100.0;
  /// Retarget period in blocks (Bitcoin mainnet: 2016).
  std::uint32_t retarget_interval = 2016;
  /// Clamp factor for a single retarget step (Bitcoin mainnet: 4).
  double retarget_clamp = 4.0;

  // --- Transaction serialization plane (NG only) --------------------------
  /// Leader's target interval between microblocks.
  Seconds microblock_interval = 10.0;
  /// Validity rule (§4.2): a microblock whose timestamp is less than this far
  /// after its predecessor's is invalid (rate-limits a swamping leader).
  Seconds min_microblock_interval = 0.0;
  /// Maximum microblock payload in bytes (§4.2).
  std::size_t max_microblock_size = 1'000'000;

  // --- Sizes ---------------------------------------------------------------
  /// Maximum Bitcoin block payload in bytes.
  std::size_t max_block_size = 1'000'000;

  // --- Remuneration (§4.4, §4.5) -------------------------------------------
  /// New coins minted per key block / Bitcoin block.
  Amount block_subsidy = 25 * kCoin;
  /// Fraction of a transaction fee earned by the leader that includes it;
  /// the rest goes to the next key-block miner. Paper: 40% (valid window at
  /// alpha = 1/4 is 37%..43%, see analysis/incentives).
  double leader_fee_fraction = 0.40;
  /// Fraction of revoked revenue granted to the placer of a poison
  /// transaction. Paper: "e.g., 5%".
  double poison_reward_fraction = 0.05;
  /// Coinbase maturity in blocks (§4.4): 100, as in Bitcoin.
  std::uint32_t coinbase_maturity = 100;

  // --- Fork choice ---------------------------------------------------------
  TieBreak tie_break = TieBreak::kRandom;
  /// Probability that kRandom tie-breaking switches to the newly-arrived
  /// equal-work branch. 0.5 is the paper's unbiased coin; adversary sweeps
  /// use it as the gamma knob (share of honest power an attacker's matching
  /// block captures in a race). Ignored under kFirstSeen.
  double tie_switch_prob = 0.5;

  /// Bitcoin-mainnet-flavoured defaults.
  static Params bitcoin() {
    Params p;
    p.protocol = Protocol::kBitcoin;
    p.block_interval = 600.0;
    p.max_block_size = 1'000'000;
    return p;
  }

  /// Paper's NG experiment defaults (§8.1): key blocks every 100 s.
  static Params bitcoin_ng() {
    Params p;
    p.protocol = Protocol::kBitcoinNG;
    p.block_interval = 100.0;
    p.microblock_interval = 10.0;
    return p;
  }
};

}  // namespace bng::chain
