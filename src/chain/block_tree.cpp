#include "chain/block_tree.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bng::chain {

BlockTree::BlockTree(BlockPtr genesis, TieBreak tie_break, ForkChoice fork_choice, Rng* rng,
                     std::shared_ptr<BlockInterner> interner)
    : tie_break_(tie_break),
      fork_choice_(fork_choice),
      rng_(rng),
      interner_(interner != nullptr ? std::move(interner)
                                    : std::make_shared<BlockInterner>()) {
  if (tie_break_ == TieBreak::kRandom && rng_ == nullptr)
    throw std::invalid_argument("BlockTree: random tie-break needs an Rng");
  Entry e;
  e.block = std::move(genesis);
  e.id = interner_->intern(e.block->id());
  e.parent = -1;
  e.jump = 0;  // genesis jumps to itself
  e.received = 0;
  if (e.id >= index_by_id_.size()) index_by_id_.resize(e.id + 1, kNoIndex);
  index_by_id_[e.id] = 0;
  entries_.push_back(std::move(e));
  tip_history_.push_back({0.0, 0});
}

std::optional<std::uint32_t> BlockTree::find(const Hash256& id) const {
  const std::uint32_t idx = index_of_id(interner_->lookup(id));
  if (idx == kNoIndex) return std::nullopt;
  return idx;
}

std::uint32_t BlockTree::insert(const BlockPtr& block, BlockId id, Seconds received_at,
                                double work) {
  if (contains_id(id)) throw std::invalid_argument("BlockTree: duplicate block");
  const std::uint32_t parent = index_of_id(interner_->lookup(block->header().prev));
  if (parent == kNoIndex) throw std::invalid_argument("BlockTree: unknown parent");

  Entry e;
  e.block = block;
  e.id = id;
  e.parent = static_cast<std::int32_t>(parent);
  e.height = entries_[parent].height + 1;
  e.pow_height = entries_[parent].pow_height + (block->is_pow() ? 1 : 0);
  e.chain_work = entries_[parent].chain_work + work;
  e.subtree_work = work;
  e.received = received_at;
  e.chain_tx_count = entries_[parent].chain_tx_count;
  e.chain_fee_sum = entries_[parent].chain_fee_sum;
  for (const auto& tx : block->txs()) {
    if (tx->is_coinbase() || tx->is_poison()) continue;
    ++e.chain_tx_count;
    e.chain_fee_sum += tx->fee;
  }
  e.epoch_key_block = block->type() == BlockType::kKey
                          ? static_cast<std::uint32_t>(entries_.size())
                          : entries_[parent].epoch_key_block;

  // Skew-binary skip pointer: when the parent's two previous jump gaps are
  // equal, fold them into one double-length jump; otherwise start a fresh
  // unit jump. Gap lengths depend only on depth, so all entries at one
  // height jump to one common height.
  {
    const std::uint32_t j = entries_[parent].jump;
    const std::uint32_t jj = entries_[j].jump;
    const std::uint32_t gap1 = entries_[parent].height - entries_[j].height;
    const std::uint32_t gap2 = entries_[j].height - entries_[jj].height;
    e.jump = (gap1 == gap2) ? jj : parent;
  }

  const auto idx = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(std::move(e));
  entries_[parent].children.push_back(idx);
  if (id >= index_by_id_.size()) {
    index_by_id_.resize(std::max<std::size_t>(index_by_id_.size() * 2,
                                              static_cast<std::size_t>(id) + 1),
                        kNoIndex);
  }
  index_by_id_[id] = idx;

  // Propagate subtree work up for GHOST.
  if (work > 0) {
    for (std::int32_t a = static_cast<std::int32_t>(parent); a != -1;
         a = entries_[static_cast<std::uint32_t>(a)].parent)
      entries_[static_cast<std::uint32_t>(a)].subtree_work += work;
  }

  if (fork_choice_ == ForkChoice::kHeaviestChain) {
    maybe_switch_tip(idx, received_at);
  } else {
    recompute_ghost_tip(received_at);
  }
  return idx;
}

bool BlockTree::tie_break_switch() {
  if (tie_break_ == TieBreak::kFirstSeen) return false;
  // The unbiased default must keep the exact historical draw sequence
  // (golden digests pin it); only a biased gamma takes the uniform() path.
  if (tie_switch_prob_ == 0.5) return rng_->next_below(2) == 1;
  if (tie_switch_prob_ <= 0.0) return false;
  if (tie_switch_prob_ >= 1.0) return true;
  return rng_->uniform() < tie_switch_prob_;
}

void BlockTree::maybe_switch_tip(std::uint32_t candidate, Seconds at) {
  const Entry& cand = entries_[candidate];
  const Entry& best = entries_[best_tip_];
  // A descendant of the current tip always extends it.
  if (cand.parent >= 0 && static_cast<std::uint32_t>(cand.parent) == best_tip_) {
    set_tip(candidate, at);
    return;
  }
  if (cand.chain_work > best.chain_work) {
    set_tip(candidate, at);
  } else if (cand.chain_work == best.chain_work && !is_ancestor(candidate, best_tip_)) {
    // Equal-weight fork: paper §3 prescribes random tie-breaking — but only
    // weight-bearing candidates draw the coin. A zero-weight block (an NG
    // microblock, §4.2 "microblocks do not affect the weight of the chain")
    // extending a rival equal-work branch gives that branch no new claim to
    // the tip; re-rolling the tie per microblock would let a losing leader
    // (or a selfish miner's revealed epoch) win settled races by attrition.
    if (cand.block->work() > 0 && tie_break_switch()) set_tip(candidate, at);
  }
}

void BlockTree::recompute_ghost_tip(Seconds at) {
  // Descend from genesis following the heaviest subtree; then extend through
  // weightless blocks (microblocks) to the deepest descendant.
  std::uint32_t cur = kGenesisIndex;
  for (;;) {
    const Entry& e = entries_[cur];
    std::uint32_t best_child = UINT32_MAX;
    double best_work = -1;
    for (std::uint32_t c : e.children) {
      double w = entries_[c].subtree_work;
      if (w > best_work || (w == best_work && best_child != UINT32_MAX && tie_break_switch())) {
        best_work = w;
        best_child = c;
      }
    }
    if (best_child == UINT32_MAX || best_work <= 0) break;
    cur = best_child;
  }
  if (cur != best_tip_) set_tip(cur, at);
}

void BlockTree::set_tip(std::uint32_t tip, Seconds at) {
  best_tip_ = tip;
  tip_history_.push_back({at, tip});
}

std::uint32_t BlockTree::ancestor_at_height(std::uint32_t idx, std::uint32_t height) const {
  std::uint32_t cur = idx;
  while (entries_[cur].height > height) {
    const std::uint32_t j = entries_[cur].jump;
    cur = entries_[j].height >= height ? j
                                       : static_cast<std::uint32_t>(entries_[cur].parent);
  }
  return cur;
}

bool BlockTree::is_ancestor(std::uint32_t anc, std::uint32_t desc) const {
  const std::uint32_t target_height = entries_[anc].height;
  if (entries_[desc].height < target_height) return false;
  return ancestor_at_height(desc, target_height) == anc;
}

std::vector<std::uint32_t> BlockTree::path_from_genesis(std::uint32_t tip) const {
  std::vector<std::uint32_t> path;
  path.reserve(entries_[tip].height + 1);
  for (std::int32_t cur = static_cast<std::int32_t>(tip); cur != -1;
       cur = entries_[static_cast<std::uint32_t>(cur)].parent)
    path.push_back(static_cast<std::uint32_t>(cur));
  std::reverse(path.begin(), path.end());
  return path;
}

std::uint32_t BlockTree::common_ancestor(std::uint32_t a, std::uint32_t b) const {
  // Equalize heights, then descend both by jump while the jumps disagree
  // (the ancestor is at or below the jump height) and by parent otherwise.
  // Jump heights are a pure function of depth, so a and b stay level.
  if (entries_[a].height > entries_[b].height)
    a = ancestor_at_height(a, entries_[b].height);
  else if (entries_[b].height > entries_[a].height)
    b = ancestor_at_height(b, entries_[a].height);
  while (a != b) {
    const std::uint32_t ja = entries_[a].jump;
    const std::uint32_t jb = entries_[b].jump;
    if (ja != jb && entries_[ja].height == entries_[jb].height) {
      a = ja;
      b = jb;
    } else {
      a = static_cast<std::uint32_t>(entries_[a].parent);
      b = static_cast<std::uint32_t>(entries_[b].parent);
    }
  }
  return a;
}

std::uint32_t BlockTree::ancestor_at_or_before(std::uint32_t tip, Seconds time) const {
  // Timestamps are non-decreasing along a chain (a block is built after its
  // parent existed), so if the jump target still violates `time`, everything
  // between it and `cur` does too and the whole stride can be skipped.
  std::uint32_t cur = tip;
  while (entries_[cur].parent != -1 && entries_[cur].block->header().timestamp > time) {
    const std::uint32_t j = entries_[cur].jump;
    cur = (j != cur && entries_[j].block->header().timestamp > time)
              ? j
              : static_cast<std::uint32_t>(entries_[cur].parent);
  }
  return cur;
}

}  // namespace bng::chain
