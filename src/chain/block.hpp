// Blocks: Bitcoin PoW blocks, NG key blocks and NG microblocks.
//
// Paper §4: "The protocol introduces two types of blocks: key blocks for
// leader election and microblocks that contain the ledger entries."
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "chain/transaction.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/u256.hpp"

namespace bng::chain {

enum class BlockType : std::uint8_t {
  kPow = 0,    ///< Bitcoin block: PoW + transactions.
  kKey = 1,    ///< NG key block: PoW + leader public key, no ledger entries.
  kMicro = 2,  ///< NG microblock: signed by the epoch key, carries entries.
};

struct BlockHeader {
  BlockType type = BlockType::kPow;
  Hash256 prev;               ///< id of the predecessor block header
  Seconds timestamp = 0;      ///< "current GMT time"
  Hash256 merkle_root;        ///< root over the contained transactions
  crypto::U256 target;        ///< PoW target (kPow / kKey only)
  std::uint64_t nonce = 0;    ///< PoW nonce (kPow / kKey only)
  /// Key blocks carry the public key used to sign the epoch's microblocks
  /// (§4.1). Empty for other types.
  std::optional<crypto::PublicKey> leader_key;
  /// Microblock signature over the header (§4.2). Empty for other types.
  std::optional<crypto::Signature> signature;

  /// Serialize everything except the signature (the signing preimage).
  void serialize_unsigned(ByteWriter& w) const;
  /// Serialize including the signature (the wire format / id preimage).
  void serialize(ByteWriter& w) const;
  static BlockHeader deserialize(ByteReader& r);

  /// Header id: sha256d over the full serialization.
  [[nodiscard]] Hash256 id() const;
  /// Hash the signing preimage (what the leader signs for microblocks).
  [[nodiscard]] Hash256 signing_hash() const;
};

class Block {
 public:
  /// `work` is the proof-of-work weight in difficulty units (0 for
  /// microblocks). In real-PoW mode it is implied by the header target; the
  /// simulator carries it explicitly (§7 "Simulated Mining").
  Block(BlockHeader header, std::vector<TxPtr> txs, std::uint32_t miner, double work = 1.0);

  [[nodiscard]] const BlockHeader& header() const { return header_; }
  [[nodiscard]] const Hash256& id() const { return id_; }
  [[nodiscard]] const std::vector<TxPtr>& txs() const { return txs_; }
  [[nodiscard]] BlockType type() const { return header_.type; }
  [[nodiscard]] bool is_pow() const { return header_.type != BlockType::kMicro; }

  /// Simulation-level identity of the generating miner (for metrics; a real
  /// deployment would recover this from the coinbase).
  [[nodiscard]] std::uint32_t miner() const { return miner_; }

  /// Total wire size: header + transactions.
  [[nodiscard]] std::size_t wire_size() const { return wire_size_; }

  /// PoW weight in difficulty units; 0 for microblocks (§4.2: "microblocks
  /// do not affect the weight of the chain").
  [[nodiscard]] double work() const { return work_; }

  /// Full wire serialization (header + transactions). The inverse of
  /// deserialize(); `miner` and `work` are simulation annotations carried
  /// alongside the consensus payload.
  void serialize(ByteWriter& w) const;
  static std::shared_ptr<const Block> deserialize(ByteReader& r);

  /// Sum of transaction fees.
  [[nodiscard]] Amount total_fees() const;

  /// Recompute the merkle root over txs() and compare with the header.
  [[nodiscard]] bool merkle_ok() const;

 private:
  BlockHeader header_;
  std::vector<TxPtr> txs_;
  Hash256 id_;
  std::size_t wire_size_ = 0;
  std::uint32_t miner_ = 0;
  double work_ = 1.0;
};

using BlockPtr = std::shared_ptr<const Block>;

/// Compute the merkle root over a set of transactions.
Hash256 compute_merkle_root(const std::vector<TxPtr>& txs);

/// Genesis block for a simulation: a single coinbase-like transaction with
/// `n_outputs` outputs of `value_each`, spendable by synthetic transactions.
BlockPtr make_genesis(std::size_t n_outputs, Amount value_each);

}  // namespace bng::chain
