// UTXO set and ledger replay.
//
// The replicated state machine of the paper (§2-3): balances move between
// addresses via transactions spending unspent outputs. The Ledger replays a
// chain path, enforcing value conservation, coinbase maturity (§4.4), the
// NG fee split (§4.4) and poison-transaction revocation (§4.5).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "chain/transaction.hpp"

namespace bng::chain {

struct UtxoEntry {
  TxOutput out;
  /// PoW height of the containing block if the output is from a coinbase
  /// (maturity applies); nullopt otherwise.
  std::optional<std::uint32_t> coinbase_pow_height;
};

class UtxoSet {
 public:
  void add(const Outpoint& op, UtxoEntry entry);
  /// Remove and return; nullopt if absent.
  std::optional<UtxoEntry> spend(const Outpoint& op);
  [[nodiscard]] const UtxoEntry* find(const Outpoint& op) const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Sum of values owned by `addr`; if `min_matured_height` is given, only
  /// counts coinbase outputs matured at that PoW height. O(log k) in the
  /// owner's immature-coinbase heights via the per-owner running index
  /// (previously a full scan of the UTXO set).
  [[nodiscard]] Amount balance(const Hash256& addr,
                               std::optional<std::uint32_t> matured_at = std::nullopt,
                               std::uint32_t maturity = 0) const;

 private:
  /// Running per-owner balance, maintained by add/spend. `total` counts every
  /// owned output; `coinbase_by_height` tracks the coinbase slice so maturity
  /// filters subtract exactly the not-yet-matured part.
  struct OwnerBalance {
    Amount total = 0;
    std::map<std::uint32_t, Amount> coinbase_by_height;
  };

  void credit(const UtxoEntry& entry);
  void debit(const UtxoEntry& entry);

  std::unordered_map<Outpoint, UtxoEntry, OutpointHasher> map_;
  std::unordered_map<Hash256, OwnerBalance, Hash256Hasher> by_owner_;
};

/// Replays a chain, block by block, maintaining the UTXO state machine.
class Ledger {
 public:
  explicit Ledger(Params params);

  struct Result {
    bool ok = true;
    std::string error;
    static Result fail(std::string msg) { return {false, std::move(msg)}; }
  };

  /// Apply the next block in the chain. Blocks must be fed in chain order,
  /// starting with genesis. Performs full validation of ledger rules.
  Result apply_block(const Block& block);

  [[nodiscard]] const UtxoSet& utxo() const { return utxo_; }
  /// Spendable (matured) balance at the current height.
  [[nodiscard]] Amount spendable_balance(const Hash256& addr) const;
  /// Balance including immature coinbase outputs.
  [[nodiscard]] Amount total_balance(const Hash256& addr) const;

  [[nodiscard]] std::uint32_t pow_height() const { return pow_height_; }
  [[nodiscard]] std::uint64_t transactions_applied() const { return txs_applied_; }

  /// Leaders already hit by a poison transaction ("Only one poison
  /// transaction can be placed per cheater", §4.5).
  [[nodiscard]] bool is_poisoned(const Hash256& accused_key_block) const {
    return poisoned_.count(accused_key_block) > 0;
  }

 private:
  Result apply_coinbase(const Block& block, const Transaction& tx);
  Result apply_transfer(const Transaction& tx);
  Result apply_poison(const Block& block, const Transaction& tx);

  Params params_;
  UtxoSet utxo_;
  std::uint32_t pow_height_ = 0;  // PoW blocks applied so far (genesis = 0)
  std::uint64_t txs_applied_ = 0;
  /// Key-block id -> (coinbase txid, leader address) for poison lookups.
  struct KeyBlockInfo {
    Hash256 coinbase_txid;
    Hash256 leader_address;
    std::uint32_t n_outputs = 0;
  };
  std::unordered_map<Hash256, KeyBlockInfo, Hash256Hasher> key_blocks_;
  /// Most recent key block id (the accused's successor pays its fee share).
  Hash256 last_key_block_;
  Hash256 prev_key_block_;
  std::unordered_set<Hash256, Hash256Hasher> poisoned_;
};

}  // namespace bng::chain
