// Block tree and fork choice.
//
// Every node maintains its own view of the block tree. Fork choice follows
// the paper: "the winning chain is the heaviest one ... with random
// tie-breaking" (§3), where in Bitcoin-NG "microblocks do not affect the
// weight of the chain" (§4.2). A heaviest-subtree (GHOST) mode supports the
// §9 comparison.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace bng::chain {

class BlockTree {
 public:
  enum class ForkChoice {
    kHeaviestChain,    ///< Bitcoin / Bitcoin-NG rule.
    kHeaviestSubtree,  ///< GHOST rule.
  };

  struct Entry {
    BlockPtr block;
    std::int32_t parent = -1;       ///< index of parent; -1 for genesis
    std::uint32_t height = 0;       ///< distance from genesis (all blocks)
    std::uint32_t pow_height = 0;   ///< number of PoW blocks up to here
    double chain_work = 0;          ///< accumulated PoW work along the chain
    double subtree_work = 0;        ///< own + descendants' work (GHOST)
    Seconds received = 0;           ///< local arrival/creation time
    std::vector<std::uint32_t> children;
    // Cumulative chain statistics (genesis excluded):
    std::uint64_t chain_tx_count = 0;  ///< payload txs (excl. coinbase/poison)
    Amount chain_fee_sum = 0;          ///< payload tx fees along the chain
    /// Index of the nearest key-block ancestor (or self); genesis index when
    /// no key block exists yet. Defines the current NG epoch.
    std::uint32_t epoch_key_block = 0;
  };

  /// A record of every best-tip change, consumed by the metrics suite.
  struct TipChange {
    Seconds at;
    std::uint32_t tip;
  };

  BlockTree(BlockPtr genesis, TieBreak tie_break, ForkChoice fork_choice, Rng* rng);

  /// Insert a block whose parent is already in the tree. `work` is the PoW
  /// weight contributed (0 for microblocks). Returns the new entry's index.
  /// Throws if the parent is unknown or the block is a duplicate.
  std::uint32_t insert(const BlockPtr& block, Seconds received_at, double work);

  [[nodiscard]] bool contains(const Hash256& id) const { return index_.count(id) > 0; }
  [[nodiscard]] std::optional<std::uint32_t> find(const Hash256& id) const;
  [[nodiscard]] const Entry& entry(std::uint32_t idx) const { return entries_[idx]; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::uint32_t best_tip() const { return best_tip_; }
  [[nodiscard]] const Entry& best_entry() const { return entries_[best_tip_]; }
  static constexpr std::uint32_t kGenesisIndex = 0;

  /// Is `anc` an ancestor of (or equal to) `desc`?
  [[nodiscard]] bool is_ancestor(std::uint32_t anc, std::uint32_t desc) const;

  /// Indices from genesis to `tip`, inclusive.
  [[nodiscard]] std::vector<std::uint32_t> path_from_genesis(std::uint32_t tip) const;

  [[nodiscard]] std::uint32_t common_ancestor(std::uint32_t a, std::uint32_t b) const;

  /// Last block on the path to `tip` whose block timestamp is <= `time`
  /// (used by the consensus-delay metric).
  [[nodiscard]] std::uint32_t ancestor_at_or_before(std::uint32_t tip, Seconds time) const;

  /// History of best-tip switches, in order (first entry is genesis at 0).
  [[nodiscard]] const std::vector<TipChange>& tip_history() const { return tip_history_; }

 private:
  void maybe_switch_tip(std::uint32_t candidate, Seconds at);
  void recompute_ghost_tip(Seconds at);
  void set_tip(std::uint32_t tip, Seconds at);
  [[nodiscard]] bool tie_break_switch();

  TieBreak tie_break_;
  ForkChoice fork_choice_;
  Rng* rng_;  ///< used for random tie-breaking only; may be null for kFirstSeen
  std::vector<Entry> entries_;
  std::unordered_map<Hash256, std::uint32_t, Hash256Hasher> index_;
  std::uint32_t best_tip_ = 0;
  std::vector<TipChange> tip_history_;
};

}  // namespace bng::chain
