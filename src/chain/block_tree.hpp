// Block tree and fork choice.
//
// Every node maintains its own view of the block tree. Fork choice follows
// the paper: "the winning chain is the heaviest one ... with random
// tie-breaking" (§3), where in Bitcoin-NG "microblocks do not affect the
// weight of the chain" (§4.2). A heaviest-subtree (GHOST) mode supports the
// §9 comparison.
//
// Identity is interned: the tree holds no Hash256 map of its own. A shared
// per-experiment BlockInterner assigns each block hash a dense u32 BlockId
// once at first sight, and the tree maps BlockId -> entry index through a
// flat vector — so membership tests and index lookups on the receive path
// are single array reads, and all trees of one deployment agree on ids.
// Ancestry queries (`is_ancestor`, `common_ancestor`,
// `ancestor_at_or_before`) run in O(log height) over skip-ancestor "jump"
// pointers computed at insert (the skew-binary level-ancestor scheme: the
// jump length is a pure function of depth, so two nodes at equal depth jump
// to equal depths — which is what makes the common-ancestor descent sound).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "chain/params.hpp"
#include "common/intern.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace bng::chain {

class BlockTree {
 public:
  enum class ForkChoice {
    kHeaviestChain,    ///< Bitcoin / Bitcoin-NG rule.
    kHeaviestSubtree,  ///< GHOST rule.
  };

  struct Entry {
    BlockPtr block;
    BlockId id = kNoBlockId;        ///< interned block identity
    std::int32_t parent = -1;       ///< index of parent; -1 for genesis
    std::uint32_t jump = 0;         ///< skip-ancestor index (genesis: self)
    std::uint32_t height = 0;       ///< distance from genesis (all blocks)
    std::uint32_t pow_height = 0;   ///< number of PoW blocks up to here
    double chain_work = 0;          ///< accumulated PoW work along the chain
    double subtree_work = 0;        ///< own + descendants' work (GHOST)
    Seconds received = 0;           ///< local arrival/creation time
    std::vector<std::uint32_t> children;
    // Cumulative chain statistics (genesis excluded):
    std::uint64_t chain_tx_count = 0;  ///< payload txs (excl. coinbase/poison)
    Amount chain_fee_sum = 0;          ///< payload tx fees along the chain
    /// Index of the nearest key-block ancestor (or self); genesis index when
    /// no key block exists yet. Defines the current NG epoch.
    std::uint32_t epoch_key_block = 0;
  };

  /// A record of every best-tip change, consumed by the metrics suite.
  struct TipChange {
    Seconds at;
    std::uint32_t tip;
  };

  /// No entry at this index / id.
  static constexpr std::uint32_t kNoIndex = UINT32_MAX;

  /// `interner` is the experiment-wide id assigner shared by every tree of a
  /// deployment (see net::Network::interner()); a standalone tree (unit
  /// tests, benches) may pass nullptr and owns a private one.
  BlockTree(BlockPtr genesis, TieBreak tie_break, ForkChoice fork_choice, Rng* rng,
            std::shared_ptr<BlockInterner> interner = nullptr);

  /// Gamma knob for kRandom tie-breaking (see Params::tie_switch_prob). The
  /// 0.5 default keeps the original unbiased draw path bit-for-bit.
  void set_tie_switch_prob(double p) { tie_switch_prob_ = p; }

  /// Insert a block whose parent is already in the tree. `work` is the PoW
  /// weight contributed (0 for microblocks). Returns the new entry's index.
  /// Throws if the parent is unknown or the block is a duplicate.
  /// The two-argument overload takes the pre-interned id and performs no
  /// hash-map lookup at all; the convenience overload interns internally
  /// (one lookup — the previous code paid three: contains + find + emplace).
  std::uint32_t insert(const BlockPtr& block, BlockId id, Seconds received_at, double work);
  std::uint32_t insert(const BlockPtr& block, Seconds received_at, double work) {
    return insert(block, interner_->intern(block->id()), received_at, work);
  }

  /// Intern a hash through the tree's shared interner (assigns at first
  /// sight; cheap pass-through for already-seen hashes).
  BlockId intern(const Hash256& h) { return interner_->intern(h); }
  [[nodiscard]] const BlockInterner& interner() const { return *interner_; }
  [[nodiscard]] const std::shared_ptr<BlockInterner>& interner_ptr() const {
    return interner_;
  }

  // --- Id-indexed fast path (no hashing) ------------------------------------
  [[nodiscard]] bool contains_id(BlockId id) const { return index_of_id(id) != kNoIndex; }
  [[nodiscard]] std::uint32_t index_of_id(BlockId id) const {
    return id < index_by_id_.size() ? index_by_id_[id] : kNoIndex;
  }

  // --- Hash-keyed convenience (single interner lookup) ----------------------
  [[nodiscard]] bool contains(const Hash256& id) const {
    return index_of_id(interner_->lookup(id)) != kNoIndex;
  }
  [[nodiscard]] std::optional<std::uint32_t> find(const Hash256& id) const;

  [[nodiscard]] const Entry& entry(std::uint32_t idx) const { return entries_[idx]; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::uint32_t best_tip() const { return best_tip_; }
  [[nodiscard]] const Entry& best_entry() const { return entries_[best_tip_]; }
  static constexpr std::uint32_t kGenesisIndex = 0;

  /// Is `anc` an ancestor of (or equal to) `desc`? O(log height).
  [[nodiscard]] bool is_ancestor(std::uint32_t anc, std::uint32_t desc) const;

  /// Ancestor of `idx` at exactly `height` (requires height <= idx's height).
  /// O(log height) via jump pointers.
  [[nodiscard]] std::uint32_t ancestor_at_height(std::uint32_t idx,
                                                 std::uint32_t height) const;

  /// Indices from genesis to `tip`, inclusive.
  [[nodiscard]] std::vector<std::uint32_t> path_from_genesis(std::uint32_t tip) const;

  [[nodiscard]] std::uint32_t common_ancestor(std::uint32_t a, std::uint32_t b) const;

  /// Last block on the path to `tip` whose block timestamp is <= `time`
  /// (used by the consensus-delay metric). Accelerated by jump pointers;
  /// chain timestamps are non-decreasing root-to-tip (a child is built after
  /// its parent exists), which makes the skip sound.
  [[nodiscard]] std::uint32_t ancestor_at_or_before(std::uint32_t tip, Seconds time) const;

  /// History of best-tip switches, in order (first entry is genesis at 0).
  [[nodiscard]] const std::vector<TipChange>& tip_history() const { return tip_history_; }

 private:
  void maybe_switch_tip(std::uint32_t candidate, Seconds at);
  void recompute_ghost_tip(Seconds at);
  void set_tip(std::uint32_t tip, Seconds at);
  [[nodiscard]] bool tie_break_switch();

  TieBreak tie_break_;
  double tie_switch_prob_ = 0.5;
  ForkChoice fork_choice_;
  Rng* rng_;  ///< used for random tie-breaking only; may be null for kFirstSeen
  std::shared_ptr<BlockInterner> interner_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> index_by_id_;  ///< BlockId -> entry index / kNoIndex
  std::uint32_t best_tip_ = 0;
  std::vector<TipChange> tip_history_;
};

}  // namespace bng::chain
