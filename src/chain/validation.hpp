// Stateless and semi-contextual block validation rules.
#pragma once

#include <string>

#include "chain/block.hpp"
#include "chain/params.hpp"

namespace bng::chain {

struct ValidationResult {
  bool ok = true;
  std::string error;

  static ValidationResult fail(std::string msg) { return {false, std::move(msg)}; }
  explicit operator bool() const { return ok; }
};

/// Does the header hash meet its own declared target? (Real-PoW mode; the
/// large-scale simulation skips this exactly like bitcoind's regtest mode,
/// paper §7 "Simulated Mining".)
ValidationResult check_pow(const BlockHeader& header);

/// Merkle commitment over the block's transactions.
ValidationResult check_merkle(const Block& block);

/// Size limit for the given type.
ValidationResult check_size(const Block& block, const Params& params);

/// Microblock rules (§4.2): signed by the epoch key; timestamp not in the
/// future (vs `now`) and at least `min_microblock_interval` after the
/// predecessor's timestamp.
ValidationResult check_microblock(const Block& block, const crypto::PublicKey& epoch_key,
                                  Seconds prev_timestamp, Seconds now, const Params& params,
                                  bool verify_signature);

/// Key-block structural rules (§4.1): must carry a leader key and a coinbase.
ValidationResult check_key_block(const Block& block);

/// Bitcoin block structural rules.
ValidationResult check_pow_block(const Block& block);

}  // namespace bng::chain
