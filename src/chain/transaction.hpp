// Transactions, outpoints and the poison proof-of-fraud payload.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/ecdsa.hpp"

namespace bng::chain {

/// Reference to a transaction output.
struct Outpoint {
  Hash256 txid;
  std::uint32_t vout = 0;

  friend auto operator<=>(const Outpoint&, const Outpoint&) = default;
};

struct OutpointHasher {
  std::size_t operator()(const Outpoint& o) const noexcept {
    return Hash256Hasher{}(o.txid) * 31 + o.vout;
  }
};

struct TxInput {
  Outpoint prevout;
};

struct TxOutput {
  Amount value = 0;
  /// Opaque address (hash of the owner's public key).
  Hash256 owner;
};

/// Proof of fraud carried by a poison transaction (§4.5): the header of the
/// first microblock in the pruned branch, demonstrating that the accused
/// leader signed two successors of the same block. Stored as the serialized
/// pruned header plus the accused key block's id.
struct PoisonPayload {
  Hash256 accused_key_block;          ///< key block whose leader equivocated
  std::vector<std::uint8_t> pruned_header;  ///< serialized conflicting header
  Hash256 pruned_header_id;           ///< id (hash) of that header
};

/// A transaction. `fee` is explicit: in the evaluation workload transactions
/// are synthetic and independent (paper §7 "No Transaction Propagation"), so
/// carrying the fee avoids recomputing input sums on the hot path, while the
/// UTXO layer still verifies it when full validation is on.
class Transaction {
 public:
  std::vector<TxInput> inputs;
  std::vector<TxOutput> outputs;
  Amount fee = 0;
  /// Extra bytes to pad the wire size (synthetic workloads use identical
  /// sizes; paper §7).
  std::uint32_t padding_bytes = 0;
  /// Present only for coinbase transactions: height tag to make ids unique.
  std::optional<std::uint32_t> coinbase_height;
  /// Present only for poison transactions.
  std::optional<PoisonPayload> poison;

  [[nodiscard]] bool is_coinbase() const { return coinbase_height.has_value(); }
  [[nodiscard]] bool is_poison() const { return poison.has_value(); }

  /// Serialize for hashing / size accounting.
  void serialize(ByteWriter& w) const;

  /// Wire size in bytes (serialization + padding). Cached after first call.
  [[nodiscard]] std::size_t wire_size() const;

  /// Transaction id: sha256d of the serialization (padding contributes
  /// length only, not content). Cached after first call; callers must not
  /// mutate a transaction after handing it to a TxPtr.
  [[nodiscard]] Hash256 id() const;

 private:
  mutable std::optional<Hash256> cached_id_;
  mutable std::size_t cached_size_ = 0;
};

using TxPtr = std::shared_ptr<const Transaction>;

/// Build a simple value-transfer transaction.
TxPtr make_transfer(const Outpoint& from, Amount value, const Hash256& to, Amount fee,
                    std::uint32_t padding_bytes = 0);

/// Address derivation: sha256 of the serialized public key.
Hash256 address_of(const crypto::PublicKey& key);

/// Deterministic throwaway address for simulations (derived from a tag).
Hash256 address_from_tag(std::uint64_t tag);

}  // namespace bng::chain
