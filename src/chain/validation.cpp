#include "chain/validation.hpp"

#include "crypto/u256.hpp"

namespace bng::chain {

ValidationResult check_pow(const BlockHeader& header) {
  if (header.type == BlockType::kMicro)
    return ValidationResult::fail("microblocks carry no proof of work");
  crypto::U256 id_value = crypto::U256::from_hash(header.id());
  if (!(id_value < header.target) && !header.target.is_zero())
    return ValidationResult::fail("hash does not meet target");
  if (header.target.is_zero()) return ValidationResult::fail("zero target");
  return {};
}

ValidationResult check_merkle(const Block& block) {
  if (!block.merkle_ok()) return ValidationResult::fail("merkle root mismatch");
  return {};
}

ValidationResult check_size(const Block& block, const Params& params) {
  const std::size_t limit = block.type() == BlockType::kMicro ? params.max_microblock_size
                                                              : params.max_block_size;
  if (block.wire_size() > limit) return ValidationResult::fail("block exceeds size limit");
  return {};
}

ValidationResult check_microblock(const Block& block, const crypto::PublicKey& epoch_key,
                                  Seconds prev_timestamp, Seconds now, const Params& params,
                                  bool verify_signature) {
  if (block.type() != BlockType::kMicro) return ValidationResult::fail("not a microblock");
  const BlockHeader& h = block.header();
  if (!h.signature) return ValidationResult::fail("microblock missing signature");
  if (h.leader_key) return ValidationResult::fail("microblock must not carry a key");
  // §4.2: "if the timestamp of a microblock is in the future, or if its
  // difference with its predecessor's timestamp is smaller than the minimum,
  // then the microblock is invalid".
  constexpr Seconds kClockTolerance = 1e-9;
  if (h.timestamp > now + kClockTolerance)
    return ValidationResult::fail("microblock timestamp in the future");
  if (h.timestamp - prev_timestamp < params.min_microblock_interval - kClockTolerance)
    return ValidationResult::fail("microblock too soon after predecessor");
  for (const auto& tx : block.txs())
    if (tx->is_coinbase()) return ValidationResult::fail("coinbase in microblock");
  if (verify_signature && !crypto::verify(epoch_key, h.signing_hash(), *h.signature))
    return ValidationResult::fail("bad microblock signature");
  return {};
}

ValidationResult check_key_block(const Block& block) {
  if (block.type() != BlockType::kKey) return ValidationResult::fail("not a key block");
  if (!block.header().leader_key) return ValidationResult::fail("key block missing leader key");
  if (block.header().signature)
    return ValidationResult::fail("key block must not be signed");
  if (block.txs().empty() || !block.txs()[0]->is_coinbase())
    return ValidationResult::fail("key block missing coinbase");
  // §4: key blocks elect leaders; ledger entries travel in microblocks.
  for (std::size_t i = 1; i < block.txs().size(); ++i)
    if (block.txs()[i]->is_coinbase())
      return ValidationResult::fail("duplicate coinbase in key block");
  return {};
}

ValidationResult check_pow_block(const Block& block) {
  if (block.type() != BlockType::kPow) return ValidationResult::fail("not a PoW block");
  if (block.header().leader_key)
    return ValidationResult::fail("Bitcoin block carries a leader key");
  if (block.header().signature) return ValidationResult::fail("Bitcoin block is signed");
  if (block.txs().empty() || !block.txs()[0]->is_coinbase())
    return ValidationResult::fail("missing coinbase");
  return {};
}

}  // namespace bng::chain
