#include "chain/difficulty.hpp"

#include <algorithm>
#include <stdexcept>

namespace bng::chain {

double retarget(double difficulty, Seconds actual_timespan, const RetargetRule& rule) {
  if (difficulty <= 0) throw std::invalid_argument("retarget: non-positive difficulty");
  const Seconds expected = rule.target_spacing * rule.interval_blocks;
  Seconds actual = std::clamp(actual_timespan, expected / rule.clamp, expected * rule.clamp);
  // Faster than expected -> difficulty rises proportionally (Bitcoin rule).
  return difficulty * expected / actual;
}

DifficultyTracker::DifficultyTracker(double initial_difficulty, RetargetRule rule)
    : difficulty_(initial_difficulty), rule_(rule) {
  if (initial_difficulty <= 0)
    throw std::invalid_argument("DifficultyTracker: non-positive difficulty");
}

void DifficultyTracker::on_block(Seconds timestamp) {
  ++height_;
  if (height_ % rule_.interval_blocks == 0) {
    difficulty_ = retarget(difficulty_, timestamp - window_start_, rule_);
    window_start_ = timestamp;
  }
}

}  // namespace bng::chain
