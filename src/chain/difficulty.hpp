// Difficulty adjustment.
//
// Paper §5.2 ("Resilience to Mining Power Variation"): chains retune their
// proof-of-work difficulty on a schedule (Bitcoin: every 2016 blocks); a
// sudden power drop leaves block production slow until the next retarget.
// The simulator expresses difficulty as "expected hash-work per block" in
// arbitrary units; the mining scheduler produces blocks at rate
// total_power / difficulty.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace bng::chain {

struct RetargetRule {
  std::uint32_t interval_blocks = 2016;  ///< blocks between retargets
  Seconds target_spacing = 600;          ///< desired seconds per block
  double clamp = 4.0;                    ///< max single-step factor
};

/// One retarget step: scale difficulty by expected/actual timespan, clamped.
double retarget(double difficulty, Seconds actual_timespan, const RetargetRule& rule);

/// Tracks difficulty across a sequence of block timestamps.
class DifficultyTracker {
 public:
  DifficultyTracker(double initial_difficulty, RetargetRule rule);

  /// Record a block generated at `timestamp`; may trigger a retarget.
  void on_block(Seconds timestamp);

  [[nodiscard]] double difficulty() const { return difficulty_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }

 private:
  double difficulty_;
  RetargetRule rule_;
  std::uint32_t height_ = 0;
  Seconds window_start_ = 0;
};

}  // namespace bng::chain
