// Real proof-of-work support: compact target encoding and nonce grinding.
//
// The large-scale experiments replace mining with the scheduler (§7), but
// the library also supports genuine PoW for small deployments and tests:
// Bitcoin's compact "nBits" target encoding, difficulty <-> target
// conversion, and a grinding miner.
#pragma once

#include <cstdint>
#include <optional>

#include "chain/block.hpp"
#include "crypto/u256.hpp"

namespace bng::chain {

/// Bitcoin compact target ("nBits"): 1-byte exponent, 3-byte mantissa.
/// Encodes target = mantissa * 256^(exponent-3).
std::uint32_t target_to_compact(const crypto::U256& target);
crypto::U256 compact_to_target(std::uint32_t compact);

/// Difficulty relative to a maximum target: difficulty = max_target/target.
/// Uses the regtest-style maximum (2^255-ish) so difficulty 1 is trivial.
const crypto::U256& max_target();
double target_to_difficulty(const crypto::U256& target);
crypto::U256 difficulty_to_target(double difficulty);

/// Grind nonces until header.id() < header.target, starting from
/// `start_nonce`. Returns the winning nonce, or nullopt after `max_tries`.
std::optional<std::uint64_t> mine_header(BlockHeader& header, std::uint64_t start_nonce,
                                         std::uint64_t max_tries);

}  // namespace bng::chain
