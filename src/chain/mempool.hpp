// Mempool: transactions awaiting serialization.
//
// Paper §7 ("No Transaction Propagation"): experiments pre-fill every node's
// mempool with the same set of independent, identically sized transactions
// that can be serialized in arbitrary order. This mempool supports both that
// mode and normal submit/remove flow with reorg handling.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/transaction.hpp"
#include "common/types.hpp"

namespace bng::chain {

class Mempool {
 public:
  /// Add a transaction; returns false if already present (by id).
  bool submit(const TxPtr& tx);

  /// Mark a transaction as included in the node's main chain.
  void mark_included(const Hash256& txid);

  /// Undo inclusion (chain reorganization returned the tx to the pool).
  void mark_excluded(const Hash256& txid);

  /// Greedily assemble up to `max_bytes` of not-yet-included transactions,
  /// in submission order. `reserve_bytes` is subtracted first (header and
  /// coinbase overhead).
  [[nodiscard]] std::vector<TxPtr> assemble(std::size_t max_bytes,
                                            std::size_t reserve_bytes = 0) const;

  [[nodiscard]] bool contains(const Hash256& txid) const { return by_id_.count(txid) > 0; }
  [[nodiscard]] bool is_included(const Hash256& txid) const {
    return included_.count(txid) > 0;
  }
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t available() const { return order_.size() - included_.size(); }

 private:
  std::vector<TxPtr> order_;  // submission order
  std::unordered_map<Hash256, std::size_t, Hash256Hasher> by_id_;
  std::unordered_set<Hash256, Hash256Hasher> included_;
};

}  // namespace bng::chain
