#include "chain/utxo.hpp"

#include <algorithm>

namespace bng::chain {

void UtxoSet::credit(const UtxoEntry& entry) {
  OwnerBalance& ob = by_owner_[entry.out.owner];
  ob.total += entry.out.value;
  if (entry.coinbase_pow_height)
    ob.coinbase_by_height[*entry.coinbase_pow_height] += entry.out.value;
}

void UtxoSet::debit(const UtxoEntry& entry) {
  auto it = by_owner_.find(entry.out.owner);
  if (it == by_owner_.end()) return;  // unreachable if add/spend are paired
  OwnerBalance& ob = it->second;
  ob.total -= entry.out.value;
  if (entry.coinbase_pow_height) {
    auto h = ob.coinbase_by_height.find(*entry.coinbase_pow_height);
    if (h != ob.coinbase_by_height.end()) {
      h->second -= entry.out.value;
      if (h->second == 0) ob.coinbase_by_height.erase(h);
    }
  }
  if (ob.total == 0 && ob.coinbase_by_height.empty()) by_owner_.erase(it);
}

void UtxoSet::add(const Outpoint& op, UtxoEntry entry) {
  auto [it, inserted] = map_.try_emplace(op);
  if (!inserted) debit(it->second);  // overwrite of an existing outpoint
  credit(entry);
  it->second = std::move(entry);
}

std::optional<UtxoEntry> UtxoSet::spend(const Outpoint& op) {
  auto it = map_.find(op);
  if (it == map_.end()) return std::nullopt;
  UtxoEntry entry = std::move(it->second);
  map_.erase(it);
  debit(entry);
  return entry;
}

const UtxoEntry* UtxoSet::find(const Outpoint& op) const {
  auto it = map_.find(op);
  return it == map_.end() ? nullptr : &it->second;
}

Amount UtxoSet::balance(const Hash256& addr, std::optional<std::uint32_t> matured_at,
                        std::uint32_t maturity) const {
  auto it = by_owner_.find(addr);
  if (it == by_owner_.end()) return 0;
  const OwnerBalance& ob = it->second;
  if (!matured_at) return ob.total;
  // Subtract coinbase outputs not yet matured: height h is immature iff
  // h + maturity > matured_at, i.e. h >= matured_at - maturity + 1.
  const std::uint32_t first_immature =
      *matured_at >= maturity ? *matured_at - maturity + 1 : 0;
  Amount immature = 0;
  for (auto h = ob.coinbase_by_height.lower_bound(first_immature);
       h != ob.coinbase_by_height.end(); ++h)
    immature += h->second;
  return ob.total - immature;
}

Ledger::Ledger(Params params) : params_(std::move(params)) {}

Amount Ledger::spendable_balance(const Hash256& addr) const {
  return utxo_.balance(addr, pow_height_, params_.coinbase_maturity);
}

Amount Ledger::total_balance(const Hash256& addr) const { return utxo_.balance(addr); }

Ledger::Result Ledger::apply_block(const Block& block) {
  const bool is_pow = block.is_pow();
  if (is_pow) ++pow_height_;

  // Expected coinbase layout is validated inside apply_coinbase.
  bool seen_coinbase = false;
  for (const auto& tx : block.txs()) {
    Result r;
    if (tx->is_coinbase()) {
      if (seen_coinbase) return Result::fail("multiple coinbase transactions");
      if (!is_pow) return Result::fail("coinbase in a microblock");
      seen_coinbase = true;
      r = apply_coinbase(block, *tx);
    } else if (tx->is_poison()) {
      r = apply_poison(block, *tx);
    } else {
      r = apply_transfer(*tx);
    }
    if (!r.ok) return r;
    ++txs_applied_;
  }

  if (block.type() == BlockType::kKey) {
    KeyBlockInfo info;
    if (!block.txs().empty() && block.txs()[0]->is_coinbase()) {
      info.coinbase_txid = block.txs()[0]->id();
      info.n_outputs = static_cast<std::uint32_t>(block.txs()[0]->outputs.size());
    }
    if (block.header().leader_key)
      info.leader_address = address_of(*block.header().leader_key);
    key_blocks_.emplace(block.id(), info);
    prev_key_block_ = last_key_block_;
    last_key_block_ = block.id();
  }
  return {};
}

Ledger::Result Ledger::apply_coinbase(const Block& block, const Transaction& tx) {
  if (!tx.inputs.empty()) return Result::fail("coinbase with inputs");
  // Value ceiling: subsidy plus 100% of fees visible in this block (Bitcoin)
  // -- NG fee-split shares are paid from the *previous epoch's* microblock
  // fees, which this ledger cannot see without the full epoch context, so it
  // checks conservative sanity (non-negative outputs) there; the NG node
  // performs the exact split check at block construction/validation time.
  Amount total_out = 0;
  for (const auto& out : tx.outputs) {
    if (out.value < 0) return Result::fail("negative coinbase output");
    total_out += out.value;
  }
  // Height-0 coinbases are the simulation premine: no value ceiling.
  if (block.type() == BlockType::kPow && *tx.coinbase_height > 0) {
    Amount ceiling = params_.block_subsidy + block.total_fees();
    if (total_out > ceiling) return Result::fail("coinbase exceeds subsidy + fees");
  }
  Hash256 txid = tx.id();
  // Height-0 coinbase outputs are the simulation premine (make_genesis):
  // exempt from maturity so the synthetic workload can spend them.
  std::optional<std::uint32_t> maturity_height;
  if (*tx.coinbase_height > 0) maturity_height = pow_height_;
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i)
    utxo_.add(Outpoint{txid, i}, UtxoEntry{tx.outputs[i], maturity_height});
  return {};
}

Ledger::Result Ledger::apply_transfer(const Transaction& tx) {
  if (tx.inputs.empty()) return Result::fail("transfer without inputs");
  Amount in_sum = 0;
  for (const auto& in : tx.inputs) {
    const UtxoEntry* entry = utxo_.find(in.prevout);
    if (entry == nullptr) return Result::fail("input missing or double-spent");
    if (entry->coinbase_pow_height &&
        *entry->coinbase_pow_height + params_.coinbase_maturity > pow_height_)
      return Result::fail("spends immature coinbase");
    in_sum += entry->out.value;
  }
  Amount out_sum = 0;
  for (const auto& out : tx.outputs) {
    if (out.value < 0) return Result::fail("negative output");
    out_sum += out.value;
  }
  if (in_sum != out_sum + tx.fee) return Result::fail("value not conserved");
  for (const auto& in : tx.inputs) utxo_.spend(in.prevout);
  Hash256 txid = tx.id();
  for (std::uint32_t i = 0; i < tx.outputs.size(); ++i)
    utxo_.add(Outpoint{txid, i}, UtxoEntry{tx.outputs[i], std::nullopt});
  return {};
}

Ledger::Result Ledger::apply_poison(const Block& block, const Transaction& tx) {
  const PoisonPayload& p = *tx.poison;
  if (poisoned_.count(p.accused_key_block) > 0)
    return Result::fail("cheater already poisoned");
  auto kb = key_blocks_.find(p.accused_key_block);
  if (kb == key_blocks_.end()) return Result::fail("accused key block not on this chain");

  // Revoke every unspent coinbase output paying the accused leader from its
  // own key block's coinbase and from its successor's coinbase (which carries
  // the 40% fee share). "The cheater's revenue funds not relayed to the
  // poisoner are lost." (§4.5)
  const Hash256 leader_addr = kb->second.leader_address;
  Amount revoked = 0;
  auto revoke_from = [&](const KeyBlockInfo& info) {
    for (std::uint32_t i = 0; i < info.n_outputs; ++i) {
      Outpoint op{info.coinbase_txid, i};
      const UtxoEntry* entry = utxo_.find(op);
      if (entry != nullptr && entry->out.owner == leader_addr) {
        revoked += entry->out.value;
        utxo_.spend(op);
      }
    }
  };
  revoke_from(kb->second);
  // Successor key blocks' coinbases may also pay the accused; scan all known
  // key blocks for shares owned by the leader (bounded by maturity window in
  // practice; key-block count per run is small).
  for (const auto& [id, info] : key_blocks_) {
    if (id == p.accused_key_block) continue;
    revoke_from(info);
  }

  if (revoked == 0) return Result::fail("no revenue to revoke (spent or absent)");

  // Grant the poisoner its bounty (§4.5: "e.g., 5%").
  Amount bounty = static_cast<Amount>(static_cast<double>(revoked) *
                                      params_.poison_reward_fraction);
  if (tx.outputs.size() != 1) return Result::fail("poison must have one bounty output");
  if (tx.outputs[0].value > bounty) return Result::fail("poison bounty too large");
  Hash256 txid = tx.id();
  utxo_.add(Outpoint{txid, 0}, UtxoEntry{tx.outputs[0], pow_height_});
  poisoned_.insert(p.accused_key_block);
  (void)block;
  return {};
}

}  // namespace bng::chain
