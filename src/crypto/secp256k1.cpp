#include "crypto/secp256k1.hpp"

#include <cassert>

namespace bng::crypto {

namespace {

// p = 2^256 - 2^32 - 977
const U256 kP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
// n = group order
const U256 kN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
// 2^256 mod p = 2^32 + 977
constexpr std::uint64_t kC = 0x1000003d1ull;

const U256 kGx = U256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const U256 kGy = U256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

/// Reduce a 512-bit product modulo p using p's special form:
/// hi*2^256 + lo == hi*(2^32+977) + lo (mod p).
U256 reduce512(const U512& t) {
  // First fold: acc (5 limbs) = lo + hi * kC.
  std::uint64_t acc[5] = {};
  {
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 cur = static_cast<unsigned __int128>(t.limb[4 + i]) * kC +
                              t.limb[i] + carry;
      acc[i] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    acc[4] = static_cast<std::uint64_t>(carry);
  }
  // Second fold: r = acc[0..3] + acc[4] * kC.
  U256 r;
  {
    unsigned __int128 cur = static_cast<unsigned __int128>(acc[4]) * kC + acc[0];
    r.limb[0] = static_cast<std::uint64_t>(cur);
    unsigned __int128 carry = cur >> 64;
    for (int i = 1; i < 4; ++i) {
      cur = static_cast<unsigned __int128>(acc[i]) + carry;
      r.limb[i] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    // Final possible carry of 1: fold once more (adds kC).
    if (carry) {
      bool c2;
      r = U256::add(r, U256(kC), c2);
      // c2 cannot propagate again: r was < 2^64 in the low limbs after carry.
      assert(!c2);
    }
  }
  while (r >= kP) {
    bool borrow;
    r = U256::sub(r, kP, borrow);
  }
  return r;
}

}  // namespace

const U256& field_p() { return kP; }
const U256& order_n() { return kN; }

U256 fe_add(const U256& a, const U256& b) {
  bool carry;
  U256 r = U256::add(a, b, carry);
  if (carry || r >= kP) {
    bool borrow;
    r = U256::sub(r, kP, borrow);
  }
  return r;
}

U256 fe_sub(const U256& a, const U256& b) {
  bool borrow;
  U256 r = U256::sub(a, b, borrow);
  if (borrow) {
    bool carry;
    r = U256::add(r, kP, carry);
  }
  return r;
}

U256 fe_mul(const U256& a, const U256& b) { return reduce512(U256::mul_wide(a, b)); }

U256 fe_sqr(const U256& a) { return fe_mul(a, a); }

U256 fe_neg(const U256& a) {
  if (a.is_zero()) return a;
  bool borrow;
  return U256::sub(kP, a, borrow);
}

U256 fe_pow(const U256& a, const U256& e) {
  U256 result(1);
  U256 base = a;
  for (int i = 0; i < 256; ++i) {
    if (e.bit(i)) result = fe_mul(result, base);
    base = fe_sqr(base);
  }
  return result;
}

U256 fe_inv(const U256& a) {
  assert(!a.is_zero());
  bool borrow;
  U256 pm2 = U256::sub(kP, U256(2), borrow);
  return fe_pow(a, pm2);
}

std::optional<U256> fe_sqrt(const U256& a) {
  if (a.is_zero()) return U256(0);
  // p ≡ 3 (mod 4): the candidate root is a^((p+1)/4). p+1 fits in 256 bits.
  bool carry;
  const U256 exp = U256::add(kP, U256(1), carry).shr(2);
  assert(!carry);
  U256 root = fe_pow(a, exp);
  if (fe_sqr(root) != a) return std::nullopt;
  return root;
}

std::optional<AffinePoint> lift_x(const U256& x, bool odd_y) {
  if (!(x < kP)) return std::nullopt;
  U256 rhs = fe_add(fe_mul(fe_sqr(x), x), U256(7));
  auto y = fe_sqrt(rhs);
  if (!y) return std::nullopt;
  AffinePoint p;
  p.infinity = false;
  p.x = x;
  p.y = (y->is_odd() == odd_y) ? *y : fe_neg(*y);
  return p;
}

U256 sc_reduce(const U256& a) { return U512::from_u256(a).mod(kN); }

U256 sc_add(const U256& a, const U256& b) {
  bool carry;
  U256 r = U256::add(a, b, carry);
  if (carry) {
    // r + 2^256 mod n: since n > 2^255, subtracting n once from (r + 2^256)
    // may still exceed n; fall back to wide reduction.
    U512 wide = U512::from_u256(r);
    wide.limb[4] = 1;
    return wide.mod(kN);
  }
  if (r >= kN) {
    bool borrow;
    r = U256::sub(r, kN, borrow);
  }
  return r;
}

U256 sc_mul(const U256& a, const U256& b) { return U256::mul_wide(a, b).mod(kN); }

U256 sc_neg(const U256& a) {
  if (a.is_zero()) return a;
  bool borrow;
  return U256::sub(kN, sc_reduce(a), borrow);
}

U256 sc_inv(const U256& a) {
  assert(!sc_reduce(a).is_zero());
  bool borrow;
  U256 nm2 = U256::sub(kN, U256(2), borrow);
  // Square-and-multiply mod n.
  U256 result(1);
  U256 base = sc_reduce(a);
  for (int i = 0; i < 256; ++i) {
    if (nm2.bit(i)) result = sc_mul(result, base);
    base = sc_mul(base, base);
  }
  return result;
}

bool AffinePoint::valid() const {
  if (infinity) return true;
  if (x >= kP || y >= kP) return false;
  U256 lhs = fe_sqr(y);
  U256 rhs = fe_add(fe_mul(fe_sqr(x), x), U256(7));
  return lhs == rhs;
}

JacobianPoint JacobianPoint::infinity() { return {U256(1), U256(1), U256(0)}; }

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return infinity();
  return {p.x, p.y, U256(1)};
}

AffinePoint JacobianPoint::to_affine() const {
  if (is_infinity()) return {};
  U256 zinv = fe_inv(Z);
  U256 zinv2 = fe_sqr(zinv);
  AffinePoint p;
  p.infinity = false;
  p.x = fe_mul(X, zinv2);
  p.y = fe_mul(Y, fe_mul(zinv2, zinv));
  return p;
}

const AffinePoint& generator() {
  static const AffinePoint g{kGx, kGy, false};
  return g;
}

JacobianPoint point_double(const JacobianPoint& p) {
  if (p.is_infinity() || p.Y.is_zero()) return JacobianPoint::infinity();
  // dbl-2009-l formulas for a = 0.
  U256 A = fe_sqr(p.X);
  U256 B = fe_sqr(p.Y);
  U256 C = fe_sqr(B);
  U256 t = fe_sub(fe_sqr(fe_add(p.X, B)), fe_add(A, C));
  U256 D = fe_add(t, t);
  U256 E = fe_add(fe_add(A, A), A);
  U256 F = fe_sqr(E);
  JacobianPoint r;
  r.X = fe_sub(F, fe_add(D, D));
  U256 C8 = fe_add(C, C);
  C8 = fe_add(C8, C8);
  C8 = fe_add(C8, C8);
  r.Y = fe_sub(fe_mul(E, fe_sub(D, r.X)), C8);
  U256 YZ = fe_mul(p.Y, p.Z);
  r.Z = fe_add(YZ, YZ);
  return r;
}

JacobianPoint point_add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  U256 Z1Z1 = fe_sqr(p.Z);
  U256 Z2Z2 = fe_sqr(q.Z);
  U256 U1 = fe_mul(p.X, Z2Z2);
  U256 U2 = fe_mul(q.X, Z1Z1);
  U256 S1 = fe_mul(p.Y, fe_mul(Z2Z2, q.Z));
  U256 S2 = fe_mul(q.Y, fe_mul(Z1Z1, p.Z));
  if (U1 == U2) {
    if (S1 == S2) return point_double(p);
    return JacobianPoint::infinity();
  }
  U256 H = fe_sub(U2, U1);
  U256 R = fe_sub(S2, S1);
  U256 H2 = fe_sqr(H);
  U256 H3 = fe_mul(H, H2);
  U256 U1H2 = fe_mul(U1, H2);
  JacobianPoint r;
  r.X = fe_sub(fe_sub(fe_sqr(R), H3), fe_add(U1H2, U1H2));
  r.Y = fe_sub(fe_mul(R, fe_sub(U1H2, r.X)), fe_mul(S1, H3));
  r.Z = fe_mul(fe_mul(p.Z, q.Z), H);
  return r;
}

JacobianPoint point_add_affine(const JacobianPoint& p, const AffinePoint& q) {
  return point_add(p, JacobianPoint::from_affine(q));
}

JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) {
  U256 scalar = sc_reduce(k);
  JacobianPoint acc = JacobianPoint::infinity();
  JacobianPoint base = JacobianPoint::from_affine(p);
  int bits = scalar.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    acc = point_double(acc);
    if (scalar.bit(i)) acc = point_add(acc, base);
  }
  return acc;
}

JacobianPoint double_scalar_mul(const U256& u1, const U256& u2, const AffinePoint& p) {
  U256 a = sc_reduce(u1);
  U256 b = sc_reduce(u2);
  JacobianPoint G = JacobianPoint::from_affine(generator());
  JacobianPoint P = JacobianPoint::from_affine(p);
  JacobianPoint GP = point_add(G, P);
  JacobianPoint acc = JacobianPoint::infinity();
  int bits = std::max(a.bit_length(), b.bit_length());
  for (int i = bits - 1; i >= 0; --i) {
    acc = point_double(acc);
    bool ba = a.bit(i), bb = b.bit(i);
    if (ba && bb)
      acc = point_add(acc, GP);
    else if (ba)
      acc = point_add(acc, G);
    else if (bb)
      acc = point_add(acc, P);
  }
  return acc;
}

}  // namespace bng::crypto
