#include "crypto/ecdsa.hpp"

#include <cassert>
#include <cstring>

#include "crypto/sha256.hpp"

namespace bng::crypto {

namespace {

/// Message hash -> scalar (mod n), per ECDSA (take leftmost 256 bits, reduce).
U256 hash_to_scalar(const Hash256& h) { return sc_reduce(U256::from_hash(h)); }

/// Deterministic nonce: k_i = SHA256(secret || msg || i), first i giving a
/// valid k in [1, n-1]. Simplified from RFC 6979's HMAC-DRBG but serves the
/// same purpose: no RNG dependence at signing time, unique per (key, msg).
U256 derive_nonce(const U256& secret, const Hash256& msg_hash, std::uint32_t counter) {
  Sha256 h;
  auto sk = secret.to_bytes_be();
  h.update(std::span<const std::uint8_t>(sk.data(), sk.size()));
  h.update(std::span<const std::uint8_t>(msg_hash.bytes.data(), msg_hash.bytes.size()));
  std::uint8_t ctr[4] = {static_cast<std::uint8_t>(counter >> 24),
                         static_cast<std::uint8_t>(counter >> 16),
                         static_cast<std::uint8_t>(counter >> 8),
                         static_cast<std::uint8_t>(counter)};
  h.update(std::span<const std::uint8_t>(ctr, 4));
  return sc_reduce(U256::from_hash(h.finalize()));
}

}  // namespace

std::array<std::uint8_t, 64> PublicKey::serialize() const {
  std::array<std::uint8_t, 64> out{};
  auto x = point.x.to_bytes_be();
  auto y = point.y.to_bytes_be();
  std::memcpy(out.data(), x.data(), 32);
  std::memcpy(out.data() + 32, y.data(), 32);
  return out;
}

std::optional<PublicKey> PublicKey::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 64) return std::nullopt;
  PublicKey key;
  key.point.infinity = false;
  key.point.x = U256::from_bytes_be(bytes.subspan(0, 32));
  key.point.y = U256::from_bytes_be(bytes.subspan(32, 32));
  if (!key.point.valid()) return std::nullopt;
  return key;
}

std::array<std::uint8_t, 33> PublicKey::serialize_compressed() const {
  std::array<std::uint8_t, 33> out{};
  out[0] = point.y.is_odd() ? 0x03 : 0x02;
  auto x = point.x.to_bytes_be();
  std::memcpy(out.data() + 1, x.data(), 32);
  return out;
}

std::optional<PublicKey> PublicKey::deserialize_compressed(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 33) return std::nullopt;
  if (bytes[0] != 0x02 && bytes[0] != 0x03) return std::nullopt;
  U256 x = U256::from_bytes_be(bytes.subspan(1, 32));
  auto point = lift_x(x, bytes[0] == 0x03);
  if (!point) return std::nullopt;
  return PublicKey{*point};
}

PrivateKey PrivateKey::generate(Rng& rng) {
  for (;;) {
    U256 candidate(rng.next(), rng.next(), rng.next(), rng.next());
    U256 reduced = sc_reduce(candidate);
    if (!reduced.is_zero()) return PrivateKey{reduced};
  }
}

PrivateKey PrivateKey::from_seed(std::uint64_t seed) {
  Rng rng(seed ^ 0xb10c5eedull);
  return generate(rng);
}

PublicKey PrivateKey::public_key() const {
  return PublicKey{scalar_mul(secret, generator()).to_affine()};
}

std::array<std::uint8_t, 64> Signature::serialize() const {
  std::array<std::uint8_t, 64> out{};
  auto rb = r.to_bytes_be();
  auto sb = s.to_bytes_be();
  std::memcpy(out.data(), rb.data(), 32);
  std::memcpy(out.data() + 32, sb.data(), 32);
  return out;
}

Signature Signature::deserialize(std::span<const std::uint8_t> bytes) {
  assert(bytes.size() == 64);
  Signature sig;
  sig.r = U256::from_bytes_be(bytes.subspan(0, 32));
  sig.s = U256::from_bytes_be(bytes.subspan(32, 32));
  return sig;
}

Signature sign(const PrivateKey& key, const Hash256& msg_hash) {
  const U256 z = hash_to_scalar(msg_hash);
  for (std::uint32_t counter = 0;; ++counter) {
    U256 k = derive_nonce(key.secret, msg_hash, counter);
    if (k.is_zero()) continue;
    AffinePoint R = scalar_mul(k, generator()).to_affine();
    if (R.infinity) continue;
    U256 r = sc_reduce(R.x);
    if (r.is_zero()) continue;
    U256 s = sc_mul(sc_inv(k), sc_add(z, sc_mul(r, key.secret)));
    if (s.is_zero()) continue;
    // Canonicalize to low-s (BIP 62).
    bool borrow;
    U256 half = U256::sub(order_n(), U256(1), borrow).shr(1);
    if (s > half) s = sc_neg(s);
    return Signature{r, s};
  }
}

bool verify(const PublicKey& key, const Hash256& msg_hash, const Signature& sig) {
  if (!key.valid()) return false;
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (sig.r >= order_n() || sig.s >= order_n()) return false;
  const U256 z = hash_to_scalar(msg_hash);
  U256 w = sc_inv(sig.s);
  U256 u1 = sc_mul(z, w);
  U256 u2 = sc_mul(sig.r, w);
  JacobianPoint R = double_scalar_mul(u1, u2, key.point);
  if (R.is_infinity()) return false;
  AffinePoint Ra = R.to_affine();
  return sc_reduce(Ra.x) == sig.r;
}

}  // namespace bng::crypto
