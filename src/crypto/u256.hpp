// 256-bit unsigned integer arithmetic (little-endian 64-bit limbs).
//
// Backs the secp256k1 field/scalar implementation and proof-of-work target
// comparisons. Not constant-time: this library is a protocol simulator, not
// a wallet; see DESIGN.md §6.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "common/types.hpp"

namespace bng::crypto {

struct U512;

struct U256 {
  // limb[0] is least significant.
  std::array<std::uint64_t, 4> limb{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  static U256 from_hex(const std::string& hex);
  static U256 from_bytes_be(std::span<const std::uint8_t> bytes);  // exactly 32 bytes
  static U256 from_hash(const Hash256& h) {
    return from_bytes_be(std::span(h.bytes.data(), h.bytes.size()));
  }

  [[nodiscard]] std::array<std::uint8_t, 32> to_bytes_be() const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  [[nodiscard]] bool is_odd() const { return limb[0] & 1; }
  [[nodiscard]] bool bit(int i) const { return (limb[i >> 6] >> (i & 63)) & 1; }
  [[nodiscard]] int bit_length() const;

  friend bool operator==(const U256&, const U256&) = default;
  friend std::strong_ordering operator<=>(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i)
      if (a.limb[i] != b.limb[i]) return a.limb[i] <=> b.limb[i];
    return std::strong_ordering::equal;
  }

  /// a + b; carry-out returned via `carry`.
  static U256 add(const U256& a, const U256& b, bool& carry);
  /// a - b; borrow-out returned via `borrow`.
  static U256 sub(const U256& a, const U256& b, bool& borrow);
  /// Full 256x256 -> 512-bit product.
  static U512 mul_wide(const U256& a, const U256& b);

  [[nodiscard]] U256 shl(unsigned n) const;  // n in [0, 255]
  [[nodiscard]] U256 shr(unsigned n) const;
};

struct U512 {
  std::array<std::uint64_t, 8> limb{};

  [[nodiscard]] bool bit(int i) const { return (limb[i >> 6] >> (i & 63)) & 1; }
  [[nodiscard]] int bit_length() const;

  /// Remainder of this mod m (binary long division). m must be non-zero.
  [[nodiscard]] U256 mod(const U256& m) const;

  static U512 from_u256(const U256& v) {
    U512 w;
    for (int i = 0; i < 4; ++i) w.limb[i] = v.limb[i];
    return w;
  }
};

}  // namespace bng::crypto
