// FIPS 180-4 SHA-256, implemented from scratch (no external crypto deps).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace bng::crypto {

class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view text);

  /// Finalize and return the digest. The object must not be reused afterwards.
  [[nodiscard]] Hash256 finalize();

 private:
  void compress(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot SHA-256.
[[nodiscard]] Hash256 sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Hash256 sha256(std::string_view text);

/// Bitcoin's double SHA-256 (used for block ids and txids).
[[nodiscard]] Hash256 sha256d(std::span<const std::uint8_t> data);

}  // namespace bng::crypto
