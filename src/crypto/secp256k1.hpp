// secp256k1 elliptic-curve arithmetic, from scratch.
//
// Curve: y^2 = x^3 + 7 over F_p, p = 2^256 - 2^32 - 977.
// Group order n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFFD25E8 8CD03641 41.
//
// Field arithmetic uses the special form of p for fast reduction; scalar
// (mod n) arithmetic uses generic binary reduction since it is off the hot
// path. Not constant-time (simulator-grade; see DESIGN.md §6).
#pragma once

#include <optional>

#include "crypto/u256.hpp"

namespace bng::crypto {

/// Field modulus p and group order n.
const U256& field_p();
const U256& order_n();

// --- Field element operations (values always reduced mod p) ---------------
U256 fe_add(const U256& a, const U256& b);
U256 fe_sub(const U256& a, const U256& b);
U256 fe_mul(const U256& a, const U256& b);
U256 fe_sqr(const U256& a);
U256 fe_neg(const U256& a);
U256 fe_pow(const U256& a, const U256& e);
U256 fe_inv(const U256& a);  // a != 0

/// Square root mod p (p ≡ 3 mod 4, so sqrt(a) = a^((p+1)/4) when it exists).
/// Returns nullopt for quadratic non-residues.
std::optional<U256> fe_sqrt(const U256& a);

// --- Scalar operations (mod n) ---------------------------------------------
U256 sc_reduce(const U256& a);                  // a mod n
U256 sc_add(const U256& a, const U256& b);
U256 sc_mul(const U256& a, const U256& b);
U256 sc_neg(const U256& a);
U256 sc_inv(const U256& a);  // a != 0 mod n

/// Affine point; infinity iff `infinity` is true.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;

  /// Is the point on the curve (or infinity)?
  [[nodiscard]] bool valid() const;
};

/// Jacobian point (X/Z^2, Y/Z^3); infinity iff Z == 0.
struct JacobianPoint {
  U256 X;
  U256 Y;
  U256 Z;

  static JacobianPoint infinity();
  static JacobianPoint from_affine(const AffinePoint& p);
  [[nodiscard]] AffinePoint to_affine() const;
  [[nodiscard]] bool is_infinity() const { return Z.is_zero(); }
};

/// Curve generator G.
const AffinePoint& generator();

/// Lift an x-coordinate to a curve point with the requested y parity
/// (compressed-key decoding). Returns nullopt if x is not on the curve.
std::optional<AffinePoint> lift_x(const U256& x, bool odd_y);

JacobianPoint point_double(const JacobianPoint& p);
JacobianPoint point_add(const JacobianPoint& p, const JacobianPoint& q);
JacobianPoint point_add_affine(const JacobianPoint& p, const AffinePoint& q);

/// k * P (double-and-add). k is interpreted mod n.
JacobianPoint scalar_mul(const U256& k, const AffinePoint& p);

/// u1*G + u2*P computed with interleaved doubling (Shamir's trick).
JacobianPoint double_scalar_mul(const U256& u1, const U256& u2, const AffinePoint& p);

}  // namespace bng::crypto
