#include "crypto/merkle.hpp"

#include <cassert>

#include "crypto/sha256.hpp"

namespace bng::crypto {

namespace {
Hash256 hash_pair(const Hash256& a, const Hash256& b) {
  std::uint8_t buf[64];
  std::copy(a.bytes.begin(), a.bytes.end(), buf);
  std::copy(b.bytes.begin(), b.bytes.end(), buf + 32);
  return sha256d(std::span<const std::uint8_t>(buf, 64));
}
}  // namespace

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof merkle_proof(const std::vector<Hash256>& leaves, std::size_t index) {
  assert(index < leaves.size());
  MerkleProof proof;
  proof.index = index;
  std::vector<Hash256> level = leaves;
  std::size_t pos = index;
  while (level.size() > 1) {
    std::size_t sibling = pos ^ 1;
    if (sibling >= level.size()) sibling = pos;  // odd level: paired with itself
    proof.siblings.push_back(level[sibling]);
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

Hash256 merkle_proof_root(const Hash256& leaf, const MerkleProof& proof) {
  Hash256 node = leaf;
  std::size_t pos = proof.index;
  for (const Hash256& sibling : proof.siblings) {
    node = (pos & 1) ? hash_pair(sibling, node) : hash_pair(node, sibling);
    pos /= 2;
  }
  return node;
}

}  // namespace bng::crypto
