// ECDSA over secp256k1 with deterministic (RFC 6979-inspired) nonces.
//
// Bitcoin-NG microblock headers are signed with the private key matching the
// public key published in the leader's key block (paper §4.2). This module
// provides the key pairs and signatures for that mechanism.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/secp256k1.hpp"

namespace bng::crypto {

struct PublicKey {
  AffinePoint point;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

  /// 64-byte uncompressed (x || y) encoding.
  [[nodiscard]] std::array<std::uint8_t, 64> serialize() const;
  static std::optional<PublicKey> deserialize(std::span<const std::uint8_t> bytes);

  /// 33-byte compressed encoding (0x02/0x03 parity prefix + x), as used on
  /// the Bitcoin wire.
  [[nodiscard]] std::array<std::uint8_t, 33> serialize_compressed() const;
  static std::optional<PublicKey> deserialize_compressed(
      std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool valid() const { return !point.infinity && point.valid(); }
};

struct PrivateKey {
  U256 secret;  // in [1, n-1]

  /// Generate a uniformly random key.
  static PrivateKey generate(Rng& rng);

  /// Derive deterministically from a seed (for reproducible simulations).
  static PrivateKey from_seed(std::uint64_t seed);

  [[nodiscard]] PublicKey public_key() const;
};

struct Signature {
  U256 r;
  U256 s;

  friend bool operator==(const Signature&, const Signature&) = default;

  [[nodiscard]] std::array<std::uint8_t, 64> serialize() const;
  static Signature deserialize(std::span<const std::uint8_t> bytes);
};

/// Sign a 32-byte message hash. Always produces low-s signatures.
Signature sign(const PrivateKey& key, const Hash256& msg_hash);

/// Verify a signature on a 32-byte message hash.
bool verify(const PublicKey& key, const Hash256& msg_hash, const Signature& sig);

}  // namespace bng::crypto
