// Bitcoin-style Merkle trees over transaction ids.
//
// Block headers commit to their transaction list through the Merkle root
// (paper §3: "the hash (specifically, the Merkle root) of the transactions").
#pragma once

#include <vector>

#include "common/types.hpp"

namespace bng::crypto {

/// Merkle root of a list of txids, Bitcoin convention:
///  - empty list -> zero hash
///  - single txid -> the txid itself
///  - odd level size -> last element paired with itself
/// Inner nodes are sha256d(left || right).
[[nodiscard]] Hash256 merkle_root(const std::vector<Hash256>& leaves);

/// Merkle inclusion proof: sibling hashes from leaf to root.
struct MerkleProof {
  std::size_t index = 0;           ///< leaf position
  std::vector<Hash256> siblings;   ///< bottom-up
};

[[nodiscard]] MerkleProof merkle_proof(const std::vector<Hash256>& leaves, std::size_t index);

/// Recompute the root from a leaf + proof; compare against a trusted root.
[[nodiscard]] Hash256 merkle_proof_root(const Hash256& leaf, const MerkleProof& proof);

}  // namespace bng::crypto
