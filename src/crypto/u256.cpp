#include "crypto/u256.hpp"

#include <cassert>
#include <stdexcept>

#include "common/hex.hpp"

namespace bng::crypto {

U256 U256::from_hex(const std::string& hex) {
  std::string padded = hex;
  if (padded.size() > 64) throw std::invalid_argument("U256 hex too long");
  padded.insert(0, 64 - padded.size(), '0');
  auto raw = bng::from_hex(padded);
  return from_bytes_be(raw);
}

U256 U256::from_bytes_be(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 32) throw std::invalid_argument("U256 needs 32 bytes");
  U256 v;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t limb = 0;
    for (int j = 0; j < 8; ++j) limb = limb << 8 | bytes[8 * (3 - i) + j];
    v.limb[i] = limb;
  }
  return v;
}

std::array<std::uint8_t, 32> U256::to_bytes_be() const {
  std::array<std::uint8_t, 32> out{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[8 * (3 - i) + j] = static_cast<std::uint8_t>(limb[i] >> (56 - 8 * j));
  return out;
}

std::string U256::to_hex() const {
  auto b = to_bytes_be();
  return bng::to_hex(b);
}

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i)
    if (limb[i] != 0) return 64 * i + 64 - __builtin_clzll(limb[i]);
  return 0;
}

U256 U256::add(const U256& a, const U256& b, bool& carry) {
  U256 r;
  unsigned __int128 acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += a.limb[i];
    acc += b.limb[i];
    r.limb[i] = static_cast<std::uint64_t>(acc);
    acc >>= 64;
  }
  carry = acc != 0;
  return r;
}

U256 U256::sub(const U256& a, const U256& b, bool& borrow) {
  U256 r;
  unsigned __int128 br = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 lhs = a.limb[i];
    unsigned __int128 rhs = static_cast<unsigned __int128>(b.limb[i]) + br;
    if (lhs >= rhs) {
      r.limb[i] = static_cast<std::uint64_t>(lhs - rhs);
      br = 0;
    } else {
      r.limb[i] = static_cast<std::uint64_t>((static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
      br = 1;
    }
  }
  borrow = br != 0;
  return r;
}

U512 U256::mul_wide(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                              r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    r.limb[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return r;
}

U256 U256::shl(unsigned n) const {
  assert(n < 256);
  U256 r;
  unsigned limb_shift = n / 64, bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    std::uint64_t v = 0;
    int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = limb[src] << bit_shift;
      if (bit_shift > 0 && src - 1 >= 0) v |= limb[src - 1] >> (64 - bit_shift);
    }
    r.limb[i] = v;
  }
  return r;
}

U256 U256::shr(unsigned n) const {
  assert(n < 256);
  U256 r;
  unsigned limb_shift = n / 64, bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    unsigned src = i + limb_shift;
    if (src < 4) {
      v = limb[src] >> bit_shift;
      if (bit_shift > 0 && src + 1 < 4) v |= limb[src + 1] << (64 - bit_shift);
    }
    r.limb[i] = v;
  }
  return r;
}

int U512::bit_length() const {
  for (int i = 7; i >= 0; --i)
    if (limb[i] != 0) return 64 * i + 64 - __builtin_clzll(limb[i]);
  return 0;
}

U256 U512::mod(const U256& m) const {
  assert(!m.is_zero());
  // Binary long division: scan bits from MSB, maintaining remainder < m.
  U256 rem;
  for (int i = bit_length() - 1; i >= 0; --i) {
    // rem = rem * 2 + bit(i); rem < m <= 2^256-1 so the shift cannot overflow
    // past 257 bits... it can overflow U256 if m is close to 2^256. Handle by
    // checking the dropped bit explicitly.
    bool top = rem.bit(255);
    rem = rem.shl(1);
    if (bit(i)) rem.limb[0] |= 1;
    if (top || rem >= m) {
      bool borrow;
      rem = U256::sub(rem, m, borrow);
      // When `top` was set the true value is rem + 2^256; subtracting m once
      // is guaranteed to bring it below 2^256 because m > 2^255 whenever top
      // can be set (rem < m before the shift).
    }
  }
  return rem;
}

}  // namespace bng::crypto
