#include "ghost/ghost_node.hpp"

#include <stdexcept>

namespace bng::ghost {

namespace {
protocol::NodeConfig validated(protocol::NodeConfig cfg) {
  if (cfg.params.protocol != chain::Protocol::kGhost)
    throw std::invalid_argument("GhostNode requires Protocol::kGhost params");
  return cfg;
}
}  // namespace

GhostNode::GhostNode(NodeId id, net::Network& net, chain::BlockPtr genesis,
                     protocol::NodeConfig cfg, Rng rng, protocol::IBlockObserver* observer)
    : BitcoinNode(id, net, std::move(genesis), validated(std::move(cfg)), rng, observer) {}

}  // namespace bng::ghost
