// GHOST protocol node (paper §9, Appendix A).
//
// Identical to the Bitcoin node except: (1) fork choice follows the heaviest
// *subtree* rather than the heaviest chain, and (2) all valid blocks are
// relayed, not only active-chain blocks — the paper evaluated GHOST this way
// ("we ... did evaluate the system by implementing it, propagating all
// blocks").
#pragma once

#include "bitcoin/bitcoin_node.hpp"
#include "protocol/selfish_node.hpp"

namespace bng::ghost {

class GhostNode : public bitcoin::BitcoinNode {
 public:
  GhostNode(NodeId id, net::Network& net, chain::BlockPtr genesis, protocol::NodeConfig cfg,
            Rng rng, protocol::IBlockObserver* observer);

 protected:
  [[nodiscard]] bool should_relay(std::uint32_t index) const override {
    (void)index;
    return true;
  }
};

/// SM1 against the heaviest-subtree rule: withheld blocks stay out of the
/// honest subtree weighing, the publish/match/race schedule is unchanged.
using SelfishGhostMiner = protocol::SelfishNode<GhostNode>;

}  // namespace bng::ghost
