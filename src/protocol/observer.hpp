// Observation hooks through which the simulation harness records traces.
#pragma once

#include "chain/block.hpp"
#include "common/types.hpp"

namespace bng::protocol {

class IBlockObserver {
 public:
  virtual ~IBlockObserver() = default;

  /// A node generated (mined or, for microblocks, signed) a new block.
  virtual void on_block_generated(const chain::BlockPtr& block, NodeId miner, Seconds at) = 0;

  /// A node detected leader equivocation (microblock fork fraud, §4.5).
  virtual void on_fraud_detected(NodeId detector, const Hash256& accused_key_block,
                                 Seconds at) {
    (void)detector;
    (void)accused_key_block;
    (void)at;
  }
};

}  // namespace bng::protocol
