#include "protocol/base_node.hpp"

#include <cassert>
#include <stdexcept>

#include "common/pool.hpp"
#include "obs/trace_ring.hpp"

namespace bng::protocol {

namespace {
chain::BlockTree::ForkChoice fork_choice_for(const chain::Params& params) {
  return params.protocol == chain::Protocol::kGhost
             ? chain::BlockTree::ForkChoice::kHeaviestSubtree
             : chain::BlockTree::ForkChoice::kHeaviestChain;
}
}  // namespace

BaseNode::BaseNode(NodeId id, net::Network& net, chain::BlockPtr genesis, NodeConfig cfg,
                   Rng rng, IBlockObserver* observer)
    : id_(id),
      net_(net),
      queue_(net.queue_for(id)),
      cfg_(std::move(cfg)),
      rng_(rng),
      tree_(std::move(genesis), cfg_.params.tie_break, fork_choice_for(cfg_.params), &rng_,
            net.interner()),
      observer_(observer),
      known_(*net.node_state(), NodeStateArena::kKnown, id),
      requested_(*net.node_state(), NodeStateArena::kRequested, id) {
  if (cfg_.workload_mode == WorkloadMode::kSynthetic && cfg_.workload == nullptr)
    throw std::invalid_argument("BaseNode: synthetic mode needs a workload");
  tree_.set_tie_switch_prob(cfg_.params.tie_switch_prob);
}

void BaseNode::on_message(NodeId from, const net::MessagePtr& msg) {
  switch (msg->kind) {
    case kInvKind:
      handle_inv(from, static_cast<const InvMessage&>(*msg));
      break;
    case kGetDataKind:
      handle_getdata(from, static_cast<const GetDataMessage&>(*msg));
      break;
    case kBlockKind:
      handle_block_msg(from, static_cast<const BlockMessage&>(*msg));
      break;
    default:
      throw std::logic_error("BaseNode: unknown message type");
  }
}

void BaseNode::handle_inv(NodeId from, const InvMessage& inv) {
  if (known_.contains(inv.block_id) || requested_.contains(inv.block_id)) return;
  requested_.insert(inv.block_id);
  net_.send(id_, from, make_pooled<GetDataMessage>(inv.block_id));
}

void BaseNode::handle_getdata(NodeId from, const GetDataMessage& req) {
  chain::BlockPtr block = find_block(req.block_id);
  if (block != nullptr) net_.send(id_, from, make_pooled<BlockMessage>(std::move(block)));
}

chain::BlockPtr BaseNode::find_block(BlockId id) const {
  if (const std::uint32_t idx = tree_.index_of_id(id); idx != chain::BlockTree::kNoIndex)
    return tree_.entry(idx).block;
  for (const Orphan& o : orphans_)
    if (o.id == id) return o.block;
  return nullptr;
}

void BaseNode::handle_block_msg(NodeId from, const BlockMessage& msg) {
  const chain::BlockPtr& block = msg.block;
  // The one interner touch per (node, block): every later membership or
  // index lookup is a flat array read keyed by this id.
  const BlockId id = tree_.intern(block->id());
  requested_.erase(id);
  if (known_.contains(id)) return;
  known_.insert(id);
  if (cfg_.trace != nullptr && cfg_.trace->wants(obs::kTraceEvents))
    cfg_.trace->record(obs::kTraceEvents, obs::TraceKind::kDeliver, id_, id, kNoBlockId,
                       from);
  // Model verification cost on this node's CPU, then hand to the protocol.
  const Seconds cost =
      cfg_.verify_fixed +
      static_cast<double>(block->wire_size()) / cfg_.verify_bytes_per_second;
  process_after(cost, [this, block, id, from] { handle_block(block, id, from); });
}

void BaseNode::process_after(Seconds cost, net::EventQueue::Callback fn) {
  Seconds& busy = net_.node_state()->cpu_busy(id_);
  const Seconds start = std::max(now(), busy);
  busy = start + cost;
  queue_.schedule_at(busy, std::move(fn));
}

void BaseNode::announce(BlockId id, NodeId except) {
  // One immutable inv shared across the whole fan-out: broadcast costs one
  // pooled allocation, not one per neighbour.
  net::MessagePtr inv;
  for (NodeId peer : net_.peers(id_)) {
    if (peer == except) continue;
    if (inv == nullptr) inv = make_pooled<InvMessage>(id);
    net_.send(id_, peer, inv);
  }
}

std::uint32_t BaseNode::accept_block(const chain::BlockPtr& block, BlockId id, NodeId from,
                                     double work) {
  const std::uint32_t old_tip = tree_.best_tip();
  const std::uint32_t index = tree_.insert(block, id, now(), work);
  known_.insert(id);
  if (cfg_.workload_mode == WorkloadMode::kFullMempool) {
    const std::uint32_t new_tip = tree_.best_tip();
    if (new_tip != old_tip) update_mempool_for_tip_change(old_tip, new_tip);
  }
  if (cfg_.trace != nullptr && cfg_.trace->wants(obs::kTraceBlocks)) {
    const std::int32_t pidx = tree_.entry(index).parent;
    cfg_.trace->record(obs::kTraceBlocks, obs::TraceKind::kAccept, id_, id,
                       pidx >= 0 ? tree_.entry(static_cast<std::uint32_t>(pidx)).id
                                 : kNoBlockId,
                       from);
  }
  if (should_relay(index)) announce(id, from);
  after_accept(block, index, old_tip);
  resolve_orphans(id);
  return index;
}

std::uint32_t BaseNode::ensure_parent(const chain::BlockPtr& block, BlockId id,
                                      NodeId from) {
  const BlockId parent_id = tree_.intern(block->header().prev);
  const std::uint32_t parent_idx = tree_.index_of_id(parent_id);
  if (parent_idx != chain::BlockTree::kNoIndex) return parent_idx;
  orphans_.push_back(Orphan{parent_id, id, block, from});
  if (!requested_.contains(parent_id) && !known_.contains(parent_id) && from != id_) {
    requested_.insert(parent_id);
    net_.send(id_, from, make_pooled<GetDataMessage>(parent_id));
  }
  return chain::BlockTree::kNoIndex;
}

void BaseNode::resolve_orphans(BlockId parent_id) {
  // Extract the waiting children in arrival order before re-entering
  // handle_block (which may itself accept blocks and recurse here).
  std::vector<Orphan> waiting;
  for (std::size_t i = 0; i < orphans_.size();) {
    if (orphans_[i].parent == parent_id) {
      waiting.push_back(std::move(orphans_[i]));
      orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (Orphan& o : waiting) handle_block(o.block, o.id, o.from);
}

std::vector<chain::TxPtr> BaseNode::assemble_payload(std::uint32_t tip, std::size_t max_bytes,
                                                     std::size_t reserve_bytes) {
  if (cfg_.workload_mode == WorkloadMode::kSynthetic) {
    const SyntheticWorkload& pool = *cfg_.workload;
    std::vector<chain::TxPtr> out;
    if (pool.tx_wire_size == 0 || reserve_bytes >= max_bytes) return out;
    std::size_t budget = max_bytes - reserve_bytes;
    std::size_t start = tree_.entry(tip).chain_tx_count;
    std::size_t count = std::min(budget / pool.tx_wire_size,
                                 pool.txs.size() > start ? pool.txs.size() - start : 0);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(pool.txs[start + i]);
    return out;
  }
  return mempool_.assemble(max_bytes, reserve_bytes);
}

void BaseNode::update_mempool_for_tip_change(std::uint32_t old_tip, std::uint32_t new_tip) {
  const std::uint32_t fork = tree_.common_ancestor(old_tip, new_tip);
  // Return transactions from abandoned blocks to the pool...
  for (std::uint32_t cur = old_tip; cur != fork;
       cur = static_cast<std::uint32_t>(tree_.entry(cur).parent)) {
    for (const auto& tx : tree_.entry(cur).block->txs())
      if (!tx->is_coinbase()) mempool_.mark_excluded(tx->id());
  }
  // ...and mark the newly adopted chain's transactions as included.
  for (std::uint32_t cur = new_tip; cur != fork;
       cur = static_cast<std::uint32_t>(tree_.entry(cur).parent)) {
    for (const auto& tx : tree_.entry(cur).block->txs())
      if (!tx->is_coinbase()) mempool_.mark_included(tx->id());
  }
}

}  // namespace bng::protocol
