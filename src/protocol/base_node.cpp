#include "protocol/base_node.hpp"

#include <cassert>
#include <stdexcept>

#include "common/pool.hpp"

namespace bng::protocol {

namespace {
chain::BlockTree::ForkChoice fork_choice_for(const chain::Params& params) {
  return params.protocol == chain::Protocol::kGhost
             ? chain::BlockTree::ForkChoice::kHeaviestSubtree
             : chain::BlockTree::ForkChoice::kHeaviestChain;
}
}  // namespace

BaseNode::BaseNode(NodeId id, net::Network& net, chain::BlockPtr genesis, NodeConfig cfg,
                   Rng rng, IBlockObserver* observer)
    : id_(id),
      net_(net),
      cfg_(std::move(cfg)),
      rng_(rng),
      tree_(std::move(genesis), cfg_.params.tie_break, fork_choice_for(cfg_.params), &rng_),
      observer_(observer) {
  if (cfg_.workload_mode == WorkloadMode::kSynthetic && cfg_.workload == nullptr)
    throw std::invalid_argument("BaseNode: synthetic mode needs a workload");
}

void BaseNode::on_message(NodeId from, const net::MessagePtr& msg) {
  switch (msg->kind) {
    case kInvKind:
      handle_inv(from, static_cast<const InvMessage&>(*msg));
      break;
    case kGetDataKind:
      handle_getdata(from, static_cast<const GetDataMessage&>(*msg));
      break;
    case kBlockKind:
      handle_block_msg(from, static_cast<const BlockMessage&>(*msg));
      break;
    default:
      throw std::logic_error("BaseNode: unknown message type");
  }
}

void BaseNode::handle_inv(NodeId from, const InvMessage& inv) {
  if (known_.count(inv.block_id) > 0 || requested_.count(inv.block_id) > 0) return;
  requested_.insert(inv.block_id);
  net_.send(id_, from, make_pooled<GetDataMessage>(inv.block_id));
}

void BaseNode::handle_getdata(NodeId from, const GetDataMessage& req) {
  chain::BlockPtr block = find_block(req.block_id);
  if (block != nullptr) net_.send(id_, from, make_pooled<BlockMessage>(std::move(block)));
}

chain::BlockPtr BaseNode::find_block(const Hash256& id) const {
  if (auto idx = tree_.find(id)) return tree_.entry(*idx).block;
  for (const auto& [parent, list] : orphans_)
    for (const auto& [block, from] : list)
      if (block->id() == id) return block;
  return nullptr;
}

void BaseNode::handle_block_msg(NodeId from, const BlockMessage& msg) {
  const chain::BlockPtr& block = msg.block;
  const Hash256 id = block->id();
  requested_.erase(id);
  if (known_.count(id) > 0) return;
  known_.insert(id);
  // Model verification cost on this node's CPU, then hand to the protocol.
  const Seconds cost =
      cfg_.verify_fixed +
      static_cast<double>(block->wire_size()) / cfg_.verify_bytes_per_second;
  process_after(cost, [this, block, from] { handle_block(block, from); });
}

void BaseNode::process_after(Seconds cost, net::EventQueue::Callback fn) {
  const Seconds start = std::max(now(), cpu_busy_until_);
  cpu_busy_until_ = start + cost;
  net_.queue().schedule_at(cpu_busy_until_, std::move(fn));
}

void BaseNode::announce(const Hash256& id, NodeId except) {
  // One immutable inv shared across the whole fan-out: broadcast costs one
  // pooled allocation, not one per neighbour.
  net::MessagePtr inv;
  for (NodeId peer : net_.peers(id_)) {
    if (peer == except) continue;
    if (inv == nullptr) inv = make_pooled<InvMessage>(id);
    net_.send(id_, peer, inv);
  }
}

std::uint32_t BaseNode::accept_block(const chain::BlockPtr& block, NodeId from, double work) {
  const std::uint32_t old_tip = tree_.best_tip();
  const std::uint32_t index = tree_.insert(block, now(), work);
  known_.insert(block->id());
  if (cfg_.workload_mode == WorkloadMode::kFullMempool) {
    const std::uint32_t new_tip = tree_.best_tip();
    if (new_tip != old_tip) update_mempool_for_tip_change(old_tip, new_tip);
  }
  if (should_relay(index)) announce(block->id(), from);
  after_accept(block, index, old_tip);
  resolve_orphans(block->id());
  return index;
}

bool BaseNode::ensure_parent(const chain::BlockPtr& block, NodeId from) {
  const Hash256& parent = block->header().prev;
  if (tree_.contains(parent)) return true;
  orphans_[parent].emplace_back(block, from);
  if (requested_.count(parent) == 0 && known_.count(parent) == 0 && from != id_) {
    requested_.insert(parent);
    net_.send(id_, from, make_pooled<GetDataMessage>(parent));
  }
  return false;
}

void BaseNode::resolve_orphans(const Hash256& parent_id) {
  auto it = orphans_.find(parent_id);
  if (it == orphans_.end()) return;
  auto waiting = std::move(it->second);
  orphans_.erase(it);
  for (auto& [block, from] : waiting) handle_block(block, from);
}

std::vector<chain::TxPtr> BaseNode::assemble_payload(std::uint32_t tip, std::size_t max_bytes,
                                                     std::size_t reserve_bytes) {
  if (cfg_.workload_mode == WorkloadMode::kSynthetic) {
    const SyntheticWorkload& pool = *cfg_.workload;
    std::vector<chain::TxPtr> out;
    if (pool.tx_wire_size == 0 || reserve_bytes >= max_bytes) return out;
    std::size_t budget = max_bytes - reserve_bytes;
    std::size_t start = tree_.entry(tip).chain_tx_count;
    std::size_t count = std::min(budget / pool.tx_wire_size,
                                 pool.txs.size() > start ? pool.txs.size() - start : 0);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(pool.txs[start + i]);
    return out;
  }
  return mempool_.assemble(max_bytes, reserve_bytes);
}

void BaseNode::update_mempool_for_tip_change(std::uint32_t old_tip, std::uint32_t new_tip) {
  const std::uint32_t fork = tree_.common_ancestor(old_tip, new_tip);
  // Return transactions from abandoned blocks to the pool...
  for (std::uint32_t cur = old_tip; cur != fork;
       cur = static_cast<std::uint32_t>(tree_.entry(cur).parent)) {
    for (const auto& tx : tree_.entry(cur).block->txs())
      if (!tx->is_coinbase()) mempool_.mark_excluded(tx->id());
  }
  // ...and mark the newly adopted chain's transactions as included.
  for (std::uint32_t cur = new_tip; cur != fork;
       cur = static_cast<std::uint32_t>(tree_.entry(cur).parent)) {
    for (const auto& tx : tree_.entry(cur).block->txs())
      if (!tx->is_coinbase()) mempool_.mark_included(tx->id());
  }
}

}  // namespace bng::protocol
