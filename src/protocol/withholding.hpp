// Protocol-agnostic block-withholding (SM1) state machine.
//
// Selfish mining (Eyal & Sirer, FC 2014) is the attack behind the paper's
// 1/4 Byzantine bound (§2) and the rule that microblocks carry no chain
// weight (§5.1). The strategy used to live inside bitcoin::SelfishMiner;
// extracting it lets every protocol node type (Bitcoin, GHOST, Bitcoin-NG
// key blocks) run the identical withhold/publish/race logic through the
// BaseNode hooks (`on_mining_win` / `after_accept` / `should_relay`) — see
// protocol/selfish_node.hpp for the generic adapter.
//
// State machine (SM1):
//  * own wins are withheld (appended to the private chain);
//  * a public block at equal work triggers full reveal and a head-to-head
//    race (the honest network splits by gamma);
//  * a public block one behind triggers full reveal (attacker wins outright);
//  * with a longer lead the attacker reveals just enough to match, keeping
//    the honest network mining a losing branch;
//  * a public chain that overtakes the private one forces abandonment.
//
// Protocol-agnostic wrinkle: zero-weight blocks the adversary itself builds
// on its private chain (NG microblocks during a withheld epoch) join the
// private set instead of being mistaken for public catch-up, and are
// published together with their key block.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "chain/block_tree.hpp"
#include "common/types.hpp"

namespace bng::obs {
class TraceRing;
}

namespace bng::protocol {

class WithholdingStrategy {
 public:
  enum class Mode : std::uint8_t {
    /// Classic SM1 (Eyal & Sirer): at a one-block lead after an honest find,
    /// reveal everything and take the safe win.
    kSm1,
    /// Lead-stubborn mining (Nayak et al., EuroS&P 2016, the L variant):
    /// never perform SM1's lead-1 cash-out. On every honest find the
    /// attacker reveals only up to the public work level and keeps racing on
    /// its private tip; a race won by mining stays withheld instead of being
    /// published. Riskier block-for-block, but it keeps the honest network
    /// split for longer, which pays at high alpha/gamma.
    kLeadStubborn,
  };

  /// `publish` announces one private block to the network (the host node's
  /// announce()). Called only from end_own_win() / on_accept().
  WithholdingStrategy(const chain::BlockTree& tree, std::function<void(BlockId)> publish,
                      Mode mode = Mode::kSm1);

  /// Bracket the host's base-class on_mining_win() call: the freshly mined
  /// block flows through after_accept while "processing own win" is set, so
  /// it is neither announced nor mistaken for a public block.
  void begin_own_win();
  /// Record the new private tip and resolve a pending race won by this block.
  void end_own_win();

  /// Feed every accepted block (the host's after_accept hook). `own` is true
  /// when this node generated the block.
  void on_accept(std::uint32_t index, bool own);

  /// True for blocks the relay policy must suppress: the private chain, the
  /// block currently inside the begin/end_own_win bracket, and — crucially —
  /// an own block extending the private tip that on_accept has not
  /// registered yet. accept_block consults the relay policy *before* the
  /// after_accept hook runs, so without the last rule the adversary's own
  /// private-chain microblocks would be announced (and the withheld epoch
  /// revealed through orphan-chasing) one hook too early.
  [[nodiscard]] bool suppress_relay(std::uint32_t index, bool own) const;

  /// Mirror withhold/release/abandon decisions into a decision trace
  /// (obs/trace_ring.hpp). `self` labels the events with the host node's id.
  /// Null (the default) disables mirroring; recording never changes strategy
  /// state, so traced and untraced runs are bit-identical.
  void set_trace(obs::TraceRing* trace, NodeId self) {
    trace_ring_ = trace;
    self_ = self;
  }

  [[nodiscard]] std::size_t withheld() const { return private_blocks_.size(); }
  [[nodiscard]] std::uint64_t blocks_published() const { return blocks_published_; }
  [[nodiscard]] std::uint64_t branches_abandoned() const { return branches_abandoned_; }

 private:
  void publish_until(double target_work);
  void publish_all();
  void abandon_private_chain();
  [[nodiscard]] bool is_private(BlockId id) const;
  [[nodiscard]] bool extends_private_tip(std::uint32_t index) const;
  [[nodiscard]] double private_work() const { return tree_.best_entry().chain_work; }

  const chain::BlockTree& tree_;
  std::function<void(BlockId)> publish_;
  Mode mode_ = Mode::kSm1;

  /// Unpublished own blocks by interned id, oldest first (a suffix of the
  /// private chain; zero-weight blocks interleave behind their key block).
  std::deque<BlockId> private_blocks_;
  /// Heaviest publicly-known chain work (own published blocks included).
  double public_best_work_ = 0;
  /// True while the host's base class processes our own freshly-withheld win.
  bool processing_own_win_ = false;
  /// Head-to-head race state (SM1's 0' state) and the contested work level.
  bool racing_ = false;
  double race_work_ = 0;
  std::uint64_t blocks_published_ = 0;
  std::uint64_t branches_abandoned_ = 0;
  obs::TraceRing* trace_ring_ = nullptr;
  NodeId self_ = kNoNode;
};

}  // namespace bng::protocol
