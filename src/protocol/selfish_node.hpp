// Generic selfish-mining adapter: wires a WithholdingStrategy into any
// protocol node type through the BaseNode hooks. SelfishNode<BitcoinNode>
// is the classic SM1 attacker; SelfishNode<GhostNode> withholds against the
// heaviest-subtree rule; SelfishNode<NgNode> withholds key blocks — and the
// microblocks it leads on its private chain ride along, published with their
// epoch (§5.1: this is exactly why microblocks must carry no weight, or the
// withheld epoch would gain from them).
#pragma once

#include "protocol/base_node.hpp"
#include "protocol/withholding.hpp"

namespace bng::protocol {

/// The attacker always prefers its own branch on ties: first-seen keeps the
/// locally-mined (first-inserted) private chain as the mining tip.
inline NodeConfig selfish_config(NodeConfig cfg) {
  cfg.params.tie_break = chain::TieBreak::kFirstSeen;
  return cfg;
}

template <class Base>
class SelfishNode : public Base {
 public:
  SelfishNode(NodeId id, net::Network& net, chain::BlockPtr genesis, NodeConfig cfg,
              Rng rng, IBlockObserver* observer,
              WithholdingStrategy::Mode mode = WithholdingStrategy::Mode::kSm1)
      : Base(id, net, std::move(genesis), selfish_config(std::move(cfg)), rng, observer),
        strategy_(this->tree_, [this](BlockId block) { this->announce(block, this->id_); },
                  mode) {
    strategy_.set_trace(this->cfg_.trace, id);
  }

  /// Mines on the *private* chain and withholds the block (SM1).
  void on_mining_win(double work) override {
    strategy_.begin_own_win();
    Base::on_mining_win(work);
    strategy_.end_own_win();
  }

  [[nodiscard]] std::size_t withheld() const { return strategy_.withheld(); }
  [[nodiscard]] std::uint64_t blocks_published() const {
    return strategy_.blocks_published();
  }
  [[nodiscard]] std::uint64_t branches_abandoned() const {
    return strategy_.branches_abandoned();
  }
  [[nodiscard]] const WithholdingStrategy& strategy() const { return strategy_; }

 protected:
  /// Reacts to accepted blocks per SM1 (publish / match / race / abandon).
  void after_accept(const chain::BlockPtr& block, std::uint32_t index,
                    std::uint32_t old_tip) override {
    Base::after_accept(block, index, old_tip);
    strategy_.on_accept(index, block->miner() == this->id_);
  }

  /// Withheld blocks are never announced; published ones follow base policy.
  [[nodiscard]] bool should_relay(std::uint32_t index) const override {
    const bool own = this->tree_.entry(index).block->miner() == this->id_;
    if (strategy_.suppress_relay(index, own)) return false;
    return Base::should_relay(index);
  }

  WithholdingStrategy strategy_;
};

}  // namespace bng::protocol
