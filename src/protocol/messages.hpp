// Wire messages for block gossip, mirroring bitcoind's inv/getdata/block flow.
//
// Announcements carry the interned BlockId, not the 32-byte hash: every
// receiver of an inv/getdata resolves it with plain array indexing instead
// of hashing. The simulated wire cost is unchanged (wire_size() still counts
// the 36 bytes a real inv vector entry occupies); only the host-side
// representation is compressed, the same way compact-block relay replaced
// repeated full-hash lookups with short ids on the relay hot path.
#pragma once

#include "chain/block.hpp"
#include "common/intern.hpp"
#include "common/types.hpp"
#include "net/network.hpp"

namespace bng::protocol {

/// Dispatch tags carried in net::Message::kind (hot path: switch, not RTTI).
enum MessageKind : std::uint8_t {
  kInvKind = 1,
  kGetDataKind = 2,
  kBlockKind = 3,
};

/// Announcement of a block id (bitcoind `inv`).
struct InvMessage final : net::Message {
  BlockId block_id;

  explicit InvMessage(BlockId id) : net::Message(kInvKind), block_id(id) {}
  [[nodiscard]] std::size_t wire_size() const override { return 36; }
  [[nodiscard]] const char* type_name() const override { return "inv"; }
};

/// Request for a block body (bitcoind `getdata`).
struct GetDataMessage final : net::Message {
  BlockId block_id;

  explicit GetDataMessage(BlockId id) : net::Message(kGetDataKind), block_id(id) {}
  [[nodiscard]] std::size_t wire_size() const override { return 36; }
  [[nodiscard]] const char* type_name() const override { return "getdata"; }
};

/// Full block body.
struct BlockMessage final : net::Message {
  chain::BlockPtr block;

  explicit BlockMessage(chain::BlockPtr b) : net::Message(kBlockKind), block(std::move(b)) {}
  [[nodiscard]] std::size_t wire_size() const override { return block->wire_size(); }
  [[nodiscard]] const char* type_name() const override { return "block"; }
};

}  // namespace bng::protocol
