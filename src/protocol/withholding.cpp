#include "protocol/withholding.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace_ring.hpp"

namespace bng::protocol {

namespace {
void trace_decision(obs::TraceRing* ring, obs::TraceKind kind, NodeId self, BlockId id) {
  if (ring != nullptr && ring->wants(obs::kTraceAdversary))
    ring->record(obs::kTraceAdversary, kind, self, id);
}
}  // namespace

WithholdingStrategy::WithholdingStrategy(const chain::BlockTree& tree,
                                         std::function<void(BlockId)> publish, Mode mode)
    : tree_(tree), publish_(std::move(publish)), mode_(mode) {}

bool WithholdingStrategy::is_private(BlockId id) const {
  return std::find(private_blocks_.begin(), private_blocks_.end(), id) !=
         private_blocks_.end();
}

void WithholdingStrategy::begin_own_win() { processing_own_win_ = true; }

void WithholdingStrategy::end_own_win() {
  processing_own_win_ = false;
  private_blocks_.push_back(tree_.best_entry().id);
  trace_decision(trace_ring_, obs::TraceKind::kWithhold, self_, private_blocks_.back());

  // State 0' -> win: we were racing head-to-head and just mined on our own
  // branch. SM1 publishes and takes both blocks' rewards; the stubborn
  // variant keeps the fresh lead private and goes on withholding.
  if (racing_ && private_work() > race_work_) {
    if (mode_ == Mode::kSm1) publish_all();
    racing_ = false;
  }
}

bool WithholdingStrategy::extends_private_tip(std::uint32_t index) const {
  if (private_blocks_.empty()) return false;
  const std::uint32_t last_private = tree_.index_of_id(private_blocks_.back());
  return last_private != chain::BlockTree::kNoIndex &&
         tree_.is_ancestor(last_private, index);
}

bool WithholdingStrategy::suppress_relay(std::uint32_t index, bool own) const {
  if (processing_own_win_) return true;  // own block being mined right now
  if (is_private(tree_.entry(index).id)) return true;
  // An own block extending the private tip is private-to-be: on_accept will
  // register it, but the relay decision happens first (see the header).
  return own && extends_private_tip(index);
}

void WithholdingStrategy::on_accept(std::uint32_t index, bool own) {
  if (processing_own_win_) return;  // our own freshly-withheld block
  const BlockId id = tree_.entry(index).id;
  if (is_private(id)) return;

  if (own && extends_private_tip(index)) {
    // A zero-weight block we built on our own private chain (an NG
    // microblock during a withheld epoch): it stays private, publishing
    // together with its key block. PoW protocols never reach this branch —
    // own wins only arrive inside the begin/end_own_win bracket.
    private_blocks_.push_back(id);
    trace_decision(trace_ring_, obs::TraceKind::kWithhold, self_, id);
    return;
  }

  // A public block arrived (honest, or one we published ourselves).
  public_best_work_ = std::max(public_best_work_, tree_.entry(index).chain_work);
  if (racing_ && public_best_work_ > race_work_) racing_ = false;  // race resolved
  if (private_blocks_.empty()) return;

  const double lead = private_work() - public_best_work_;
  if (lead < 0) {
    // The public chain overtook us: our withheld blocks are worthless.
    abandon_private_chain();
  } else if (lead == 0) {
    // They caught up: reveal everything; the network splits (gamma under the
    // honest nodes' tie-break rule) and the race is on.
    race_work_ = private_work();
    publish_all();
    racing_ = true;
  } else if (lead == 1 && mode_ == Mode::kSm1) {
    // We lead by exactly one after their find: reveal all and win outright.
    publish_all();
  } else if (lead == 1) {
    // Lead-stubborn: refuse the safe cash-out. Reveal only the block that
    // matches the public height and race at that level with the newest block
    // still withheld.
    race_work_ = public_best_work_;
    publish_until(public_best_work_);
    racing_ = true;
  } else {
    // Comfortable lead: reveal just enough to match the public height and
    // keep the honest network wasting work on a losing branch.
    publish_until(public_best_work_);
  }
}

void WithholdingStrategy::publish_until(double target_work) {
  while (!private_blocks_.empty()) {
    const BlockId id = private_blocks_.front();
    const std::uint32_t idx = tree_.index_of_id(id);
    if (idx == chain::BlockTree::kNoIndex) {
      private_blocks_.pop_front();
      continue;
    }
    if (tree_.entry(idx).chain_work > target_work) break;
    private_blocks_.pop_front();
    ++blocks_published_;
    trace_decision(trace_ring_, obs::TraceKind::kRelease, self_, id);
    publish_(id);
  }
}

void WithholdingStrategy::publish_all() {
  while (!private_blocks_.empty()) {
    const BlockId id = private_blocks_.front();
    private_blocks_.pop_front();
    if (tree_.contains_id(id)) {
      ++blocks_published_;
      trace_decision(trace_ring_, obs::TraceKind::kRelease, self_, id);
      publish_(id);
    }
  }
}

void WithholdingStrategy::abandon_private_chain() {
  if (!private_blocks_.empty()) {
    ++branches_abandoned_;
    trace_decision(trace_ring_, obs::TraceKind::kAbandon, self_, private_blocks_.front());
  }
  private_blocks_.clear();
}

}  // namespace bng::protocol
