// Shared machinery for protocol nodes: gossip, orphan handling, a CPU model
// for block verification, and mempool/workload bookkeeping.
//
// Hot-path state is keyed by interned BlockId (common/intern.hpp), shared
// experiment-wide through the Network: the seen/requested gossip sets and
// the CPU cursor live in the deployment-wide struct-of-arrays
// NodeStateArena (common/node_state.hpp) — dense planes indexed by
// (node, id) rather than per-object allocations, so 10k+-node fleets touch
// flat memory — the orphan buffer is a small flat vector, and the
// inv/getdata flow never hashes a Hash256. The block hash is computed and
// interned exactly once per (node, block) — when the body first arrives.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "chain/block_tree.hpp"
#include "chain/mempool.hpp"
#include "chain/params.hpp"
#include "common/intern.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "protocol/messages.hpp"
#include "protocol/observer.hpp"

namespace bng::obs {
class TraceRing;
}

namespace bng::protocol {

/// Pre-generated synthetic transaction pool shared by all nodes
/// (paper §7 "No Transaction Propagation": identical mempools, independent
/// identically-sized transactions serializable in any order).
struct SyntheticWorkload {
  std::vector<chain::TxPtr> txs;
  std::size_t tx_wire_size = 0;  ///< identical for all txs
  Amount fee_per_tx = 0;
};

enum class WorkloadMode {
  /// Assemble from the shared pool by chain position: O(1) state per node,
  /// used for large-scale sweeps.
  kSynthetic,
  /// Full mempool with inclusion tracking and reorg handling.
  kFullMempool,
};

struct NodeConfig {
  chain::Params params;
  /// Relative mining power of this node.
  double mining_power = 1.0;
  /// Block verification cost model: fixed + size-proportional CPU time.
  /// 25 MB/s approximates a 2015-era bitcoind (ECDSA + UTXO checks).
  Seconds verify_fixed = 0.002;
  double verify_bytes_per_second = 25e6;
  /// Check microblock ECDSA signatures (the paper's artifact skipped this;
  /// we support both).
  bool verify_signatures = false;
  WorkloadMode workload_mode = WorkloadMode::kSynthetic;
  const SyntheticWorkload* workload = nullptr;  ///< required in kSynthetic mode
  /// Optional decision trace (obs/trace_ring.hpp). Null in every normal run:
  /// the traced paths pay one pointer test, nothing more. Recording never
  /// mutates sim state, so traced and untraced runs are bit-identical.
  obs::TraceRing* trace = nullptr;
};

class BaseNode : public net::INode {
 public:
  BaseNode(NodeId id, net::Network& net, chain::BlockPtr genesis, NodeConfig cfg, Rng rng,
           IBlockObserver* observer);
  ~BaseNode() override = default;

  // INode:
  void on_message(NodeId from, const net::MessagePtr& msg) final;

  /// Mining scheduler callback: this node won the next proof-of-work.
  /// `work` is the PoW weight of the won block (difficulty units).
  virtual void on_mining_win(double work) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const chain::BlockTree& tree() const { return tree_; }
  [[nodiscard]] chain::Mempool& mempool() { return mempool_; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }

  /// Submit a transaction locally (full-mempool mode).
  void submit_transaction(const chain::TxPtr& tx) { mempool_.submit(tx); }

  /// Blocks accepted into this node's tree.
  [[nodiscard]] std::size_t blocks_known() const { return tree_.size(); }

 protected:
  /// Protocol-specific validation + insertion. Runs after the verification
  /// delay. `id` is the block's interned identity (computed once on receipt).
  /// Implementations call accept_block() when the block is valid.
  virtual void handle_block(const chain::BlockPtr& block, BlockId id, NodeId from) = 0;

  /// Insert into the tree, relay, resolve orphans, maintain the mempool.
  /// Returns the tree index.
  std::uint32_t accept_block(const chain::BlockPtr& block, BlockId id, NodeId from,
                             double work);

  /// Announce a block id to all neighbours except `except`.
  void announce(BlockId id, NodeId except);

  /// If the block's parent is in the tree, returns its tree index. Otherwise
  /// buffers the block as an orphan, requests the parent from `from`, and
  /// returns chain::BlockTree::kNoIndex.
  std::uint32_t ensure_parent(const chain::BlockPtr& block, BlockId id, NodeId from);

  /// Queue `fn` on this node's CPU after `cost` seconds of processing.
  void process_after(Seconds cost, net::EventQueue::Callback fn);

  [[nodiscard]] Seconds now() const { return queue_.now(); }

  /// Assemble up to `max_bytes` of payload transactions on top of `tip`.
  [[nodiscard]] std::vector<chain::TxPtr> assemble_payload(std::uint32_t tip,
                                                           std::size_t max_bytes,
                                                           std::size_t reserve_bytes);

  /// Update mempool inclusion state after the tip moved (full-mempool mode).
  void update_mempool_for_tip_change(std::uint32_t old_tip, std::uint32_t new_tip);

  /// Called after a block is accepted and the tip possibly changed.
  virtual void after_accept(const chain::BlockPtr& block, std::uint32_t index,
                            std::uint32_t old_tip) {
    (void)block;
    (void)index;
    (void)old_tip;
  }

  /// Relay policy. bitcoind only announces blocks on its active chain; GHOST
  /// (paper §9) must propagate all blocks so nodes can weigh subtrees.
  [[nodiscard]] virtual bool should_relay(std::uint32_t index) const {
    return tree_.is_ancestor(index, tree_.best_tip());
  }

  NodeId id_;
  net::Network& net_;
  /// The event queue this node runs on — the network's shard queue for this
  /// node id (the deployment-wide queue when unsharded). Cached at
  /// construction, so shards must be configured before nodes are built.
  net::EventQueue& queue_;
  NodeConfig cfg_;
  Rng rng_;
  chain::BlockTree tree_;
  chain::Mempool mempool_;
  IBlockObserver* observer_;

  /// Block bodies known but whose parent is missing. Orphans are rare and
  /// few, so a flat vector scanned by interned parent id beats a hash map.
  struct Orphan {
    BlockId parent;
    BlockId id;
    chain::BlockPtr block;
    NodeId from;
  };
  std::vector<Orphan> orphans_;
  ArenaIdSet known_;      ///< seen bodies (by interned id; arena plane)
  ArenaIdSet requested_;  ///< outstanding getdata (by interned id; arena plane)

 private:
  void handle_inv(NodeId from, const InvMessage& inv);
  void handle_getdata(NodeId from, const GetDataMessage& req);
  void handle_block_msg(NodeId from, const BlockMessage& msg);
  void resolve_orphans(BlockId parent_id);
  [[nodiscard]] chain::BlockPtr find_block(BlockId id) const;
};

}  // namespace bng::protocol
