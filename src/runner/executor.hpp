// Executor: the pluggable dispatch substrate under the sweep engine.
//
// run_sweep expands a scenario into (point × seed) jobs and hands them to an
// Executor; the executor runs every job and streams back one RunRecord per
// job. Two implementations ship today:
//
//  * ThreadPoolExecutor — the original in-process worker threads;
//  * ProcessPoolExecutor — fork/exec'd `ngsim --worker` children speaking
//    the length-prefixed record protocol of runner/record_codec.hpp over a
//    socketpair, with crash detection and job re-dispatch.
//
// Both are pure functions of (scenario, points): records are delivered in
// arbitrary order but carry their own (point, ordinal) identity, and the
// caller merges them into deterministic slots — so any executor at any
// width yields bit-identical sweep output. A multi-machine dispatcher is
// "ProcessPoolExecutor over a socket" and slots in the same way.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/record.hpp"
#include "runner/scenario.hpp"

namespace bng::obs {
class SweepTelemetry;
class TraceRing;
}

namespace bng::runner {

/// What an executor needs to run a sweep. `points` must be expand(scenario)
/// — process-pool workers re-expand from scenario.source and the two grids
/// must agree.
struct ExecutionPlan {
  const Scenario& scenario;
  const std::vector<SweepPoint>& points;
  std::uint32_t seeds = 1;
  bool share_workload = true;
  /// Jobs already completed in an earlier (crashed, resumed) run, indexed by
  /// point * seeds + ordinal — recovered from a journal. Null or empty:
  /// nothing done. Executors skip these without running or delivering them.
  const std::vector<std::uint8_t>* done = nullptr;
  /// Decision-trace categories (obs/trace_ring.hpp bit mask). 0 (default):
  /// tracing fully disabled — no ring is allocated and run_job receives
  /// null. Non-zero is only supported by the in-process thread executor;
  /// process-pool and fleet executors reject it (the rings would live in
  /// other processes).
  std::uint32_t trace_mask = 0;
  /// Called once per traced job, after its record is delivered, with the
  /// job's ring (drained after the call returns). May run on worker threads
  /// concurrently — the sink synchronizes its own output.
  std::function<void(std::uint32_t point, std::uint32_t ordinal,
                     const obs::TraceRing& ring)>
      trace_sink;
  /// Optional sweep telemetry. The in-process thread executor feeds it each
  /// job's executed-event count (for the events/sec rate in --progress and
  /// --stats-json); process/fleet executors ignore it — their experiments
  /// run in other address spaces.
  obs::SweepTelemetry* telemetry = nullptr;
};

/// Whether the plan says this job already has its record (resume).
inline bool plan_job_done(const ExecutionPlan& plan, std::size_t job) {
  return plan.done != nullptr && job < plan.done->size() && (*plan.done)[job] != 0;
}

/// Cooperative cancellation for a sweep in flight. A signal handler (ngsim's
/// SIGINT/SIGTERM) or a test sets the flag; every executor polls it between
/// dispatches and aborts by throwing SweepInterrupted after quiescing its
/// workers — so RAII up the stack (the resume journal above all) flushes
/// cleanly instead of the process dying with completed records in memory.
std::atomic<bool>& sweep_interrupt_flag();

struct SweepInterrupted : std::runtime_error {
  SweepInterrupted() : std::runtime_error("sweep interrupted") {}
};

/// Throw SweepInterrupted if the flag is set (executor dispatch loops call
/// this once per iteration).
void throw_if_interrupted();

/// Receives each finished record exactly once, possibly from worker threads
/// (never concurrently for the same job; jobs write disjoint slots).
using RecordSink = std::function<void(RunRecord)>;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Run every (point × seed) job, delivering each record through `sink`.
  /// Returns the parallel width actually used (threads or processes).
  /// Throws (after quiescing its workers) if any job fails.
  virtual std::uint32_t run(const ExecutionPlan& plan, const RecordSink& sink) = 0;
};

/// In-process pool of `jobs` worker threads (0 = hardware concurrency).
std::unique_ptr<Executor> make_thread_executor(std::uint32_t jobs);

struct ProcessPoolOptions {
  /// Worker process count (>= 1; clamped to the job count).
  std::uint32_t procs = 1;
  /// argv prefix to exec for each worker, e.g. {"/path/to/ngsim",
  /// "--worker"}. Empty: fork without exec and run worker_main in the child
  /// directly (used by tests; inherits the parent's scenario registry).
  std::vector<std::string> worker_argv;
  /// Test hook: deliver a kill order to the first worker's handshake — it
  /// SIGKILLs itself when handed its (n+1)-th job, exercising crash
  /// detection and re-dispatch. Negative: disabled.
  int kill_worker0_after_jobs = -1;
};

std::unique_ptr<Executor> make_process_pool_executor(ProcessPoolOptions options);

/// Run one job. The shared pool may be null (the experiment then builds its
/// own workload). Pure function of its arguments — every executor and the
/// worker process funnel through this. `trace` (optional) receives the
/// experiment's decision trace; recording is observational, so the record —
/// digest included — is bit-identical with and without it.
/// `telemetry` (optional) receives the parallel engine's live efficiency
/// figures when the config runs sharded; like tracing it never touches the
/// record.
RunRecord run_job(const Scenario& scenario, const SweepPoint& point,
                  std::uint32_t point_index, std::uint32_t ordinal,
                  std::shared_ptr<const sim::PrebuiltWorkload> pool,
                  obs::TraceRing* trace = nullptr,
                  std::uint64_t* events_executed = nullptr,
                  obs::SweepTelemetry* telemetry = nullptr);

/// Entry point of the `ngsim --worker` mode: speak the worker protocol over
/// the given fds (stdin/stdout when exec'd) until EOF. Returns the process
/// exit code. Never throws; fatal errors are reported as 'E' frames.
int worker_main(int in_fd, int out_fd);

// A third executor — the TCP fleet dispatcher behind `ngsim --hosts` — lives
// in runner/tcp_fleet.hpp; it implements this same interface over remote
// `ngsim --serve` workers with heartbeat liveness and per-job deadlines.

}  // namespace bng::runner
