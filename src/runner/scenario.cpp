#include "runner/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace bng::runner {

// Defined in builtin_scenarios.cpp. Called lazily from the registry
// accessors so that linking the registry always pulls in the built-ins
// (a static-initializer in another object file could be dropped).
void register_builtin_scenarios();

namespace {

struct Registered {
  std::string description;
  ScenarioFactory factory;
};

std::map<std::string, Registered>& registry() {
  static std::map<std::string, Registered> r;
  return r;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, register_builtin_scenarios);
}

double parse_double(std::string_view key, std::string_view value) {
  try {
    std::size_t used = 0;
    std::string s(value);
    double d = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument("trailing characters");
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value '" + std::string(value) + "' for key '" +
                                std::string(key) + "'");
  }
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    throw std::invalid_argument("bad integer value '" + std::string(value) + "' for key '" +
                                std::string(key) + "'");
  return out;
}

bool parse_bool(std::string_view key, std::string_view value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::invalid_argument("bad boolean value '" + std::string(value) + "' for key '" +
                              std::string(key) + "'");
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = std::strtoul(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::uint32_t>(parsed) : fallback;
}

void register_scenario(std::string name, std::string description, ScenarioFactory factory) {
  std::lock_guard lock(registry_mutex());
  registry()[std::move(name)] = {std::move(description), std::move(factory)};
}

std::optional<Scenario> make_scenario(const std::string& name, const RunKnobs& knobs) {
  ensure_builtins();
  ScenarioFactory factory;
  {
    std::lock_guard lock(registry_mutex());
    auto it = registry().find(name);
    if (it == registry().end()) return std::nullopt;
    factory = it->second.factory;
  }
  Scenario s = factory(knobs);
  s.source = ScenarioSource{ScenarioSource::Kind::kBuiltin, name, knobs};
  return s;
}

std::vector<std::pair<std::string, std::string>> list_scenarios() {
  ensure_builtins();
  std::lock_guard lock(registry_mutex());
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(registry().size());
  for (const auto& [name, reg] : registry()) out.emplace_back(name, reg.description);
  return out;
}

std::vector<SweepPoint> expand(const Scenario& s) {
  std::vector<SweepPoint> points;
  points.push_back(SweepPoint{{}, 0, s.base});
  for (const Axis& axis : s.axes) {
    std::vector<SweepPoint> next;
    next.reserve(points.size() * axis.values.size());
    for (const SweepPoint& p : points) {
      for (const AxisValue& v : axis.values) {
        SweepPoint q = p;
        q.labels.push_back(v.label);
        q.x = v.x;
        if (v.apply) v.apply(q.config);
        next.push_back(std::move(q));
      }
    }
    points = std::move(next);
  }
  return points;
}

void apply_config_override(sim::ExperimentConfig& cfg, std::string_view key,
                           std::string_view value) {
  if (key == "protocol") {
    // Sets only the protocol, never the whole preset: a protocol axis must
    // not wipe interval/size overrides applied earlier (matched-comparison
    // sweeps rely on shared knobs surviving the protocol switch).
    if (value == "bitcoin") {
      cfg.params.protocol = chain::Protocol::kBitcoin;
    } else if (value == "ng" || value == "bitcoin-ng") {
      cfg.params.protocol = chain::Protocol::kBitcoinNG;
    } else if (value == "ghost") {
      cfg.params.protocol = chain::Protocol::kGhost;
    } else {
      throw std::invalid_argument("unknown protocol '" + std::string(value) +
                                  "' (bitcoin | ng | ghost)");
    }
  } else if (key == "nodes") {
    cfg.num_nodes = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "min_degree") {
    cfg.min_degree = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "blocks") {
    cfg.target_blocks = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "tx_size") {
    cfg.tx_size = static_cast<std::size_t>(parse_u64(key, value));
  } else if (key == "tx_fee") {
    cfg.tx_fee = static_cast<Amount>(parse_u64(key, value));
  } else if (key == "pool_size") {
    cfg.pool_size = static_cast<std::size_t>(parse_u64(key, value));
  } else if (key == "drain_time") {
    cfg.drain_time = parse_double(key, value);
  } else if (key == "power_exponent") {
    cfg.power_exponent = parse_double(key, value);
  } else if (key == "verify_signatures") {
    cfg.verify_signatures = parse_bool(key, value);
  } else if (key == "block_interval") {
    cfg.params.block_interval = parse_double(key, value);
  } else if (key == "microblock_interval") {
    cfg.params.microblock_interval = parse_double(key, value);
  } else if (key == "min_microblock_interval") {
    cfg.params.min_microblock_interval = parse_double(key, value);
  } else if (key == "max_block_size") {
    cfg.params.max_block_size = static_cast<std::size_t>(parse_u64(key, value));
  } else if (key == "max_microblock_size") {
    cfg.params.max_microblock_size = static_cast<std::size_t>(parse_u64(key, value));
  } else if (key == "leader_fee_fraction") {
    cfg.params.leader_fee_fraction = parse_double(key, value);
  } else if (key == "tie_break") {
    if (value == "random") {
      cfg.params.tie_break = chain::TieBreak::kRandom;
    } else if (value == "first-seen") {
      cfg.params.tie_break = chain::TieBreak::kFirstSeen;
    } else {
      throw std::invalid_argument("unknown tie_break '" + std::string(value) +
                                  "' (random | first-seen)");
    }
  } else if (key == "adversary") {
    if (value == "none") {
      cfg.adversary.kind = sim::AdversarySpec::Kind::kNone;
    } else if (value == "selfish") {
      cfg.adversary.kind = sim::AdversarySpec::Kind::kSelfish;
    } else if (value == "stubborn") {
      cfg.adversary.kind = sim::AdversarySpec::Kind::kStubborn;
    } else if (value == "equivocate") {
      cfg.adversary.kind = sim::AdversarySpec::Kind::kEquivocate;
    } else if (value == "withhold-micro") {
      cfg.adversary.kind = sim::AdversarySpec::Kind::kWithholdMicro;
    } else {
      throw std::invalid_argument(
          "unknown adversary '" + std::string(value) +
          "' (none | selfish | stubborn | equivocate | withhold-micro)");
    }
  } else if (key == "adversary_node") {
    cfg.adversary.node = static_cast<NodeId>(parse_u64(key, value));
  } else if (key == "adversary_share") {
    cfg.adversary.power_share = parse_double(key, value);
  } else if (key == "adversary_gamma") {
    cfg.adversary.gamma = parse_double(key, value);
  } else if (key == "equivocate_every") {
    cfg.adversary.equivocate_every = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "shards") {
    // Wall-clock knob only: records and digests are bit-identical for every
    // value (sim/parallel_engine.hpp), so sweeping it is harmless but
    // pointless — it belongs in the base config or on the CLI.
    cfg.shards = static_cast<std::uint32_t>(parse_u64(key, value));
    if (cfg.shards == 0) throw std::invalid_argument("shards must be >= 1");
  } else {
    std::string known;
    for (const std::string& k : config_override_keys()) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    throw std::invalid_argument("unknown config key '" + std::string(key) +
                                "' (known: " + known + ")");
  }
}

std::vector<std::string> config_override_keys() {
  return {"protocol",        "nodes",
          "min_degree",      "blocks",
          "tx_size",         "tx_fee",
          "pool_size",       "drain_time",
          "power_exponent",  "verify_signatures",
          "block_interval",  "microblock_interval",
          "min_microblock_interval", "max_block_size",
          "max_microblock_size",     "leader_fee_fraction",
          "tie_break",       "adversary",
          "adversary_node",  "adversary_share",
          "adversary_gamma", "equivocate_every",
          "shards"};
}

Scenario load_scenario_file(const std::string& path, const RunKnobs& knobs) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return load_scenario_string(buffer.str(), path, knobs);
}

Scenario load_scenario_string(const std::string& text, const std::string& origin,
                              const RunKnobs& knobs) {
  std::istringstream in(text);

  Scenario s;
  s.name = "custom";
  s.description = "scenario file " + origin;
  s.base.num_nodes = knobs.nodes;
  s.base.target_blocks = knobs.blocks;
  // The raw text is the canonical shippable form: a worker re-parses it and
  // lands on the identical scenario, no shared filesystem required.
  s.source = ScenarioSource{ScenarioSource::Kind::kInline, text, knobs};

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (auto hash = sv.find('#'); hash != std::string_view::npos) sv = trim(sv.substr(0, hash));
    if (sv.empty()) continue;
    auto eq = sv.find('=');
    if (eq == std::string_view::npos)
      throw std::runtime_error(origin + ":" + std::to_string(line_no) +
                               ": expected 'key = value'");
    std::string_view key = trim(sv.substr(0, eq));
    std::string_view value = trim(sv.substr(eq + 1));

    try {
      if (key == "name") {
        s.name = std::string(value);
      } else if (key == "description") {
        s.description = std::string(value);
      } else if (key == "seed_base") {
        s.seed_base = parse_u64(key, value);
      } else if (key.starts_with("base.")) {
        apply_config_override(s.base, key.substr(5), value);
      } else if (key.starts_with("refine.")) {
        if (!s.refine) s.refine = RefineSpec{};
        const std::string_view sub = key.substr(7);
        if (sub == "axis") {
          s.refine->axis = std::string(value);
        } else if (sub == "metric") {
          s.refine->metric = std::string(value);
        } else if (sub == "threshold") {
          s.refine->threshold = parse_double(key, value);
        } else if (sub == "coarse") {
          s.refine->coarse = static_cast<std::uint32_t>(parse_u64(key, value));
          if (s.refine->coarse < 2)
            throw std::invalid_argument("refine.coarse must be >= 2");
        } else if (sub == "tolerance") {
          s.refine->tolerance = parse_double(key, value);
        } else {
          throw std::invalid_argument(
              "unknown refine key '" + std::string(sub) +
              "' (axis | metric | threshold | coarse | tolerance)");
        }
      } else if (key.starts_with("axis.")) {
        std::string axis_key(key.substr(5));
        Axis axis{axis_key, {}};
        std::stringstream ss{std::string(value)};
        std::string item;
        while (std::getline(ss, item, ',')) {
          std::string v(trim(item));
          if (v.empty()) continue;
          double x = 0;
          try {
            x = std::stod(v);
          } catch (const std::exception&) {
            x = static_cast<double>(axis.values.size());
          }
          axis.values.push_back(AxisValue{
              axis_key + "=" + v, x,
              [axis_key, v](sim::ExperimentConfig& cfg) {
                apply_config_override(cfg, axis_key, v);
              }});
        }
        if (axis.values.empty())
          throw std::invalid_argument("axis '" + axis_key + "' has no values");
        s.axes.push_back(std::move(axis));
      } else {
        throw std::invalid_argument("unknown directive '" + std::string(key) + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(origin + ":" + std::to_string(line_no) + ": " + e.what());
    }
  }
  if (s.refine) {
    if (s.refine->metric.empty())
      throw std::runtime_error(origin + ": refine.metric is required when refine.* is set");
    bool found = false;
    for (const Axis& a : s.axes) found = found || a.name == s.refine->axis;
    if (!found)
      throw std::runtime_error(origin + ": refine.axis '" + s.refine->axis +
                               "' does not name an axis in this file");
  }
  return s;
}

}  // namespace bng::runner
