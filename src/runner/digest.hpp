// Determinism digest: FNV-1a over a run's observable outputs.
//
// Two runs of the same (config, seed) must produce bit-identical digests
// regardless of how many sweep jobs execute concurrently — the digest is the
// witness the concurrency tests and CI compare.
#pragma once

#include <cstdint>
#include <cstring>

namespace bng::runner {

struct Digest {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

}  // namespace bng::runner
