// Adaptive frontier sweeps: coarse-pass + deterministic bisection along one
// refine-marked axis, instead of evaluating the full dense grid.
//
// The paper's adversary results are crossover *surfaces* — e.g. the alpha at
// which selfish mining turns profitable, per (gamma, protocol) — and most of
// a dense alpha grid only confirms what a bisection would infer. The driver
// groups the expanded grid by every non-refine axis position, evaluates a
// coarse subset of each group's refine column, then repeatedly bisects every
// bracket where the predicate mean(metric) > threshold changes sign, until
// brackets are adjacent grid indices (or within the configured x tolerance).
//
// Determinism: refined points keep their *dense-grid* index — each wave is an
// ExecutionPlan over the full grid with everything except the wave marked
// done — so job_seed() and therefore every record is bit-identical to the
// same point of a dense sweep, and the frontier artifacts are pure functions
// of the records. Journaling/resume work as in run_sweep (the journal header
// describes the dense grid; prefilled records count as evaluated points),
// and the record cache (runner/cache.hpp) makes re-refinement near-free.
//
// The inferred frontier equals the dense grid's when the predicate crosses
// once per group (monotone surfaces — true for SM1 profitability); a
// non-monotone surface can hide extra crossings inside coarse segments the
// bisection never opens.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace bng::runner {

struct AdaptiveOptions {
  SweepOptions sweep;
  /// Evaluate every grid point (one wave) instead of refining. The frontier
  /// artifacts use the same scan either way, so a dense run is the oracle an
  /// adaptive run is byte-compared against.
  bool dense = false;
};

/// One frontier bracket: the tightest evaluated pair of refine-axis values
/// where the predicate changes sign, per group of non-refine axis values.
struct FrontierRow {
  std::string group;  ///< joined non-refine labels ("-" when none)
  bool found = false; ///< false: predicate never changes sign in this group
  double lo_x = 0;
  double hi_x = 0;
  double crossover_x = 0;  ///< linear interpolation of metric across the bracket
  double lo_value = 0;     ///< mean(metric) at lo_x
  double hi_value = 0;     ///< mean(metric) at hi_x
};

struct AdaptiveResult {
  /// Evaluated points only (ascending dense-grid order), with per-point
  /// aggregates — the shape run_sweep would return for the evaluated subset.
  SweepResult sweep;
  /// Dense-grid indices of the evaluated points (parallel to sweep.points).
  std::vector<std::uint32_t> evaluated;
  std::size_t dense_points = 0;
  std::size_t dense_jobs = 0;
  /// Jobs actually handed to an executor (cache hits included; journal
  /// prefills excluded).
  std::size_t jobs_dispatched = 0;
  std::vector<FrontierRow> frontier;
};

/// Run the scenario adaptively (requires scenario.refine). Throws on a
/// missing/unknown refine axis, a metric the records do not carry, or any
/// executor failure; SweepInterrupted propagates with the journal flushed.
AdaptiveResult run_adaptive(const Scenario& scenario, const AdaptiveOptions& options);

/// Crossover-surface artifacts. Pure functions of the evaluated records —
/// no dispatch counts, no wall time — so an adaptive run and a dense run
/// that agree on the evaluated frontier emit byte-identical files.
std::string frontier_json(const Scenario& scenario, const AdaptiveResult& result);
std::string frontier_csv(const AdaptiveResult& result);

}  // namespace bng::runner
