#include "runner/aggregate.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"

namespace bng::runner {

MetricAggregate aggregate(std::vector<double> samples) {
  MetricAggregate a;
  a.n = samples.size();
  if (samples.empty()) return a;
  a.mean = bng::mean(samples);
  a.stddev = bng::stddev(samples);
  auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  a.min = *lo;
  a.max = *hi;
  a.p50 = percentile(samples, 50);
  a.p90 = percentile(samples, 90);
  return a;
}

std::vector<std::pair<std::string, MetricAggregate>> aggregate_records(
    const std::vector<NamedValues>& records) {
  std::vector<std::pair<std::string, MetricAggregate>> out;
  if (records.empty()) return out;
  const NamedValues& first = records.front();
  out.reserve(first.size());
  for (std::size_t m = 0; m < first.size(); ++m) {
    std::vector<double> samples;
    samples.reserve(records.size());
    for (const NamedValues& r : records) {
      if (r.size() != first.size() || r[m].first != first[m].first)
        throw std::invalid_argument("aggregate_records: per-seed metric keys differ");
      samples.push_back(r[m].second);
    }
    out.emplace_back(first[m].first, aggregate(std::move(samples)));
  }
  return out;
}

}  // namespace bng::runner
