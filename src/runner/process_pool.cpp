// ProcessPoolExecutor + worker_main: sweep jobs fanned across forked (or
// fork/exec'd `ngsim --worker`) child processes.
//
// Protocol (runner/record_codec.hpp framing, one socketpair per worker):
//
//   parent -> worker   'H' u16 codec-version, u8 source-kind, u32+bytes
//                          scenario ref (registered name | scenario text),
//                          u32 nodes, u32 blocks, u8 share_workload,
//                          u32 kill-after (test hook; 0xffffffff = off)
//   parent -> worker   'J' u32 point, u32 ordinal        (one in flight)
//   worker -> parent   'R' encode_record() bytes
//   worker -> parent   'E' utf-8 error message (fatal; parent rethrows)
//
// The worker rebuilds the scenario from its shippable source (the registry
// for builtins, the key=value grammar for inline text), re-expands the sweep
// grid, and funnels jobs through the same run_job() as the thread executor —
// so a record computed in a child is bit-identical to one computed in
// process. Workers that die (crash, SIGKILL) are detected by socket EOF;
// their in-flight job is re-dispatched (bounded per job, so a job that
// *causes* crashes fails the sweep instead of looping) and a replacement
// worker is spawned while work remains. Records carry their own identity and
// the caller slots them deterministically, so crashes and re-dispatch never
// change the output bytes.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>

#include "runner/executor.hpp"
#include "runner/record_codec.hpp"
#include "sim/experiment.hpp"

namespace bng::runner {

namespace {

constexpr std::uint32_t kKillDisabled = 0xffffffffu;

using wire::put_u16;
using wire::put_u32;

/// write()/send() the whole buffer; false on EPIPE/any error. MSG_NOSIGNAL
/// keeps a dead peer from raising SIGPIPE in the parent.
bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, std::string_view payload) { return send_all(fd, frame(payload)); }

struct Job {
  std::uint32_t point = 0;
  std::uint32_t ordinal = 0;
  std::uint32_t attempts = 0;
};

struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< parent side of the socketpair
  std::string buf;
  std::optional<Job> inflight;
  bool alive = false;
};

std::string handshake_payload(const ScenarioSource& source, bool share_workload,
                              std::uint32_t kill_after) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kHandshake));
  put_u16(p, kRecordCodecVersion);
  p.push_back(source.kind == ScenarioSource::Kind::kBuiltin ? 0 : 1);
  put_u32(p, static_cast<std::uint32_t>(source.ref.size()));
  p += source.ref;
  put_u32(p, source.knobs.nodes);
  put_u32(p, source.knobs.blocks);
  p.push_back(share_workload ? 1 : 0);
  put_u32(p, kill_after);
  return p;
}

std::string job_payload(const Job& job) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kJob));
  put_u32(p, job.point);
  put_u32(p, job.ordinal);
  return p;
}

class ProcessPoolExecutor final : public Executor {
 public:
  explicit ProcessPoolExecutor(ProcessPoolOptions options) : opt_(std::move(options)) {}

  ~ProcessPoolExecutor() override { kill_all(); }

  std::uint32_t run(const ExecutionPlan& plan, const RecordSink& sink) override {
    if (!plan.scenario.source)
      throw std::invalid_argument(
          "process-pool execution needs a shippable scenario (a registered name or a "
          "scenario file); this scenario was built programmatically");
    const ScenarioSource& source = *plan.scenario.source;

    const std::size_t n_jobs =
        plan.points.size() * static_cast<std::size_t>(plan.seeds);
    const auto width = static_cast<std::uint32_t>(std::min<std::size_t>(
        std::max(opt_.procs, 1u), std::max<std::size_t>(n_jobs, 1)));

    for (std::uint32_t p = 0; p < plan.points.size(); ++p)
      for (std::uint32_t s = 0; s < plan.seeds; ++s) queue_.push_back(Job{p, s, 0});

    try {
      for (std::uint32_t w = 0; w < width; ++w)
        spawn(source, plan.share_workload,
              w == 0 && opt_.kill_worker0_after_jobs >= 0
                  ? static_cast<std::uint32_t>(opt_.kill_worker0_after_jobs)
                  : kKillDisabled);

      std::size_t completed = 0;
      while (completed < n_jobs) {
        // Replace and dispatch until stable: dispatch_ready can itself
        // detect deaths (EPIPE on assignment), which the next reap_dead
        // replaces — the loop converges because every pass either spawns
        // against the deficit or leaves it unchanged.
        for (;;) {
          reap_dead(plan);
          const std::size_t deficit_before = respawn_deficit_;
          dispatch_ready();
          if (respawn_deficit_ == deficit_before) break;
        }
        if (alive_count() == 0) {
          // Work remains but nothing is running and reap_dead spawned no
          // replacement: the jobs left are all requeued-after-crash with
          // spawn unable to help (should be unreachable; belt and braces).
          throw std::runtime_error("process pool: all workers exited");
        }
        poll_once(plan, sink, completed);
      }
    } catch (...) {
      kill_all();
      throw;
    }

    shutdown_gracefully();
    return width;
  }

 private:
  void spawn(const ScenarioSource& source, bool share_workload, std::uint32_t kill_after) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
      throw std::runtime_error(std::string("process pool: socketpair: ") +
                               std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error(std::string("process pool: fork: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child. Drop every parent-side fd (later workers inherit earlier
      // parents' ends; keeping them would defeat EOF-based shutdown).
      ::close(sv[0]);
      for (const Worker& w : workers_)
        if (w.fd >= 0) ::close(w.fd);
      if (opt_.worker_argv.empty()) {
        ::_exit(worker_main(sv[1], sv[1]));
      }
      // Exec mode: the worker speaks the protocol on stdin/stdout.
      ::dup2(sv[1], STDIN_FILENO);
      ::dup2(sv[1], STDOUT_FILENO);
      if (sv[1] > STDOUT_FILENO) ::close(sv[1]);
      std::vector<char*> argv;
      argv.reserve(opt_.worker_argv.size() + 1);
      for (const std::string& a : opt_.worker_argv)
        argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(sv[1]);
    Worker w;
    w.pid = pid;
    w.fd = sv[0];
    w.alive = true;
    if (!send_frame(w.fd, handshake_payload(source, share_workload, kill_after))) {
      ::close(w.fd);
      w.fd = -1;
      w.alive = false;
      int status = 0;
      ::waitpid(pid, &status, 0);
      throw std::runtime_error("process pool: worker rejected handshake");
    }
    workers_.push_back(std::move(w));
    ++spawned_;
  }

  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const Worker& w : workers_) n += w.alive ? 1 : 0;
    return n;
  }

  void dispatch_ready() {
    for (Worker& w : workers_) {
      if (queue_.empty()) return;
      if (!w.alive || w.inflight) continue;
      Job job = queue_.front();
      queue_.pop_front();
      if (!send_frame(w.fd, job_payload(job))) {
        queue_.push_front(job);
        mark_dead(w);
        continue;
      }
      w.inflight = job;
    }
  }

  void poll_once(const ExecutionPlan& plan, const RecordSink& sink,
                 std::size_t& completed) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].fd, POLLIN, 0});
      index.push_back(i);
    }
    const int rc = ::poll(fds.data(), fds.size(), 5000);
    if (rc < 0) {
      if (errno == EINTR) return;
      throw std::runtime_error(std::string("process pool: poll: ") +
                               std::strerror(errno));
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      Worker& w = workers_[index[k]];
      char chunk[16384];
      const ssize_t n = ::recv(w.fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        mark_dead(w);  // crash or clean exit with a job pending -> re-dispatch
        continue;
      }
      w.buf.append(chunk, static_cast<std::size_t>(n));
      drain_frames(w, plan, sink, completed);
    }
  }

  void drain_frames(Worker& w, const ExecutionPlan& plan, const RecordSink& sink,
                    std::size_t& completed) {
    std::string payload;
    while (take_frame(w.buf, payload)) {
      if (payload.empty()) throw std::runtime_error("process pool: empty frame");
      switch (static_cast<FrameKind>(payload[0])) {
        case FrameKind::kRecord: {
          RunRecord rec = decode_record(std::string_view(payload).substr(1));
          if (!w.inflight || rec.point != w.inflight->point ||
              rec.ordinal != w.inflight->ordinal)
            throw std::runtime_error("process pool: record for a job the worker "
                                     "was not assigned");
          if (rec.point >= plan.points.size() || rec.ordinal >= plan.seeds)
            throw std::runtime_error("process pool: record identity out of range");
          w.inflight.reset();
          ++completed;
          sink(std::move(rec));
          break;
        }
        case FrameKind::kError:
          throw std::runtime_error("sweep job failed in worker: " + payload.substr(1));
        default:
          throw std::runtime_error("process pool: unexpected frame from worker");
      }
    }
  }

  void mark_dead(Worker& w) {
    if (!w.alive) return;
    w.alive = false;
    ::close(w.fd);
    w.fd = -1;
    w.buf.clear();
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.pid = -1;
    if (w.inflight) {
      Job job = *w.inflight;
      w.inflight.reset();
      if (++job.attempts >= 3)
        throw std::runtime_error(
            "process pool: job (point " + std::to_string(job.point) + ", seed ordinal " +
            std::to_string(job.ordinal) + ") crashed its worker repeatedly");
      // Front of the queue: the re-run starts before new work, bounding how
      // long a crash can delay the merge.
      queue_.push_front(job);
    }
    ++respawn_deficit_;
  }

  /// Spawn replacements (without the kill-order test hook) while assignable
  /// work remains — one per dead worker, not one per death batch.
  void reap_dead(const ExecutionPlan& plan) {
    while (respawn_deficit_ > 0 && !queue_.empty()) {
      --respawn_deficit_;
      if (spawned_ > workers_capacity_limit())
        throw std::runtime_error("process pool: too many worker crashes");
      spawn(*plan.scenario.source, plan.share_workload, kKillDisabled);
    }
    if (queue_.empty()) respawn_deficit_ = 0;  // tail jobs are all in flight
  }

  std::size_t workers_capacity_limit() const {
    // 3 attempts per job bounds total crashes; this is a belt-and-braces cap.
    return 3 * (queue_.size() + workers_.size()) + 16;
  }

  void shutdown_gracefully() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      ::close(w.fd);  // EOF: the worker's read loop returns and it exits
      w.fd = -1;
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
      w.alive = false;
    }
  }

  void kill_all() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
      w.alive = false;
    }
  }

  ProcessPoolOptions opt_;
  std::vector<Worker> workers_;
  std::deque<Job> queue_;
  std::size_t spawned_ = 0;
  std::size_t respawn_deficit_ = 0;  ///< dead workers not yet replaced
};

// --- Worker side -------------------------------------------------------------

bool read_more(int fd, std::string& buf) {
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF: parent is done with us
    buf.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
}

void send_error(int fd, const std::string& message) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kError));
  p += message;
  send_frame(fd, p);
}

struct WorkerState {
  std::optional<Scenario> scenario;
  std::vector<SweepPoint> points;
  bool share_workload = true;
  std::uint32_t kill_after = kKillDisabled;
  std::uint32_t jobs_done = 0;
  // One pool is cached at a time: the dispatcher hands a worker consecutive
  // seeds of the same point when it can, and the pool is a seed-independent
  // pure function of the point, so rebuilt pools stay bit-identical anyway.
  std::uint32_t pool_point = 0;
  std::shared_ptr<const sim::PrebuiltWorkload> pool;
};

void worker_handshake(WorkerState& st, wire::Reader& in) {
  const std::uint16_t version = in.u16();
  if (version != kRecordCodecVersion)
    throw CodecError("worker speaks codec version " +
                     std::to_string(kRecordCodecVersion) + ", parent sent " +
                     std::to_string(version));
  const std::uint8_t kind = in.u8();
  const std::uint32_t ref_len = in.u32();
  const std::string ref = in.str(ref_len);
  RunKnobs knobs;
  knobs.nodes = in.u32();
  knobs.blocks = in.u32();
  st.share_workload = in.u8() != 0;
  st.kill_after = in.u32();
  if (kind == 0) {
    st.scenario = make_scenario(ref, knobs);
    if (!st.scenario)
      throw std::runtime_error("worker: unknown scenario '" + ref + "'");
  } else {
    st.scenario = load_scenario_string(ref, "<inline>", knobs);
  }
  st.points = expand(*st.scenario);
}

bool worker_job(WorkerState& st, wire::Reader& in, int out_fd) {
  if (!st.scenario) throw std::runtime_error("worker: job before handshake");
  const std::uint32_t point = in.u32();
  const std::uint32_t ordinal = in.u32();
  if (point >= st.points.size())
    throw std::runtime_error("worker: job point out of range");
  if (st.kill_after != kKillDisabled && st.jobs_done >= st.kill_after)
    ::raise(SIGKILL);  // test hook: die mid-sweep, record unsent
  if (st.share_workload && (!st.pool || st.pool_point != point)) {
    // Seed-independent pure function of the point config (see the thread
    // executor): rebuilt pools are bit-identical across workers.
    st.pool = sim::build_shared_workload(st.points[point].config);
    st.pool_point = point;
  }
  RunRecord rec = run_job(*st.scenario, st.points[point], point, ordinal,
                          st.share_workload ? st.pool : nullptr);
  ++st.jobs_done;
  std::string payload;
  payload.push_back(static_cast<char>(FrameKind::kRecord));
  payload += encode_record(rec);
  return send_frame(out_fd, payload);
}

}  // namespace

int worker_main(int in_fd, int out_fd) {
  WorkerState st;
  std::string buf;
  std::string payload;
  try {
    for (;;) {
      while (take_frame(buf, payload)) {
        if (payload.empty()) throw CodecError("worker: empty frame");
        wire::Reader in{payload, 1};
        switch (static_cast<FrameKind>(payload[0])) {
          case FrameKind::kHandshake:
            worker_handshake(st, in);
            break;
          case FrameKind::kJob:
            if (!worker_job(st, in, out_fd)) return 1;  // parent went away
            break;
          default:
            throw CodecError("worker: unexpected frame kind");
        }
      }
      if (!read_more(in_fd, buf)) return 0;
    }
  } catch (const std::exception& e) {
    send_error(out_fd, e.what());
    return 1;
  } catch (...) {
    send_error(out_fd, "unknown worker error");
    return 1;
  }
}

std::unique_ptr<Executor> make_process_pool_executor(ProcessPoolOptions options) {
  return std::make_unique<ProcessPoolExecutor>(std::move(options));
}

}  // namespace bng::runner
