// ProcessPoolExecutor + worker_main: sweep jobs fanned across forked (or
// fork/exec'd `ngsim --worker`) child processes.
//
// The wire protocol (H/J/R/E frames over one socketpair per worker) is the
// shared runner/worker_protocol.hpp — the same frames the TCP fleet
// (tcp_fleet.cpp) speaks over sockets. Workers that die (crash, SIGKILL) are
// detected by socket EOF; their in-flight job is re-dispatched (bounded per
// job, so a job that *causes* crashes fails the sweep with its identity
// instead of looping) and a replacement worker is spawned while work
// remains. Records carry their own identity and the caller slots them
// deterministically, so crashes and re-dispatch never change the output
// bytes.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>

#include "runner/executor.hpp"
#include "runner/io_util.hpp"
#include "runner/record_codec.hpp"
#include "runner/worker_protocol.hpp"

namespace bng::runner {

namespace {

bool send_frame(int fd, std::string_view payload) {
  return io::send_all(fd, frame(payload));
}

struct Job {
  std::uint32_t point = 0;
  std::uint32_t ordinal = 0;
  std::uint32_t attempts = 0;
};

struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< parent side of the socketpair
  std::string buf;
  std::optional<Job> inflight;
  bool alive = false;
};

class ProcessPoolExecutor final : public Executor {
 public:
  explicit ProcessPoolExecutor(ProcessPoolOptions options) : opt_(std::move(options)) {}

  ~ProcessPoolExecutor() override { kill_all(); }

  std::uint32_t run(const ExecutionPlan& plan, const RecordSink& sink) override {
    if (!plan.scenario.source)
      throw std::invalid_argument(
          "process-pool execution needs a shippable scenario (a registered name or a "
          "scenario file); this scenario was built programmatically");
    if (plan.trace_mask != 0)
      throw std::invalid_argument(
          "process pool: decision tracing requires the in-process executor");
    const ScenarioSource& source = *plan.scenario.source;
    seed_base_ = plan.scenario.seed_base;

    for (std::uint32_t p = 0; p < plan.points.size(); ++p)
      for (std::uint32_t s = 0; s < plan.seeds; ++s) {
        const std::size_t job = static_cast<std::size_t>(p) * plan.seeds + s;
        if (!plan_job_done(plan, job)) queue_.push_back(Job{p, s, 0});
      }
    const std::size_t n_jobs = queue_.size();
    const auto width = static_cast<std::uint32_t>(std::min<std::size_t>(
        std::max(opt_.procs, 1u), std::max<std::size_t>(n_jobs, 1)));

    try {
      for (std::uint32_t w = 0; w < width; ++w) {
        WorkerHooks hooks;
        if (w == 0 && opt_.kill_worker0_after_jobs >= 0)
          hooks.kill_after = static_cast<std::uint32_t>(opt_.kill_worker0_after_jobs);
        spawn(source, plan.share_workload, hooks);
      }

      std::size_t completed = 0;
      while (completed < n_jobs) {
        throw_if_interrupted();
        // Replace and dispatch until stable: dispatch_ready can itself
        // detect deaths (EPIPE on assignment), which the next reap_dead
        // replaces — the loop converges because every pass either spawns
        // against the deficit or leaves it unchanged.
        for (;;) {
          reap_dead(plan);
          const std::size_t deficit_before = respawn_deficit_;
          dispatch_ready();
          if (respawn_deficit_ == deficit_before) break;
        }
        if (alive_count() == 0) {
          // Work remains but nothing is running and reap_dead spawned no
          // replacement: the jobs left are all requeued-after-crash with
          // spawn unable to help (should be unreachable; belt and braces).
          throw std::runtime_error("process pool: all workers exited");
        }
        poll_once(plan, sink, completed);
      }
    } catch (...) {
      kill_all();
      throw;
    }

    shutdown_gracefully();
    return width;
  }

 private:
  void spawn(const ScenarioSource& source, bool share_workload, WorkerHooks hooks) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
      throw std::runtime_error(std::string("process pool: socketpair: ") +
                               std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error(std::string("process pool: fork: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child. Drop every parent-side fd (later workers inherit earlier
      // parents' ends; keeping them would defeat EOF-based shutdown).
      ::close(sv[0]);
      for (const Worker& w : workers_)
        if (w.fd >= 0) ::close(w.fd);
      if (opt_.worker_argv.empty()) {
        ::_exit(worker_main(sv[1], sv[1]));
      }
      // Exec mode: the worker speaks the protocol on stdin/stdout.
      ::dup2(sv[1], STDIN_FILENO);
      ::dup2(sv[1], STDOUT_FILENO);
      if (sv[1] > STDOUT_FILENO) ::close(sv[1]);
      std::vector<char*> argv;
      argv.reserve(opt_.worker_argv.size() + 1);
      for (const std::string& a : opt_.worker_argv)
        argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(sv[1]);
    Worker w;
    w.pid = pid;
    w.fd = sv[0];
    w.alive = true;
    // Socketpair workers never heartbeat: the kernel turns a child's death
    // into EOF on the pair, which is all the liveness signal this transport
    // needs (unlike TCP, where a peer can vanish silently).
    if (!send_frame(w.fd, handshake_payload(source, share_workload, hooks,
                                            /*heartbeat_ms=*/0))) {
      ::close(w.fd);
      w.fd = -1;
      w.alive = false;
      int status = 0;
      ::waitpid(pid, &status, 0);
      throw std::runtime_error("process pool: worker rejected handshake");
    }
    workers_.push_back(std::move(w));
    ++spawned_;
  }

  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const Worker& w : workers_) n += w.alive ? 1 : 0;
    return n;
  }

  void dispatch_ready() {
    for (Worker& w : workers_) {
      if (queue_.empty()) return;
      if (!w.alive || w.inflight) continue;
      Job job = queue_.front();
      queue_.pop_front();
      if (!send_frame(w.fd, job_payload(job.point, job.ordinal))) {
        queue_.push_front(job);
        mark_dead(w);
        continue;
      }
      w.inflight = job;
    }
  }

  void poll_once(const ExecutionPlan& plan, const RecordSink& sink,
                 std::size_t& completed) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      fds.push_back(pollfd{workers_[i].fd, POLLIN, 0});
      index.push_back(i);
    }
    const int rc = ::poll(fds.data(), fds.size(), 5000);
    if (rc < 0) {
      if (errno == EINTR) return;
      throw std::runtime_error(std::string("process pool: poll: ") +
                               std::strerror(errno));
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      Worker& w = workers_[index[k]];
      switch (io::recv_some(w.fd, w.buf)) {
        case io::ReadResult::kData:
          drain_frames(w, plan, sink, completed);
          break;
        case io::ReadResult::kEof:
        case io::ReadResult::kError:
          mark_dead(w);  // crash or clean exit with a job pending -> re-dispatch
          break;
      }
    }
  }

  void drain_frames(Worker& w, const ExecutionPlan& plan, const RecordSink& sink,
                    std::size_t& completed) {
    std::string payload;
    while (take_frame(w.buf, payload)) {
      if (payload.empty()) throw std::runtime_error("process pool: empty frame");
      switch (static_cast<FrameKind>(payload[0])) {
        case FrameKind::kRecord: {
          RunRecord rec = decode_record(std::string_view(payload).substr(1));
          if (!w.inflight || rec.point != w.inflight->point ||
              rec.ordinal != w.inflight->ordinal)
            throw std::runtime_error("process pool: record for a job the worker "
                                     "was not assigned");
          if (rec.point >= plan.points.size() || rec.ordinal >= plan.seeds)
            throw std::runtime_error("process pool: record identity out of range");
          w.inflight.reset();
          ++completed;
          sink(std::move(rec));
          break;
        }
        case FrameKind::kError:
          throw std::runtime_error("sweep job failed in worker: " + payload.substr(1));
        default:
          throw std::runtime_error("process pool: unexpected frame from worker");
      }
    }
  }

  void mark_dead(Worker& w) {
    if (!w.alive) return;
    w.alive = false;
    ::close(w.fd);
    w.fd = -1;
    w.buf.clear();
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.pid = -1;
    if (w.inflight) {
      Job job = *w.inflight;
      w.inflight.reset();
      if (++job.attempts >= kMaxJobAttempts)
        throw std::runtime_error(
            "process pool: job (point " + std::to_string(job.point) +
            ", seed ordinal " + std::to_string(job.ordinal) + ", seed " +
            std::to_string(job_seed(seed_base_, job.point, job.ordinal)) +
            ") crashed its worker " + std::to_string(job.attempts) +
            " times; giving up on the sweep");
      // Front of the queue: the re-run starts before new work, bounding how
      // long a crash can delay the merge.
      queue_.push_front(job);
    }
    ++respawn_deficit_;
  }

  /// Spawn replacements (without the fault-hook test orders) while
  /// assignable work remains — one per dead worker, not one per death batch.
  void reap_dead(const ExecutionPlan& plan) {
    while (respawn_deficit_ > 0 && !queue_.empty()) {
      --respawn_deficit_;
      if (spawned_ > workers_capacity_limit())
        throw std::runtime_error("process pool: too many worker crashes");
      spawn(*plan.scenario.source, plan.share_workload, WorkerHooks{});
    }
    if (queue_.empty()) respawn_deficit_ = 0;  // tail jobs are all in flight
  }

  std::size_t workers_capacity_limit() const {
    // kMaxJobAttempts per job bounds total crashes; belt-and-braces cap.
    return kMaxJobAttempts * (queue_.size() + workers_.size()) + 16;
  }

  void shutdown_gracefully() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      ::close(w.fd);  // EOF: the worker's read loop returns and it exits
      w.fd = -1;
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
      w.alive = false;
    }
  }

  void kill_all() {
    for (Worker& w : workers_) {
      if (!w.alive) continue;
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
      w.alive = false;
    }
  }

  static constexpr std::uint32_t kMaxJobAttempts = 3;

  ProcessPoolOptions opt_;
  std::vector<Worker> workers_;
  std::deque<Job> queue_;
  std::uint64_t seed_base_ = 0;
  std::size_t spawned_ = 0;
  std::size_t respawn_deficit_ = 0;  ///< dead workers not yet replaced
};

// --- Worker side -------------------------------------------------------------

void send_error(int fd, const std::string& message) {
  send_frame(fd, error_payload(message));
}

}  // namespace

int worker_main(int in_fd, int out_fd) {
  WorkerState st;
  std::string buf;
  std::string payload;
  const SendPayload send = [out_fd](std::string_view p) {
    return send_frame(out_fd, p);
  };
  try {
    for (;;) {
      while (take_frame(buf, payload)) {
        if (payload.empty()) throw CodecError("worker: empty frame");
        wire::Reader in{payload, 1};
        switch (static_cast<FrameKind>(payload[0])) {
          case FrameKind::kHandshake:
            worker_handshake(st, in);
            break;
          case FrameKind::kJob:
            if (!worker_job(st, in, send)) return 1;  // parent went away
            break;
          default:
            throw CodecError("worker: unexpected frame kind");
        }
      }
      if (io::read_some(in_fd, buf) != io::ReadResult::kData)
        return 0;  // EOF: parent is done with us
    }
  } catch (const std::exception& e) {
    send_error(out_fd, e.what());
    return 1;
  } catch (...) {
    send_error(out_fd, "unknown worker error");
    return 1;
  }
}

std::unique_ptr<Executor> make_process_pool_executor(ProcessPoolOptions options) {
  return std::make_unique<ProcessPoolExecutor>(std::move(options));
}

}  // namespace bng::runner
