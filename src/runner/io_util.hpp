// EINTR-safe low-level I/O, shared by everything in the runner that touches
// a file descriptor: the process pool's socketpairs (process_pool.cpp), the
// TCP fleet's sockets (tcp_fleet.cpp), and the crash-safe journal
// (journal.cpp). Every loop here retries EINTR and resumes short writes, so
// callers never see a partial transfer — the ad-hoc per-site loops these
// helpers replaced each handled a different subset of those cases.
#pragma once

#include <string>
#include <string_view>

namespace bng::runner::io {

enum class ReadResult {
  kData,   ///< bytes were appended to the buffer
  kEof,    ///< orderly end of stream (peer closed)
  kError,  ///< hard error (ECONNRESET, EBADF, ...); errno is preserved
};

/// write() the whole buffer to a pipe or file, retrying EINTR and short
/// writes. Returns false on any hard error.
bool write_all(int fd, std::string_view bytes);

/// send() the whole buffer to a socket with MSG_NOSIGNAL (a dead peer must
/// surface as EPIPE, not kill the process with SIGPIPE), retrying EINTR and
/// short sends. Returns false on any hard error.
bool send_all(int fd, std::string_view bytes);

/// One read() of up to `chunk` bytes appended to `buf` (blocking fd;
/// callers gate with poll() if they must not block). Retries EINTR.
ReadResult read_some(int fd, std::string& buf, std::size_t chunk = 16384);

/// recv() flavor of read_some for sockets.
ReadResult recv_some(int fd, std::string& buf, std::size_t chunk = 16384);

}  // namespace bng::runner::io
