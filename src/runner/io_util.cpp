#include "runner/io_util.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace bng::runner::io {

namespace {

template <typename Op>
bool loop_all(std::string_view bytes, Op&& op) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = op(bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

template <typename Op>
ReadResult read_loop(std::string& buf, std::size_t chunk, Op&& op) {
  std::string tmp;
  tmp.resize(chunk);
  for (;;) {
    const ssize_t n = op(tmp.data(), tmp.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    if (n == 0) return ReadResult::kEof;
    buf.append(tmp.data(), static_cast<std::size_t>(n));
    return ReadResult::kData;
  }
}

}  // namespace

bool write_all(int fd, std::string_view bytes) {
  return loop_all(bytes, [fd](const char* p, std::size_t n) { return ::write(fd, p, n); });
}

bool send_all(int fd, std::string_view bytes) {
  return loop_all(bytes, [fd](const char* p, std::size_t n) {
    return ::send(fd, p, n, MSG_NOSIGNAL);
  });
}

ReadResult read_some(int fd, std::string& buf, std::size_t chunk) {
  return read_loop(buf, chunk, [fd](char* p, std::size_t n) { return ::read(fd, p, n); });
}

ReadResult recv_some(int fd, std::string& buf, std::size_t chunk) {
  return read_loop(buf, chunk, [fd](char* p, std::size_t n) { return ::recv(fd, p, n, 0); });
}

}  // namespace bng::runner::io
