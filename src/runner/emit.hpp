// Emitters: machine-readable JSON / CSV (the BENCH_core.json convention:
// one self-describing top-level object, checked into CI artifacts) and the
// human-readable metric table the figure binaries print.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "runner/sweep.hpp"

namespace bng::runner {

/// Full result as a JSON document: scenario header, per-point per-seed
/// records (with determinism digests and, for adversary configs, the
/// attacker report) and per-metric aggregates. A pure function of the
/// records — no wall time, no lane count — so the artifact is bit-identical
/// across --jobs/--procs values (the run diagnostics live in the table).
std::string to_json(const SweepResult& result);

/// Long-form aggregate CSV:
///   point,x,metric,n,mean,stddev,min,max,p50,p90
std::string aggregate_csv(const SweepResult& result);

/// Wide per-seed CSV (one row per run, one column per metric):
///   point,x,seed,digest,<metric...>
std::string seeds_csv(const SweepResult& result);

/// The familiar figure table (mean over seeds of the headline metrics).
void print_table(const SweepResult& result, std::FILE* out = stdout);

/// Joined point label, e.g. "bitcoin/0.100 1/s".
std::string point_label(const PointResult& point);

/// Mean of the named metric's aggregate; 0 if the point doesn't have it.
double aggregate_mean(const PointResult& point, std::string_view name);

}  // namespace bng::runner
