#include "runner/record_codec.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace bng::runner {

// --- Binary primitives (explicit little-endian, host-independent) -----------

namespace wire {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void Reader::need(std::size_t n) const {
  if (pos + n > data.size()) throw CodecError("wire data truncated");
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data[pos++]);
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  pos += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  pos += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  pos += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str(std::size_t n) {
  need(n);
  std::string s(data.substr(pos, n));
  pos += n;
  return s;
}

}  // namespace wire

namespace {

using wire::put_f64;
using wire::put_u16;
using wire::put_u32;
using wire::put_u64;

constexpr char kMagic[4] = {'B', 'N', 'G', 'R'};

// --- JSON helpers ------------------------------------------------------------

/// %.17g: enough digits that finite doubles survive the text round trip
/// exactly. Non-finite become null (JSON has neither inf nor nan).
void json_number_to(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Minimal recursive-descent parser for the strict subset encode_record_json
/// emits: one object of string keys mapping to numbers, strings, null, or a
/// flat object of numbers.
struct JsonReader {
  std::string_view s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw CodecError(std::string("record JSON: ") + what + " at offset " +
                     std::to_string(pos));
  }
  void ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                              s[pos] == '\r'))
      ++pos;
  }
  char peek() {
    ws();
    if (pos >= s.size()) fail("unexpected end");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }
  bool consume(char c) {
    ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= s.size()) fail("unterminated string");
      char c = s[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= s.size()) fail("bad escape");
        char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos + 4 > s.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }
  /// Number or null (null -> NaN, the inverse of json_number_to).
  double number() {
    ws();
    if (s.compare(pos, 4, "null") == 0) {
      pos += 4;
      return std::nan("");
    }
    const std::size_t start = pos;
    while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                              s[pos] == 'e' || s[pos] == 'E'))
      ++pos;
    if (pos == start) fail("expected number");
    std::string text(s.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) fail("bad number");
    return v;
  }
  /// Exact u64 parse — doubles cannot represent every 64-bit seed/digest.
  std::uint64_t u64_field() {
    ws();
    const std::size_t start = pos;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    if (pos == start) fail("expected unsigned integer");
    std::string text(s.substr(start, pos - start));
    errno = 0;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
      fail("unsigned integer out of range");
    return v;
  }
};

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string encode_record(const RunRecord& r) {
  std::string out;
  out.reserve(64 + r.values.size() * 32);
  out.append(kMagic, sizeof kMagic);
  put_u16(out, kRecordCodecVersion);
  put_u32(out, r.point);
  put_u32(out, r.ordinal);
  put_u64(out, r.seed);
  put_u64(out, r.digest);
  out.push_back(r.attacker ? 1 : 0);
  if (r.attacker) {
    metrics::visit_attacker_fields(*r.attacker, [&out](const char*, auto v) {
      using T = std::decay_t<decltype(v)>;
      if constexpr (std::is_same_v<T, double>) put_f64(out, v);
      else if constexpr (std::is_same_v<T, std::uint32_t>) put_u32(out, v);
      else put_u64(out, v);
    });
  }
  put_u32(out, static_cast<std::uint32_t>(r.values.size()));
  for (const auto& [name, value] : r.values) {
    if (name.size() > UINT16_MAX) throw CodecError("metric name too long");
    put_u16(out, static_cast<std::uint16_t>(name.size()));
    out += name;
    put_f64(out, value);
  }
  return out;
}

RunRecord decode_record(std::string_view bytes) {
  wire::Reader in{bytes};
  in.need(sizeof kMagic);
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw CodecError("not a RunRecord (bad magic)");
  in.pos = sizeof kMagic;
  const std::uint16_t version = in.u16();
  if (version != kRecordCodecVersion)
    throw CodecError("RunRecord codec version " + std::to_string(version) +
                     " unsupported (this build speaks " +
                     std::to_string(kRecordCodecVersion) + ")");
  RunRecord r;
  r.point = in.u32();
  r.ordinal = in.u32();
  r.seed = in.u64();
  r.digest = in.u64();
  if (in.u8() != 0) {
    metrics::AttackerReport a;
    metrics::visit_attacker_fields(a, [&in](const char*, auto& v) {
      using T = std::decay_t<decltype(v)>;
      if constexpr (std::is_same_v<T, double>) v = in.f64();
      else if constexpr (std::is_same_v<T, std::uint32_t>) v = in.u32();
      else v = in.u64();
    });
    r.attacker = a;
  }
  const std::uint32_t n = in.u32();
  // Every value needs >= 10 bytes; reject counts the remaining bytes cannot
  // possibly satisfy before reserving anything.
  if (n > (bytes.size() - in.pos) / 10) throw CodecError("record truncated");
  r.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t len = in.u16();
    std::string name = in.str(len);
    const double value = in.f64();
    r.values.emplace_back(std::move(name), value);
  }
  if (in.pos != bytes.size()) throw CodecError("trailing bytes after record");
  return r;
}

std::string encode_record_json(const RunRecord& r) {
  std::string j = "{\"v\": ";
  j += std::to_string(kRecordCodecVersion);
  j += ", \"point\": " + std::to_string(r.point);
  j += ", \"ordinal\": " + std::to_string(r.ordinal);
  j += ", \"seed\": " + std::to_string(r.seed);
  char digest[24];
  std::snprintf(digest, sizeof digest, "%016" PRIx64, r.digest);
  j += ", \"digest\": \"";
  j += digest;
  j += '"';
  if (r.attacker) {
    j += ", \"attacker\": {";
    bool first = true;
    metrics::visit_attacker_fields(*r.attacker, [&](const char* name, auto v) {
      if (!first) j += ", ";
      first = false;
      j += '"';
      j += name;
      j += "\": ";
      using T = std::decay_t<decltype(v)>;
      if constexpr (std::is_same_v<T, double>) json_number_to(j, v);
      else j += std::to_string(v);
    });
    j += '}';
  }
  j += ", \"metrics\": {";
  for (std::size_t i = 0; i < r.values.size(); ++i) {
    if (i > 0) j += ", ";
    j += '"';
    j += json_escape(r.values[i].first);
    j += "\": ";
    json_number_to(j, r.values[i].second);
  }
  j += "}}";
  return j;
}

RunRecord decode_record_json(std::string_view json) {
  JsonReader in{json};
  RunRecord r;
  bool saw_version = false;
  in.expect('{');
  if (!in.consume('}')) {
    do {
      const std::string key = in.string();
      in.expect(':');
      if (key == "v") {
        const std::uint64_t v = in.u64_field();
        if (v != kRecordCodecVersion)
          throw CodecError("RunRecord JSON version " + std::to_string(v) +
                           " unsupported");
        saw_version = true;
      } else if (key == "point") {
        r.point = static_cast<std::uint32_t>(in.u64_field());
      } else if (key == "ordinal") {
        r.ordinal = static_cast<std::uint32_t>(in.u64_field());
      } else if (key == "seed") {
        r.seed = in.u64_field();
      } else if (key == "digest") {
        // Exactly the 16 hex chars the %016 encoder writes: a longer string
        // would overflow strtoull into ULLONG_MAX silently.
        const std::string hex = in.string();
        if (hex.size() != 16) in.fail("digest must be 16 hex chars");
        for (char c : hex)
          if (!std::isxdigit(static_cast<unsigned char>(c))) in.fail("bad digest hex");
        r.digest = std::strtoull(hex.c_str(), nullptr, 16);
      } else if (key == "attacker") {
        metrics::AttackerReport a;
        in.expect('{');
        if (!in.consume('}')) {
          do {
            const std::string field = in.string();
            in.expect(':');
            bool matched = false;
            metrics::visit_attacker_fields(a, [&](const char* name, auto& v) {
              if (matched || field != name) return;
              matched = true;
              using T = std::decay_t<decltype(v)>;
              if constexpr (std::is_same_v<T, double>) v = in.number();
              else v = static_cast<T>(in.u64_field());
            });
            if (!matched) in.fail("unknown attacker field");
          } while (in.consume(','));
          in.expect('}');
        }
        r.attacker = a;
      } else if (key == "metrics") {
        in.expect('{');
        if (!in.consume('}')) {
          do {
            std::string name = in.string();
            in.expect(':');
            r.values.emplace_back(std::move(name), in.number());
          } while (in.consume(','));
          in.expect('}');
        }
      } else {
        in.fail("unknown record field");
      }
    } while (in.consume(','));
    in.expect('}');
  }
  in.ws();
  if (in.pos != json.size()) in.fail("trailing characters");
  if (!saw_version) throw CodecError("record JSON missing version field");
  return r;
}

std::string frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) throw CodecError("frame payload too large");
  std::string out;
  out.reserve(4 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return out;
}

bool take_frame(std::string& buffer, std::string& payload) {
  if (buffer.size() < 4) return false;
  wire::Reader in{buffer};
  const std::uint32_t len = in.u32();
  if (len > kMaxFrameBytes) throw CodecError("frame length prefix corrupt");
  if (buffer.size() < 4 + static_cast<std::size_t>(len)) return false;
  payload.assign(buffer, 4, len);
  buffer.erase(0, 4 + static_cast<std::size_t>(len));
  return true;
}

}  // namespace bng::runner
