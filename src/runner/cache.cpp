#include "runner/cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "runner/digest.hpp"
#include "runner/record_codec.hpp"

namespace bng::runner {

namespace {

constexpr char kCacheMagic[4] = {'B', 'N', 'G', 'C'};

std::atomic<RunCache*> g_cache{nullptr};

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::uint64_t scenario_source_hash(const Scenario& s) {
  Digest d;
  if (!s.source) return 0;  // callers gate on source presence; 0 is never stored
  d.u64(static_cast<std::uint64_t>(s.source->kind));
  d.u64(s.source->ref.size());
  d.bytes(s.source->ref.data(), s.source->ref.size());
  d.u64(s.source->knobs.nodes);
  d.u64(s.source->knobs.blocks);
  d.u64(s.seed_base);
  return d.h;
}

RunCache::RunCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("--cache: cannot create directory " + dir_ + ": " + ec.message());
}

std::string RunCache::entry_path(const CacheKey& key) const {
  const std::string digest_hex = hex16(key.config_digest);
  return dir_ + "/" + digest_hex.substr(0, 2) + "/" + digest_hex + "-" + hex16(key.seed) + ".bngc";
}

std::optional<RunRecord> RunCache::lookup(const CacheKey& key) {
  const std::string path = entry_path(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::lock_guard lock(mu_);
      ++counters_.misses;
      return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = std::move(buf).str();
  }

  const auto stale = [&]() -> std::optional<RunRecord> {
    std::lock_guard lock(mu_);
    ++counters_.stale;
    return std::nullopt;
  };

  try {
    wire::Reader in{bytes};
    const std::string magic = in.str(4);
    if (magic != std::string_view(kCacheMagic, 4)) return stale();
    if (in.u16() != kCacheVersion) return stale();
    if (in.u64() != key.scenario_hash) return stale();
    if (in.u64() != key.config_digest) return stale();
    if (in.u64() != key.seed) return stale();
    const std::uint32_t len = in.u32();
    RunRecord rec = decode_record(in.str(len));
    if (in.pos != bytes.size()) return stale();
    if (rec.seed != key.seed) return stale();
    std::lock_guard lock(mu_);
    ++counters_.hits;
    return rec;
  } catch (const CodecError&) {
    return stale();  // truncated/corrupt entry: treat as absent, overwrite later
  }
}

void RunCache::store(const CacheKey& key, const RunRecord& record) {
  std::string payload;
  payload.append(kCacheMagic, 4);
  wire::put_u16(payload, kCacheVersion);
  wire::put_u64(payload, key.scenario_hash);
  wire::put_u64(payload, key.config_digest);
  wire::put_u64(payload, key.seed);
  const std::string bytes = encode_record(record);
  wire::put_u32(payload, static_cast<std::uint32_t>(bytes.size()));
  payload += bytes;

  const std::string path = entry_path(key);
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  if (ec) return;
  // Write-to-temp + rename: concurrent readers (other worker processes
  // sharing the directory) either see the old entry or the complete new one.
  // The temp name includes this process's pid so concurrent writers of the
  // same key do not clobber each other's partial files.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard lock(mu_);
  ++counters_.stores;
}

RunCache::Counters RunCache::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

void set_run_cache(RunCache* cache) { g_cache.store(cache, std::memory_order_release); }

RunCache* active_run_cache() { return g_cache.load(std::memory_order_acquire); }

}  // namespace bng::runner
