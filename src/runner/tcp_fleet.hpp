// TCP fleet: the worker protocol of runner/worker_protocol.hpp over real
// sockets — `ngsim --serve <port>` workers plus a dispatcher-side
// TcpFleetExecutor behind `ngsim --hosts a:p,b:p`.
//
// Where the process pool equates "crashed" with "socketpair EOF", a TCP
// fleet needs real liveness:
//
//   * workers heartbeat ('B' frames from a dedicated thread) at an interval
//     the dispatcher chooses in the handshake; a worker silent past
//     `heartbeat_timeout_ms` is dead (SIGKILL, SIGSTOP, machine gone) — its
//     job is re-dispatched and the host is retried with exponential backoff;
//   * a worker that keeps heartbeating but sits on one job past
//     `job_deadline_ms` is *hung, not dead* — the dispatcher abandons the
//     connection and re-dispatches elsewhere;
//   * a job in flight longer than `straggler_after_ms` while another worker
//     idles is speculatively duplicated; records are deduped by slot, so the
//     copy that loses the race is dropped without a trace in the output;
//   * re-dispatch is bounded (`max_job_attempts`): a job that repeatedly
//     kills its workers fails the sweep naming its point/ordinal/seed
//     instead of hanging the merge loop.
//
// Degradation is graceful: any subset of workers surviving (at least one)
// completes the sweep, and the slot-keyed merge keeps the output
// byte-identical to `--jobs 1` through every failure above.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runner/executor.hpp"

namespace bng::obs {
class SweepTelemetry;
}

namespace bng::runner {

struct FleetTuning {
  std::uint32_t connect_timeout_ms = 5000;
  /// Interval workers are told to heartbeat at (handshake field).
  std::uint32_t heartbeat_ms = 1000;
  /// A worker silent (no frames, no heartbeats) this long is dead.
  std::uint32_t heartbeat_timeout_ms = 10000;
  /// A single job in flight this long marks its worker hung; 0 = no deadline.
  std::uint32_t job_deadline_ms = 0;
  /// Speculatively duplicate a job in flight this long onto an idle worker
  /// once the queue is empty; 0 = no speculation.
  std::uint32_t straggler_after_ms = 0;
  /// Reconnect backoff to a dead host: base << attempt, capped.
  std::uint32_t reconnect_base_ms = 200;
  std::uint32_t reconnect_cap_ms = 5000;
  /// Reconnect attempts per host before the host is abandoned for good.
  std::uint32_t max_reconnects = 5;
  /// Dispatch attempts per job before the sweep fails.
  std::uint32_t max_job_attempts = 3;
};

struct TcpFleetOptions {
  std::vector<std::string> hosts;  ///< "host:port" worker endpoints
  FleetTuning tuning;
  /// Non-owning; when set, the executor pushes per-worker snapshots
  /// (liveness, reconnects, speculation wins, piggybacked worker stats) into
  /// it as the sweep runs — the source of `--progress` / `--stats-json`.
  obs::SweepTelemetry* telemetry = nullptr;
  /// Test hook: ship a kill-after order in every handshake to hosts[0] (the
  /// worker SIGKILLs itself when handed its (n+1)-th job). Negative: off.
  int test_kill_host0_after_jobs = -1;
  /// Test hook: ship a hang-after order to hosts[0] (the worker computes
  /// forever while heartbeating — only a job deadline catches it).
  int test_hang_host0_after_jobs = -1;
  /// Test hook: the dispatcher severs hosts[0]'s connection after receiving
  /// this many records from it, exercising reconnect + re-dispatch.
  int test_sever_host0_after_records = -1;
  /// Test hook: throw SweepInterrupted after this many records total — a
  /// deterministic stand-in for SIGTERM mid-sweep. Negative: off.
  int test_interrupt_after_records = -1;
};

std::unique_ptr<Executor> make_tcp_fleet_executor(TcpFleetOptions options);

/// Create a listening TCP socket on 0.0.0.0:`port` (0 = kernel-assigned).
/// Returns the fd and stores the bound port; throws std::runtime_error.
int make_listen_socket(std::uint16_t port, std::uint16_t& bound_port);

/// Worker accept loop: serve one dispatcher connection at a time, each a
/// fresh protocol session, until the process is killed. Surviving a
/// dispatcher crash is the point — the next dispatcher (e.g. `--resume`)
/// reconnects and gets a clean session.
int serve_loop(int listen_fd);

/// `ngsim --serve <port>`: bind, announce the port on stdout, serve_loop.
int serve_main(std::uint16_t port);

}  // namespace bng::runner
