// Parallel sweep engine: fans (sweep point × seed) jobs across a thread
// pool and folds the per-seed metrics into aggregates.
//
// Determinism: each job's RNG seed is a pure function of its identity
// (scenario seed_base, point index, seed ordinal), every job writes only its
// own preallocated result slot, and the shared tx pool is generated once per
// sweep point from seed-independent parameters — so results are
// bit-identical regardless of the number of worker threads or the order the
// pool schedules jobs in. Each per-seed record carries an FNV-1a determinism
// digest as the witness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/aggregate.hpp"
#include "runner/scenario.hpp"

namespace bng::runner {

struct SweepOptions {
  std::uint32_t seeds = 1;
  /// Worker threads; 0 = hardware concurrency. Results are identical for
  /// any value.
  std::uint32_t jobs = 1;
  /// One immutable pre-generated tx pool per sweep point, shared by all of
  /// its seeds (instead of a per-seed copy).
  bool share_workload = true;
};

struct SeedResult {
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over the run's observable outputs
  NamedValues values;
};

struct PointResult {
  std::vector<std::string> labels;
  double x = 0;
  std::vector<SeedResult> seeds;  ///< ordered by seed ordinal
  std::vector<std::pair<std::string, MetricAggregate>> aggregates;
};

struct SweepResult {
  std::string scenario;
  std::string description;
  std::uint32_t seeds = 1;
  std::uint32_t jobs = 1;  ///< worker threads actually used
  double wall_s = 0;
  std::vector<PointResult> points;
};

/// Run every (point, seed) job of the scenario. Rethrows the first job
/// failure after all workers have stopped.
SweepResult run_sweep(const Scenario& scenario, const SweepOptions& options);

/// Flatten a metrics report into the engine's named-value record shape.
NamedValues standard_metric_values(const sim::Experiment& exp);

}  // namespace bng::runner
