// Sweep engine: expands a scenario into (point × seed) jobs, hands them to
// a pluggable Executor (runner/executor.hpp — in-process threads or the
// ngsim --worker process pool), and folds the streamed RunRecords into
// per-point aggregates.
//
// Determinism: each job's RNG seed is a pure function of its identity
// (scenario seed_base, point index, seed ordinal), every record carries that
// identity and is merged into its own preallocated slot, and the shared tx
// pool is generated once per sweep point from seed-independent parameters —
// so results are bit-identical regardless of the executor, its width, or
// the order records arrive in. Each record carries an FNV-1a determinism
// digest as the witness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runner/aggregate.hpp"
#include "runner/record.hpp"
#include "runner/scenario.hpp"
#include "runner/tcp_fleet.hpp"

namespace bng::obs {
class SweepTelemetry;
}

namespace bng::runner {

struct SweepOptions {
  std::uint32_t seeds = 1;
  /// Worker threads when procs == 0; 0 = hardware concurrency. Results are
  /// identical for any value.
  std::uint32_t jobs = 1;
  /// Worker *processes*; 0 = run in-process on `jobs` threads. Requires a
  /// shippable scenario (registered name or scenario file). Results are
  /// bit-identical to any in-process run.
  std::uint32_t procs = 0;
  /// Remote `ngsim --serve` workers as "host:port" endpoints. Non-empty
  /// selects the TCP fleet executor (runner/tcp_fleet.hpp) and overrides
  /// jobs/procs. Same bit-identical guarantee as every other executor.
  std::vector<std::string> hosts;
  /// Liveness / re-dispatch knobs for the TCP fleet.
  FleetTuning fleet;
  /// One immutable pre-generated tx pool per sweep point, shared by all of
  /// its seeds (instead of a per-seed copy).
  bool share_workload = true;
  /// argv prefix exec'd for each worker process (e.g. {"/proc/self/exe",
  /// "--worker"}). Empty: fork without exec (same binary, no exec).
  std::vector<std::string> worker_argv;

  /// Non-empty: consult/populate a content-addressed record cache in this
  /// directory (runner/cache.hpp). Keyed by (scenario-source hash, resolved
  /// point-config digest, seed); hits skip the simulation entirely and are
  /// byte-identical to a fresh run. Journal records prefilled by `resume`
  /// take precedence — the cache only answers for the holes.
  std::string cache_dir;

  /// Non-empty: append every completed record to this crash-safe journal
  /// (runner/journal.hpp). With `resume`, the path must hold the journal of
  /// an identical earlier sweep: its records prefill their slots and only
  /// the holes are re-dispatched — final output byte-identical to an
  /// uninterrupted run.
  std::string journal_path;
  bool resume = false;

  /// Runtime telemetry (obs/telemetry.hpp). When set, run_sweep feeds it job
  /// counts, journal fsync stats, and (with `hosts`) per-worker fleet state.
  /// Non-owning; null disables all accounting.
  obs::SweepTelemetry* telemetry = nullptr;
  /// Render a one-line progress report to stderr every ~500 ms (plus one
  /// final line). Purely cosmetic: sweep artifacts are byte-identical with
  /// and without it.
  bool progress = false;

  /// Decision-trace categories (obs/trace_ring.hpp mask; 0 = off). Only the
  /// in-process thread executor supports tracing — run_sweep rejects a
  /// non-zero mask combined with `procs` or `hosts`.
  std::uint32_t trace_mask = 0;
  /// Where the per-job trace JSONL goes when trace_mask != 0 (required then).
  /// Line order across jobs is scheduling-dependent under jobs > 1; every
  /// line carries its (point, ordinal) identity.
  std::string trace_path;

  /// Test hook (see ProcessPoolOptions::kill_worker0_after_jobs); with
  /// `hosts` it becomes the fleet's kill-host0 hook.
  int test_kill_worker0_after_jobs = -1;
  /// Fleet test hooks (see TcpFleetOptions).
  int test_hang_host0_after_jobs = -1;
  int test_sever_host0_after_records = -1;
  int test_interrupt_after_records = -1;
};

struct PointResult {
  std::vector<std::string> labels;
  double x = 0;
  std::vector<RunRecord> seeds;  ///< ordered by seed ordinal
  std::vector<std::pair<std::string, MetricAggregate>> aggregates;
};

struct SweepResult {
  std::string scenario;
  std::string description;
  std::uint32_t seeds = 1;
  std::uint32_t jobs = 1;   ///< parallel lanes actually used (threads or procs)
  std::uint32_t procs = 0;  ///< worker processes (0 = in-process threads)
  double wall_s = 0;
  std::vector<PointResult> points;
};

/// Run every (point, seed) job of the scenario. Rethrows the first job
/// failure after the executor has quiesced. Throws SweepInterrupted (with
/// the journal flushed) if the sweep interrupt flag is raised mid-run.
SweepResult run_sweep(const Scenario& scenario, const SweepOptions& options);

// Forward declaration (runner/executor.hpp).
class Executor;

/// Build the executor `options` selects — TCP fleet for `hosts`, process
/// pool for `procs`, else the in-process thread pool. Shared by run_sweep
/// and the adaptive driver (runner/adaptive.hpp) so both dispatch through
/// identical substrates. Wires fleet telemetry/test hooks when applicable.
std::unique_ptr<Executor> make_sweep_executor(const SweepOptions& options,
                                              obs::SweepTelemetry* telemetry);

}  // namespace bng::runner
