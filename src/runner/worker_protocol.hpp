// The worker wire protocol, shared by both dispatch substrates: the
// fork/exec'd process pool (process_pool.cpp, socketpairs) and the TCP fleet
// (tcp_fleet.cpp, `ngsim --serve` workers). One protocol, two transports —
// that is what makes an N-machine sweep bit-identical to `--procs N` and to
// `--jobs 1`.
//
// Frames (runner/record_codec.hpp length-prefixed framing):
//
//   dispatcher -> worker  'H' u16 codec-version, u8 source-kind, u32+bytes
//                             scenario ref (registered name | scenario text),
//                             u32 nodes, u32 blocks, u8 share_workload,
//                             u32 kill-after, u32 hang-after (test hooks;
//                             0xffffffff = off), u32 heartbeat-ms (0 = none)
//   dispatcher -> worker  'J' u32 point, u32 ordinal
//   worker -> dispatcher  'R' encode_record() bytes
//   worker -> dispatcher  'E' utf-8 error message (fatal; dispatcher rethrows)
//   worker -> dispatcher  'B' heartbeat. Optionally followed by a compact
//                             stats frame: u32 jobs_done, u32 pool_rebuilds,
//                             u64 busy_ms, then (when the worker caches) u32
//                             cache_hits, u32 cache_misses, u32 cache_stale,
//                             u32 cache_stores. A bare kind byte is still a
//                             valid beacon (old workers), dispatchers ignore
//                             payload they don't expect (old dispatchers),
//                             and a stats frame ending at busy_ms leaves the
//                             cache counters zero — the piggyback is
//                             compatible in both directions at every length.
//
// The worker rebuilds the scenario from its shippable source (the registry
// for builtins, the key=value grammar for inline text), re-expands the sweep
// grid, and funnels every job through the same run_job() as the in-process
// thread pool — so a record computed anywhere is bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.hpp"
#include "runner/record_codec.hpp"
#include "runner/scenario.hpp"

namespace bng::sim {
struct PrebuiltWorkload;
}

namespace bng::runner {

/// "Off" value for the handshake's kill-after / hang-after test hooks.
inline constexpr std::uint32_t kHookDisabled = 0xffffffffu;

/// Fault-injection hooks shipped in the handshake, driven by tests and the
/// fleet's CI smoke: `kill_after` makes the worker SIGKILL itself when handed
/// its (n+1)-th job (a crash mid-job); `hang_after` makes it compute forever
/// on that job while its heartbeat thread keeps beating (a hung-not-dead
/// worker, exercising the dispatcher's per-job deadline).
struct WorkerHooks {
  std::uint32_t kill_after = kHookDisabled;
  std::uint32_t hang_after = kHookDisabled;
};

[[nodiscard]] std::string handshake_payload(const ScenarioSource& source,
                                            bool share_workload, WorkerHooks hooks,
                                            std::uint32_t heartbeat_ms);
[[nodiscard]] std::string job_payload(std::uint32_t point, std::uint32_t ordinal);
[[nodiscard]] std::string error_payload(std::string_view message);
[[nodiscard]] std::string heartbeat_payload();
/// Heartbeat carrying the worker's self-reported stats (see the 'B' frame
/// doc above).
[[nodiscard]] std::string heartbeat_payload(const obs::WorkerStatsFrame& stats);
/// Parse a 'B' payload (cursor past the kind byte). Returns std::nullopt for
/// a bare beacon with no stats.
[[nodiscard]] std::optional<obs::WorkerStatsFrame> parse_heartbeat_stats(
    wire::Reader& in);

/// How a worker sends one framed payload back to its dispatcher. Returns
/// false when the dispatcher is gone (the worker should wind down). The TCP
/// worker's implementation takes a mutex so job records and heartbeat-thread
/// beacons never interleave mid-frame.
using SendPayload = std::function<bool(std::string_view payload)>;

/// Worker-side session state: the rebuilt scenario, its re-expanded grid,
/// and the one cached per-point workload pool.
struct WorkerState {
  std::optional<Scenario> scenario;
  std::vector<SweepPoint> points;
  bool share_workload = true;
  WorkerHooks hooks;
  std::uint32_t heartbeat_ms = 0;
  // Self-reported stats, piggybacked on heartbeats. Atomics because the TCP
  // worker's heartbeat thread snapshots them while the session thread runs
  // jobs; the process-pool worker is single-threaded and pays nothing.
  std::atomic<std::uint32_t> jobs_done{0};
  std::atomic<std::uint32_t> pool_rebuilds{0};
  std::atomic<std::uint64_t> busy_ms{0};

  /// Snapshot for a heartbeat; merges in the active record cache's counters
  /// (runner/cache.hpp) when one is set.
  [[nodiscard]] obs::WorkerStatsFrame stats_frame() const;
  // One pool is cached at a time, keyed by the workload digest rather than
  // the point index: points whose deltas don't touch the workload inputs
  // (e.g. an alpha x gamma attack grid) share the pool, so pool_rebuilds
  // collapses to ~#distinct workloads. The pool is a seed-independent pure
  // function of those inputs, so rebuilt pools stay bit-identical anyway.
  std::uint64_t pool_digest = 0;
  std::shared_ptr<const sim::PrebuiltWorkload> pool;
};

/// Parse an 'H' frame (cursor positioned after the kind byte) and rebuild
/// the scenario + grid. Throws on version skew or an unknown scenario.
void worker_handshake(WorkerState& st, wire::Reader& in);

/// Run one 'J' frame's job and send the 'R' record (or trip a fault hook).
/// Returns false when the dispatcher is unreachable.
bool worker_job(WorkerState& st, wire::Reader& in, const SendPayload& send);

}  // namespace bng::runner
