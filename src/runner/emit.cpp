#include "runner/emit.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <type_traits>

#include "runner/record_codec.hpp"  // json_escape

namespace bng::runner {

namespace {

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_digest(std::uint64_t d) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, d);
  return buf;
}

}  // namespace

double aggregate_mean(const PointResult& point, std::string_view name) {
  for (const auto& [key, agg] : point.aggregates)
    if (key == name) return agg.mean;
  return 0;
}

std::string point_label(const PointResult& point) {
  if (point.labels.empty()) return "-";
  std::string out;
  for (const std::string& l : point.labels) {
    if (!out.empty()) out += '/';
    out += l;
  }
  return out;
}

std::string to_json(const SweepResult& r) {
  std::string j = "{\n";
  auto field = [&j](const char* name, const std::string& value, bool quoted) {
    j += '"';
    j += name;
    j += "\": ";
    if (quoted) j += '"';
    j += value;
    if (quoted) j += '"';
  };
  j += "  ";
  field("scenario", json_escape(r.scenario), true);
  j += ",\n  ";
  field("description", json_escape(r.description), true);
  j += ",\n  \"config\": {";
  field("seeds", std::to_string(r.seeds), false);
  j += "},\n  \"points\": [\n";
  for (std::size_t p = 0; p < r.points.size(); ++p) {
    const PointResult& point = r.points[p];
    j += "    {";
    field("label", json_escape(point_label(point)), true);
    j += ", ";
    field("x", fmt_double(point.x), false);
    j += ",\n     \"seeds\": [\n";
    for (std::size_t s = 0; s < point.seeds.size(); ++s) {
      const RunRecord& seed = point.seeds[s];
      j += "       {";
      field("seed", std::to_string(seed.seed), false);
      j += ", ";
      field("digest", fmt_digest(seed.digest), true);
      if (seed.attacker) {
        j += ", \"attacker\": {";
        bool first = true;
        metrics::visit_attacker_fields(*seed.attacker, [&](const char* name, auto v) {
          if (!first) j += ", ";
          first = false;
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, double>) field(name, fmt_double(v), false);
          else field(name, std::to_string(v), false);
        });
        j += '}';
      }
      j += ", \"metrics\": {";
      for (std::size_t m = 0; m < seed.values.size(); ++m) {
        if (m > 0) j += ", ";
        field(json_escape(seed.values[m].first).c_str(),
              fmt_double(seed.values[m].second), false);
      }
      j += s + 1 < point.seeds.size() ? "}},\n" : "}}\n";
    }
    j += "     ],\n     \"aggregate\": {";
    for (std::size_t m = 0; m < point.aggregates.size(); ++m) {
      const auto& [name, a] = point.aggregates[m];
      if (m > 0) j += ", ";
      j += '"';
      j += json_escape(name);
      j += "\": {";
      field("n", std::to_string(a.n), false);
      j += ", ";
      field("mean", fmt_double(a.mean), false);
      j += ", ";
      field("stddev", fmt_double(a.stddev), false);
      j += ", ";
      field("min", fmt_double(a.min), false);
      j += ", ";
      field("max", fmt_double(a.max), false);
      j += ", ";
      field("p50", fmt_double(a.p50), false);
      j += ", ";
      field("p90", fmt_double(a.p90), false);
      j += '}';
    }
    j += "}}";
    j += p + 1 < r.points.size() ? ",\n" : "\n";
  }
  j += "  ]\n}\n";
  return j;
}

std::string aggregate_csv(const SweepResult& r) {
  std::string csv = "point,x,metric,n,mean,stddev,min,max,p50,p90\n";
  for (const PointResult& point : r.points) {
    const std::string label = point_label(point);
    for (const auto& [name, a] : point.aggregates) {
      csv += label;
      csv += ',';
      csv += fmt_double(point.x);
      csv += ',';
      csv += name;
      csv += ',';
      csv += std::to_string(a.n);
      for (double v : {a.mean, a.stddev, a.min, a.max, a.p50, a.p90}) {
        csv += ',';
        csv += fmt_double(v);
      }
      csv += '\n';
    }
  }
  return csv;
}

std::string seeds_csv(const SweepResult& r) {
  // Metric keys are uniform within a point but may differ across points
  // (per-point hooks): columns are the first-seen-ordered union, and a seed
  // row leaves columns its point doesn't produce empty.
  std::vector<std::string> columns;
  for (const PointResult& point : r.points) {
    if (point.seeds.empty()) continue;
    for (const auto& [name, value] : point.seeds.front().values) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), name) == columns.end())
        columns.push_back(name);
    }
  }

  std::string csv = "point,x,seed,digest";
  for (const std::string& name : columns) {
    csv += ',';
    csv += name;
  }
  csv += '\n';
  for (const PointResult& point : r.points) {
    const std::string label = point_label(point);
    for (const RunRecord& seed : point.seeds) {
      csv += label;
      csv += ',';
      csv += fmt_double(point.x);
      csv += ',';
      csv += std::to_string(seed.seed);
      csv += ',';
      csv += fmt_digest(seed.digest);
      for (const std::string& name : columns) {
        csv += ',';
        for (const auto& [key, value] : seed.values)
          if (key == name) {
            csv += fmt_double(value);
            break;
          }
      }
      csv += '\n';
    }
  }
  return csv;
}

void print_table(const SweepResult& r, std::FILE* out) {
  std::fprintf(out, "%-24s | %9s %9s %8s %8s %9s %8s | %s\n", "point", "ttp[s]",
               "ttw[s]", "mpu", "fairness", "consl[s]", "tx/s", "blocks(main/total)");
  for (const PointResult& point : r.points) {
    std::fprintf(out, "%-24s | %9.2f %9.2f %8.3f %8.3f %9.2f %8.2f | %.0f/%.0f\n",
                 point_label(point).c_str(), aggregate_mean(point, "time_to_prune_p90_s"),
                 aggregate_mean(point, "time_to_win_p90_s"), aggregate_mean(point, "mpu"),
                 aggregate_mean(point, "fairness"),
                 aggregate_mean(point, "consensus_delay_s"),
                 aggregate_mean(point, "tx_per_sec"),
                 aggregate_mean(point, "main_pow_blocks"),
                 aggregate_mean(point, "total_pow_blocks"));
  }
  std::fprintf(out, "(%u seed%s/point, %u %s%s, %.1fs wall)\n", r.seeds,
               r.seeds == 1 ? "" : "s", r.jobs,
               r.procs > 0 ? "worker process" : "job",
               r.jobs == 1 ? "" : (r.procs > 0 ? "es" : "s"), r.wall_s);
}

}  // namespace bng::runner
