// Crash-safe on-disk journal of a sweep's completed RunRecords.
//
// A journaled sweep appends every finished record as a length-prefixed
// binary frame (the same framing + codec the worker protocol speaks), so a
// dispatcher crash — SIGKILL included — loses at most the unflushed tail of
// a batch, never a fsync'd record. `ngsim --resume <journal>` then rebuilds
// the scenario from the stored source, verifies the grid identity, prefills
// the completed slots, and re-dispatches only the holes: because every
// record is a pure function of (scenario, point, ordinal), the resumed
// sweep's final artifacts are byte-identical to an uninterrupted run.
//
// File layout (all frames are record_codec.hpp `frame()` framing):
//
//   frame( 'H' "BNGJ" u16 journal-version u16 codec-version
//          u8 source-kind u32+bytes scenario ref u32 nodes u32 blocks
//          u32 seeds u32 n_points u64 seed_base )
//   frame( 'R' encode_record() bytes )   ... one per completed job
//
// Torn-tail recovery: a crash mid-append leaves a final partial frame (or a
// record the bounds-checked codec rejects). read_journal() keeps every whole
// frame before the tear, reports the offset of the last good byte, and the
// resume path truncates the file there before appending — the journal is
// always a clean prefix plus new whole frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/record.hpp"
#include "runner/scenario.hpp"

namespace bng::runner {

/// Bump when the journal header layout changes; readers reject foreign
/// versions (the record frames are separately versioned by the codec).
inline constexpr std::uint16_t kJournalVersion = 1;

/// Identity of the sweep a journal belongs to. Resume refuses a journal
/// whose identity does not match the scenario it would continue — replaying
/// records into the wrong grid would silently corrupt the output.
struct JournalHeader {
  std::uint8_t source_kind = 0;  ///< ScenarioSource::Kind
  std::string ref;               ///< registered name | scenario-file text
  RunKnobs knobs;
  std::uint32_t seeds = 1;
  std::uint32_t n_points = 0;
  std::uint64_t seed_base = 0;
};

/// Derive the header a journal for this sweep must carry. Throws
/// std::invalid_argument if the scenario has no shippable source (a
/// programmatic scenario cannot be rebuilt by --resume).
JournalHeader make_journal_header(const Scenario& scenario, std::uint32_t seeds,
                                  std::size_t n_points);

/// Human-readable reason `on_disk` cannot resume a sweep expecting
/// `expected`; empty string when they match.
std::string journal_mismatch(const JournalHeader& on_disk,
                             const JournalHeader& expected);

struct JournalContents {
  JournalHeader header;
  std::vector<RunRecord> records;  ///< append order; torn tail dropped
  std::uint64_t valid_bytes = 0;   ///< end offset of the last whole frame
  bool torn_tail = false;          ///< trailing partial/corrupt bytes were dropped
};

/// Read and validate a journal. Throws std::runtime_error on a missing file
/// or a corrupt/foreign header; a torn record tail is tolerated and
/// reported, never fatal.
JournalContents read_journal(const std::string& path);

/// Read just the header (for `ngsim --resume` to rebuild the scenario
/// before the sweep machinery spins up).
JournalHeader read_journal_header(const std::string& path);

/// Appends finished records with fsync batching: frames are buffered and
/// written + fsync'd every kFsyncBatch records, on flush(), and at
/// destruction — bounding both the syscall cost per record and the worst
/// case loss window of a hard crash.
class JournalWriter {
 public:
  /// Start a fresh journal: truncate `path` and write the header (fsync'd
  /// before any record can follow it).
  JournalWriter(const std::string& path, const JournalHeader& header);

  /// Continue an existing journal: truncate a torn tail at `valid_bytes`
  /// (as reported by read_journal) and append after it.
  JournalWriter(const std::string& path, std::uint64_t valid_bytes);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const RunRecord& record);

  /// Write out and fsync everything buffered. Throws on I/O failure.
  void flush();

  /// Durability-cost accounting: how many fsync batches this writer paid for
  /// and how long they took (the sweep telemetry's "journal fsync lag").
  struct Stats {
    std::uint64_t fsyncs = 0;
    double fsync_total_ms = 0;
    double fsync_max_ms = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  static constexpr std::uint32_t kFsyncBatch = 8;

 private:
  std::string path_;
  int fd_ = -1;
  std::string buf_;
  std::uint32_t buffered_records_ = 0;
  Stats stats_;
};

}  // namespace bng::runner
