#include "runner/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/io_util.hpp"
#include "runner/record_codec.hpp"

namespace bng::runner {

namespace {

constexpr char kJournalMagic[4] = {'B', 'N', 'G', 'J'};

std::string header_payload(const JournalHeader& h) {
  std::string p;
  p.push_back(static_cast<char>(FrameKind::kHandshake));
  p.append(kJournalMagic, sizeof kJournalMagic);
  wire::put_u16(p, kJournalVersion);
  wire::put_u16(p, kRecordCodecVersion);
  p.push_back(static_cast<char>(h.source_kind));
  wire::put_u32(p, static_cast<std::uint32_t>(h.ref.size()));
  p += h.ref;
  wire::put_u32(p, h.knobs.nodes);
  wire::put_u32(p, h.knobs.blocks);
  wire::put_u32(p, h.seeds);
  wire::put_u32(p, h.n_points);
  wire::put_u64(p, h.seed_base);
  return p;
}

JournalHeader parse_header_payload(std::string_view payload) {
  wire::Reader in{payload, 1};  // past the 'H' kind byte
  const std::string magic = in.str(sizeof kJournalMagic);
  if (std::memcmp(magic.data(), kJournalMagic, sizeof kJournalMagic) != 0)
    throw std::runtime_error("journal: bad magic (not a sweep journal)");
  const std::uint16_t version = in.u16();
  if (version != kJournalVersion)
    throw std::runtime_error("journal: version " + std::to_string(version) +
                             " unsupported (this build speaks " +
                             std::to_string(kJournalVersion) + ")");
  const std::uint16_t codec = in.u16();
  if (codec != kRecordCodecVersion)
    throw std::runtime_error("journal: record codec version " + std::to_string(codec) +
                             " unsupported (this build speaks " +
                             std::to_string(kRecordCodecVersion) + ")");
  JournalHeader h;
  h.source_kind = in.u8();
  const std::uint32_t ref_len = in.u32();
  h.ref = in.str(ref_len);
  h.knobs.nodes = in.u32();
  h.knobs.blocks = in.u32();
  h.seeds = in.u32();
  h.n_points = in.u32();
  h.seed_base = in.u64();
  if (in.pos != payload.size())
    throw std::runtime_error("journal: trailing bytes after header");
  return h;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("journal: cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw std::runtime_error("journal: read failed for " + path);
  return std::move(out).str();
}

}  // namespace

JournalHeader make_journal_header(const Scenario& scenario, std::uint32_t seeds,
                                  std::size_t n_points) {
  if (!scenario.source)
    throw std::invalid_argument(
        "journaling needs a shippable scenario (a registered name or a scenario "
        "file) so --resume can rebuild it; this scenario was built "
        "programmatically");
  JournalHeader h;
  h.source_kind = static_cast<std::uint8_t>(scenario.source->kind);
  h.ref = scenario.source->ref;
  h.knobs = scenario.source->knobs;
  h.seeds = seeds;
  h.n_points = static_cast<std::uint32_t>(n_points);
  h.seed_base = scenario.seed_base;
  return h;
}

std::string journal_mismatch(const JournalHeader& on_disk,
                             const JournalHeader& expected) {
  auto diff_u64 = [](const char* what, std::uint64_t disk, std::uint64_t want) {
    return std::string(what) + " differs (journal: " + std::to_string(disk) +
           ", sweep: " + std::to_string(want) + ")";
  };
  if (on_disk.source_kind != expected.source_kind)
    return "scenario source kind differs (registered name vs inline text)";
  if (on_disk.ref != expected.ref) {
    if (on_disk.source_kind == 0)
      return "scenario differs (journal: '" + on_disk.ref + "', sweep: '" +
             expected.ref + "')";
    return "scenario file text differs";
  }
  if (on_disk.knobs.nodes != expected.knobs.nodes)
    return diff_u64("nodes", on_disk.knobs.nodes, expected.knobs.nodes);
  if (on_disk.knobs.blocks != expected.knobs.blocks)
    return diff_u64("blocks", on_disk.knobs.blocks, expected.knobs.blocks);
  if (on_disk.seeds != expected.seeds)
    return diff_u64("seeds", on_disk.seeds, expected.seeds);
  if (on_disk.n_points != expected.n_points)
    return diff_u64("sweep grid size", on_disk.n_points, expected.n_points);
  if (on_disk.seed_base != expected.seed_base)
    return diff_u64("seed base", on_disk.seed_base, expected.seed_base);
  return {};
}

JournalContents read_journal(const std::string& path) {
  std::string bytes = read_file(path);

  JournalContents out;
  std::string payload;
  bool have_header = false;
  std::uint64_t consumed = 0;
  // take_frame erases consumed bytes from the front; track the offset of the
  // last *whole, decodable* frame so resume can truncate a torn tail.
  bool dropped_frame = false;
  for (;;) {
    const std::size_t before = bytes.size();
    try {
      if (!take_frame(bytes, payload)) break;  // partial trailing frame
    } catch (const CodecError&) {
      break;  // corrupt length prefix in the tail
    }
    const std::uint64_t frame_end = consumed + (before - bytes.size());
    if (payload.empty()) {
      dropped_frame = true;  // a whole frame with no kind byte: corrupt
      break;
    }
    if (!have_header) {
      // The header frame is load-bearing: without it the journal cannot be
      // attributed to a sweep, so header problems are fatal, not torn-tail.
      if (static_cast<FrameKind>(payload[0]) != FrameKind::kHandshake)
        throw std::runtime_error("journal: first frame is not a header");
      out.header = parse_header_payload(payload);
      have_header = true;
    } else {
      if (static_cast<FrameKind>(payload[0]) != FrameKind::kRecord) {
        dropped_frame = true;  // foreign frame kind in the tail: a tear
        break;
      }
      try {
        out.records.push_back(decode_record(std::string_view(payload).substr(1)));
      } catch (const CodecError&) {
        dropped_frame = true;  // truncated/corrupt record frame
        break;
      }
    }
    consumed = frame_end;
    out.valid_bytes = frame_end;
  }
  if (!have_header)
    throw std::runtime_error("journal: " + path + " has no readable header");
  out.torn_tail = dropped_frame || !bytes.empty();
  return out;
}

JournalHeader read_journal_header(const std::string& path) {
  // Cheap variant: only the first frame is needed, but journals are small
  // relative to the sweeps they describe — reuse the full reader.
  return read_journal(path).header;
}

JournalWriter::JournalWriter(const std::string& path, const JournalHeader& header)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error("journal: cannot create " + path + ": " +
                             std::strerror(errno));
  buf_ = frame(header_payload(header));
  flush();  // the header hits disk before any record can follow it
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t valid_bytes)
    : path_(path) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
    throw std::runtime_error("journal: cannot truncate torn tail of " + path + ": " +
                             std::strerror(errno));
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0)
    throw std::runtime_error("journal: cannot append to " + path + ": " +
                             std::strerror(errno));
}

JournalWriter::~JournalWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort (e.g. during stack unwind on ENOSPC);
    // the torn-tail reader handles whatever made it to disk.
  }
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const RunRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(FrameKind::kRecord));
  payload += encode_record(record);
  buf_ += frame(payload);
  if (++buffered_records_ >= kFsyncBatch) flush();
}

void JournalWriter::flush() {
  if (buf_.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  if (!io::write_all(fd_, buf_))
    throw std::runtime_error("journal: write to " + path_ + " failed: " +
                             std::strerror(errno));
  if (::fsync(fd_) != 0)
    throw std::runtime_error("journal: fsync of " + path_ + " failed: " +
                             std::strerror(errno));
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  ++stats_.fsyncs;
  stats_.fsync_total_ms += ms;
  stats_.fsync_max_ms = std::max(stats_.fsync_max_ms, ms);
  buf_.clear();
  buffered_records_ = 0;
}

}  // namespace bng::runner
